(* The ocep command-line tool.

   - [ocep gen]   simulate a case-study workload and dump the trace-event
                  data to a file (POET's dump feature, Section V-B);
   - [ocep run]   reload a dump and run a pattern against it through the
                  online engine (POET's reload feature);
   - [ocep check] parse and compile a pattern file, printing the
                  constraint net;
   - [ocep repro] regenerate the paper's tables and figures. *)

module Sim = Ocep_sim.Sim
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine
module Summary = Ocep_stats.Summary
module Workload = Ocep_workloads.Workload
module Cases = Ocep_harness.Cases
module Repro = Ocep_harness.Repro
module Fuzz = Ocep_harness.Fuzz
module Runner = Ocep_harness.Runner
module Inject = Ocep_workloads.Inject
module Framing = Ocep_ingest.Framing
module Admission = Ocep_ingest.Admission
module Bqueue = Ocep_ingest.Bqueue
module Source = Ocep_ingest.Source
module Session = Ocep_ingest.Session
module Server = Ocep_service.Server
module Explain = Ocep_harness.Explain
module Serve = Ocep_obs.Serve
module Snapshot = Ocep_obs.Snapshot
module Minijson = Ocep_obs.Minijson

open Cmdliner

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* A pattern file may hold one plain pattern or a template registry; the
   plain case keeps the bare filename as its label, template instances
   are labeled file#template('binding'). *)
let load_pattern_file f =
  List.map
    (fun (name, net) -> ((if name = "main" then f else f ^ "#" ^ name), net))
    (Compile.compile_file (Parser.parse_file (read_file f)))

let load_pattern_files files = List.concat_map load_pattern_file files

(* ------------------------------------------------------------------ *)
(* telemetry (--listen)                                                *)
(* ------------------------------------------------------------------ *)

(* The one HOST:PORT parser every listening/connecting flag shares
   (telemetry --listen, serve --listen, top's address, the bench's
   --connect): same grammar, same error wording everywhere. *)
let host_port_conv what =
  let fail s reason =
    Error
      (`Msg
        (Printf.sprintf
           "bad %s %S: %s — want HOST:PORT, e.g. 127.0.0.1:7070 (PORT in 0-65535; 0 binds a \
            free port)"
           what s reason))
  in
  let parse s =
    match String.rindex_opt s ':' with
    | None -> fail s "no ':' separator"
    | Some i -> (
      let host = String.sub s 0 i and p = String.sub s (i + 1) (String.length s - i - 1) in
      if host = "" then fail s "empty host"
      else
        match int_of_string_opt p with
        | None -> fail s (Printf.sprintf "port %S is not a number" p)
        | Some port when port < 0 || port > 65535 ->
          fail s (Printf.sprintf "port %d out of range" port)
        | Some port -> Ok (host, port))
  in
  Arg.conv (parse, fun ppf (h, p) -> Format.fprintf ppf "%s:%d" h p)

let gap_policy_conv =
  let parse s =
    match String.lowercase_ascii (String.trim s) with
    | "wait" -> Ok Admission.Wait
    | "fail" -> Ok Admission.Fail
    | s when String.length s > 5 && String.sub s 0 5 = "skip:" -> (
      match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
      | Some n when n >= 0 -> Ok (Admission.Skip n)
      | _ -> Error (`Msg (Printf.sprintf "bad skip patience in %S" s)))
    | _ -> Error (`Msg (Printf.sprintf "gap policy %S: want wait, skip:N or fail" s))
  in
  let print ppf = function
    | Admission.Wait -> Format.pp_print_string ppf "wait"
    | Admission.Skip n -> Format.fprintf ppf "skip:%d" n
    | Admission.Fail -> Format.pp_print_string ppf "fail"
  in
  Arg.conv (parse, print)

let listen_arg =
  Arg.(
    value
    & opt (some (host_port_conv "listen address")) None
    & info [ "listen" ] ~docv:"HOST:PORT"
        ~doc:
          "Serve live telemetry over HTTP while the command runs: $(b,/metrics) (Prometheus \
           text exposition), $(b,/snapshot.json), $(b,/healthz) and $(b,/readyz). PORT 0 binds \
           a free port; the bound address is printed before the run starts.")

let linger_arg =
  Arg.(
    value & opt float 0.
    & info [ "linger" ] ~docv:"SEC"
        ~doc:
          "With $(b,--listen): keep serving the final telemetry for SEC more seconds after the \
           run completes, then flip $(b,/healthz) to 503 and shut down.")

(* The lifecycle shared by run and replay: the listener comes up before
   the engine exists (healthz 503 "starting"), flips healthy + ready
   once the engine is built, republishes from the ingest loop so
   scrapes under live load see fresh values, and serves the final state
   through the linger window. *)
let telemetry_start listen =
  Option.map
    (fun (host, port) ->
      let srv = Serve.start ~host ~port () in
      Serve.set_health srv (Serve.Not_serving "starting: engine not built");
      Printf.printf "telemetry: http://%s:%d/ (metrics, snapshot.json, healthz, readyz)\n%!"
        host (Serve.port srv);
      srv)
    listen

let telemetry_publish srv engine =
  match srv with
  | None -> ()
  | Some srv ->
    Engine.sync_metrics engine;
    let m = Engine.metrics engine in
    Serve.publish srv ~metrics:(Snapshot.prometheus m) ~snapshot:(Snapshot.json m)

let telemetry_live srv engine =
  match srv with
  | None -> ()
  | Some s ->
    telemetry_publish srv engine;
    Serve.set_health s Serve.Serving;
    Serve.set_ready s true

let telemetry_finish srv engine ~linger =
  match srv with
  | None -> ()
  | Some s ->
    telemetry_publish srv engine;
    if linger > 0. then begin
      Printf.printf "telemetry: lingering %.1fs\n%!" linger;
      Unix.sleepf linger
    end;
    Serve.set_health s (Serve.Not_serving "run complete, shutting down");
    Serve.stop s

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)
(* ------------------------------------------------------------------ *)

let gen_cmd =
  let case =
    Arg.(
      required
      & opt (some (enum (List.map (fun n -> (n, n)) Cases.all_names))) None
      & info [ "case"; "c" ] ~docv:"CASE"
          ~doc:
            "Workload: deadlock, races, atomicity, ordering, twopc, election, gossip or \
             lockserver.")
  in
  let traces =
    Arg.(value & opt int 10 & info [ "traces"; "t" ] ~docv:"N" ~doc:"Number of traces.")
  in
  let events =
    Arg.(value & opt int 50_000 & info [ "events"; "n" ] ~docv:"N" ~doc:"Events to generate.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed"; "s" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let output =
    Arg.(required & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Dump file.")
  in
  let pattern_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "pattern-out" ] ~docv:"FILE" ~doc:"Also write the case's pattern text to FILE.")
  in
  let run case traces events seed output pattern_out =
    let w = Cases.make case ~traces ~seed ~max_events:events in
    let names = Sim.trace_names w.Workload.sim_config in
    let oc = open_out output in
    Poet.dump_header ~trace_names:names oc;
    let count = ref 0 in
    let stats =
      Sim.run w.Workload.sim_config
        ~sink:(fun raw ->
          incr count;
          Poet.dump_raw oc raw)
        ~bodies:w.Workload.bodies
    in
    close_out oc;
    (match pattern_out with
    | Some p ->
      let oc = open_out p in
      output_string oc w.Workload.pattern;
      close_out oc;
      Printf.printf "pattern written to %s\n" p
    | None -> ());
    Printf.printf "dumped %d events (%d traces, %d simulated deadlocks) to %s\n" !count
      (Array.length names)
      (List.length stats.Sim.deadlocks)
      output;
    0
  in
  let info = Cmd.info "gen" ~doc:"Simulate a case-study workload and dump its trace-event data." in
  Cmd.v info Term.(const run $ case $ traces $ events $ seed $ output $ pattern_out)

(* ------------------------------------------------------------------ *)
(* record                                                              *)
(* ------------------------------------------------------------------ *)

let record_cmd =
  let case =
    Arg.(
      required
      & opt (some (enum (List.map (fun n -> (n, n)) Cases.all_names))) None
      & info [ "case"; "c" ] ~docv:"CASE"
          ~doc:
            "Workload: deadlock, races, atomicity, ordering, twopc, election, gossip or \
             lockserver.")
  in
  let traces =
    Arg.(value & opt int 10 & info [ "traces"; "t" ] ~docv:"N" ~doc:"Number of traces.")
  in
  let events =
    Arg.(value & opt int 50_000 & info [ "events"; "n" ] ~docv:"N" ~doc:"Events to generate.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed"; "s" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let output =
    Arg.(
      required & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Framed wire-format log file.")
  in
  let pattern_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "pattern-out" ] ~docv:"FILE" ~doc:"Also write the case's pattern text to FILE.")
  in
  let run case traces events seed output pattern_out =
    let w = Cases.make case ~traces ~seed ~max_events:events in
    let names = Sim.trace_names w.Workload.sim_config in
    let oc = open_out_bin output in
    let wr = Framing.create_writer oc ~trace_names:names in
    let stats =
      Sim.run w.Workload.sim_config
        ~sink:(fun raw -> ignore (Framing.write_raw wr raw))
        ~bodies:w.Workload.bodies
    in
    Framing.flush wr;
    close_out oc;
    (match pattern_out with
    | Some p ->
      let oc = open_out p in
      output_string oc w.Workload.pattern;
      close_out oc;
      Printf.printf "pattern written to %s\n" p
    | None -> ());
    Printf.printf "recorded %d events (%d traces, %d simulated deadlocks) to %s\n"
      (Framing.written wr) (Array.length names)
      (List.length stats.Sim.deadlocks)
      output;
    0
  in
  let info =
    Cmd.info "record"
      ~doc:
        "Simulate a case-study workload and record its events to a framed, CRC-checked \
         wire-format log (replayable with $(b,ocep replay), including under injected delivery \
         faults)."
  in
  Cmd.v info Term.(const run $ case $ traces $ events $ seed $ output $ pattern_out)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let pattern_files =
    Arg.(
      non_empty
      & opt_all file []
      & info [ "pattern"; "p" ] ~docv:"FILE"
          ~doc:
            "Pattern-language source file. Repeatable: all patterns are registered in one \
             multi-pattern engine sharing a single POET subscription and history store, and \
             results are reported per pattern.")
  in
  let trace_file =
    Arg.(
      required
      & opt (some file) None
      & info [ "trace"; "i" ] ~docv:"FILE" ~doc:"POET dump to reload (see $(b,ocep gen)).")
  in
  let no_pruning =
    Arg.(value & flag & info [ "no-pruning" ] ~doc:"Disable the O(1) history-pruning rule.")
  in
  let parallelism =
    Arg.(
      value & opt int 1
      & info [ "parallelism"; "j" ] ~docv:"N"
          ~doc:
            "Workers for the pinned-search fan-out on each terminating event: 1 = sequential \
             (default), 0 = one worker per core, N > 1 = a persistent pool of N workers.")
  in
  let max_reports =
    Arg.(value & opt int 20 & info [ "max-reports" ] ~docv:"N" ~doc:"Reports to print.")
  in
  let diagram =
    Arg.(
      value & flag
      & info [ "diagram"; "d" ]
          ~doc:"Draw an ASCII process-time diagram of the stream tail with the first reported                 match highlighted.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the engine's metrics registry to FILE after the run: one JSON object with a \
             $(b,snapshots) array (see --metrics-every), or the Prometheus text exposition if \
             FILE ends in .prom. Also records latencies into the bounded histogram \
             (ocep_latency_us).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record a span per terminating arrival and per search into a bounded ring buffer \
             and dump it to FILE as Chrome trace_event JSON (load in chrome://tracing or \
             Perfetto; worker-domain searches appear as their own rows).")
  in
  let metrics_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-every" ] ~docv:"N"
          ~doc:
            "With --metrics-out: also snapshot the registry every N ingested events, appending \
             each snapshot to the JSON file's $(b,snapshots) array (the final snapshot is \
             always last).")
  in
  let run pattern_files trace_file no_pruning parallelism max_reports diagram metrics_out
      trace_out metrics_every listen linger =
    if parallelism < 0 then (
      Printf.eprintf "ocep: --parallelism must be >= 0 (0 = one worker per core), got %d\n"
        parallelism;
      exit 2);
    (match metrics_every with
    | Some n when n <= 0 ->
      Printf.eprintf "ocep: --metrics-every must be positive, got %d\n" n;
      exit 2
    | _ -> ());
    let srv = telemetry_start listen in
    let nets = load_pattern_files pattern_files in
    let ic = open_in trace_file in
    let names, raws = Poet.load ic in
    close_in ic;
    let poet = Poet.create ~retain:diagram ~trace_names:names () in
    let config =
      {
        Engine.default_config with
        Engine.pruning = not no_pruning;
        parallelism;
        (* keep the raw samples for the latency printout below, and feed the
           bounded histogram too when a metrics file was asked for *)
        latency_sink = (if metrics_out <> None then Engine.Both else Engine.Samples);
        trace_spans = trace_out <> None;
      }
    in
    let engine = Engine.create ~config ~poet () in
    let handles = List.map (fun (f, net) -> (f, net, Engine.add_pattern engine net)) nets in
    Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
    telemetry_live srv engine;
    let snapshots = ref [] in
    let snap () =
      Engine.sync_metrics engine;
      snapshots := Ocep_obs.Snapshot.json (Engine.metrics engine) :: !snapshots
    in
    let ingested = ref 0 in
    List.iter
      (fun raw ->
        ignore (Poet.ingest poet raw);
        incr ingested;
        if srv <> None && !ingested mod 4096 = 0 then telemetry_publish srv engine;
        match metrics_every with
        | Some n when metrics_out <> None && !ingested mod n = 0 -> snap ()
        | _ -> ())
      raws;
    (match metrics_out with
    | None -> ()
    | Some path ->
      Engine.sync_metrics engine;
      let oc = open_out path in
      if Filename.check_suffix path ".prom" then
        output_string oc (Ocep_obs.Snapshot.prometheus (Engine.metrics engine))
      else begin
        let final = Ocep_obs.Snapshot.json (Engine.metrics engine) in
        Printf.fprintf oc "{\"snapshots\": [%s]}\n"
          (String.concat ", " (List.rev (final :: !snapshots)))
      end;
      close_out oc;
      Printf.printf "metrics written to %s (%d snapshot%s)\n" path
        (List.length !snapshots + 1)
        (if !snapshots = [] then "" else "s"));
    (match (trace_out, Engine.tracer engine) with
    | Some path, Some tr ->
      let oc = open_out path in
      Ocep_obs.Tracer.dump oc tr;
      close_out oc;
      Printf.printf "trace: %d spans written to %s (%d overwritten by the ring)\n"
        (Ocep_obs.Tracer.length tr) path
        (Ocep_obs.Tracer.dropped tr)
    | _ -> ());
    if parallelism <> 1 then
      Printf.printf "parallelism: %d workers\n" (Engine.parallelism engine);
    Printf.printf "events: %d   matches found: %d   reported subset: %d\n"
      (Engine.events_processed engine)
      (Engine.matches_found engine)
      (List.length (Engine.reports engine));
    Printf.printf "coverage: %d/%d slots   history entries: %d\n"
      (Engine.covered_slots engine) (Engine.seen_slots engine)
      (Engine.history_entries engine);
    Printf.printf "reports digest: %s\n" (Runner.reports_digest engine);
    let latencies = Engine.latencies_us engine in
    if Array.length latencies > 0 then begin
      let s = Summary.of_samples latencies in
      Format.printf "latency (us): %a@." Summary.pp s
    end;
    let print_reports ~pattern_id net reports =
      List.iteri
        (fun i (r : Ocep.Subset.report) ->
          if i < max_reports then begin
            Format.printf "match %d (digest %s):@." (i + 1)
              (Runner.report_digest ~pattern_id r);
            Array.iteri
              (fun leaf e ->
                Format.printf "  %s = %a@."
                  net.Compile.leaves.(leaf).Compile.cls.Ocep_pattern.Ast.cname
                  Ocep_base.Event.pp e)
              r.events
          end)
        reports
    in
    (match handles with
    | [ (_, net, h) ] ->
      print_reports ~pattern_id:(Engine.Handle.id h) net (Engine.Handle.reports h)
    | _ ->
      List.iter
        (fun (file, net, h) ->
          let m = Engine.Handle.metrics h in
          Printf.printf "pattern %d (%s): matches %d   reports %d   coverage %d/%d\n"
            (Engine.Handle.id h) file m.Engine.Handle.matches m.Engine.Handle.reports_retained
            m.Engine.Handle.covered_slots m.Engine.Handle.seen_slots;
          print_reports ~pattern_id:(Engine.Handle.id h) net (Engine.Handle.reports h))
        handles);
    if diagram then begin
      let highlight =
        match Engine.reports engine with
        | r :: _ -> Array.to_list r.Ocep.Subset.events
        | [] -> []
      in
      print_string
        (Ocep_poet.Diagram.render ~max_events:70 ~highlight ~trace_names:names
           (Poet.all_events poet))
    end;
    telemetry_finish srv engine ~linger;
    0
  in
  let info = Cmd.info "run" ~doc:"Reload a trace dump and match a pattern against it online." in
  Cmd.v info
    Term.(
      const run $ pattern_files $ trace_file $ no_pruning $ parallelism $ max_reports $ diagram
      $ metrics_out $ trace_out $ metrics_every $ listen_arg $ linger_arg)

(* ------------------------------------------------------------------ *)
(* replay                                                              *)
(* ------------------------------------------------------------------ *)

let replay_cmd =
  let pattern_files =
    Arg.(
      non_empty
      & opt_all file []
      & info [ "pattern"; "p" ] ~docv:"FILE"
          ~doc:"Pattern-language source file; repeatable, as in $(b,ocep run).")
  in
  let wire_file =
    Arg.(
      required
      & opt (some file) None
      & info [ "input"; "i" ] ~docv:"FILE"
          ~doc:"Framed wire-format log to replay (see $(b,ocep record)).")
  in
  let faults =
    let fconv =
      Arg.conv
        ( (fun s -> Result.map_error (fun e -> `Msg e) (Inject.parse_faults s)),
          fun ppf f -> Inject.pp_faults ppf f )
    in
    Arg.(
      value
      & opt fconv Inject.no_faults
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Degrade the delivery before admission: $(b,reorder:K) shuffles within blocks of K \
             frames, $(b,dup:P) duplicates each frame with probability P, $(b,drop:P) drops it. \
             Comma-separate any subset, e.g. $(b,reorder:8,dup:0.01).")
  in
  let fault_seed =
    Arg.(
      value & opt int 7
      & info [ "seed"; "s" ] ~docv:"SEED" ~doc:"PRNG seed for $(b,--faults).")
  in
  let gap_policy =
    Arg.(
      value
      & opt gap_policy_conv Admission.Wait
      & info [ "gap-policy" ] ~docv:"POLICY"
          ~doc:
            "What to do about a missing record id: $(b,wait) (buffer until end of stream), \
             $(b,skip:N) (give up after N more frames arrive), or $(b,fail) (exit nonzero on \
             any loss).")
  in
  let reorder_window =
    Arg.(
      value & opt int Admission.default_config.Admission.reorder_window
      & info [ "reorder-window" ] ~docv:"N"
          ~doc:"Max out-of-order frames held by admission before a gap is declared.")
  in
  let queue_capacity =
    Arg.(
      value & opt int Source.default_config.Source.queue_capacity
      & info [ "queue-capacity" ] ~docv:"N" ~doc:"Ingest queue bound (with --pipeline).")
  in
  let queue_policy =
    Arg.(
      value
      & opt (enum [ ("block", Bqueue.Block); ("shed", Bqueue.Shed) ]) Bqueue.Block
      & info [ "queue-policy" ] ~docv:"POLICY"
          ~doc:"Backpressure on a full ingest queue: $(b,block) the reader or $(b,shed) frames.")
  in
  let pipeline =
    Arg.(
      value & flag
      & info [ "pipeline" ]
          ~doc:"Decode frames on a separate domain, handing events over a bounded queue.")
  in
  let block_size =
    Arg.(
      value & opt int Source.default_config.Source.block_size
      & info [ "block" ] ~docv:"N"
          ~doc:
            "Decode and admit frames in blocks of $(docv), amortizing per-record costs \
             (and, with $(b,--pipeline), the queue hand-off). 1 = per-record.")
  in
  let parallelism =
    Arg.(
      value & opt int 1
      & info [ "parallelism"; "j" ] ~docv:"N" ~doc:"Engine search workers, as in $(b,ocep run).")
  in
  let max_reports =
    Arg.(value & opt int 0 & info [ "max-reports" ] ~docv:"N" ~doc:"Reports to print.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the engine's metrics registry (including the ocep_ingest_* instruments) to \
             FILE after the replay: JSON, or the Prometheus text exposition if FILE ends in \
             .prom.")
  in
  let run pattern_files wire_file faults fault_seed gap_policy reorder_window queue_capacity
      queue_policy pipeline block_size parallelism max_reports metrics_out listen linger =
    if parallelism < 0 then (
      Printf.eprintf "ocep: --parallelism must be >= 0, got %d\n" parallelism;
      exit 2);
    let srv = telemetry_start listen in
    let nets = load_pattern_files pattern_files in
    let ic = open_in_bin wire_file in
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    let reader =
      try Framing.create_reader ic
      with Framing.Bad_header e ->
        Printf.eprintf "ocep replay: %s: %s\n" wire_file e;
        exit 1
    in
    let poet = Poet.create ~trace_names:(Framing.reader_trace_names reader) () in
    let config =
      {
        Engine.default_config with
        Engine.parallelism;
        latency_sink = (if metrics_out <> None then Engine.Histogram else Engine.Samples);
      }
    in
    let engine = Engine.create ~config ~poet () in
    let handles = List.map (fun (f, net) -> (f, net, Engine.add_pattern engine net)) nets in
    Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
    telemetry_live srv engine;
    let session_config =
      {
        Session.gap_policy;
        reorder_window;
        pipeline;
        queue_capacity;
        queue_policy;
        block_size;
        faults;
        fault_seed;
      }
    in
    let st =
      try
        Session.replay ~config:session_config
          ~tick:(fun () -> telemetry_publish srv engine)
          ~log:(fun line -> Format.printf "%s@." line)
          ~engine reader
      with Admission.Gap e ->
        Printf.eprintf "ocep replay: unrecoverable gap: %s\n" e;
        exit 1
    in
    let a = st.Source.admission in
    Printf.printf
      "frames: %d   admitted: %d   duplicates: %d   reordered: %d (max depth %d)\n"
      a.Admission.frames a.Admission.admitted a.Admission.duplicates a.Admission.reordered
      a.Admission.max_depth;
    if st.Source.crc_errors > 0 || st.Source.bad_frames > 0 || st.Source.truncated then
      Printf.printf "stream damage: %d crc errors, %d bad frames%s\n" st.Source.crc_errors
        st.Source.bad_frames
        (if st.Source.truncated then ", truncated tail" else "");
    if a.Admission.gaps > 0 || a.Admission.late > 0 || a.Admission.orphan_receives > 0 then
      Printf.printf "loss: %d gaps (%d events by trace), %d late, %d orphan receives\n"
        a.Admission.gaps
        (Array.fold_left ( + ) 0 a.Admission.trace_gaps)
        a.Admission.late a.Admission.orphan_receives;
    if pipeline then
      Printf.printf "queue: max occupancy %d, shed %d\n" st.Source.queue_max_occupancy
        st.Source.queue_shed;
    Printf.printf "events: %d   matches found: %d   reported subset: %d\n"
      (Engine.events_processed engine)
      (Engine.matches_found engine)
      (List.length (Engine.reports engine));
    Printf.printf "reports digest: %s\n" (Runner.reports_digest engine);
    List.iter
      (fun (file, net, h) ->
        let m = Engine.Handle.metrics h in
        if List.length handles > 1 then
          Printf.printf "pattern %d (%s): matches %d   reports %d   coverage %d/%d\n"
            (Engine.Handle.id h) file m.Engine.Handle.matches m.Engine.Handle.reports_retained
            m.Engine.Handle.covered_slots m.Engine.Handle.seen_slots;
        List.iteri
          (fun i (r : Ocep.Subset.report) ->
            if i < max_reports then begin
              Format.printf "match %d (digest %s):@." (i + 1)
                (Runner.report_digest ~pattern_id:(Engine.Handle.id h) r);
              Array.iteri
                (fun leaf e ->
                  Format.printf "  %s = %a@."
                    net.Compile.leaves.(leaf).Compile.cls.Ocep_pattern.Ast.cname
                    Ocep_base.Event.pp e)
                r.Ocep.Subset.events
            end)
          (Engine.Handle.reports h))
      handles;
    (match metrics_out with
    | None -> ()
    | Some path ->
      Engine.sync_metrics engine;
      let oc = open_out path in
      if Filename.check_suffix path ".prom" then
        output_string oc (Ocep_obs.Snapshot.prometheus (Engine.metrics engine))
      else Printf.fprintf oc "%s\n" (Ocep_obs.Snapshot.json (Engine.metrics engine));
      close_out oc;
      Printf.printf "metrics written to %s\n" path);
    telemetry_finish srv engine ~linger;
    0
  in
  let info =
    Cmd.info "replay"
      ~doc:
        "Replay a recorded wire-format log through the admission layer into the engine, \
         optionally degrading delivery first with $(b,--faults). Under bounded reorder and \
         duplication the printed reports digest matches $(b,ocep run) on the same workload."
  in
  Cmd.v info
    Term.(
      const run $ pattern_files $ wire_file $ faults $ fault_seed $ gap_policy $ reorder_window
      $ queue_capacity $ queue_policy $ pipeline $ block_size $ parallelism $ max_reports
      $ metrics_out $ listen_arg $ linger_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let listen =
    Arg.(
      value
      & opt (host_port_conv "listen address") ("127.0.0.1", 7070)
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:"Address to accept tenant connections on. PORT 0 binds a free port.")
  in
  let shards =
    Arg.(
      value & opt int Server.default_config.Server.shards
      & info [ "shards" ] ~docv:"N"
          ~doc:"Matching domains; each tenant is pinned to $(i,hash(tenant) mod N).")
  in
  let tenant_quota =
    Arg.(
      value & opt int Server.default_config.Server.tenant_quota
      & info [ "tenant-quota" ] ~docv:"N"
          ~doc:
            "Per-tenant in-flight event cap (queued toward the tenant's shard but not yet \
             matched), and the ceiling a HELLO quota override may ask for.")
  in
  let quota_policy =
    Arg.(
      value
      & opt (enum [ ("block", Bqueue.Block); ("shed", Bqueue.Shed) ]) Bqueue.Block
      & info [ "quota-policy" ] ~docv:"POLICY"
          ~doc:
            "What a full quota does to the tenant's stream: $(b,block) its connection \
             (lossless backpressure) or $(b,shed) the overflow (counted, tenant-local).")
  in
  let gap_policy =
    Arg.(
      value
      & opt gap_policy_conv Server.default_config.Server.session.Session.gap_policy
      & info [ "gap-policy" ] ~docv:"POLICY"
          ~doc:
            "Per-tenant admission gap policy, as in $(b,ocep replay). The default $(b,skip:64) \
             lets a quota-shedding tenant keep matching across its own holes.")
  in
  let reorder_window =
    Arg.(
      value & opt int Server.default_config.Server.session.Session.reorder_window
      & info [ "reorder-window" ] ~docv:"N"
          ~doc:"Max out-of-order frames held per tenant before a gap is declared.")
  in
  let max_patterns =
    Arg.(
      value & opt int Server.default_config.Server.max_patterns
      & info [ "max-patterns" ] ~docv:"N" ~doc:"ATTACH cap per tenant.")
  in
  let metrics_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "Serve per-tenant service metrics ($(b,ocep_tenant_events_total\\{tenant=...\\}), \
             queue depths) over HTTP on 127.0.0.1:$(docv). 0 binds a free port.")
  in
  let run (host, port) shards tenant_quota quota_policy gap_policy reorder_window max_patterns
      metrics_port =
    if shards <= 0 then begin
      Printf.eprintf "ocep serve: --shards must be > 0, got %d\n" shards;
      exit 2
    end;
    if tenant_quota < 0 then begin
      Printf.eprintf "ocep serve: --tenant-quota must be >= 0, got %d\n" tenant_quota;
      exit 2
    end;
    let config =
      {
        Server.host;
        port;
        shards;
        tenant_quota;
        quota_policy;
        session =
          { Session.default with Session.gap_policy; Session.reorder_window };
        max_patterns;
        metrics_port;
      }
    in
    let srv = Server.start ~config () in
    Printf.printf "ocep serve: listening on %s:%d (%d shard%s, tenant quota %d %s)\n%!" host
      (Server.port srv) shards
      (if shards = 1 then "" else "s")
      tenant_quota
      (match quota_policy with Bqueue.Block -> "block" | Bqueue.Shed -> "shed");
    (match Server.metrics_port srv with
    | Some p -> Printf.printf "ocep serve: metrics on http://127.0.0.1:%d/metrics\n%!" p
    | None -> ());
    let stop = Atomic.make false in
    let on_signal = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
    Sys.set_signal Sys.sigint on_signal;
    Sys.set_signal Sys.sigterm on_signal;
    while not (Atomic.get stop) do
      Thread.delay 0.2
    done;
    Printf.printf "ocep serve: shutting down\n%!";
    Server.stop srv;
    0
  in
  let info =
    Cmd.info "serve" ~doc:"Run the sharded multi-tenant matching service"
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Accept framed tenant connections (the $(b,ocep record) wire format over TCP). \
             Each connection names its traces in the stream header, identifies itself with a \
             HELLO control frame, and then interleaves event frames with control frames: \
             ATTACH/DETACH edit the tenant's pattern registry at an exact stream position, \
             STATS and DRAIN return live counters and the tenant's reports digest. Tenants \
             are pinned to shards (one OCaml domain each) and isolated: per-tenant engines, \
             per-tenant admission, per-tenant quotas.";
        ]
  in
  Cmd.v info
    Term.(
      const run $ listen $ shards $ tenant_quota $ quota_policy $ gap_policy $ reorder_window
      $ max_patterns $ metrics_port)

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let explain_cmd =
  let digest =
    Arg.(
      value & pos 0 string ""
      & info [] ~docv:"DIGEST"
          ~doc:
            "Report digest (prefix allowed) as printed by $(b,ocep run)/$(b,ocep replay) next \
             to each match.")
  in
  let list_all =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"Instead of explaining one report, list every retained report's \
                              digest.")
  in
  let case =
    Arg.(
      value
      & opt (some (enum (List.map (fun n -> (n, n)) Cases.all_names))) None
      & info [ "case"; "c" ] ~docv:"CASE"
          ~doc:
            "Re-run a built-in workload (deadlock, races, atomicity, ordering, twopc, \
             election, gossip or lockserver) and explain one of its reports. Deterministic: \
             the same case, traces, events and seed reproduce the same digests.")
  in
  let traces =
    Arg.(value & opt int 10 & info [ "traces"; "t" ] ~docv:"N" ~doc:"Traces (with --case).")
  in
  let events =
    Arg.(value & opt int 50_000 & info [ "events"; "n" ] ~docv:"N" ~doc:"Events (with --case).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed"; "s" ] ~docv:"SEED" ~doc:"Seed (with --case).")
  in
  let wire_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "input"; "i" ] ~docv:"FILE"
          ~doc:
            "Replay a recorded wire-format log (see $(b,ocep record)) through admission and \
             explain one of its reports; requires $(b,--pattern).")
  in
  let pattern_files =
    Arg.(
      value
      & opt_all file []
      & info [ "pattern"; "p" ] ~docv:"FILE" ~doc:"Pattern source file(s), with $(b,--input).")
  in
  let run digest list_all case traces events seed wire_file pattern_files =
    if digest = "" && not list_all then begin
      Printf.eprintf "ocep explain: give a DIGEST (or --list)\n";
      exit 2
    end;
    let finish engine =
      if list_all then begin
        List.iter
          (fun h ->
            let pattern_id = Engine.Handle.id h in
            List.iter
              (fun r ->
                Printf.printf "pattern %d  %s  seq %d\n" pattern_id
                  (Runner.report_digest ~pattern_id r)
                  r.Ocep.Subset.seq)
              (Engine.Handle.reports h))
          (Engine.handles engine);
        0
      end
      else begin
        print_string (Explain.explain engine ~digest);
        match Explain.find engine ~digest with Some _ -> 0 | None -> 1
      end
    in
    match (case, wire_file) with
    | Some c, None ->
      let w = Cases.make c ~traces ~seed ~max_events:events in
      let names = Sim.trace_names w.Workload.sim_config in
      let poet = Poet.create ~trace_names:names () in
      let net = Compile.compile (Parser.parse w.Workload.pattern) in
      let engine = Engine.create ~net ~poet () in
      Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
      ignore
        (Sim.run w.Workload.sim_config
           ~sink:(fun raw -> ignore (Poet.ingest poet raw))
           ~bodies:w.Workload.bodies);
      finish engine
    | None, Some f ->
      if pattern_files = [] then begin
        Printf.eprintf "ocep explain: --input needs at least one --pattern\n";
        exit 2
      end;
      let nets = List.map snd (load_pattern_files pattern_files) in
      let ic = open_in_bin f in
      Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
      let reader =
        try Framing.create_reader ic
        with Framing.Bad_header e ->
          Printf.eprintf "ocep explain: %s: %s\n" f e;
          exit 1
      in
      let poet = Poet.create ~trace_names:(Framing.reader_trace_names reader) () in
      let engine = Engine.create ~poet () in
      List.iter (fun net -> ignore (Engine.add_pattern engine net)) nets;
      Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
      (try ignore (Session.replay ~engine reader)
       with Admission.Gap e ->
         Printf.eprintf "ocep explain: unrecoverable gap: %s\n" e;
         exit 1);
      finish engine
    | _ ->
      Printf.eprintf "ocep explain: give exactly one of --case or --input\n";
      2
  in
  let info =
    Cmd.info "explain"
      ~doc:
        "Re-run a workload (or replay a recorded log) and render the full ingest -> match \
         causal chain of the report named by DIGEST: each bound event with its wire record, \
         admission verdict and decode/admit/dispatch timeline, the causal constraints the \
         matcher verified, and the admission drop-ring context. If no retained report matches, \
         prints each pattern's nearest miss — which leaf failed binding last."
  in
  Cmd.v info
    Term.(
      const run $ digest $ list_all $ case $ traces $ events $ seed $ wire_file $ pattern_files)

(* ------------------------------------------------------------------ *)
(* top                                                                 *)
(* ------------------------------------------------------------------ *)

let top_cmd =
  let addr =
    Arg.(
      required
      & pos 0 (some (host_port_conv "address")) None
      & info [] ~docv:"HOST:PORT" ~doc:"Telemetry listener of a running $(b,--listen) command.")
  in
  let interval =
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SEC" ~doc:"Poll interval.")
  in
  let iterations =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N" ~doc:"Stop after N polls (0 = until interrupted).")
  in
  (* the metrics worth a live terminal line, in display order *)
  let interesting name =
    List.exists
      (fun p -> String.length name >= String.length p && String.sub name 0 (String.length p) = p)
      [
        "ocep_events_total";
        "ocep_terminating_total";
        "ocep_matches_total";
        "ocep_reports_total";
        "ocep_watermark";
        "ocep_ingest_lag_records";
        "ocep_reorder_depth";
        "ocep_ingest_frames_total";
        "ocep_ingest_admitted_total";
        "ocep_trace_staleness_us";
        "ocep_spans_total";
        "ocep_spans_dropped_total";
      ]
  in
  let run (host, port) interval iterations =
    if interval <= 0. then begin
      Printf.eprintf "ocep top: --interval must be positive\n";
      exit 2
    end;
    let n = ref 0 in
    let continue = ref true in
    let code = ref 0 in
    let get path =
      try Serve.http_get ~host ~port ~path () with
      | Unix.Unix_error (e, _, _) -> (0, Unix.error_message e)
      | Failure e | Invalid_argument e -> (0, e)
    in
    while !continue do
      incr n;
      let health_status, health_body = get "/healthz" in
      let status, body = get "/snapshot.json" in
      print_string "\027[2J\027[H";
      Printf.printf "ocep top — http://%s:%d  poll %d  health %d %s\n" host port !n
        health_status
        (String.trim health_body);
      (if status <> 200 then begin
         Printf.printf "snapshot: HTTP %d\n" status;
         code := 1
       end
       else
         match Minijson.parse body with
         | Error e ->
           Printf.printf "snapshot: unparseable: %s\n" e;
           code := 1
         | Ok (Minijson.Obj fields) ->
           code := 0;
           List.iter
             (fun (k, v) ->
               if interesting k then
                 match v with
                 | Minijson.Num f ->
                   if Float.is_integer f then Printf.printf "  %-48s %.0f\n" k f
                   else Printf.printf "  %-48s %.1f\n" k f
                 | _ -> ())
             fields
         | Ok _ ->
           Printf.printf "snapshot: not a JSON object\n";
           code := 1);
      flush stdout;
      if iterations > 0 && !n >= iterations then continue := false
      else Unix.sleepf interval
    done;
    !code
  in
  let info =
    Cmd.info "top"
      ~doc:
        "Live terminal view of a running engine: poll $(b,/snapshot.json) from an $(b,ocep run \
         --listen)/$(b,ocep replay --listen) process and render the headline counters, \
         watermarks, lag and staleness."
  in
  Cmd.v info Term.(const run $ addr $ interval $ iterations)

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let pattern_file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Pattern source file.")
  in
  let all_cases =
    Arg.(
      value & flag
      & info [ "all-cases" ]
          ~doc:
            "Instead of FILE, compile every built-in case-study pattern and register all of \
             them into one multi-pattern engine; exit nonzero on the first failure.")
  in
  let check_one src =
    match Compile.compile_file (Parser.parse_file src) with
    | nets -> Ok nets
    | exception Parser.Parse_error e -> Error (Printf.sprintf "parse error: %s" e)
    | exception Compile.Compile_error e -> Error (Printf.sprintf "compile error: %s" e)
    | exception Invalid_argument e -> Error e
  in
  let run pattern_file all_cases =
    match (pattern_file, all_cases) with
    | Some _, true | None, false ->
      Printf.eprintf "ocep check: give exactly one of FILE or --all-cases\n";
      2
    | Some f, false -> (
      match check_one (read_file f) with
      | Ok [ (_, net) ] ->
        Format.printf "%a" Compile.pp net;
        0
      | Ok nets ->
        List.iter (fun (name, net) -> Format.printf "-- %s --@.%a" name Compile.pp net) nets;
        0
      | Error e ->
        Printf.eprintf "%s\n" e;
        1)
    | None, true ->
      (* one registry engine must accept all four patterns together *)
      let w = Cases.make (List.hd Cases.all_names) ~traces:6 ~seed:1 ~max_events:1 in
      let poet = Poet.create ~trace_names:(Sim.trace_names w.Workload.sim_config) () in
      let engine = Engine.create ~poet () in
      Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
      let rec go = function
        | [] ->
          Printf.printf "all %d case patterns compile and register together\n"
            (Engine.pattern_count engine);
          0
        | case :: rest -> (
          let src = (Cases.make case ~traces:6 ~seed:1 ~max_events:1).Workload.pattern in
          match check_one src with
          | Error e ->
            Printf.eprintf "%s: %s\n" case e;
            1
          | Ok ([] | _ :: _ :: _) ->
            Printf.eprintf "%s: expected one pattern\n" case;
            1
          | Ok [ (_, net) ] -> (
            match Engine.add_pattern engine net with
            | h ->
              Printf.printf "%-10s ok: pattern %d, %d leaves\n" case (Engine.Handle.id h)
                (Compile.size net);
              go rest
            | exception Invalid_argument e ->
              Printf.eprintf "%s: %s\n" case e;
              1))
      in
      go Cases.all_names
  in
  let info =
    Cmd.info "check"
      ~doc:
        "Parse and compile a pattern, printing its constraint net; or validate every built-in \
         case pattern with $(b,--all-cases)."
  in
  Cmd.v info Term.(const run $ pattern_file $ all_cases)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let seeds =
    Arg.(value & opt int 200 & info [ "seeds"; "n" ] ~docv:"N" ~doc:"Number of seeds to fuzz.")
  in
  let start_seed =
    Arg.(value & opt int 1 & info [ "start-seed" ] ~docv:"SEED" ~doc:"First seed.")
  in
  let mutant =
    let names = String.concat ", " (List.map fst Fuzz.mutations) in
    Arg.(
      value
      & opt (some string) None
      & info [ "mutant" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf
               "Seed a deliberate bug into the engine under test (%s) and expect divergences — \
                a self-test of the fuzzer. Exit status inverts: finding nothing is the failure."
               names))
  in
  let corpus_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus-dir" ] ~docv:"DIR"
          ~doc:"Save each minimized diverging case into DIR as a replayable .case file.")
  in
  let run seeds start_seed mutant corpus_dir =
    if seeds <= 0 then begin
      Printf.eprintf "ocep fuzz: --seeds must be positive\n";
      2
    end
    else begin
      let mutation =
        match mutant with
        | None -> None
        | Some name -> (
          match Fuzz.mutation_of_name name with
          | Some m -> Some m
          | None ->
            Printf.eprintf "ocep fuzz: unknown mutant %S (want %s)\n" name
              (String.concat ", " (List.map fst Fuzz.mutations));
            exit 2)
      in
      let s =
        Fuzz.run ?mutation ?corpus_dir ~log:print_endline ~seeds ~start_seed ()
      in
      Printf.printf "fuzz: %d seeds, brute-force oracle on %d, %d divergence(s)\n" s.Fuzz.s_ran
        s.Fuzz.s_oracle_checked
        (List.length s.Fuzz.s_failures);
      match (mutation, s.Fuzz.s_failures) with
      | None, [] -> 0
      | None, (seed, d) :: _ ->
        Printf.printf "first divergence: seed %d: %s: %s\n" seed d.Fuzz.d_oracle d.Fuzz.d_detail;
        1
      | Some _, [] ->
        (* a mutant that survives the campaign means the fuzzer is blind *)
        Printf.printf "mutant survived %d seeds undetected\n" s.Fuzz.s_ran;
        1
      | Some _, (seed, d) :: _ ->
        Printf.printf "mutant caught: seed %d: %s: %s\n" seed d.Fuzz.d_oracle d.Fuzz.d_detail;
        0
    end
  in
  let info =
    Cmd.info "fuzz"
      ~doc:
        "Differential fuzzing: random (pattern, workload, fault schedule) cases — every \
         third one a template-instantiated multi-pattern registry — checked against the \
         parallel engine, the arena/record differential, dedicated per-pattern engines \
         (vs the shared dispatch automaton), the brute-force oracle and record/replay; \
         diverging cases are minimized and written to the corpus."
  in
  Cmd.v info Term.(const run $ seeds $ start_seed $ mutant $ corpus_dir)

(* ------------------------------------------------------------------ *)
(* info                                                                *)
(* ------------------------------------------------------------------ *)

let info_cmd =
  let trace_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"POET dump file.")
  in
  let diagram =
    Arg.(value & flag & info [ "diagram"; "d" ] ~doc:"Also draw the stream tail.")
  in
  let run trace_file diagram =
    let ic = open_in trace_file in
    let names, raws = Poet.load ic in
    close_in ic;
    if not (Ocep_poet.Linearize.is_linearization raws) then begin
      Printf.eprintf "error: %s is not a valid linearization (a receive precedes its send)
"
        trace_file;
      1
    end
    else begin
      let n = Array.length names in
      let per_trace = Array.make n 0 in
      let sends = ref 0 and recvs = ref 0 and internals = ref 0 in
      let by_type : (string, int) Hashtbl.t = Hashtbl.create 32 in
      List.iter
        (fun (r : Ocep_base.Event.raw) ->
          per_trace.(r.r_trace) <- per_trace.(r.r_trace) + 1;
          (match r.r_kind with
          | Ocep_base.Event.Send _ -> incr sends
          | Ocep_base.Event.Receive _ -> incr recvs
          | Ocep_base.Event.Internal -> incr internals);
          Hashtbl.replace by_type r.r_etype
            (1 + Option.value ~default:0 (Hashtbl.find_opt by_type r.r_etype)))
        raws;
      Printf.printf "%s: %d events, %d traces (%d sends, %d receives, %d internal)
" trace_file
        (List.length raws) n !sends !recvs !internals;
      Array.iteri (fun t name -> Printf.printf "  %-12s %8d events
" name per_trace.(t)) names;
      Printf.printf "event types:
";
      let types = List.sort (fun (_, a) (_, b) -> compare b a) (Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_type []) in
      List.iter (fun (ty, c) -> Printf.printf "  %-20s %8d
" ty c) types;
      if diagram then begin
        let poet = Poet.create ~retain:true ~trace_names:names () in
        List.iter (fun r -> ignore (Poet.ingest poet r)) raws;
        print_string (Ocep_poet.Diagram.render ~max_events:70 ~trace_names:names (Poet.all_events poet))
      end;
      0
    end
  in
  let info = Cmd.info "info" ~doc:"Inspect a trace dump: validity, per-trace and per-type counts." in
  Cmd.v info Term.(const run $ trace_file $ diagram)

(* ------------------------------------------------------------------ *)
(* repro                                                               *)
(* ------------------------------------------------------------------ *)

let repro_cmd =
  let events =
    Arg.(
      value & opt int 50_000
      & info [ "events"; "n" ] ~docv:"N" ~doc:"Events per run (the paper uses >1M).")
  in
  let runs =
    Arg.(
      value & opt int 2
      & info [ "runs"; "r" ] ~docv:"N" ~doc:"Seeded runs pooled per configuration (paper: 5).")
  in
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~docv:"SECTION"
          ~doc:"Limit to one section: fig3, fig6, fig7, fig8, fig9, fig10, completeness, \
                fig6-length, multi, baselines, lattice, ablations.")
  in
  let run events runs only =
    let scale = { Repro.events; runs } in
    let ppf = Format.std_formatter in
    (match only with
    | None -> Repro.all ppf ~scale
    | Some "fig3" -> Repro.fig3 ppf
    | Some "fig6" -> Repro.boxplot_figure ppf ~scale ~case:"deadlock"
    | Some "fig6-length" -> Repro.fig6_pattern_length ppf ~scale
    | Some "fig7" -> Repro.boxplot_figure ppf ~scale ~case:"races"
    | Some "fig8" -> Repro.boxplot_figure ppf ~scale ~case:"atomicity"
    | Some "fig9" -> Repro.boxplot_figure ppf ~scale ~case:"ordering"
    | Some "fig10" -> Repro.fig10 ppf ~scale
    | Some "completeness" -> Repro.completeness ppf ~scale
    | Some "multi" -> Repro.multi ppf ~scale
    | Some "baselines" -> Repro.baselines ppf ~scale
    | Some "lattice" -> Repro.lattice ppf ~scale
    | Some "ablations" ->
      Repro.ablation_pruning ppf ~scale;
      Repro.ablation_history ppf ~scale;
      Repro.ablation_gc ppf ~scale;
      Repro.ablation_parallel ppf ~scale
    | Some other -> Format.eprintf "unknown section %s@." other);
    0
  in
  let info = Cmd.info "repro" ~doc:"Regenerate the paper's evaluation tables and figures." in
  Cmd.v info Term.(const run $ events $ runs $ only)

let () =
  let doc = "OCEP: online causal-event-pattern matching (ICDCS 2013 reproduction)" in
  let info = Cmd.info "ocep" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            gen_cmd;
            record_cmd;
            run_cmd;
            replay_cmd;
            serve_cmd;
            explain_cmd;
            top_cmd;
            check_cmd;
            fuzz_cmd;
            info_cmd;
            repro_cmd;
          ]))
