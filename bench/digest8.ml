(* Temporary: capture per-pattern report digests for the 8 workloads
   across sequential/4-worker and arena/record modes. *)
module Sim = Ocep_sim.Sim
module Poet = Ocep_poet.Poet
module Engine = Ocep.Engine
module Workload = Ocep_workloads.Workload
module Cases = Ocep_harness.Cases
module Runner = Ocep_harness.Runner

let () =
  List.iter
    (fun case ->
      List.iter
        (fun (par, arena) ->
          let w = Cases.make case ~traces:10 ~seed:42 ~max_events:3000 in
          let names = Sim.trace_names w.Workload.sim_config in
          let poet = Poet.create ~trace_names:names () in
          let config =
            {
              Engine.default_config with
              Engine.parallelism = par;
              arena;
              record_latency = false;
              cutover_batch = 0;
              cutover_work = 0;
            }
          in
          let net =
            Ocep_pattern.Compile.compile (Ocep_pattern.Parser.parse w.Workload.pattern)
          in
          let engine = Engine.create ~config ~net ~poet () in
          Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
          ignore
            (Sim.run w.Workload.sim_config
               ~sink:(fun raw -> ignore (Poet.ingest poet raw))
               ~bodies:w.Workload.bodies);
          Printf.printf "%s par=%d arena=%b %s\n%!" case par arena
            (Runner.reports_digest engine))
        [ (1, true); (1, false); (4, true); (4, false) ])
    Cases.all_names
