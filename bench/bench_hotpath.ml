(* Hot-path throughput and allocation rate on the four case studies,
   with the arena ablation built in.

   Each case's raw event stream is generated once and replayed through a
   fresh POET + sequential engine (latency recording off: this program
   measures amortized ingest throughput, not per-arrival latency) in two
   modes:

     arena   flat dispatch — [Poet.ingest_flat] feeding an engine with
             [config.arena = true]; events live as struct-of-arrays rows
             and are boxed only on a class match
     record  the boxed path — [Poet.ingest] feeding a [config.arena =
             false] engine, the pre-arena hot path

   Methodology follows bench_obs: both modes warm up once, then R
   interleaved cycles run with a deterministic per-cycle shuffle (any
   position effect hits each mode equally often), each mode timed as the
   best of two back-to-back replays per cycle, and the arena speedup is
   the median across cycles of the within-cycle events/s ratio. Each
   timed replay starts from a settled heap (Gc.full_major). Reported per
   case and mode: events/s, us/event, bytes allocated per event
   (Gc.allocated_bytes across the replay), minor words per event, major
   collections, and matches found — which must agree between modes, or
   the program aborts.

   The before/after comparison works without any JSON parsing: build the
   pre-PR commit in a scratch worktree with this file dropped in, run

     bench_hotpath --raw-out baseline.tsv

   there, then on the current tree run

     bench_hotpath --baseline baseline.tsv

   which replays the same streams and writes BENCH_hotpath.json with the
   baseline columns and speedup ratios filled in (legacy 8-column
   baselines read as record-mode rows). Without --baseline the JSON
   carries the current numbers only.

   Knobs: OCEP_EVENTS (default 50_000) scales the streams;
   OCEP_HOTPATH_REPS (default 3) the interleaved cycles; OCEP_ARENA=0|1
   pins a single mode; OCEP_CASES=a,b runs a subset of the cases;
   OCEP_HOTPATH_MAX_ALLOC (bytes/event, float) turns the run into a CI
   smoke that fails when the deadlock case's arena allocation rate
   exceeds the budget. *)

module Sim = Ocep_sim.Sim
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine
module Workload = Ocep_workloads.Workload
module Cases = Ocep_harness.Cases
module Clock = Ocep_base.Clock

(* same trace counts as bench_parallel, so the two benchmarks describe
   the same workloads *)
let bench_traces = function "races" -> 8 | "ordering" -> 50 | _ -> 20

type row = {
  case : string;
  mode : string;  (* "arena" | "record" *)
  traces : int;
  events : int;
  wall_s : float;
  events_per_s : float;
  us_per_event : float;
  alloc_per_event : float;  (* bytes *)
  minor_words_per_event : float;
  major_collections : int;
  matches : int;
}

let modes =
  match Sys.getenv_opt "OCEP_ARENA" with
  | Some "0" -> [ "record" ]
  | Some _ -> [ "arena" ]
  | None -> [ "arena"; "record" ]

(* one timed replay: (wall_s, alloc/ev, minor words/ev, major GCs,
   events, matches) *)
let replay ~arena ~names ~net raws =
  let poet = Poet.create ~trace_names:names () in
  (* OCEP_PINS=0 disables pinned searches — an ablation knob for isolating
     ingest/dispatch/anchored-search cost from the pinned batches *)
  let pin_searches = Sys.getenv_opt "OCEP_PINS" <> Some "0" in
  (* OCEP_ENGINE=0: no engine at all — times the bare POET ingest path *)
  let engine =
    if Sys.getenv_opt "OCEP_ENGINE" = Some "0" then None
    else
      Some
        (Engine.create
           ~config:
             { Engine.default_config with Engine.record_latency = false; pin_searches; arena }
           ~net ~poet ())
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Engine.shutdown engine)
    (fun () ->
      (* start from the same heap state every time, so major-GC work is
         not attributed to whichever replay it lands on *)
      Gc.full_major ();
      let q0 = Gc.quick_stat () in
      let a0 = Gc.allocated_bytes () in
      let t0 = Clock.now_s () in
      if arena then Array.iter (fun r -> ignore (Poet.ingest_flat poet r)) raws
      else Array.iter (fun r -> ignore (Poet.ingest poet r)) raws;
      let wall_s = Clock.now_s () -. t0 in
      let alloc = Gc.allocated_bytes () -. a0 in
      let q1 = Gc.quick_stat () in
      let events = Poet.ingested poet in
      let matches = match engine with Some e -> Engine.matches_found e | None -> 0 in
      let per = float_of_int (max 1 events) in
      ( wall_s,
        alloc /. per,
        (q1.Gc.minor_words -. q0.Gc.minor_words) /. per,
        q1.Gc.major_collections - q0.Gc.major_collections,
        events,
        matches ))

let wall_of (w, _, _, _, _, _) = w
let matches_of (_, _, _, _, _, m) = m

let median a =
  let s = Array.copy a in
  Array.sort compare s;
  let n = Array.length s in
  if n land 1 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.

(* rows for one case (one per mode) plus the median within-cycle arena
   speedup and alloc ratio, when both modes ran *)
let bench_case ~max_events ~reps case =
  let traces = bench_traces case in
  let w = Cases.make case ~traces ~seed:2013 ~max_events in
  let names = Sim.trace_names w.Workload.sim_config in
  let raws = ref [] in
  let _ =
    Sim.run w.Workload.sim_config ~sink:(fun r -> raws := r :: !raws) ~bodies:w.Workload.bodies
  in
  let raws = Array.of_list (List.rev !raws) in
  let net = Compile.compile (Parser.parse w.Workload.pattern) in
  (* warm up each mode once: settles allocator and code paths *)
  List.iter (fun m -> ignore (replay ~arena:(m = "arena") ~names ~net raws)) modes;
  let results = Hashtbl.create 4 in
  List.iter (fun m -> Hashtbl.replace results m (Array.make reps (0., 0., 0., 0, 0, 0))) modes;
  for rep = 0 to reps - 1 do
    (* deterministically shuffle the mode order each cycle *)
    let order =
      List.sort (fun a b -> compare (Hashtbl.hash (rep, a)) (Hashtbl.hash (rep, b))) modes
    in
    List.iter
      (fun m ->
        let arena = m = "arena" in
        let r1 = replay ~arena ~names ~net raws in
        let r2 = replay ~arena ~names ~net raws in
        (Hashtbl.find results m).(rep) <- (if wall_of r1 <= wall_of r2 then r1 else r2))
      order
  done;
  (* the two modes must be observably identical *)
  (match modes with
  | [ m1; m2 ] ->
    let a = matches_of (Hashtbl.find results m1).(0)
    and b = matches_of (Hashtbl.find results m2).(0) in
    if a <> b then (
      Printf.eprintf "FATAL: %s: %d matches with %s, %d with %s — modes diverged\n" case a m1 b
        m2;
      exit 1)
  | _ -> ());
  let row_of m =
    let runs = Hashtbl.find results m in
    (* the fastest cycle: wall-clock noise on a shared box is strictly
       additive (scheduler steal, cache pollution), so the minimum is
       the consistent estimator of the noise-free cost, and taking the
       whole cycle keeps all metrics in a row from one actual replay.
       The cross-mode speedup below stays a median of within-cycle
       ratios, which cancels drift instead. *)
    let sorted = Array.copy runs in
    Array.sort (fun a b -> Float.compare (wall_of a) (wall_of b)) sorted;
    let wall_s, alloc_per_event, minor_words_per_event, major_collections, events, matches =
      sorted.(0)
    in
    {
      case;
      mode = m;
      traces;
      events;
      wall_s;
      events_per_s = float_of_int events /. wall_s;
      us_per_event = wall_s *. 1e6 /. float_of_int (max 1 events);
      alloc_per_event;
      minor_words_per_event;
      major_collections;
      matches;
    }
  in
  let rows = List.map row_of modes in
  let ratios =
    if List.mem "arena" modes && List.mem "record" modes then
      let aw = Hashtbl.find results "arena" and rw = Hashtbl.find results "record" in
      let speedup = median (Array.init reps (fun i -> wall_of rw.(i) /. wall_of aw.(i))) in
      let ar = List.find (fun r -> r.mode = "arena") rows
      and rr = List.find (fun r -> r.mode = "record") rows in
      Some (speedup, ar.alloc_per_event /. rr.alloc_per_event)
    else None
  in
  (rows, ratios)

(* ---- baseline exchange format: one tab-separated line per row ---- *)

let write_raw path rows =
  let oc = open_out path in
  List.iter
    (fun r ->
      Printf.fprintf oc "%s\t%s\t%d\t%d\t%.6f\t%.1f\t%.3f\t%.1f\t%.1f\t%d\t%d\n" r.case r.mode
        r.traces r.events r.wall_s r.events_per_s r.us_per_event r.alloc_per_event
        r.minor_words_per_event r.major_collections r.matches)
    rows;
  close_out oc

let read_raw path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       match String.split_on_char '\t' (String.trim line) with
       | [ case; mode; traces; events; wall_s; eps; upe; ape; mwpe; majc; matches ] ->
         rows :=
           {
             case;
             mode;
             traces = int_of_string traces;
             events = int_of_string events;
             wall_s = float_of_string wall_s;
             events_per_s = float_of_string eps;
             us_per_event = float_of_string upe;
             alloc_per_event = float_of_string ape;
             minor_words_per_event = float_of_string mwpe;
             major_collections = int_of_string majc;
             matches = int_of_string matches;
           }
           :: !rows
       | [ case; traces; events; wall_s; eps; upe; ape; matches ] ->
         (* legacy pre-arena format: boxed path, no GC columns *)
         rows :=
           {
             case;
             mode = "record";
             traces = int_of_string traces;
             events = int_of_string events;
             wall_s = float_of_string wall_s;
             events_per_s = float_of_string eps;
             us_per_event = float_of_string upe;
             alloc_per_event = float_of_string ape;
             minor_words_per_event = 0.;
             major_collections = 0;
             matches = int_of_string matches;
           }
           :: !rows
       | _ -> failwith (Printf.sprintf "%s: malformed baseline line: %s" path line)
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

let json_of_row r =
  Printf.sprintf
    {|{"traces": %d, "events": %d, "wall_s": %.6f, "events_per_s": %.1f, "us_per_event": %.3f, "alloc_per_event_bytes": %.1f, "minor_words_per_event": %.1f, "major_collections": %d, "matches": %d}|}
    r.traces r.events r.wall_s r.events_per_s r.us_per_event r.alloc_per_event
    r.minor_words_per_event r.major_collections r.matches

let () =
  let getenv_int name default =
    match Sys.getenv_opt name with Some s -> int_of_string s | None -> default
  in
  let max_events = getenv_int "OCEP_EVENTS" 50_000 in
  let reps = max 1 (getenv_int "OCEP_HOTPATH_REPS" 3) in
  let raw_out = ref None and baseline = ref None and out = ref "BENCH_hotpath.json" in
  let rec parse = function
    | "--raw-out" :: p :: rest -> raw_out := Some p; parse rest
    | "--baseline" :: p :: rest -> baseline := Some p; parse rest
    | "--out" :: p :: rest -> out := p; parse rest
    | [] -> ()
    | a :: _ -> failwith ("unknown argument " ^ a)
  in
  parse (List.tl (Array.to_list Sys.argv));
  Printf.printf "hot-path bench: %d events/case, %d interleaved cycles, modes: %s\n%!" max_events
    reps (String.concat " " modes);
  let cases =
    match Sys.getenv_opt "OCEP_CASES" with
    | None -> Cases.names
    | Some s ->
      let want = String.split_on_char ',' s in
      List.filter (fun c -> List.mem c want) Cases.names
  in
  let per_case = List.map (fun c -> (c, bench_case ~max_events ~reps c)) cases in
  let base = Option.map read_raw !baseline in
  let base_for case mode =
    (* exact (case, mode) match first, then a legacy record-mode row *)
    Option.bind base (fun rs ->
        match List.find_opt (fun r -> r.case = case && r.mode = mode) rs with
        | Some r -> Some r
        | None -> List.find_opt (fun r -> r.case = case && r.mode = "record") rs)
  in
  Printf.printf "\n%-10s %7s %-7s | %12s %14s | %10s %10s %6s | %8s %8s\n" "case" "traces"
    "mode" "us/event" "events/s" "alloc B/ev" "minorW/ev" "majGC" "arena-x" "vs-base";
  List.iter
    (fun (case, (rows, ratios)) ->
      ignore case;
      List.iter
        (fun r ->
          let arena_x =
            match ratios with
            | Some (s, _) when r.mode = "arena" -> Printf.sprintf "%7.2fx" s
            | _ -> "      --"
          in
          let vs_base =
            match base_for r.case r.mode with
            | Some b -> Printf.sprintf "%7.2fx" (r.events_per_s /. b.events_per_s)
            | None -> "      --"
          in
          Printf.printf "%-10s %7d %-7s | %12.3f %14.1f | %10.1f %10.1f %6d | %s %s\n" r.case
            r.traces r.mode r.us_per_event r.events_per_s r.alloc_per_event
            r.minor_words_per_event r.major_collections arena_x vs_base)
        rows)
    per_case;
  let all_rows = List.concat_map (fun (_, (rows, _)) -> rows) per_case in
  (match !raw_out with
  | Some p ->
    write_raw p all_rows;
    Printf.printf "\nwrote %s\n" p
  | None -> ());
  let oc = open_out !out in
  Printf.fprintf oc "{\n  \"events_per_case\": %d,\n  \"reps\": %d,\n  \"modes\": [%s],\n  \"cases\": {\n"
    max_events reps
    (String.concat ", " (List.map (Printf.sprintf "%S") modes));
  let n_cases = List.length per_case in
  List.iteri
    (fun i (case, (rows, ratios)) ->
      Printf.fprintf oc "    %S: {\n" case;
      let parts =
        List.map
          (fun r ->
            let before =
              match base_for r.case r.mode with
              | Some b ->
                Printf.sprintf
                  ",\n        \"before\": %s,\n        \"speedup_events_per_s\": %.3f,\n        \
                   \"alloc_ratio\": %.3f"
                  (json_of_row b)
                  (r.events_per_s /. b.events_per_s)
                  (r.alloc_per_event /. b.alloc_per_event)
              | None -> ""
            in
            Printf.sprintf "      %S: {\n        \"after\": %s%s\n      }" r.mode (json_of_row r)
              before)
          rows
        @
        match ratios with
        | Some (speedup, alloc_ratio) ->
          [
            Printf.sprintf "      \"arena_speedup_events_per_s\": %.3f" speedup;
            Printf.sprintf "      \"arena_alloc_ratio\": %.3f" alloc_ratio;
          ]
        | None -> []
      in
      Printf.fprintf oc "%s\n    }%s\n" (String.concat ",\n" parts)
        (if i = n_cases - 1 then "" else ","))
    per_case;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" !out;
  (* CI smoke: fail when the deadlock arena path exceeds the allocation
     budget (bytes/event) *)
  match Sys.getenv_opt "OCEP_HOTPATH_MAX_ALLOC" with
  | None -> ()
  | Some budget ->
    let budget = float_of_string budget in
    (match
       List.find_opt (fun r -> r.case = "deadlock" && r.mode = "arena") all_rows
     with
    | None -> Printf.eprintf "alloc budget set but no deadlock arena row; skipping check\n"
    | Some r ->
      if r.alloc_per_event > budget then (
        Printf.eprintf "FAIL: deadlock arena alloc %.1f B/event exceeds budget %.1f\n"
          r.alloc_per_event budget;
        exit 1)
      else
        Printf.printf "alloc budget ok: deadlock arena %.1f B/event <= %.1f\n" r.alloc_per_event
          budget)
