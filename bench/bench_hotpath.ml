(* Hot-path throughput and allocation rate on the four case studies.

   Each case's raw event stream is generated once and replayed through a
   fresh POET + sequential engine (latency recording off: this program
   measures amortized ingest throughput, not per-arrival latency).
   Reported per case: events/s, bytes allocated per event
   (Gc.allocated_bytes across the replay), us/event and matches found.

   The before/after comparison works without any JSON parsing: build the
   pre-PR commit in a scratch worktree with this file dropped in, run

     bench_hotpath --raw-out baseline.tsv

   there, then on the current tree run

     bench_hotpath --baseline baseline.tsv

   which replays the same streams and writes BENCH_hotpath.json with the
   baseline columns and speedup ratios filled in. Without --baseline the
   JSON carries the current numbers only. Scale with OCEP_EVENTS
   (default 50_000). *)

module Sim = Ocep_sim.Sim
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine
module Workload = Ocep_workloads.Workload
module Cases = Ocep_harness.Cases
module Clock = Ocep_base.Clock

(* same trace counts as bench_parallel, so the two benchmarks describe
   the same workloads *)
let bench_traces = function "races" -> 8 | "ordering" -> 50 | _ -> 20

type row = {
  case : string;
  traces : int;
  events : int;
  wall_s : float;
  events_per_s : float;
  us_per_event : float;
  alloc_per_event : float;  (* bytes *)
  matches : int;
}

let replay ~names ~net raws =
  let poet = Poet.create ~trace_names:names () in
  (* OCEP_PINS=0 disables pinned searches — an ablation knob for isolating
     ingest/dispatch/anchored-search cost from the pinned batches *)
  let pin_searches = Sys.getenv_opt "OCEP_PINS" <> Some "0" in
  (* OCEP_ENGINE=0: no engine at all — times the bare POET ingest path *)
  let engine =
    if Sys.getenv_opt "OCEP_ENGINE" = Some "0" then None
    else
      Some
        (Engine.create
           ~config:{ Engine.default_config with Engine.record_latency = false; pin_searches }
           ~net ~poet ())
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Engine.shutdown engine)
    (fun () ->
      let a0 = Gc.allocated_bytes () in
      let t0 = Clock.now_s () in
      List.iter (fun r -> ignore (Poet.ingest poet r)) raws;
      let wall_s = Clock.now_s () -. t0 in
      let alloc = Gc.allocated_bytes () -. a0 in
      let events = Poet.ingested poet in
      let matches = match engine with Some e -> Engine.matches_found e | None -> 0 in
      (wall_s, alloc /. float_of_int (max 1 events), events, matches))

let bench_case ~max_events case =
  let traces = bench_traces case in
  let w = Cases.make case ~traces ~seed:2013 ~max_events in
  let names = Sim.trace_names w.Workload.sim_config in
  let raws = ref [] in
  let _ =
    Sim.run w.Workload.sim_config ~sink:(fun r -> raws := r :: !raws) ~bodies:w.Workload.bodies
  in
  let raws = List.rev !raws in
  let net = Compile.compile (Parser.parse w.Workload.pattern) in
  (* one untimed warm-up pass settles allocator and code paths; the
     median of three timed replays rides out scheduler noise *)
  ignore (replay ~names ~net raws);
  let runs = List.init 3 (fun _ -> replay ~names ~net raws) in
  let wall_s, alloc_per_event, events, matches =
    match List.sort (fun (a, _, _, _) (b, _, _, _) -> Float.compare a b) runs with
    | [ _; mid; _ ] -> mid
    | _ -> assert false
  in
  {
    case;
    traces;
    events;
    wall_s;
    events_per_s = float_of_int events /. wall_s;
    us_per_event = wall_s *. 1e6 /. float_of_int (max 1 events);
    alloc_per_event;
    matches;
  }

(* ---- baseline exchange format: one tab-separated line per case ---- *)

let write_raw path rows =
  let oc = open_out path in
  List.iter
    (fun r ->
      Printf.fprintf oc "%s\t%d\t%d\t%.6f\t%.1f\t%.3f\t%.1f\t%d\n" r.case r.traces r.events
        r.wall_s r.events_per_s r.us_per_event r.alloc_per_event r.matches)
    rows;
  close_out oc

let read_raw path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       match String.split_on_char '\t' (String.trim line) with
       | [ case; traces; events; wall_s; eps; upe; ape; matches ] ->
         rows :=
           {
             case;
             traces = int_of_string traces;
             events = int_of_string events;
             wall_s = float_of_string wall_s;
             events_per_s = float_of_string eps;
             us_per_event = float_of_string upe;
             alloc_per_event = float_of_string ape;
             matches = int_of_string matches;
           }
           :: !rows
       | _ -> failwith (Printf.sprintf "%s: malformed baseline line: %s" path line)
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

let json_of_row r =
  Printf.sprintf
    {|{"traces": %d, "events": %d, "wall_s": %.6f, "events_per_s": %.1f, "us_per_event": %.3f, "alloc_per_event_bytes": %.1f, "matches": %d}|}
    r.traces r.events r.wall_s r.events_per_s r.us_per_event r.alloc_per_event r.matches

let () =
  let max_events =
    match Sys.getenv_opt "OCEP_EVENTS" with Some s -> int_of_string s | None -> 50_000
  in
  let raw_out = ref None and baseline = ref None and out = ref "BENCH_hotpath.json" in
  let rec parse = function
    | "--raw-out" :: p :: rest -> raw_out := Some p; parse rest
    | "--baseline" :: p :: rest -> baseline := Some p; parse rest
    | "--out" :: p :: rest -> out := p; parse rest
    | [] -> ()
    | a :: _ -> failwith ("unknown argument " ^ a)
  in
  parse (List.tl (Array.to_list Sys.argv));
  Printf.printf "hot-path bench: %d events/case\n%!" max_events;
  let rows = List.map (bench_case ~max_events) Cases.names in
  let base = Option.map read_raw !baseline in
  let base_for case =
    Option.bind base (fun rs -> List.find_opt (fun r -> r.case = case) rs)
  in
  Printf.printf "\n%-10s %7s | %12s %14s | %10s %8s\n" "case" "traces" "us/event" "events/s"
    "alloc B/ev" "speedup";
  List.iter
    (fun r ->
      let speedup =
        match base_for r.case with
        | Some b -> Printf.sprintf "%7.2fx" (r.events_per_s /. b.events_per_s)
        | None -> "      --"
      in
      Printf.printf "%-10s %7d | %12.3f %14.1f | %10.1f %s\n" r.case r.traces r.us_per_event
        r.events_per_s r.alloc_per_event speedup)
    rows;
  (match !raw_out with
  | Some p ->
    write_raw p rows;
    Printf.printf "\nwrote %s\n" p
  | None -> ());
  let oc = open_out !out in
  Printf.fprintf oc "{\n  \"events_per_case\": %d,\n  \"cases\": {\n" max_events;
  List.iteri
    (fun i r ->
      let before =
        match base_for r.case with
        | Some b ->
          Printf.sprintf
            ",\n      \"before\": %s,\n      \"speedup_events_per_s\": %.3f,\n      \
             \"alloc_ratio\": %.3f"
            (json_of_row b)
            (r.events_per_s /. b.events_per_s)
            (r.alloc_per_event /. b.alloc_per_event)
        | None -> ""
      in
      Printf.fprintf oc "    %S: {\n      \"after\": %s%s\n    }%s\n" r.case (json_of_row r)
        before
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" !out
