(* Service-tier scale: N concurrent tenant streams against one sharded
   server in this process, verified bit-identical to dedicated engines.

   Setup: K distinct workloads are recorded once and pre-framed into
   chunked byte strings; each tenant connects over loopback, attaches
   its workload's pattern, and the driver round-robins the chunks across
   all connections so every stream is live at once. Each tenant then
   DRAINs and its digest is compared against a dedicated single-process
   engine replaying the same recording (the program exits 1 on any
   mismatch or any shed frame).

   The measured span runs from the first streamed byte to the last DRAIN
   response, so it covers framing, routing, admission and matching for
   every tenant. Results go to BENCH_service.json and stdout. Scale with
   OCEP_TENANTS (default 1000), OCEP_EVENTS (per-workload cap, default
   150) and OCEP_SHARDS (default 4). *)

module Sim = Ocep_sim.Sim
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine
module Clock = Ocep_base.Clock
module Event = Ocep_base.Event
module Workload = Ocep_workloads.Workload
module Cases = Ocep_harness.Cases
module Wire = Ocep_ingest.Wire
module Framing = Ocep_ingest.Framing
module Session = Ocep_ingest.Session
module Server = Ocep_service.Server
module Client = Ocep_service.Client
module Control = Ocep_service.Control

let getenv_int name default =
  match Sys.getenv_opt name with Some s -> int_of_string s | None -> default

let chunks = 8

(* mirror the server's per-tenant engine settings so the oracle digests
   are comparable *)
let engine_cfg = { Engine.default_config with Engine.latency_sink = Engine.Histogram }

type prepared = {
  p_traces : string array;
  p_pattern : string;
  p_chunks : string list;  (* framed bytes, header excluded, in order *)
  p_events : int;
  p_oracle : string;  (* reports digest of a dedicated engine *)
}

let prepare ~case ~seed ~max_events =
  let w = Cases.make case ~traces:6 ~seed ~max_events in
  let names = Sim.trace_names w.Workload.sim_config in
  let raws = ref [] in
  ignore
    (Sim.run w.Workload.sim_config
       ~sink:(fun raw -> raws := raw :: !raws)
       ~bodies:w.Workload.bodies);
  let raws = Array.of_list (List.rev !raws) in
  let n = Array.length raws in
  let seqs = Array.make (Array.length names) 0 in
  let path = Filename.temp_file "ocep_bench_service" ".wire" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out_bin path in
  let wr = Framing.create_writer oc ~trace_names:names in
  Framing.flush wr;
  let marks = ref [ pos_out oc ] in
  Array.iteri
    (fun i (r : Event.raw) ->
      seqs.(r.Event.r_trace) <- seqs.(r.Event.r_trace) + 1;
      Framing.write wr (Wire.of_raw ~id:i ~seq:seqs.(r.Event.r_trace) r);
      if (i + 1) mod (max 1 (n / chunks)) = 0 || i = n - 1 then begin
        Framing.flush wr;
        marks := pos_out oc :: !marks
      end)
    raws;
  Framing.flush wr;
  close_out oc;
  let marks = List.rev !marks in
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let rec slices = function
    | a :: (b :: _ as rest) -> String.sub data a (b - a) :: slices rest
    | _ -> []
  in
  let p_chunks = slices marks in
  (* the oracle: a dedicated engine over the same recording, same
     admission knobs as the server gives each tenant *)
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let reader = Framing.create_reader ic in
  let poet = Poet.create ~trace_names:names () in
  let net = Compile.compile (Parser.parse w.Workload.pattern) in
  let engine = Engine.create ~config:engine_cfg ~net ~poet () in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  ignore (Session.replay ~config:Server.default_config.Server.session ~engine reader);
  {
    p_traces = names;
    p_pattern = w.Workload.pattern;
    p_chunks;
    p_events = n;
    p_oracle = Engine.reports_digest engine;
  }

let () =
  let tenants = getenv_int "OCEP_TENANTS" 1000 in
  let max_events = getenv_int "OCEP_EVENTS" 150 in
  let shards = getenv_int "OCEP_SHARDS" 4 in
  let cases = [| "races"; "atomicity"; "deadlock"; "ordering" |] in
  let workloads =
    Array.init 8 (fun k ->
        prepare ~case:cases.(k mod Array.length cases) ~seed:(100 + k) ~max_events)
  in
  let total_events =
    Array.to_seq (Array.init tenants (fun i -> workloads.(i mod 8).p_events))
    |> Seq.fold_left ( + ) 0
  in
  Printf.printf "service bench: %d tenants, %d shards, %d events total\n%!" tenants
    shards total_events;
  (* OCEP_SERVICE_ADDR=host:port drives an already-running `ocep serve`
     instead of an in-process server — the CI smoke uses this *)
  let srv, host, port =
    match Sys.getenv_opt "OCEP_SERVICE_ADDR" with
    | Some addr -> (
      match String.index_opt addr ':' with
      | Some i ->
        ( None,
          String.sub addr 0 i,
          int_of_string (String.sub addr (i + 1) (String.length addr - i - 1)) )
      | None -> failwith "OCEP_SERVICE_ADDR must be HOST:PORT")
    | None ->
      let srv =
        Server.start
          ~config:{ Server.default_config with Server.shards; max_patterns = 4 }
          ()
      in
      (Some srv, "127.0.0.1", Server.port srv)
  in
  Fun.protect ~finally:(fun () -> Option.iter Server.stop srv) @@ fun () ->
  let t_connect0 = Clock.now_s () in
  let clients =
    Array.init tenants (fun i ->
        let p = workloads.(i mod 8) in
        match
          Client.connect ~host ~port
            ~tenant:(Printf.sprintf "t%05d" i)
            ~traces:p.p_traces ()
        with
        | Result.Ok c -> c
        | Result.Error e ->
          Printf.eprintf "tenant %d: connect failed: %s\n" i
            (Ocep_base.Ocep_error.to_string e);
          exit 1)
  in
  Fun.protect ~finally:(fun () -> Array.iter Client.close clients) @@ fun () ->
  Array.iteri
    (fun i c ->
      match Client.attach c ~name:"p" ~source:workloads.(i mod 8).p_pattern with
      | Result.Ok _ -> ()
      | Result.Error e ->
        Printf.eprintf "tenant %d: attach failed: %s\n" i
          (Ocep_base.Ocep_error.to_string e);
        exit 1)
    clients;
  let connect_s = Clock.now_s () -. t_connect0 in
  (* stream: chunk j of every tenant before chunk j+1 of any, so all
     streams are in flight together *)
  let t0 = Clock.now_s () in
  let max_chunks =
    Array.fold_left (fun acc p -> max acc (List.length p.p_chunks)) 0 workloads
  in
  for j = 0 to max_chunks - 1 do
    Array.iteri
      (fun i c ->
        match List.nth_opt workloads.(i mod 8).p_chunks j with
        | Some bytes ->
          Client.send_encoded c bytes;
          Client.flush c
        | None -> ())
      clients
  done;
  Array.iter Client.flush clients;
  let mismatches = ref 0 and shed = ref 0 and matches = ref 0 and admitted = ref 0 in
  Array.iteri
    (fun i c ->
      let p = workloads.(i mod 8) in
      match Client.drain c with
      | Result.Ok st ->
        admitted := !admitted + st.Control.admitted;
        shed := !shed + st.Control.shed;
        matches := !matches + st.Control.matches;
        if st.Control.digest <> p.p_oracle then begin
          Printf.eprintf "tenant %d: digest %s <> dedicated %s\n" i st.Control.digest
            p.p_oracle;
          incr mismatches
        end;
        if st.Control.admitted <> p.p_events then begin
          Printf.eprintf "tenant %d: admitted %d of %d\n" i st.Control.admitted p.p_events;
          incr mismatches
        end
      | Result.Error e ->
        Printf.eprintf "tenant %d: drain failed: %s\n" i
          (Ocep_base.Ocep_error.to_string e);
        incr mismatches)
    clients;
  let elapsed = Clock.now_s () -. t0 in
  let ev_s = float_of_int !admitted /. elapsed in
  Printf.printf
    "connect+attach %.2fs   stream+drain %.2fs   %.0f ev/s   %d matches   %d shed   digests %s\n%!"
    connect_s elapsed ev_s !matches !shed
    (if !mismatches = 0 then "bit-identical" else Printf.sprintf "%d MISMATCH" !mismatches);
  let oc = open_out "BENCH_service.json" in
  Printf.fprintf oc
    "{\n\
    \  \"tenants\": %d,\n\
    \  \"shards\": %d,\n\
    \  \"total_events\": %d,\n\
    \  \"admitted\": %d,\n\
    \  \"shed\": %d,\n\
    \  \"matches\": %d,\n\
    \  \"connect_s\": %.3f,\n\
    \  \"elapsed_s\": %.3f,\n\
    \  \"events_per_s\": %.0f,\n\
    \  \"digests_identical\": %b\n\
     }\n"
    tenants shards total_events !admitted !shed !matches connect_s elapsed ev_s
    (!mismatches = 0);
  close_out oc;
  Printf.printf "wrote BENCH_service.json\n";
  if !mismatches > 0 || !shed > 0 then exit 1
