(* Telemetry overhead micro-bench (off by default; run explicitly with
   `dune exec bench/bench_obs.exe`).

   The observability layer's promise is Dapper's: the *always-on*
   telemetry — the match-provenance flight recorder, the per-record
   wire stamping and the pipeline watermarks — must be cheap enough to
   never turn off.  This program measures that promise on the
   message-race case study: the same raw stream is replayed through a
   fresh POET + engine in five modes:

   - [off]        everything off (no latency recording, no provenance)
   - [base]       the engine's pre-provenance defaults (per-arrival
                  latency timing into the histogram sink) — the
                  baseline the thresholds are measured against
   - [provenance] base plus the flight recorder (direct feed)
   - [wire]       provenance plus the full per-record ingest stamping:
                  [Engine.feed_wire] with verdict and timestamps, and
                  the watermark plane, with Source.replay's 1-in-64
                  timing sampling — everything a wire replay keeps on
   - [tracing]    provenance plus span tracing (the opt-in debug
                  facility), fed directly — the same basis the ~+40%
                  pre-optimization number was measured on

   The modes run interleaved, R cycles of all five, each mode timed as
   the best of two back-to-back replays per cycle (a scheduler burst
   rarely hits both), and each mode's overhead is the {e median across
   cycles of its within-cycle ratio to [base]}: machine-wide drift
   moves a whole cycle together, so pairing each replay with the base
   replay of the same cycle cancels it, and the median discards the
   cycles a hiccup still skews — considerably more stable than
   comparing per-mode minima on a shared box.  The run fails if the always-on plane — [wire] versus [base],
   i.e. provenance + watermark stamping — exceeds the overhead
   threshold (default 5%, OCEP_OBS_MAX_OVERHEAD to override), or if
   span tracing exceeds its own, looser budget versus [base] (default
   20%, OCEP_OBS_MAX_TRACING_OVERHEAD): spans ride a preallocated SoA
   ring precisely so that turning them on for a debugging session does
   not halve throughput.  OCEP_EVENTS and OCEP_OBS_REPS scale the
   measurement.  Results go to BENCH_obs.json. *)

module Sim = Ocep_sim.Sim
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine
module Workload = Ocep_workloads.Workload
module Cases = Ocep_harness.Cases
module Clock = Ocep_base.Clock
module Watermark = Ocep_obs.Watermark

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

let getenv_float name default =
  match Sys.getenv_opt name with
  | Some s -> ( match float_of_string_opt s with Some f when f > 0. -> f | _ -> default)
  | None -> default

type mode = {
  name : string;
  config : Engine.config;
  wire : bool;  (* replay through feed_wire + watermark stamps *)
}

let replay ~mode ~names ~net raws =
  let poet = Poet.create ~trace_names:names () in
  let engine = Engine.create ~config:mode.config ~net ~poet () in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown engine)
    (fun () ->
      let wall_s =
        if mode.wire then begin
          (* what a wire replay pays per record on top of the direct
             feed: the provenance stamp through [feed_wire] plus the
             watermark plane, with Source.replay's 1-in-64 timing
             sampling (full stamps on sampled records, tracker-only
             advances and stamp reuse on the rest) *)
          let wm = Watermark.create (Engine.metrics engine) in
          let id = ref 0 in
          let t0 = Clock.now_s () in
          List.iter
            (fun r ->
              let i = !id in
              if i land 63 = 0 then begin
                let decode_us = Clock.now_us () in
                Watermark.observe_decode wm ~id:i ~dur_us:0.1;
                Watermark.observe_admit wm ~id:i ~dur_us:0.;
                Engine.set_wire_stamps engine ~decode_us ~admit_us:decode_us;
                ignore (Engine.feed_wire engine ~id:i ~verdict:Ocep_obs.Provenance.In_order r);
                Watermark.observe_match wm ~id:i ~dur_us:(Clock.now_us () -. decode_us)
              end
              else begin
                Watermark.advance_decode wm ~id:i;
                Watermark.advance_admit wm ~id:i;
                ignore (Engine.feed_wire engine ~id:i ~verdict:Ocep_obs.Provenance.In_order r);
                Watermark.advance_match wm ~id:i
              end;
              incr id)
            raws;
          Watermark.sync wm;
          Clock.now_s () -. t0
        end
        else begin
          let t0 = Clock.now_s () in
          List.iter (fun r -> ignore (Poet.ingest poet r)) raws;
          Clock.now_s () -. t0
        end
      in
      (wall_s, Engine.matches_found engine))

let () =
  let max_events = getenv_int "OCEP_EVENTS" 20_000 in
  let reps = getenv_int "OCEP_OBS_REPS" 9 in
  let threshold_pct = getenv_float "OCEP_OBS_MAX_OVERHEAD" 5.0 in
  let tracing_threshold_pct = getenv_float "OCEP_OBS_MAX_TRACING_OVERHEAD" 20.0 in
  let case = "races" in
  let w = Cases.make case ~traces:8 ~seed:2013 ~max_events in
  let names = Sim.trace_names w.Workload.sim_config in
  let raws = ref [] in
  let _ =
    Sim.run w.Workload.sim_config ~sink:(fun r -> raws := r :: !raws) ~bodies:w.Workload.bodies
  in
  let raws = List.rev !raws in
  let net = Compile.compile (Parser.parse w.Workload.pattern) in
  let events = List.length raws in
  let off_config =
    { Engine.default_config with Engine.record_latency = false; provenance = false }
  in
  let base_config =
    { Engine.default_config with Engine.latency_sink = Engine.Histogram; provenance = false }
  in
  let provenance_config = { base_config with Engine.provenance = true } in
  let tracing_config = { provenance_config with Engine.trace_spans = true } in
  let modes =
    [
      { name = "off"; config = off_config; wire = false };
      { name = "base"; config = base_config; wire = false };
      { name = "provenance"; config = provenance_config; wire = false };
      { name = "wire"; config = provenance_config; wire = true };
      { name = "tracing"; config = tracing_config; wire = false };
    ]
  in
  Printf.printf "telemetry overhead bench: %s, %d events, best of %d reps per mode\n%!" case
    events reps;
  (* warm up each mode once, then run R interleaved cycles *)
  List.iter (fun mode -> ignore (replay ~mode ~names ~net raws)) modes;
  let walls = Hashtbl.create 8 and matches = Hashtbl.create 8 in
  List.iter (fun m -> Hashtbl.replace walls m.name (Array.make reps 0.)) modes;
  for rep = 0 to reps - 1 do
    (* deterministically shuffle the order each cycle: any position
       effect (frequency ramps, periodic neighbors) then hits every
       mode equally often instead of always the same one *)
    let order =
      List.sort
        (fun a b -> compare (Hashtbl.hash (rep, a.name)) (Hashtbl.hash (rep, b.name)))
        modes
    in
    List.iter
      (fun mode ->
        (* start each timed replay from the same heap state so major-GC
           work is not attributed to whichever mode it lands on *)
        Gc.full_major ();
        let wall1, m = replay ~mode ~names ~net raws in
        Gc.full_major ();
        let wall2, _ = replay ~mode ~names ~net raws in
        (Hashtbl.find walls mode.name).(rep) <- Float.min wall1 wall2;
        Hashtbl.replace matches mode.name m)
      order
  done;
  let m_off = Hashtbl.find matches "off" in
  List.iter
    (fun mode ->
      if Hashtbl.find matches mode.name <> m_off then (
        Printf.eprintf "FATAL: telemetry changed the results: %d matches off, %d with %s\n" m_off
          (Hashtbl.find matches mode.name) mode.name;
        exit 1))
    modes;
  if Sys.getenv_opt "OCEP_OBS_DEBUG" <> None then
    for rep = 0 to reps - 1 do
      Printf.printf "  cycle %2d:" rep;
      List.iter
        (fun m ->
          Printf.printf " %s=%.3f" m.name
            ((Hashtbl.find walls m.name).(rep) *. 1e6 /. float_of_int events))
        modes;
      print_newline ()
    done;
  let median a =
    let s = Array.copy a in
    Array.sort compare s;
    let n = Array.length s in
    if n land 1 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.
  in
  let per_event w = w *. 1e6 /. float_of_int (max 1 events) in
  let wall_med name = median (Hashtbl.find walls name) in
  let base_us = per_event (wall_med "base") in
  let overhead name =
    let w = Hashtbl.find walls name and b = Hashtbl.find walls "base" in
    median (Array.init reps (fun i -> ((w.(i) /. b.(i)) -. 1.) *. 100.))
  in
  let report name note =
    Printf.printf "  %-10s : %.3f us/event (%+.2f%% vs base%s)\n" name
      (per_event (wall_med name))
      (overhead name) note
  in
  report "off" "";
  Printf.printf "  %-10s : %.3f us/event (median of %d)\n" "base" base_us reps;
  report "provenance" "";
  report "wire" (Printf.sprintf ", threshold %.1f%%" threshold_pct);
  report "tracing" (Printf.sprintf ", threshold %.1f%%" tracing_threshold_pct);
  let pass = overhead "wire" < threshold_pct && overhead "tracing" < tracing_threshold_pct in
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    "{\n\
    \  \"case\": %S,\n\
    \  \"events\": %d,\n\
    \  \"reps\": %d,\n\
    \  \"off_us_per_event\": %.3f,\n\
    \  \"base_us_per_event\": %.3f,\n\
    \  \"provenance_us_per_event\": %.3f,\n\
    \  \"wire_us_per_event\": %.3f,\n\
    \  \"tracing_us_per_event\": %.3f,\n\
    \  \"provenance_overhead_pct\": %.2f,\n\
    \  \"wire_overhead_pct\": %.2f,\n\
    \  \"tracing_overhead_pct\": %.2f,\n\
    \  \"threshold_pct\": %.1f,\n\
    \  \"tracing_threshold_pct\": %.1f,\n\
    \  \"pass\": %b\n\
     }\n"
    case events reps
    (per_event (wall_med "off"))
    base_us
    (per_event (wall_med "provenance"))
    (per_event (wall_med "wire"))
    (per_event (wall_med "tracing"))
    (overhead "provenance") (overhead "wire") (overhead "tracing") threshold_pct
    tracing_threshold_pct pass;
  close_out oc;
  Printf.printf "wrote BENCH_obs.json\n";
  if not pass then (
    Printf.eprintf
      "FAIL: telemetry overhead out of budget (always-on %.1f%%, tracing %.1f%%)\n"
      threshold_pct tracing_threshold_pct;
    exit 1)
