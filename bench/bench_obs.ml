(* Telemetry overhead micro-bench (off by default; run explicitly with
   `dune exec bench/bench_obs.exe`).

   The observability layer's promise is Dapper's: the *always-on*
   telemetry — the metrics registry plus the bounded latency histogram
   (one log10 and an array increment per terminating arrival) — must be
   cheap enough to never turn off.  This program measures that promise
   on the message-race case study: the same raw stream is replayed
   through a fresh POET + engine with telemetry off (no latency
   recording), with the always-on telemetry (histogram sink), and with
   full span tracing on top (trace_spans, the opt-in debug facility
   that additionally pays two clock reads and a ring write per search).
   Each mode is best-of-R to cut scheduler noise; the run fails if the
   always-on mode's per-event overhead exceeds the threshold (default
   5%, OCEP_OBS_MAX_OVERHEAD to override; OCEP_EVENTS and OCEP_OBS_REPS
   scale the measurement).  The tracing mode is reported and recorded
   but carries no 5% claim — spans are off by default exactly because
   one span per search cannot fit a single-digit-percent budget on a
   ~2 us/event workload.  Results go to BENCH_obs.json. *)

module Sim = Ocep_sim.Sim
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine
module Workload = Ocep_workloads.Workload
module Cases = Ocep_harness.Cases
module Clock = Ocep_base.Clock

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

let getenv_float name default =
  match Sys.getenv_opt name with
  | Some s -> ( match float_of_string_opt s with Some f when f > 0. -> f | _ -> default)
  | None -> default

let replay ~config ~names ~net raws =
  let poet = Poet.create ~trace_names:names () in
  let engine = Engine.create ~config ~net ~poet () in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown engine)
    (fun () ->
      let t0 = Clock.now_s () in
      List.iter (fun r -> ignore (Poet.ingest poet r)) raws;
      let wall_s = Clock.now_s () -. t0 in
      (wall_s, Engine.matches_found engine))

let () =
  let max_events = getenv_int "OCEP_EVENTS" 20_000 in
  let reps = getenv_int "OCEP_OBS_REPS" 5 in
  let threshold_pct = getenv_float "OCEP_OBS_MAX_OVERHEAD" 5.0 in
  let case = "races" in
  let w = Cases.make case ~traces:8 ~seed:2013 ~max_events in
  let names = Sim.trace_names w.Workload.sim_config in
  let raws = ref [] in
  let _ =
    Sim.run w.Workload.sim_config ~sink:(fun r -> raws := r :: !raws) ~bodies:w.Workload.bodies
  in
  let raws = List.rev !raws in
  let net = Compile.compile (Parser.parse w.Workload.pattern) in
  let events = List.length raws in
  let off_config = { Engine.default_config with Engine.record_latency = false } in
  let metrics_config = { Engine.default_config with Engine.latency_sink = Engine.Histogram } in
  let tracing_config = { metrics_config with Engine.trace_spans = true } in
  let modes =
    [ ("off", off_config); ("metrics", metrics_config); ("metrics+tracing", tracing_config) ]
  in
  Printf.printf "telemetry overhead bench: %s, %d events, best of %d reps per mode\n%!" case
    events reps;
  (* warm up each mode once, then interleave the reps across modes so a
     machine-wide slowdown hits all of them alike; keep the best (min) *)
  List.iter (fun (_, config) -> ignore (replay ~config ~names ~net raws)) modes;
  let best = Hashtbl.create 4 and matches = Hashtbl.create 4 in
  for _ = 1 to reps do
    List.iter
      (fun (mode, config) ->
        let wall, m = replay ~config ~names ~net raws in
        (match Hashtbl.find_opt best mode with
        | Some w when w <= wall -> ()
        | _ -> Hashtbl.replace best mode wall);
        Hashtbl.replace matches mode m)
      modes
  done;
  let wall mode = Hashtbl.find best mode in
  let m_off = Hashtbl.find matches "off" in
  List.iter
    (fun (mode, _) ->
      if Hashtbl.find matches mode <> m_off then (
        Printf.eprintf "FATAL: telemetry changed the results: %d matches off, %d with %s\n" m_off
          (Hashtbl.find matches mode) mode;
        exit 1))
    modes;
  let per_event w = w *. 1e6 /. float_of_int (max 1 events) in
  let off_us = per_event (wall "off") in
  let overhead mode = (per_event (wall mode) -. off_us) /. off_us *. 100. in
  let metrics_pct = overhead "metrics" and tracing_pct = overhead "metrics+tracing" in
  let pass = metrics_pct < threshold_pct in
  Printf.printf "  off             : %.3f us/event (best of %d)\n" off_us reps;
  Printf.printf "  metrics         : %.3f us/event (%+.2f%%, threshold %.1f%%)\n"
    (per_event (wall "metrics"))
    metrics_pct threshold_pct;
  Printf.printf "  metrics+tracing : %.3f us/event (%+.2f%%, opt-in; no threshold)\n"
    (per_event (wall "metrics+tracing"))
    tracing_pct;
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    "{\n\
    \  \"case\": %S,\n\
    \  \"events\": %d,\n\
    \  \"reps\": %d,\n\
    \  \"off_us_per_event\": %.3f,\n\
    \  \"metrics_us_per_event\": %.3f,\n\
    \  \"tracing_us_per_event\": %.3f,\n\
    \  \"metrics_overhead_pct\": %.2f,\n\
    \  \"tracing_overhead_pct\": %.2f,\n\
    \  \"threshold_pct\": %.1f,\n\
    \  \"pass\": %b\n\
     }\n"
    case events reps off_us
    (per_event (wall "metrics"))
    (per_event (wall "metrics+tracing"))
    metrics_pct tracing_pct threshold_pct pass;
  close_out oc;
  Printf.printf "wrote BENCH_obs.json\n";
  if not pass then (
    Printf.eprintf "FAIL: always-on telemetry overhead %.2f%% exceeds %.1f%%\n" metrics_pct
      threshold_pct;
    exit 1)
