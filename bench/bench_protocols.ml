(* Protocol-workload smoke bench: end-to-end monitoring throughput of the
   four distributed-protocol cases added with the fuzzing PR (2PC
   coordinator-crash ordering, leader-election split brain, gossip
   anti-entropy staleness, lock-server fairness), plus a bounded
   differential-fuzz smoke so the CI bench job exercises the whole
   harness. Scale with OCEP_EVENTS (default 20_000) and OCEP_FUZZ_SEEDS
   (default 25; 0 disables). Results go to stdout, one line per case. *)

module Sim = Ocep_sim.Sim
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine
module Clock = Ocep_base.Clock
module Workload = Ocep_workloads.Workload
module Cases = Ocep_harness.Cases
module Fuzz = Ocep_harness.Fuzz

let best_of n f =
  let best = ref infinity in
  for _ = 1 to n do
    let t0 = Clock.now_s () in
    f ();
    best := min !best (Clock.now_s () -. t0)
  done;
  !best

let () =
  let max_events =
    match Sys.getenv_opt "OCEP_EVENTS" with Some s -> int_of_string s | None -> 20_000
  in
  let fuzz_seeds =
    match Sys.getenv_opt "OCEP_FUZZ_SEEDS" with Some s -> int_of_string s | None -> 25
  in
  Printf.printf "protocol bench: %d events per case\n%!" max_events;
  List.iter
    (fun case ->
      let w = Cases.make case ~traces:8 ~seed:2013 ~max_events in
      let names = Sim.trace_names w.Workload.sim_config in
      let net = Compile.compile (Parser.parse w.Workload.pattern) in
      let raws = ref [] in
      ignore
        (Sim.run w.Workload.sim_config
           ~sink:(fun r -> raws := r :: !raws)
           ~bodies:w.Workload.bodies);
      let raws = List.rev !raws in
      let n = List.length raws in
      let matches = ref 0 in
      let t =
        best_of 3 (fun () ->
            let poet = Poet.create ~trace_names:names () in
            let engine =
              Engine.create
                ~config:{ Engine.default_config with Engine.record_latency = false }
                ~net ~poet ()
            in
            List.iter (fun r -> ignore (Poet.ingest poet r)) raws;
            matches := Engine.matches_found engine)
      in
      Printf.printf "%-12s %7d events  %6d matches  %10.0f events/s\n%!" case n !matches
        (float_of_int n /. t))
    Cases.protocol_names;
  if fuzz_seeds > 0 then begin
    let t0 = Clock.now_s () in
    let s = Fuzz.run ~seeds:fuzz_seeds ~start_seed:1 () in
    Printf.printf "fuzz smoke: %d seeds, oracle on %d, %d divergence(s), %.1f s\n%!"
      s.Fuzz.s_ran s.Fuzz.s_oracle_checked
      (List.length s.Fuzz.s_failures)
      (Clock.now_s () -. t0);
    if s.Fuzz.s_failures <> [] then exit 1
  end
