(* Sequential vs parallel pinned-search fan-out on the four case studies.

   For each case the raw event stream is generated once, then replayed
   through a fresh POET + engine twice: parallelism = 1 (the sequential
   baseline) and parallelism = P workers.  Reported per case: wall time,
   amortized us/event, median per-terminating-arrival latency, and
   matches found — the two modes must agree on matches (the fan-out's
   determinism contract), which this program asserts.

   Results go to BENCH_parallel.json and a table on stdout.  Note the
   speedup column only means something on a multi-core machine; the JSON
   records [recommended_domain_count] so a single-core run is not
   mistaken for a parallelism regression.  Scale with OCEP_EVENTS
   (default 20_000). *)

module Sim = Ocep_sim.Sim
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine
module Workload = Ocep_workloads.Workload
module Cases = Ocep_harness.Cases
module Clock = Ocep_base.Clock
module Histogram = Ocep_stats.Histogram

(* trace counts where pinned searches dominate: the paper's mid-scale
   points, except races where 8 traces is already search-heavy *)
let bench_traces = function
  | "races" -> 8
  | "ordering" -> 50
  | _ -> 20

type run_result = {
  wall_s : float;
  us_per_event : float;
  median_us : float;
  tail : Histogram.tail option;  (* per-arrival p50/p95/p99/p999, from the bounded histogram *)
  matches : int;
  events : int;
}

let median a =
  if Array.length a = 0 then 0.
  else begin
    let a = Array.copy a in
    Array.sort Float.compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.
  end

let replay ~parallelism ~names ~net raws =
  let poet = Poet.create ~trace_names:names () in
  let engine =
    Engine.create
      ~config:
        { Engine.default_config with Engine.parallelism; latency_sink = Engine.Both }
      ~net ~poet ()
  in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown engine)
    (fun () ->
      let t0 = Clock.now_s () in
      List.iter (fun r -> ignore (Poet.ingest poet r)) raws;
      let wall_s = Clock.now_s () -. t0 in
      let events = Poet.ingested poet in
      let h = Engine.latency_histogram engine in
      {
        wall_s;
        us_per_event = wall_s *. 1e6 /. float_of_int (max 1 events);
        median_us = median (Engine.latencies_us engine);
        tail = (if Histogram.count h = 0 then None else Some (Histogram.tail h));
        matches = Engine.matches_found engine;
        events;
      })

let bench_case ~max_events ~parallel_workers case =
  let traces = bench_traces case in
  let w = Cases.make case ~traces ~seed:2013 ~max_events in
  let names = Sim.trace_names w.Workload.sim_config in
  let raws = ref [] in
  let _ =
    Sim.run w.Workload.sim_config ~sink:(fun r -> raws := r :: !raws) ~bodies:w.Workload.bodies
  in
  let raws = List.rev !raws in
  let net = Compile.compile (Parser.parse w.Workload.pattern) in
  let seq = replay ~parallelism:1 ~names ~net raws in
  let par = replay ~parallelism:parallel_workers ~names ~net raws in
  if seq.matches <> par.matches then (
    Printf.eprintf "FATAL: %s: sequential found %d matches, parallel found %d\n" case seq.matches
      par.matches;
    exit 1);
  (case, traces, seq, par)

let json_of_run r =
  let tail =
    match r.tail with
    | None -> ""
    | Some t ->
      Printf.sprintf {|, "p50": %.3f, "p95": %.3f, "p99": %.3f, "p999": %.3f|} t.Histogram.p50
        t.Histogram.p95 t.Histogram.p99 t.Histogram.p999
  in
  Printf.sprintf
    {|{"wall_s": %.6f, "us_per_event": %.3f, "median_us": %.3f%s, "matches": %d, "events": %d}|}
    r.wall_s r.us_per_event r.median_us tail r.matches r.events

let () =
  let max_events =
    match Sys.getenv_opt "OCEP_EVENTS" with Some s -> int_of_string s | None -> 20_000
  in
  let cores = Domain.recommended_domain_count () in
  let parallel_workers = max 2 (min 4 cores) in
  Printf.printf "parallel fan-out bench: %d events/case, %d workers (%d cores)\n%!" max_events
    parallel_workers cores;
  let rows = List.map (bench_case ~max_events ~parallel_workers) Cases.names in
  Printf.printf "\n%-10s %7s | %12s %12s | %12s %12s | %10s %10s | %8s\n" "case" "traces"
    "seq us/ev" "par us/ev" "seq med us" "par med us" "seq p99" "par p99" "speedup";
  let p99 r = match r.tail with Some t -> t.Histogram.p99 | None -> 0. in
  List.iter
    (fun (case, traces, seq, par) ->
      Printf.printf "%-10s %7d | %12.3f %12.3f | %12.2f %12.2f | %10.2f %10.2f | %7.2fx\n" case
        traces seq.us_per_event par.us_per_event seq.median_us par.median_us (p99 seq) (p99 par)
        (seq.wall_s /. par.wall_s))
    rows;
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    "{\n  \"events_per_case\": %d,\n  \"recommended_domain_count\": %d,\n  \
     \"parallel_workers\": %d,\n  \"cases\": {\n"
    max_events cores parallel_workers;
  List.iteri
    (fun i (case, traces, seq, par) ->
      Printf.fprintf oc
        "    %S: {\n      \"traces\": %d,\n      \"sequential\": %s,\n      \"parallel\": %s,\n      \
         \"speedup\": %.3f,\n      \"equal_results\": true\n    }%s\n"
        case traces (json_of_run seq) (json_of_run par)
        (seq.wall_s /. par.wall_s)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  Printf.printf "\nwrote BENCH_parallel.json\n"
