(* Multi-pattern registry vs N dedicated engines.

   Every pattern set is run twice over the identical raw stream: once
   registered together in one engine (one POET subscription, one shared
   discrimination network and history store) and once as N separate
   single-pattern engines each with its own POET.  Reported per
   workload: events/s for the whole pattern set (separate mode's wall
   is the sum of its N replays — that is what monitoring all N patterns
   costs without the registry), discrimination-network node counts in
   both modes, per-pattern registration cost, resident history entries
   at end of run, and the speedup / storage ratio.  Per-pattern
   observables (matches, coverage, reports) must be identical between
   the two modes — the registry's isolation contract — which this
   program asserts, exiting 1 on any mismatch.

   - "shared-ops": a synthetic stream of high-volume Op internal events
     with occasional cross-trace messages (advancing epochs so pruning
     stays live) and rare Commit events.  All four patterns draw their
     leaves from the Op and Commit classes, so the shared store holds
     exactly two physical classes where separate engines hold seven.
   - "races-variants": the message-race case stream, with four variants
     of the race pattern all over the single [_, MPI_Send, $d] class.
   - "sweep-16/32/64": one pattern template ([_, Op, $c] -> Commit)
     instantiated per channel over a stream spreading Op events across
     the channels.  The instances share their Commit leaf node, so the
     shared network holds N+1 nodes where dedicated engines hold 2N;
     and because each Op event carries exactly one channel, dispatch
     touches one pattern per event regardless of N — the sweep is where
     the automaton's sublinear scaling (and sublinear [add_pattern])
     shows.

   Results go to BENCH_multi.json and a table on stdout.  Scale with
   OCEP_EVENTS (default 20_000); restrict pattern counts with
   OCEP_SWEEP (comma-separated, e.g. "32" for the CI smoke). *)

module Sim = Ocep_sim.Sim
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine
module Subset = Ocep.Subset
module Event = Ocep_base.Event
module Prng = Ocep_base.Prng
module Workload = Ocep_workloads.Workload
module Cases = Ocep_harness.Cases
module Clock = Ocep_base.Clock

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

let shared_ops_stream ~n_traces ~n_events =
  let prng = Prng.create 2013 in
  let raws = ref [] and msg = ref 0 in
  let push r = raws := r :: !raws in
  for i = 0 to n_events - 1 do
    if i mod 251 = 250 then
      push
        {
          Event.r_trace = Prng.int prng n_traces;
          r_etype = "Commit";
          r_text = "c";
          r_kind = Event.Internal;
        }
    else if i mod 16 = 15 then begin
      let src = Prng.int prng n_traces in
      let dst = (src + 1 + Prng.int prng (n_traces - 1)) mod n_traces in
      incr msg;
      push { Event.r_trace = src; r_etype = "Msg"; r_text = ""; r_kind = Event.Send { msg = !msg } };
      push
        { Event.r_trace = dst; r_etype = "Msg"; r_text = ""; r_kind = Event.Receive { msg = !msg } }
    end
    else
      push
        { Event.r_trace = i mod n_traces; r_etype = "Op"; r_text = "x"; r_kind = Event.Internal }
  done;
  List.rev !raws

let shared_ops_patterns =
  [
    ("precedes", "A := [_, Op, _];\nC := [_, Commit, _];\npattern := A -> C;\n");
    ("conc-commits", "C1 := [_, Commit, _];\nC2 := [_, Commit, _];\npattern := C1 || C2;\n");
    ("same-proc", "A := [$p, Op, _];\nC := [$p, Commit, _];\npattern := A -> C;\n");
    ( "fan-in",
      "A1 := [_, Op, _];\nA2 := [_, Op, _];\nC := [_, Commit, _];\n\
       pattern := (A1 -> C) && (A2 -> C);\n" );
  ]

let races_stream ~max_events =
  let w = Cases.make "races" ~traces:8 ~seed:2013 ~max_events in
  let names = Sim.trace_names w.Workload.sim_config in
  let raws = ref [] in
  let _ =
    Sim.run w.Workload.sim_config ~sink:(fun r -> raws := r :: !raws) ~bodies:w.Workload.bodies
  in
  (names, List.rev !raws)

let races_patterns =
  [
    ("race", "S1 := [_, MPI_Send, $d];\nS2 := [_, MPI_Send, $d];\npattern := S1 || S2;\n");
    ("resend", "S1 := [_, MPI_Send, $d];\nS2 := [_, MPI_Send, $d];\npattern := S1 -> S2;\n");
    ("ordered", "A := [_, MPI_Send, _];\nB := [_, MPI_Send, _];\npattern := A -> B;\n");
    ("self-conc", "S1 := [$p, MPI_Send, _];\nS2 := [$p, MPI_Send, _];\npattern := S1 || S2;\n");
  ]

(* The template sweep: N instances of one channel pattern, over a
   stream that spreads Op events round-robin across N channels (plus
   the Commit events every instance's second leaf waits for, and
   occasional messages so epochs advance and pruning stays live). *)
let sweep_stream ~n_traces ~n_events ~channels =
  let prng = Prng.create 4099 in
  let raws = ref [] and msg = ref 0 in
  let push r = raws := r :: !raws in
  for i = 0 to n_events - 1 do
    if i mod 251 = 250 then
      push
        {
          Event.r_trace = Prng.int prng n_traces;
          r_etype = "Commit";
          r_text = "c";
          r_kind = Event.Internal;
        }
    else if i mod 16 = 15 then begin
      let src = Prng.int prng n_traces in
      let dst = (src + 1 + Prng.int prng (n_traces - 1)) mod n_traces in
      incr msg;
      push { Event.r_trace = src; r_etype = "Msg"; r_text = ""; r_kind = Event.Send { msg = !msg } };
      push
        { Event.r_trace = dst; r_etype = "Msg"; r_text = ""; r_kind = Event.Receive { msg = !msg } }
    end
    else
      push
        {
          Event.r_trace = i mod n_traces;
          r_etype = "Op";
          r_text = "k" ^ string_of_int (i mod channels);
          r_kind = Event.Internal;
        }
  done;
  List.rev !raws

let sweep_source ~n =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "template chan($c) {\n\
    \  A := [_, Op, $c];\n\
    \  C := [_, Commit, _];\n\
    \  pattern := A -> C;\n\
     }\n";
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "instantiate chan(k%d);\n" i)
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The two deployment modes                                            *)
(* ------------------------------------------------------------------ *)

(* everything the registry must keep bit-identical, per pattern *)
let observe h =
  let reports =
    List.map
      (fun (r : Subset.report) ->
        ( r.seq,
          r.fresh,
          Array.to_list (Array.map (fun (e : Event.t) -> (e.trace, e.index)) r.events) ))
      (Engine.Handle.reports h)
  in
  ( Engine.Handle.matches_found h,
    Engine.Handle.covered_slots h,
    Engine.Handle.seen_slots h,
    reports )

type mode_result = {
  wall_s : float;
  register_s : float;  (* wall spent in add_pattern, all patterns summed *)
  minor_words : float;  (* GC minor words over the ingest loop(s) *)
  major_collections : int;
  automaton_nodes : int;  (* live network nodes, all engines summed *)
  history_entries : int;  (* resident at end of run, all engines summed *)
  per_pattern :
    (int * int * int * (int * (int * int) list * (int * int) list) list) list;
}

let run_multi ~names ~nets raws =
  let poet = Poet.create ~trace_names:names () in
  let engine = Engine.create ~poet () in
  Fun.protect
    ~finally:(fun () -> Engine.shutdown engine)
    (fun () ->
      let r0 = Clock.now_s () in
      let hs = List.map (fun net -> Engine.add_pattern engine net) nets in
      let register_s = Clock.now_s () -. r0 in
      Gc.full_major ();
      let g0 = Gc.quick_stat () in
      let t0 = Clock.now_s () in
      List.iter (fun r -> ignore (Poet.ingest poet r)) raws;
      let wall_s = Clock.now_s () -. t0 in
      let g1 = Gc.quick_stat () in
      {
        wall_s;
        register_s;
        minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
        major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
        automaton_nodes = Engine.automaton_nodes engine;
        history_entries = Engine.history_entries engine;
        per_pattern = List.map observe hs;
      })

let run_separate ~names ~nets raws =
  let results =
    List.map
      (fun net ->
        let poet = Poet.create ~trace_names:names () in
        let engine = Engine.create ~poet () in
        Fun.protect
          ~finally:(fun () -> Engine.shutdown engine)
          (fun () ->
            let r0 = Clock.now_s () in
            let h = Engine.add_pattern engine net in
            let register_s = Clock.now_s () -. r0 in
            Gc.full_major ();
            let g0 = Gc.quick_stat () in
            let t0 = Clock.now_s () in
            List.iter (fun r -> ignore (Poet.ingest poet r)) raws;
            let wall_s = Clock.now_s () -. t0 in
            let g1 = Gc.quick_stat () in
            ( (wall_s,
               register_s,
               g1.Gc.minor_words -. g0.Gc.minor_words,
               g1.Gc.major_collections - g0.Gc.major_collections),
              (Engine.automaton_nodes engine, Engine.history_entries engine),
              observe h )))
      nets
  in
  {
    wall_s = List.fold_left (fun a ((w, _, _, _), _, _) -> a +. w) 0. results;
    register_s = List.fold_left (fun a ((_, r, _, _), _, _) -> a +. r) 0. results;
    minor_words = List.fold_left (fun a ((_, _, m, _), _, _) -> a +. m) 0. results;
    major_collections = List.fold_left (fun a ((_, _, _, g), _, _) -> a + g) 0 results;
    automaton_nodes = List.fold_left (fun a (_, (n, _), _) -> a + n) 0 results;
    history_entries = List.fold_left (fun a (_, (_, h), _) -> a + h) 0 results;
    per_pattern = List.map (fun (_, _, o) -> o) results;
  }

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

type row = {
  workload : string;
  n_events : int;
  pattern_names : string list;
  multi : mode_result;
  separate : mode_result;
}

(* best-of-R, alternating modes so neither benefits from allocator /
   GC warm-up; observables are asserted identical across repetitions *)
let repetitions =
  match Sys.getenv_opt "OCEP_REPS" with Some s -> int_of_string s | None -> 3

let best_of runs =
  match runs with
  | [] -> invalid_arg "best_of"
  | first :: rest ->
    List.iter
      (fun r ->
        if r.per_pattern <> first.per_pattern || r.history_entries <> first.history_entries
        then begin
          Printf.eprintf "FATAL: a repetition changed an observable (nondeterminism)\n";
          exit 1
        end)
      rest;
    List.fold_left (fun a r -> if r.wall_s < a.wall_s then r else a) first rest

let bench_nets ~workload ~names ~nets raws =
  let reps =
    List.init repetitions (fun _ ->
        (run_multi ~names ~nets:(List.map snd nets) raws,
         run_separate ~names ~nets:(List.map snd nets) raws))
  in
  let multi = best_of (List.map fst reps) in
  let separate = best_of (List.map snd reps) in
  List.iteri
    (fun i name ->
      let m = List.nth multi.per_pattern i and s = List.nth separate.per_pattern i in
      if m <> s then begin
        let pr (matches, cov, seen, reports) =
          Printf.sprintf "matches=%d coverage=%d/%d reports=%d" matches cov seen
            (List.length reports)
        in
        Printf.eprintf "FATAL: %s/%s differs between modes: multi %s, separate %s\n" workload
          name (pr m) (pr s);
        exit 1
      end)
    (List.map fst nets);
  {
    workload;
    n_events = List.length raws;
    pattern_names = List.map fst nets;
    multi;
    separate;
  }

let bench_workload ~workload ~names ~patterns raws =
  let nets =
    List.map (fun (name, src) -> (name, Compile.compile (Parser.parse src))) patterns
  in
  bench_nets ~workload ~names ~nets raws

let events_per_s r n = float_of_int n /. (if r.wall_s > 0. then r.wall_s else 1e-9)

let json_of_mode r n =
  let k = max 1 (List.length r.per_pattern) in
  Printf.sprintf
    {|{"wall_s": %.6f, "events_per_s": %.0f, "register_us_per_pattern": %.2f, "automaton_nodes": %d, "minor_words_per_event": %.2f, "major_collections": %d, "history_entries": %d, "matches": [%s]}|}
    r.wall_s (events_per_s r n)
    (r.register_s *. 1e6 /. float_of_int k)
    r.automaton_nodes
    (r.minor_words /. float_of_int n)
    r.major_collections r.history_entries
    (String.concat ", " (List.map (fun (m, _, _, _) -> string_of_int m) r.per_pattern))

let () =
  let max_events =
    match Sys.getenv_opt "OCEP_EVENTS" with Some s -> int_of_string s | None -> 20_000
  in
  let sweep_sizes =
    match Sys.getenv_opt "OCEP_SWEEP" with
    | Some s -> List.map int_of_string (String.split_on_char ',' (String.trim s))
    | None -> [ 16; 32; 64 ]
  in
  Printf.printf "multi-pattern registry bench: %d events/workload\n%!" max_events;
  let shared_names = Array.init 8 (fun i -> "P" ^ string_of_int i) in
  let sweep n =
    let nets = Compile.compile_file (Parser.parse_file (sweep_source ~n)) in
    bench_nets
      ~workload:(Printf.sprintf "sweep-%d" n)
      ~names:shared_names ~nets
      (sweep_stream ~n_traces:8 ~n_events:max_events ~channels:n)
  in
  let rows =
    [
      bench_workload ~workload:"shared-ops" ~names:shared_names ~patterns:shared_ops_patterns
        (shared_ops_stream ~n_traces:8 ~n_events:max_events);
      (let names, raws = races_stream ~max_events in
       bench_workload ~workload:"races-variants" ~names ~patterns:races_patterns raws);
    ]
    @ List.map sweep sweep_sizes
  in
  Printf.printf "\n%-16s %8s %5s | %12s %12s %8s | %6s %6s | %9s %9s %7s | %10s %10s\n"
    "workload" "events" "pats" "multi ev/s" "sep ev/s" "speedup" "m nod" "s nod" "multi hist"
    "sep hist" "ratio" "m add us/p" "s add us/p";
  List.iter
    (fun r ->
      let k = max 1 (List.length r.pattern_names) in
      Printf.printf
        "%-16s %8d %5d | %12.0f %12.0f %7.2fx | %6d %6d | %9d %9d %6.2fx | %10.2f %10.2f\n"
        r.workload r.n_events (List.length r.pattern_names)
        (events_per_s r.multi r.n_events)
        (events_per_s r.separate r.n_events)
        (r.separate.wall_s /. r.multi.wall_s)
        r.multi.automaton_nodes r.separate.automaton_nodes r.multi.history_entries
        r.separate.history_entries
        (float_of_int r.separate.history_entries
        /. float_of_int (max 1 r.multi.history_entries))
        (r.multi.register_s *. 1e6 /. float_of_int k)
        (r.separate.register_s *. 1e6 /. float_of_int k))
    rows;
  let oc = open_out "BENCH_multi.json" in
  Printf.fprintf oc "{\n  \"events_per_workload\": %d,\n  \"workloads\": {\n" max_events;
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    %S: {\n      \"patterns\": [%s],\n      \"multi\": %s,\n      \"separate\": %s,\n\
        \      \"speedup\": %.3f,\n      \"node_ratio\": %.3f,\n      \"history_ratio\": \
         %.3f,\n      \"equal_results\": true\n    }%s\n"
        r.workload
        (String.concat ", " (List.map (Printf.sprintf "%S") r.pattern_names))
        (json_of_mode r.multi r.n_events)
        (json_of_mode r.separate r.n_events)
        (r.separate.wall_s /. r.multi.wall_s)
        (float_of_int r.separate.automaton_nodes
        /. float_of_int (max 1 r.multi.automaton_nodes))
        (float_of_int r.separate.history_entries
        /. float_of_int (max 1 r.multi.history_entries))
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  Printf.printf "\nwrote BENCH_multi.json\n"
