(* Ingestion overhead: what the wire codec and the admission layer cost.

   Two measurements on the message-race case stream (the highest
   event-rate workload):

   - codec: encode and decode throughput of the bare wire format,
     events/s and MB/s over the materialized stream;
   - replay: end-to-end events/s of (a) direct in-process delivery —
     Sim-emitted raws straight into POET/engine — against (b) the full
     ingestion path: a recorded wire log read frame by frame through
     CRC checking, admission and the engine.  Both run the identical
     stream and must produce bit-identical match reports (asserted via
     the reports digest; the program exits 1 on a mismatch).

   Each timing is the best of three runs.  Results go to
   BENCH_ingest.json and a table on stdout.  Scale with OCEP_EVENTS
   (default 50_000). *)

module Sim = Ocep_sim.Sim
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine
module Clock = Ocep_base.Clock
module Workload = Ocep_workloads.Workload
module Cases = Ocep_harness.Cases
module Runner = Ocep_harness.Runner
module Wire = Ocep_ingest.Wire
module Framing = Ocep_ingest.Framing
module Source = Ocep_ingest.Source

let best_of n f =
  let best = ref infinity in
  for _ = 1 to n do
    let t0 = Clock.now_s () in
    f ();
    best := min !best (Clock.now_s () -. t0)
  done;
  !best

(* like [best_of] but also reports GC pressure — minor words and major
   collections — from the fastest run, after a full major to settle the
   heap (same methodology as bench_hotpath) *)
let best_of_gc n f =
  let best = ref infinity and minor = ref 0. and major = ref 0 in
  for _ = 1 to n do
    Gc.full_major ();
    let g0 = Gc.quick_stat () in
    let t0 = Clock.now_s () in
    f ();
    let dt = Clock.now_s () -. t0 in
    let g1 = Gc.quick_stat () in
    if dt < !best then begin
      best := dt;
      minor := g1.Gc.minor_words -. g0.Gc.minor_words;
      major := g1.Gc.major_collections - g0.Gc.major_collections
    end
  done;
  (!best, !minor, !major)

let () =
  let max_events =
    match Sys.getenv_opt "OCEP_EVENTS" with Some s -> int_of_string s | None -> 50_000
  in
  Printf.printf "ingest bench: races workload, %d events\n%!" max_events;
  let w = Cases.make "races" ~traces:8 ~seed:2013 ~max_events in
  let names = Sim.trace_names w.Workload.sim_config in
  let net = Compile.compile (Parser.parse w.Workload.pattern) in
  let raws = ref [] in
  ignore
    (Sim.run w.Workload.sim_config
       ~sink:(fun raw -> raws := raw :: !raws)
       ~bodies:w.Workload.bodies);
  let raws = Array.of_list (List.rev !raws) in
  let n = Array.length raws in
  (* stamp the stream into wire events, as a recorder would *)
  let seqs = Array.make (Array.length names) 0 in
  let wires =
    Array.map
      (fun _ -> { Wire.id = 0; trace = 0; seq = 0; etype = ""; text = ""; kind = Ocep_base.Event.Internal })
      raws
  in
  Array.iteri
    (fun i (r : Ocep_base.Event.raw) ->
      seqs.(r.Ocep_base.Event.r_trace) <- seqs.(r.Ocep_base.Event.r_trace) + 1;
      wires.(i) <- Wire.of_raw ~id:i ~seq:seqs.(r.Ocep_base.Event.r_trace) r)
    raws;

  (* ---- codec throughput ---- *)
  let buf = Buffer.create (n * 24) in
  let offsets = Array.make n 0 and lengths = Array.make n 0 in
  let encode_all () =
    Buffer.clear buf;
    Array.iteri
      (fun i wv ->
        offsets.(i) <- Buffer.length buf;
        Wire.encode buf wv;
        lengths.(i) <- Buffer.length buf - offsets.(i))
      wires
  in
  let enc_s = best_of 3 encode_all in
  let bytes = Buffer.length buf in
  let data = Buffer.to_bytes buf in
  let decode_all () =
    for i = 0 to n - 1 do
      ignore (Wire.decode data ~pos:offsets.(i) ~len:lengths.(i))
    done
  in
  let dec_s = best_of 3 decode_all in
  (* decoded = encoded, spot-checked across the stream *)
  let step = max 1 (n / 97) in
  let i = ref 0 in
  while !i < n do
    assert (Wire.decode data ~pos:offsets.(!i) ~len:lengths.(!i) = wires.(!i));
    i := !i + step
  done;
  let mb = float_of_int bytes /. 1e6 in
  Printf.printf "codec: %.1f bytes/event   encode %.0f ev/s (%.0f MB/s)   decode %.0f ev/s (%.0f MB/s)\n%!"
    (float_of_int bytes /. float_of_int n)
    (float_of_int n /. enc_s) (mb /. enc_s)
    (float_of_int n /. dec_s) (mb /. dec_s);

  (* ---- end-to-end: direct delivery vs replay through admission ---- *)
  let digest = ref "" in
  let direct () =
    let poet = Poet.create ~trace_names:names () in
    let engine = Engine.create ~net ~poet () in
    Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
    Array.iter (fun r -> ignore (Poet.ingest poet r)) raws;
    digest := Runner.reports_digest engine
  in
  let direct_s, direct_minor, direct_major = best_of_gc 3 direct in
  let direct_digest = !digest in
  let log = Filename.temp_file "ocep_bench" ".wire" in
  Fun.protect ~finally:(fun () -> Sys.remove log) @@ fun () ->
  let oc = open_out_bin log in
  let wr = Framing.create_writer oc ~trace_names:names in
  Array.iter (Framing.write wr) wires;
  Framing.flush wr;
  close_out oc;
  let replay () =
    let ic = open_in_bin log in
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    let reader = Framing.create_reader ic in
    let poet = Poet.create ~trace_names:names () in
    let engine = Engine.create ~net ~poet () in
    Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
    ignore (Ocep_ingest.Session.replay ~engine reader);
    digest := Runner.reports_digest engine
  in
  let replay_s, replay_minor, replay_major = best_of_gc 3 replay in
  let equal_reports = !digest = direct_digest in
  if not equal_reports then begin
    Printf.eprintf "FAIL: replay digest %s <> direct %s\n" !digest direct_digest;
    exit 1
  end;
  let direct_ev_s = float_of_int n /. direct_s in
  let replay_ev_s = float_of_int n /. replay_s in
  let overhead_pct = (direct_ev_s /. replay_ev_s -. 1.) *. 100. in
  Printf.printf "direct %.0f ev/s   replay %.0f ev/s   overhead %.1f%%   reports %s\n%!"
    direct_ev_s replay_ev_s overhead_pct
    (if equal_reports then "bit-identical" else "DIFFER");
  Printf.printf "gc: direct %.1f minorW/ev %d majGC   replay %.1f minorW/ev %d majGC\n%!"
    (direct_minor /. float_of_int n) direct_major
    (replay_minor /. float_of_int n) replay_major;
  let oc = open_out "BENCH_ingest.json" in
  Printf.fprintf oc
    "{\n\
    \  \"events\": %d,\n\
    \  \"codec\": {\n\
    \    \"bytes_per_event\": %.2f,\n\
    \    \"encode_events_per_s\": %.0f,\n\
    \    \"encode_mb_per_s\": %.1f,\n\
    \    \"decode_events_per_s\": %.0f,\n\
    \    \"decode_mb_per_s\": %.1f\n\
    \  },\n\
    \  \"replay\": {\n\
    \    \"direct_events_per_s\": %.0f,\n\
    \    \"replay_events_per_s\": %.0f,\n\
    \    \"overhead_pct\": %.2f,\n\
    \    \"direct_minor_words_per_event\": %.2f,\n\
    \    \"direct_major_collections\": %d,\n\
    \    \"replay_minor_words_per_event\": %.2f,\n\
    \    \"replay_major_collections\": %d,\n\
    \    \"equal_reports\": %b\n\
    \  }\n\
     }\n"
    n
    (float_of_int bytes /. float_of_int n)
    (float_of_int n /. enc_s) (mb /. enc_s)
    (float_of_int n /. dec_s) (mb /. dec_s)
    direct_ev_s replay_ev_s overhead_pct
    (direct_minor /. float_of_int n) direct_major
    (replay_minor /. float_of_int n) replay_major
    equal_reports;
  close_out oc;
  Printf.printf "wrote BENCH_ingest.json\n"
