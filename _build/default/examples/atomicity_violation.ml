(* The atomicity-violation case study (paper Section V-C3).

   Workers execute a semaphore-protected method; the semaphore is its own
   trace (as in the muC++ POET plugin), so correctly protected entries are
   always causally ordered through the grant chain. A worker that skips the
   acquire (1% of attempts) produces a CS_Enter event concurrent with other
   entries - matched by

     Enter1 := [_, CS_Enter, _]; Enter2 := [_, CS_Enter, _];
     pattern := Enter1 || Enter2;

   Run with: dune exec examples/atomicity_violation.exe *)

module Runner = Ocep_harness.Runner

let () =
  let w = Ocep_workloads.Atomicity.make ~traces:10 ~seed:5 ~max_events:30_000 () in
  Format.printf "Atomicity pattern:@.%s@." w.Ocep_workloads.Workload.pattern;
  let o = Runner.run w in
  Format.printf "%a@." Runner.pp_outcome o;
  List.iteri
    (fun i (r : Ocep.Subset.report) ->
      if i < 4 then
        Format.printf "violation: %s and %s inside the critical section concurrently@."
          r.events.(0).Ocep_base.Event.trace_name r.events.(1).Ocep_base.Event.trace_name)
    o.Runner.reports;
  match o.Runner.summary with
  | Some s ->
    Format.printf "Median detection latency: %.0f us (paper's Fig. 8 is ~45 us on 2008 hardware).@."
      s.Ocep_stats.Summary.median
  | None -> ()
