(* The introduction's motivating example: a traffic-light system where
   lights in only one direction may be green at a time.

   Each intersection direction is a simulated process; a token message
   grants the right to turn green. A deliberate bug skips the token wait
   with small probability, and the causal pattern

     G1 := [$a, Turn_Green, _]; G2 := [$b, Turn_Green, _];
     pattern := G1 || G2;

   (two concurrent green events) catches every unsafe state online -
   without ever constructing the global state.

   Run with: dune exec examples/traffic_light.exe *)

open Ocep_base
module Sim = Ocep_sim.Sim
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine

let n_lights = 4
let rounds = 400
let bug_rate = 0.02

let light_body prng me =
  let next = (me + 1) mod n_lights in
  let prev = (me + n_lights - 1) mod n_lights in
  (* light 0 starts with the token *)
  if me = 0 then begin
    Sim.emit ~etype:"Turn_Green" ~text:"";
    Sim.emit ~etype:"Turn_Red" ~text:"";
    Sim.send ~dst:next ~etype:"Pass_Token" ~tag:"tok" ()
  end;
  for _ = 1 to rounds do
    if Prng.bernoulli prng bug_rate then begin
      (* the bug: turn green without holding the token *)
      Sim.emit ~etype:"Turn_Green" ~text:"rogue";
      Sim.emit ~etype:"Turn_Red" ~text:"rogue"
    end;
    ignore (Sim.recv ~src:prev ~tag:"tok" ~etype:"Token_Recv" ());
    Sim.emit ~etype:"Turn_Green" ~text:"";
    Sim.emit ~etype:"Turn_Red" ~text:"";
    Sim.send ~dst:next ~etype:"Pass_Token" ~tag:"tok" ()
  done

let () =
  let pattern = Ocep_workloads.Patterns.traffic_light in
  Format.printf "Safety pattern:@.%s@." pattern;
  let net = Compile.compile (Parser.parse pattern) in
  let cfg =
    { (Sim.default_config ~n_procs:n_lights ~seed:2024) with Sim.max_events = 50_000 }
  in
  let poet = Poet.create ~trace_names:(Sim.trace_names cfg) () in
  let engine = Engine.create ~net ~poet () in
  let bodies =
    Array.init n_lights (fun i -> fun me -> light_body (Prng.create (1000 + i)) me)
  in
  let stats = Sim.run cfg ~sink:(fun raw -> ignore (Poet.ingest poet raw)) ~bodies in
  Format.printf "Simulated %d light-controller events.@." stats.Sim.events_emitted;
  Format.printf "Concurrent-green violations matched: %d (reported subset: %d)@."
    (Engine.matches_found engine)
    (List.length (Engine.reports engine));
  List.iter
    (fun (r : Ocep.Subset.report) ->
      Format.printf "  unsafe: %s green concurrently with %s@." r.events.(0).Event.trace_name
        r.events.(1).Event.trace_name)
    (Engine.reports engine);
  if Engine.matches_found engine = 0 then
    Format.printf "No violations this run - raise bug_rate or change the seed.@."
