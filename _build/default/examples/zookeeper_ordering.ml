(* The ordering-bug case study (paper Sections III-D and V-C4): ZooKeeper
   bug #962.

   A leader serves snapshot-synchronization requests from followers. The
   injected bug makes an update slip between taking a snapshot and
   forwarding it, so a restarting follower receives stale data. The pattern
   is the paper's, with the text field tying the Synch/Snapshot/Forward
   events of one request together:

     Synch := [$L, Synch_Leader, $R];   Snapshot := [$L, Take_Snapshot, $R];
     Update := [$L, Make_Update, _];    Forward := [$L, Forward_Snapshot, $R];
     Snapshot $Diff;  Update $Write;
     pattern := (Synch -> $Diff) && ($Diff -> $Write) && ($Write -> Forward);

   Run with: dune exec examples/zookeeper_ordering.exe *)

module Runner = Ocep_harness.Runner

let () =
  let w = Ocep_workloads.Ordering.make ~traces:10 ~seed:9 ~max_events:40_000 () in
  Format.printf "Ordering pattern:@.%s@." w.Ocep_workloads.Workload.pattern;
  let o = Runner.run w in
  Format.printf "%a@." Runner.pp_outcome o;
  List.iteri
    (fun i (r : Ocep.Subset.report) ->
      if i < 4 then begin
        let rid =
          Array.fold_left
            (fun acc (e : Ocep_base.Event.t) ->
              if e.etype = "Forward_Snapshot" then e.text else acc)
            "?" r.events
        in
        Format.printf "stale snapshot forwarded for request %s@." rid
      end)
    o.Runner.reports;
  Format.printf
    "Every reported match is one concrete occurrence of the bug, including@.\
     which follower was served stale data - the 'participating processes'@.\
     information SPJ-style queries cannot report (Section II).@."
