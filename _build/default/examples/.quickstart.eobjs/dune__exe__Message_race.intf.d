examples/message_race.mli:
