examples/quickstart.ml: Array Event Format List Ocep Ocep_base Ocep_pattern Ocep_poet
