examples/atomicity_violation.ml: Array Format List Ocep Ocep_base Ocep_harness Ocep_stats Ocep_workloads
