examples/mpi_deadlock.mli:
