examples/zookeeper_ordering.mli:
