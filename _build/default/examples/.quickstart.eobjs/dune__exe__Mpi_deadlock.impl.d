examples/mpi_deadlock.ml: Array Format List Ocep Ocep_base Ocep_harness Ocep_sim Ocep_stats Ocep_workloads
