examples/replay_analysis.ml: Array Filename Format List Ocep Ocep_base Ocep_pattern Ocep_poet Ocep_sim Ocep_workloads Sys
