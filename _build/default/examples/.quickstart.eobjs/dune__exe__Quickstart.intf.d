examples/quickstart.mli:
