examples/zookeeper_ordering.ml: Array Format List Ocep Ocep_base Ocep_harness Ocep_workloads
