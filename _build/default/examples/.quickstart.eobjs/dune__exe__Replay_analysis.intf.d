examples/replay_analysis.mli:
