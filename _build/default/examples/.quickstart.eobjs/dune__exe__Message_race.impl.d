examples/message_race.ml: Array Format List Ocep Ocep_base Ocep_baselines Ocep_harness Ocep_poet Ocep_sim Ocep_workloads
