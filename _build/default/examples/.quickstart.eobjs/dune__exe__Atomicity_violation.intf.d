examples/atomicity_violation.mli:
