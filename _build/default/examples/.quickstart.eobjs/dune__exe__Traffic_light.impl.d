examples/traffic_light.ml: Array Event Format List Ocep Ocep_base Ocep_pattern Ocep_poet Ocep_sim Ocep_workloads Prng
