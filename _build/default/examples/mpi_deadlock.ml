(* The deadlock case study (paper Section V-C1).

   A parallel random walk exchanges walkers around a ring with eager MPI
   sends. A latent bug occasionally makes four processes send bulk batches
   around a cycle before receiving - each send exceeds the rendezvous
   threshold, every member blocks, and the application deadlocks. OCEP
   detects the cycle online from the pairwise-concurrent Blocked_Send
   events, chained by process/text variables.

   Run with: dune exec examples/mpi_deadlock.exe *)

module Sim = Ocep_sim.Sim
module Runner = Ocep_harness.Runner

let () =
  let w = Ocep_workloads.Random_walk.make ~traces:12 ~seed:7 ~max_events:30_000 () in
  Format.printf "Deadlock pattern (cycle of %d):@.%s@." Ocep_workloads.Random_walk.cycle_len
    w.Ocep_workloads.Workload.pattern;
  let o = Runner.run w in
  Format.printf "%a@." Runner.pp_outcome o;
  Format.printf "Simulator ground truth: %d deadlock recoveries.@."
    (List.length o.Runner.sim.Sim.deadlocks);
  List.iteri
    (fun i (r : Ocep.Subset.report) ->
      if i < 3 then begin
        Format.printf "reported cycle:";
        Array.iter
          (fun (e : Ocep_base.Event.t) -> Format.printf " %s->%s" e.trace_name e.text)
          r.events;
        Format.printf "@."
      end)
    o.Runner.reports;
  match o.Runner.summary with
  | Some s ->
    Format.printf "Per-event detection latency: median %.0f us, max %.0f us.@."
      s.Ocep_stats.Summary.median s.Ocep_stats.Summary.max
  | None -> ()
