(* Post-mortem replay (Section V-B's dump/reload workflow, and the
   complementary-tool story of Section II).

   POET's dump feature saves the collected trace-event data of a monitored
   run; reload feeds it back through the same client interface. Because
   the monitor consumes a *linearization of the partial order*, any valid
   linearization gives the same causal analysis - demonstrated here by
   re-linearizing the dump with a different schedule and checking that the
   representative subset covers the same slots.

   Run with: dune exec examples/replay_analysis.exe *)

module Sim = Ocep_sim.Sim
module Poet = Ocep_poet.Poet
module Linearize = Ocep_poet.Linearize
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine
module Workload = Ocep_workloads.Workload

let covered_slots net engine =
  ignore net;
  List.sort_uniq compare
    (List.concat_map
       (fun (r : Ocep.Subset.report) ->
         Array.to_list (Array.mapi (fun leaf (e : Ocep_base.Event.t) -> (leaf, e.trace)) r.events))
       (Engine.reports engine))

let () =
  (* 1. run the atomicity case study live and dump it, as "ocep gen" does *)
  let w = Ocep_workloads.Atomicity.make ~traces:8 ~seed:12 ~max_events:20_000 () in
  let names = Sim.trace_names w.Workload.sim_config in
  let dump = Filename.temp_file "ocep" ".dump" in
  let oc = open_out dump in
  Poet.dump_header ~trace_names:names oc;
  let _ =
    Sim.run w.Workload.sim_config ~sink:(fun raw -> Poet.dump_raw oc raw) ~bodies:w.Workload.bodies
  in
  close_out oc;
  Format.printf "dumped the run to %s@." dump;

  (* 2. reload and monitor offline *)
  let ic = open_in dump in
  let loaded_names, raws = Poet.load ic in
  close_in ic;
  let net = Compile.compile (Parser.parse w.Workload.pattern) in
  let monitor raws =
    let poet = Poet.create ~trace_names:loaded_names () in
    let engine = Engine.create ~net ~poet () in
    List.iter (fun r -> ignore (Poet.ingest poet r)) raws;
    engine
  in
  let original = monitor raws in
  Format.printf "reload: %d events, %d matches, %d reported@."
    (Engine.events_processed original)
    (Engine.matches_found original)
    (List.length (Engine.reports original));

  (* 3. a different valid linearization of the same partial order *)
  let shuffled = Linearize.shuffle ~seed:999 raws in
  assert (Linearize.is_linearization shuffled);
  let replayed = monitor shuffled in
  let s1 = covered_slots net original and s2 = covered_slots net replayed in
  Format.printf "re-linearized replay: %d matches, %d reported@."
    (Engine.matches_found replayed)
    (List.length (Engine.reports replayed));
  Format.printf "covered slots identical across linearizations: %b@." (s1 = s2);
  Sys.remove dump
