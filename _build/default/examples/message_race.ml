(* The message-race case study (paper Section V-C2).

   Senders normally take turns (a go-token serializes them); with small
   probability the receiver hands the token to two senders at once, whose
   MPI sends then race at its wildcard (ANY_SOURCE) receive. The pattern is
   two concurrent sends with the same destination, bound by a text
   variable:

     S1 := [_, MPI_Send, $d]; S2 := [_, MPI_Send, $d];
     pattern := S1 || S2;

   The example also cross-checks OCEP against the classic vector-timestamp
   race checker (Netzer-Miller style).

   Run with: dune exec examples/message_race.exe *)

module Sim = Ocep_sim.Sim
module Poet = Ocep_poet.Poet
module Runner = Ocep_harness.Runner
module Race_checker = Ocep_baselines.Race_checker

let () =
  let w = Ocep_workloads.Msg_race.make ~traces:10 ~seed:5 ~max_events:30_000 () in
  Format.printf "Race pattern:@.%s@." w.Ocep_workloads.Workload.pattern;
  let o = Runner.run w in
  Format.printf "%a@." Runner.pp_outcome o;
  List.iteri
    (fun i (r : Ocep.Subset.report) ->
      if i < 4 then
        Format.printf "race: %s and %s sent concurrently to P0@."
          r.events.(0).Ocep_base.Event.trace_name r.events.(1).Ocep_base.Event.trace_name)
    o.Runner.reports;
  (* cross-check with the dedicated race detector on a fresh run *)
  let w2 = Ocep_workloads.Msg_race.make ~traces:10 ~seed:5 ~max_events:30_000 () in
  let names = Sim.trace_names w2.Ocep_workloads.Workload.sim_config in
  let poet = Poet.create ~trace_names:names () in
  let checker = Race_checker.create ~n_traces:(Array.length names) ~partner_of:(Poet.find_partner poet) () in
  Poet.subscribe poet (fun ev -> ignore (Race_checker.on_event checker ev));
  let _ =
    Sim.run w2.Ocep_workloads.Workload.sim_config
      ~sink:(fun raw -> ignore (Poet.ingest poet raw))
      ~bodies:w2.Ocep_workloads.Workload.bodies
  in
  Format.printf "Vector-timestamp race checker found %d racing pairs (OCEP matched %d).@."
    (List.length (Race_checker.races checker))
    o.Runner.matches_found
