(* Quickstart: the smallest end-to-end use of OCEP.

   We hand-feed a tiny distributed computation (the process-time diagram of
   the paper's Fig. 3) into the POET substrate and ask the online engine to
   match the causal pattern [A -> B]. It reports a representative subset:
   one match per (pattern event, trace) pair that can be covered, even when
   a bounded sliding window would have lost some of them.

   Run with: dune exec examples/quickstart.exe *)

open Ocep_base
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine

let () =
  (* 1. Define the pattern: an event of class A causally before one of B. *)
  let pattern = "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;" in
  let net = Compile.compile (Parser.parse pattern) in
  Format.printf "Pattern:@.%s@.Compiled %d-leaf constraint net.@.@." pattern (Compile.size net);

  (* 2. Create the POET store and attach the online engine to it. *)
  let poet = Poet.create ~trace_names:[| "P0"; "P1"; "P2" |] () in
  let engine = Engine.create ~net ~poet () in

  (* 3. Feed events. Normally they come from the simulator; here we write
     the little execution out by hand: an A on P1 (old), an A on P0
     (recent), and a B on P2 that causally follows both. *)
  let msg = ref 0 in
  let ingest raw = ignore (Poet.ingest poet raw) in
  let internal tr etype =
    ingest { Event.r_trace = tr; r_etype = etype; r_text = ""; r_kind = Event.Internal }
  in
  let send tr =
    incr msg;
    ingest { Event.r_trace = tr; r_etype = "msg"; r_text = ""; r_kind = Event.Send { msg = !msg } };
    !msg
  in
  let recv tr m =
    ingest { Event.r_trace = tr; r_etype = "msg"; r_text = ""; r_kind = Event.Receive { msg = m } }
  in
  internal 1 "A";
  let m1 = send 1 in
  internal 0 "A";
  internal 0 "A";
  let m0 = send 0 in
  recv 2 m0;
  recv 2 m1;
  internal 2 "B";

  (* 4. The engine matched online as events arrived. *)
  Format.printf "Events processed: %d@." (Engine.events_processed engine);
  Format.printf "Complete matches found: %d@." (Engine.matches_found engine);
  Format.printf "Representative subset (%d reports):@." (List.length (Engine.reports engine));
  List.iter
    (fun (r : Ocep.Subset.report) ->
      Format.printf "  match:";
      Array.iter (fun e -> Format.printf " [%a]" Event.pp e) r.events;
      Format.printf "@.")
    (Engine.reports engine);
  Format.printf "@.Coverage: %d/%d (pattern event, trace) slots covered.@."
    (Engine.covered_slots engine) (Engine.seen_slots engine);
  Format.printf
    "Note the two reports: one match per trace that hosts an A taking part@.\
     in a match - the representative subset of Section IV-B.@."
