(** Shared helpers for the test suites: hand-rolled event streams, random
    computations and random patterns for property tests, and a
    happened-before reachability oracle independent of vector clocks. *)

open Ocep_base

(** A small imperative builder for raw event streams fed to POET. *)
module Build : sig
  type t

  val create : string array -> t
  (** Trace names. *)

  val poet : t -> Ocep_poet.Poet.t
  (** The underlying store ([retain:true]). *)

  val internal : t -> int -> ?text:string -> string -> Event.t
  (** [internal b trace etype] ingests an internal event. *)

  val send : t -> src:int -> ?etype:string -> ?text:string -> unit -> int * Event.t
  (** Returns the message id and the send event. *)

  val recv : t -> dst:int -> ?etype:string -> ?text:string -> int -> Event.t
  (** Receive a previously sent message id. *)

  val message : t -> src:int -> dst:int -> Event.t * Event.t
  (** A send/receive pair with default attributes. *)

  val events : t -> Event.t list
  (** Everything ingested so far, in order. *)
end

(** Random computations: a list of raw events forming a valid execution. *)
module Gen : sig
  val computation :
    ?etypes:string array ->
    ?texts:string array ->
    n_traces:int ->
    length:int ->
    Prng.t ->
    Event.raw list
  (** Random mix of internal events, sends, and (matching) receives with
      attributes drawn from the given small alphabets. *)

  val pattern : n_classes:int -> Prng.t -> string
  (** Random pattern text over the same etype alphabet ([A]/[B]/[C]):
      2–4 leaves joined by random operators ([->], [||], and occasionally
      [~>], [=>], [<>]) and conjunctions, with occasional process
      variables shared between two classes and text variables. Always
      parses; may fail to compile only with contradictory constraints. *)
end

val ingest_all : string array -> Event.raw list -> Ocep_poet.Poet.t * Event.t list
(** Feed a computation through a retaining POET store. *)

val hb_oracle : Event.t list -> Event.t -> Event.t -> bool
(** Happened-before by graph reachability (trace edges + message edges),
    ignoring vector clocks entirely. *)
