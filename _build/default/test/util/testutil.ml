open Ocep_base
module Poet = Ocep_poet.Poet

module Build = struct
  type t = { poet : Poet.t; mutable msg : int; mutable log : Event.t list }

  let create names =
    { poet = Poet.create ~retain:true ~trace_names:names (); msg = 0; log = [] }

  let poet b = b.poet

  let ingest b raw =
    let ev = Poet.ingest b.poet raw in
    b.log <- ev :: b.log;
    ev

  let internal b trace ?(text = "") etype =
    ingest b { Event.r_trace = trace; r_etype = etype; r_text = text; r_kind = Event.Internal }

  let send b ~src ?(etype = "Send") ?(text = "") () =
    b.msg <- b.msg + 1;
    let m = b.msg in
    let ev =
      ingest b { Event.r_trace = src; r_etype = etype; r_text = text; r_kind = Event.Send { msg = m } }
    in
    (m, ev)

  let recv b ~dst ?(etype = "Recv") ?(text = "") m =
    ingest b { Event.r_trace = dst; r_etype = etype; r_text = text; r_kind = Event.Receive { msg = m } }

  let message b ~src ~dst =
    let m, s = send b ~src () in
    let r = recv b ~dst m in
    (s, r)

  let events b = List.rev b.log
end

module Gen = struct
  let computation ?(etypes = [| "A"; "B"; "C" |]) ?(texts = [| ""; "x"; "y" |]) ~n_traces ~length
      prng =
    let msg = ref 0 in
    let pending = ref [] in
    let out = ref [] in
    for _ = 1 to length do
      let choice = Prng.int prng 10 in
      if choice < 5 then begin
        (* internal event *)
        let tr = Prng.int prng n_traces in
        out :=
          {
            Event.r_trace = tr;
            r_etype = Prng.pick prng etypes;
            r_text = Prng.pick prng texts;
            r_kind = Event.Internal;
          }
          :: !out
      end
      else if choice < 8 || !pending = [] then begin
        (* send *)
        incr msg;
        let src = Prng.int prng n_traces in
        let dst = Prng.int prng n_traces in
        pending := (!msg, dst) :: !pending;
        out :=
          {
            Event.r_trace = src;
            r_etype = Prng.pick prng etypes;
            r_text = Prng.pick prng texts;
            r_kind = Event.Send { msg = !msg };
          }
          :: !out
      end
      else begin
        (* receive a random pending message *)
        let i = Prng.int prng (List.length !pending) in
        let m, dst = List.nth !pending i in
        pending := List.filteri (fun j _ -> j <> i) !pending;
        out :=
          {
            Event.r_trace = dst;
            r_etype = Prng.pick prng etypes;
            r_text = Prng.pick prng texts;
            r_kind = Event.Receive { msg = m };
          }
          :: !out
      end
    done;
    List.rev !out

  let pattern ~n_classes prng =
    let n_classes = max 2 (min 4 n_classes) in
    let buf = Buffer.create 128 in
    let share_proc = Prng.bernoulli prng 0.3 in
    let share_text = Prng.bernoulli prng 0.4 in
    for i = 1 to n_classes do
      let etype = Prng.pick prng [| "A"; "B"; "C" |] in
      let proc = if share_proc && i <= 2 then "$p" else "_" in
      let text =
        if share_text && i >= n_classes - 1 then "$tt"
        else match Prng.int prng 4 with 0 -> "'x'" | 1 -> "$t" ^ string_of_int i | _ -> "_"
      in
      Buffer.add_string buf (Printf.sprintf "K%d := [%s, %s, %s];\n" i proc etype text)
    done;
    Buffer.add_string buf "pattern := ";
    (* chain classes with random operators; partner/limited/strong appear
       with lower probability to keep most patterns satisfiable *)
    let op () =
      match Prng.int prng 10 with
      | 0 | 1 | 2 | 3 -> "->"
      | 4 | 5 | 6 -> "||"
      | 7 -> "~>"
      | 8 -> "=>"
      | _ -> "<>"
    in
    let conj = ref [] in
    for i = 1 to n_classes - 1 do
      conj := Printf.sprintf "K%d %s K%d" i (op ()) (i + 1) :: !conj
    done;
    Buffer.add_string buf (String.concat " && " (List.rev !conj));
    Buffer.add_string buf ";\n";
    Buffer.contents buf
end

let ingest_all names raws =
  let poet = Poet.create ~retain:true ~trace_names:names () in
  let evs = List.map (Poet.ingest poet) raws in
  (poet, evs)

let hb_oracle events a b =
  (* successor edges: next event on the same trace, and send -> receive *)
  let succs (e : Event.t) =
    let next_on_trace =
      List.filter (fun (x : Event.t) -> x.trace = e.trace && x.index = e.index + 1) events
    in
    let msg_succ =
      match e.kind with
      | Event.Send { msg } ->
        List.filter
          (fun (x : Event.t) -> match x.kind with Event.Receive { msg = m } -> m = msg | _ -> false)
          events
      | _ -> []
    in
    next_on_trace @ msg_succ
  in
  let rec reach frontier visited =
    match frontier with
    | [] -> false
    | e :: rest ->
      if Event.equal e b then true
      else if List.exists (Event.equal e) visited then reach rest visited
      else reach (succs e @ rest) (e :: visited)
  in
  (not (Event.equal a b)) && reach (succs a) []
