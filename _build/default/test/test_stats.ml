(* Boxplot statistics used for Figs. 6-10. *)

module Summary = Ocep_stats.Summary

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let quartiles_known () =
  let s = Summary.of_samples [| 1.; 2.; 3.; 4.; 5. |] in
  checkf "median" 3. s.Summary.median;
  checkf "q1" 2. s.Summary.q1;
  checkf "q3" 4. s.Summary.q3;
  checkf "min" 1. s.Summary.min;
  checkf "max" 5. s.Summary.max;
  checkf "mean" 3. s.Summary.mean

let quartiles_interpolated () =
  let s = Summary.of_samples [| 1.; 2.; 3.; 4. |] in
  checkf "median" 2.5 s.Summary.median;
  checkf "q1" 1.75 s.Summary.q1;
  checkf "q3" 3.25 s.Summary.q3

let singleton () =
  let s = Summary.of_samples [| 7. |] in
  checkf "median" 7. s.Summary.median;
  checkf "whisker" 7. s.Summary.top_whisker;
  Alcotest.(check int) "no outliers" 0 s.Summary.outliers_above

let empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_samples: empty") (fun () ->
      ignore (Summary.of_samples [||]))

let outliers_and_whiskers () =
  (* tight cluster plus one far point: the far point is an outlier and the
     whisker stays at the cluster edge *)
  let samples = Array.append (Array.init 20 (fun i -> float_of_int i)) [| 1000. |] in
  let s = Summary.of_samples samples in
  Alcotest.(check int) "one outlier above" 1 s.Summary.outliers_above;
  check "whisker below outlier" true (s.Summary.top_whisker < 1000.);
  checkf "max is the outlier" 1000. s.Summary.max

let unsorted_input () =
  let s1 = Summary.of_samples [| 5.; 1.; 4.; 2.; 3. |] in
  let s2 = Summary.of_samples [| 1.; 2.; 3.; 4.; 5. |] in
  check "order independent" true (s1 = s2)

let quantile_prop =
  QCheck.Test.make ~name:"quantiles are monotone and within range" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_bound_exclusive 1000.))
    (fun l ->
      let sorted = Array.of_list (List.sort compare l) in
      let q25 = Summary.quantile sorted 0.25 in
      let q50 = Summary.quantile sorted 0.5 in
      let q75 = Summary.quantile sorted 0.75 in
      q25 <= q50 && q50 <= q75
      && q25 >= sorted.(0)
      && q75 <= sorted.(Array.length sorted - 1))

let whisker_prop =
  QCheck.Test.make
    ~name:"whiskers are the extreme samples within the 1.5 IQR fences" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 2 60) (float_bound_exclusive 100.))
    (fun l ->
      let s = Summary.of_samples (Array.of_list l) in
      let hi_fence = s.Summary.q3 +. (1.5 *. (s.Summary.q3 -. s.Summary.q1)) in
      let lo_fence = s.Summary.q1 -. (1.5 *. (s.Summary.q3 -. s.Summary.q1)) in
      s.Summary.top_whisker <= s.Summary.max
      && s.Summary.bottom_whisker >= s.Summary.min
      && List.for_all (fun x -> x > hi_fence || x <= s.Summary.top_whisker) l
      && List.for_all (fun x -> x < lo_fence || x >= s.Summary.bottom_whisker) l
      && List.length (List.filter (fun x -> x > hi_fence) l) = s.Summary.outliers_above
      && List.length (List.filter (fun x -> x < lo_fence) l) = s.Summary.outliers_below)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  loop 0

let fig10_row_renders () =
  let s = Summary.of_samples [| 42.; 45.; 51.; 65.; 120. |] in
  let out =
    Format.asprintf "%a%a" Summary.pp_fig10_header ()
      (fun ppf () -> Summary.pp_fig10_row ppf "Atomicity" s)
      ()
  in
  check "contains name" true (contains out "Atomicity");
  check "contains median" true (contains out "45")

let () =
  Alcotest.run "stats"
    [
      ( "summary",
        [
          Alcotest.test_case "known quartiles" `Quick quartiles_known;
          Alcotest.test_case "interpolation" `Quick quartiles_interpolated;
          Alcotest.test_case "singleton" `Quick singleton;
          Alcotest.test_case "empty raises" `Quick empty_raises;
          Alcotest.test_case "outliers and whiskers" `Quick outliers_and_whiskers;
          Alcotest.test_case "order independent" `Quick unsorted_input;
          Alcotest.test_case "fig10 row renders" `Quick fig10_row_renders;
          QCheck_alcotest.to_alcotest quantile_prop;
          QCheck_alcotest.to_alcotest whisker_prop;
        ] );
    ]
