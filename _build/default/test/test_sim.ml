(* The effect-handler simulator: determinism, message semantics (eager and
   rendezvous), ANY_SOURCE, semaphores, and deadlock recovery. *)

open Ocep_base
module Sim = Ocep_sim.Sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let collect cfg bodies =
  let log = ref [] in
  let stats = Sim.run cfg ~sink:(fun raw -> log := raw :: !log) ~bodies in
  (stats, List.rev !log)

let ping_pong_bodies n_rounds =
  [|
    (fun _ ->
      for _ = 1 to n_rounds do
        Sim.send ~dst:1 ~etype:"Ping" ();
        ignore (Sim.recv ~src:1 ~etype:"PongR" ())
      done);
    (fun _ ->
      for _ = 1 to n_rounds do
        ignore (Sim.recv ~src:0 ~etype:"PingR" ());
        Sim.send ~dst:0 ~etype:"Pong" ()
      done);
  |]

let determinism () =
  let run () =
    let cfg = Sim.default_config ~n_procs:2 ~seed:5 in
    collect cfg (ping_pong_bodies 50)
  in
  let s1, l1 = run () in
  let s2, l2 = run () in
  check "same stats" true (s1 = s2);
  check "same event stream" true (l1 = l2)

let seed_changes_interleaving () =
  let bodies () =
    Array.init 3 (fun _ ->
        fun me ->
          for _ = 1 to 20 do
            Sim.emit ~etype:"Step" ~text:(string_of_int me)
          done)
  in
  let _, l1 = collect (Sim.default_config ~n_procs:3 ~seed:1) (bodies ()) in
  let _, l2 = collect (Sim.default_config ~n_procs:3 ~seed:2) (bodies ()) in
  check "different interleavings" true (l1 <> l2)

let ping_pong_completes () =
  let stats, log = collect (Sim.default_config ~n_procs:2 ~seed:1) (ping_pong_bodies 10) in
  check "all done" true stats.Sim.all_done;
  check_int "events" 40 (List.length log);
  (* every receive is preceded by its send *)
  check "valid linearization" true (Ocep_poet.Linearize.is_linearization log)

let message_contents () =
  let got = ref None in
  let bodies =
    [|
      (fun _ -> Sim.send ~dst:1 ~etype:"M" ~tag:"t" ~text:"hello" ~size:12 ());
      (fun _ -> got := Some (Sim.recv ~src:0 ~tag:"t" ()));
    |]
  in
  let _ = collect (Sim.default_config ~n_procs:2 ~seed:1) bodies in
  match !got with
  | Some m ->
    check "text" true (m.Sim.m_text = "hello");
    check "src" true (m.Sim.m_src = 0);
    check "size" true (m.Sim.m_size = 12)
  | None -> Alcotest.fail "message not delivered"

let any_source () =
  let order = ref [] in
  let bodies =
    Array.init 4 (fun i ->
        if i = 0 then (fun _ ->
          for _ = 1 to 3 do
            let m = Sim.recv ~tag:"d" () in
            order := m.Sim.m_src :: !order
          done)
        else fun me -> Sim.send ~dst:0 ~tag:"d" ~text:(string_of_int me) ())
  in
  let stats, _ = collect (Sim.default_config ~n_procs:4 ~seed:3) bodies in
  check "all done" true stats.Sim.all_done;
  check_int "three received" 3 (List.length !order);
  check "all senders seen" true (List.sort compare !order = [ 1; 2; 3 ])

let tag_filtering () =
  (* a receive with a tag must not consume a message with another tag *)
  let seen = ref [] in
  let bodies =
    [|
      (fun _ ->
        Sim.send ~dst:1 ~tag:"a" ~text:"first" ();
        Sim.send ~dst:1 ~tag:"b" ~text:"second" ());
      (fun _ ->
        let m1 = Sim.recv ~tag:"b" () in
        let m2 = Sim.recv ~tag:"a" () in
        seen := [ m1.Sim.m_text; m2.Sim.m_text ]);
    |]
  in
  let stats, _ = collect (Sim.default_config ~n_procs:2 ~seed:1) bodies in
  check "done" true stats.Sim.all_done;
  check "tag selection" true (!seen = [ "second"; "first" ])

let rendezvous_blocks () =
  (* large message blocks until the receive posts; a Blocked_Send event is
     emitted on the sender's trace *)
  let bodies =
    [|
      (fun _ -> Sim.send ~dst:1 ~etype:"Big" ~size:1_000_000 ());
      (fun _ ->
        for _ = 1 to 5 do
          Sim.emit ~etype:"Busy" ~text:""
        done;
        ignore (Sim.recv ~src:0 ()));
    |]
  in
  let stats, log = collect (Sim.default_config ~n_procs:2 ~seed:1) bodies in
  check "done" true stats.Sim.all_done;
  let blocked = List.filter (fun (r : Event.raw) -> r.r_etype = "Blocked_Send") log in
  check_int "one blocked-send event" 1 (List.length blocked);
  check "on sender trace" true ((List.hd blocked).Event.r_trace = 0);
  check "text names destination" true ((List.hd blocked).Event.r_text = "P1");
  (* the blocked event comes before the send event *)
  let idx p =
    let rec loop i = function [] -> -1 | r :: rest -> if p r then i else loop (i+1) rest in
    loop 0 log
  in
  check "blocked before send" true
    (idx (fun r -> r.Event.r_etype = "Blocked_Send") < idx (fun r -> r.Event.r_etype = "Big"))

let eager_does_not_block () =
  let bodies =
    [|
      (fun _ -> Sim.send ~dst:1 ~etype:"Small" ~size:8 ());
      (fun _ -> ignore (Sim.recv ~src:0 ()));
    |]
  in
  let stats, log = collect (Sim.default_config ~n_procs:2 ~seed:1) bodies in
  check "done" true stats.Sim.all_done;
  check "no blocked event" true
    (not (List.exists (fun (r : Event.raw) -> r.r_etype = "Blocked_Send") log))

let deadlock_recovery () =
  (* two processes send large messages to each other before receiving *)
  let bodies =
    Array.init 2 (fun _ ->
        fun me ->
          let other = 1 - me in
          Sim.send ~dst:other ~etype:"Big" ~size:1_000_000 ();
          ignore (Sim.recv ~src:other ()))
  in
  let stats, _ = collect (Sim.default_config ~n_procs:2 ~seed:1) bodies in
  check "recovered and completed" true stats.Sim.all_done;
  check_int "one deadlock" 1 (List.length stats.Sim.deadlocks);
  let d = List.hd stats.Sim.deadlocks in
  check "both participants" true
    (List.sort compare (List.map fst d.Sim.participants) = [ 0; 1 ])

let deadlock_stop_mode () =
  let bodies =
    Array.init 2 (fun _ ->
        fun me ->
          let other = 1 - me in
          Sim.send ~dst:other ~etype:"Big" ~size:1_000_000 ();
          ignore (Sim.recv ~src:other ()))
  in
  let cfg = { (Sim.default_config ~n_procs:2 ~seed:1) with Sim.on_stall = `Stop } in
  let stats, _ = collect cfg bodies in
  check "not all done" false stats.Sim.all_done

let semaphore_mutual_exclusion () =
  (* with correct P/V usage, at most one process is ever inside *)
  let inside = ref 0 in
  let max_inside = ref 0 in
  let bodies =
    Array.init 4 (fun _ ->
        fun _ ->
          for _ = 1 to 20 do
            Sim.sem_p 0;
            incr inside;
            if !inside > !max_inside then max_inside := !inside;
            Sim.emit ~etype:"CS" ~text:"";
            decr inside;
            Sim.sem_v 0
          done)
  in
  let cfg = { (Sim.default_config ~n_procs:4 ~seed:9) with Sim.sem_names = [ "S" ] } in
  let stats, log = collect cfg bodies in
  check "done" true stats.Sim.all_done;
  check_int "never two inside" 1 !max_inside;
  (* semaphore events appear on the semaphore trace (trace 4) *)
  check "sem trace events" true
    (List.exists (fun (r : Event.raw) -> r.r_trace = 4 && r.r_etype = "Sem_Grant") log)

let semaphore_fifo () =
  (* waiters are granted in arrival order *)
  let grants = ref [] in
  let bodies =
    Array.init 3 (fun _ ->
        fun me ->
          Sim.sem_p 0;
          grants := me :: !grants;
          (* hold while others queue up *)
          for _ = 1 to 5 do
            Sim.emit ~etype:"Hold" ~text:""
          done;
          Sim.sem_v 0)
  in
  let cfg = { (Sim.default_config ~n_procs:3 ~seed:4) with Sim.sem_names = [ "S" ] } in
  let stats, _ = collect cfg bodies in
  check "done" true stats.Sim.all_done;
  Alcotest.(check int) "all granted" 3 (List.length !grants)

let max_events_cutoff () =
  let bodies =
    Array.init 2 (fun _ -> fun _ -> while true do Sim.emit ~etype:"Spin" ~text:"" done)
  in
  let cfg = { (Sim.default_config ~n_procs:2 ~seed:1) with Sim.max_events = 500 } in
  let stats, log = collect cfg bodies in
  check "stopped at cutoff" true (stats.Sim.events_emitted >= 500 && stats.Sim.events_emitted < 510);
  check_int "log size" stats.Sim.events_emitted (List.length log)

let linearization_always_valid () =
  (* a busier mix: every simulator-produced stream must be a linearization *)
  let bodies =
    Array.init 5 (fun _ ->
        fun me ->
          for i = 1 to 30 do
            let dst = (me + i) mod 5 in
            if dst <> me then Sim.send ~dst ~tag:"x" ();
            if i mod 3 = 0 then
              (try ignore (Sim.recv ~tag:"x" ()) with _ -> ());
            Sim.emit ~etype:"L" ~text:""
          done)
  in
  let cfg = { (Sim.default_config ~n_procs:5 ~seed:77) with Sim.max_events = 2000 } in
  let _, log = collect cfg bodies in
  check "valid linearization" true (Ocep_poet.Linearize.is_linearization log)

let multiple_semaphores () =
  (* two independent semaphores, each its own trace, no cross interference *)
  let hold = Array.make 2 0 in
  let max_hold = Array.make 2 0 in
  let bodies =
    Array.init 4 (fun _ ->
        fun me ->
          let s = me mod 2 in
          for _ = 1 to 15 do
            Sim.sem_p s;
            hold.(s) <- hold.(s) + 1;
            if hold.(s) > max_hold.(s) then max_hold.(s) <- hold.(s);
            Sim.emit ~etype:"CS" ~text:(string_of_int s);
            hold.(s) <- hold.(s) - 1;
            Sim.sem_v s
          done)
  in
  let cfg = { (Sim.default_config ~n_procs:4 ~seed:6) with Sim.sem_names = [ "S0"; "S1" ] } in
  let stats, log = collect cfg bodies in
  check "done" true stats.Sim.all_done;
  check_int "sem0 exclusive" 1 max_hold.(0);
  check_int "sem1 exclusive" 1 max_hold.(1);
  (* each semaphore trace sees only its own traffic *)
  let grants t =
    List.length (List.filter (fun (r : Event.raw) -> r.r_trace = t && r.r_etype = "Sem_Grant") log)
  in
  check_int "30 grants on S0" 30 (grants 4);
  check_int "30 grants on S1" 30 (grants 5)

let rendezvous_with_waiting_receiver_does_not_block () =
  (* if the receiver is already waiting, a big send completes immediately
     with no Blocked_Send event *)
  let bodies =
    [|
      (fun _ ->
        for _ = 1 to 3 do
          Sim.emit ~etype:"Delay" ~text:""
        done;
        Sim.send ~dst:1 ~etype:"Big" ~size:1_000_000 ());
      (fun _ -> ignore (Sim.recv ~src:0 ()));
    |]
  in
  let stats, log = collect (Sim.default_config ~n_procs:2 ~seed:8) bodies in
  check "done" true stats.Sim.all_done;
  check "no blocked event" true
    (not (List.exists (fun (r : Event.raw) -> r.r_etype = "Blocked_Send") log))

let any_source_with_rendezvous () =
  (* a wildcard receive matches a blocked rendezvous sender *)
  let bodies =
    [|
      (fun _ -> Sim.send ~dst:2 ~etype:"Big" ~tag:"d" ~size:1_000_000 ());
      (fun _ -> Sim.send ~dst:2 ~etype:"Big" ~tag:"d" ~size:1_000_000 ());
      (fun _ ->
        for _ = 1 to 4 do
          Sim.emit ~etype:"Busy" ~text:""
        done;
        ignore (Sim.recv ~tag:"d" ());
        ignore (Sim.recv ~tag:"d" ()));
    |]
  in
  let stats, _ = collect (Sim.default_config ~n_procs:3 ~seed:2) bodies in
  check "done without recovery" true (stats.Sim.all_done && stats.Sim.deadlocks = [])

let send_to_self () =
  (* a process may send to itself eagerly and receive later *)
  let got = ref None in
  let bodies =
    [|
      (fun _ ->
        Sim.send ~dst:0 ~tag:"self" ~text:"me" ();
        got := Some (Sim.recv ~src:0 ~tag:"self" ()));
    |]
  in
  let stats, _ = collect (Sim.default_config ~n_procs:1 ~seed:1) bodies in
  check "done" true stats.Sim.all_done;
  check "delivered" true (match !got with Some m -> m.Sim.m_text = "me" | None -> false)

let yield_is_neutral () =
  let bodies =
    [|
      (fun _ ->
        Sim.emit ~etype:"E1" ~text:"";
        Sim.yield ();
        Sim.yield ();
        Sim.emit ~etype:"E2" ~text:"");
    |]
  in
  let stats, log = collect (Sim.default_config ~n_procs:1 ~seed:1) bodies in
  check "done" true stats.Sim.all_done;
  check_int "yield emits nothing" 2 (List.length log)

let self_reports_pid () =
  let seen = ref [] in
  let bodies = Array.init 3 (fun _ -> fun me ->
    seen := (me, Sim.self ()) :: !seen;
    Sim.emit ~etype:"X" ~text:"") in
  let _ = collect (Sim.default_config ~n_procs:3 ~seed:1) bodies in
  check "self matches body arg" true (List.for_all (fun (a, b) -> a = b) !seen)

let bodies_length_checked () =
  Alcotest.check_raises "wrong arity" (Invalid_argument "Sim.run: bodies length must equal n_procs")
    (fun () -> ignore (Sim.run (Sim.default_config ~n_procs:3 ~seed:1) ~sink:(fun _ -> ()) ~bodies:[||]))

let trace_names_layout () =
  let cfg = { (Sim.default_config ~n_procs:2 ~seed:1) with Sim.sem_names = [ "LOCK" ] } in
  check_int "n_traces counts semaphores" 3 (Sim.n_traces cfg);
  check "names" true (Sim.trace_names cfg = [| "P0"; "P1"; "LOCK" |])

let () =
  Alcotest.run "sim"
    [
      ( "scheduler",
        [
          Alcotest.test_case "determinism" `Quick determinism;
          Alcotest.test_case "seed changes interleaving" `Quick seed_changes_interleaving;
          Alcotest.test_case "ping-pong completes" `Quick ping_pong_completes;
          Alcotest.test_case "max_events cutoff" `Quick max_events_cutoff;
          Alcotest.test_case "linearization valid" `Quick linearization_always_valid;
        ] );
      ( "messaging",
        [
          Alcotest.test_case "message contents" `Quick message_contents;
          Alcotest.test_case "any source" `Quick any_source;
          Alcotest.test_case "tag filtering" `Quick tag_filtering;
          Alcotest.test_case "rendezvous blocks" `Quick rendezvous_blocks;
          Alcotest.test_case "eager does not block" `Quick eager_does_not_block;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "recovery" `Quick deadlock_recovery;
          Alcotest.test_case "stop mode" `Quick deadlock_stop_mode;
        ] );
      ( "semaphores",
        [
          Alcotest.test_case "mutual exclusion" `Quick semaphore_mutual_exclusion;
          Alcotest.test_case "fifo grants" `Quick semaphore_fifo;
          Alcotest.test_case "multiple semaphores" `Quick multiple_semaphores;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "rendezvous with waiting receiver" `Quick
            rendezvous_with_waiting_receiver_does_not_block;
          Alcotest.test_case "any-source rendezvous" `Quick any_source_with_rendezvous;
          Alcotest.test_case "send to self" `Quick send_to_self;
          Alcotest.test_case "yield neutral" `Quick yield_is_neutral;
          Alcotest.test_case "self pid" `Quick self_reports_pid;
          Alcotest.test_case "bodies arity" `Quick bodies_length_checked;
          Alcotest.test_case "trace names layout" `Quick trace_names_layout;
        ] );
    ]
