test/test_engine.ml: Alcotest Array Event List Ocep Ocep_base Ocep_baselines Ocep_pattern Ocep_poet Option Printf Prng QCheck QCheck_alcotest String Testutil
