test/test_matcher.ml: Alcotest Array Event Fun Interval List Ocep Ocep_base Ocep_baselines Ocep_pattern Ocep_poet Printf Prng QCheck QCheck_alcotest Testutil Vec
