test/test_baselines.ml: Alcotest Array Event List Ocep Ocep_base Ocep_baselines Ocep_pattern Ocep_poet Prng QCheck QCheck_alcotest Scanf Testutil Vclock
