test/test_poet.ml: Alcotest Array Event Filename List Ocep_base Ocep_poet Prng QCheck QCheck_alcotest String Sys Testutil Vclock
