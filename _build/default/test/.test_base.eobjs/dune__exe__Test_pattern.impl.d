test/test_pattern.ml: Alcotest Array Format List Ocep_base Ocep_pattern Ocep_workloads Printf Prng QCheck QCheck_alcotest Testutil
