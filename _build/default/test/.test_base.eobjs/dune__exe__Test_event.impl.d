test/test_event.ml: Alcotest Array Event List Ocep_base Prng QCheck QCheck_alcotest Testutil
