test/test_harness.ml: Alcotest Array Buffer Event Filename Format List Ocep Ocep_base Ocep_harness Ocep_pattern Ocep_poet Ocep_sim Ocep_workloads String Sys Unix
