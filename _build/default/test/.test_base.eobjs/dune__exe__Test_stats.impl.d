test/test_stats.ml: Alcotest Array Format List Ocep_stats QCheck QCheck_alcotest String
