test/test_base.ml: Alcotest Array Interval List Ocep_base Prng QCheck QCheck_alcotest Vclock Vec
