test/test_workloads.ml: Alcotest Array Event List Ocep Ocep_base Ocep_harness Ocep_pattern Ocep_poet Ocep_sim Ocep_workloads Printf Vclock
