test/test_poet.mli:
