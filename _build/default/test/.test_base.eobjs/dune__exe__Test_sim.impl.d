test/test_sim.ml: Alcotest Array Event List Ocep_base Ocep_poet Ocep_sim
