(* Event relations: the O(1) vector-clock tests against an independent
   reachability oracle, on both hand-built scenarios and random
   computations. *)

open Ocep_base
module Build = Testutil.Build

let check = Alcotest.(check bool)

let rel = Alcotest.testable Event.pp_relation ( = )

let diamond () =
  (* P0: a --m1--> P1: b ; P1: c --m2--> P0: d ; e on P2 concurrent *)
  let b = Build.create [| "P0"; "P1"; "P2" |] in
  let a = Build.internal b 0 "A" in
  let s1, r1 = Build.message b ~src:0 ~dst:1 in
  let c = Build.internal b 1 "C" in
  let s2, r2 = Build.message b ~src:1 ~dst:0 in
  let d = Build.internal b 0 "D" in
  let e = Build.internal b 2 "E" in
  Alcotest.check rel "a -> d" Event.Before (Event.relation a d);
  Alcotest.check rel "a -> c" Event.Before (Event.relation a c);
  Alcotest.check rel "d after a" Event.After (Event.relation d a);
  Alcotest.check rel "send -> recv" Event.Before (Event.relation s1 r1);
  Alcotest.check rel "s2 -> d" Event.Before (Event.relation s2 d);
  Alcotest.check rel "r2 -> d" Event.Before (Event.relation r2 d);
  Alcotest.check rel "e concurrent a" Event.Concurrent (Event.relation e a);
  Alcotest.check rel "e concurrent d" Event.Concurrent (Event.relation e d);
  Alcotest.check rel "equal" Event.Equal (Event.relation a a);
  check "hb strict" false (Event.hb a a);
  check "concurrent sym" true (Event.concurrent a e && Event.concurrent e a)

let same_trace_total_order () =
  let b = Build.create [| "P0" |] in
  let e1 = Build.internal b 0 "A" in
  let e2 = Build.internal b 0 "B" in
  let e3 = Build.internal b 0 "C" in
  check "1<2" true (Event.hb e1 e2);
  check "2<3" true (Event.hb e2 e3);
  check "1<3" true (Event.hb e1 e3);
  check "3>1" false (Event.hb e3 e1)

let msg_of_kinds () =
  let b = Build.create [| "P0"; "P1" |] in
  let s, r = Build.message b ~src:0 ~dst:1 in
  let i = Build.internal b 0 "X" in
  check "send msg" true (Event.msg_of s <> None);
  check "same msg" true (Event.msg_of s = Event.msg_of r);
  check "internal none" true (Event.msg_of i = None);
  check "is_comm" true (Event.is_comm s && Event.is_comm r && not (Event.is_comm i))

(* relation against the reachability oracle on random computations *)
let relation_matches_oracle =
  QCheck.Test.make ~name:"vector-clock relation = reachability oracle" ~count:60
    QCheck.(small_int)
    (fun seed ->
      let prng = Prng.create (seed + 1) in
      let n_traces = 2 + Prng.int prng 3 in
      let raws = Testutil.Gen.computation ~n_traces ~length:30 prng in
      let _, events = Testutil.ingest_all (Array.init n_traces (fun i -> "P" ^ string_of_int i)) raws in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              let oracle =
                if Event.equal a b then Event.Equal
                else if Testutil.hb_oracle events a b then Event.Before
                else if Testutil.hb_oracle events b a then Event.After
                else Event.Concurrent
              in
              Event.relation a b = oracle)
            events)
        events)

let relation_antisymmetric =
  QCheck.Test.make ~name:"relation (a,b) is the flip of (b,a)" ~count:60 QCheck.small_int
    (fun seed ->
      let prng = Prng.create (seed + 1000) in
      let n_traces = 2 + Prng.int prng 3 in
      let raws = Testutil.Gen.computation ~n_traces ~length:40 prng in
      let _, events = Testutil.ingest_all (Array.init n_traces (fun i -> "P" ^ string_of_int i)) raws in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              match (Event.relation a b, Event.relation b a) with
              | Event.Before, Event.After
              | Event.After, Event.Before
              | Event.Concurrent, Event.Concurrent
              | Event.Equal, Event.Equal ->
                true
              | _ -> false)
            events)
        events)

let hb_transitive =
  QCheck.Test.make ~name:"happened-before is transitive" ~count:40 QCheck.small_int (fun seed ->
      let prng = Prng.create (seed + 2000) in
      let n_traces = 2 + Prng.int prng 3 in
      let raws = Testutil.Gen.computation ~n_traces ~length:30 prng in
      let _, events = Testutil.ingest_all (Array.init n_traces (fun i -> "P" ^ string_of_int i)) raws in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              (not (Event.hb a b))
              || List.for_all (fun c -> (not (Event.hb b c)) || Event.hb a c) events)
            events)
        events)

let () =
  Alcotest.run "event"
    [
      ( "relations",
        [
          Alcotest.test_case "diamond" `Quick diamond;
          Alcotest.test_case "same trace total order" `Quick same_trace_total_order;
          Alcotest.test_case "msg kinds" `Quick msg_of_kinds;
          QCheck_alcotest.to_alcotest relation_matches_oracle;
          QCheck_alcotest.to_alcotest relation_antisymmetric;
          QCheck_alcotest.to_alcotest hb_transitive;
        ] );
    ]
