open Ocep_base

type t = Event.t list

let strong_precedes a b = List.for_all (fun x -> List.for_all (fun y -> Event.hb x y) b) a

let weak_precedes a b = List.exists (fun x -> List.exists (fun y -> Event.hb x y) b) a

let overlaps a b = List.exists (fun x -> List.exists (fun y -> Event.equal x y) b) a

let disjoint a b = not (overlaps a b)

let crosses a b = disjoint a b && weak_precedes a b && weak_precedes b a

let entangled a b = crosses a b || overlaps a b

let precedes a b = weak_precedes a b && not (entangled a b)

let concurrent a b =
  List.for_all (fun x -> List.for_all (fun y -> Event.concurrent x y) b) a

type classification = A_before_B | B_before_A | Concurrent | Entangled

let classify a b =
  if a = [] || b = [] then invalid_arg "Compound.classify: empty compound event";
  if entangled a b then Entangled
  else if weak_precedes a b then A_before_B
  else if weak_precedes b a then B_before_A
  else Concurrent

let pp_classification ppf = function
  | A_before_B -> Format.fprintf ppf "A -> B"
  | B_before_A -> Format.fprintf ppf "B -> A"
  | Concurrent -> Format.fprintf ppf "A || B"
  | Entangled -> Format.fprintf ppf "A <-> B"
