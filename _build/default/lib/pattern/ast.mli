(** Abstract syntax of the causal-pattern language (Section III of the
    paper).

    A pattern file is a sequence of statements: event-class definitions
    ([Synch := \[$1, Synch_Leader, $2\];]), event-variable declarations
    ([Snapshot $Diff;]) and the pattern itself
    ([pattern := (Synch -> $Diff) && ...;]).

    Attribute specifications are an exact string, a wildcard, or a
    variable; a variable that occurs in several attribute positions forces
    the matched values to be equal. An event variable names one occurrence
    of a class so that several operators constrain the same matched
    event. *)

type attr_spec =
  | Exact of string
  | Any
  | Var of string  (** without the leading [$] *)

type class_def = {
  cname : string;
  proc : attr_spec;  (** matched against the trace name *)
  typ : attr_spec;  (** matched against the event type *)
  text : attr_spec;  (** matched against the text field *)
}

(** Binary causality operators of Fig. 1 and Section III-B. *)
type causal_op =
  | Happens_before  (** [->]: weak precedence on compound operands *)
  | Concurrent_with  (** [||] *)
  | Partner  (** [<>]: the two events are the send/receive pair of one message *)
  | Limited_hb  (** [~>]: happens before with no interposed event of the left class *)
  | Strong_precedes  (** [=>]: every left event before every right event (Lamport) *)
  | Entangled  (** [<->]: the compound operands cross (some pair forward, some pair backward) *)

type operand =
  | Class of string  (** a fresh occurrence of the class *)
  | Evar of string  (** a declared event variable (shared occurrence) *)
  | Sub of expr  (** parenthesized compound event *)

and expr =
  | Op of causal_op * operand * operand
  | Single of operand  (** pattern that just requires an occurrence *)
  | And of expr * expr

type decl =
  | Class_decl of class_def
  | Var_decl of { vclass : string; vname : string }

type t = { decls : decl list; pattern : expr }

val pp_attr_spec : Format.formatter -> attr_spec -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp : Format.formatter -> t -> unit
(** Prints a pattern file that reparses to an equal AST. *)

val equal : t -> t -> bool
