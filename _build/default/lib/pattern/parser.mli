(** Parser for the textual pattern language.

    Grammar (whitespace-separated; [#] starts a line comment):
    {v
      file    := { stmt ";" }
      stmt    := "pattern" ":=" expr
               | IDENT ":=" "[" attr "," attr "," attr "]"
               | IDENT "$" IDENT                    (event-variable decl)
      attr    := "'" chars "'" | "$" IDENT | "_" | IDENT
      expr    := rel { "&&" rel }
      rel     := operand [ ("->" | "||" | "<>" | "~>") operand ]
      operand := IDENT | "$" IDENT | "(" expr ")"
    v} *)

exception Parse_error of string
(** Carries a human-readable message with position information. *)

val parse : string -> Ast.t
(** Raises {!Parse_error} on malformed input, including use of an undefined
    class or event variable, duplicate definitions, or a missing
    [pattern := ...] statement. *)

val parse_expr : string -> Ast.expr
(** Parse a bare pattern expression (used by tests). *)
