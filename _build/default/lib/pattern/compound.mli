(** Relationships between compound events (Section III-B).

    A compound event is a non-empty set of causally related primitive
    events. Lamport's strong precedence, Nichols' weak precedence, and the
    overlap / disjoint / cross / entanglement classification are all
    implemented here; [Compile] uses the same definitions to turn operators
    between compound operands into constraints, and the tests cross-check
    the two. *)

open Ocep_base

type t = Event.t list
(** Non-empty; treated as a set (duplicates by event identity ignored). *)

val strong_precedes : t -> t -> bool
(** [A ≺ B ⟺ ∀a∈A, ∀b∈B: a → b]. *)

val weak_precedes : t -> t -> bool
(** [∃a∈A, ∃b∈B: a → b]. *)

val overlaps : t -> t -> bool
(** Shares at least one event. *)

val disjoint : t -> t -> bool

val crosses : t -> t -> bool
(** [∃a0,a1∈A, ∃b0,b1∈B: a0 → b0 ∧ b1 → a1], with A and B disjoint. *)

val entangled : t -> t -> bool
(** Crosses or overlaps (definition (1)). *)

val precedes : t -> t -> bool
(** Definition (2): weak precedence and not entangled. *)

val concurrent : t -> t -> bool
(** Definition (3): all pairs concurrent. *)

(** The four mutually exclusive relationships of Section III-B. *)
type classification = A_before_B | B_before_A | Concurrent | Entangled

val classify : t -> t -> classification
(** Total classification: any two compound events fall in exactly one
    case. Raises [Invalid_argument] on an empty operand. *)

val pp_classification : Format.formatter -> classification -> unit
