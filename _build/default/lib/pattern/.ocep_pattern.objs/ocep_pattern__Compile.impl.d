lib/pattern/compile.ml: Array Ast Event Format Hashtbl List Ocep_base Option String
