lib/pattern/ast.mli: Format
