lib/pattern/compile.mli: Ast Event Format Ocep_base
