lib/pattern/ast.ml: Format List
