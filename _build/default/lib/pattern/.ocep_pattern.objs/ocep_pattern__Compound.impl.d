lib/pattern/compound.ml: Event Format List Ocep_base
