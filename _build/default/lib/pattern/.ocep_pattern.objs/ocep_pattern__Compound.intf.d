lib/pattern/compound.mli: Event Format Ocep_base
