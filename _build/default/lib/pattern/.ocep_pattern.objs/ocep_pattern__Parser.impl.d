lib/pattern/parser.ml: Ast Hashtbl List Printf String
