lib/pattern/parser.mli: Ast
