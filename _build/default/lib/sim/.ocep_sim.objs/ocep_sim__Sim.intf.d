lib/sim/sim.mli: Ocep_base
