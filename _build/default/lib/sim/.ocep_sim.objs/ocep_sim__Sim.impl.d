lib/sim/sim.ml: Array Effect Event List Ocep_base Prng Queue Vec
