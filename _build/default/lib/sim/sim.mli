(** Deterministic discrete-event simulator of a message-passing distributed
    system.

    This substitutes for the paper's instrumented target environments (MPI
    programs and muC++ programs feeding POET). Each simulated process is an
    OCaml function that performs effects — sends, blocking receives,
    internal events, semaphore operations — and a seeded scheduler
    interleaves the processes. The observable output is the stream of
    {!Ocep_base.Event.raw} records, in an order that is a valid
    linearization of the causal partial order.

    Semantics mirror the aspects of MPI and muC++ the paper relies on:
    - sends at or below an eager threshold buffer immediately; larger sends
      block until a matching receive is posted (MPI rendezvous), emitting a
      blocked-send event first — the latent-deadlock mechanism of Section
      V-C1;
    - receives block, and may match any source (MPI_ANY_SOURCE) — the race
      mechanism of Section V-C2;
    - semaphores are passive entities with their own traces, and P/V are
      request/grant/release message exchanges so that causality flows
      through the semaphore trace, as in the muC++ POET plugin of Section
      V-C3. *)

type msg = {
  m_id : int;
  m_src : int;
  m_dst : int;
  m_tag : string;
  m_text : string;
  m_size : int;
}

type config = {
  n_procs : int;
  sem_names : string list;  (** each semaphore gets its own trace *)
  seed : int;
  eager_threshold : int;  (** sends with [size] strictly greater block *)
  max_events : int;  (** stop the run once this many events were emitted *)
  on_stall : [ `Recover | `Stop ];
      (** what to do on a global stall (deadlock): [`Recover] force-buffers
          one blocked send, records the deadlock, and continues — this is
          how a >1M-event run can contain many deadlock instances. *)
  blocked_send_etype : string;  (** etype of the event emitted when a send blocks *)
}

val default_config : n_procs:int -> seed:int -> config
(** No semaphores, eager threshold 1024, 100_000 events max, [`Recover]. *)

val n_traces : config -> int
val proc_name : int -> string
(** ["P<i>"]. *)

val trace_names : config -> string array
(** Process traces first, then semaphore traces. *)

(** A recorded deadlock recovery: the processes that were blocked in a send
    cycle when the scheduler had to intervene, as (sender, destination)
    pairs. Ground truth for the deadlock case study. *)
type deadlock = { participants : (int * int) list; at_event : int }

type stats = {
  events_emitted : int;
  deadlocks : deadlock list;  (** in chronological order *)
  all_done : bool;  (** every process ran to completion *)
}

(** Operations available inside a process body. All of them are effects
    handled by the scheduler; each is an interleaving point. *)

val send :
  ?etype:string -> ?tag:string -> ?text:string -> ?size:int -> dst:int -> unit -> unit
(** Emit a send event on the caller's trace and deliver [text] to [dst].
    Defaults: etype ["Send"], tag [""], text [""], size [0] (eager). *)

val recv : ?src:int -> ?tag:string -> ?etype:string -> unit -> msg
(** Blocking receive; [src = None] is ANY_SOURCE, [tag = None] matches any
    tag. Emits a receive event (etype default ["Recv"]; text = sender's
    trace name) on the caller's trace. *)

val emit : etype:string -> text:string -> unit
(** Emit an internal event on the caller's trace. *)

val sem_p : int -> unit
(** Acquire semaphore [i] (index into [sem_names]). *)

val sem_v : int -> unit
(** Release semaphore [i]. *)

val yield : unit -> unit
(** Reschedule without emitting an event. *)

val self : unit -> int
(** The caller's process id. *)

val run : config -> sink:(Ocep_base.Event.raw -> unit) -> bodies:(int -> unit) array -> stats
(** Run the simulation: [bodies.(i)] is the body of process [i] (and is
    passed [i]). [sink] receives every event in emission order. Raises
    [Invalid_argument] if [Array.length bodies <> n_procs]. Raises
    [Failure] on an unrecoverable stall when [on_stall = `Stop] is not set
    and no blocked send exists to recover. *)
