(** Common shape of the evaluation workloads (Section V-C).

    A workload bundles a simulator configuration, the process bodies, the
    pattern text that detects its injected violation, and the injection
    ground truth the bodies record as they run. *)

module Sim = Ocep_sim.Sim

type t = {
  name : string;
  sim_config : Sim.config;
  bodies : (int -> unit) array;
  pattern : string;  (** pattern-language source *)
  inject : Inject.t;
  expected_parts : int;  (** constituent events per injected violation *)
}
