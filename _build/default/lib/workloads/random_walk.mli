(** The deadlock case study (Section V-C1): a parallel random walk.

    Processes on a ring exchange walkers with their neighbours every phase
    (eager sends — never blocking). At planned phases, a cycle of
    [cycle_len] processes instead first sends a bulk walker batch
    (rendezvous-sized) around the cycle before receiving: every member
    blocks, the application deadlocks, and the scheduler's recovery stands
    in for the operator restart. The blocked sends are the only
    [Blocked_Send] events in the run and are pairwise concurrent, so
    {!Patterns.deadlock_cycle} matches exactly the injected deadlocks. *)

val cycle_len : int
(** Default length of the injected (and searched-for) send cycle: 4. *)

val make :
  traces:int ->
  seed:int ->
  max_events:int ->
  ?inject_every:int ->
  ?cycle_len:int ->
  unit ->
  Workload.t
(** [traces] processes (≥ [cycle_len] + 1). [inject_every] is the period in
    phases between injections (default tuned so a default run sees a few
    dozen); [cycle_len] (default 4, min 2) sets both the injected cycle and
    the pattern length — the knob behind the paper's "exponential in the
    length of the pattern" remark on Fig. 6. *)
