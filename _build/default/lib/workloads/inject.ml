open Ocep_base

type part = { p_trace : int; p_etype : string; p_nth : int }

type injection = {
  inj_id : int;
  expected_parts : int;
  mutable parts : part list;
  mutable resolved : Event.t list;
}

type t = {
  emit_counts : (int * string, int) Hashtbl.t;  (* workload side *)
  seen_counts : (int * string, int) Hashtbl.t;  (* harness side *)
  wanted : (int * string * int, injection) Hashtbl.t;
  mutable injs : injection list;  (* newest first *)
  mutable next_id : int;
}

let create () =
  {
    emit_counts = Hashtbl.create 64;
    seen_counts = Hashtbl.create 64;
    wanted = Hashtbl.create 64;
    injs = [];
    next_id = 0;
  }

let bump tbl key =
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key n;
  n

let next_occurrence t ~trace ~etype = bump t.emit_counts (trace, etype)

let new_injection t ~expected_parts =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.injs <- { inj_id = id; expected_parts; parts = []; resolved = [] } :: t.injs;
  id

let find_injection t id = List.find (fun i -> i.inj_id = id) t.injs

let add_part t ~id ~trace ~etype ~nth =
  let inj = find_injection t id in
  inj.parts <- inj.parts @ [ { p_trace = trace; p_etype = etype; p_nth = nth } ];
  Hashtbl.replace t.wanted (trace, etype, nth) inj

let injections t = List.rev t.injs

let resolve t (ev : Event.t) =
  let nth = bump t.seen_counts (ev.trace, ev.etype) in
  match Hashtbl.find_opt t.wanted (ev.trace, ev.etype, nth) with
  | None -> None
  | Some inj ->
    inj.resolved <- inj.resolved @ [ ev ];
    Some inj

let complete t =
  List.filter
    (fun i -> List.length i.parts = i.expected_parts && List.length i.resolved = i.expected_parts)
    (injections t)
