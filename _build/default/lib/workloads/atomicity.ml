open Ocep_base
module Sim = Ocep_sim.Sim

let make ~traces ~seed ~max_events ?(skip_rate = 0.01) ?(work_burst = 0) () =
  if traces < 3 then invalid_arg "Atomicity.make: need at least 3 traces";
  let w = traces - 1 in
  let inj = Inject.create () in
  let body me =
    let prng = Prng.create ((seed * 31) + me) in
    let right = (me + 1) mod w and left = (me + w - 1) mod w in
    while true do
      (* heartbeat ring: keeps workers loosely in step and guarantees a
         communication event between successive iterations, so same-trace
         entries are never merged by the history-pruning rule *)
      Sim.send ~dst:right ~etype:"Heartbeat" ~tag:"hb" ();
      ignore (Sim.recv ~src:left ~tag:"hb" ~etype:"Heartbeat_Recv" ());
      (* local work between sections: invisible to the pattern, but it
         multiplies the interleavings a global-state approach must consider *)
      for _ = 1 to work_burst do
        Sim.emit ~etype:"Work" ~text:""
      done;
      if Prng.bernoulli prng skip_rate then begin
        (* the bug: enter the protected method without acquiring *)
        let id = Inject.new_injection inj ~expected_parts:1 in
        let nth = Inject.next_occurrence inj ~trace:me ~etype:"CS_Enter" in
        Inject.add_part inj ~id ~trace:me ~etype:"CS_Enter" ~nth;
        Sim.emit ~etype:"CS_Enter" ~text:"";
        Sim.emit ~etype:"CS_Exit" ~text:""
      end
      else begin
        Sim.sem_p 0;
        ignore (Inject.next_occurrence inj ~trace:me ~etype:"CS_Enter");
        Sim.emit ~etype:"CS_Enter" ~text:"";
        Sim.emit ~etype:"CS_Exit" ~text:"";
        Sim.sem_v 0
      end
    done
  in
  let sim_config =
    {
      (Sim.default_config ~n_procs:w ~seed) with
      Sim.max_events;
      sem_names = [ "SEM" ];
    }
  in
  {
    Workload.name = "atomicity";
    sim_config;
    bodies = Array.init w (fun _ -> body);
    pattern = Patterns.atomicity_violation;
    inject = inj;
    expected_parts = 1;
  }
