module Sim = Ocep_sim.Sim

type t = {
  name : string;
  sim_config : Sim.config;
  bodies : (int -> unit) array;
  pattern : string;
  inject : Inject.t;
  expected_parts : int;
}
