lib/workloads/inject.mli: Event Ocep_base
