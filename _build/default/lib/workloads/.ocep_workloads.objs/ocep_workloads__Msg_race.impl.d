lib/workloads/msg_race.ml: Array Hashtbl Inject Ocep_base Ocep_sim Patterns Prng String Workload
