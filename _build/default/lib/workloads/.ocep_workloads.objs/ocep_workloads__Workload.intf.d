lib/workloads/workload.mli: Inject Ocep_sim
