lib/workloads/random_walk.mli: Workload
