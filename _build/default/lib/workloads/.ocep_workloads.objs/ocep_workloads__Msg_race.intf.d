lib/workloads/msg_race.mli: Workload
