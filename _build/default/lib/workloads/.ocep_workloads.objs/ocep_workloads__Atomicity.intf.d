lib/workloads/atomicity.mli: Workload
