lib/workloads/inject.ml: Event Hashtbl List Ocep_base Option
