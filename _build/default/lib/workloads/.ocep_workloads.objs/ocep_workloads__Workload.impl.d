lib/workloads/workload.ml: Inject Ocep_sim
