lib/workloads/ordering.ml: Array Inject Ocep_base Ocep_sim Patterns Prng Workload
