lib/workloads/patterns.ml: Buffer Printf
