lib/workloads/patterns.mli:
