lib/workloads/random_walk.ml: Array Hashtbl Inject Ocep_base Ocep_sim Patterns Prng Workload
