lib/workloads/ordering.mli: Workload
