open Ocep_base
module Sim = Ocep_sim.Sim

let cycle_len = 4

(* Rendezvous threshold is the simulator default (1024); bulk batches are
   far above it so an out-of-turn bulk send always blocks. *)
let bulk_size = 1_000_000

let make ~traces ~seed ~max_events ?inject_every ?(cycle_len = cycle_len) () =
  let n = traces in
  if cycle_len < 2 then invalid_arg "Random_walk.make: cycle length must be >= 2";
  if n < cycle_len + 1 then invalid_arg "Random_walk.make: need at least cycle_len+1 traces";
  let inj = Inject.create () in
  let phases_est = max 1 (max_events / (2 * n)) in
  let inject_every =
    match inject_every with Some v -> max 2 v | None -> max 2 (phases_est / 25)
  in
  (* The injection plan is a pure function of (seed, phase), so every member
     of a cycle computes the same plan without coordination. *)
  let cycle_at phase =
    if phase > 0 && phase mod inject_every = 0 then begin
      let prng = Prng.create ((seed * 65599) + (phase * 7919)) in
      let arr = Array.init n (fun i -> i) in
      Prng.shuffle prng arr;
      Some (Array.sub arr 0 cycle_len)
    end
    else None
  in
  let inj_ids : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let inj_id_for phase =
    match Hashtbl.find_opt inj_ids phase with
    | Some id -> id
    | None ->
      let id = Inject.new_injection inj ~expected_parts:cycle_len in
      Hashtbl.replace inj_ids phase id;
      id
  in
  let body me =
    let right = (me + 1) mod n and left = (me + n - 1) mod n in
    let phase = ref 0 in
    while true do
      incr phase;
      (match cycle_at !phase with
      | Some cycle when Array.exists (fun p -> p = me) cycle ->
        let pos = ref 0 in
        Array.iteri (fun i p -> if p = me then pos := i) cycle;
        let nxt = cycle.((!pos + 1) mod cycle_len) in
        let prev = cycle.((!pos + cycle_len - 1) mod cycle_len) in
        let id = inj_id_for !phase in
        (* barrier among the cycle members: nobody starts the bulk send
           until everyone has reached this phase, so all four block before
           the runtime can notice the stall (as a real MPI collective bug
           would) and the blocked sends stay pairwise concurrent *)
        Array.iter
          (fun p -> if p <> me then Sim.send ~dst:p ~etype:"Cycle_Ready" ~tag:"rdy" ())
          cycle;
        Array.iter
          (fun p ->
            if p <> me then ignore (Sim.recv ~src:p ~tag:"rdy" ~etype:"Cycle_Ready_Recv" ()))
          cycle;
        (* the out-of-turn bulk send below will block: that is this
           member's next Blocked_Send event *)
        let nth = Inject.next_occurrence inj ~trace:me ~etype:"Blocked_Send" in
        Inject.add_part inj ~id ~trace:me ~etype:"Blocked_Send" ~nth;
        Sim.send ~dst:nxt ~etype:"MPI_Send" ~tag:"bulk" ~text:(Sim.proc_name nxt)
          ~size:bulk_size ();
        ignore (Sim.recv ~src:prev ~tag:"bulk" ~etype:"MPI_Recv" ())
      | Some _ | None -> ());
      (* the regular walker exchange of this phase (eager, never blocks) *)
      Sim.send ~dst:right ~etype:"MPI_Send" ~tag:"w" ~text:(Sim.proc_name right) ~size:1 ();
      ignore (Sim.recv ~src:left ~tag:"w" ~etype:"MPI_Recv" ());
      if !phase mod 16 = 0 then Sim.emit ~etype:"Walk_Step" ~text:""
    done
  in
  let sim_config =
    { (Sim.default_config ~n_procs:n ~seed) with Sim.max_events; on_stall = `Recover }
  in
  {
    Workload.name = "deadlock";
    sim_config;
    bodies = Array.init n (fun _ -> body);
    pattern = Patterns.deadlock_cycle cycle_len;
    inject = inj;
    expected_parts = cycle_len;
  }
