open Ocep_base
module Sim = Ocep_sim.Sim

let make ~traces ~seed ~max_events ?(bug_rate = 0.01) ?(background_update_rate = 0.2)
    ?(update_burst = 4) () =
  let n = traces in
  if n < 2 then invalid_arg "Ordering.make: need at least 2 traces";
  let inj = Inject.create () in
  let leader () =
    let prng = Prng.create (seed + 101) in
    let round = ref 0 in
    let emit_tracked ?record etype text =
      let nth = Inject.next_occurrence inj ~trace:0 ~etype in
      (match record with
      | Some id -> Inject.add_part inj ~id ~trace:0 ~etype ~nth
      | None -> ());
      Sim.emit ~etype ~text
    in
    while true do
      let m = Sim.recv ~tag:"synch" ~etype:"Synch_Recv" () in
      incr round;
      let rid = m.Sim.m_text ^ ":" ^ string_of_int !round in
      (* background updates arrive in bursts (batched client writes); the
         burst is uninterrupted by communication, which is exactly what the
         O(1) history-pruning rule collapses *)
      if Prng.bernoulli prng background_update_rate then
        for _ = 1 to 1 + Prng.int prng (max 1 update_burst) do
          emit_tracked "Make_Update" ""
        done;
      let record =
        if Prng.bernoulli prng bug_rate then Some (Inject.new_injection inj ~expected_parts:4)
        else None
      in
      emit_tracked ?record "Synch_Leader" rid;
      emit_tracked ?record "Take_Snapshot" rid;
      (match record with Some id -> emit_tracked ~record:id "Make_Update" "" | None -> ());
      emit_tracked ?record "Forward_Snapshot" rid;
      Sim.send ~dst:m.Sim.m_src ~etype:"Snapshot_Msg" ~tag:"snap" ~text:rid ()
    done
  in
  let follower me =
    while true do
      Sim.send ~dst:0 ~etype:"Synch_Req" ~tag:"synch" ~text:(Sim.proc_name me) ();
      ignore (Sim.recv ~src:0 ~tag:"snap" ~etype:"Snapshot_Recv" ());
      Sim.emit ~etype:"Apply_Snapshot" ~text:""
    done
  in
  let bodies = Array.init n (fun i -> if i = 0 then fun _ -> leader () else follower) in
  let sim_config = { (Sim.default_config ~n_procs:n ~seed) with Sim.max_events } in
  {
    Workload.name = "ordering";
    sim_config;
    bodies;
    pattern = Patterns.ordering_bug;
    inject = inj;
    expected_parts = 4;
  }
