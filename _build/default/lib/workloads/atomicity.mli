(** The atomicity-violation case study (Section V-C3): a critical section
    protected by a semaphore that is skipped with a small probability.

    Workers on a heartbeat ring repeatedly execute a semaphore-protected
    section, emitting [CS_Enter]/[CS_Exit]. The semaphore is a separate
    trace (as in the muC++ POET plugin), so correctly protected entries are
    always causally ordered through the grant chain. With probability
    [skip_rate] a worker enters without acquiring: that entry is concurrent
    with other entries — the violation {!Patterns.atomicity_violation}
    matches. *)

val make :
  traces:int -> seed:int -> max_events:int -> ?skip_rate:float -> ?work_burst:int -> unit -> Workload.t
(** [traces] counts the semaphore trace too: traces−1 workers + 1
    semaphore. [skip_rate] defaults to 0.01 per iteration; [work_burst]
    (default 0) adds that many local work events per iteration — noise
    for the pattern, state explosion for a global-state detector. *)
