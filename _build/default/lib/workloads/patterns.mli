(** The pattern texts for the four case studies, in the pattern language of
    Section III. *)

val deadlock_cycle : int -> string
(** A send cycle of the given length (≥ 2) among blocked sends: k
    [Blocked_Send] classes chained by process/text variables, all pairwise
    concurrent — a communication deadlock of that specific length
    (Section V-C1). *)

val message_race : string
(** Two concurrent sends towards the same destination (Section V-C2). *)

val atomicity_violation : string
(** Two concurrent critical-section entries (Section V-C3). *)

val ordering_bug : string
(** The ZooKeeper-962 leader/follower pattern of Section III-D: a snapshot
    taken for a synch request, updated before it is forwarded. *)

val traffic_light : string
(** The introduction's example: two lights green concurrently. *)
