(** The ordering-bug case study (Sections III-D and V-C4): a replicated
    service with the ZooKeeper-962 leader/follower coherence bug.

    Followers send synch requests; the leader emits
    [Synch_Leader]/[Take_Snapshot]/[Forward_Snapshot] events whose text
    field encodes the request id (follower:round), exactly the paper's use
    of the text field to tie a Synch/Forward pair together. With
    probability [bug_rate] the leader makes an update between taking and
    forwarding the snapshot — the stale-snapshot violation
    {!Patterns.ordering_bug} matches. Background updates between rounds do
    not match (they are not causally inside a snapshot/forward span of one
    request id). *)

val make :
  traces:int ->
  seed:int ->
  max_events:int ->
  ?bug_rate:float ->
  ?background_update_rate:float ->
  ?update_burst:int ->
  unit ->
  Workload.t
(** [traces] = 1 leader + (traces−1) followers. Defaults: [bug_rate] 0.01,
    [background_update_rate] 0.2 per round, [update_burst] 4 (background
    updates arrive in uninterrupted bursts of 1..burst events, which the
    history-pruning rule collapses to one stored entry). *)
