let deadlock_cycle k =
  if k < 2 then invalid_arg "Patterns.deadlock_cycle: length must be >= 2";
  let buf = Buffer.create 256 in
  for i = 1 to k do
    let next = (i mod k) + 1 in
    Buffer.add_string buf
      (Printf.sprintf "B%d := [$p%d, Blocked_Send, $p%d];\nB%d $b%d;\n" i i next i i)
  done;
  Buffer.add_string buf "pattern := ";
  let first = ref true in
  for i = 1 to k do
    for j = i + 1 to k do
      if not !first then Buffer.add_string buf " && ";
      first := false;
      Buffer.add_string buf (Printf.sprintf "$b%d || $b%d" i j)
    done
  done;
  Buffer.add_string buf ";\n";
  Buffer.contents buf

let message_race =
  "S1 := [_, MPI_Send, $d];\nS2 := [_, MPI_Send, $d];\npattern := S1 || S2;\n"

let atomicity_violation =
  "Enter1 := [_, CS_Enter, _];\nEnter2 := [_, CS_Enter, _];\npattern := Enter1 || Enter2;\n"

let ordering_bug =
  "Synch := [$L, Synch_Leader, $R];\n\
   Snapshot := [$L, Take_Snapshot, $R];\n\
   Update := [$L, Make_Update, _];\n\
   Forward := [$L, Forward_Snapshot, $R];\n\
   Snapshot $Diff;\n\
   Update $Write;\n\
   pattern := (Synch -> $Diff) && ($Diff -> $Write) && ($Write -> Forward);\n"

let traffic_light =
  "G1 := [$a, Turn_Green, _];\nG2 := [$b, Turn_Green, _];\npattern := G1 || G2;\n"
