(** The message-race case study (Section V-C2): all processes but one send
    to the remaining one, which receives with MPI_ANY_SOURCE.

    The receiver normally serializes the senders with a go-token, so
    successive data sends are causally chained. With probability
    [race_rate] it hands the token to two senders at once: their sends are
    concurrent — a genuine race at the wildcard receive — and are recorded
    as the injected ground truth. {!Patterns.message_race} matches exactly
    those pairs. *)

val make : traces:int -> seed:int -> max_events:int -> ?race_rate:float -> unit -> Workload.t
(** [traces] = 1 receiver + (traces−1) senders; [race_rate] defaults to
    0.01 per round. *)
