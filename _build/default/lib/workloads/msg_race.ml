open Ocep_base
module Sim = Ocep_sim.Sim

let make ~traces ~seed ~max_events ?(race_rate = 0.01) () =
  let n = traces in
  if n < 3 then invalid_arg "Msg_race.make: need at least 3 traces";
  let inj = Inject.create () in
  (* receiver-chosen injection ids, keyed by round and read by the senders *)
  let round_inj : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let receiver () =
    let prng = Prng.create (seed + 17) in
    let round = ref 0 in
    let next_sender = ref 1 in
    let rr () =
      let s = !next_sender in
      next_sender := if s + 1 >= n then 1 else s + 1;
      s
    in
    while true do
      incr round;
      if Prng.bernoulli prng race_rate then begin
        let s1 = rr () in
        let s2 = rr () in
        let id = Inject.new_injection inj ~expected_parts:2 in
        Hashtbl.replace round_inj !round id;
        let text = "race:" ^ string_of_int !round in
        Sim.send ~dst:s1 ~etype:"Token" ~tag:"go" ~text ();
        Sim.send ~dst:s2 ~etype:"Token" ~tag:"go" ~text ();
        ignore (Sim.recv ~tag:"data" ~etype:"MPI_Recv_Any" ());
        ignore (Sim.recv ~tag:"data" ~etype:"MPI_Recv_Any" ())
      end
      else begin
        let s = rr () in
        Sim.send ~dst:s ~etype:"Token" ~tag:"go" ~text:"normal" ();
        ignore (Sim.recv ~tag:"data" ~etype:"MPI_Recv_Any" ())
      end
    done
  in
  let sender me =
    while true do
      let m = Sim.recv ~src:0 ~tag:"go" ~etype:"Token_Recv" () in
      (match String.index_opt m.Sim.m_text ':' with
      | Some i when String.sub m.Sim.m_text 0 i = "race" ->
        let round = int_of_string (String.sub m.Sim.m_text (i + 1) (String.length m.Sim.m_text - i - 1)) in
        let id = Hashtbl.find round_inj round in
        let nth = Inject.next_occurrence inj ~trace:me ~etype:"MPI_Send" in
        Inject.add_part inj ~id ~trace:me ~etype:"MPI_Send" ~nth
      | Some _ | None -> ignore (Inject.next_occurrence inj ~trace:me ~etype:"MPI_Send"));
      Sim.send ~dst:0 ~etype:"MPI_Send" ~tag:"data" ~text:(Sim.proc_name 0) ()
    done
  in
  let bodies = Array.init n (fun i -> if i = 0 then fun _ -> receiver () else sender) in
  let sim_config = { (Sim.default_config ~n_procs:n ~seed) with Sim.max_events } in
  {
    Workload.name = "races";
    sim_config;
    bodies;
    pattern = Patterns.message_race;
    inject = inj;
    expected_parts = 2;
  }
