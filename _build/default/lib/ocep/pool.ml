type job = Job of (unit -> unit) | Quit

type t = {
  n : int;
  jobs : job Queue.t;
  m : Mutex.t;
  have_job : Condition.t;
  mutable domains : unit Stdlib.Domain.t list;
  mutable down : bool;
}

let worker t () =
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.jobs do
      Condition.wait t.have_job t.m
    done;
    let job = Queue.pop t.jobs in
    Mutex.unlock t.m;
    match job with
    | Quit -> ()
    | Job f ->
      f ();
      loop ()
  in
  loop ()

let create ~workers =
  let n = max 1 workers in
  let t =
    {
      n;
      jobs = Queue.create ();
      m = Mutex.create ();
      have_job = Condition.create ();
      domains = [];
      down = false;
    }
  in
  t.domains <- List.init n (fun _ -> Stdlib.Domain.spawn (worker t));
  t

let workers t = t.n

let run_all t tasks =
  let total = Array.length tasks in
  if total = 0 then [||]
  else begin
    let results = Array.make total None in
    let errors = ref [] in
    let remaining = ref total in
    let done_m = Mutex.create () in
    let all_done = Condition.create () in
    Mutex.lock t.m;
    Array.iteri
      (fun i task ->
        Queue.push
          (Job
             (fun () ->
               (try results.(i) <- Some (task ())
                with e ->
                  Mutex.lock done_m;
                  errors := e :: !errors;
                  Mutex.unlock done_m);
               Mutex.lock done_m;
               decr remaining;
               if !remaining = 0 then Condition.signal all_done;
               Mutex.unlock done_m))
          t.jobs)
      tasks;
    Condition.broadcast t.have_job;
    Mutex.unlock t.m;
    Mutex.lock done_m;
    while !remaining > 0 do
      Condition.wait all_done done_m
    done;
    Mutex.unlock done_m;
    (match !errors with [] -> () | e :: _ -> raise e);
    Array.map (fun r -> Option.get r) results
  end

let shutdown t =
  if not t.down then begin
    t.down <- true;
    Mutex.lock t.m;
    for _ = 1 to t.n do
      Queue.push Quit t.jobs
    done;
    Condition.broadcast t.have_job;
    Mutex.unlock t.m;
    List.iter Stdlib.Domain.join t.domains;
    t.domains <- []
  end
