(** Representative-subset bookkeeping (Section IV-B).

    A coverage slot is a (leaf, trace) pair. The representative subset must
    contain, for every slot on which a matching event participates in some
    complete match, at least one reported match instantiating that slot —
    at most k·n matches. The tracker records which slots have been covered
    by reported matches, which slots have been seen (some event
    class-matched the leaf on the trace — only those can possibly need
    covering), and keeps the reported matches. *)

open Ocep_base

type report = {
  events : Event.t array;  (** the match, indexed by leaf id *)
  fresh : (int * int) list;  (** slots this report covered first *)
  seq : int;  (** ingestion sequence number at report time *)
}

type t

val create : k:int -> n_traces:int -> ?report_cap:int -> unit -> t
(** [report_cap] (default [max_int]) bounds the retained report list; the
    coverage arrays stay exact regardless. *)

val seen : t -> leaf:int -> trace:int -> unit
val is_covered : t -> leaf:int -> trace:int -> bool
val is_seen : t -> leaf:int -> trace:int -> bool

val record : t -> seq:int -> Event.t array -> report option
(** Update coverage with a found match; [Some report] iff it covered at
    least one new slot (and was therefore added to the subset). *)

val uncovered_seen_slots : t -> (int * int) list
(** Slots that have candidate events but no covering match yet; the engine
    re-searches these on every terminating event. *)

val reports : t -> report list
(** Reported matches, oldest first (capped at [report_cap]). *)

val covered_count : t -> int
val seen_count : t -> int
