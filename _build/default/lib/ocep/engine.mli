(** The online monitor: a POET client that maintains leaf histories and,
    on every terminating event, searches for matches and maintains the
    representative subset.

    On arrival of an event the engine (1) advances the communication
    epoch, (2) appends the event to the history of every leaf it
    class-matches, and (3) for each {e terminating} leaf it matches, runs
    one anchored search, plus — when [pin_searches] is on — one pinned
    search per still-uncovered coverage slot, exactly the
    goForward/goBackward cycle of Algorithm 1 driven by the subset
    objective. The wall-clock time of step (3) is recorded per arrival;
    these samples are the distributions of Figs. 6–10. *)

open Ocep_base
module Compile = Ocep_pattern.Compile
module Poet = Ocep_poet.Poet

type config = {
  pruning : bool;  (** the O(1) history-pruning rule (Section V-D) *)
  max_history_per_trace : int option;  (** hard storage cap per (leaf, trace) *)
  pin_searches : bool;  (** search uncovered slots on each terminating event *)
  node_budget : int option;  (** abort pathological searches, [None] = unlimited *)
  report_cap : int;  (** retained reported matches *)
  record_latency : bool;
  gc_every : int option;
      (** the paper's future-work extension: every N events, drop history
          entries provably unable to join any future match (sound for
          leaves whose relation to every anchor leaf excludes happening
          before it — e.g. both sides of a pure concurrency pattern).
          Requires every trace to keep producing events to make progress
          (the usual vector-clock GC caveat). [None] disables. *)
}

val default_config : config
(** pruning on, no cap, pin searches on, no budget, 100_000 reports,
    latency recording on, gc off. *)

type t

val create : ?config:config -> net:Compile.t -> poet:Poet.t -> unit -> t
(** Builds the engine and subscribes it to [poet]; every event ingested
    afterwards is processed. *)

val net : t -> Compile.t
val config : t -> config

val reports : t -> Subset.report list
(** The representative subset, in report order. *)

val matches_found : t -> int
(** Successful searches (includes matches that added no new coverage). *)

val find_containing : t -> Event.t -> Event.t array option
(** One complete match containing the given event (which must have been
    processed), for ground-truth queries — independent of the subset. *)

val latencies_us : t -> float array
(** Per-terminating-arrival processing times, microseconds. *)

val events_processed : t -> int
val terminating_arrivals : t -> int
val history_entries : t -> int
val history_entries_for : t -> leaf:int -> int
val history_dropped : t -> int
val covered_slots : t -> int
val seen_slots : t -> int
val search_stats : t -> Matcher.stats
val aborted_searches : t -> int
