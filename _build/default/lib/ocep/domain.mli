(** Domain restriction with respect to an instantiated event (Fig. 4).

    Given the history of a leaf on one trace and an already instantiated
    event [w], the positions that may still extend the partial match are:

    - relation [Before]  (candidate → w): positions up to the greatest
      predecessor of [w] on the trace, found from [w]'s own timestamp
      entry in O(1) plus a binary search;
    - relation [After]   (w → candidate): positions from the least
      successor of [w] on, found by binary search on the candidates'
      timestamp entry for [w]'s trace (monotone along the trace);
    - relation [Concurrent]: the open window strictly between the two.

    The result is expressed as a set of positions {e inside the history
    vector}, not trace indices, so it can be intersected across several
    instantiated events and iterated directly. *)

open Ocep_base

val restrict :
  History.entry Vec.t -> trace:int -> w:Event.t -> Ocep_pattern.Compile.allowed -> Interval.Set.t
(** Positions of history entries on [trace] whose relation to [w] is one of
    the allowed ones. *)

val full : History.entry Vec.t -> Interval.Set.t
(** All positions. *)

val gp_position : History.entry Vec.t -> trace:int -> w:Event.t -> int
(** Largest position whose event happens before [w] ([-1] if none): the
    greatest-predecessor boundary within this history. *)

val ls_position : History.entry Vec.t -> trace:int -> w:Event.t -> int
(** Smallest position whose event happens after [w] ([length] if none):
    the least-successor boundary within this history. *)
