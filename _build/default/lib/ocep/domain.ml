open Ocep_base
module Compile = Ocep_pattern.Compile

let full v =
  if Vec.is_empty v then Interval.Set.empty
  else Interval.Set.of_interval (Interval.make 0 (Vec.length v - 1))

(* Largest position p such that hist[p].ev -> w, i.e. index <= GP(w, trace);
   -1 when none. On w's own trace the GP is simply index(w) - 1. *)
let gp_position v ~trace ~w =
  let gp_index =
    if trace = (w : Event.t).trace then w.index - 1 else Vclock.get w.vc trace
  in
  (* first position with index > gp_index *)
  Vec.binary_search_first v (fun (e : History.entry) -> e.ev.index > gp_index) - 1

(* Smallest position p such that w -> hist[p].ev; length when none. Uses the
   monotone timestamp entry for w's trace. On w's own trace it is the first
   position with a larger index. *)
let ls_position v ~trace ~w =
  if trace = (w : Event.t).trace then
    Vec.binary_search_first v (fun (e : History.entry) -> e.ev.index > w.index)
  else
    Vec.binary_search_first v (fun (e : History.entry) ->
        Vclock.get e.ev.vc w.trace >= w.index)

let restrict v ~trace ~w (a : Compile.allowed) =
  if Vec.is_empty v then Interval.Set.empty
  else begin
    let len = Vec.length v in
    let p_gp = gp_position v ~trace ~w in
    let p_ls = ls_position v ~trace ~w in
    let pieces = ref [] in
    if a.before then pieces := Interval.make 0 p_gp :: !pieces;
    if a.after then pieces := Interval.make p_ls (len - 1) :: !pieces;
    if a.concurrent && trace <> w.trace then
      (* same-trace events are totally ordered, never concurrent *)
      pieces := Interval.make (p_gp + 1) (p_ls - 1) :: !pieces;
    (* strictness of the boundaries already excludes w itself on its own
       trace, and equality is impossible across traces *)
    Interval.Set.of_intervals !pieces
  end
