open Ocep_base
module Compile = Ocep_pattern.Compile
module Poet = Ocep_poet.Poet

type config = {
  pruning : bool;
  max_history_per_trace : int option;
  pin_searches : bool;
  node_budget : int option;
  report_cap : int;
  record_latency : bool;
  gc_every : int option;
}

let default_config =
  {
    pruning = true;
    max_history_per_trace = None;
    pin_searches = true;
    node_budget = None;
    report_cap = 100_000;
    record_latency = true;
    gc_every = None;
  }

(* A leaf's stored events can be garbage-collected once they are in the
   causal past of every trace iff (a) the leaf never serves as interposer
   evidence for a [~>] check and (b) its relation to every possible anchor
   (terminating) leaf excludes Before: any future anchor is causally after
   a fully-seen event, so such an event can never satisfy the constraint
   again. *)
let gc_able_leaves (net : Compile.t) =
  let k = Compile.size net in
  Array.init k (fun l ->
      (not (List.exists (fun (i, _) -> i = l) net.Compile.lim_checks))
      && List.for_all
           (fun a ->
             (not net.Compile.terminating.(a)) || a = l
             ||
             match net.Compile.cons.(l).(a) with
             | Some s -> not s.Compile.before
             | None -> false)
           (List.init k (fun i -> i)))

type t = {
  cfg : config;
  net : Compile.t;
  poet : Poet.t;
  n_traces : int;
  history : History.t;
  subset : Subset.t;
  stats : Matcher.stats;
  latencies : float Vec.t;
  frontier : Vclock.t array;  (* latest timestamp seen per trace *)
  gcable : bool array;
  matching_leaves : Event.t -> int list;  (* cached dispatch *)
  mutable matches_found : int;
  mutable events_processed : int;
  mutable terminating_arrivals : int;
  mutable aborted : int;
}

(* Dispatching an arriving event to the leaves it class-matches: most
   patterns pin the event type exactly, so index leaves by exact etype and
   keep the others (wildcard/variable type) in a fallback list. *)
let make_dispatch (net : Compile.t) =
  let by_type : (string, int list) Hashtbl.t = Hashtbl.create 16 in
  let generic = ref [] in
  Array.iter
    (fun (l : Compile.leaf) ->
      match l.cls.Ocep_pattern.Ast.typ with
      | Ocep_pattern.Ast.Exact ty ->
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_type ty) in
        Hashtbl.replace by_type ty (cur @ [ l.id ])
      | Ocep_pattern.Ast.Any | Ocep_pattern.Ast.Var _ -> generic := !generic @ [ l.id ])
    net.Compile.leaves;
  fun (ev : Event.t) ->
    let candidates =
      Option.value ~default:[] (Hashtbl.find_opt by_type ev.etype) @ !generic
    in
    List.filter (fun i -> Compile.leaf_matches net i ev) candidates

let create ?(config = default_config) ~net ~poet () =
  let n_traces = Poet.trace_count poet in
  let t =
    {
      cfg = config;
      net;
      poet;
      n_traces;
      history =
        History.create net ~n_traces ~pruning:config.pruning
          ?max_per_trace:config.max_history_per_trace ();
      subset = Subset.create ~k:(Compile.size net) ~n_traces ~report_cap:config.report_cap ();
      stats = Matcher.new_stats ();
      latencies = Vec.create ();
      frontier = Array.make n_traces (Vclock.make ~dim:n_traces);
      gcable = gc_able_leaves net;
      matching_leaves = make_dispatch net;
      matches_found = 0;
      events_processed = 0;
      terminating_arrivals = 0;
      aborted = 0;
    }
  in
  let trace_of_name = Poet.trace_of_name poet in
  let partner_of = Poet.find_partner poet in
  let run_search ?pin ~anchor_leaf ~anchor () =
    let outcome =
      Matcher.search ~net ~history:t.history ~n_traces ~trace_of_name ~partner_of ~anchor_leaf
        ~anchor ?pin
        ?node_budget:config.node_budget ~stats:t.stats ()
    in
    match outcome with
    | Matcher.Found m ->
      t.matches_found <- t.matches_found + 1;
      ignore (Subset.record t.subset ~seq:t.events_processed m)
    | Matcher.Not_found -> ()
    | Matcher.Aborted -> t.aborted <- t.aborted + 1
  in
  let maybe_gc () =
    match config.gc_every with
    | Some n when t.events_processed mod n = 0 && Array.exists (fun b -> b) t.gcable ->
      (* threshold per trace: the greatest index already covered by every
         trace's frontier *)
      let thresholds =
        Array.init n_traces (fun tr ->
            Array.fold_left (fun acc vc -> min acc (Vclock.get vc tr)) max_int t.frontier)
      in
      ignore (History.gc t.history ~thresholds ~leaves:t.gcable)
    | _ -> ()
  in
  let on_event (ev : Event.t) =
    t.events_processed <- t.events_processed + 1;
    t.frontier.(ev.trace) <- ev.vc;
    History.note_comm t.history ev;
    let leaves = t.matching_leaves ev in
    List.iter
      (fun i ->
        History.add t.history ~leaf:i ev;
        Subset.seen t.subset ~leaf:i ~trace:ev.trace)
      leaves;
    let terminating = List.filter (fun i -> t.net.Compile.terminating.(i)) leaves in
    if terminating <> [] then begin
      t.terminating_arrivals <- t.terminating_arrivals + 1;
      let t0 = if config.record_latency then Unix.gettimeofday () else 0. in
      List.iter
        (fun anchor_leaf ->
          run_search ~anchor_leaf ~anchor:ev ();
          if config.pin_searches then
            List.iter
              (fun (l, tr) ->
                (* a pin on the anchor leaf is either the anchor's own slot
                   (just searched) or contradictory *)
                if l <> anchor_leaf && not (Subset.is_covered t.subset ~leaf:l ~trace:tr) then
                  run_search ~pin:(l, tr) ~anchor_leaf ~anchor:ev ())
              (Subset.uncovered_seen_slots t.subset))
        terminating;
      if config.record_latency then
        Vec.push t.latencies ((Unix.gettimeofday () -. t0) *. 1e6)
    end;
    maybe_gc ()
  in
  Poet.subscribe poet on_event;
  t

let net t = t.net

let config t = t.cfg

let reports t = Subset.reports t.subset

let matches_found t = t.matches_found

let find_containing t (ev : Event.t) =
  let trace_of_name = Poet.trace_of_name t.poet in
  let partner_of = Poet.find_partner t.poet in
  let leaves = t.matching_leaves ev in
  let rec try_leaves = function
    | [] -> None
    | anchor_leaf :: rest -> (
      match
        Matcher.search ~net:t.net ~history:t.history ~n_traces:t.n_traces ~trace_of_name
          ~partner_of ~anchor_leaf ~anchor:ev ~stats:t.stats ()
      with
      | Matcher.Found m -> Some m
      | Matcher.Not_found | Matcher.Aborted -> try_leaves rest)
  in
  try_leaves leaves

let latencies_us t = Vec.to_array t.latencies

let events_processed t = t.events_processed

let terminating_arrivals t = t.terminating_arrivals

let history_entries t = History.total_entries t.history

let history_entries_for t ~leaf = History.entries_for t.history ~leaf

let history_dropped t = History.dropped t.history

let covered_slots t = Subset.covered_count t.subset

let seen_slots t = Subset.seen_count t.subset

let search_stats t = t.stats

let aborted_searches t = t.aborted
