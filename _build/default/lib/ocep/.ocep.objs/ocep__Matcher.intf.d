lib/ocep/matcher.mli: Event History Ocep_base Ocep_pattern
