lib/ocep/engine.mli: Event Matcher Ocep_base Ocep_pattern Ocep_poet Subset
