lib/ocep/domain.mli: Event History Interval Ocep_base Ocep_pattern Vec
