lib/ocep/subset.mli: Event Ocep_base
