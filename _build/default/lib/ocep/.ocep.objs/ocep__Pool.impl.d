lib/ocep/pool.ml: Array Condition List Mutex Option Queue Stdlib
