lib/ocep/domain.ml: Event History Interval Ocep_base Ocep_pattern Vclock Vec
