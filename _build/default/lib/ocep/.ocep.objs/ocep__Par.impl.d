lib/ocep/par.ml: Array Atomic Matcher Ocep_pattern Pool
