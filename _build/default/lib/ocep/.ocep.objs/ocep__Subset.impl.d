lib/ocep/subset.ml: Array Event List Ocep_base Vec
