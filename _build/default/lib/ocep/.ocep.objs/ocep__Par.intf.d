lib/ocep/par.mli: Event History Matcher Ocep_base Ocep_pattern Pool
