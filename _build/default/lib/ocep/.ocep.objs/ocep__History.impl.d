lib/ocep/history.ml: Array Event Hashtbl Ocep_base Ocep_pattern Vec
