lib/ocep/history.mli: Event Ocep_base Ocep_pattern Vec
