lib/ocep/pool.mli:
