lib/ocep/matcher.ml: Array Domain Event Format History Interval List Ocep_base Ocep_pattern Option Sys Vec
