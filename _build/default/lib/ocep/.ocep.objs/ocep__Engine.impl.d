lib/ocep/engine.ml: Array Event Hashtbl History List Matcher Ocep_base Ocep_pattern Ocep_poet Option Subset Unix Vclock Vec
