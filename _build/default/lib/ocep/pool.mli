(** A small fixed pool of worker domains for parallel search
    (Section VI's third future-work item: the traces traversed at a
    backtracking level are independent subtrees).

    Tasks must be safe to run concurrently with each other and with the
    submitting domain — the matcher's searches qualify because they only
    read the shared history and POET tables, which are never mutated while
    a search is in flight. *)

type t

val create : workers:int -> t
(** Spawns [workers] domains (at least 1). *)

val workers : t -> int

val run_all : t -> (unit -> 'a) array -> 'a array
(** Run every task (in any order, concurrently) and wait for all results,
    returned in task order. Exceptions escaping a task are re-raised in
    the caller. Not reentrant: one [run_all] at a time per pool. *)

val shutdown : t -> unit
(** Terminate and join the workers. The pool must not be used afterwards.
    Idempotent. Domains left running keep the whole program alive, so call
    this (or let the owner call it) before exit. *)
