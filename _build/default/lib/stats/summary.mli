(** Boxplot summaries in the style of the paper's Figs. 6–10: quartiles,
    1.5×IQR whiskers, and outlier counts. *)

type t = {
  n : int;
  min : float;
  q1 : float;
  median : float;
  q3 : float;
  max : float;
  mean : float;
  bottom_whisker : float;  (** smallest sample ≥ Q1 − 1.5·IQR *)
  top_whisker : float;  (** largest sample ≤ Q3 + 1.5·IQR *)
  outliers_above : int;
  outliers_below : int;
}

val of_samples : float array -> t
(** Raises [Invalid_argument] on an empty array. Quartiles use linear
    interpolation between order statistics. *)

val quantile : float array -> float -> float
(** [quantile sorted q] with [q] in \[0,1\]; the array must be sorted. *)

val pp : Format.formatter -> t -> unit

val pp_fig10_header : Format.formatter -> unit -> unit
val pp_fig10_row : Format.formatter -> string -> t -> unit
(** One row of the paper's Fig. 10 table:
    test case, Q1, Med, Q3, Top Whisker, Max (μs). *)
