(** Factory for the paper's four case-study workloads by name. *)

val names : string list
(** ["deadlock"; "races"; "atomicity"; "ordering"]. *)

val make : string -> traces:int -> seed:int -> max_events:int -> Ocep_workloads.Workload.t
(** Raises [Invalid_argument] on an unknown name. *)

val paper_trace_counts : string -> int list
(** The x-axis of the corresponding figure: 10/20/50 for the first three
    (Figs. 6–8), 50/100/500 for ordering (Fig. 9). *)

val paper_fig10_us : string -> float * float * float * float * float
(** The paper's Fig. 10 row (Q1, Med, Q3, top whisker, max) in
    microseconds — recorded here so the benchmark output can print the
    paper-vs-measured comparison. *)
