lib/harness/repro.mli: Format
