lib/harness/cases.ml: Ocep_workloads
