lib/harness/cases.mli: Ocep_workloads
