lib/harness/runner.mli: Format Ocep Ocep_sim Ocep_stats Ocep_workloads
