lib/harness/repro.ml: Array Cases Event Format Fun List Ocep Ocep_base Ocep_baselines Ocep_pattern Ocep_poet Ocep_sim Ocep_stats Ocep_workloads Printf Runner Stdlib String Sys Unix
