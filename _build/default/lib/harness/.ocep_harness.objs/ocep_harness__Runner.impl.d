lib/harness/runner.ml: Array Format Hashtbl List Ocep Ocep_baselines Ocep_pattern Ocep_poet Ocep_sim Ocep_stats Ocep_workloads Unix
