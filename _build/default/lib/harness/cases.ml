let names = [ "deadlock"; "races"; "atomicity"; "ordering" ]

let make name ~traces ~seed ~max_events =
  match name with
  | "deadlock" -> Ocep_workloads.Random_walk.make ~traces ~seed ~max_events ()
  | "races" -> Ocep_workloads.Msg_race.make ~traces ~seed ~max_events ()
  | "atomicity" -> Ocep_workloads.Atomicity.make ~traces ~seed ~max_events ()
  | "ordering" -> Ocep_workloads.Ordering.make ~traces ~seed ~max_events ()
  | other -> invalid_arg ("Cases.make: unknown case " ^ other)

let paper_trace_counts = function
  | "ordering" -> [ 50; 100; 500 ]
  | _ -> [ 10; 20; 50 ]

(* Fig. 10 of the paper (microseconds, Core 2 Duo 2 GHz). *)
let paper_fig10_us = function
  | "deadlock" -> (1712., 1805., 1888., 2153., 14931.)
  | "races" -> (49., 69., 76., 117., 10830.)
  | "atomicity" -> (42., 45., 51., 65., 6819.)
  | "ordering" -> (119., 121., 124., 132., 7668.)
  | other -> invalid_arg ("Cases.paper_fig10_us: unknown case " ^ other)
