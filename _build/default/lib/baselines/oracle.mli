(** Exhaustive reference matcher.

    Enumerates {e every} match of a pattern over a complete (small)
    execution by brute force, with none of OCEP's machinery. The property
    tests compare the online engine against it: every reported match must
    be in the oracle set (soundness) and the representative subset must
    cover every slot the oracle's match set covers (the paper's
    representativeness guarantee). Exponential in the pattern length —
    test-sized inputs only. *)

open Ocep_base
module Compile = Ocep_pattern.Compile

val all_matches : net:Compile.t -> events:Event.t list -> Event.t array list
(** All assignments of events to leaves satisfying every constraint
    (pairwise relations, partner links, attribute variables, existential
    compound precedence, limited happens-before). *)

val true_slots : Event.t array list -> (int * int) list
(** Sorted, deduplicated (leaf, trace) slots instantiated by at least one
    match: what a representative subset must cover. *)

val is_match : net:Compile.t -> events:Event.t list -> Event.t array -> bool
(** Independent verification that an assignment satisfies the pattern
    ([events] supplies the class population for the [~>] check). *)

val consistent_exposed :
  net:Compile.t -> Event.t option array -> int -> Event.t -> bool
(** Incremental consistency of one candidate against a partial assignment
    (class match, relations, partners, variables); shared with the
    chronological baseline. *)
