(** Global-predicate detection over the lattice of consistent cuts
    (Cooper–Marzullo [12]) — the approach whose cost motivates OCEP.

    The paper's introduction contrasts event-pattern matching with
    detecting a predicate on the global state, which requires exploring an
    n-dimensional lattice of consistent cuts and is NP-complete in general
    [29]. This implementation detects [possibly(φ)] for threshold
    predicates over per-trace boolean conditions (e.g. "at least two
    processes are inside the critical section"): it walks the lattice
    breadth-first from the initial cut, pruning inconsistent cuts with
    vector timestamps and memoizing visited cuts.

    It is exact and linearization-independent, like OCEP — but the number
    of consistent cuts grows with the product of trace lengths, which is
    what the benchmark comparison (bench section "lattice") makes
    visible. *)

open Ocep_base

type outcome =
  | Found of int array  (** a consistent cut satisfying the predicate *)
  | Not_possible  (** the whole lattice was explored *)
  | Budget_exhausted

type result = { outcome : outcome; cuts_explored : int }

val possibly :
  events_by_trace:Event.t array array ->
  flag:(Event.t -> [ `Set | `Clear | `Keep ]) ->
  threshold:int ->
  ?node_budget:int ->
  unit ->
  result
(** [possibly ~events_by_trace ~flag ~threshold ()] asks whether some
    consistent cut has at least [threshold] traces whose condition is set:
    a trace's condition after consuming a prefix is folded with [flag]
    over the prefix ([`Set] turns it on, [`Clear] off, [`Keep] leaves it).
    [node_budget] (default 1_000_000) bounds the cuts explored. *)

val cs_flag : ?enter:string -> ?exit_:string -> Event.t -> [ `Set | `Clear | `Keep ]
(** The critical-section condition: [`Set] on [enter] (default
    ["CS_Enter"]), [`Clear] on [exit_] (default ["CS_Exit"]). *)
