open Ocep_base

type mode = [ `Incremental | `Full_history ]

type t = {
  mode : mode;
  blocked_etype : string;
  trace_of_name : string -> int option;
  current : int option array;  (* incremental: one outgoing edge per trace *)
  all_edges : (int * int) Vec.t;  (* full-history mode *)
  mutable found : int list list;
}

let create ~n_traces ~trace_of_name ?(blocked_etype = "Blocked_Send") mode =
  {
    mode;
    blocked_etype;
    trace_of_name;
    current = Array.make n_traces None;
    all_edges = Vec.create ();
    found = [];
  }

let follow_chain t start =
  let rec loop node seen =
    if List.mem node seen then Some (List.rev seen)
    else
      match t.current.(node) with
      | None -> None
      | Some next -> loop next (node :: seen)
  in
  loop start []

(* DFS over the accumulated multigraph looking for a cycle through [start]. *)
let dfs_cycle t start =
  let succs node =
    Vec.fold_left (fun acc (a, b) -> if a = node then b :: acc else acc) [] t.all_edges
  in
  let rec explore node path =
    if node = start && path <> [] then Some (List.rev path)
    else if List.mem node path then None
    else
      List.fold_left
        (fun acc next -> match acc with Some _ -> acc | None -> explore next (node :: path))
        None (succs node)
  in
  explore start []

let on_event t (ev : Event.t) =
  if ev.etype = t.blocked_etype then begin
    match t.trace_of_name ev.text with
    | None -> None
    | Some dst -> (
      match t.mode with
      | `Incremental -> (
        t.current.(ev.trace) <- Some dst;
        match follow_chain t ev.trace with
        | Some cycle ->
          t.found <- cycle :: t.found;
          Some cycle
        | None -> None)
      | `Full_history -> (
        Vec.push t.all_edges (ev.trace, dst);
        match dfs_cycle t ev.trace with
        | Some cycle ->
          t.found <- cycle :: t.found;
          Some cycle
        | None -> None))
  end
  else begin
    (match ev.kind with
    | Event.Send _ when t.mode = `Incremental -> t.current.(ev.trace) <- None
    | _ -> ());
    None
  end

let detections t = List.rev t.found

let edges t =
  match t.mode with
  | `Incremental ->
    Array.fold_left (fun acc e -> match e with Some _ -> acc + 1 | None -> acc) 0 t.current
  | `Full_history -> Vec.length t.all_edges
