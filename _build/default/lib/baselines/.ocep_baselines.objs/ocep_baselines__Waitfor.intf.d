lib/baselines/waitfor.mli: Event Ocep_base
