lib/baselines/waitfor.ml: Array Event List Ocep_base Vec
