lib/baselines/chrono.ml: Array Event List Ocep Ocep_base Ocep_pattern Option Oracle Vec
