lib/baselines/window.mli: Event Ocep_base Ocep_pattern
