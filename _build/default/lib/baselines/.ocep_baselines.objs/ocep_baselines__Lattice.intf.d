lib/baselines/lattice.mli: Event Ocep_base
