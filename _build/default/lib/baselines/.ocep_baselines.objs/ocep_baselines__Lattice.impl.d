lib/baselines/lattice.ml: Array Event Hashtbl Ocep_base Queue Vclock
