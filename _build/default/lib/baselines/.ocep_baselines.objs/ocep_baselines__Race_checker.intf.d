lib/baselines/race_checker.mli: Event Ocep_base
