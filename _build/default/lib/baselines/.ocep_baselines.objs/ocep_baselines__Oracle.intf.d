lib/baselines/oracle.mli: Event Ocep_base Ocep_pattern
