lib/baselines/window.ml: Array Event List Ocep_base Ocep_pattern Option Oracle Queue
