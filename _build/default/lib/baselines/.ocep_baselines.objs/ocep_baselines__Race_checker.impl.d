lib/baselines/race_checker.ml: Array Event List Ocep_base
