lib/baselines/conflict_graph.ml: Array Event List Ocep_base
