lib/baselines/oracle.ml: Array Event Hashtbl List Ocep_base Ocep_pattern Option
