lib/baselines/conflict_graph.mli: Event Ocep_base
