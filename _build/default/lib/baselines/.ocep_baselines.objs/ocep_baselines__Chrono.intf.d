lib/baselines/chrono.mli: Event Ocep Ocep_base Ocep_pattern
