(** Chronological-backtracking matcher (the pruning ablation).

    The strawman the paper mentions in Section IV-C: instead of using the
    causality of instantiated events to restrict domains (Fig. 4) and
    timestamps to direct backjumps (Fig. 5), it tries every stored event of
    each leaf newest-first, tests constraints candidate by candidate, and
    always backtracks to the previous level. Behaviourally equivalent to
    {!Ocep.Matcher.search} (same histories, same constraints); only the
    search strategy differs. *)

open Ocep_base
module Compile = Ocep_pattern.Compile

type outcome = Found of Event.t array | Not_found | Aborted

val search :
  net:Compile.t ->
  history:Ocep.History.t ->
  n_traces:int ->
  anchor_leaf:int ->
  anchor:Event.t ->
  ?node_budget:int ->
  unit ->
  outcome * int
(** Returns the outcome and the number of candidates examined. *)
