open Ocep_base

type t = {
  enter_etype : string;
  exit_etype : string;
  inside : bool array;
  mutable found : (int * int) list;  (* newest first *)
}

let create ?(enter_etype = "CS_Enter") ?(exit_etype = "CS_Exit") ~n_traces () =
  { enter_etype; exit_etype; inside = Array.make n_traces false; found = [] }

let on_event t (ev : Event.t) =
  if ev.etype = t.enter_etype then begin
    let conflicts = ref [] in
    Array.iteri (fun tr in_cs -> if in_cs && tr <> ev.trace then conflicts := (ev.trace, tr) :: !conflicts) t.inside;
    t.inside.(ev.trace) <- true;
    t.found <- !conflicts @ t.found;
    List.rev !conflicts
  end
  else begin
    if ev.etype = t.exit_etype then t.inside.(ev.trace) <- false;
    []
  end

let violations t = List.rev t.found
