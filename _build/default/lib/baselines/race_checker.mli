(** Vector-timestamp message-race checker (Netzer–Miller / MPIRace-Check
    style, Section V-C2).

    Two messages received by the same trace race when their send events are
    concurrent. The checker keeps, per receiving trace, a window of recent
    receive events together with their matching sends, and compares the new
    send against them with the O(1) vector-clock test. Used to
    cross-validate the ground truth of the message-race workload. *)

open Ocep_base

type t

val create : ?window:int -> n_traces:int -> partner_of:(Event.t -> Event.t option) -> unit -> t
(** [window] (default 64) bounds remembered receives per trace. *)

val on_event : t -> Event.t -> (Event.t * Event.t) list
(** Feed the next event; when it is a receive, returns the racing send
    pairs (new send, earlier send). *)

val races : t -> (Event.t * Event.t) list
(** All races found, oldest first. *)
