open Ocep_base
module Compile = Ocep_pattern.Compile

type t = {
  net : Compile.t;
  window : int;
  buf : Event.t Queue.t;
  mutable found : Event.t array list;  (* newest first *)
}

let create ~net ~window () =
  if window <= 0 then invalid_arg "Window.create: window must be positive";
  { net; window; buf = Queue.create (); found = [] }

(* All matches within the window that instantiate some terminating leaf
   with [ev]: plain generate-and-test over the window contents. *)
let matches_with t (ev : Event.t) =
  let events = List.of_seq (Queue.to_seq t.buf) in
  let k = Compile.size t.net in
  let results = ref [] in
  let anchor_leaves =
    List.filter
      (fun i -> t.net.Compile.terminating.(i) && Compile.leaf_matches t.net i ev)
      (List.init k (fun i -> i))
  in
  List.iter
    (fun anchor ->
      let assigned = Array.make k None in
      assigned.(anchor) <- Some ev;
      let rec go i =
        if i = k then begin
          let m = Array.map (fun e -> Option.get e) assigned in
          if Oracle.is_match ~net:t.net ~events m then results := m :: !results
        end
        else if i = anchor then go (i + 1)
        else
          List.iter
            (fun x ->
              (* reuse the oracle's incremental consistency via is_match at
                 the end; prune here only on class match to stay simple *)
              if Compile.leaf_matches t.net i x then begin
                assigned.(i) <- Some x;
                go (i + 1);
                assigned.(i) <- None
              end)
            events
      in
      go 0)
    anchor_leaves;
  !results

let on_event t ev =
  Queue.push ev t.buf;
  while Queue.length t.buf > t.window do
    ignore (Queue.pop t.buf)
  done;
  let ms = matches_with t ev in
  t.found <- ms @ t.found;
  ms

let matches t = List.rev t.found

let covered_slots t = Oracle.true_slots (matches t)
