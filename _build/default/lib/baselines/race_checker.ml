open Ocep_base

type t = {
  window : int;
  partner_of : Event.t -> Event.t option;
  recent_sends : Event.t list array;  (* per receiving trace, newest first *)
  mutable found : (Event.t * Event.t) list;  (* newest first *)
}

let create ?(window = 64) ~n_traces ~partner_of () =
  { window; partner_of; recent_sends = Array.make n_traces []; found = [] }

let truncate n l =
  let rec loop i = function
    | [] -> []
    | _ when i >= n -> []
    | x :: rest -> x :: loop (i + 1) rest
  in
  loop 0 l

let on_event t (ev : Event.t) =
  match ev.kind with
  | Event.Receive _ -> (
    match t.partner_of ev with
    | None -> []
    | Some send ->
      let races =
        List.filter (fun prev -> Event.concurrent send prev) t.recent_sends.(ev.trace)
      in
      let pairs = List.map (fun prev -> (send, prev)) races in
      t.recent_sends.(ev.trace) <- truncate t.window (send :: t.recent_sends.(ev.trace));
      t.found <- List.rev_append pairs t.found;
      pairs)
  | Event.Send _ | Event.Internal -> []

let races t = List.rev t.found
