open Ocep_base

type outcome = Found of int array | Not_possible | Budget_exhausted

type result = { outcome : outcome; cuts_explored : int }

let cs_flag ?(enter = "CS_Enter") ?(exit_ = "CS_Exit") (ev : Event.t) =
  if ev.etype = enter then `Set else if ev.etype = exit_ then `Clear else `Keep

let possibly ~events_by_trace ~flag ~threshold ?(node_budget = 1_000_000) () =
  let n = Array.length events_by_trace in
  let lens = Array.map Array.length events_by_trace in
  (* condition.(t).(i): the trace-t condition after consuming i events *)
  let condition =
    Array.map
      (fun evs ->
        let a = Array.make (Array.length evs + 1) false in
        Array.iteri
          (fun i ev ->
            a.(i + 1) <- (match flag ev with `Set -> true | `Clear -> false | `Keep -> a.(i)))
          evs;
        a)
      events_by_trace
  in
  let satisfied cut =
    let count = ref 0 in
    Array.iteri (fun t c -> if condition.(t).(c) then incr count) cut;
    !count >= threshold
  in
  (* advancing trace [t] beyond cut [c] is allowed iff every causal
     predecessor of the next event is inside the cut already *)
  let can_advance cut t =
    cut.(t) < lens.(t)
    &&
    let ev : Event.t = events_by_trace.(t).(cut.(t)) in
    let ok = ref true in
    for u = 0 to n - 1 do
      if u <> t && Vclock.get ev.vc u > cut.(u) then ok := false
    done;
    !ok
  in
  let visited = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let start = Array.make n 0 in
  Hashtbl.replace visited (Array.to_list start) ();
  Queue.push start queue;
  let explored = ref 0 in
  let result = ref None in
  while !result = None && not (Queue.is_empty queue) do
    let cut = Queue.pop queue in
    incr explored;
    if satisfied cut then result := Some (Found cut)
    else if !explored >= node_budget then result := Some Budget_exhausted
    else
      for t = 0 to n - 1 do
        if can_advance cut t then begin
          let next = Array.copy cut in
          next.(t) <- next.(t) + 1;
          let key = Array.to_list next in
          if not (Hashtbl.mem visited key) then begin
            Hashtbl.replace visited key ();
            Queue.push next queue
          end
        end
      done
  done;
  let outcome = match !result with Some r -> r | None -> Not_possible in
  { outcome; cuts_explored = !explored }
