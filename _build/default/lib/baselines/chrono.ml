open Ocep_base
module Compile = Ocep_pattern.Compile
module History = Ocep.History

type outcome = Found of Event.t array | Not_found | Aborted

exception Budget

let search ~net ~history ~n_traces ~anchor_leaf ~anchor ?(node_budget = max_int) () =
  if not (Compile.leaf_matches net anchor_leaf anchor) then
    invalid_arg "Chrono.search: anchor does not match the anchor leaf";
  let k = Compile.size net in
  let assigned = Array.make k None in
  assigned.(anchor_leaf) <- Some anchor;
  let nodes = ref 0 in
  (* all events of a leaf, newest-first across traces, materialized lazily *)
  let candidates leaf =
    let acc = ref [] in
    for t = 0 to n_traces - 1 do
      let v = History.on history ~leaf ~trace:t in
      Vec.iter (fun (e : History.entry) -> acc := e.ev :: !acc) v
    done;
    (* newest-first by (vc sum is wrong); use reverse insertion order per
       trace then interleave by index descending as a simple heuristic *)
    List.sort (fun (a : Event.t) (b : Event.t) -> compare b.index a.index) !acc
  in
  let order = List.filter (fun i -> i <> anchor_leaf) (List.init k (fun i -> i)) in
  let events_for_final =
    (* population for the ~> check: every stored event of the lim leaves *)
    List.concat_map
      (fun (i, _) ->
        let acc = ref [] in
        for t = 0 to n_traces - 1 do
          Vec.iter (fun (e : History.entry) -> acc := e.ev :: !acc) (History.on history ~leaf:i ~trace:t)
        done;
        !acc)
      net.Compile.lim_checks
  in
  let result = ref Not_found in
  let rec go = function
    | [] ->
      let m = Array.map (fun e -> Option.get e) assigned in
      if Oracle.is_match ~net ~events:events_for_final m then begin
        result := Found m;
        raise Exit
      end
    | leaf :: rest ->
      List.iter
        (fun x ->
          incr nodes;
          if !nodes > node_budget then raise Budget;
          if Oracle.consistent_exposed ~net assigned leaf x then begin
            assigned.(leaf) <- Some x;
            go rest;
            assigned.(leaf) <- None
          end)
        (candidates leaf)
  in
  (try go order with
  | Exit -> ()
  | Budget -> result := Aborted);
  (!result, !nodes)
