(** Dependency-graph deadlock detector (the approach of Agarwal–Wang–
    Stoller [2] the paper compares against in Section V-C1).

    Builds a wait-for graph from blocked-send events and searches for
    cycles. Two modes:
    - [`Incremental]: one outgoing wait edge per process, cleared when the
      blocked send completes; cycle check follows the single chain — the
      efficient formulation;
    - [`Full_history]: every wait edge ever observed is kept and each
      blocked event triggers a DFS over the whole accumulated graph — the
      replay-style formulation whose cost grows with the execution, which
      is the shape of the published numbers the paper cites (35 s for a
      cycle of length 30). *)

open Ocep_base

type mode = [ `Incremental | `Full_history ]

type t

val create :
  n_traces:int ->
  trace_of_name:(string -> int option) ->
  ?blocked_etype:string ->
  mode ->
  t
(** [blocked_etype] defaults to ["Blocked_Send"]. *)

val on_event : t -> Event.t -> int list option
(** Feed the next event; [Some cycle] when this event closed a wait cycle
    (the cycle as a trace list, starting at the event's trace). *)

val detections : t -> int list list
(** All detected cycles, oldest first. *)

val edges : t -> int
(** Current number of stored wait edges. *)
