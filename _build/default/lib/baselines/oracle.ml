open Ocep_base
module Compile = Ocep_pattern.Compile
module Ast = Ocep_pattern.Ast

let field_value (ev : Event.t) = function
  | Compile.Fproc -> ev.trace_name
  | Compile.Ftyp -> ev.etype
  | Compile.Ftext -> ev.text

(* Constraint checks against an explicit (possibly partial) assignment. *)
let consistent ~net assigned i (x : Event.t) =
  let ok = ref (Compile.leaf_matches net i x) in
  Array.iteri
    (fun j e_opt ->
      if !ok then
        match (e_opt, net.Compile.cons.(i).(j)) with
        | Some e, Some a ->
          if not (Compile.allowed_of_relation (Event.relation x e) a) then ok := false
        | _ -> ())
    assigned;
  if !ok then
    List.iter
      (fun (pi, pj) ->
        if !ok then
          let check a b =
            match (a, b) with
            | Some x', Some e -> (
              ignore x';
              match (Event.msg_of x, Event.msg_of e) with
              | Some m1, Some m2 -> if m1 <> m2 || Event.equal x e then ok := false
              | _ -> ok := false)
            | _ -> ()
          in
          if pi = i then check (Some x) assigned.(pj)
          else if pj = i then check (Some x) assigned.(pi))
      net.Compile.partners;
  if !ok then
    List.iter
      (fun (_v, positions) ->
        if !ok then begin
          let mine = List.filter (fun (j, _) -> j = i) positions in
          List.iter
            (fun (_, f) ->
              let xv = field_value x f in
              List.iter
                (fun (j, f2) ->
                  if !ok && j <> i then
                    match assigned.(j) with
                    | Some e -> if field_value e f2 <> xv then ok := false
                    | None -> ())
                positions;
              (* self-consistency across this leaf's own positions *)
              List.iter (fun (_, f') -> if !ok && field_value x f' <> xv then ok := false) mine)
            mine
        end)
      net.Compile.var_fields;
  !ok

let final_checks ~net ~events (m : Event.t array) =
  List.for_all
    (fun (lx, ly) -> List.exists (fun i -> List.exists (fun j -> Event.hb m.(i) m.(j)) ly) lx)
    net.Compile.exists_before
  && List.for_all
       (fun (i, j) ->
         not
           (List.exists
              (fun (x : Event.t) ->
                Compile.leaf_matches net i x && Event.hb m.(i) x && Event.hb x m.(j))
              events))
       net.Compile.lim_checks

let all_matches ~net ~events =
  let k = Compile.size net in
  let assigned = Array.make k None in
  let results = ref [] in
  let candidates = Array.init k (fun i -> List.filter (Compile.leaf_matches net i) events) in
  let rec go i =
    if i = k then begin
      let m = Array.map (fun e -> Option.get e) assigned in
      if final_checks ~net ~events m then results := m :: !results
    end
    else
      List.iter
        (fun x ->
          if consistent ~net assigned i x then begin
            assigned.(i) <- Some x;
            go (i + 1);
            assigned.(i) <- None
          end)
        candidates.(i)
  in
  go 0;
  List.rev !results

let true_slots matches =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun m -> Array.iteri (fun leaf (ev : Event.t) -> Hashtbl.replace tbl (leaf, ev.trace) ()) m)
    matches;
  List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) tbl [])

let is_match ~net ~events m =
  let k = Compile.size net in
  if Array.length m <> k then false
  else begin
    let assigned = Array.make k None in
    let ok = ref true in
    (try
       for i = 0 to k - 1 do
         if consistent ~net assigned i m.(i) then
           assigned.(i) <- Some m.(i)
         else begin
           ok := false;
           raise Exit
         end
       done
     with Exit -> ());
    !ok && final_checks ~net ~events m
  end

let consistent_exposed ~net assigned i x = consistent ~net assigned i x
