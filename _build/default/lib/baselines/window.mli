(** Sliding-window matcher baseline (Section II / Fig. 3).

    Keeps only the last [window] events and reports the matches that fall
    entirely inside the window — the approach OCEP's representative subset
    is contrasted with: it is bounded-storage too, but suffers the omission
    problem (a match spanning more than one window is silently lost). The
    paper's example uses a window of n² events. *)

open Ocep_base
module Compile = Ocep_pattern.Compile

type t

val create : net:Compile.t -> window:int -> unit -> t

val on_event : t -> Event.t -> Event.t array list
(** Feed the next event; returns the matches completed by this event within
    the window (brute-force join over window contents). *)

val matches : t -> Event.t array list
(** All matches reported so far, oldest first. *)

val covered_slots : t -> (int * int) list
(** Sorted (leaf, trace) slots covered by the reported matches — compare
    with {!Oracle.true_slots} to exhibit the omission problem. *)
