(** Interval-overlap atomicity-violation detector (the conflict-graph
    approach of Wang–Stoller [40] the paper compares against in Section
    V-C3, specialized to a single protected resource).

    Tracks which traces are inside the critical section from enter/exit
    events in the observed linearization. Two sections that are open at the
    same observed time conflict; with a correctly used semaphore the grant
    chain serializes them, so any overlap is a mutual-exclusion violation.
    Note this detector uses observed time, not causality: unlike OCEP it
    can only flag overlaps that manifest in this particular linearization
    (the paper's criticism of temporal-causality tools such as D3S). *)

open Ocep_base

type t

val create : ?enter_etype:string -> ?exit_etype:string -> n_traces:int -> unit -> t
(** Defaults: ["CS_Enter"] / ["CS_Exit"]. *)

val on_event : t -> Event.t -> (int * int) list
(** Feed the next event; returns the conflicting (this trace, other trace)
    pairs when the event is an enter that overlaps open sections. *)

val violations : t -> (int * int) list
(** All conflicting pairs observed so far, oldest first. *)
