type t = { lo : int; hi : int }

let make lo hi = { lo; hi }

let empty = { lo = 1; hi = 0 }

let full ~max = { lo = 0; hi = max }

let is_empty i = i.lo > i.hi

let mem x i = x >= i.lo && x <= i.hi

let inter a b = { lo = max a.lo b.lo; hi = min a.hi b.hi }

let length i = if is_empty i then 0 else i.hi - i.lo + 1

let pp ppf i =
  if is_empty i then Format.fprintf ppf "[]"
  else Format.fprintf ppf "[%d,%d]" i.lo i.hi

let iv_is_empty = is_empty
let iv_inter = inter
let iv_mem = mem
let iv_full = full
let iv_pp = pp

module Set = struct
  type iv = t
  type nonrec t = iv list (* disjoint, increasing, non-empty intervals *)

  let empty = []

  let of_interval i = if iv_is_empty i then [] else [ i ]

  let normalize l =
    let l = List.filter (fun i -> not (iv_is_empty i)) l in
    let l = List.sort (fun a b -> compare a.lo b.lo) l in
    let rec merge = function
      | a :: b :: rest ->
        if b.lo <= a.hi + 1 then merge ({ lo = a.lo; hi = max a.hi b.hi } :: rest)
        else a :: merge (b :: rest)
      | l -> l
    in
    merge l

  let of_intervals l = normalize l

  let full ~max = of_interval (iv_full ~max)

  let is_empty s = s = []

  let mem x s = List.exists (iv_mem x) s

  let inter a b =
    let rec loop a b acc =
      match (a, b) with
      | [], _ | _, [] -> List.rev acc
      | ia :: ra, ib :: rb ->
        let i = iv_inter ia ib in
        let acc = if iv_is_empty i then acc else i :: acc in
        if ia.hi < ib.hi then loop ra b acc else loop a rb acc
    in
    loop a b []

  let union a b = normalize (a @ b)

  let cardinal s = List.fold_left (fun acc i -> acc + length i) 0 s

  let max_elt s =
    match List.rev s with
    | [] -> None
    | i :: _ -> Some i.hi

  let min_elt s =
    match s with
    | [] -> None
    | i :: _ -> Some i.lo

  let next_below s x =
    let rec loop best = function
      | [] -> best
      | i :: rest ->
        if i.lo > x then best
        else if i.hi <= x then loop (Some i.hi) rest
        else Some x
    in
    loop None s

  let to_list s = s

  let elements s =
    List.concat_map
      (fun i -> List.init (length i) (fun k -> i.lo + k))
      s

  let pp ppf s =
    Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";") iv_pp) s
end
