(** Growable array (OCaml 5.1 predates [Dynarray]). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

val last : 'a t -> 'a option
val replace_last : 'a t -> 'a -> unit
(** Overwrite the last element; raises [Invalid_argument] if empty. *)

val pop : 'a t -> 'a option
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : 'a list -> 'a t
val exists : ('a -> bool) -> 'a t -> bool

val binary_search_first : 'a t -> ('a -> bool) -> int
(** [binary_search_first v p] returns the smallest index [i] such that
    [p (get v i)] holds, or [length v] if none, assuming [p] is monotone
    (false then true) along the vector. *)
