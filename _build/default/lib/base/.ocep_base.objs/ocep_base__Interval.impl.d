lib/base/interval.ml: Format List
