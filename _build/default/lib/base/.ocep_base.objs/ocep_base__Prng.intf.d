lib/base/prng.mli:
