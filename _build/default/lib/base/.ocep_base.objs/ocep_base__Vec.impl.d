lib/base/vec.ml: Array List
