lib/base/vec.mli:
