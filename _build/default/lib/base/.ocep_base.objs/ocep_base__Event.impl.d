lib/base/event.ml: Format Vclock
