lib/base/vclock.ml: Array Format Stdlib
