lib/base/interval.mli: Format
