lib/base/vclock.mli: Format
