lib/base/event.mli: Format Vclock
