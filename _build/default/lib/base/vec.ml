type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length v = v.len

let is_empty v = v.len = 0

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get: index out of bounds";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set: index out of bounds";
  v.data.(i) <- x

let grow v x =
  let cap = Array.length v.data in
  let new_cap = if cap = 0 then 8 else cap * 2 in
  let data = Array.make new_cap x in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let last v = if v.len = 0 then None else Some v.data.(v.len - 1)

let replace_last v x =
  if v.len = 0 then invalid_arg "Vec.replace_last: empty";
  v.data.(v.len - 1) <- x

let pop v =
  if v.len = 0 then None
  else begin
    v.len <- v.len - 1;
    Some v.data.(v.len)
  end

let clear v =
  v.data <- [||];
  v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let to_array v = Array.sub v.data 0 v.len

let of_list l =
  let v = create () in
  List.iter (push v) l;
  v

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let binary_search_first v p =
  (* invariant: p is false on [0, lo) and true on [hi, len) *)
  let rec loop lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if p v.data.(mid) then loop lo mid else loop (mid + 1) hi
  in
  loop 0 v.len
