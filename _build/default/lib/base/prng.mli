(** Deterministic pseudo-random number generator (SplitMix64).

    Every source of randomness in the simulator and the workload generators
    goes through an explicit [Prng.t] so that a run is a pure function of its
    seed, which the test suite and the benchmark harness rely on for
    reproducibility. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from a seed. Two generators created
    from the same seed produce identical streams. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and advances
    [t]. Used to give each simulated process its own stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in \[0, n); requires [n > 0]. *)

val float : t -> float
(** Uniform in \[0, 1). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
