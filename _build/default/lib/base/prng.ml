type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finalizer (Steele et al., "Fast splittable pseudorandom number
   generators"). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = s }

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* keep 62 bits so the value fits a non-negative OCaml int *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v *. 0x1p-53

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t < p

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
