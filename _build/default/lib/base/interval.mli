(** Integer intervals and small interval sets.

    The matcher represents the domain of a pattern event on a trace as a set
    of positions inside a (sorted) event history. Restricting a domain with
    respect to an already instantiated event (Fig. 4 of the paper) always
    yields at most two maximal intervals, so domains are kept as short sorted
    lists of disjoint intervals. *)

type t = { lo : int; hi : int }
(** Inclusive bounds; empty when [lo > hi]. *)

val make : int -> int -> t
val empty : t
val full : max:int -> t
(** [full ~max] is \[0, max\]. *)

val is_empty : t -> bool
val mem : int -> t -> bool
val inter : t -> t -> t
val length : t -> int

(** Sets of disjoint intervals in increasing order. *)
module Set : sig
  type iv = t
  type t

  val empty : t
  val of_interval : iv -> t
  val of_intervals : iv list -> t
  (** Normalizes: drops empties, sorts, merges overlaps. *)

  val full : max:int -> t
  val is_empty : t -> bool
  val mem : int -> t -> bool
  val inter : t -> t -> t
  val union : t -> t -> t
  val cardinal : t -> int
  val max_elt : t -> int option
  val min_elt : t -> int option

  val next_below : t -> int -> int option
  (** [next_below s x] is the largest element of [s] that is [<= x]. *)

  val to_list : t -> iv list
  val elements : t -> int list
  val pp : Format.formatter -> t -> unit
end

val pp : Format.formatter -> t -> unit
