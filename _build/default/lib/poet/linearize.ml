open Ocep_base

let is_linearization raws =
  let sent = Hashtbl.create 64 in
  List.for_all
    (fun (r : Event.raw) ->
      match r.r_kind with
      | Event.Send { msg } ->
        Hashtbl.replace sent msg ();
        true
      | Event.Receive { msg } -> Hashtbl.mem sent msg
      | Event.Internal -> true)
    raws

let shuffle ~seed raws =
  let prng = Prng.create seed in
  let max_trace =
    List.fold_left (fun acc (r : Event.raw) -> max acc r.r_trace) (-1) raws
  in
  let queues = Array.make (max_trace + 1) [] in
  List.iter (fun (r : Event.raw) -> queues.(r.r_trace) <- r :: queues.(r.r_trace)) raws;
  Array.iteri (fun i q -> queues.(i) <- List.rev q) queues;
  let sent = Hashtbl.create 64 in
  let enabled (r : Event.raw) =
    match r.r_kind with
    | Event.Receive { msg } -> Hashtbl.mem sent msg
    | Event.Send _ | Event.Internal -> true
  in
  let total = List.length raws in
  let out = ref [] in
  for _ = 1 to total do
    let candidates =
      Array.to_list queues
      |> List.mapi (fun i q -> (i, q))
      |> List.filter_map (fun (i, q) ->
             match q with r :: _ when enabled r -> Some i | _ -> None)
    in
    match candidates with
    | [] -> failwith "Linearize.shuffle: input is not a valid partial-order execution"
    | _ ->
      let tr = List.nth candidates (Prng.int prng (List.length candidates)) in
      (match queues.(tr) with
      | r :: rest ->
        queues.(tr) <- rest;
        (match r.r_kind with Event.Send { msg } -> Hashtbl.replace sent msg () | _ -> ());
        out := r :: !out
      | [] -> assert false)
  done;
  List.rev !out
