open Ocep_base

let render ?(max_events = 60) ?(highlight = []) ~trace_names events =
  let events =
    let total = List.length events in
    if total <= max_events then events
    else List.filteri (fun i _ -> i >= total - max_events) events
  in
  let n = Array.length trace_names in
  let cols = List.length events in
  let is_highlighted e = List.exists (Event.equal e) highlight in
  (* label messages whose both endpoints are visible *)
  let labels = Hashtbl.create 16 in
  let next_label = ref 0 in
  let label_chars = "123456789abcdefghijklmnopqrstuvwxyz" in
  let seen_sends = Hashtbl.create 16 in
  List.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Send { msg } -> Hashtbl.replace seen_sends msg ()
      | Event.Receive { msg } ->
        if Hashtbl.mem seen_sends msg && not (Hashtbl.mem labels msg) then begin
          let c = label_chars.[!next_label mod String.length label_chars] in
          incr next_label;
          Hashtbl.replace labels msg c
        end
      | Event.Internal -> ())
    events;
  let grid = Array.make_matrix n cols ' ' in
  List.iteri
    (fun col (e : Event.t) ->
      let ch =
        if is_highlighted e then '#'
        else
          match e.kind with
          | Event.Internal -> '.'
          | Event.Send { msg } | Event.Receive { msg } -> (
            match Hashtbl.find_opt labels msg with Some c -> c | None -> '+')
      in
      if e.trace < n then grid.(e.trace).(col) <- ch)
    events;
  let buf = Buffer.create 1024 in
  let name_width =
    Array.fold_left (fun acc s -> max acc (String.length s)) 0 trace_names
  in
  Array.iteri
    (fun t name ->
      Buffer.add_string buf (Printf.sprintf "%-*s |" name_width name);
      Array.iter (Buffer.add_char buf) grid.(t);
      Buffer.add_char buf '\n')
    trace_names;
  if Hashtbl.length labels > 0 then begin
    Buffer.add_string buf "messages: ";
    let pairs =
      Hashtbl.fold (fun msg c acc -> (c, msg) :: acc) labels []
      |> List.sort compare
    in
    List.iteri
      (fun i (c, msg) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (Printf.sprintf "%c=msg#%d" c msg))
      pairs;
    Buffer.add_char buf '\n'
  end;
  if highlight <> [] then begin
    Buffer.add_string buf "highlighted:\n";
    List.iter
      (fun (e : Event.t) ->
        Buffer.add_string buf (Format.asprintf "  # %a\n" Event.pp e))
      highlight
  end;
  Buffer.contents buf
