lib/poet/diagram.mli: Event Ocep_base
