lib/poet/poet.ml: Array Event Hashtbl List Ocep_base Printf Scanf Vclock Vec
