lib/poet/diagram.ml: Array Buffer Event Format Hashtbl List Ocep_base Printf String
