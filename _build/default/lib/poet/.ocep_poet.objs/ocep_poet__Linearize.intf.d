lib/poet/linearize.mli: Event Ocep_base
