lib/poet/poet.mli: Event Ocep_base
