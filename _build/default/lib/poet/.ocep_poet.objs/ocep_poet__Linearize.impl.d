lib/poet/linearize.ml: Array Event Hashtbl List Ocep_base Prng
