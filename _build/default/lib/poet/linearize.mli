(** Re-linearization of raw event sequences.

    A raw event sequence defines a partial order: trace order plus
    send-before-receive. Any order consistent with it is a valid input to
    {!Poet.ingest}. [shuffle] produces a different (seeded) valid
    linearization — used by the tests to check that matching results do not
    depend on the particular linearization POET delivers. *)

open Ocep_base

val is_linearization : Event.raw list -> bool
(** True iff every receive appears after its send. (Trace order is implied
    by sequence order within a trace.) *)

val shuffle : seed:int -> Event.raw list -> Event.raw list
(** A random valid linearization of the same partial order: repeatedly pick
    a random trace whose head event is enabled (a receive is enabled only
    once its send has been output). *)
