(** ASCII process-time diagrams.

    POET is, first of all, a visualization tool ("target-system
    independent visualizations of complex distributed application
    executions"); this module renders the same picture the paper's Fig. 3
    draws: one row per trace, time flowing left to right in delivery
    order, with message endpoints labelled and any highlighted events
    (typically a reported match) marked.

    {v
    P0 | . #-----------2 .
    P1 | 1---------. .
    P2 |  1  2  . #
    v}

    Events: [.] internal, [#] highlighted, digits/letters are message
    labels shared by a send and its receive. *)

open Ocep_base

val render :
  ?max_events:int ->
  ?highlight:Event.t list ->
  trace_names:string array ->
  Event.t list ->
  string
(** [render ~trace_names events] draws the events (given in delivery
    order; only the last [max_events], default 60, are shown). Events in
    [highlight] are marked [#]. A legend of the highlighted events and of
    the message labels follows the diagram. *)
