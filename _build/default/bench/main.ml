(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (Figs. 3 and 6-10, the completeness metric, the baseline comparisons,
   and the two ablations) via Ocep_harness.Repro. Scale with OCEP_EVENTS /
   OCEP_RUNS; defaults keep the run to a couple of minutes.

   Part 2 is a Bechamel micro-benchmark suite: one Test.make per
   table/figure row, measuring the cost of monitoring one event (amortized
   over a pre-generated stream slice) for each case study at each of the
   paper's trace counts. Disable with OCEP_BECHAMEL=0. *)

module Sim = Ocep_sim.Sim
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine
module Workload = Ocep_workloads.Workload
module Cases = Ocep_harness.Cases
module Repro = Ocep_harness.Repro

(* Replay a pre-generated raw-event slice through a fresh POET + engine;
   Bechamel measures the whole replay, so the reported time divided by the
   slice length is the per-event monitoring cost. *)
let replay_test ~case ~traces ~slice =
  let w = Cases.make case ~traces ~seed:97 ~max_events:slice in
  let names = Sim.trace_names w.Workload.sim_config in
  let raws = ref [] in
  let _ =
    Sim.run w.Workload.sim_config ~sink:(fun r -> raws := r :: !raws) ~bodies:w.Workload.bodies
  in
  let raws = List.rev !raws in
  let net = Compile.compile (Parser.parse w.Workload.pattern) in
  let run () =
    let poet = Poet.create ~trace_names:names () in
    let engine =
      Engine.create
        ~config:{ Engine.default_config with Engine.record_latency = false }
        ~net ~poet ()
    in
    List.iter (fun r -> ignore (Poet.ingest poet r)) raws;
    Engine.matches_found engine
  in
  Bechamel.Test.make
    ~name:(Printf.sprintf "%s/traces=%d" case traces)
    (Bechamel.Staged.stage run)

let bechamel_suite ~slice =
  let tests =
    List.concat_map
      (fun case ->
        List.map (fun traces -> replay_test ~case ~traces ~slice) (Cases.paper_trace_counts case))
      Cases.names
  in
  Bechamel.Test.make_grouped ~name:"monitor" ~fmt:"%s %s" tests

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  let slice = 2_000 in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (bechamel_suite ~slice) in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.printf
    "== Bechamel: cost of monitoring a %d-event stream (one Test per figure row) ==@." slice;
  Format.printf "%-32s %16s %12s@." "benchmark" "ns/replay" "ns/event";
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> (name, est) :: acc
        | _ -> acc)
      results []
  in
  List.iter
    (fun (name, est) -> Format.printf "%-32s %16.0f %12.1f@." name est (est /. float_of_int slice))
    (List.sort compare rows);
  Format.printf "@."

let () =
  let scale = Repro.scale_from_env () in
  Repro.all Format.std_formatter ~scale;
  match Sys.getenv_opt "OCEP_BECHAMEL" with
  | Some "0" -> ()
  | _ -> run_bechamel ()
