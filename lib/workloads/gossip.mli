(** The gossip anti-entropy case study: each round one node writes a new
    version ([KV_Update]) and the version travels the ring, every
    replica acknowledging with a served read.

    With probability [stale_rate] per round a designated replica serves
    the {e old} version even though the new one already reached it
    ([Stale_Serve], causally after the update through the gossip chain)
    — the staleness violation {!Patterns.gossip_staleness} matches,
    recorded as ground truth. The stale plan is a pure function of
    (seed, round). *)

val make : traces:int -> seed:int -> max_events:int -> ?stale_rate:float -> unit -> Workload.t
(** Needs at least 3 traces; [stale_rate] defaults to 0.08 per round. *)
