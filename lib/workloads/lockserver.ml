(* Centralized lock server with an injected fairness violation.

   Trace 0 is the server, traces 1..n-1 the clients. Clients request
   the lock in token-ring order, so the Lock_Request events of the
   whole run are causally totally ordered and the request ids encode
   that order. A fair server grants strictly in request-id order; in a
   barging round the server (per the shared plan) swaps one adjacent
   pair of grants, producing requests i -> j whose grants come back
   j -> i — the four-event fairness violation the pattern matches, and
   the only causal inversion in the run. *)

open Ocep_base
module Sim = Ocep_sim.Sim

let make ~traces ~seed ~max_events ?(barge_rate = 0.08) () =
  let n = traces in
  if n < 3 then invalid_arg "Lockserver.make: need at least 3 traces";
  let clients = n - 1 in
  let inj = Inject.create () in
  (* [Some k] — swap the grants of ring positions k and k+1 (0-based)
     this round *)
  let barge_at round =
    if round <= 1 || clients < 2 then None
    else begin
      let prng = Prng.create ((seed * 211) + (round * 2017)) in
      if Prng.bernoulli prng barge_rate then Some (Prng.int prng (clients - 1)) else None
    end
  in
  let req_id round pos = "r" ^ string_of_int ((round * clients) + pos) in
  let inj_ids : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let inj_id_for round =
    match Hashtbl.find_opt inj_ids round with
    | Some id -> id
    | None ->
      let id = Inject.new_injection inj ~expected_parts:4 in
      Hashtbl.replace inj_ids round id;
      id
  in
  let server () =
    let round = ref 0 in
    while true do
      incr round;
      for _ = 1 to clients do
        ignore (Sim.recv ~tag:"req" ~etype:"Lock_Request_Recv" ())
      done;
      let order = Array.init clients Fun.id in
      (match barge_at !round with
      | Some k ->
        order.(k) <- k + 1;
        order.(k + 1) <- k
      | None -> ());
      Array.iter
        (fun pos ->
          let id = req_id !round pos in
          let nth = Inject.next_occurrence inj ~trace:0 ~etype:"Lock_Grant" in
          (match barge_at !round with
          | Some k when pos = k || pos = k + 1 ->
            Inject.add_part inj ~id:(inj_id_for !round) ~trace:0 ~etype:"Lock_Grant" ~nth
          | _ -> ());
          Sim.send ~dst:(pos + 1) ~etype:"Lock_Grant" ~tag:"grant" ~text:id ();
          ignore (Sim.recv ~src:(pos + 1) ~tag:"rel" ~etype:"Lock_Release_Recv" ()))
        order
    done
  in
  let client me =
    let pos = me - 1 in
    let nxt = 1 + ((pos + 1) mod clients) in
    let prv = 1 + ((pos + clients - 1) mod clients) in
    let round = ref 0 in
    while true do
      incr round;
      (* token ring: requests leave in ring order, each causally after
         the previous one *)
      if not (!round = 1 && pos = 0) then
        ignore (Sim.recv ~src:prv ~tag:"tok" ~etype:"Token_Recv" ());
      let id = req_id !round pos in
      let nth = Inject.next_occurrence inj ~trace:me ~etype:"Lock_Request" in
      (match barge_at !round with
      | Some k when pos = k || pos = k + 1 ->
        Inject.add_part inj ~id:(inj_id_for !round) ~trace:me ~etype:"Lock_Request" ~nth
      | _ -> ());
      Sim.send ~dst:0 ~etype:"Lock_Request" ~tag:"req" ~text:id ();
      (* pass the token before blocking on the grant, so a barged grant
         order cannot wedge the ring *)
      Sim.send ~dst:nxt ~etype:"Token" ~tag:"tok" ();
      ignore (Sim.recv ~src:0 ~tag:"grant" ~etype:"Lock_Grant_Recv" ());
      Sim.emit ~etype:"Lock_Held" ~text:id;
      Sim.send ~dst:0 ~etype:"Lock_Release" ~tag:"rel" ()
    done
  in
  let bodies = Array.init n (fun i -> if i = 0 then fun _ -> server () else client) in
  let sim_config = { (Sim.default_config ~n_procs:n ~seed) with Sim.max_events } in
  {
    Workload.name = "lockserver";
    sim_config;
    bodies;
    pattern = Patterns.lock_fairness;
    inject = inj;
    expected_parts = 4;
  }
