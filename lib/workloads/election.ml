(* Term-based leader election with an injected split brain.

   All n traces are peers; the candidate of term t is t mod n. A normal
   term is a full election: the candidate requests votes from every
   other node, collects all grants, declares itself leader and
   broadcasts a heartbeat that causally closes the term. In a split
   term the electorate partitions: two candidates each canvass a
   disjoint half of the voters, each collects a "majority" of its own
   partition, and both declare leadership of the same term — two
   Become_Leader events no message chain connects. The split plan is a
   pure function of (seed, term), computed identically by everyone. *)

open Ocep_base
module Sim = Ocep_sim.Sim

type plan = Normal of int | Split of int * int  (* candidates *)

let make ~traces ~seed ~max_events ?(split_rate = 0.08) () =
  let n = traces in
  if n < 4 then invalid_arg "Election.make: need at least 4 traces";
  let inj = Inject.create () in
  let plan_at term =
    let c1 = term mod n in
    let prng = Prng.create ((seed * 173) + (term * 1223)) in
    if term > 1 && Prng.bernoulli prng split_rate then
      Split (c1, (c1 + 1 + Prng.int prng (n - 1)) mod n)
    else Normal c1
  in
  (* voters of a split term, interleaved between the two candidates *)
  let partition_of c1 c2 =
    let voters = List.filter (fun p -> p <> c1 && p <> c2) (List.init n Fun.id) in
    List.mapi (fun i v -> (v, if i mod 2 = 0 then c1 else c2)) voters
  in
  let inj_ids : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let inj_id_for term =
    match Hashtbl.find_opt inj_ids term with
    | Some id -> id
    | None ->
      let id = Inject.new_injection inj ~expected_parts:2 in
      Hashtbl.replace inj_ids term id;
      id
  in
  let declare me ~term ~tracked =
    let nth = Inject.next_occurrence inj ~trace:me ~etype:"Become_Leader" in
    if tracked then Inject.add_part inj ~id:(inj_id_for term) ~trace:me ~etype:"Become_Leader" ~nth;
    Sim.emit ~etype:"Become_Leader" ~text:("term" ^ string_of_int term)
  in
  let campaign me ~term ~voters ~tracked =
    let t = "term" ^ string_of_int term in
    List.iter (fun v -> Sim.send ~dst:v ~etype:"Request_Vote" ~tag:"rv" ~text:t ()) voters;
    List.iter (fun v -> ignore (Sim.recv ~src:v ~tag:"vg" ~etype:"Vote_Grant_Recv" ())) voters;
    declare me ~term ~tracked;
    (* heartbeat closes the candidate's half of the term *)
    List.iter (fun v -> Sim.send ~dst:v ~etype:"Heartbeat" ~tag:"hb" ~text:t ()) voters
  in
  let follow ~candidate =
    ignore (Sim.recv ~src:candidate ~tag:"rv" ~etype:"Request_Vote_Recv" ());
    Sim.send ~dst:candidate ~etype:"Vote_Grant" ~tag:"vg" ();
    ignore (Sim.recv ~src:candidate ~tag:"hb" ~etype:"Heartbeat_Recv" ())
  in
  let body me =
    let term = ref 0 in
    while true do
      incr term;
      match plan_at !term with
      | Normal c ->
        if me = c then
          campaign me ~term:!term ~tracked:false
            ~voters:(List.filter (fun p -> p <> me) (List.init n Fun.id))
        else follow ~candidate:c
      | Split (c1, c2) ->
        if me = c1 || me = c2 then begin
          let voters =
            List.filter_map
              (fun (v, c) -> if c = me then Some v else None)
              (partition_of c1 c2)
          in
          campaign me ~term:!term ~voters ~tracked:true
        end
        else follow ~candidate:(List.assoc me (partition_of c1 c2))
    done
  in
  let sim_config = { (Sim.default_config ~n_procs:n ~seed) with Sim.max_events } in
  {
    Workload.name = "election";
    sim_config;
    bodies = Array.init n (fun _ -> body);
    pattern = Patterns.split_brain;
    inject = inj;
    expected_parts = 2;
  }
