open Ocep_base

type part = { p_trace : int; p_etype : string; p_nth : int }

type injection = {
  inj_id : int;
  expected_parts : int;
  mutable parts : part list;
  mutable resolved : Event.t list;
}

type t = {
  emit_counts : (int * string, int) Hashtbl.t;  (* workload side *)
  seen_counts : (int * string, int) Hashtbl.t;  (* harness side *)
  wanted : (int * string * int, injection) Hashtbl.t;
  mutable injs : injection list;  (* newest first *)
  mutable next_id : int;
}

let create () =
  {
    emit_counts = Hashtbl.create 64;
    seen_counts = Hashtbl.create 64;
    wanted = Hashtbl.create 64;
    injs = [];
    next_id = 0;
  }

let bump tbl key =
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key n;
  n

let next_occurrence t ~trace ~etype = bump t.emit_counts (trace, etype)

let new_injection t ~expected_parts =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.injs <- { inj_id = id; expected_parts; parts = []; resolved = [] } :: t.injs;
  id

let find_injection t id = List.find (fun i -> i.inj_id = id) t.injs

let add_part t ~id ~trace ~etype ~nth =
  let inj = find_injection t id in
  inj.parts <- inj.parts @ [ { p_trace = trace; p_etype = etype; p_nth = nth } ];
  Hashtbl.replace t.wanted (trace, etype, nth) inj

let injections t = List.rev t.injs

let resolve t (ev : Event.t) =
  let nth = bump t.seen_counts (ev.trace, ev.etype) in
  match Hashtbl.find_opt t.wanted (ev.trace, ev.etype, nth) with
  | None -> None
  | Some inj ->
    inj.resolved <- inj.resolved @ [ ev ];
    Some inj

let complete t =
  List.filter
    (fun i -> List.length i.parts = i.expected_parts && List.length i.resolved = i.expected_parts)
    (injections t)

(* ---------------------------------------------------------------- *)
(* Delivery faults                                                   *)
(* ---------------------------------------------------------------- *)

type faults = { f_reorder : int; f_dup : float; f_drop : float }

let no_faults = { f_reorder = 0; f_dup = 0.; f_drop = 0. }

let pp_faults ppf f =
  Format.fprintf ppf "reorder:%d,dup:%g,drop:%g" f.f_reorder f.f_dup f.f_drop

let parse_faults s =
  (* Strict by design: a malformed spec must fail loudly rather than be
     clamped or silently skipped — a typo in a replay-experiment flag
     that quietly became [no_faults] would invalidate the experiment. *)
  let err fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "faults %S: %s" s m)) fmt in
  let parse_field (seen, acc) field =
    let field = String.trim field in
    match String.index_opt field ':' with
    | None -> err "field %S: expected key:value" field
    | Some i ->
      let key = String.trim (String.sub field 0 i) in
      let v = String.trim (String.sub field (i + 1) (String.length field - i - 1)) in
      if List.mem key seen then err "duplicate key %S" key
      else begin
        let seen = key :: seen in
        let prob what =
          match float_of_string_opt v with
          | Some p when p >= 0. && p <= 1. -> Ok p
          | Some p -> err "%s probability %g: out of range [0, 1]" what p
          | None -> err "%s probability %S: expected a float in [0, 1]" what v
        in
        match key with
        | "reorder" -> (
          match int_of_string_opt v with
          | Some k when k >= 0 -> Ok (seen, { acc with f_reorder = k })
          | Some k -> err "reorder window %d: must be non-negative" k
          | None -> err "reorder window %S: expected a non-negative int" v)
        | "dup" -> Result.map (fun p -> (seen, { acc with f_dup = p })) (prob "dup")
        | "drop" -> Result.map (fun p -> (seen, { acc with f_drop = p })) (prob "drop")
        | k -> err "unknown fault %S (want reorder/dup/drop)" k
      end
  in
  match String.trim s with
  | "" | "none" -> Ok no_faults
  | trimmed ->
    Result.map snd
      (List.fold_left
         (fun acc field -> Result.bind acc (fun acc -> parse_field acc field))
         (Ok ([], no_faults))
         (String.split_on_char ',' trimmed))

let apply_faults f ~seed items =
  let rng = Prng.create seed in
  (* drop each item independently *)
  let items =
    if f.f_drop = 0. then items
    else List.filter (fun _ -> not (Prng.bernoulli rng f.f_drop)) items
  in
  (* duplicate, the copy adjacent (reordering below can separate it) *)
  let items =
    if f.f_dup = 0. then items
    else List.concat_map (fun x -> if Prng.bernoulli rng f.f_dup then [ x; x ] else [ x ]) items
  in
  (* bounded reorder: shuffle within consecutive blocks of [f_reorder]
     items, so no item is displaced by the window or more *)
  if f.f_reorder <= 1 then items
  else begin
    let arr = Array.of_list items in
    let n = Array.length arr in
    let i = ref 0 in
    while !i < n do
      let len = min f.f_reorder (n - !i) in
      let block = Array.sub arr !i len in
      Prng.shuffle rng block;
      Array.blit block 0 arr !i len;
      i := !i + len
    done;
    Array.to_list arr
  end
