(* Two-phase commit with an injected coordinator crash.

   Trace 0 is the coordinator, traces 1..n-1 the participants. Each
   round is one transaction: PREPARE to all, collect votes, COMMIT to
   all. In a crash round the coordinator dies (behaviorally) after
   sending COMMIT to exactly one participant; the others time out and
   abort unilaterally, so one participant applies the transaction while
   another aborts it — the classic 2PC blocking-window anomaly. The
   crash plan is a pure function of (seed, round), so every process
   computes it without coordination (cf. Random_walk). *)

open Ocep_base
module Sim = Ocep_sim.Sim

let make ~traces ~seed ~max_events ?(crash_rate = 0.08) () =
  let n = traces in
  if n < 3 then invalid_arg "Twopc.make: need at least 3 traces";
  let parts = n - 1 in
  let inj = Inject.create () in
  (* [Some committer] when the coordinator crashes mid-COMMIT this round *)
  let crash_at round =
    if round = 0 then None
    else begin
      let prng = Prng.create ((seed * 131) + (round * 977)) in
      if Prng.bernoulli prng crash_rate then Some (1 + Prng.int prng parts) else None
    end
  in
  let inj_ids : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let inj_id_for round =
    match Hashtbl.find_opt inj_ids round with
    | Some id -> id
    | None ->
      let id = Inject.new_injection inj ~expected_parts:2 in
      Hashtbl.replace inj_ids round id;
      id
  in
  let coordinator () =
    let round = ref 0 in
    while true do
      incr round;
      let txn = "t" ^ string_of_int !round in
      for p = 1 to parts do
        Sim.send ~dst:p ~etype:"TX_Prepare" ~tag:"prep" ~text:txn ()
      done;
      for _ = 1 to parts do
        ignore (Sim.recv ~tag:"vote" ~etype:"TX_Vote_Recv" ())
      done;
      (match crash_at !round with
      | None ->
        for p = 1 to parts do
          Sim.send ~dst:p ~etype:"TX_Outcome" ~tag:"out" ~text:txn ()
        done
      | Some committer ->
        (* crash: the decision reaches only one participant, then the
           coordinator recovers into the next round *)
        Sim.send ~dst:committer ~etype:"TX_Outcome" ~tag:"out" ~text:txn ())
    done
  in
  let participant me =
    let round = ref 0 in
    while true do
      incr round;
      let txn = "t" ^ string_of_int !round in
      ignore (Sim.recv ~src:0 ~tag:"prep" ~etype:"TX_Prepare_Recv" ());
      Sim.send ~dst:0 ~etype:"TX_Vote" ~tag:"vote" ~text:"yes" ();
      (match crash_at !round with
      | None ->
        ignore (Sim.recv ~src:0 ~tag:"out" ~etype:"TX_Outcome_Recv" ());
        ignore (Inject.next_occurrence inj ~trace:me ~etype:"TX_Commit");
        Sim.emit ~etype:"TX_Commit" ~text:txn
      | Some committer when me = committer ->
        ignore (Sim.recv ~src:0 ~tag:"out" ~etype:"TX_Outcome_Recv" ());
        let id = inj_id_for !round in
        let nth = Inject.next_occurrence inj ~trace:me ~etype:"TX_Commit" in
        Inject.add_part inj ~id ~trace:me ~etype:"TX_Commit" ~nth;
        Sim.emit ~etype:"TX_Commit" ~text:txn
      | Some committer ->
        (* timeout: no outcome ever arrives; presumed abort. Ground
           truth tracks the commit and the first aborting participant. *)
        let nth = Inject.next_occurrence inj ~trace:me ~etype:"TX_Abort" in
        let first_aborter = if committer = 1 then 2 else 1 in
        if me = first_aborter then begin
          let id = inj_id_for !round in
          Inject.add_part inj ~id ~trace:me ~etype:"TX_Abort" ~nth
        end;
        Sim.emit ~etype:"TX_Abort" ~text:txn)
    done
  in
  let bodies = Array.init n (fun i -> if i = 0 then fun _ -> coordinator () else participant) in
  let sim_config = { (Sim.default_config ~n_procs:n ~seed) with Sim.max_events } in
  {
    Workload.name = "twopc";
    sim_config;
    bodies;
    pattern = Patterns.two_phase_commit;
    inject = inj;
    expected_parts = 2;
  }
