(** The leader-election case study: term-based elections over n peers.

    A normal term is a full election — the term's candidate canvasses
    every other node and declares leadership once all grants are in.
    With probability [split_rate] per term the electorate partitions:
    two candidates each canvass a disjoint half of the voters and both
    emit [Become_Leader] for the same term, causally concurrent — the
    split brain {!Patterns.split_brain} matches, recorded as ground
    truth. The split plan is a pure function of (seed, term). *)

val make : traces:int -> seed:int -> max_events:int -> ?split_rate:float -> unit -> Workload.t
(** Needs at least 4 traces (two candidates + a splittable electorate);
    [split_rate] defaults to 0.08 per term. *)
