(* Gossip anti-entropy with an injected stale serve.

   Each round one node writes a new version of the replicated value
   (KV_Update) and the version propagates around the ring, every node
   acknowledging what it now holds by serving a read (KV_Serve). The
   injected bug: a designated replica that has already received the new
   version serves the old one anyway (Stale_Serve) — causally after the
   update, which is what makes it a detectable protocol violation
   rather than benign replication lag. The stale plan is a pure
   function of (seed, round). *)

open Ocep_base
module Sim = Ocep_sim.Sim

let make ~traces ~seed ~max_events ?(stale_rate = 0.08) () =
  let n = traces in
  if n < 3 then invalid_arg "Gossip.make: need at least 3 traces";
  let inj = Inject.create () in
  (* [Some offset] — the ring position (1..n-1 past the writer) that
     serves stale this round *)
  let stale_at round =
    if round <= 1 then None
    else begin
      let prng = Prng.create ((seed * 197) + (round * 1543)) in
      if Prng.bernoulli prng stale_rate then Some (1 + Prng.int prng (n - 1)) else None
    end
  in
  let inj_ids : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let inj_id_for round =
    match Hashtbl.find_opt inj_ids round with
    | Some id -> id
    | None ->
      let id = Inject.new_injection inj ~expected_parts:2 in
      Hashtbl.replace inj_ids round id;
      id
  in
  let body me =
    let round = ref 0 in
    while true do
      incr round;
      let writer = !round mod n in
      let v = "v" ^ string_of_int !round in
      let next = (me + 1) mod n in
      let stale = stale_at !round in
      if me = writer then begin
        let nth = Inject.next_occurrence inj ~trace:me ~etype:"KV_Update" in
        (match stale with
        | Some _ -> Inject.add_part inj ~id:(inj_id_for !round) ~trace:me ~etype:"KV_Update" ~nth
        | None -> ());
        Sim.emit ~etype:"KV_Update" ~text:v;
        Sim.send ~dst:next ~etype:"Gossip" ~tag:"gsp" ~text:v ();
        (* the round closes when the version has gone full circle *)
        ignore (Sim.recv ~src:((me + n - 1) mod n) ~tag:"gsp" ~etype:"Gossip_Recv" ())
      end
      else begin
        ignore (Sim.recv ~src:((me + n - 1) mod n) ~tag:"gsp" ~etype:"Gossip_Recv" ());
        let my_offset = (me - writer + n) mod n in
        (match stale with
        | Some offset when offset = my_offset ->
          let nth = Inject.next_occurrence inj ~trace:me ~etype:"Stale_Serve" in
          Inject.add_part inj ~id:(inj_id_for !round) ~trace:me ~etype:"Stale_Serve" ~nth;
          Sim.emit ~etype:"Stale_Serve" ~text:v
        | _ -> Sim.emit ~etype:"KV_Serve" ~text:v);
        Sim.send ~dst:next ~etype:"Gossip" ~tag:"gsp" ~text:v ()
      end
    done
  in
  let sim_config = { (Sim.default_config ~n_procs:n ~seed) with Sim.max_events } in
  {
    Workload.name = "gossip";
    sim_config;
    bodies = Array.init n (fun _ -> body);
    pattern = Patterns.gossip_staleness;
    inject = inj;
    expected_parts = 2;
  }
