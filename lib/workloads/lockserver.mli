(** The lock-server fairness case study: one server, (traces−1) clients
    requesting a lock in token-ring order, so every [Lock_Request] of
    the run is causally ordered after the previous one and request ids
    encode the causal order.

    A fair server grants strictly in request order. With probability
    [barge_rate] per round it swaps one adjacent pair of grants:
    requests i → j answered by grants j → i, the four-event causal
    inversion {!Patterns.lock_fairness} matches — and the only
    inversion in the run, so matches correspond 1:1 to injections. The
    barge plan is a pure function of (seed, round). *)

val make : traces:int -> seed:int -> max_events:int -> ?barge_rate:float -> unit -> Workload.t
(** [traces] = 1 server + (traces−1) clients, at least 3 total;
    [barge_rate] defaults to 0.08 per round. *)
