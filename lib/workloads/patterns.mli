(** The pattern texts for the four case studies, in the pattern language of
    Section III. *)

val deadlock_cycle : int -> string
(** A send cycle of the given length (≥ 2) among blocked sends: k
    [Blocked_Send] classes chained by process/text variables, all pairwise
    concurrent — a communication deadlock of that specific length
    (Section V-C1). *)

val message_race : string
(** Two concurrent sends towards the same destination (Section V-C2). *)

val atomicity_violation : string
(** Two concurrent critical-section entries (Section V-C3). *)

val ordering_bug : string
(** The ZooKeeper-962 leader/follower pattern of Section III-D: a snapshot
    taken for a synch request, updated before it is forwarded. *)

val traffic_light : string
(** The introduction's example: two lights green concurrently. *)

(** {1 Distributed-protocol bug corpus (PR 6)} *)

val two_phase_commit : string
(** One participant commits while another aborts the same transaction,
    the two decisions causally concurrent — 2PC's coordinator-crash
    blocking-window anomaly. *)

val split_brain : string
(** Two [Become_Leader] declarations for the same term, concurrent —
    a partitioned electorate elected two leaders. *)

val gossip_staleness : string
(** A replica serves a stale version causally {e after} the newer write
    reached it through the gossip chain. *)

val lock_fairness : string
(** Request $i causally precedes request $j but the grants come back in
    the opposite causal order — the lock server barged a later requester
    past an earlier one. *)
