(** The two-phase-commit case study: one coordinator driving one
    transaction per round over (traces−1) participants.

    With probability [crash_rate] per round the coordinator crashes
    between its COMMIT sends: exactly one participant learns the outcome
    and commits, the others time out and abort unilaterally — one
    [TX_Commit] and concurrent [TX_Abort]s for the same transaction id,
    the injected ground truth {!Patterns.two_phase_commit} matches. The
    crash plan is a pure function of (seed, round), computed by every
    process without coordination. *)

val make : traces:int -> seed:int -> max_events:int -> ?crash_rate:float -> unit -> Workload.t
(** [traces] = 1 coordinator + (traces−1) participants, at least 3 total;
    [crash_rate] defaults to 0.08 per round. *)
