(** Ground-truth bookkeeping for injected violations.

    A workload records, {e before} emitting them, the constituent events of
    each violation it deliberately injects, identified by (trace, event
    type, n-th occurrence of that type on that trace). The harness counts
    occurrences as events stream by and resolves each part to the concrete
    timestamped event, giving an exact ground truth to check the monitor's
    completeness against. *)

open Ocep_base

type part = { p_trace : int; p_etype : string; p_nth : int }

type injection = {
  inj_id : int;
  expected_parts : int;
  mutable parts : part list;  (** in recording order *)
  mutable resolved : Event.t list;  (** filled by the harness *)
}

type t

val create : unit -> t

val next_occurrence : t -> trace:int -> etype:string -> int
(** The occurrence number the {e next} event of this type on this trace
    will have, and advance the counter. Workloads call it once per emitted
    event of a tracked type, immediately before emitting. *)

val new_injection : t -> expected_parts:int -> int
(** Allocate an injection and return its id. *)

val add_part : t -> id:int -> trace:int -> etype:string -> nth:int -> unit

val injections : t -> injection list
(** Oldest first. *)

val resolve : t -> Event.t -> injection option
(** Harness side: count this event's (trace, etype) occurrence and attach
    it to any injection part that names it, returning that injection. *)

val complete : t -> injection list
(** Injections whose every expected part has been recorded and resolved
    (i.e. fully materialized before the run's cutoff). *)

(** {1 Delivery faults}

    Deterministic transport degradation for replay experiments: what a
    lossy, reordering network does to a recorded stream, as a pure
    function of a seed. Used by [ocep replay --faults] and the ingest
    property tests to prove the admission layer restores the engine's
    preconditions. *)

type faults = {
  f_reorder : int;
      (** shuffle within consecutive blocks of this many items — every
          displacement is strictly below the value; [0] and [1] mean no
          reordering *)
  f_dup : float;  (** per-item duplication probability *)
  f_drop : float;  (** per-item drop probability *)
}

val no_faults : faults

val parse_faults : string -> (faults, string) result
(** Parse ["reorder:8,dup:0.01,drop:0.001"] — any subset of the keys in
    any order, whitespace around fields tolerated; [""] and ["none"] are
    {!no_faults}. Strict otherwise: out-of-range probabilities
    ([dup:1.5]), negative reorder windows, unknown or duplicate keys and
    malformed fields are all [Error] with a message naming the offending
    part of the spec — never clamped or skipped. *)

val pp_faults : Format.formatter -> faults -> unit
(** Prints in the {!parse_faults} syntax. *)

val apply_faults : faults -> seed:int -> 'a list -> 'a list
(** Degrade a delivery sequence: drop, then duplicate (copies start out
    adjacent), then block-shuffle. Deterministic in [seed]. *)
