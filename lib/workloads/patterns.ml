let deadlock_cycle k =
  if k < 2 then invalid_arg "Patterns.deadlock_cycle: length must be >= 2";
  let buf = Buffer.create 256 in
  for i = 1 to k do
    let next = (i mod k) + 1 in
    Buffer.add_string buf
      (Printf.sprintf "B%d := [$p%d, Blocked_Send, $p%d];\nB%d $b%d;\n" i i next i i)
  done;
  Buffer.add_string buf "pattern := ";
  let first = ref true in
  for i = 1 to k do
    for j = i + 1 to k do
      if not !first then Buffer.add_string buf " && ";
      first := false;
      Buffer.add_string buf (Printf.sprintf "$b%d || $b%d" i j)
    done
  done;
  Buffer.add_string buf ";\n";
  Buffer.contents buf

let message_race =
  "S1 := [_, MPI_Send, $d];\nS2 := [_, MPI_Send, $d];\npattern := S1 || S2;\n"

let atomicity_violation =
  "Enter1 := [_, CS_Enter, _];\nEnter2 := [_, CS_Enter, _];\npattern := Enter1 || Enter2;\n"

let ordering_bug =
  "Synch := [$L, Synch_Leader, $R];\n\
   Snapshot := [$L, Take_Snapshot, $R];\n\
   Update := [$L, Make_Update, _];\n\
   Forward := [$L, Forward_Snapshot, $R];\n\
   Snapshot $Diff;\n\
   Update $Write;\n\
   pattern := (Synch -> $Diff) && ($Diff -> $Write) && ($Write -> Forward);\n"

let traffic_light =
  "G1 := [$a, Turn_Green, _];\nG2 := [$b, Turn_Green, _];\npattern := G1 || G2;\n"

(* Two-phase commit, coordinator crash between COMMIT sends: one
   participant applies the transaction while another — never told the
   outcome — aborts unilaterally. The two decisions for the same txn are
   causally concurrent (neither could have known of the other). *)
let two_phase_commit =
  "Commit := [_, TX_Commit, $t];\nAbort := [_, TX_Abort, $t];\npattern := Commit || Abort;\n"

(* Leader election, split brain: two nodes declare themselves leader of
   the same term with neither declaration causally preceding the other —
   possible only when the electorate was partitioned. *)
let split_brain =
  "L1 := [_, Become_Leader, $t];\nL2 := [_, Become_Leader, $t];\npattern := L1 || L2;\n"

(* Gossip anti-entropy staleness: a replica serves an old version of a
   key causally *after* the write of the newer version reached it — the
   update happens-before the stale serve through the gossip chain, so the
   replica demonstrably ignored state it already had. *)
let gossip_staleness =
  "Update := [_, KV_Update, $v];\nStale := [_, Stale_Serve, $v];\npattern := Update -> Stale;\n"

(* Lock-server fairness: request $i causally precedes request $j, yet the
   grant for $j causally precedes the grant for $i — the server barged a
   later requester past an earlier one it had already heard about. *)
let lock_fairness =
  "R1 := [_, Lock_Request, $i];\n\
   R2 := [_, Lock_Request, $j];\n\
   G2 := [_, Lock_Grant, $j];\n\
   G1 := [_, Lock_Grant, $i];\n\
   pattern := (R1 -> R2) && (G2 -> G1);\n"
