open Ocep_base

type t = {
  names : string array;
  retain : bool;
  partner_index : bool;
  clocks : Vclock.t array;  (* current clock per trace *)
  counters : int array;  (* events so far per trace *)
  pending_msgs : (int, Vclock.t) Hashtbl.t;  (* sent, not yet received *)
  sends : (int, Event.t) Hashtbl.t;
  receives : (int, Event.t) Hashtbl.t;
  store : Event.t Vec.t array;  (* per trace, when retained *)
  log : Event.t Vec.t;  (* ingestion order, when retained *)
  mutable subscribers_rev : (Event.t -> unit) list;
  mutable subscribers : (Event.t -> unit) array;
      (* subscription-order cache of subscribers_rev for the ingest hot
         path; rebuilt on (rare) subscribe instead of appending with @ *)
  mutable ingested : int;
  mutable notified : int;  (* subscriber callbacks invoked *)
}

let create ?(retain = false) ?(partner_index = true) ~trace_names () =
  let n = Array.length trace_names in
  {
    names = Array.copy trace_names;
    retain;
    partner_index;
    clocks = Array.init n (fun _ -> Vclock.make ~dim:n);
    counters = Array.make n 0;
    pending_msgs = Hashtbl.create 64;
    sends = Hashtbl.create 64;
    receives = Hashtbl.create 64;
    store = Array.init n (fun _ -> Vec.create ());
    log = Vec.create ();
    subscribers_rev = [];
    subscribers = [||];
    ingested = 0;
    notified = 0;
  }

let trace_count t = Array.length t.names

let trace_names t = Array.copy t.names

let trace_of_name t name =
  let n = Array.length t.names in
  let rec loop i = if i >= n then None else if t.names.(i) = name then Some i else loop (i + 1) in
  loop 0

let subscribe t f =
  t.subscribers_rev <- f :: t.subscribers_rev;
  t.subscribers <- Array.of_list (List.rev t.subscribers_rev)

let ingested t = t.ingested

let notifications t = t.notified

let ingest t (raw : Event.raw) =
  let tr = raw.r_trace in
  if tr < 0 || tr >= Array.length t.names then
    failwith (Printf.sprintf "Poet.ingest: trace %d out of range" tr);
  let vc =
    match raw.r_kind with
    | Event.Send { msg } ->
      let vc = Vclock.tick t.clocks.(tr) ~trace:tr in
      Hashtbl.replace t.pending_msgs msg vc;
      vc
    | Event.Receive { msg } -> (
      match Hashtbl.find_opt t.pending_msgs msg with
      | None -> failwith (Printf.sprintf "Poet.ingest: receive of unknown message %d" msg)
      | Some sent_vc ->
        Hashtbl.remove t.pending_msgs msg;
        Vclock.tick_merge t.clocks.(tr) sent_vc ~trace:tr)
    | Event.Internal -> Vclock.tick t.clocks.(tr) ~trace:tr
  in
  t.clocks.(tr) <- vc;
  t.counters.(tr) <- t.counters.(tr) + 1;
  let ev =
    {
      Event.trace = tr;
      trace_name = t.names.(tr);
      index = t.counters.(tr);
      etype = raw.r_etype;
      text = raw.r_text;
      kind = raw.r_kind;
      vc;
    }
  in
  if t.partner_index then begin
    match raw.r_kind with
    | Event.Send { msg } -> Hashtbl.replace t.sends msg ev
    | Event.Receive { msg } -> Hashtbl.replace t.receives msg ev
    | Event.Internal -> ()
  end;
  if t.retain then begin
    Vec.push t.store.(tr) ev;
    Vec.push t.log ev
  end;
  t.ingested <- t.ingested + 1;
  t.notified <- t.notified + Array.length t.subscribers;
  Array.iter (fun f -> f ev) t.subscribers;
  ev

let check_retained t fn =
  if not t.retain then failwith (fn ^ ": store was created with retain:false")

let events_on t tr =
  check_retained t "Poet.events_on";
  Vec.to_array t.store.(tr)

let all_events t =
  check_retained t "Poet.all_events";
  Vec.to_list t.log

let find_partner t (ev : Event.t) =
  match ev.kind with
  | Event.Send { msg } -> Hashtbl.find_opt t.receives msg
  | Event.Receive { msg } -> Hashtbl.find_opt t.sends msg
  | Event.Internal -> None

(* ------------------------------------------------------------------ *)
(* Dump / reload                                                       *)
(* ------------------------------------------------------------------ *)

let dump_header ~trace_names oc =
  Printf.fprintf oc "poet-dump 1\ntraces %d\n" (Array.length trace_names);
  Array.iter (fun n -> Printf.fprintf oc "%S\n" n) trace_names

let kind_tag = function
  | Event.Send { msg } -> Printf.sprintf "S %d" msg
  | Event.Receive { msg } -> Printf.sprintf "R %d" msg
  | Event.Internal -> "I"

let dump_raw oc (raw : Event.raw) =
  Printf.fprintf oc "E %d %S %S %s\n" raw.r_trace raw.r_etype raw.r_text (kind_tag raw.r_kind)

let load ic =
  let line () = try Some (input_line ic) with End_of_file -> None in
  (match line () with
  | Some "poet-dump 1" -> ()
  | _ -> failwith "Poet.load: bad magic");
  let n =
    match line () with
    | Some l -> (try Scanf.sscanf l "traces %d" (fun n -> n) with _ -> failwith "Poet.load: bad trace count")
    | None -> failwith "Poet.load: truncated header"
  in
  let names =
    Array.init n (fun _ ->
        match line () with
        | Some l -> (try Scanf.sscanf l "%S" (fun s -> s) with _ -> failwith "Poet.load: bad trace name")
        | None -> failwith "Poet.load: truncated names")
  in
  let parse_event l =
    try
      Scanf.sscanf l "E %d %S %S %s %s" (fun tr etype text tag rest ->
          let kind =
            match tag with
            | "S" -> Event.Send { msg = int_of_string rest }
            | "R" -> Event.Receive { msg = int_of_string rest }
            | "I" -> Event.Internal
            | _ -> failwith "Poet.load: bad kind"
          in
          { Event.r_trace = tr; r_etype = etype; r_text = text; r_kind = kind })
    with Scanf.Scan_failure _ | End_of_file -> failwith ("Poet.load: bad event line: " ^ l)
  in
  let rec events acc =
    match line () with
    | None -> List.rev acc
    | Some "" -> events acc
    | Some l -> events (parse_event l :: acc)
  in
  (names, events [])
