open Ocep_base

(* Message ids are in practice small dense integers (the simulator and
   every workload draw them from a counter), so per-message state lives
   in arrays indexed by id — one load/store where a hashtable would
   hash, probe and allocate buckets — with a hashtable spill for ids
   that are negative or implausibly large. Absent entries hold the
   physically-unique sentinels below. *)
let dense_cap = 1 lsl 20

let no_vc = Vclock.make ~dim:0

let no_event = Event.none

type t = {
  names : string array;
  symbols : Symbol.t;  (* interning table for trace names, etypes, texts *)
  name_syms : int array;  (* trace -> symbol of its name *)
  trace_by_sym : int array;  (* name symbol -> first trace with that name *)
  retain : bool;
  partner_index : bool;
  clocks : Vclock.t array;  (* current clock per trace *)
  counters : int array;  (* events so far per trace *)
  mutable msg_vc : Vclock.t array;  (* msg id -> sent-not-received vc *)
  mutable msg_send : Event.t array;  (* msg id -> send event *)
  mutable msg_recv : Event.t array;  (* msg id -> receive event *)
  pending_spill : (int, Vclock.t) Hashtbl.t;
  send_spill : (int, Event.t) Hashtbl.t;
  recv_spill : (int, Event.t) Hashtbl.t;
  store : Event.t Vec.t array;  (* per trace, when retained *)
  log : Event.t Vec.t;  (* ingestion order, when retained *)
  mutable subscribers_rev : (Event.t -> unit) list;
  mutable subscribers : (Event.t -> unit) array;
      (* subscription-order cache of subscribers_rev for the ingest hot
         path; rebuilt on (rare) subscribe instead of appending with @ *)
  mutable ingested : int;
  mutable notified : int;  (* subscriber callbacks invoked *)
  (* two-entry intern memos for the two hot ingest strings: event
     streams repeat the same etype/text values — usually the physically
     same string (literals, memoized names) — so a physical-equality hit
     skips the hash probe entirely. Two entries keep an alternating pair
     of literal sites resident. [-1] symbols mark empty slots. *)
  mutable last_etype : string;
  mutable last_esym : int;
  mutable last_etype2 : string;
  mutable last_esym2 : int;
  mutable last_text : string;
  mutable last_xsym : int;
  mutable last_text2 : string;
  mutable last_xsym2 : int;
}

let create ?(retain = false) ?(partner_index = true) ~trace_names () =
  let n = Array.length trace_names in
  let symbols = Symbol.create () in
  (* trace names are interned first so every name symbol is small and the
     reverse map is a dense array; duplicate names share a symbol and
     resolve to the first trace, matching [trace_of_name] *)
  let name_syms = Array.map (Symbol.intern symbols) trace_names in
  let trace_by_sym = Array.make (Symbol.size symbols) (-1) in
  Array.iteri (fun tr sym -> if trace_by_sym.(sym) < 0 then trace_by_sym.(sym) <- tr) name_syms;
  {
    names = Array.copy trace_names;
    symbols;
    name_syms;
    trace_by_sym;
    retain;
    partner_index;
    clocks = Array.init n (fun _ -> Vclock.make ~dim:n);
    counters = Array.make n 0;
    msg_vc = [||];
    msg_send = [||];
    msg_recv = [||];
    pending_spill = Hashtbl.create 16;
    send_spill = Hashtbl.create 16;
    recv_spill = Hashtbl.create 16;
    store = Array.init n (fun _ -> Vec.create ());
    log = Vec.create ();
    subscribers_rev = [];
    subscribers = [||];
    ingested = 0;
    notified = 0;
    last_etype = "";
    last_esym = -1;
    last_etype2 = "";
    last_esym2 = -1;
    last_text = "";
    last_xsym = -1;
    last_text2 = "";
    last_xsym2 = -1;
  }

let trace_count t = Array.length t.names

let dense_capacity = dense_cap

let trace_names t = Array.copy t.names

let trace_of_name t name =
  let n = Array.length t.names in
  let rec loop i = if i >= n then None else if t.names.(i) = name then Some i else loop (i + 1) in
  loop 0

let symbols t = t.symbols

let trace_of_sym t sym =
  if sym < 0 || sym >= Array.length t.trace_by_sym then None
  else
    let tr = t.trace_by_sym.(sym) in
    if tr < 0 then None else Some tr

let subscribe t f =
  t.subscribers_rev <- f :: t.subscribers_rev;
  t.subscribers <- Array.of_list (List.rev t.subscribers_rev)

let ingested t = t.ingested

let notifications t = t.notified

let dense t msg = msg >= 0 && msg < dense_cap && msg < Array.length t.msg_vc

let grow_dense t msg =
  let cur = Array.length t.msg_vc in
  let n = ref (max 1024 (cur * 2)) in
  while msg >= !n do
    n := !n * 2
  done;
  let grow a fill =
    let b = Array.make !n fill in
    Array.blit a 0 b 0 cur;
    b
  in
  t.msg_vc <- grow t.msg_vc no_vc;
  t.msg_send <- grow t.msg_send no_event;
  t.msg_recv <- grow t.msg_recv no_event

let ingest t (raw : Event.raw) =
  let tr = raw.r_trace in
  if tr < 0 || tr >= Array.length t.names then
    failwith (Printf.sprintf "Poet.ingest: trace %d out of range" tr);
  let vc =
    match raw.r_kind with
    | Event.Send { msg } ->
      let vc = Vclock.tick t.clocks.(tr) ~trace:tr in
      if msg >= 0 && msg < dense_cap then begin
        if msg >= Array.length t.msg_vc then grow_dense t msg;
        t.msg_vc.(msg) <- vc
      end
      else Hashtbl.replace t.pending_spill msg vc;
      vc
    | Event.Receive { msg } ->
      let sent_vc =
        if dense t msg && t.msg_vc.(msg) != no_vc then begin
          let v = t.msg_vc.(msg) in
          t.msg_vc.(msg) <- no_vc;
          v
        end
        else begin
          match Hashtbl.find t.pending_spill msg with
          | v ->
            Hashtbl.remove t.pending_spill msg;
            v
          | exception Not_found ->
            failwith (Printf.sprintf "Poet.ingest: receive of unknown message %d" msg)
        end
      in
      Vclock.tick_merge t.clocks.(tr) sent_vc ~trace:tr
    | Event.Internal -> Vclock.tick t.clocks.(tr) ~trace:tr
  in
  t.clocks.(tr) <- vc;
  t.counters.(tr) <- t.counters.(tr) + 1;
  let ev =
    {
      Event.trace = tr;
      trace_name = t.names.(tr);
      index = t.counters.(tr);
      etype = raw.r_etype;
      text = raw.r_text;
      tsym = t.name_syms.(tr);
      esym =
        (if t.last_esym >= 0 && raw.r_etype == t.last_etype then t.last_esym
         else if t.last_esym2 >= 0 && raw.r_etype == t.last_etype2 then t.last_esym2
         else begin
           let s = Symbol.intern t.symbols raw.r_etype in
           t.last_etype2 <- t.last_etype;
           t.last_esym2 <- t.last_esym;
           t.last_etype <- raw.r_etype;
           t.last_esym <- s;
           s
         end);
      xsym =
        (if t.last_xsym >= 0 && raw.r_text == t.last_text then t.last_xsym
         else if t.last_xsym2 >= 0 && raw.r_text == t.last_text2 then t.last_xsym2
         else begin
           let s = Symbol.intern t.symbols raw.r_text in
           t.last_text2 <- t.last_text;
           t.last_xsym2 <- t.last_xsym;
           t.last_text <- raw.r_text;
           t.last_xsym <- s;
           s
         end);
      kind = raw.r_kind;
      vc;
    }
  in
  if t.partner_index then begin
    match raw.r_kind with
    | Event.Send { msg } ->
      if dense t msg then t.msg_send.(msg) <- ev else Hashtbl.replace t.send_spill msg ev
    | Event.Receive { msg } ->
      if dense t msg then t.msg_recv.(msg) <- ev else Hashtbl.replace t.recv_spill msg ev
    | Event.Internal -> ()
  end;
  if t.retain then begin
    Vec.push t.store.(tr) ev;
    Vec.push t.log ev
  end;
  t.ingested <- t.ingested + 1;
  t.notified <- t.notified + Array.length t.subscribers;
  Array.iter (fun f -> f ev) t.subscribers;
  ev

let check_retained t fn =
  if not t.retain then failwith (fn ^ ": store was created with retain:false")

let events_on t tr =
  check_retained t "Poet.events_on";
  Vec.to_array t.store.(tr)

let all_events t =
  check_retained t "Poet.all_events";
  Vec.to_list t.log

let find_partner t (ev : Event.t) =
  match ev.kind with
  | Event.Send { msg } ->
    if dense t msg then
      let p = t.msg_recv.(msg) in
      if p != no_event then Some p else None
    else Hashtbl.find_opt t.recv_spill msg
  | Event.Receive { msg } ->
    if dense t msg then
      let p = t.msg_send.(msg) in
      if p != no_event then Some p else None
    else Hashtbl.find_opt t.send_spill msg
  | Event.Internal -> None

(* ------------------------------------------------------------------ *)
(* Dump / reload                                                       *)
(* ------------------------------------------------------------------ *)

let dump_header ~trace_names oc =
  Printf.fprintf oc "poet-dump 1\ntraces %d\n" (Array.length trace_names);
  Array.iter (fun n -> Printf.fprintf oc "%S\n" n) trace_names

let kind_tag = function
  | Event.Send { msg } -> Printf.sprintf "S %d" msg
  | Event.Receive { msg } -> Printf.sprintf "R %d" msg
  | Event.Internal -> "I"

let dump_raw oc (raw : Event.raw) =
  Printf.fprintf oc "E %d %S %S %s\n" raw.r_trace raw.r_etype raw.r_text (kind_tag raw.r_kind)

let load ic =
  let line () = try Some (input_line ic) with End_of_file -> None in
  (match line () with
  | Some "poet-dump 1" -> ()
  | _ -> failwith "Poet.load: bad magic");
  let n =
    match line () with
    | Some l -> (try Scanf.sscanf l "traces %d" (fun n -> n) with _ -> failwith "Poet.load: bad trace count")
    | None -> failwith "Poet.load: truncated header"
  in
  let names =
    Array.init n (fun _ ->
        match line () with
        | Some l -> (try Scanf.sscanf l "%S" (fun s -> s) with _ -> failwith "Poet.load: bad trace name")
        | None -> failwith "Poet.load: truncated names")
  in
  let parse_event l =
    try
      Scanf.sscanf l "E %d %S %S %s %s" (fun tr etype text tag rest ->
          let kind =
            match tag with
            | "S" -> Event.Send { msg = int_of_string rest }
            | "R" -> Event.Receive { msg = int_of_string rest }
            | "I" -> Event.Internal
            | _ -> failwith "Poet.load: bad kind"
          in
          { Event.r_trace = tr; r_etype = etype; r_text = text; r_kind = kind })
    with Scanf.Scan_failure _ | End_of_file -> failwith ("Poet.load: bad event line: " ^ l)
  in
  let rec events acc =
    match line () with
    | None -> List.rev acc
    | Some "" -> events acc
    | Some l -> events (parse_event l :: acc)
  in
  (names, events [])
