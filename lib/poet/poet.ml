open Ocep_base
module A1 = Bigarray.Array1

(* Message ids are in practice small dense integers (the simulator and
   every workload draw them from a counter), so per-message state lives
   in arrays indexed by id — one load/store where a hashtable would
   hash, probe and allocate buckets — with a hashtable spill for ids
   that are negative or implausibly large. The arrays are off-heap
   Bigarrays: message ids grow linearly with the stream, and keeping
   the maps out of the OCaml heap keeps their doubling growth out of
   the GC entirely. Absent entries hold -1 (never a valid Vc_pool
   handle or arena eid). *)
let dense_cap = 1 lsl 20

type ibuf = (int, Bigarray.int_elt, Bigarray.c_layout) A1.t

(* The store is arena-backed: every ingested event becomes a row of int
   columns ([Arena.t]) plus an in-place clock update ([Vc_pool.t]), and
   is identified downstream by its dense eid. The boxed [Event.t] is a
   view, built eagerly only when a boxed client needs it (a [subscribe]
   subscriber, [retain], the [ingest] return value) and lazily otherwise
   ([materialize]). With only flat subscribers and [retain:false] the
   ingest path allocates nothing on the OCaml heap. *)

type t = {
  names : string array;
  symbols : Symbol.t;  (* interning table for trace names, etypes, texts *)
  name_syms : int array;  (* trace -> symbol of its name *)
  trace_by_sym : int array;  (* name symbol -> first trace with that name *)
  retain : bool;
  partner_index : bool;
  arena : Arena.t;  (* one row per ingested event *)
  vcs : Vc_pool.t;  (* live clock rows + persisted snapshots *)
  mutable msg_vch : ibuf;  (* msg id -> sent-not-received snapshot handle *)
  mutable msg_send : ibuf;  (* msg id -> send eid *)
  mutable msg_recv : ibuf;  (* msg id -> receive eid *)
  pending_spill : (int, int) Hashtbl.t;
  send_spill : (int, int) Hashtbl.t;
  recv_spill : (int, int) Hashtbl.t;
  store : Event.t Vec.t array;  (* per trace, when retained *)
  log : Event.t Vec.t;  (* ingestion order, when retained *)
  mutable subscribers_rev : (Event.t -> unit) list;
  mutable subscribers : (Event.t -> unit) array;
      (* subscription-order cache of subscribers_rev for the ingest hot
         path; rebuilt on (rare) subscribe instead of appending with @ *)
  mutable flat_rev : (int -> unit) list;
  mutable flat_subscribers : (int -> unit) array;
  mutable ingested : int;
  mutable notified : int;  (* subscriber callbacks invoked, both kinds *)
  mutable last_boxed : Event.t;
      (* boxed view of the event being ingested; [Event.none] when no
         boxed client forced it, so [ingest] can reuse instead of
         rebuilding *)
  (* intern memos for the two hot ingest strings: event streams repeat
     the same etype/text values — usually the physically same string
     (literals, memoized names) — so a physical-equality hit skips the
     hash probe entirely. Etypes are shared literals across traces, so
     a global two-slot memo holds an alternating pair of sites. Texts
     are typically per-trace constants (peer names, process labels)
     that interleave across traces and thrash a global memo, so they
     get two slots per trace. [-1] symbols mark empty slots. *)
  mutable last_etype : string;
  mutable last_esym : int;
  mutable last_etype2 : string;
  mutable last_esym2 : int;
  memo_text : string array;  (* per trace, most recent *)
  memo_xsym : int array;
  memo_text2 : string array;  (* per trace, one before *)
  memo_xsym2 : int array;
}

let create ?(retain = false) ?(partner_index = true) ~trace_names () =
  let n = Array.length trace_names in
  let symbols = Symbol.create () in
  (* trace names are interned first so every name symbol is small and the
     reverse map is a dense array; duplicate names share a symbol and
     resolve to the first trace, matching [trace_of_name] *)
  let name_syms = Array.map (Symbol.intern symbols) trace_names in
  let trace_by_sym = Array.make (Symbol.size symbols) (-1) in
  Array.iteri (fun tr sym -> if trace_by_sym.(sym) < 0 then trace_by_sym.(sym) <- tr) name_syms;
  {
    names = Array.copy trace_names;
    symbols;
    name_syms;
    trace_by_sym;
    retain;
    partner_index;
    arena = Arena.create ();
    vcs = Vc_pool.create ~dim:n ();
    msg_vch = A1.create Bigarray.int Bigarray.c_layout 0;
    msg_send = A1.create Bigarray.int Bigarray.c_layout 0;
    msg_recv = A1.create Bigarray.int Bigarray.c_layout 0;
    pending_spill = Hashtbl.create 16;
    send_spill = Hashtbl.create 16;
    recv_spill = Hashtbl.create 16;
    store = Array.init n (fun _ -> Vec.create ());
    log = Vec.create ();
    subscribers_rev = [];
    subscribers = [||];
    flat_rev = [];
    flat_subscribers = [||];
    ingested = 0;
    notified = 0;
    last_boxed = Event.none;
    last_etype = "";
    last_esym = -1;
    last_etype2 = "";
    last_esym2 = -1;
    memo_text = Array.make (max 1 n) "";
    memo_xsym = Array.make (max 1 n) (-1);
    memo_text2 = Array.make (max 1 n) "";
    memo_xsym2 = Array.make (max 1 n) (-1);
  }

let trace_count t = Array.length t.names

let dense_capacity = dense_cap

let trace_names t = Array.copy t.names

let trace_of_name t name =
  let n = Array.length t.names in
  let rec loop i = if i >= n then None else if t.names.(i) = name then Some i else loop (i + 1) in
  loop 0

let symbols t = t.symbols

let arena t = t.arena

let vc_pool t = t.vcs

let clock_entry t ~trace ~entry = Vc_pool.get t.vcs ~trace ~entry

let trace_of_sym t sym =
  if sym < 0 || sym >= Array.length t.trace_by_sym then None
  else
    let tr = t.trace_by_sym.(sym) in
    if tr < 0 then None else Some tr

let subscribe t f =
  t.subscribers_rev <- f :: t.subscribers_rev;
  t.subscribers <- Array.of_list (List.rev t.subscribers_rev)

let subscribe_flat t f =
  t.flat_rev <- f :: t.flat_rev;
  t.flat_subscribers <- Array.of_list (List.rev t.flat_rev)

let ingested t = t.ingested

let notifications t = t.notified

let dense t msg = msg >= 0 && msg < dense_cap && msg < A1.dim t.msg_vch

let grow_dense t msg =
  let cur = A1.dim t.msg_vch in
  let n = ref (max 1024 (cur * 2)) in
  while msg >= !n do
    n := !n * 2
  done;
  let grow a =
    let b = A1.create Bigarray.int Bigarray.c_layout !n in
    A1.fill b (-1);
    if cur > 0 then A1.blit a (A1.sub b 0 cur);
    b
  in
  t.msg_vch <- grow t.msg_vch;
  t.msg_send <- grow t.msg_send;
  t.msg_recv <- grow t.msg_recv

(* Build the boxed view of an arena row. Communication events decode
   their persisted snapshot; internal events have none, so they are only
   materializable while their trace's live row still is their clock —
   i.e. until the trace's next event. The engine materializes during
   dispatch (before any later ingest), and histories keep the boxed
   record from then on, so the window is never a constraint in the
   monitoring pipeline. *)
let materialize t eid =
  let ar = t.arena in
  let tr = Arena.trace ar eid in
  let idx = Arena.index ar eid in
  let esym = Arena.esym ar eid in
  let xsym = Arena.xsym ar eid in
  let h = Arena.vch ar eid in
  let vc =
    if h >= 0 then Vclock.unsafe_of_array (Vc_pool.to_array t.vcs h)
    else if Vc_pool.get t.vcs ~trace:tr ~entry:tr = idx then
      Vclock.unsafe_of_array (Vc_pool.current_to_array t.vcs ~trace:tr)
    else
      failwith
        (Printf.sprintf
           "Poet.materialize: internal event %d (trace %d, index %d) has no persisted clock \
            and its trace has moved on"
           eid tr idx)
  in
  {
    Event.trace = tr;
    trace_name = t.names.(tr);
    index = idx;
    etype = Symbol.name t.symbols esym;
    text = Symbol.name t.symbols xsym;
    tsym = Arena.tsym ar eid;
    esym;
    xsym;
    kind = Arena.kind ar eid;
    vc;
  }

let intern_etype t s =
  if t.last_esym >= 0 && (s == t.last_etype || String.equal s t.last_etype) then t.last_esym
  else if t.last_esym2 >= 0 && (s == t.last_etype2 || String.equal s t.last_etype2) then
    t.last_esym2
  else begin
    let sym = Symbol.intern t.symbols s in
    t.last_etype2 <- t.last_etype;
    t.last_esym2 <- t.last_esym;
    t.last_etype <- s;
    t.last_esym <- sym;
    sym
  end

(* structural, not physical, comparison: producers typically rebuild
   the text string per event (sprintf'd peer names), so pointer hits
   never happen, while a short String.equal is still far cheaper than
   the intern table's hash + probe *)
let intern_text t tr s =
  let sym1 = Array.unsafe_get t.memo_xsym tr in
  if sym1 >= 0 && String.equal s (Array.unsafe_get t.memo_text tr) then sym1
  else begin
    let sym2 = Array.unsafe_get t.memo_xsym2 tr in
    if sym2 >= 0 && String.equal s (Array.unsafe_get t.memo_text2 tr) then sym2
    else begin
      let sym = Symbol.intern t.symbols s in
      Array.unsafe_set t.memo_text2 tr (Array.unsafe_get t.memo_text tr);
      Array.unsafe_set t.memo_xsym2 tr sym1;
      Array.unsafe_set t.memo_text tr s;
      Array.unsafe_set t.memo_xsym tr sym;
      sym
    end
  end

let ingest_flat t (raw : Event.raw) =
  let tr = raw.r_trace in
  if tr < 0 || tr >= Array.length t.names then
    failwith (Printf.sprintf "Poet.ingest: trace %d out of range" tr);
  let ktag, msg, vch, idx =
    match raw.r_kind with
    | Event.Send { msg } ->
      let idx = Vc_pool.tick t.vcs ~trace:tr in
      let h = Vc_pool.snapshot t.vcs ~trace:tr in
      if msg >= 0 && msg < dense_cap then begin
        if msg >= A1.dim t.msg_vch then grow_dense t msg;
        A1.set t.msg_vch msg h
      end
      else Hashtbl.replace t.pending_spill msg h;
      (Arena.k_send, msg, h, idx)
    | Event.Receive { msg } ->
      let sent =
        if dense t msg && A1.get t.msg_vch msg >= 0 then begin
          let h = A1.get t.msg_vch msg in
          A1.set t.msg_vch msg (-1);
          h
        end
        else begin
          match Hashtbl.find t.pending_spill msg with
          | h ->
            Hashtbl.remove t.pending_spill msg;
            h
          | exception Not_found ->
            failwith (Printf.sprintf "Poet.ingest: receive of unknown message %d" msg)
        end
      in
      (* merge then tick: the sender's knowledge of [tr] can only lag
         the live row (its events were ingested earlier), so the merge
         never touches the own entry and the tick lands on own+1 —
         exactly [Vclock.tick_merge]. [recv_update] fuses all three
         steps into one row pass. *)
      let h = Vc_pool.recv_update t.vcs ~trace:tr sent in
      (Arena.k_recv, msg, h, Vc_pool.get t.vcs ~trace:tr ~entry:tr)
    | Event.Internal ->
      let idx = Vc_pool.tick t.vcs ~trace:tr in
      (Arena.k_internal, -1, Vc_pool.nil, idx)
  in
  let esym = intern_etype t raw.r_etype in
  let xsym = intern_text t tr raw.r_text in
  let eid =
    Arena.push t.arena ~trace:tr ~index:idx ~tsym:t.name_syms.(tr) ~esym ~xsym ~kind:ktag ~msg
      ~vch
  in
  if t.partner_index && ktag <> Arena.k_internal then
    if ktag = Arena.k_send then begin
      if dense t msg then A1.set t.msg_send msg eid else Hashtbl.replace t.send_spill msg eid
    end
    else if dense t msg then A1.set t.msg_recv msg eid
    else Hashtbl.replace t.recv_spill msg eid;
  t.ingested <- t.ingested + 1;
  let nboxed = Array.length t.subscribers in
  if t.retain || nboxed > 0 then begin
    let ev =
      {
        Event.trace = tr;
        trace_name = t.names.(tr);
        index = idx;
        etype = raw.r_etype;
        text = raw.r_text;
        tsym = t.name_syms.(tr);
        esym;
        xsym;
        kind = raw.r_kind;
        vc = Vclock.unsafe_of_array (Vc_pool.current_to_array t.vcs ~trace:tr);
      }
    in
    t.last_boxed <- ev;
    if t.retain then begin
      Vec.push t.store.(tr) ev;
      Vec.push t.log ev
    end
  end
  else if t.last_boxed != Event.none then t.last_boxed <- Event.none;
  let flats = t.flat_subscribers in
  let nflat = Array.length flats in
  t.notified <- t.notified + nboxed + nflat;
  (* flat subscribers first: the engine registers at creation, before
     any boxed client, so record-mode observers keep seeing a
     post-dispatch engine either way *)
  for i = 0 to nflat - 1 do
    (Array.unsafe_get flats i) eid
  done;
  if nboxed > 0 then begin
    let ev = t.last_boxed in
    let subs = t.subscribers in
    for i = 0 to nboxed - 1 do
      (Array.unsafe_get subs i) ev
    done
  end;
  eid

let ingest t (raw : Event.raw) =
  let eid = ingest_flat t raw in
  if t.last_boxed != Event.none then t.last_boxed
  else
    (* no boxed client forced a view during ingest; the live row is
       still this event's clock, so build it from the raw strings *)
    let tr = raw.r_trace in
    {
      Event.trace = tr;
      trace_name = t.names.(tr);
      index = Arena.index t.arena eid;
      etype = raw.r_etype;
      text = raw.r_text;
      tsym = t.name_syms.(tr);
      esym = Arena.esym t.arena eid;
      xsym = Arena.xsym t.arena eid;
      kind = raw.r_kind;
      vc = Vclock.unsafe_of_array (Vc_pool.current_to_array t.vcs ~trace:tr);
    }

let check_retained t fn =
  if not t.retain then failwith (fn ^ ": store was created with retain:false")

let events_on t tr =
  check_retained t "Poet.events_on";
  Vec.to_array t.store.(tr)

let all_events t =
  check_retained t "Poet.all_events";
  Vec.to_list t.log

let partner_eid t (ev : Event.t) =
  match ev.kind with
  | Event.Send { msg } ->
    if dense t msg then A1.get t.msg_recv msg
    else ( match Hashtbl.find_opt t.recv_spill msg with Some e -> e | None -> -1)
  | Event.Receive { msg } ->
    if dense t msg then A1.get t.msg_send msg
    else ( match Hashtbl.find_opt t.send_spill msg with Some e -> e | None -> -1)
  | Event.Internal -> -1

let find_partner t ev =
  let eid = partner_eid t ev in
  if eid < 0 then None else Some (materialize t eid)

(* ------------------------------------------------------------------ *)
(* Dump / reload                                                       *)
(* ------------------------------------------------------------------ *)

let dump_header ~trace_names oc =
  Printf.fprintf oc "poet-dump 1\ntraces %d\n" (Array.length trace_names);
  Array.iter (fun n -> Printf.fprintf oc "%S\n" n) trace_names

let kind_tag = function
  | Event.Send { msg } -> Printf.sprintf "S %d" msg
  | Event.Receive { msg } -> Printf.sprintf "R %d" msg
  | Event.Internal -> "I"

let dump_raw oc (raw : Event.raw) =
  Printf.fprintf oc "E %d %S %S %s\n" raw.r_trace raw.r_etype raw.r_text (kind_tag raw.r_kind)

let load ic =
  let line () = try Some (input_line ic) with End_of_file -> None in
  (match line () with
  | Some "poet-dump 1" -> ()
  | _ -> failwith "Poet.load: bad magic");
  let n =
    match line () with
    | Some l -> (try Scanf.sscanf l "traces %d" (fun n -> n) with _ -> failwith "Poet.load: bad trace count")
    | None -> failwith "Poet.load: truncated header"
  in
  let names =
    Array.init n (fun _ ->
        match line () with
        | Some l -> (try Scanf.sscanf l "%S" (fun s -> s) with _ -> failwith "Poet.load: bad trace name")
        | None -> failwith "Poet.load: truncated names")
  in
  let parse_event l =
    try
      Scanf.sscanf l "E %d %S %S %s %s" (fun tr etype text tag rest ->
          let kind =
            match tag with
            | "S" -> Event.Send { msg = int_of_string rest }
            | "R" -> Event.Receive { msg = int_of_string rest }
            | "I" -> Event.Internal
            | _ -> failwith "Poet.load: bad kind"
          in
          { Event.r_trace = tr; r_etype = etype; r_text = text; r_kind = kind })
    with Scanf.Scan_failure _ | End_of_file -> failwith ("Poet.load: bad event line: " ^ l)
  in
  let rec events acc =
    match line () with
    | None -> List.rev acc
    | Some "" -> events acc
    | Some l -> events (parse_event l :: acc)
  in
  (names, events [])
