(** The Partial-Order Event Tracer substrate.

    This is the OCaml stand-in for POET (Kunz, Black, Taylor, Basten 1997):
    it receives the raw events of a target system grouped by traces,
    assigns Fidge/Mattern vector timestamps, and hands events to client
    subscribers in a linearization of the causal partial order. It also
    supports the dump/reload workflow the paper's evaluation uses: save a
    collected execution to a file and replay it later through the same
    client interface.

    Events must be ingested in a valid linearization (a receive after its
    send); the simulator's emission order is one. [Linearize] can reshuffle
    a dump into a different valid linearization. *)

open Ocep_base

type t

val create :
  ?retain:bool -> ?partner_index:bool -> trace_names:string array -> unit -> t
(** [retain] (default [false]) keeps every timestamped event in the
    per-trace store — needed by offline oracles and tests, too expensive
    for million-event monitoring runs. *)

val trace_count : t -> int
val trace_names : t -> string array
val trace_of_name : t -> string -> int option

val dense_capacity : int
(** Message ids in [0, dense_capacity) use the dense per-message-id
    arrays for vector-clock and partner lookup; ids outside (negative or
    past the cap) spill to hashtables. Exposed so tests can exercise the
    dense/sparse boundary. *)

val symbols : t -> Symbol.t
(** The store's interning table. Trace names are interned at [create];
    every etype and text is interned at [ingest], so the [tsym]/[esym]/
    [xsym] fields of emitted events are ids in this table. *)

val arena : t -> Arena.t
(** The flat struct-of-arrays row store backing this POET: one row per
    ingested event, indexed by the eids handed to flat subscribers.
    Read-only for clients. *)

val vc_pool : t -> Vc_pool.t
(** The clock pool backing this POET: live per-trace rows plus the
    interval-compressed snapshots referenced by the arena's [vch]
    column. Read-only for clients. *)

val clock_entry : t -> trace:int -> entry:int -> int
(** One entry of a trace's live clock — [entry]'s index in the causal
    past of [trace]'s latest event (its own event count when
    [entry = trace]). O(1), no allocation. *)

val trace_of_sym : t -> int -> int option
(** [trace_of_sym t s] is the trace whose name has symbol [s] — the
    integer twin of {!trace_of_name}, with the same first-trace-wins
    semantics for duplicate names. Total: unknown ids answer [None]. *)

val subscribe : t -> (Event.t -> unit) -> unit
(** Register a boxed client callback, invoked with the materialized
    [Event.t] of every subsequently ingested event, in ingestion order.
    Having at least one boxed subscriber forces a boxed record per
    ingest; allocation-free clients use {!subscribe_flat}. *)

val subscribe_flat : t -> (int -> unit) -> unit
(** Register a flat client callback, invoked with the eid of every
    subsequently ingested event. Flat subscribers run before boxed ones
    and cost no per-event allocation; the callback reads columns via
    {!arena} / {!clock_entry} and calls {!materialize} only when it
    needs the boxed view. *)

val ingest : t -> Event.raw -> Event.t
(** Timestamp, optionally store, fan out to subscribers, and return the
    event. Raises [Failure] if the event is a receive for an unknown
    message (i.e. the input order is not a linearization) or if the trace
    id is out of range. *)

val ingest_flat : t -> Event.raw -> int
(** [ingest] without the boxed return value: timestamp, push the arena
    row, fan out, return the eid. With no boxed subscribers and
    [retain:false] this path performs no OCaml-heap allocation per
    event. Same failure cases as {!ingest}. *)

val materialize : t -> int -> Event.t
(** The boxed view of an arena row. Communication events decode their
    persisted clock snapshot and can be materialized at any later time;
    an internal event only until its trace ingests another event (its
    clock lives in the trace's in-place row) — afterwards [Failure] is
    raised. Each call builds a fresh record; results are
    content-identical (and [Event.equal]) to the event a boxed
    subscriber saw, not physically equal to it. *)

val ingested : t -> int
(** Number of events ingested so far. *)

val notifications : t -> int
(** Subscriber callbacks invoked so far (ingested events × subscribers
    at the time of each ingestion) — the substrate's fan-out volume,
    exported by the engine's telemetry. *)

val events_on : t -> int -> Event.t array
(** Retained events of a trace, in trace order. Raises [Failure] if the
    store was created with [retain:false]. *)

val all_events : t -> Event.t list
(** All retained events in ingestion order. Raises like {!events_on}. *)

val find_partner : t -> Event.t -> Event.t option
(** The partner of a retained send/receive event (matching receive/send),
    if it has been ingested. Works regardless of [retain]: partner links
    for sends are kept until consumed and receives keep a link back. *)

(** {1 Dump / reload} *)

val dump_header : trace_names:string array -> out_channel -> unit
val dump_raw : out_channel -> Event.raw -> unit
(** Streaming dump: write the header once, then each raw event in
    ingestion order. *)

val load : in_channel -> string array * Event.raw list
(** Read back a dump: trace names and the raw events in dumped order.
    Raises [Failure] on a malformed file. *)
