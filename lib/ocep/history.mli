(** Per-class event histories (the leaf nodes of the pattern tree).

    Every event that class-matches a leaf is appended to that leaf's
    history on the event's trace, so within one history events are in
    trace order and both their indices and any entry of their vector
    timestamps are monotone — which is what lets the domain restriction
    work by binary search.

    Since PR 4 the physical storage is a {e class-indexed store}: leaves
    — of one pattern or of several patterns registered with the same
    engine — whose [process, type, text] class-matches the same events
    (equal {!Ocep_pattern.Compile.class_key}) can share one physical
    history. The per-leaf API below operates on a {e view} ({!t}) that
    maps each leaf of one pattern to its class, so the matcher and the
    baselines are unchanged; the engine allocates classes explicitly and
    adds each arrival once per class instead of once per leaf.

    The O(1) redundancy rule of Section V-D is applied on insertion, in
    the sound form the differential fuzzer forced us to (PR 6): when the
    trailing entries of the class history plus the new event form a block
    of {e consecutive} trace positions with equal attribute values inside
    one communication epoch, the oldest block member is evicted (unless it
    is a send — its message receipts keep it causally distinguishable) so
    that the last {!set_run_cap} block members are kept. Consecutiveness
    guarantees no event at all interposes; the epoch guarantees the block
    holds no mid-block communication (sends and receives advance the epoch
    before they are stored, so they can only start a block); and the run
    cap — maintained at the maximum registered pattern size — guarantees
    any match can remap its block events order-preservingly onto the kept
    suffix, with identical relations to everything outside the block.
    Matches and covered slots are preserved exactly. An optional hard cap
    bounds each history for arbitrarily long runs (oldest entries are
    dropped). With sharing, pruning and the cap apply once per class, not
    once per subscribed leaf. *)

open Ocep_base

type entry = { ev : Event.t; epoch : int }

type store
(** The physical class-indexed storage: communication epochs, one history
    per allocated class, and the drop/prune/eviction counters. One store
    is shared by every pattern of a multi-pattern engine. *)

type t
(** A leaf-indexed view of a store for one pattern: leaf [l] reads and
    writes the class the view was built with. Views are cheap (two arrays
    of length [k]) and share the store's storage. *)

(** {1 Store construction (the multi-pattern engine's interface)} *)

val create_store : n_traces:int -> pruning:bool -> ?max_per_trace:int -> unit -> store

val set_run_cap : store -> int -> unit
(** Raise the number of entries the pruning rule keeps per
    identical-event run (never lowers it; initially 1). Soundness
    requires it to be at least the leaf count of every pattern reading
    the store — the engine calls this with {!Ocep_pattern.Compile.size}
    at registration, and the standalone {!create} sets it from its net. *)

val alloc_class : store -> int
(** A fresh, empty class; its id. Ids of released classes are reused.
    Legacy store-owned allocation — the multi-pattern engine keys the
    store on discrimination-network node ids via {!ensure_class}
    instead. *)

val ensure_class : store -> int -> unit
(** Bind fresh, empty storage to an externally-allocated class id — the
    engine's path since the registry compiles into a discrimination
    network whose node ids key the store (the network owns allocation
    and recycling, keeping ids dense). Idempotent for an id already
    bound by the network discipline: a recycled id's slot was replaced
    with fresh storage at {!release_class} time. *)

val release_class : store -> int -> unit
(** Drop the class's storage (its entries leave {!store_entries}
    immediately, without counting as {!dropped}) and recycle the id. Only
    call once no live view references the class — the engine does this
    when the last pattern subscribed to a class is removed. *)

val class_count : store -> int
(** Allocated class ids are [0, class_count) (including released ones). *)

val view : store -> classes:(int array) -> t
(** The view mapping leaf [l] to class [classes.(l)]. The array is copied. *)

val store_of : t -> store

val class_id : t -> leaf:int -> int

val add_class : store -> cls:int -> Event.t -> unit
(** Append to the class's history on the event's trace (with pruning) —
    the engine's per-arrival write, executed once per matched class
    regardless of how many (pattern, leaf) pairs subscribe to it. *)

val note_comm_store : store -> Event.t -> unit

val note_comm_store_i : store -> trace:int -> comm:bool -> unit
(** [note_comm_store] for callers that carry the event as arena columns:
    advance [trace]'s communication epoch when [comm]. *)

val class_entries : store -> cls:int -> int

val store_entries : store -> int

val store_dropped : store -> int

val store_pruned : store -> int

val store_cap_evicted : store -> int

val store_epochs_total : store -> int

val gc_store : store -> thresholds:int array -> classes:bool array -> int
(** {!gc} by class id: drop dead entries of every class whose bit is set.
    With shared classes the engine enables a class only when {e every}
    subscribed (pattern, leaf) pair is GC-able — the sound (conservative)
    AND. Returns the number of entries dropped. *)

(** {1 Per-leaf view API (unchanged from the single-pattern engine)} *)

val create :
  Ocep_pattern.Compile.t -> n_traces:int -> pruning:bool -> ?max_per_trace:int -> unit -> t
(** Standalone compatibility constructor: a fresh store with one private
    class per leaf (no sharing) — exactly the pre-registry behavior, used
    by the baselines, the ablations and the tests. *)

val note_comm : t -> Event.t -> unit
(** Advance the communication epoch of the event's trace if the event is a
    send or a receive. Call on {e every} event, before {!add}. *)

val add : t -> leaf:int -> Event.t -> unit
(** Append to the leaf's class history on the event's trace (with
    pruning). When classes are shared, adding through two leaves of the
    same class stores the event twice — the engine adds per {e class}
    ({!add_class}) instead. *)

val on : t -> leaf:int -> trace:int -> entry Vec.t
(** The (live) history vector; callers must not mutate it. *)

val positions_for_text : t -> leaf:int -> trace:int -> int -> int Ocep_base.Vec.t option
(** Positions (ascending) of the leaf's entries on the trace whose text
    symbol equals the given id — the candidate index used when the leaf's
    text attribute is an exact string or an already-bound variable. *)

val generation : t -> leaf:int -> trace:int -> int
(** Monotone counter bumped on every mutation (append, pruning replace,
    cap eviction, GC drop) of the leaf's (class, trace) history. Equal
    generations at two instants mean the history is unchanged in between
    — the basis of the engine's "skip a pinned search whose slot saw
    nothing new since it last failed" filter. *)

val total_entries : t -> int
(** Current number of stored entries across the whole underlying store
    (all classes — for an engine view that is all patterns), the
    monitor's storage footprint. *)

val entries_for : t -> leaf:int -> int
(** Stored entries of the leaf's class across all traces. O(1):
    maintained as a per-class counter so the engine can use it as a work
    estimate on every terminating arrival. *)

val dropped : t -> int
(** Entries evicted by the [max_per_trace] cap or by {!gc} (not by the
    O(1) pruning rule). *)

val pruned : t -> int
(** Entries merged away by the O(1) pruning rule (oldest member of a
    consecutive identical-event block, see the module header). *)

val cap_evicted : t -> int
(** Entries evicted by the [max_per_trace] cap alone, i.e. {!dropped}
    minus GC drops. *)

val epochs_total : t -> int
(** Communication-epoch advances summed over all traces — one per
    send/receive seen by {!note_comm}. *)

val gc : t -> thresholds:int array -> leaves:bool array -> int
(** The paper's future-work extension: drop entries that can no longer
    generate new matches. [thresholds.(tr)] is the greatest trace index on
    [tr] already in the causal past of {e every} trace's frontier — any
    future event is causally after such entries, so for a leaf whose
    relation to every possible anchor leaf excludes [Before] (enabled via
    [leaves]) they are dead. Returns the number of entries dropped;
    rebuilds the text index of the affected histories. Per-leaf bits are
    OR-ed onto shared classes — only use this view-level entry point when
    every leaf sharing a class agrees (the engine computes the
    conservative AND and calls {!gc_store} directly). *)
