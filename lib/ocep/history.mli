(** Per-leaf event histories (the leaf nodes of the pattern tree).

    Every event that class-matches a leaf is appended to that leaf's
    history on the event's trace, so within one (leaf, trace) history
    events are in trace order and both their indices and any entry of
    their vector timestamps are monotone — which is what lets the domain
    restriction work by binary search.

    The O(1) redundancy rule of Section V-D is applied on insertion: if
    the previous event of the same leaf on the same trace has no send or
    receive event between itself and the new one (same communication
    epoch) and carries the same attribute values, it is replaced — the two
    events have identical causal relations to every event on other
    traces. An optional hard cap bounds each history for arbitrarily long
    runs (oldest entries are dropped). *)

open Ocep_base

type entry = { ev : Event.t; epoch : int }

type t

val create :
  Ocep_pattern.Compile.t -> n_traces:int -> pruning:bool -> ?max_per_trace:int -> unit -> t

val note_comm : t -> Event.t -> unit
(** Advance the communication epoch of the event's trace if the event is a
    send or a receive. Call on {e every} event, before {!add}. *)

val add : t -> leaf:int -> Event.t -> unit
(** Append to the leaf's history on the event's trace (with pruning). *)

val on : t -> leaf:int -> trace:int -> entry Vec.t
(** The (live) history vector; callers must not mutate it. *)

val positions_for_text : t -> leaf:int -> trace:int -> int -> int Ocep_base.Vec.t option
(** Positions (ascending) of the leaf's entries on the trace whose text
    symbol equals the given id — the candidate index used when the leaf's
    text attribute is an exact string or an already-bound variable. *)

val generation : t -> leaf:int -> trace:int -> int
(** Monotone counter bumped on every mutation (append, pruning replace,
    cap eviction, GC drop) of the (leaf, trace) history. Equal generations
    at two instants mean the history is unchanged in between — the basis
    of the engine's "skip a pinned search whose slot saw nothing new since
    it last failed" filter. *)

val total_entries : t -> int
(** Current number of stored entries across all leaves and traces, the
    monitor's storage footprint. *)

val entries_for : t -> leaf:int -> int
(** Stored entries of one leaf across all traces. O(1): maintained as a
    per-leaf counter so the engine can use it as a work estimate on every
    terminating arrival. *)

val dropped : t -> int
(** Entries evicted by the [max_per_trace] cap or by {!gc} (not by the
    O(1) pruning rule). *)

val pruned : t -> int
(** Entries merged away by the O(1) pruning rule (same epoch, same
    attributes as the previous entry). *)

val cap_evicted : t -> int
(** Entries evicted by the [max_per_trace] cap alone, i.e. {!dropped}
    minus GC drops. *)

val epochs_total : t -> int
(** Communication-epoch advances summed over all traces — one per
    send/receive seen by {!note_comm}. *)

val gc : t -> thresholds:int array -> leaves:bool array -> int
(** The paper's future-work extension: drop entries that can no longer
    generate new matches. [thresholds.(tr)] is the greatest trace index on
    [tr] already in the causal past of {e every} trace's frontier — any
    future event is causally after such entries, so for a leaf whose
    relation to every possible anchor leaf excludes [Before] (enabled via
    [leaves]) they are dead. Returns the number of entries dropped;
    rebuilds the text index of the affected histories. *)
