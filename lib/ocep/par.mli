(** Parallel search (Section VI's third future-work item).

    "At each backtracking level, the traces are traversed sequentially.
    Each of these traces represents a subtree in the total search space.
    This parallelism can be exploited."

    [search] partitions the first backtracking level by trace: one task
    per trace pins the first-level leaf to that trace and runs the
    ordinary sequential matcher; the subtrees are disjoint, so a match
    found by any task is a match of the whole search, and all tasks
    failing is exhaustive failure. A shared stop flag lets the remaining
    tasks return immediately once a match is found. *)

open Ocep_base
module Compile = Ocep_pattern.Compile

val search :
  pool:Pool.t ->
  net:Compile.inet ->
  history:History.t ->
  n_traces:int ->
  trace_of_sym:(int -> int option) ->
  partner_of:(Event.t -> Event.t option) ->
  anchor_leaf:int ->
  anchor:Event.t ->
  ?node_budget:int ->
  ?stats:Matcher.stats ->
  unit ->
  Matcher.outcome
(** Same contract as {!Matcher.search} without [pin]; [stats] is updated
    with the merged counters of all tasks. *)
