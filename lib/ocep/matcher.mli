(** The OCEP backtracking matcher (Algorithms 1–3).

    A search is anchored at a newly arrived event bound to one leaf. The
    remaining leaves are instantiated one backtracking level at a time in
    a connectivity order starting from the anchor. At each level the
    candidate domain on every trace is restricted by the causal relations
    to all already instantiated events (Fig. 4, {!Domain.restrict}) and
    candidates are tried newest-first. A wiped-out level jumps back to the
    deepest level it actually conflicts with — conflict-directed
    backjumping in the style of Prosser [33], which the paper's
    timestamp-recording goBackward realizes — rather than to the
    chronologically previous one.

    Leaves whose trace is pinned by an exact process attribute, by an
    already-bound process variable, or by the caller's [pin] argument
    iterate a single trace; this is what makes run time depend on the
    traces in the pattern rather than all traces (Section V-D).

    The matcher operates entirely on the interned view
    ({!Compile.inet}): attribute comparisons, variable bindings and the
    text-index lookups are integer compares of {!Ocep_base.Symbol} ids,
    never string operations. Conflict sets are level bitsets, which caps
    patterns at 62 leaves ([Invalid_argument] beyond). *)

open Ocep_base
module Compile = Ocep_pattern.Compile

type outcome =
  | Found of Event.t array  (** the match, indexed by leaf id *)
  | Not_found
  | Aborted  (** node budget exhausted *)

type stats = {
  mutable nodes : int;  (** candidates examined *)
  mutable backjumps : int;
  mutable searches : int;
  mutable miss_level : int;
      (** nearest miss: the deepest backtracking level any failed
          ([Not_found]) search reached — that many leaves were bound
          when the search got furthest; -1 until a search fails *)
  mutable miss_leaf : int;
      (** the leaf at {!miss_level}'s position in the evaluation order —
          the leaf that failed binding last; -1 until a search fails *)
}

val new_stats : unit -> stats

type plan
(** Precomputed per-[(net, anchor_leaf)] search strategy: the evaluation
    order, its inverse, and the partner adjacency. These are pure
    functions of the pattern and the anchor leaf, so callers issuing many
    searches for the same anchor leaf (the engine, the parallel fan-out)
    build the plan once instead of re-deriving it per search. Plans are
    immutable and safe to share across domains. *)

val plan : net:Compile.inet -> anchor_leaf:int -> plan
(** Raises [Invalid_argument] for patterns over 62 leaves. *)

val search :
  ?plan:plan ->
  net:Compile.inet ->
  history:History.t ->
  n_traces:int ->
  trace_of_sym:(int -> int option) ->
  partner_of:(Event.t -> Event.t option) ->
  anchor_leaf:int ->
  anchor:Event.t ->
  ?pin:int * int ->
  ?node_budget:int ->
  ?stats:stats ->
  unit ->
  outcome
(** Find one complete match that instantiates [anchor_leaf] with [anchor];
    with [pin = (leaf, trace)], the match must additionally instantiate
    [leaf] on [trace]. [node_budget] bounds the nodes expanded by {e this}
    search ([Aborted] once exceeded) even when a cumulative [stats] record
    is shared across searches. [plan] must have been built with {!plan}
    for the same [net] and [anchor_leaf] (checked for the anchor leaf);
    omitted, it is derived on the spot. Raises [Invalid_argument] if the
    anchor event does not class-match the anchor leaf, if [pin] names the
    anchor leaf with a different trace, or on a plan/anchor mismatch. *)

val first_search_leaf : net:Compile.inet -> anchor_leaf:int -> int option
(** The leaf instantiated at the first backtracking level for this anchor
    (per the evaluation-order heuristic), or [None] for single-leaf
    patterns — the level whose trace iteration {!Par} parallelizes. *)

val enumerate :
  ?plan:plan ->
  net:Compile.inet ->
  history:History.t ->
  n_traces:int ->
  trace_of_sym:(int -> int option) ->
  partner_of:(Event.t -> Event.t option) ->
  anchor_leaf:int ->
  anchor:Event.t ->
  ?limit:int ->
  (Event.t array -> unit) ->
  unit
(** All matches anchored at the event, by exhaustive chronological
    backtracking over the same pruned domains (used by tests, the oracle
    comparisons, and the Fig. 3 demonstration). *)
