(** The OCEP backtracking matcher (Algorithms 1–3).

    A search is anchored at a newly arrived event bound to one leaf. The
    remaining leaves are instantiated one backtracking level at a time in
    a connectivity order starting from the anchor. At each level the
    candidate domain on every trace is restricted by the causal relations
    to all already instantiated events (Fig. 4, {!Domain.restrict}) and
    candidates are tried newest-first. A wiped-out level jumps back to the
    deepest level it actually conflicts with — conflict-directed
    backjumping in the style of Prosser [33], which the paper's
    timestamp-recording goBackward realizes — rather than to the
    chronologically previous one.

    Leaves whose trace is pinned by an exact process attribute, by an
    already-bound process variable, or by the caller's [pin] argument
    iterate a single trace; this is what makes run time depend on the
    traces in the pattern rather than all traces (Section V-D). *)

open Ocep_base
module Compile = Ocep_pattern.Compile

type outcome =
  | Found of Event.t array  (** the match, indexed by leaf id *)
  | Not_found
  | Aborted  (** node budget exhausted *)

type stats = {
  mutable nodes : int;  (** candidates examined *)
  mutable backjumps : int;
  mutable searches : int;
}

val new_stats : unit -> stats

val search :
  net:Compile.t ->
  history:History.t ->
  n_traces:int ->
  trace_of_name:(string -> int option) ->
  partner_of:(Event.t -> Event.t option) ->
  anchor_leaf:int ->
  anchor:Event.t ->
  ?pin:int * int ->
  ?node_budget:int ->
  ?stats:stats ->
  unit ->
  outcome
(** Find one complete match that instantiates [anchor_leaf] with [anchor];
    with [pin = (leaf, trace)], the match must additionally instantiate
    [leaf] on [trace]. [node_budget] bounds the nodes expanded by {e this}
    search ([Aborted] once exceeded) even when a cumulative [stats] record
    is shared across searches. Raises [Invalid_argument] if the anchor
    event does not class-match the anchor leaf, or if [pin] names the
    anchor leaf with a different trace. *)

val first_search_leaf : net:Compile.t -> anchor_leaf:int -> int option
(** The leaf instantiated at the first backtracking level for this anchor
    (per the evaluation-order heuristic), or [None] for single-leaf
    patterns — the level whose trace iteration {!Par} parallelizes. *)

val enumerate :
  net:Compile.t ->
  history:History.t ->
  n_traces:int ->
  trace_of_name:(string -> int option) ->
  partner_of:(Event.t -> Event.t option) ->
  anchor_leaf:int ->
  anchor:Event.t ->
  ?limit:int ->
  (Event.t array -> unit) ->
  unit
(** All matches anchored at the event, by exhaustive chronological
    backtracking over the same pruned domains (used by tests, the oracle
    comparisons, and the Fig. 3 demonstration). *)
