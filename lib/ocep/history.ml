open Ocep_base
module Compile = Ocep_pattern.Compile
module Itbl = Hashtbl.Make (Int)

type entry = { ev : Event.t; epoch : int }

(* One physical event-class history: every leaf (of any pattern) whose
   [process, type, text] class-matches the same events shares one of
   these. All counters that used to be per leaf live here, per class. *)
type cls = {
  hist : entry Vec.t array;  (* trace -> entries *)
  by_text : int Vec.t Itbl.t array;
      (* trace -> text symbol -> positions (ascending); lets a bound
         text variable index its candidates instead of scanning the history *)
  gens : int array;
      (* trace -> generation, bumped on every mutation of that
         (class, trace) history; lets the engine detect "unchanged since
         the last failed pinned search" without hashing contents *)
  mutable count : int;  (* live entries across traces, O(1) entries_for *)
}

type store = {
  pruning : bool;
  mutable run_cap : int;
      (* entries kept per identical-event run; must be >= the leaf count
         of every registered pattern — a match binds at most that many
         events of one run, so keeping the last [run_cap] loses nothing *)
  max_per_trace : int option;
  n_traces : int;
  epochs : int array;  (* communication events seen per trace *)
  classes : cls Vec.t;
      (* class id -> history; ids are the engine's automaton node ids
         (bound via ensure_class) or, for standalone views, alloc_class's *)
  mutable free : int list;  (* ids released by release_class, for reuse *)
  mutable total : int;  (* live entries across all classes, O(1) *)
  mutable dropped : int;
  mutable pruned : int;  (* entries merged away by the O(1) pruning rule *)
  mutable cap_evicted : int;  (* entries evicted by the max_per_trace cap *)
}

(* A leaf-indexed view of a store: the reading/writing API the matcher
   and the baselines use is per leaf, so a view maps each leaf of one
   pattern to its (possibly shared) class. *)
type t = {
  store : store;
  cls_of : cls array;  (* leaf -> its class record, O(1) hot path *)
  cls_ids : int array;  (* leaf -> class id in the store *)
}

let fresh_cls n_traces =
  {
    hist = Array.init n_traces (fun _ -> Vec.create ());
    by_text = Array.init n_traces (fun _ -> Itbl.create 8);
    gens = Array.make n_traces 0;
    count = 0;
  }

let create_store ~n_traces ~pruning ?max_per_trace () =
  {
    pruning;
    run_cap = 1;
    max_per_trace;
    n_traces;
    epochs = Array.make n_traces 0;
    classes = Vec.create ();
    free = [];
    total = 0;
    dropped = 0;
    pruned = 0;
    cap_evicted = 0;
  }

let set_run_cap s k = if k > s.run_cap then s.run_cap <- k

let alloc_class s =
  match s.free with
  | id :: rest ->
    s.free <- rest;
    Vec.set s.classes id (fresh_cls s.n_traces);
    id
  | [] ->
    Vec.push s.classes (fresh_cls s.n_traces);
    Vec.length s.classes - 1

(* Bind storage for an externally-allocated class id — since the
   registry compiles into a discrimination network, the store is keyed
   on automaton node ids (the network owns allocation and recycling, so
   ids stay dense). A recycled id's slot already holds fresh storage
   (release replaced it); a brand-new id extends the vector. The id is
   pulled out of [free] so the legacy [alloc_class] path can never hand
   it out while bound. *)
let ensure_class s id =
  while Vec.length s.classes <= id do
    Vec.push s.classes (fresh_cls s.n_traces)
  done;
  s.free <- List.filter (fun x -> x <> id) s.free

let release_class s id =
  let c = Vec.get s.classes id in
  s.total <- s.total - c.count;
  (* replace the storage so a stale reference cannot resurrect it; the id
     is reused by a later alloc_class *)
  Vec.set s.classes id (fresh_cls s.n_traces);
  s.free <- id :: s.free

let class_count s = Vec.length s.classes

let view s ~classes =
  { store = s; cls_of = Array.map (Vec.get s.classes) classes; cls_ids = Array.copy classes }

let store_of t = t.store

let class_id t ~leaf = t.cls_ids.(leaf)

let create net ~n_traces ~pruning ?max_per_trace () =
  (* standalone compatibility constructor: one private class per leaf
     (no sharing), exactly the pre-registry behavior — the engine builds
     shared views through [create_store]/[alloc_class]/[view] instead *)
  let k = Compile.size net in
  let s = create_store ~n_traces ~pruning ?max_per_trace () in
  set_run_cap s k;
  view s ~classes:(Array.init k (fun _ -> alloc_class s))

let note_comm_store s (ev : Event.t) =
  if Event.is_comm ev then s.epochs.(ev.trace) <- s.epochs.(ev.trace) + 1

(* the arena dispatch path's twin of [note_comm_store]: the caller has
   the trace and comm-ness as ints already and no boxed event to offer *)
let note_comm_store_i s ~trace ~comm = if comm then s.epochs.(trace) <- s.epochs.(trace) + 1

let note_comm t ev = note_comm_store t.store ev

let index_push tbl xsym pos =
  let v =
    match Itbl.find_opt tbl xsym with
    | Some v -> v
    | None ->
      let v = Vec.create () in
      Itbl.replace tbl xsym v;
      v
  in
  Vec.push v pos

let bump_gen (c : cls) ~trace = c.gens.(trace) <- c.gens.(trace) + 1

(* Drop the first [drop] entries of one history and rebuild its text
   index (positions shift). *)
let drop_prefix_cls s (c : cls) ~trace drop =
  if drop > 0 then begin
    let v = c.hist.(trace) in
    let entries = Vec.to_array v in
    Vec.clear v;
    let tbl = c.by_text.(trace) in
    Itbl.reset tbl;
    Array.iteri
      (fun i e ->
        if i >= drop then begin
          index_push tbl e.ev.Event.xsym (Vec.length v);
          Vec.push v e
        end)
      entries;
    c.count <- c.count - drop;
    s.total <- s.total - drop;
    bump_gen c ~trace;
    s.dropped <- s.dropped + drop
  end

(* Drop the oldest half when over the cap (amortized O(1) per insertion). *)
let enforce_cap s c ~trace v =
  match s.max_per_trace with
  | Some cap when Vec.length v > cap ->
    let keep = (cap / 2) + 1 in
    s.cap_evicted <- s.cap_evicted + (Vec.length v - keep);
    drop_prefix_cls s c ~trace (Vec.length v - keep)
  | _ -> ()

let same_attrs (a : Event.t) (b : Event.t) =
  (* symbols of the same store: int equality is string equality *)
  a.esym = b.esym && a.xsym = b.xsym

(* Merge the new entry over the oldest member of the trailing run iff the
   trailing [run_cap] entries plus the new event form a block of
   consecutive trace positions (index gap exactly [run_cap] — nothing at
   all, monitored or not, interposes) with equal attributes and one
   communication epoch, and the evicted entry is not a send. Sends and
   receives bump their trace's epoch before being stored, so a block can
   only start — never continue — with one; a surviving block-start send
   keeps its message receipts attributable, and every other block member
   has identical causal relations to every event outside the block. Any
   match binds at most [run_cap] block events (the cap is kept at the max
   registered pattern size), so it maps order-preservingly onto the kept
   suffix: matches and covered slots are preserved exactly. *)
let mergeable s v (entry : entry) =
  let rc = s.run_cap in
  let len = Vec.length v in
  s.pruning && len >= rc
  &&
  let victim = Vec.get v (len - rc) in
  victim.ev.Event.index + rc = entry.ev.Event.index
  && (match victim.ev.Event.kind with Event.Send _ -> false | _ -> true)
  &&
  let ok = ref true in
  for i = len - rc to len - 1 do
    let e = Vec.get v i in
    if not (e.epoch = entry.epoch && same_attrs e.ev entry.ev) then ok := false
  done;
  !ok

let add_cls s (c : cls) (ev : Event.t) =
  let v = c.hist.(ev.trace) in
  let entry = { ev; epoch = s.epochs.(ev.trace) } in
  if mergeable s v entry then begin
    (* the whole block shares one text symbol, so shifting entries within
       it and rewriting the last slot keeps the text index valid *)
    let len = Vec.length v in
    for i = len - s.run_cap to len - 2 do
      Vec.set v i (Vec.get v (i + 1))
    done;
    Vec.set v (len - 1) entry;
    s.pruned <- s.pruned + 1;
    bump_gen c ~trace:ev.trace
  end
  else begin
    index_push c.by_text.(ev.trace) ev.xsym (Vec.length v);
    Vec.push v entry;
    c.count <- c.count + 1;
    s.total <- s.total + 1;
    bump_gen c ~trace:ev.trace;
    enforce_cap s c ~trace:ev.trace v
  end

let add_class s ~cls ev = add_cls s (Vec.get s.classes cls) ev

let add t ~leaf ev = add_cls t.store t.cls_of.(leaf) ev

let on t ~leaf ~trace = t.cls_of.(leaf).hist.(trace)

let positions_for_text t ~leaf ~trace xsym = Itbl.find_opt t.cls_of.(leaf).by_text.(trace) xsym

let generation t ~leaf ~trace = t.cls_of.(leaf).gens.(trace)

let total_entries t = t.store.total

let store_entries s = s.total

let class_entries s ~cls = (Vec.get s.classes cls).count

let gc_store s ~thresholds ~classes =
  let dropped0 = s.dropped in
  Array.iteri
    (fun cid enabled ->
      if enabled then begin
        let c = Vec.get s.classes cid in
        Array.iteri
          (fun trace v ->
            let drop =
              Vec.binary_search_first v (fun (e : entry) -> e.ev.index > thresholds.(trace))
            in
            drop_prefix_cls s c ~trace drop)
          c.hist
      end)
    classes;
  s.dropped - dropped0

let gc t ~thresholds ~leaves =
  (* per-leaf enable bits mapped onto class ids; with shared classes the
     bits are OR-ed, so only use this view-level entry point when every
     leaf sharing a class agrees (the engine computes the AND itself and
     calls {!gc_store}) *)
  let classes = Array.make (class_count t.store) false in
  Array.iteri (fun leaf enabled -> if enabled then classes.(t.cls_ids.(leaf)) <- true) leaves;
  gc_store t.store ~thresholds ~classes

let entries_for t ~leaf = t.cls_of.(leaf).count

let dropped t = t.store.dropped

let pruned t = t.store.pruned

let cap_evicted t = t.store.cap_evicted

let epochs_total t = Array.fold_left ( + ) 0 t.store.epochs

let store_dropped s = s.dropped

let store_pruned s = s.pruned

let store_cap_evicted s = s.cap_evicted

let store_epochs_total s = Array.fold_left ( + ) 0 s.epochs
