open Ocep_base
module Compile = Ocep_pattern.Compile

type entry = { ev : Event.t; epoch : int }

type t = {
  net : Compile.t;
  pruning : bool;
  max_per_trace : int option;
  epochs : int array;  (* communication events seen per trace *)
  hist : entry Vec.t array array;  (* leaf -> trace -> entries *)
  by_text : (string, int Vec.t) Hashtbl.t array array;
      (* leaf -> trace -> text -> positions (ascending); lets a bound text
         variable index its candidates instead of scanning the history *)
  mutable dropped : int;
  mutable pruned : int;  (* entries merged away by the O(1) pruning rule *)
  mutable cap_evicted : int;  (* entries evicted by the max_per_trace cap *)
}

let create net ~n_traces ~pruning ?max_per_trace () =
  let k = Compile.size net in
  {
    net;
    pruning;
    max_per_trace;
    epochs = Array.make n_traces 0;
    hist = Array.init k (fun _ -> Array.init n_traces (fun _ -> Vec.create ()));
    by_text = Array.init k (fun _ -> Array.init n_traces (fun _ -> Hashtbl.create 8));
    dropped = 0;
    pruned = 0;
    cap_evicted = 0;
  }

let note_comm t (ev : Event.t) =
  if Event.is_comm ev then t.epochs.(ev.trace) <- t.epochs.(ev.trace) + 1

let index_push tbl text pos =
  let v =
    match Hashtbl.find_opt tbl text with
    | Some v -> v
    | None ->
      let v = Vec.create () in
      Hashtbl.replace tbl text v;
      v
  in
  Vec.push v pos

(* Drop the first [drop] entries of one history and rebuild its text
   index (positions shift). *)
let drop_prefix t ~leaf ~trace drop =
  if drop > 0 then begin
    let v = t.hist.(leaf).(trace) in
    let entries = Vec.to_array v in
    Vec.clear v;
    let tbl = t.by_text.(leaf).(trace) in
    Hashtbl.reset tbl;
    Array.iteri
      (fun i e ->
        if i >= drop then begin
          index_push tbl e.ev.Event.text (Vec.length v);
          Vec.push v e
        end)
      entries;
    t.dropped <- t.dropped + drop
  end

(* Drop the oldest half when over the cap (amortized O(1) per insertion). *)
let enforce_cap t ~leaf ~trace v =
  match t.max_per_trace with
  | Some cap when Vec.length v > cap ->
    let keep = (cap / 2) + 1 in
    t.cap_evicted <- t.cap_evicted + (Vec.length v - keep);
    drop_prefix t ~leaf ~trace (Vec.length v - keep)
  | _ -> ()

let same_attrs (a : Event.t) (b : Event.t) = a.etype = b.etype && a.text = b.text

let add t ~leaf (ev : Event.t) =
  let v = t.hist.(leaf).(ev.trace) in
  let entry = { ev; epoch = t.epochs.(ev.trace) } in
  let replaced =
    t.pruning
    &&
    match Vec.last v with
    | Some prev when prev.epoch = entry.epoch && same_attrs prev.ev ev ->
      (* same text, so the index entry for this position stays valid *)
      Vec.replace_last v entry;
      t.pruned <- t.pruned + 1;
      true
    | _ -> false
  in
  if not replaced then begin
    index_push t.by_text.(leaf).(ev.trace) ev.text (Vec.length v);
    Vec.push v entry;
    enforce_cap t ~leaf ~trace:ev.trace v
  end

let on t ~leaf ~trace = t.hist.(leaf).(trace)

let positions_for_text t ~leaf ~trace text = Hashtbl.find_opt t.by_text.(leaf).(trace) text

let total_entries t =
  Array.fold_left
    (fun acc per_trace -> Array.fold_left (fun acc v -> acc + Vec.length v) acc per_trace)
    0 t.hist

let gc t ~thresholds ~leaves =
  let dropped0 = t.dropped in
  Array.iteri
    (fun leaf enabled ->
      if enabled then
        Array.iteri
          (fun trace v ->
            let drop =
              Vec.binary_search_first v (fun (e : entry) -> e.ev.index > thresholds.(trace))
            in
            drop_prefix t ~leaf ~trace drop)
          t.hist.(leaf))
    leaves;
  t.dropped - dropped0

let entries_for t ~leaf =
  Array.fold_left (fun acc v -> acc + Vec.length v) 0 t.hist.(leaf)

let dropped t = t.dropped

let pruned t = t.pruned

let cap_evicted t = t.cap_evicted

let epochs_total t = Array.fold_left ( + ) 0 t.epochs
