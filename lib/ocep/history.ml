open Ocep_base
module Compile = Ocep_pattern.Compile
module Itbl = Hashtbl.Make (Int)

type entry = { ev : Event.t; epoch : int }

type t = {
  net : Compile.t;
  pruning : bool;
  max_per_trace : int option;
  epochs : int array;  (* communication events seen per trace *)
  hist : entry Vec.t array array;  (* leaf -> trace -> entries *)
  by_text : int Vec.t Itbl.t array array;
      (* leaf -> trace -> text symbol -> positions (ascending); lets a bound
         text variable index its candidates instead of scanning the history *)
  gens : int array array;
      (* leaf -> trace -> generation, bumped on every mutation of that
         (leaf, trace) history; lets the engine detect "unchanged since the
         last failed pinned search" without hashing contents *)
  counts : int array;  (* leaf -> live entries across traces, O(1) entries_for *)
  mutable dropped : int;
  mutable pruned : int;  (* entries merged away by the O(1) pruning rule *)
  mutable cap_evicted : int;  (* entries evicted by the max_per_trace cap *)
}

let create net ~n_traces ~pruning ?max_per_trace () =
  let k = Compile.size net in
  {
    net;
    pruning;
    max_per_trace;
    epochs = Array.make n_traces 0;
    hist = Array.init k (fun _ -> Array.init n_traces (fun _ -> Vec.create ()));
    by_text = Array.init k (fun _ -> Array.init n_traces (fun _ -> Itbl.create 8));
    gens = Array.make_matrix k n_traces 0;
    counts = Array.make k 0;
    dropped = 0;
    pruned = 0;
    cap_evicted = 0;
  }

let note_comm t (ev : Event.t) =
  if Event.is_comm ev then t.epochs.(ev.trace) <- t.epochs.(ev.trace) + 1

let index_push tbl xsym pos =
  let v =
    match Itbl.find_opt tbl xsym with
    | Some v -> v
    | None ->
      let v = Vec.create () in
      Itbl.replace tbl xsym v;
      v
  in
  Vec.push v pos

let bump_gen t ~leaf ~trace = t.gens.(leaf).(trace) <- t.gens.(leaf).(trace) + 1

(* Drop the first [drop] entries of one history and rebuild its text
   index (positions shift). *)
let drop_prefix t ~leaf ~trace drop =
  if drop > 0 then begin
    let v = t.hist.(leaf).(trace) in
    let entries = Vec.to_array v in
    Vec.clear v;
    let tbl = t.by_text.(leaf).(trace) in
    Itbl.reset tbl;
    Array.iteri
      (fun i e ->
        if i >= drop then begin
          index_push tbl e.ev.Event.xsym (Vec.length v);
          Vec.push v e
        end)
      entries;
    t.counts.(leaf) <- t.counts.(leaf) - drop;
    bump_gen t ~leaf ~trace;
    t.dropped <- t.dropped + drop
  end

(* Drop the oldest half when over the cap (amortized O(1) per insertion). *)
let enforce_cap t ~leaf ~trace v =
  match t.max_per_trace with
  | Some cap when Vec.length v > cap ->
    let keep = (cap / 2) + 1 in
    t.cap_evicted <- t.cap_evicted + (Vec.length v - keep);
    drop_prefix t ~leaf ~trace (Vec.length v - keep)
  | _ -> ()

let same_attrs (a : Event.t) (b : Event.t) =
  (* symbols of the same store: int equality is string equality *)
  a.esym = b.esym && a.xsym = b.xsym

let add t ~leaf (ev : Event.t) =
  let v = t.hist.(leaf).(ev.trace) in
  let entry = { ev; epoch = t.epochs.(ev.trace) } in
  let replaced =
    t.pruning
    &&
    match Vec.last v with
    | Some prev when prev.epoch = entry.epoch && same_attrs prev.ev ev ->
      (* same text, so the index entry for this position stays valid *)
      Vec.replace_last v entry;
      t.pruned <- t.pruned + 1;
      true
    | _ -> false
  in
  if replaced then bump_gen t ~leaf ~trace:ev.trace
  else begin
    index_push t.by_text.(leaf).(ev.trace) ev.xsym (Vec.length v);
    Vec.push v entry;
    t.counts.(leaf) <- t.counts.(leaf) + 1;
    bump_gen t ~leaf ~trace:ev.trace;
    enforce_cap t ~leaf ~trace:ev.trace v
  end

let on t ~leaf ~trace = t.hist.(leaf).(trace)

let positions_for_text t ~leaf ~trace xsym = Itbl.find_opt t.by_text.(leaf).(trace) xsym

let generation t ~leaf ~trace = t.gens.(leaf).(trace)

let total_entries t = Array.fold_left ( + ) 0 t.counts

let gc t ~thresholds ~leaves =
  let dropped0 = t.dropped in
  Array.iteri
    (fun leaf enabled ->
      if enabled then
        Array.iteri
          (fun trace v ->
            let drop =
              Vec.binary_search_first v (fun (e : entry) -> e.ev.index > thresholds.(trace))
            in
            drop_prefix t ~leaf ~trace drop)
          t.hist.(leaf))
    leaves;
  t.dropped - dropped0

let entries_for t ~leaf = t.counts.(leaf)

let dropped t = t.dropped

let pruned t = t.pruned

let cap_evicted t = t.cap_evicted

let epochs_total t = Array.fold_left ( + ) 0 t.epochs
