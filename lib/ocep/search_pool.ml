(* Each [run] publishes one batch record; workers snapshot the current
   batch under the pool mutex and then work only on that record. A slow
   worker still draining an old batch can therefore never touch a newer
   batch's counters: its batch's atomic cursor is exhausted, it grabs
   nothing, contributes nothing, and goes back to waiting. *)

type batch = {
  f : int -> unit;
  n : int;
  next : int Atomic.t;  (* shared task cursor *)
  mutable completed : int;  (* under the pool mutex *)
}

type t = {
  workers : int;  (* total, including the submitting domain *)
  m : Mutex.t;
  work : Condition.t;  (* new batch published, or shutdown *)
  finished : Condition.t;  (* some batch completed *)
  mutable current : batch option;
  mutable generation : int;
  mutable exn : exn option;  (* first exception of the current batch *)
  mutable down : bool;
  mutable domains : unit Stdlib.Domain.t list;
  tracer : Ocep_obs.Tracer.t option;
  busy_us : float array;  (* per worker index, under the pool mutex *)
  mutable fan_outs : int;  (* batches submitted *)
  mutable tasks_done : int;  (* tasks run across all batches *)
}

(* Pull task indices until the cursor runs off the end; report the count
   of tasks this domain ran in one mutex acquisition. [idx] is the
   worker's index (0 = the submitting domain) for the busy-time
   accounting; the drain span carries the actual domain id as its tid. *)
let drain t ~idx (b : batch) =
  let t0 = Ocep_base.Clock.now_us () in
  let rec loop ran =
    let i = Atomic.fetch_and_add b.next 1 in
    if i >= b.n then ran
    else begin
      (try b.f i
       with e ->
         Mutex.lock t.m;
         if t.exn = None then t.exn <- Some e;
         Mutex.unlock t.m);
      loop (ran + 1)
    end
  in
  let ran = loop 0 in
  let dt = Ocep_base.Clock.now_us () -. t0 in
  Mutex.lock t.m;
  if ran > 0 then t.busy_us.(idx) <- t.busy_us.(idx) +. dt;
  t.tasks_done <- t.tasks_done + ran;
  b.completed <- b.completed + ran;
  if b.completed >= b.n then Condition.broadcast t.finished;
  Mutex.unlock t.m;
  match t.tracer with
  | Some tr when ran > 0 ->
    Ocep_obs.Tracer.record tr ~name:"drain" ~cat:"pool" ~ts_us:t0 ~dur_us:dt
      ~tid:(Stdlib.Domain.self () :> int)
      ~args:[ ("worker", Ocep_obs.Tracer.Int idx); ("tasks", Ocep_obs.Tracer.Int ran) ]
  | _ -> ()

let worker t idx () =
  let rec loop last_gen =
    Mutex.lock t.m;
    while (not t.down) && t.generation = last_gen do
      Condition.wait t.work t.m
    done;
    if t.down then Mutex.unlock t.m
    else begin
      let gen = t.generation in
      let b = t.current in
      Mutex.unlock t.m;
      (match b with Some b -> drain t ~idx b | None -> ());
      loop gen
    end
  in
  loop 0

let create ?tracer ~workers () =
  let workers = max 1 workers in
  let t =
    {
      workers;
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      current = None;
      generation = 0;
      exn = None;
      down = false;
      domains = [];
      tracer;
      busy_us = Array.make workers 0.;
      fan_outs = 0;
      tasks_done = 0;
    }
  in
  t.domains <- List.init (workers - 1) (fun i -> Stdlib.Domain.spawn (worker t (i + 1)));
  t

let workers t = t.workers

type stats = { fan_outs : int; tasks : int; busy_s : float array }

let stats t =
  Mutex.lock t.m;
  let s =
    {
      fan_outs = t.fan_outs;
      tasks = t.tasks_done;
      busy_s = Array.map (fun us -> us *. 1e-6) t.busy_us;
    }
  in
  Mutex.unlock t.m;
  s

let run t ~n f =
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let b = { f = (fun i -> results.(i) <- Some (f i)); n; next = Atomic.make 0; completed = 0 } in
    Mutex.lock t.m;
    if t.down then begin
      Mutex.unlock t.m;
      invalid_arg "Search_pool.run: pool is shut down"
    end;
    t.exn <- None;
    t.current <- Some b;
    t.generation <- t.generation + 1;
    t.fan_outs <- t.fan_outs + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    (* the submitting domain works the batch instead of blocking *)
    drain t ~idx:0 b;
    Mutex.lock t.m;
    while b.completed < b.n do
      Condition.wait t.finished t.m
    done;
    let exn = t.exn in
    t.current <- None;
    Mutex.unlock t.m;
    (match exn with Some e -> raise e | None -> ());
    Array.map Option.get results
  end

let shutdown t =
  Mutex.lock t.m;
  if t.down then Mutex.unlock t.m
  else begin
    t.down <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    List.iter Stdlib.Domain.join t.domains;
    t.domains <- []
  end
