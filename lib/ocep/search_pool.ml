(* Each [run] publishes one batch record; workers snapshot the current
   batch under the pool mutex and then work only on that record. A slow
   worker still draining an old batch can therefore never touch a newer
   batch's counters: its batch's atomic cursor is exhausted, it grabs
   nothing, contributes nothing, and goes back to waiting. *)

type batch = {
  f : int -> unit;
  n : int;
  next : int Atomic.t;  (* shared task cursor *)
  mutable completed : int;  (* under the pool mutex *)
}

type t = {
  workers : int;  (* total, including the submitting domain *)
  m : Mutex.t;
  work : Condition.t;  (* new batch published, or shutdown *)
  finished : Condition.t;  (* some batch completed *)
  mutable current : batch option;
  mutable generation : int;
  mutable exn : exn option;  (* first exception of the current batch *)
  mutable down : bool;
  mutable domains : unit Stdlib.Domain.t list;
}

(* Pull task indices until the cursor runs off the end; report the count
   of tasks this domain ran in one mutex acquisition. *)
let drain t (b : batch) =
  let rec loop ran =
    let i = Atomic.fetch_and_add b.next 1 in
    if i >= b.n then ran
    else begin
      (try b.f i
       with e ->
         Mutex.lock t.m;
         if t.exn = None then t.exn <- Some e;
         Mutex.unlock t.m);
      loop (ran + 1)
    end
  in
  let ran = loop 0 in
  Mutex.lock t.m;
  b.completed <- b.completed + ran;
  if b.completed >= b.n then Condition.broadcast t.finished;
  Mutex.unlock t.m

let worker t () =
  let rec loop last_gen =
    Mutex.lock t.m;
    while (not t.down) && t.generation = last_gen do
      Condition.wait t.work t.m
    done;
    if t.down then Mutex.unlock t.m
    else begin
      let gen = t.generation in
      let b = t.current in
      Mutex.unlock t.m;
      (match b with Some b -> drain t b | None -> ());
      loop gen
    end
  in
  loop 0

let create ~workers =
  let workers = max 1 workers in
  let t =
    {
      workers;
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      current = None;
      generation = 0;
      exn = None;
      down = false;
      domains = [];
    }
  in
  t.domains <- List.init (workers - 1) (fun _ -> Stdlib.Domain.spawn (worker t));
  t

let workers t = t.workers

let run t ~n f =
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let b = { f = (fun i -> results.(i) <- Some (f i)); n; next = Atomic.make 0; completed = 0 } in
    Mutex.lock t.m;
    if t.down then begin
      Mutex.unlock t.m;
      invalid_arg "Search_pool.run: pool is shut down"
    end;
    t.exn <- None;
    t.current <- Some b;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    (* the submitting domain works the batch instead of blocking *)
    drain t b;
    Mutex.lock t.m;
    while b.completed < b.n do
      Condition.wait t.finished t.m
    done;
    let exn = t.exn in
    t.current <- None;
    Mutex.unlock t.m;
    (match exn with Some e -> raise e | None -> ());
    Array.map Option.get results
  end

let shutdown t =
  Mutex.lock t.m;
  if t.down then Mutex.unlock t.m
  else begin
    t.down <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    List.iter Stdlib.Domain.join t.domains;
    t.domains <- []
  end
