(** The online monitor: a POET client that maintains leaf histories and,
    on every terminating event, searches for matches and maintains the
    representative subset.

    Since PR 4 one engine hosts a {e registry} of patterns; since this
    PR the whole registry compiles into one {e discrimination network}
    ({!Ocep_pattern.Compile.Network}): one hash-consed node per distinct
    [process, type, text] class key, each holding every subscribed
    (pattern, leaf) pair, so an arriving event's class predicates are
    evaluated once per node regardless of how many patterns reference
    them. The shared history store is keyed on automaton node ids
    (refcounted by subscription; pruning and [max_history_per_trace]
    apply once per node/class), and {!add_pattern}/{!Handle.detach} are
    incremental network edits whose cost does not grow with the number
    of registered patterns. Per-pattern state stays isolated: each
    registered pattern has its own coverage slots, representative subset
    and report ring ({!Matcher.plan}s are shared between structurally
    equal patterns — they are immutable and shape-derived), and its
    observables are bit-identical to a dedicated single-pattern engine
    fed the same stream.

    On arrival of an event the engine (1) advances the communication
    epoch, (2) appends the event once to the history of every event class
    it matches, and (3) for each pattern with {e terminating} matched
    leaves, runs one anchored search per anchor, plus — when
    [pin_searches] is on — one pinned search per still-uncovered coverage
    slot of that pattern, exactly the goForward/goBackward cycle of
    Algorithm 1 driven by the subset objective. With [parallelism > 1]
    the pinned searches of one arrival — {e across all patterns} — fan
    out as a single (pattern, slot)-tagged batch on a persistent worker
    pool ({!Search_pool}) and are merged deterministically in
    (pattern_id, slot) order. The elapsed monotonic time of step (3) is
    recorded per arrival; these samples are the distributions of
    Figs. 6–10. *)

open Ocep_base
module Compile = Ocep_pattern.Compile
module Poet = Ocep_poet.Poet

type latency_sink =
  | Samples  (** the raw per-arrival vector — exact, but O(arrivals) memory *)
  | Histogram
      (** the log-bucketed {!Ocep_stats.Histogram} — O(buckets) memory
          regardless of run length, quantiles within one bucket width;
          the only sound choice for ≥1M-event online runs *)
  | Both  (** record into both sinks (used to validate the histogram path) *)

type config = {
  pruning : bool;  (** the O(1) history-pruning rule (Section V-D) *)
  max_history_per_trace : int option;  (** hard storage cap per (class, trace) *)
  pin_searches : bool;  (** search uncovered slots on each terminating event *)
  pin_filtering : bool;
      (** skip pinned searches the engine can rule out from O(1) state:
          slots with an empty (leaf, trace) history, whole batches whose
          anchored search already failed exhaustively, and — in
          node-budget runs only — slots whose pinned search failed
          before with the slot history and match count unchanged since.
          Without a node budget (the default) filtering is exact:
          coverage, reports and match counts are identical to unfiltered
          (DESIGN.md §4b proves the first two rules sound and the third
          inert). Under a budget the third rule is a heuristic in the
          same spirit as the budget itself, applied identically in
          sequential and parallel modes so their equivalence still
          holds. On by default; the switch exists for A/B measurement
          and the equivalence tests. Skips are counted in
          [ocep_pinned_skipped_total]. *)
  node_budget : int option;  (** abort pathological searches, [None] = unlimited *)
  report_cap : int;  (** retained reported matches, per pattern *)
  record_latency : bool;
      (** master switch for per-arrival timing; when on, [latency_sink]
          selects where the samples go *)
  latency_sink : latency_sink;
  gc_every : int option;
      (** the paper's future-work extension: every N events, drop history
          entries provably unable to join any future match (sound for
          leaves whose relation to every anchor leaf excludes happening
          before it — e.g. both sides of a pure concurrency pattern).
          With shared classes a class is collected only when {e every}
          subscribed (pattern, leaf) pair is GC-able — the conservative
          AND, which never changes coverage, reports or match counts.
          Requires every trace to keep producing events to make progress
          (the usual vector-clock GC caveat). [None] disables. *)
  parallelism : int;
      (** workers for the pinned-search fan-out on each terminating
          arrival: [1] (the default) is the exact sequential behavior on
          the calling domain; [0] means one worker per core
          ([Domain.recommended_domain_count]); [n > 1] runs the pinned
          searches of an arrival — across all registered patterns —
          concurrently on a persistent {!Search_pool} of [n] workers
          (the caller plus [n - 1] domains), merging results
          deterministically so per-pattern coverage, reports and match
          counts are identical to sequential. An engine that ever fanned
          out must be {!shutdown} before program exit, or its worker
          domains keep the process alive. *)
  cutover_batch : int;
      (** consider fanning a pinned batch out only when at least this
          many searches survive the pre-filter (a floor of 2 always
          applies: one search gains nothing from a pool). Batches passing
          this and [cutover_work] are {e eligible}; above that static
          gate the engine self-calibrates, timing eligible batches in
          each mode (an EWMA of per-slot wall time) and running whichever
          is currently faster, revisiting the other mode every 64th
          eligible batch. On hardware where the pool cannot win the
          engine therefore settles on inline execution by itself. Inline
          and fanned-out execution are observably identical, so all of
          this only tunes wall-clock time. Setting {e both} cut-over
          fields to [0] bypasses the gate and the calibration and forces
          the pool for every non-empty batch (for tests and
          reproductions that must exercise the parallel path). *)
  cutover_work : int;
      (** ... and the largest first-search-level history among the
          batch's anchors holds at least this many entries — the O(1)
          estimate of per-search work. Small batches of trivial searches
          run inline faster than the pool can wake. *)
  trace_spans : bool;
      (** record a span per terminating arrival and per anchored/pinned
          search (including the fan-out workers' searches and drains,
          tagged with their domain ids) into a bounded ring buffer; dump
          it with {!tracer} + {!Ocep_obs.Tracer.dump}. Off by default:
          spans cost two clock reads and a mutex-protected ring write
          per search. *)
  trace_capacity : int;
      (** span ring capacity when [trace_spans] is on; overwrites are
          counted in [ocep_spans_dropped_total]. *)
  provenance : bool;
      (** the flight recorder: keep a bounded per-event provenance
          record (wire record id, admission verdict, decode → admit →
          dispatch timestamps) for the most recent
          [provenance_capacity] events of each trace, plus per-trace
          staleness gauges ([ocep_trace_staleness_us{trace="N"}]) and a
          ring of refused wire records — what [ocep explain]
          reconstructs causal chains from. On by default: recording is
          one clock read and a few array stores per event. *)
  provenance_capacity : int;  (** flight-recorder window, per trace *)
  arena : bool;
      (** subscribe to the POET store's flat eid stream instead of the
          boxed [Event.t] stream. The dispatch prologue (epoch note,
          flight stamp, class match) then runs on arena columns —
          integer loads, no per-event allocation — and the boxed event
          is materialized lazily, only for events that match some
          class. Observables are bit-identical in both modes (the
          differential fuzzer's arena oracle holds the engine to that);
          the switch exists for the ablation benchmarks and the oracle
          itself. On by default. *)
}

val default_config : config
(** pruning on, no cap, pin searches on with filtering, no budget,
    100_000 reports, latency recording on into the [Samples] sink, gc
    off, parallelism 1, cut-over at 4 surviving searches × 256
    first-level entries, span tracing off (capacity 65_536 when
    enabled), provenance on with a 1_024-event window per trace (sized
    to keep the flight ring cache-resident; raise it when a deeper
    [ocep explain] window matters more than the last few percent of
    throughput), arena dispatch on. *)

type t

type pattern_id = int
(** Numeric id of one registered pattern, as it appears in metric labels
    ([ocep_matches_total{pattern="N"}]) and CLI output. Ids are assigned
    by {!add_pattern} in increasing order and never reused, so a removed
    pattern's id stays invalid. Code should hold {!Handle.t} values
    rather than ids; the id survives mainly for display and
    {!remove_pattern}. *)

(** A typed handle onto one registered pattern — the value returned by
    {!add_pattern} and listed by {!handles}. Every per-pattern question
    previously asked through an [(engine, pattern_id)] pair ([reports_for]
    and friends) is a function of the handle alone, so call sites cannot
    pair an id with the wrong engine, and detaching is a method of the
    thing being detached. All accessors raise
    [Ocep_error.Error (Stale_handle _)] once the pattern has been
    detached (check {!is_live} when in doubt) — the typed error channel
    shared with the service control plane, so a handle misuse carries
    the same failure shape locally and over the wire. *)
module Handle : sig
  type t

  (** One coherent snapshot of the pattern's observable counters, read in
      a single call — what dashboards and progress printers want, without
      ten accessor round-trips or a trip through the string-keyed
      {!Ocep_obs.Metrics} registry. *)
  type metrics = {
    matches : int;  (** successful searches, incl. coverage-neutral ones *)
    reports_retained : int;  (** representative-subset reports currently held *)
    covered_slots : int;
    seen_slots : int;
    nodes : int;  (** search-tree candidates examined *)
    backjumps : int;
    searches : int;
    aborted : int;  (** searches cut by [node_budget] *)
    pinned_skipped : int;  (** pinned searches removed by the pre-filter *)
  }

  val id : t -> pattern_id
  (** Stable even after {!detach}. *)

  val is_live : t -> bool
  (** [false] once the pattern has been detached (by this handle or any
      alias of it). *)

  val net : t -> Compile.t
  val reports : t -> Subset.report list
  val matches_found : t -> int
  val covered_slots : t -> int
  val seen_slots : t -> int

  val search_stats : t -> Matcher.stats
  (** The pattern's live stats record (mutated by ongoing searches), not
      a copy — read it, don't keep it across detach. *)

  val aborted_searches : t -> int
  val pinned_skipped : t -> int

  val find_containing : t -> Event.t -> Event.t array option
  (** One complete match of this pattern containing the given (already
      processed) event — ground truth, independent of the subset. *)

  val latency_histogram : t -> Ocep_stats.Histogram.t
  (** The pattern's bounded latency histogram
      ([ocep_latency_us{pattern="N"}]): the arrival-level sample recorded
      for every arrival in which this pattern anchored, when
      [latency_sink] is [Histogram] or [Both]. *)

  val history_entries : t -> leaf:int -> int
  (** Live entries of the leaf's (shared) history class. *)

  val nearest_miss : t -> (int * int) option
  (** The pattern's nearest miss so far: [(leaf, level)] where [leaf]
      is the leaf that failed binding last in the deepest-reaching
      failed search ([level] leaves were bound when it got furthest);
      [None] until some search returns [Not_found]. The bounded
      explanation [ocep explain] renders for digests that match no
      report. *)

  val metrics : t -> metrics

  val detach : t -> unit
  (** Hot-detach the pattern: its subscriptions leave the dispatch table
      and each of its classes' refcounts drop; a class with no
      subscribers left releases its history storage. The pattern's
      registry metrics freeze at their last values. Raises
      [Ocep_error.Error (Stale_handle _)] when already detached. *)
end

(** {1 Construction and the pattern registry} *)

val create :
  ?config:config -> ?patterns:Compile.t list -> ?net:Compile.t -> poet:Poet.t -> unit -> t
(** The one constructor: builds an engine subscribed to [poet] and
    registers [net] (when given) followed by each element of [patterns],
    in order — their handles are recoverable via {!handles}. With
    neither, the registry starts empty and events arriving while no
    pattern is registered only advance the frontier and the communication
    epochs.

    Raises [Invalid_argument] on a nonsensical config ([gc_every],
    [node_budget] or [max_history_per_trace] of [Some n] with [n <= 0], a
    negative [report_cap], or a negative [parallelism]) and on any
    pattern exceeding {!Compile.max_leaves}. *)

val add_pattern : t -> Compile.t -> Handle.t
(** Register a pattern: intern it through the POET store's symbol table
    and subscribe its leaves to the discrimination network — an
    incremental edit touching one node (found or created) per leaf, so
    registration cost is independent of how many patterns are already
    registered. Leaves whose [process, type, text] class key equals one
    already registered (by this or another pattern) share that node's
    physical history; a pattern structurally equal to an earlier one
    (equal {!Compile.shape_key} — notably another instance of the same
    template) additionally reuses its search plans. Raises
    [Invalid_argument] on a pattern exceeding {!Compile.max_leaves}
    leaves. A pattern attached mid-run starts with empty coverage but
    sees any history its shared nodes already accumulated. *)

val handles : t -> Handle.t list
(** Handles of the live patterns, ascending registration order. *)

val remove_pattern : t -> pattern_id -> unit
(** {!Handle.detach} by pattern id: unsubscribe every leaf from its
    automaton node — a node losing its last subscriber leaves the
    network and releases its history class. Raises
    [Ocep_error.Error (Unknown_pattern _)] on an unknown or removed
    id. *)

val pattern_ids : t -> pattern_id list
(** Ids of the live patterns, ascending registration order. *)

val pattern_count : t -> int

(** {1 Engine-wide accessors}

    The aggregating accessors below ([matches_found], [covered_slots],
    [search_stats], ...) sum over live patterns — for a single-pattern
    engine they are exactly the pre-registry values. [net] and
    [interned_net] refer to the earliest live pattern. *)

val net : t -> Compile.t
(** The earliest live pattern's net. Raises [Invalid_argument] when the
    registry is empty. *)

val interned_net : t -> Compile.inet
(** The net interned through the POET store's symbol table — what the
    engine's own searches run on; exposed so external callers
    (baseline comparisons, tests) can run {!Matcher} searches against
    this engine's history. Earliest live pattern; raises
    [Invalid_argument] when the registry is empty. *)

val config : t -> config

val poet : t -> Poet.t
(** The POET store the engine is subscribed to. *)

val feed_raw : t -> Event.raw -> Event.t
(** Deliver one raw event to the engine's POET store (and so, through the
    subscription, to the engine): the single ingest entry point used by
    both the in-process simulator path and {!Ocep_ingest}'s admission
    layer. The caller owes POET's precondition — events of each trace in
    local-clock order, receives after their sends; that is exactly what
    the admission layer restores under degraded delivery. Events fed
    this way carry the [Direct] provenance verdict. *)

val feed_raw_flat : t -> Event.raw -> unit
(** {!feed_raw} without the boxed return value. In arena mode (and with
    no other boxed POET clients) the whole ingest + dispatch path then
    allocates nothing for events that match no class — the hot-path
    entry point for raw-speed feeding. *)

val feed_block : t -> ?off:int -> ?len:int -> Event.raw array -> unit
(** Feed a block of raw events ([off], [len] select a slice; the whole
    array by default): one tight loop over {!feed_raw_flat}, the batch
    half of the arrival path used by {!Ocep_ingest.Source}'s block mode
    and the benchmarks. Raises [Invalid_argument] on an out-of-bounds
    slice. *)

val arena_mode : t -> bool
(** Whether this engine subscribed in arena (flat eid) mode. *)

val set_wire_stamps : t -> decode_us:float -> admit_us:float -> unit
(** Set the decode/admit timestamps the flight recorder will stamp on
    subsequent {!feed_wire} events, until the next call. Split from
    {!feed_wire} so the per-record path carries only immediates — float
    arguments to a cross-library call are boxed — while stamps change
    only on the ingest path's sampled records and buffered releases. *)

val feed_wire :
  t -> id:int -> verdict:Ocep_obs.Provenance.verdict -> Event.raw -> Event.t
(** {!feed_raw} with wire provenance: the admission layer's verdict and
    the current {!set_wire_stamps} timestamps are stamped into the
    flight recorder alongside the dispatch timestamp. A no-op relative
    to [feed_raw] when the config's [provenance] is off. *)

val flight : t -> Flight.t option
(** The flight recorder, present when the config's [provenance] is on. *)

val note_wire_drop : t -> id:int -> verdict:Ocep_obs.Provenance.verdict -> unit
(** Record a wire record the admission layer refused (deduped,
    gap-skipped, late, orphaned) into the flight recorder's drop ring;
    no-op without one. *)

val reports : t -> Subset.report list
(** The representative subset(s), grouped by pattern in registration
    order, each group in report order. *)

val report_digest : pattern_id:pattern_id -> Subset.report -> string
(** 16-hex-digit FNV-1a digest of one report's observables (arrival
    sequence, freshness, event identities), salted with its pattern id —
    the stable name [ocep run]/[ocep replay] print next to each report
    and [ocep explain] resolves. *)

val reports_digest : t -> string
(** 16-hex-digit FNV-1a digest of every live pattern's observables —
    matches, coverage, and each report's arrival sequence, freshness and
    event identities, in registration order. Two engines produce the
    same digest iff their match reports are bit-identical; the CLI
    prints it, and the service control plane ships it in STATS/DRAIN
    replies so per-tenant isolation is a string comparison. *)

val matches_found : t -> int
(** Successful searches (includes matches that added no new coverage),
    summed over patterns. *)

val find_containing : t -> Event.t -> Event.t array option
(** One complete match of any registered pattern containing the given
    event (which must have been processed), for ground-truth queries —
    independent of the subsets. Patterns are tried in registration
    order. *)

val latencies_us : t -> float array
(** Per-terminating-arrival processing times, microseconds — the raw
    samples, populated only when [record_latency] is on and
    [latency_sink] is [Samples] or [Both]; empty under [Histogram]
    (that is the point: no per-arrival storage). *)

val latency_histogram : t -> Ocep_stats.Histogram.t
(** The bounded latency histogram (registered as [ocep_latency_us]);
    empty unless [latency_sink] is [Histogram] or [Both]. *)

val metrics : t -> Ocep_obs.Metrics.t
(** The engine's metrics registry. Besides the engine-wide instruments,
    every registered pattern owns labeled variants of the per-pattern
    ones ([ocep_matches_total{pattern="N"}], [ocep_reports{...}],
    [ocep_covered_slots{...}], [ocep_seen_slots{...}],
    [ocep_search_*_total{...}], [ocep_pinned_skipped_total{...}],
    [ocep_latency_us{...}]). Call {!sync_metrics} first to pull the
    current counter values in; then render with {!Ocep_obs.Snapshot}. *)

val sync_metrics : t -> unit
(** Copy every internal counter (engine, per-pattern, matcher, history,
    subset, pool, POET, tracer) into the registry. O(instruments); safe
    to call as often as snapshots are wanted, including mid-run. *)

val tracer : t -> Ocep_obs.Tracer.t option
(** The span ring buffer, present when [trace_spans] was set. *)

val events_processed : t -> int
val terminating_arrivals : t -> int

val history_entries : t -> int
(** Live entries in the shared store — each physical class counted once,
    however many (pattern, leaf) pairs subscribe to it. *)

val history_dropped : t -> int

val automaton_nodes : t -> int
(** Live discrimination-network nodes — distinct class keys across the
    registered patterns. With node sharing this is typically far below
    the total leaf count ({e dedicated} dispatch would hold one entry
    per (pattern, leaf) pair). *)

val automaton_nodes_total : t -> int
(** Nodes ever allocated, including removed ones (exported as
    [ocep_automaton_nodes_total]). *)

val automaton_shared_evals : t -> int
(** Class-predicate evaluations saved by node sharing so far: for every
    candidate node tested during dispatch, all subscribers beyond the
    first ride on the one test (exported as
    [ocep_automaton_shared_evals_total]). Zero until two (pattern, leaf)
    pairs share a node. *)

val covered_slots : t -> int
val seen_slots : t -> int

val search_stats : t -> Matcher.stats
(** Merged counters across all patterns and searches, including the
    workers' when fanning out. With [parallelism > 1] the
    node/backjump/search counts include speculative pinned searches
    whose slot an earlier match of the same arrival already covered
    (sequential execution would have skipped them); coverage, reports
    and {!matches_found} never include them. For a single-pattern engine
    this is that pattern's live stats record; with several patterns it
    is a fresh snapshot summed at call time. *)

val aborted_searches : t -> int

val pinned_skipped : t -> int
(** Pinned searches skipped by the slot pre-filter (exported as
    [ocep_pinned_skipped_total]) — each one a whole search the engine
    proved futile from O(1) state instead of running. *)

val parallelism : t -> int
(** The resolved worker count: the config's [parallelism] with [0]
    replaced by [Domain.recommended_domain_count]. *)

val shutdown : t -> unit
(** Join the fan-out worker domains, if any were ever spawned. The
    engine remains usable (a later fan-out re-creates the pool).
    Idempotent; a no-op for [parallelism = 1] engines, which never spawn
    domains. *)
