(** Representative-subset bookkeeping (Section IV-B).

    A coverage slot is a (leaf, trace) pair. The representative subset must
    contain, for every slot on which a matching event participates in some
    complete match, at least one reported match instantiating that slot —
    at most k·n matches. The tracker records which slots have been covered
    by reported matches, which slots have been seen (some event
    class-matched the leaf on the trace — only those can possibly need
    covering), and keeps the reported matches. *)

open Ocep_base

type report = {
  events : Event.t array;  (** the match, indexed by leaf id *)
  fresh : (int * int) list;  (** slots this report covered first *)
  seq : int;  (** ingestion sequence number at report time *)
}

type t

val create : k:int -> n_traces:int -> ?report_cap:int -> unit -> t
(** [report_cap] (default [max_int]) bounds the retained report list; the
    coverage arrays stay exact regardless.

    Cap semantics: once the cap is hit, {!record} keeps updating the
    coverage matrices and keeps returning [Some report] for matches that
    cover new slots — it only stops {e retaining} the report objects, so
    {!covered_count} advances past the point where {!reports} stops
    growing. Every report lost this way is counted in {!dropped_count}
    and exported as [ocep_subset_reports_dropped_total]; a nonzero value
    means the subset in {!reports} is no longer representative (some
    covered slot has no retained witness) and the cap must be raised to
    recover the paper's k·n guarantee from the report list alone. *)

val seen : t -> leaf:int -> trace:int -> unit
val is_covered : t -> leaf:int -> trace:int -> bool
val is_seen : t -> leaf:int -> trace:int -> bool

val record : t -> seq:int -> Event.t array -> report option
(** Update coverage with a found match; [Some report] iff it covered at
    least one new slot. The report is added to the subset unless
    [report_cap] retained reports already exist, in which case it is
    dropped and counted (see {!create} for the cap semantics). *)

val uncovered_seen_slots : t -> (int * int) list
(** Slots that have candidate events but no covering match yet; the engine
    re-searches these on every terminating event. *)

val reports : t -> report list
(** Reported matches, oldest first (capped at [report_cap]). *)

val covered_count : t -> int
val seen_count : t -> int

val dropped_count : t -> int
(** Coverage-advancing reports discarded because the cap was reached —
    the gap between what {!covered_count} claims and what {!reports} can
    witness. *)
