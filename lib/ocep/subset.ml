open Ocep_base

type report = { events : Event.t array; fresh : (int * int) list; seq : int }

type t = {
  k : int;
  n_traces : int;
  covered : bool array array;
  seenm : bool array array;
  report_cap : int;
  reports : report Vec.t;
  mutable pending : (int * int) list;  (* seen but not covered; lazily filtered *)
  mutable covered_count : int;
  mutable seen_count : int;
  mutable dropped : int;  (* coverage-advancing reports not retained (cap) *)
}

let create ~k ~n_traces ?(report_cap = max_int) () =
  {
    k;
    n_traces;
    covered = Array.make_matrix k n_traces false;
    seenm = Array.make_matrix k n_traces false;
    report_cap;
    reports = Vec.create ();
    pending = [];
    covered_count = 0;
    seen_count = 0;
    dropped = 0;
  }

let seen t ~leaf ~trace =
  if not t.seenm.(leaf).(trace) then begin
    t.seenm.(leaf).(trace) <- true;
    t.seen_count <- t.seen_count + 1;
    if not t.covered.(leaf).(trace) then t.pending <- (leaf, trace) :: t.pending
  end

let is_covered t ~leaf ~trace = t.covered.(leaf).(trace)

let is_seen t ~leaf ~trace = t.seenm.(leaf).(trace)

let record t ~seq (m : Event.t array) =
  let fresh = ref [] in
  Array.iteri
    (fun leaf (ev : Event.t) ->
      if not t.covered.(leaf).(ev.trace) then begin
        t.covered.(leaf).(ev.trace) <- true;
        t.covered_count <- t.covered_count + 1;
        (* an instantiated slot is by definition also seen *)
        seen t ~leaf ~trace:ev.trace;
        fresh := (leaf, ev.trace) :: !fresh
      end)
    m;
  match !fresh with
  | [] -> None
  | fresh ->
    let report = { events = m; fresh = List.rev fresh; seq } in
    if Vec.length t.reports < t.report_cap then Vec.push t.reports report
    else t.dropped <- t.dropped + 1;
    Some report

(* Filter out slots covered since they were queued; amortized cheap. *)
let uncovered_seen_slots t =
  let still = List.filter (fun (l, tr) -> not t.covered.(l).(tr)) t.pending in
  t.pending <- still;
  still

let reports t = Vec.to_list t.reports

let covered_count t = t.covered_count

let seen_count t = t.seen_count

let dropped_count t = t.dropped
