open Ocep_base
module Compile = Ocep_pattern.Compile
module Network = Compile.Network
module Poet = Ocep_poet.Poet
module Hist = Ocep_stats.Histogram
module Metrics = Ocep_obs.Metrics
module Tracer = Ocep_obs.Tracer
module Itbl = Hashtbl.Make (Int)

type latency_sink = Samples | Histogram | Both

type pattern_id = int

type config = {
  pruning : bool;
  max_history_per_trace : int option;
  pin_searches : bool;
  pin_filtering : bool;
  node_budget : int option;
  report_cap : int;
  record_latency : bool;
  latency_sink : latency_sink;
  gc_every : int option;
  parallelism : int;
  cutover_batch : int;
  cutover_work : int;
  trace_spans : bool;
  trace_capacity : int;
  provenance : bool;
  provenance_capacity : int;
  arena : bool;
}

let default_trace_capacity = 65_536

(* sized so the flight ring (48 B/slot) stays cache-resident on a
   typical trace count — at 8 traces, 1024 slots is 384 KB.  The ring
   is written once per event, so an L2-resident window records for
   effectively nothing while a multi-megabyte one pays a store miss per
   event (~5% of the races budget, measured by bench_obs); raise it for
   explain-heavy forensics where a deeper window beats throughput *)
let default_provenance_capacity = 1_024

let default_config =
  {
    pruning = true;
    max_history_per_trace = None;
    pin_searches = true;
    pin_filtering = true;
    node_budget = None;
    report_cap = 100_000;
    record_latency = true;
    latency_sink = Samples;
    gc_every = None;
    parallelism = 1;
    cutover_batch = 4;
    cutover_work = 256;
    trace_spans = false;
    trace_capacity = default_trace_capacity;
    provenance = true;
    provenance_capacity = default_provenance_capacity;
    arena = true;
  }

(* Reject configurations that would crash later (gc_every = Some 0 used
   to divide by zero in the gc cadence check) or that have no sensible
   meaning, at construction time rather than deep inside on_event. *)
let validate_config (c : config) =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  (match c.gc_every with
  | Some n when n <= 0 -> fail "Engine.create: gc_every must be positive, got %d" n
  | _ -> ());
  (match c.node_budget with
  | Some n when n <= 0 -> fail "Engine.create: node_budget must be positive, got %d" n
  | _ -> ());
  (match c.max_history_per_trace with
  | Some n when n <= 0 -> fail "Engine.create: max_history_per_trace must be positive, got %d" n
  | _ -> ());
  if c.report_cap < 0 then fail "Engine.create: report_cap must be non-negative, got %d" c.report_cap;
  if c.parallelism < 0 then
    fail "Engine.create: parallelism must be >= 0 (0 = one worker per core), got %d" c.parallelism;
  if c.cutover_batch < 0 then
    fail "Engine.create: cutover_batch must be non-negative, got %d" c.cutover_batch;
  if c.cutover_work < 0 then
    fail "Engine.create: cutover_work must be non-negative, got %d" c.cutover_work;
  if c.trace_capacity <= 0 then
    fail "Engine.create: trace_capacity must be positive, got %d" c.trace_capacity;
  if c.provenance_capacity <= 0 then
    fail "Engine.create: provenance_capacity must be positive, got %d" c.provenance_capacity

(* A leaf's stored events can be garbage-collected once they are in the
   causal past of every trace iff (a) the leaf never serves as interposer
   evidence for a [~>] check and (b) its relation to every possible anchor
   (terminating) leaf excludes Before: any future anchor is causally after
   a fully-seen event, so such an event can never satisfy the constraint
   again. *)
let gc_able_leaves (net : Compile.t) =
  let k = Compile.size net in
  Array.init k (fun l ->
      (not (List.exists (fun (i, _) -> i = l) net.Compile.lim_checks))
      && List.for_all
           (fun a ->
             (not net.Compile.terminating.(a)) || a = l
             ||
             match net.Compile.cons.(l).(a) with
             | Some s -> not s.Compile.before
             | None -> false)
           (List.init k (fun i -> i)))

(* Handles into the metrics registry whose values are pulled from the
   engine's internal counters by [sync_metrics] (called before every
   snapshot) rather than bumped in the hot path — the only always-hot
   instruments are the latency histograms. *)
type meters = {
  m_events : Metrics.counter;
  m_terminating : Metrics.counter;
  m_matches : Metrics.counter;
  m_reports : Metrics.gauge;
  m_nodes : Metrics.counter;
  m_backjumps : Metrics.counter;
  m_searches : Metrics.counter;
  m_aborts : Metrics.counter;
  m_epochs : Metrics.counter;
  m_hist_entries : Metrics.gauge;
  m_hist_dropped : Metrics.counter;
  m_hist_pruned : Metrics.counter;
  m_hist_cap_evicted : Metrics.counter;
  m_covered : Metrics.gauge;
  m_seen : Metrics.gauge;
  m_subset_dropped : Metrics.counter;
  m_fan_outs : Metrics.counter;
  m_fan_out_tasks : Metrics.counter;
  m_spec_discards : Metrics.counter;
  m_pinned_skipped : Metrics.counter;
  m_worker_busy : Metrics.gauge array;  (* by worker index *)
  m_poet_ingested : Metrics.counter;
  m_poet_notified : Metrics.counter;
  m_spans : Metrics.counter;
  m_spans_dropped : Metrics.counter;
  m_patterns : Metrics.gauge;
  m_automaton_nodes : Metrics.counter;
  m_automaton_shared : Metrics.counter;
}

(* Per-pattern instruments: the existing metric names carried one engine's
   single pattern implicitly; with a registry they gain a pattern label. *)
type pmeters = {
  pm_matches : Metrics.counter;
  pm_reports : Metrics.gauge;
  pm_covered : Metrics.gauge;
  pm_seen : Metrics.gauge;
  pm_nodes : Metrics.counter;
  pm_backjumps : Metrics.counter;
  pm_searches : Metrics.counter;
  pm_aborts : Metrics.counter;
  pm_pinned_skipped : Metrics.counter;
  pm_subset_dropped : Metrics.counter;
}

(* The isolated per-pattern state: everything that was engine state when
   the engine owned exactly one pattern, minus the shared substrate
   (POET subscription, history store, frontier, pool, calibration). *)
type pstate = {
  pid : pattern_id;
  pnet : Compile.t;
  pinet : Compile.inet;
  phistory : History.t;  (* leaf-indexed view onto the shared store *)
  psubset : Subset.t;
  pstats : Matcher.stats;
  pfirst_leaf : int array;  (* anchor leaf -> first-level leaf, -1 for k = 1 *)
  pplans : Matcher.plan array;  (* anchor leaf -> precomputed search plan *)
  pgcable : bool array;
  pgeneric : bool array;  (* leaf's type spec is wildcard/variable *)
  ppin_gen : int array array;  (* slot -> history generation at last failed pin, -1 none *)
  ppin_matches : int array array;  (* slot -> matches_found at last failed pin *)
  pscratch : int Vec.t;  (* sort keys of leaves matched by the current arrival *)
  panchors : int Vec.t;  (* terminating matched leaves, candidate order *)
  mutable ptouched_seq : int;  (* events_processed when pscratch was reset *)
  mutable pmatches : int;
  mutable paborted : int;
  mutable pskipped : int;
  pnodes : pstate Network.node array;
      (* leaf -> its discrimination-network node; node ids double as the
         history-store class ids behind [phistory] *)
  pm : pmeters;
  plat_hist : Hist.t;  (* ocep_latency_us{pattern="..."} *)
}

type t = {
  cfg : config;
  poet : Poet.t;
  n_traces : int;
  store : History.store;  (* shared by all registered patterns *)
  latencies : float Vec.t;
  latency_hist : Hist.t;  (* registered as ocep_latency_us *)
  metrics : Metrics.t;
  meters : meters;
  tracer : Tracer.t option;
  flight : Flight.t option;
  m_staleness : Metrics.gauge array;  (* per trace, [||] when provenance is off *)
  (* wire provenance of the event currently being fed ([feed_wire] sets,
     [on_event] consumes and clears): threading through mutable state
     keeps [Poet.ingest]'s signature and allocates nothing per event.
     The timestamps live in a flat float array — a mutable float field
     of this mixed record would box on every store *)
  mutable pw_id : int;
  mutable pw_verdict : int;
  pw_times : float array;
      (* [0] decode stamp, [1] admit stamp, [2] the chained dispatch
         stamp: the flight recorder reads the clock once every 16
         events and reuses the stamp in between, so always-on
         provenance pays ~2 ns/event of clock time instead of ~30 *)
  (* the event currently being dispatched, in whichever form the
     subscription delivered it. In arena mode [cur_ev] starts at the
     [Event.none] sentinel and [cur_event] materializes the boxed view
     on first demand (class match, search anchor) — events matching no
     class never get boxed at all. In record mode [cur_ev] is the
     subscription argument and [cur_eid] is -1. *)
  mutable cur_eid : int;
  mutable cur_ev : Event.t;
  intern : string -> int;
  trace_of_sym : int -> int option;
  partner_of : Event.t -> Event.t option;
  mutable patterns : pstate list;  (* live patterns, ascending pid *)
  mutable next_pid : pattern_id;
  network : pstate Network.t;
      (* the whole registry compiled into one discrimination network:
         one node per distinct class key, each holding every subscribed
         (pattern, leaf) pair. Dispatch is the network's per-etype
         candidate array (one bounds check and one load); edits are
         incremental, so add/remove_pattern cost does not grow with the
         number of registered patterns. *)
  plan_cache : (string, Matcher.plan array * int array) Hashtbl.t;
      (* shape key -> (plans, first search leaves): template instances
         (and any structurally equal patterns) share one physical plan
         set — plans are immutable and depend only on the net's shape *)
  touched : pstate Vec.t;
      (* the patterns the current arrival touched, in first-touch order;
         sorted by pid before phases 2-3 so per-event work is
         O(touched patterns), not O(registered patterns) *)
  mutable shared_evals : int;
      (* class-predicate evaluations saved by node sharing: for each
         candidate node tested, subscribers-beyond-the-first many
         per-leaf tests collapse into the one node test *)
  pin_batch : (pstate * int * int * int) Vec.t;
      (* one round's surviving pinned searches across all patterns:
         (pattern, anchor_leaf, pin_leaf, pin_trace) in (pattern_id, slot)
         order — the deterministic merge order of the fan-out *)
  parallelism : int;  (* resolved: >= 1 *)
  mutable pool : Search_pool.t option;  (* spawned on first fan-out *)
  mutable events_processed : int;
  mutable terminating_arrivals : int;
  mutable speculative_discards : int;
  (* cut-over self-calibration: EWMA of per-slot wall time for eligible
     batches, one per execution mode, plus sample/eligibility counters *)
  mutable ew_inline_us : float;
  mutable ew_fan_us : float;
  mutable inline_samples : int;
  mutable fan_samples : int;
  mutable eligible_batches : int;
}

(* A node is GC-able only when every subscribed (pattern, leaf) pair is
   — the conservative AND, recomputed on the node's own subscriber edits
   only. *)
let recompute_gcable (n : pstate Network.node) =
  Network.set_gcable n
    (Array.for_all (fun ((q : pstate), l) -> q.pgcable.(l)) n.Network.nsubs)

let make_meters metrics ~parallelism =
  let c ?help name = Metrics.counter metrics ?help name in
  let g ?help name = Metrics.gauge metrics ?help name in
  (* registration order is exposition order, so bind each instrument with a
     [let] (record-literal fields evaluate in unspecified order) *)
  let m_events = c ~help:"Events processed by the engine" "ocep_events_total" in
  let m_terminating =
    c ~help:"Arrivals matching a terminating leaf" "ocep_terminating_arrivals_total"
  in
  let m_matches = c ~help:"Successful searches" "ocep_matches_total" in
  let m_reports = g ~help:"Reported representative subset size" "ocep_reports" in
  let m_nodes = c ~help:"Search-tree nodes expanded" "ocep_search_nodes_total" in
  let m_backjumps = c ~help:"Conflict-directed backjumps" "ocep_search_backjumps_total" in
  let m_searches = c ~help:"Searches started" "ocep_searches_total" in
  let m_aborts = c ~help:"Searches aborted by the node budget" "ocep_search_aborts_total" in
  let m_epochs = c ~help:"Communication-epoch advances" "ocep_epoch_advances_total" in
  let m_hist_entries = g ~help:"Stored history entries (shared across patterns)" "ocep_history_entries" in
  let m_hist_dropped =
    c ~help:"History entries dropped (cap + GC)" "ocep_history_dropped_total"
  in
  let m_hist_pruned =
    c ~help:"History entries merged by the O(1) pruning rule" "ocep_history_pruned_total"
  in
  let m_hist_cap_evicted =
    c ~help:"History entries evicted by the per-trace cap" "ocep_history_cap_evicted_total"
  in
  let m_covered = g ~help:"Covered coverage slots" "ocep_covered_slots" in
  let m_seen = g ~help:"Seen coverage slots" "ocep_seen_slots" in
  let m_subset_dropped =
    c ~help:"Coverage-advancing reports dropped by report_cap"
      "ocep_subset_reports_dropped_total"
  in
  let m_fan_outs = c ~help:"Pinned-search batches fanned out" "ocep_fan_outs_total" in
  let m_fan_out_tasks = c ~help:"Pinned searches run by the pool" "ocep_fan_out_tasks_total" in
  let m_spec_discards =
    c ~help:"Speculative pinned results discarded at merge" "ocep_speculative_discards_total"
  in
  let m_pinned_skipped =
    c ~help:"Pinned searches skipped by the slot pre-filter" "ocep_pinned_skipped_total"
  in
  let m_worker_busy =
    Array.init parallelism (fun i ->
        g
          ~help:"Wall-clock seconds each fan-out worker spent searching"
          (Metrics.with_labels "ocep_pool_worker_busy_seconds" [ ("worker", string_of_int i) ]))
  in
  let m_poet_ingested = c ~help:"Events ingested by POET" "ocep_poet_events_ingested_total" in
  let m_poet_notified =
    c ~help:"POET subscriber callbacks invoked" "ocep_poet_notifications_total"
  in
  let m_spans = c ~help:"Trace spans recorded" "ocep_spans_total" in
  let m_spans_dropped =
    c ~help:"Trace spans overwritten by the ring buffer" "ocep_spans_dropped_total"
  in
  let m_patterns = g ~help:"Registered live patterns" "ocep_patterns" in
  let m_automaton_nodes =
    c ~help:"Discrimination-network nodes ever allocated" "ocep_automaton_nodes_total"
  in
  let m_automaton_shared =
    c ~help:"Class-predicate evaluations saved by automaton node sharing"
      "ocep_automaton_shared_evals_total"
  in
  {
    m_events;
    m_terminating;
    m_matches;
    m_reports;
    m_nodes;
    m_backjumps;
    m_searches;
    m_aborts;
    m_epochs;
    m_hist_entries;
    m_hist_dropped;
    m_hist_pruned;
    m_hist_cap_evicted;
    m_covered;
    m_seen;
    m_subset_dropped;
    m_fan_outs;
    m_fan_out_tasks;
    m_spec_discards;
    m_pinned_skipped;
    m_worker_busy;
    m_poet_ingested;
    m_poet_notified;
    m_spans;
    m_spans_dropped;
    m_patterns;
    m_automaton_nodes;
    m_automaton_shared;
  }

let make_pmeters metrics ~pid =
  let lbl name = Metrics.with_labels name [ ("pattern", string_of_int pid) ] in
  let c ?help name = Metrics.counter metrics ?help (lbl name) in
  let g ?help name = Metrics.gauge metrics ?help (lbl name) in
  let pm_matches = c ~help:"Successful searches" "ocep_matches_total" in
  let pm_reports = g ~help:"Reported representative subset size" "ocep_reports" in
  let pm_covered = g ~help:"Covered coverage slots" "ocep_covered_slots" in
  let pm_seen = g ~help:"Seen coverage slots" "ocep_seen_slots" in
  let pm_nodes = c ~help:"Search-tree nodes expanded" "ocep_search_nodes_total" in
  let pm_backjumps = c ~help:"Conflict-directed backjumps" "ocep_search_backjumps_total" in
  let pm_searches = c ~help:"Searches started" "ocep_searches_total" in
  let pm_aborts = c ~help:"Searches aborted by the node budget" "ocep_search_aborts_total" in
  let pm_pinned_skipped =
    c ~help:"Pinned searches skipped by the slot pre-filter" "ocep_pinned_skipped_total"
  in
  let pm_subset_dropped =
    c ~help:"Coverage-advancing reports dropped by report_cap"
      "ocep_subset_reports_dropped_total"
  in
  {
    pm_matches;
    pm_reports;
    pm_covered;
    pm_seen;
    pm_nodes;
    pm_backjumps;
    pm_searches;
    pm_aborts;
    pm_pinned_skipped;
    pm_subset_dropped;
  }

(* Sort keys for the per-pattern matched-leaf scratch: exact-type leaves
   ascending, then generic (wildcard/variable type) leaves ascending —
   the candidate order of the old single-pattern dispatch, which fixes
   the Subset.seen and anchor processing order and therefore keeps every
   per-pattern observable bit-identical to a dedicated engine. *)
let generic_bit = 1 lsl 20

let leaf_mask = generic_bit - 1

(* insertion sort: the scratch holds the matched leaves of one arrival
   for one pattern — almost always <= 4 elements *)
let sort_scratch (v : int Vec.t) =
  for i = 1 to Vec.length v - 1 do
    let x = Vec.get v i in
    let j = ref (i - 1) in
    while !j >= 0 && Vec.get v !j > x do
      Vec.set v (!j + 1) (Vec.get v !j);
      decr j
    done;
    Vec.set v (!j + 1) x
  done

(* The touched-pattern worklist is filled in node order; phases 2 and 3
   must run patterns in pid order (the order a dedicated engine per
   pattern would be driven in), so restore it. Same insertion sort: an
   arrival rarely touches more than a handful of patterns, and sharing
   makes first-touch order nearly sorted already. *)
let sort_touched (v : pstate Vec.t) =
  for i = 1 to Vec.length v - 1 do
    let x = Vec.get v i in
    let j = ref (i - 1) in
    while !j >= 0 && (Vec.get v !j).pid > x.pid do
      Vec.set v (!j + 1) (Vec.get v !j);
      decr j
    done;
    Vec.set v (!j + 1) x
  done

(* The boxed view of the event being dispatched, built at most once per
   arrival. Safe whenever dispatch is running: internal events are
   materialized during their own arrival (their trace's live clock row
   is still their timestamp), communication events from their persisted
   snapshot. *)
let cur_event t =
  let ev = t.cur_ev in
  if ev != Event.none then ev
  else begin
    let ev = Poet.materialize t.poet t.cur_eid in
    t.cur_ev <- ev;
    ev
  end

let live_pattern t pid = List.find_opt (fun (p : pstate) -> p.pid = pid) t.patterns

let get_pattern t pid =
  match live_pattern t pid with
  | Some p -> p
  | None ->
    Ocep_error.error (Ocep_error.Unknown_pattern (Printf.sprintf "no registered pattern %d" pid))

let first_pattern t =
  match t.patterns with
  | p :: _ -> p
  | [] -> invalid_arg "Engine: no registered patterns"

let create_multi ?(config = default_config) ~poet () =
  validate_config config;
  let n_traces = Poet.trace_count poet in
  let parallelism =
    if config.parallelism = 0 then max 1 (Stdlib.Domain.recommended_domain_count ())
    else config.parallelism
  in
  let metrics = Metrics.create () in
  let t =
    {
      cfg = config;
      poet;
      n_traces;
      store =
        History.create_store ~n_traces ~pruning:config.pruning
          ?max_per_trace:config.max_history_per_trace ();
      latencies = Vec.create ();
      latency_hist =
        Metrics.histogram metrics
          ~help:"Per-terminating-arrival processing time (microseconds)" "ocep_latency_us";
      metrics;
      meters = make_meters metrics ~parallelism;
      tracer =
        (if config.trace_spans then Some (Tracer.create ~capacity:config.trace_capacity)
         else None);
      flight =
        (if config.provenance then
           Some (Flight.create ~n_traces ~capacity:config.provenance_capacity ())
         else None);
      m_staleness =
        (if config.provenance then
           Array.init n_traces (fun tr ->
               Metrics.gauge metrics
                 ~help:"Microseconds since the trace's last event was dispatched (-1 before any)"
                 (Metrics.with_labels "ocep_trace_staleness_us" [ ("trace", string_of_int tr) ]))
         else [||]);
      pw_id = -1;
      pw_verdict = 0;
      pw_times = Array.make 3 0.;
      cur_eid = -1;
      cur_ev = Event.none;
      intern = Symbol.intern (Poet.symbols poet);
      trace_of_sym = Poet.trace_of_sym poet;
      partner_of = Poet.find_partner poet;
      patterns = [];
      next_pid = 0;
      network = Network.create ();
      plan_cache = Hashtbl.create 16;
      touched = Vec.create ();
      shared_evals = 0;
      pin_batch = Vec.create ();
      parallelism;
      pool = None;
      events_processed = 0;
      terminating_arrivals = 0;
      speculative_discards = 0;
      ew_inline_us = 0.;
      ew_fan_us = 0.;
      inline_samples = 0;
      fan_samples = 0;
      eligible_batches = 0;
    }
  in
  let consume_outcome (p : pstate) outcome =
    match outcome with
    | Matcher.Found m ->
      p.pmatches <- p.pmatches + 1;
      ignore (Subset.record p.psubset ~seq:t.events_processed m)
    | Matcher.Not_found -> ()
    | Matcher.Aborted -> p.paborted <- p.paborted + 1
  in
  (* Consume a pinned search's result for a slot that is still uncovered.
     A definitive failure is remembered with the slot's current history
     generation and the pattern's match count; the record can only be
     consulted again in node-budget runs (without a budget, batches only
     survive the anchored-failure filter right after a match, which
     bumps pmatches and invalidates every record — DESIGN.md §4b).
     There the skip is a heuristic in the budget's own spirit: the slot
     looks exactly as it did when an identical pin failed, so re-paying
     the (budget-capped) search is judged not worth it. Sequential and
     parallel modes build records and skips identically, so their
     equivalence is unaffected. *)
  let consume_pin (p : pstate) (l, tr) outcome =
    (match outcome with
    | Matcher.Not_found ->
      p.ppin_gen.(l).(tr) <- History.generation p.phistory ~leaf:l ~trace:tr;
      p.ppin_matches.(l).(tr) <- p.pmatches
    | Matcher.Found _ | Matcher.Aborted -> ());
    consume_outcome p outcome
  in
  let outcome_tag = function
    | Matcher.Found _ -> "found"
    | Matcher.Not_found -> "not_found"
    | Matcher.Aborted -> "aborted"
  in
  let run_search ?pin (p : pstate) ~anchor_leaf ~anchor () =
    match t.tracer with
    | None ->
      Matcher.search ~plan:p.pplans.(anchor_leaf) ~net:p.pinet ~history:p.phistory ~n_traces
        ~trace_of_sym:t.trace_of_sym ~partner_of:t.partner_of ~anchor_leaf ~anchor ?pin
        ?node_budget:config.node_budget ~stats:p.pstats ()
    | Some tr ->
      let nodes0 = p.pstats.Matcher.nodes and backjumps0 = p.pstats.Matcher.backjumps in
      let t0 = Clock.now_us () in
      let outcome =
        Matcher.search ~plan:p.pplans.(anchor_leaf) ~net:p.pinet ~history:p.phistory ~n_traces
          ~trace_of_sym:t.trace_of_sym ~partner_of:t.partner_of ~anchor_leaf ~anchor ?pin
          ?node_budget:config.node_budget ~stats:p.pstats ()
      in
      let dt = Clock.now_us () -. t0 in
      let pin_leaf, pin_trace = match pin with Some (l, tr') -> (l, tr') | None -> (-1, -1) in
      Tracer.record_search tr
        ~name:(if pin_leaf < 0 then "search" else "pinned")
        ~cat:"engine" ~ts_us:t0 ~dur_us:dt
        ~tid:(Stdlib.Domain.self () :> int)
        ~pattern:p.pid ~anchor_leaf
        ~nodes:(p.pstats.Matcher.nodes - nodes0)
        ~backjumps:(p.pstats.Matcher.backjumps - backjumps0)
        ~outcome:(outcome_tag outcome) ~pin_leaf ~pin_trace;
      outcome
  in
  let get_pool () =
    match t.pool with
    | Some p -> p
    | None ->
      let p = Search_pool.create ?tracer:t.tracer ~workers:t.parallelism () in
      t.pool <- Some p;
      p
  in
  let maybe_gc () =
    match config.gc_every with
    | Some n when t.events_processed mod n = 0 -> begin
      (* a class is GC-able only if every subscribed (pattern, leaf) pair
         is — the conservative AND; GC-able entries can never join a
         future match, so retaining some conservatively never changes
         coverage, reports or match counts *)
      let ncls = History.class_count t.store in
      if ncls > 0 then begin
        let classes = Array.make ncls false in
        let any = ref false in
        Network.iter t.network (fun n ->
            if n.Network.ngcable && Array.length n.Network.nsubs > 0 then begin
              classes.(n.Network.nid) <- true;
              any := true
            end);
        if !any then begin
          (* threshold per trace: the greatest index already covered by
             every trace's frontier. A trace's live clock row IS its
             latest event's timestamp (all-zero before any event), so
             the old per-dispatch frontier copy is read straight from
             the POET clock pool instead. *)
          let thresholds =
            Array.init n_traces (fun tr ->
                let m = ref max_int in
                for x = 0 to n_traces - 1 do
                  let v = Poet.clock_entry poet ~trace:x ~entry:tr in
                  if v < !m then m := v
                done;
                !m)
          in
          ignore (History.gc_store t.store ~thresholds ~classes)
        end
      end
    end
    | _ -> ()
  in
  (* Skip decisions for one pattern's slots of one pinned batch, made
     before any search of the batch runs so that inline and fanned-out
     execution agree. Each rule only skips searches that must return
     Not_found:
     1. the slot's (leaf, trace) history is empty — every candidate a
        pinned search could bind to the pinned leaf on that trace lives
        in exactly that history;
     2. the anchored (unpinned) search of this batch proved Not_found
        exhaustively — a pinned match is in particular an unpinned one;
     3. an identical pinned search failed before and neither the slot's
        history generation nor the pattern's match count has changed
        since. *)
  let filter_slots (p : pstate) ~anchored_failed slots =
    List.filter
      (fun (l, tr) ->
        let skip =
          anchored_failed
          || Vec.is_empty (History.on p.phistory ~leaf:l ~trace:tr)
          || (p.ppin_gen.(l).(tr) >= 0
             && p.ppin_gen.(l).(tr) = History.generation p.phistory ~leaf:l ~trace:tr
             && p.ppin_matches.(l).(tr) = p.pmatches)
        in
        if skip then p.pskipped <- p.pskipped + 1;
        not skip)
      slots
  in
  (* Both thresholds at 0 force the pool for every batch (used by tests
     and reproductions that must exercise the parallel path). *)
  let forced_fan_out = config.cutover_batch = 0 && config.cutover_work = 0 in
  let ewma old x = if old <= 0. then x else (0.8 *. old) +. (0.2 *. x) in
  let calib_samples = 3 in
  (* The arrival body, shared by both subscription modes: everything up
     to the searches needs only the scalar columns, so the arena path
     dispatches without touching the OCaml heap; the boxed view is
     demanded lazily by [cur_event] exactly when a class matches. The
     caller has set [cur_eid]/[cur_ev]. *)
  let arrive ~trace ~index ~tsym ~esym ~xsym ~comm =
    t.events_processed <- t.events_processed + 1;
    History.note_comm_store_i t.store ~trace ~comm;
    (match t.flight with
    | Some fl ->
      let pw = t.pw_times in
      (* pw.(2) is the chained dispatch stamp the recorder will read *)
      if t.events_processed land 15 = 1 || Array.unsafe_get pw 2 = 0. then
        Array.unsafe_set pw 2 (Clock.now_us ())
      else begin
        (* a wire admit stamp newer than the chain refreshes it for free *)
        let admit = Array.unsafe_get pw 1 in
        if admit > Array.unsafe_get pw 2 then Array.unsafe_set pw 2 admit
      end;
      Flight.note fl ~trace ~index ~wire_id:t.pw_id ~verdict:t.pw_verdict ~stamps:pw;
      (* the stamps are left in place: they stay current until the next
         [set_wire_stamps], and a direct feed (wire id -1) ignores them *)
      if t.pw_id >= 0 then begin
        t.pw_id <- -1;
        t.pw_verdict <- 0
      end
    | None -> ());
    let seq = t.events_processed in
    (* Phases 1 and 2 are the every-event fast path, so both are plain
       index loops: a closure handed to Array.iter/Vec.iter (or the
       option of a find_opt) would be this path's only OCaml-heap
       allocation, and the local refs below stay unboxed because no
       closure captures them. *)
    (* phase 1 — automaton dispatch: evaluate each candidate node's
       class predicate once, add the event to the node's history class,
       and queue every subscribing (pattern, leaf) pair onto the touched
       worklist *)
    Vec.clear t.touched;
    let cands = Network.candidates t.network ~esym in
    for ci = 0 to Array.length cands - 1 do
      let n = Array.unsafe_get cands ci in
      (* one node test stands in for every subscriber's leaf test *)
      t.shared_evals <- t.shared_evals + (Array.length n.Network.nsubs - 1);
      if Network.node_matches n ~tsym ~esym ~xsym then begin
        History.add_class t.store ~cls:n.Network.nid (cur_event t);
        let subs = n.Network.nsubs in
        for si = 0 to Array.length subs - 1 do
          let (p : pstate), l = Array.unsafe_get subs si in
          if p.ptouched_seq <> seq then begin
            p.ptouched_seq <- seq;
            Vec.clear p.pscratch;
            Vec.clear p.panchors;
            Vec.push t.touched p
          end;
          Vec.push p.pscratch (if p.pgeneric.(l) then generic_bit lor l else l)
        done
      end
    done;
    (* phase 2 — per touched pattern, in pid order: mark slots seen and
       collect anchors in the old dispatch order (exact-type leaves
       ascending, then generic ascending), restored by sorting the
       scratch keys. Work is O(touched patterns), not O(registered). *)
    sort_touched t.touched;
    let any_anchor = ref false in
    let ntouched = Vec.length t.touched in
    for ti = 0 to ntouched - 1 do
      let p = Vec.get t.touched ti in
      sort_scratch p.pscratch;
      for ki = 0 to Vec.length p.pscratch - 1 do
        let key = Vec.get p.pscratch ki in
        let l = key land leaf_mask in
        Subset.seen p.psubset ~leaf:l ~trace;
        if p.pnet.Compile.terminating.(l) then begin
          Vec.push p.panchors l;
          any_anchor := true
        end
      done
    done;
    (* phase 3 — search: rounds over anchor index; round r runs every
       anchored pattern's r-th anchored search inline, then one combined
       cross-pattern pinned batch. Each pattern's operation sequence
       (anchored search, then its surviving pins in slot order) is
       exactly what a dedicated engine would execute. *)
    if !any_anchor then begin
      t.terminating_arrivals <- t.terminating_arrivals + 1;
      (* already materialized by the class-matched add_class above *)
      let ev = cur_event t in
      let timed = config.record_latency || t.tracer <> None in
      let t0 = if timed then Clock.now_us () else 0. in
      let anchors_run = ref 0 in
      let round = ref 0 in
      let progressed = ref true in
      while !progressed do
        progressed := false;
        Vec.clear t.pin_batch;
        (* the O(1) work estimate for the batch: the largest
           first-search-level history among the contributing anchors *)
        let batch_work = ref 0 in
        for ti = 0 to ntouched - 1 do
          let p = Vec.get t.touched ti in
          if !round < Vec.length p.panchors then begin
              progressed := true;
              incr anchors_run;
              let anchor_leaf = Vec.get p.panchors !round in
              let outcome = run_search p ~anchor_leaf ~anchor:ev () in
              consume_outcome p outcome;
              if config.pin_searches then begin
                (* a pin on the anchor leaf is either the anchor's own
                   slot (just searched) or contradictory *)
                let slots =
                  List.filter
                    (fun (l, _) -> l <> anchor_leaf)
                    (Subset.uncovered_seen_slots p.psubset)
                in
                let surviving =
                  if config.pin_filtering then
                    filter_slots p ~anchored_failed:(outcome = Matcher.Not_found) slots
                  else slots
                in
                if surviving <> [] then begin
                  let fsl = p.pfirst_leaf.(anchor_leaf) in
                  let work = if fsl < 0 then 0 else History.entries_for p.phistory ~leaf:fsl in
                  if work > !batch_work then batch_work := work;
                  List.iter
                    (fun (l, tr) -> Vec.push t.pin_batch (p, anchor_leaf, l, tr))
                    surviving
                end
              end
            end
        done;
        let n = Vec.length t.pin_batch in
        if n > 0 then begin
          let run_inline () =
            Vec.iter
              (fun ((p : pstate), anchor_leaf, l, tr) ->
                if not (Subset.is_covered p.psubset ~leaf:l ~trace:tr) then
                  consume_pin p (l, tr) (run_search ~pin:(l, tr) p ~anchor_leaf ~anchor:ev ()))
              t.pin_batch
          in
          let fan_out () =
            let items = Vec.to_array t.pin_batch in
            let results =
              Search_pool.run (get_pool ()) ~n:(Array.length items) (fun i ->
                  let (p : pstate), anchor_leaf, l, tr = items.(i) in
                  let stats = Matcher.new_stats () in
                  let search () =
                    (* plans are immutable, so sharing one across worker
                       domains is safe *)
                    Matcher.search ~plan:p.pplans.(anchor_leaf) ~net:p.pinet
                      ~history:p.phistory ~n_traces ~trace_of_sym:t.trace_of_sym
                      ~partner_of:t.partner_of ~anchor_leaf ~anchor:ev ~pin:(l, tr)
                      ?node_budget:config.node_budget ~stats ()
                  in
                  let outcome =
                    match t.tracer with
                    | None -> search ()
                    | Some trc ->
                      (* recorded on the executing domain: the span's tid
                         is the worker's domain id, which is what puts
                         worker rows in the Chrome trace *)
                      let ts = Clock.now_us () in
                      let o = search () in
                      let dt = Clock.now_us () -. ts in
                      Tracer.record_search trc ~name:"pinned" ~cat:"worker" ~ts_us:ts
                        ~dur_us:dt
                        ~tid:(Stdlib.Domain.self () :> int)
                        ~pattern:p.pid ~anchor_leaf ~nodes:stats.Matcher.nodes
                        ~backjumps:stats.Matcher.backjumps ~outcome:(outcome_tag o)
                        ~pin_leaf:l ~pin_trace:tr;
                      o
                  in
                  (outcome, stats))
            in
            Array.iteri
              (fun i (outcome, (s : Matcher.stats)) ->
                let (p : pstate), _, l, tr = items.(i) in
                p.pstats.Matcher.nodes <- p.pstats.Matcher.nodes + s.Matcher.nodes;
                p.pstats.Matcher.backjumps <- p.pstats.Matcher.backjumps + s.Matcher.backjumps;
                p.pstats.Matcher.searches <- p.pstats.Matcher.searches + s.Matcher.searches;
                if s.Matcher.miss_level > p.pstats.Matcher.miss_level then begin
                  p.pstats.Matcher.miss_level <- s.Matcher.miss_level;
                  p.pstats.Matcher.miss_leaf <- s.Matcher.miss_leaf
                end;
                if not (Subset.is_covered p.psubset ~leaf:l ~trace:tr) then
                  consume_pin p (l, tr) outcome
                else t.speculative_discards <- t.speculative_discards + 1)
              results
          in
          (* Fan out only when there is enough surviving work to amortize
             the pool's wake/merge cost; above the static gate the
             cut-over self-calibrates on batch timings (see the config
             docs). Inline and fanned-out execution are observably
             identical, so the policy only affects wall-clock time. *)
          let eligible =
            t.parallelism > 1
            && n >= max 2 config.cutover_batch
            && !batch_work >= config.cutover_work
          in
          if forced_fan_out && t.parallelism > 1 then fan_out ()
          else if not eligible then run_inline ()
          else begin
            t.eligible_batches <- t.eligible_batches + 1;
            let fan =
              if t.fan_samples < calib_samples then true
              else if t.inline_samples < calib_samples then false
              else begin
                let prefer_fan = t.ew_fan_us < t.ew_inline_us in
                if t.eligible_batches land 63 = 0 then not prefer_fan else prefer_fan
              end
            in
            let tb = Clock.now_us () in
            if fan then fan_out () else run_inline ();
            let per_slot = (Clock.now_us () -. tb) /. float_of_int n in
            if fan then begin
              t.ew_fan_us <- ewma t.ew_fan_us per_slot;
              t.fan_samples <- t.fan_samples + 1
            end
            else begin
              t.ew_inline_us <- ewma t.ew_inline_us per_slot;
              t.inline_samples <- t.inline_samples + 1
            end
          end
        end;
        incr round
      done;
      if timed then begin
        let lat_us = Clock.now_us () -. t0 in
        if config.record_latency then begin
          (match config.latency_sink with
          | Samples -> Vec.push t.latencies lat_us
          | Histogram -> Hist.record t.latency_hist lat_us
          | Both ->
            Vec.push t.latencies lat_us;
            Hist.record t.latency_hist lat_us);
          (* per-pattern latency: the same arrival-level sample, recorded
             for each pattern that anchored — always bounded (histogram) *)
          match config.latency_sink with
          | Histogram | Both ->
            for ti = 0 to ntouched - 1 do
              let p = Vec.get t.touched ti in
              if Vec.length p.panchors > 0 then Hist.record p.plat_hist lat_us
            done
          | Samples -> ()
        end;
        (match t.flight with
        | Some fl -> Flight.note_match fl ~trace:ev.trace ~index:ev.index ~dur_us:lat_us
        | None -> ());
        match t.tracer with
        | Some tr ->
          Tracer.record_arrival tr ~ts_us:t0 ~dur_us:lat_us
            ~tid:(Stdlib.Domain.self () :> int)
            ~trace:ev.trace ~index:ev.index ~etype:ev.etype ~anchors:!anchors_run
        | None -> ()
      end
    end;
    maybe_gc ()
  in
  if config.arena then begin
    let ar = Poet.arena poet in
    (* a trace's symbol never changes, so read it from this
       cache-resident table instead of the arena's streaming tsym
       column (one fewer cold column touched per event) *)
    let tsyms =
      Array.map (Symbol.intern (Poet.symbols poet)) (Poet.trace_names poet)
    in
    Poet.subscribe_flat poet (fun eid ->
        t.cur_eid <- eid;
        (* avoid a write-barrier store per event: [cur_ev] only needs
           clearing after a boxed-view materialization *)
        if t.cur_ev != Event.none then t.cur_ev <- Event.none;
        let trace = Arena.unsafe_trace ar eid in
        arrive ~trace
          ~index:(Arena.unsafe_index ar eid)
          ~tsym:(Array.unsafe_get tsyms trace)
          ~esym:(Arena.unsafe_esym ar eid)
          ~xsym:(Arena.unsafe_xsym ar eid)
          ~comm:(Arena.is_comm_tag (Arena.unsafe_kind_tag ar eid)))
  end
  else
    Poet.subscribe poet (fun (ev : Event.t) ->
        t.cur_eid <- -1;
        t.cur_ev <- ev;
        arrive ~trace:ev.trace ~index:ev.index ~tsym:ev.tsym ~esym:ev.esym ~xsym:ev.xsym
          ~comm:(Event.is_comm ev));
  t

let register_pattern t net =
  let k = Compile.size net in
  if k > Compile.max_leaves then
    invalid_arg
      (Printf.sprintf
         "Engine.add_pattern: pattern has %d leaves; the matcher's conflict bitsets cap \
          patterns at %d"
         k Compile.max_leaves);
  let inet = Compile.intern_net net ~intern:t.intern in
  (* a match can bind up to [k] events of one identical-event run, so
     pruning must keep at least that many (the cap only ever grows;
     detaching a pattern leaving it large is merely conservative) *)
  History.set_run_cap t.store k;
  let pid = t.next_pid in
  (* shape-shared artifacts: plans (and derived first search leaves)
     depend only on the net's shape — spec kinds, constraint matrix,
     partners, post-checks — never on exact symbol values, so template
     instances (and any structurally equal patterns) share one physical
     plan set *)
  let plans, first_leaf =
    match Hashtbl.find_opt t.plan_cache (Compile.shape_key inet) with
    | Some v -> v
    | None ->
      let plans = Array.init k (fun l -> Matcher.plan ~net:inet ~anchor_leaf:l) in
      let first_leaf =
        Array.init k (fun l ->
            match Matcher.first_search_leaf ~net:inet ~anchor_leaf:l with
            | Some x -> x
            | None -> -1)
      in
      Hashtbl.add t.plan_cache (Compile.shape_key inet) (plans, first_leaf);
      (plans, first_leaf)
  in
  (* find-or-create this pattern's automaton nodes first — the history
     view is keyed on their ids. An O(leaves) incremental edit of the
     network, independent of how many patterns are already registered. *)
  let nodes =
    Array.init k (fun l ->
        let n, created = Network.resolve t.network ~key:(Compile.class_key inet l) in
        if created then History.ensure_class t.store n.Network.nid;
        n)
  in
  let p =
    {
      pid;
      pnet = net;
      pinet = inet;
      phistory =
        History.view t.store ~classes:(Array.map (fun n -> n.Network.nid) nodes);
      psubset = Subset.create ~k ~n_traces:t.n_traces ~report_cap:t.cfg.report_cap ();
      pstats = Matcher.new_stats ();
      pfirst_leaf = first_leaf;
      pplans = plans;
      pgcable = gc_able_leaves net;
      pgeneric =
        Array.init k (fun l ->
            match inet.Compile.ityp.(l) with Compile.I_exact _ -> false | _ -> true);
      ppin_gen = Array.make_matrix k t.n_traces (-1);
      ppin_matches = Array.make_matrix k t.n_traces 0;
      pscratch = Vec.create ();
      panchors = Vec.create ();
      ptouched_seq = 0;
      pmatches = 0;
      paborted = 0;
      pskipped = 0;
      pnodes = nodes;
      pm = make_pmeters t.metrics ~pid;
      plat_hist =
        Metrics.histogram t.metrics
          ~help:"Per-terminating-arrival processing time (microseconds)"
          (Metrics.with_labels "ocep_latency_us" [ ("pattern", string_of_int pid) ]);
    }
  in
  Array.iteri
    (fun l n ->
      Network.attach n (p, l);
      recompute_gcable n)
    nodes;
  t.patterns <- t.patterns @ [ p ];
  t.next_pid <- pid + 1;
  pid

let remove_pattern t pid =
  let p = get_pattern t pid in
  t.patterns <- List.filter (fun (q : pstate) -> q.pid <> pid) t.patterns;
  (* per-node incremental edit; a pattern whose leaves share a class key
     subscribes one node several times, and the first unsubscribe drops
     every one of its pairs — dedup so a released node is not touched
     again through a later alias *)
  let seen = Itbl.create 8 in
  Array.iter
    (fun n ->
      if not (Itbl.mem seen n.Network.nid) then begin
        Itbl.add seen n.Network.nid ();
        if Network.unsubscribe t.network n ~remove:(fun (q, _) -> q == p) then
          History.release_class t.store n.Network.nid
        else recompute_gcable n
      end)
    p.pnodes

let create ?config ?(patterns = []) ?net ~poet () =
  let t = create_multi ?config ~poet () in
  Option.iter (fun n -> ignore (register_pattern t n)) net;
  List.iter (fun n -> ignore (register_pattern t n)) patterns;
  t

let pattern_ids t = List.map (fun (p : pstate) -> p.pid) t.patterns

let pattern_count t = List.length t.patterns

let net t = (first_pattern t).pnet

let interned_net t = (first_pattern t).pinet

let config t = t.cfg

let reports t = List.concat_map (fun (p : pstate) -> Subset.reports p.psubset) t.patterns

let matches_found t = List.fold_left (fun acc (p : pstate) -> acc + p.pmatches) 0 t.patterns

let find_containing_in t (p : pstate) (ev : Event.t) =
  (* candidate anchors in the old dispatch order: exact-type leaves
     ascending, then generic ascending *)
  let k = Compile.size p.pnet in
  let matching g =
    List.filter
      (fun l -> p.pgeneric.(l) = g && Compile.leaf_matches_i p.pinet l ev)
      (List.init k (fun l -> l))
  in
  let rec try_leaves = function
    | [] -> None
    | anchor_leaf :: rest -> (
      match
        Matcher.search ~plan:p.pplans.(anchor_leaf) ~net:p.pinet ~history:p.phistory
          ~n_traces:t.n_traces ~trace_of_sym:t.trace_of_sym ~partner_of:t.partner_of
          ~anchor_leaf ~anchor:ev ~stats:p.pstats ()
      with
      | Matcher.Found m -> Some m
      | Matcher.Not_found | Matcher.Aborted -> try_leaves rest)
  in
  try_leaves (matching false @ matching true)

let find_containing t ev =
  let rec go = function
    | [] -> None
    | p :: rest -> ( match find_containing_in t p ev with Some m -> Some m | None -> go rest)
  in
  go t.patterns

let latencies_us t = Vec.to_array t.latencies

let latency_histogram t = t.latency_hist

let metrics t = t.metrics

let tracer t = t.tracer

(* Pull every internal counter into the registry. Kept out of the
   per-event hot path: called by whoever is about to render a snapshot
   (the CLI's --metrics-every loop, tests, or a final dump). *)
let sync_metrics t =
  let m = t.meters in
  let sum f = List.fold_left (fun acc p -> acc + f p) 0 t.patterns in
  Metrics.set_counter m.m_events t.events_processed;
  Metrics.set_counter m.m_terminating t.terminating_arrivals;
  Metrics.set_counter m.m_matches (sum (fun p -> p.pmatches));
  Metrics.set m.m_reports
    (float_of_int (sum (fun p -> List.length (Subset.reports p.psubset))));
  Metrics.set_counter m.m_nodes (sum (fun p -> p.pstats.Matcher.nodes));
  Metrics.set_counter m.m_backjumps (sum (fun p -> p.pstats.Matcher.backjumps));
  Metrics.set_counter m.m_searches (sum (fun p -> p.pstats.Matcher.searches));
  Metrics.set_counter m.m_aborts (sum (fun p -> p.paborted));
  Metrics.set_counter m.m_epochs (History.store_epochs_total t.store);
  Metrics.set m.m_hist_entries (float_of_int (History.store_entries t.store));
  Metrics.set_counter m.m_hist_dropped (History.store_dropped t.store);
  Metrics.set_counter m.m_hist_pruned (History.store_pruned t.store);
  Metrics.set_counter m.m_hist_cap_evicted (History.store_cap_evicted t.store);
  Metrics.set m.m_covered (float_of_int (sum (fun p -> Subset.covered_count p.psubset)));
  Metrics.set m.m_seen (float_of_int (sum (fun p -> Subset.seen_count p.psubset)));
  Metrics.set_counter m.m_subset_dropped (sum (fun p -> Subset.dropped_count p.psubset));
  Metrics.set_counter m.m_spec_discards t.speculative_discards;
  Metrics.set_counter m.m_pinned_skipped (sum (fun p -> p.pskipped));
  Metrics.set m.m_patterns (float_of_int (List.length t.patterns));
  Metrics.set_counter m.m_automaton_nodes (Network.nodes_allocated t.network);
  Metrics.set_counter m.m_automaton_shared t.shared_evals;
  List.iter
    (fun (p : pstate) ->
      Metrics.set_counter p.pm.pm_matches p.pmatches;
      Metrics.set p.pm.pm_reports (float_of_int (List.length (Subset.reports p.psubset)));
      Metrics.set p.pm.pm_covered (float_of_int (Subset.covered_count p.psubset));
      Metrics.set p.pm.pm_seen (float_of_int (Subset.seen_count p.psubset));
      Metrics.set_counter p.pm.pm_nodes p.pstats.Matcher.nodes;
      Metrics.set_counter p.pm.pm_backjumps p.pstats.Matcher.backjumps;
      Metrics.set_counter p.pm.pm_searches p.pstats.Matcher.searches;
      Metrics.set_counter p.pm.pm_aborts p.paborted;
      Metrics.set_counter p.pm.pm_pinned_skipped p.pskipped;
      Metrics.set_counter p.pm.pm_subset_dropped (Subset.dropped_count p.psubset))
    t.patterns;
  (match t.pool with
  | Some p ->
    let s = Search_pool.stats p in
    Metrics.set_counter m.m_fan_outs s.Search_pool.fan_outs;
    Metrics.set_counter m.m_fan_out_tasks s.Search_pool.tasks;
    Array.iteri
      (fun i busy -> if i < Array.length m.m_worker_busy then Metrics.set m.m_worker_busy.(i) busy)
      s.Search_pool.busy_s
  | None -> ());
  Metrics.set_counter m.m_poet_ingested (Poet.ingested t.poet);
  Metrics.set_counter m.m_poet_notified (Poet.notifications t.poet);
  (match t.flight with
  | Some fl ->
    let now = Clock.now_us () in
    Array.iteri
      (fun tr g ->
        let last = Flight.last_dispatch_us fl ~trace:tr in
        Metrics.set g (if last > 0. then now -. last else -1.))
      t.m_staleness
  | None -> ());
  match t.tracer with
  | Some tr ->
    Metrics.set_counter m.m_spans (Tracer.recorded tr);
    Metrics.set_counter m.m_spans_dropped (Tracer.dropped tr)
  | None -> ()

let events_processed t = t.events_processed

let terminating_arrivals t = t.terminating_arrivals

let history_entries t = History.store_entries t.store

let history_dropped t = History.store_dropped t.store

let automaton_nodes t = Network.node_count t.network

let automaton_nodes_total t = Network.nodes_allocated t.network

let automaton_shared_evals t = t.shared_evals

let covered_slots t =
  List.fold_left (fun acc (p : pstate) -> acc + Subset.covered_count p.psubset) 0 t.patterns

let seen_slots t =
  List.fold_left (fun acc (p : pstate) -> acc + Subset.seen_count p.psubset) 0 t.patterns

let search_stats t =
  match t.patterns with
  | [ p ] -> p.pstats
  | ps ->
    let s = Matcher.new_stats () in
    List.iter
      (fun (p : pstate) ->
        s.Matcher.nodes <- s.Matcher.nodes + p.pstats.Matcher.nodes;
        s.Matcher.backjumps <- s.Matcher.backjumps + p.pstats.Matcher.backjumps;
        s.Matcher.searches <- s.Matcher.searches + p.pstats.Matcher.searches;
        if p.pstats.Matcher.miss_level > s.Matcher.miss_level then begin
          s.Matcher.miss_level <- p.pstats.Matcher.miss_level;
          s.Matcher.miss_leaf <- p.pstats.Matcher.miss_leaf
        end)
      ps;
    s

let aborted_searches t = List.fold_left (fun acc (p : pstate) -> acc + p.paborted) 0 t.patterns

let pinned_skipped t = List.fold_left (fun acc (p : pstate) -> acc + p.pskipped) 0 t.patterns

let parallelism t = t.parallelism

let shutdown t =
  match t.pool with
  | Some p ->
    Search_pool.shutdown p;
    t.pool <- None
  | None -> ()

let poet t = t.poet

let feed_raw t raw = Poet.ingest t.poet raw

let feed_raw_flat t raw = ignore (Poet.ingest_flat t.poet raw : int)

(* Batch feed: one bounds check and one tight loop per block instead of
   a per-event call through the boxed [ingest]. In arena mode nothing in
   the loop allocates unless an event class-matches. *)
let feed_block t ?(off = 0) ?len raws =
  let n = Array.length raws in
  let len = match len with Some l -> l | None -> n - off in
  if off < 0 || len < 0 || off + len > n then
    invalid_arg
      (Printf.sprintf "Engine.feed_block: off %d len %d out of bounds for %d records" off len n);
  let poet = t.poet in
  for i = off to off + len - 1 do
    ignore (Poet.ingest_flat poet (Array.unsafe_get raws i) : int)
  done

let arena_mode t = t.cfg.arena

let set_wire_stamps t ~decode_us ~admit_us =
  Array.unsafe_set t.pw_times 0 decode_us;
  Array.unsafe_set t.pw_times 1 admit_us

(* ints only: float arguments to a cross-library call are boxed (no
   flambda), so the per-record path must not carry them — stamps arrive
   via [set_wire_stamps] only when they change (one record in a sample
   window, plus buffered releases) *)
let feed_wire t ~id ~verdict raw =
  t.pw_id <- id;
  t.pw_verdict <- Ocep_obs.Provenance.verdict_to_int verdict;
  Poet.ingest t.poet raw

let flight t = t.flight

let note_wire_drop t ~id ~verdict =
  match t.flight with Some fl -> Flight.note_drop fl ~id ~verdict | None -> ()

(* A handle is just (engine, pid); the pstate is re-resolved on every
   call so a detached pattern fails loudly instead of reading frozen
   state through a stale pointer. *)
module Handle = struct
  type nonrec t = { h_eng : t; h_pid : pattern_id }

  type metrics = {
    matches : int;
    reports_retained : int;
    covered_slots : int;
    seen_slots : int;
    nodes : int;
    backjumps : int;
    searches : int;
    aborted : int;
    pinned_skipped : int;
  }

  let get h =
    match live_pattern h.h_eng h.h_pid with
    | Some p -> p
    | None -> Ocep_error.error (Ocep_error.Stale_handle { pattern = h.h_pid })

  let id h = h.h_pid
  let is_live h = Option.is_some (live_pattern h.h_eng h.h_pid)
  let net h = (get h).pnet
  let reports h = Subset.reports (get h).psubset
  let matches_found h = (get h).pmatches
  let covered_slots h = Subset.covered_count (get h).psubset
  let seen_slots h = Subset.seen_count (get h).psubset
  let search_stats h = (get h).pstats
  let aborted_searches h = (get h).paborted
  let pinned_skipped h = (get h).pskipped
  let find_containing h ev = find_containing_in h.h_eng (get h) ev
  let latency_histogram h = (get h).plat_hist
  let history_entries h ~leaf = History.entries_for (get h).phistory ~leaf

  let nearest_miss h =
    let s = (get h).pstats in
    if s.Matcher.miss_level < 0 then None
    else Some (s.Matcher.miss_leaf, s.Matcher.miss_level)

  let metrics h =
    let p = get h in
    {
      matches = p.pmatches;
      reports_retained = List.length (Subset.reports p.psubset);
      covered_slots = Subset.covered_count p.psubset;
      seen_slots = Subset.seen_count p.psubset;
      nodes = p.pstats.Matcher.nodes;
      backjumps = p.pstats.Matcher.backjumps;
      searches = p.pstats.Matcher.searches;
      aborted = p.paborted;
      pinned_skipped = p.pskipped;
    }

  let detach h =
    match live_pattern h.h_eng h.h_pid with
    | Some _ -> remove_pattern h.h_eng h.h_pid
    | None -> Ocep_error.error (Ocep_error.Stale_handle { pattern = h.h_pid })
end

let add_pattern t net = { Handle.h_eng = t; h_pid = register_pattern t net }

let handles t = List.map (fun (p : pstate) -> { Handle.h_eng = t; h_pid = p.pid }) t.patterns

(* FNV-1a over each pattern's observable state — the stable name the
   CLI prints and the service control plane ships in STATS/DRAIN
   replies. Digest equality is bit-identity of the match reports. *)
let fnv_seed = 0xcbf29ce484222325L

let fnv_int h n =
  let acc = ref h in
  for i = 0 to 7 do
    acc :=
      Int64.mul (Int64.logxor !acc (Int64.of_int ((n asr (8 * i)) land 0xff))) 0x100000001b3L
  done;
  !acc

let mix_report h (r : Subset.report) =
  let h = ref (fnv_int h r.Subset.seq) in
  List.iter
    (fun (a, b) ->
      h := fnv_int !h a;
      h := fnv_int !h b)
    r.Subset.fresh;
  Array.iter
    (fun (e : Event.t) ->
      h := fnv_int !h e.Event.trace;
      h := fnv_int !h e.Event.index)
    r.Subset.events;
  !h

let report_digest ~pattern_id (r : Subset.report) =
  Printf.sprintf "%016Lx" (mix_report (fnv_int fnv_seed pattern_id) r)

let reports_digest t =
  let h = ref fnv_seed in
  List.iter
    (fun (p : pstate) ->
      h := fnv_int !h p.pid;
      h := fnv_int !h p.pmatches;
      h := fnv_int !h (Subset.covered_count p.psubset);
      h := fnv_int !h (Subset.seen_count p.psubset);
      List.iter (fun r -> h := mix_report !h r) (Subset.reports p.psubset))
    t.patterns;
  Printf.sprintf "%016Lx" !h
