open Ocep_base
module Compile = Ocep_pattern.Compile
module Poet = Ocep_poet.Poet
module Hist = Ocep_stats.Histogram
module Metrics = Ocep_obs.Metrics
module Tracer = Ocep_obs.Tracer
module Itbl = Hashtbl.Make (Int)

type latency_sink = Samples | Histogram | Both

type config = {
  pruning : bool;
  max_history_per_trace : int option;
  pin_searches : bool;
  pin_filtering : bool;
  node_budget : int option;
  report_cap : int;
  record_latency : bool;
  latency_sink : latency_sink;
  gc_every : int option;
  parallelism : int;
  cutover_batch : int;
  cutover_work : int;
  trace_spans : bool;
}

let default_config =
  {
    pruning = true;
    max_history_per_trace = None;
    pin_searches = true;
    pin_filtering = true;
    node_budget = None;
    report_cap = 100_000;
    record_latency = true;
    latency_sink = Samples;
    gc_every = None;
    parallelism = 1;
    cutover_batch = 4;
    cutover_work = 256;
    trace_spans = false;
  }

let default_trace_capacity = 65_536

(* Reject configurations that would crash later (gc_every = Some 0 used
   to divide by zero in the gc cadence check) or that have no sensible
   meaning, at construction time rather than deep inside on_event. *)
let validate_config (c : config) =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  (match c.gc_every with
  | Some n when n <= 0 -> fail "Engine.create: gc_every must be positive, got %d" n
  | _ -> ());
  (match c.node_budget with
  | Some n when n <= 0 -> fail "Engine.create: node_budget must be positive, got %d" n
  | _ -> ());
  (match c.max_history_per_trace with
  | Some n when n <= 0 -> fail "Engine.create: max_history_per_trace must be positive, got %d" n
  | _ -> ());
  if c.report_cap < 0 then fail "Engine.create: report_cap must be non-negative, got %d" c.report_cap;
  if c.parallelism < 0 then
    fail "Engine.create: parallelism must be >= 0 (0 = one worker per core), got %d" c.parallelism;
  if c.cutover_batch < 0 then
    fail "Engine.create: cutover_batch must be non-negative, got %d" c.cutover_batch;
  if c.cutover_work < 0 then
    fail "Engine.create: cutover_work must be non-negative, got %d" c.cutover_work

(* A leaf's stored events can be garbage-collected once they are in the
   causal past of every trace iff (a) the leaf never serves as interposer
   evidence for a [~>] check and (b) its relation to every possible anchor
   (terminating) leaf excludes Before: any future anchor is causally after
   a fully-seen event, so such an event can never satisfy the constraint
   again. *)
let gc_able_leaves (net : Compile.t) =
  let k = Compile.size net in
  Array.init k (fun l ->
      (not (List.exists (fun (i, _) -> i = l) net.Compile.lim_checks))
      && List.for_all
           (fun a ->
             (not net.Compile.terminating.(a)) || a = l
             ||
             match net.Compile.cons.(l).(a) with
             | Some s -> not s.Compile.before
             | None -> false)
           (List.init k (fun i -> i)))

(* Handles into the metrics registry whose values are pulled from the
   engine's internal counters by [sync_metrics] (called before every
   snapshot) rather than bumped in the hot path — the only always-hot
   instrument is the latency histogram itself. *)
type meters = {
  m_events : Metrics.counter;
  m_terminating : Metrics.counter;
  m_matches : Metrics.counter;
  m_reports : Metrics.gauge;
  m_nodes : Metrics.counter;
  m_backjumps : Metrics.counter;
  m_searches : Metrics.counter;
  m_aborts : Metrics.counter;
  m_epochs : Metrics.counter;
  m_hist_entries : Metrics.gauge;
  m_hist_dropped : Metrics.counter;
  m_hist_pruned : Metrics.counter;
  m_hist_cap_evicted : Metrics.counter;
  m_covered : Metrics.gauge;
  m_seen : Metrics.gauge;
  m_fan_outs : Metrics.counter;
  m_fan_out_tasks : Metrics.counter;
  m_spec_discards : Metrics.counter;
  m_pinned_skipped : Metrics.counter;
  m_worker_busy : Metrics.gauge array;  (* by worker index *)
  m_poet_ingested : Metrics.counter;
  m_poet_notified : Metrics.counter;
  m_spans : Metrics.counter;
  m_spans_dropped : Metrics.counter;
}

type t = {
  cfg : config;
  net : Compile.t;
  inet : Compile.inet;
  poet : Poet.t;
  n_traces : int;
  history : History.t;
  subset : Subset.t;
  stats : Matcher.stats;
  latencies : float Vec.t;
  latency_hist : Hist.t;  (* registered as ocep_latency_us *)
  metrics : Metrics.t;
  meters : meters;
  tracer : Tracer.t option;
  frontier : Vclock.t array;  (* latest timestamp seen per trace *)
  gcable : bool array;
  dispatch : Event.t -> int array;  (* cached per-etype candidate arrays *)
  scratch : int Vec.t;  (* matched leaves of the current arrival *)
  first_leaf : int array;  (* anchor leaf -> first-level leaf, -1 for k = 1 *)
  plans : Matcher.plan array;  (* anchor leaf -> precomputed search plan *)
  pin_gen : int array array;  (* slot -> history generation at last failed pin, -1 none *)
  pin_matches : int array array;  (* slot -> matches_found at last failed pin *)
  parallelism : int;  (* resolved: >= 1 *)
  mutable pool : Search_pool.t option;  (* spawned on first fan-out *)
  mutable matches_found : int;
  mutable events_processed : int;
  mutable terminating_arrivals : int;
  mutable aborted : int;
  mutable speculative_discards : int;
  mutable pinned_skipped : int;
  (* cut-over self-calibration: EWMA of per-slot wall time for eligible
     batches, one per execution mode, plus sample/eligibility counters *)
  mutable ew_inline_us : float;
  mutable ew_fan_us : float;
  mutable inline_samples : int;
  mutable fan_samples : int;
  mutable eligible_batches : int;
}

(* Dispatching an arriving event to the leaves it may class-match: most
   patterns pin the event type exactly, so the merged candidate array of
   each exact etype symbol (that type's leaves, then the wildcard/variable
   ones) is built once here; an arrival is a single int-keyed lookup
   returning a shared array — no per-event allocation, no string hashing.
   Candidates still need the proc/text spec check ({!Compile.leaf_matches_i})
   per event. *)
let make_dispatch (inet : Compile.inet) =
  let k = Array.length inet.Compile.ityp in
  let exact_syms = ref [] in
  for l = 0 to k - 1 do
    match inet.Compile.ityp.(l) with
    | Compile.I_exact sym -> if not (List.mem sym !exact_syms) then exact_syms := sym :: !exact_syms
    | Compile.I_any | Compile.I_var _ -> ()
  done;
  let generic =
    Array.of_list
      (List.filter
         (fun l -> match inet.Compile.ityp.(l) with Compile.I_exact _ -> false | _ -> true)
         (List.init k (fun l -> l)))
  in
  let by_sym : int array Itbl.t = Itbl.create 16 in
  List.iter
    (fun sym ->
      let mine =
        List.filter
          (fun l -> inet.Compile.ityp.(l) = Compile.I_exact sym)
          (List.init k (fun l -> l))
      in
      Itbl.replace by_sym sym (Array.append (Array.of_list mine) generic))
    !exact_syms;
  fun (ev : Event.t) ->
    match Itbl.find_opt by_sym ev.esym with Some a -> a | None -> generic

let make_meters metrics ~parallelism =
  let c ?help name = Metrics.counter metrics ?help name in
  let g ?help name = Metrics.gauge metrics ?help name in
  (* registration order is exposition order, so bind each instrument with a
     [let] (record-literal fields evaluate in unspecified order) *)
  let m_events = c ~help:"Events processed by the engine" "ocep_events_total" in
  let m_terminating =
    c ~help:"Arrivals matching a terminating leaf" "ocep_terminating_arrivals_total"
  in
  let m_matches = c ~help:"Successful searches" "ocep_matches_total" in
  let m_reports = g ~help:"Reported representative subset size" "ocep_reports" in
  let m_nodes = c ~help:"Search-tree nodes expanded" "ocep_search_nodes_total" in
  let m_backjumps = c ~help:"Conflict-directed backjumps" "ocep_search_backjumps_total" in
  let m_searches = c ~help:"Searches started" "ocep_searches_total" in
  let m_aborts = c ~help:"Searches aborted by the node budget" "ocep_search_aborts_total" in
  let m_epochs = c ~help:"Communication-epoch advances" "ocep_epoch_advances_total" in
  let m_hist_entries = g ~help:"Stored history entries" "ocep_history_entries" in
  let m_hist_dropped =
    c ~help:"History entries dropped (cap + GC)" "ocep_history_dropped_total"
  in
  let m_hist_pruned =
    c ~help:"History entries merged by the O(1) pruning rule" "ocep_history_pruned_total"
  in
  let m_hist_cap_evicted =
    c ~help:"History entries evicted by the per-trace cap" "ocep_history_cap_evicted_total"
  in
  let m_covered = g ~help:"Covered coverage slots" "ocep_covered_slots" in
  let m_seen = g ~help:"Seen coverage slots" "ocep_seen_slots" in
  let m_fan_outs = c ~help:"Pinned-search batches fanned out" "ocep_fan_outs_total" in
  let m_fan_out_tasks = c ~help:"Pinned searches run by the pool" "ocep_fan_out_tasks_total" in
  let m_spec_discards =
    c ~help:"Speculative pinned results discarded at merge" "ocep_speculative_discards_total"
  in
  let m_pinned_skipped =
    c ~help:"Pinned searches skipped by the slot pre-filter" "ocep_pinned_skipped_total"
  in
  let m_worker_busy =
    Array.init parallelism (fun i ->
        g
          ~help:"Wall-clock seconds each fan-out worker spent searching"
          (Printf.sprintf "ocep_pool_worker_busy_seconds{worker=\"%d\"}" i))
  in
  let m_poet_ingested = c ~help:"Events ingested by POET" "ocep_poet_events_ingested_total" in
  let m_poet_notified =
    c ~help:"POET subscriber callbacks invoked" "ocep_poet_notifications_total"
  in
  let m_spans = c ~help:"Trace spans recorded" "ocep_trace_spans_total" in
  let m_spans_dropped =
    c ~help:"Trace spans overwritten by the ring buffer" "ocep_trace_spans_dropped_total"
  in
  {
    m_events;
    m_terminating;
    m_matches;
    m_reports;
    m_nodes;
    m_backjumps;
    m_searches;
    m_aborts;
    m_epochs;
    m_hist_entries;
    m_hist_dropped;
    m_hist_pruned;
    m_hist_cap_evicted;
    m_covered;
    m_seen;
    m_fan_outs;
    m_fan_out_tasks;
    m_spec_discards;
    m_pinned_skipped;
    m_worker_busy;
    m_poet_ingested;
    m_poet_notified;
    m_spans;
    m_spans_dropped;
  }

let create ?(config = default_config) ~net ~poet () =
  validate_config config;
  let n_traces = Poet.trace_count poet in
  let k = Compile.size net in
  let parallelism =
    if config.parallelism = 0 then max 1 (Stdlib.Domain.recommended_domain_count ())
    else config.parallelism
  in
  let inet = Compile.intern_net net ~intern:(Ocep_poet.Poet.symbols poet |> Symbol.intern) in
  let metrics = Metrics.create () in
  let t =
    {
      cfg = config;
      net;
      inet;
      poet;
      n_traces;
      history =
        History.create net ~n_traces ~pruning:config.pruning
          ?max_per_trace:config.max_history_per_trace ();
      subset = Subset.create ~k ~n_traces ~report_cap:config.report_cap ();
      stats = Matcher.new_stats ();
      latencies = Vec.create ();
      latency_hist =
        Metrics.histogram metrics
          ~help:"Per-terminating-arrival processing time (microseconds)" "ocep_latency_us";
      metrics;
      meters = make_meters metrics ~parallelism;
      tracer =
        (if config.trace_spans then Some (Tracer.create ~capacity:default_trace_capacity)
         else None);
      frontier = Array.make n_traces (Vclock.make ~dim:n_traces);
      gcable = gc_able_leaves net;
      dispatch = make_dispatch inet;
      scratch = Vec.create ();
      first_leaf =
        Array.init k (fun l ->
            match Matcher.first_search_leaf ~net:inet ~anchor_leaf:l with
            | Some x -> x
            | None -> -1);
      plans = Array.init k (fun l -> Matcher.plan ~net:inet ~anchor_leaf:l);
      pin_gen = Array.make_matrix k n_traces (-1);
      pin_matches = Array.make_matrix k n_traces 0;
      parallelism;
      pool = None;
      matches_found = 0;
      events_processed = 0;
      terminating_arrivals = 0;
      aborted = 0;
      speculative_discards = 0;
      pinned_skipped = 0;
      ew_inline_us = 0.;
      ew_fan_us = 0.;
      inline_samples = 0;
      fan_samples = 0;
      eligible_batches = 0;
    }
  in
  let trace_of_sym = Poet.trace_of_sym poet in
  let partner_of = Poet.find_partner poet in
  let consume_outcome outcome =
    match outcome with
    | Matcher.Found m ->
      t.matches_found <- t.matches_found + 1;
      ignore (Subset.record t.subset ~seq:t.events_processed m)
    | Matcher.Not_found -> ()
    | Matcher.Aborted -> t.aborted <- t.aborted + 1
  in
  (* Consume a pinned search's result for a slot that is still uncovered.
     A definitive failure is remembered with the slot's current history
     generation and the global match count; the record can only be
     consulted again in node-budget runs (without a budget, batches only
     survive the anchored-failure filter right after a match, which
     bumps matches_found and invalidates every record — DESIGN.md §4b).
     There the skip is a heuristic in the budget's own spirit: the slot
     looks exactly as it did when an identical pin failed, so re-paying
     the (budget-capped) search is judged not worth it. Sequential and
     parallel modes build records and skips identically, so their
     equivalence is unaffected. *)
  let consume_pin (l, tr) outcome =
    (match outcome with
    | Matcher.Not_found ->
      t.pin_gen.(l).(tr) <- History.generation t.history ~leaf:l ~trace:tr;
      t.pin_matches.(l).(tr) <- t.matches_found
    | Matcher.Found _ | Matcher.Aborted -> ());
    consume_outcome outcome
  in
  let outcome_tag = function
    | Matcher.Found _ -> "found"
    | Matcher.Not_found -> "not_found"
    | Matcher.Aborted -> "aborted"
  in
  let search_args ?pin ~anchor_leaf ~(stats : Matcher.stats) ~nodes0 ~backjumps0 outcome =
    let base =
      [
        ("anchor_leaf", Tracer.Int anchor_leaf);
        ("nodes", Tracer.Int (stats.Matcher.nodes - nodes0));
        ("backjumps", Tracer.Int (stats.Matcher.backjumps - backjumps0));
        ("outcome", Tracer.Str (outcome_tag outcome));
      ]
    in
    match pin with
    | None -> base
    | Some (l, tr) -> ("pin_leaf", Tracer.Int l) :: ("pin_trace", Tracer.Int tr) :: base
  in
  let run_search ?pin ~anchor_leaf ~anchor () =
    let search () =
      Matcher.search ~plan:t.plans.(anchor_leaf) ~net:inet ~history:t.history ~n_traces
        ~trace_of_sym ~partner_of ~anchor_leaf ~anchor ?pin
        ?node_budget:config.node_budget ~stats:t.stats ()
    in
    match t.tracer with
    | None -> search ()
    | Some tr ->
      let nodes0 = t.stats.Matcher.nodes and backjumps0 = t.stats.Matcher.backjumps in
      let t0 = Clock.now_us () in
      let outcome = search () in
      let dt = Clock.now_us () -. t0 in
      Tracer.record tr
        ~name:(if pin = None then "search" else "pinned")
        ~cat:"engine" ~ts_us:t0 ~dur_us:dt
        ~tid:(Stdlib.Domain.self () :> int)
        ~args:(search_args ?pin ~anchor_leaf ~stats:t.stats ~nodes0 ~backjumps0 outcome);
      outcome
  in
  let get_pool () =
    match t.pool with
    | Some p -> p
    | None ->
      let p = Search_pool.create ?tracer:t.tracer ~workers:t.parallelism () in
      t.pool <- Some p;
      p
  in
  (* Fan the pinned searches of one terminating arrival out across the
     pool. Every search only reads the shared history/POET tables (no
     event is ingested while this arrival is being processed), so the
     workers need no locks; each gets a private Matcher.stats. The
     results are consumed on the calling domain, deterministically in
     slot order: a slot that an earlier-in-order match already covered
     is dropped unconsumed — sequential execution would never have
     searched it — which makes coverage, reports and matches_found
     bit-identical to parallelism = 1. Only the merged node/backjump
     counters can exceed the sequential ones (speculative work). *)
  let fan_out_pins ~anchor_leaf ~anchor slots =
    let slots = Array.of_list slots in
    let results =
      Search_pool.run (get_pool ()) ~n:(Array.length slots) (fun i ->
          let l, tr = slots.(i) in
          let stats = Matcher.new_stats () in
          let search () =
            (* plans are immutable, so sharing one across worker domains
               is safe *)
            Matcher.search ~plan:t.plans.(anchor_leaf) ~net:inet ~history:t.history ~n_traces
              ~trace_of_sym ~partner_of ~anchor_leaf ~anchor ~pin:(l, tr)
              ?node_budget:config.node_budget ~stats ()
          in
          let outcome =
            match t.tracer with
            | None -> search ()
            | Some trc ->
              (* recorded on the executing domain: the span's tid is the
                 worker's domain id, which is what puts worker rows in
                 the Chrome trace *)
              let t0 = Clock.now_us () in
              let o = search () in
              let dt = Clock.now_us () -. t0 in
              Tracer.record trc ~name:"pinned" ~cat:"worker" ~ts_us:t0 ~dur_us:dt
                ~tid:(Stdlib.Domain.self () :> int)
                ~args:
                  (search_args ~pin:(l, tr) ~anchor_leaf ~stats ~nodes0:0 ~backjumps0:0 o);
              o
          in
          (outcome, stats))
    in
    Array.iteri
      (fun i (outcome, (s : Matcher.stats)) ->
        t.stats.Matcher.nodes <- t.stats.Matcher.nodes + s.Matcher.nodes;
        t.stats.Matcher.backjumps <- t.stats.Matcher.backjumps + s.Matcher.backjumps;
        t.stats.Matcher.searches <- t.stats.Matcher.searches + s.Matcher.searches;
        let l, tr = slots.(i) in
        if not (Subset.is_covered t.subset ~leaf:l ~trace:tr) then consume_pin (l, tr) outcome
        else t.speculative_discards <- t.speculative_discards + 1)
      results
  in
  let maybe_gc () =
    match config.gc_every with
    | Some n when t.events_processed mod n = 0 && Array.exists (fun b -> b) t.gcable ->
      (* threshold per trace: the greatest index already covered by every
         trace's frontier *)
      let thresholds =
        Array.init n_traces (fun tr ->
            Array.fold_left (fun acc vc -> min acc (Vclock.get vc tr)) max_int t.frontier)
      in
      ignore (History.gc t.history ~thresholds ~leaves:t.gcable)
    | _ -> ()
  in
  (* Skip decisions for one pinned batch, made before any search of the
     batch runs so that inline and fanned-out execution agree. Each rule
     only skips searches that must return Not_found:
     1. the slot's (leaf, trace) history is empty — every candidate a
        pinned search could bind to the pinned leaf on that trace lives
        in exactly that history;
     2. the anchored (unpinned) search of this batch proved Not_found
        exhaustively — a pinned match is in particular an unpinned one;
     3. an identical pinned search failed before and neither the slot's
        history generation nor the match count has changed since. *)
  let filter_slots ~anchored_failed slots =
    List.filter
      (fun (l, tr) ->
        let skip =
          anchored_failed
          || Vec.is_empty (History.on t.history ~leaf:l ~trace:tr)
          || (t.pin_gen.(l).(tr) >= 0
             && t.pin_gen.(l).(tr) = History.generation t.history ~leaf:l ~trace:tr
             && t.pin_matches.(l).(tr) = t.matches_found)
        in
        if skip then t.pinned_skipped <- t.pinned_skipped + 1;
        not skip)
      slots
  in
  (* Fan out only when there is enough surviving work to amortize the
     pool's wake/merge cost: at least [cutover_batch] searches against a
     first-level history of at least [cutover_work] entries (the cheap
     estimate of each search's candidate space). Inline and fanned-out
     execution are observably identical, so the policy only affects
     wall-clock time. *)
  let batch_eligible ~anchor_leaf surviving =
    t.parallelism > 1
    && List.compare_length_with surviving (max 2 config.cutover_batch) >= 0
    &&
    let fsl = t.first_leaf.(anchor_leaf) in
    let work = if fsl < 0 then 0 else History.entries_for t.history ~leaf:fsl in
    work >= config.cutover_work
  in
  (* Both thresholds at 0 force the pool for every batch (used by tests
     and reproductions that must exercise the parallel path). *)
  let forced_fan_out = config.cutover_batch = 0 && config.cutover_work = 0 in
  let run_inline ~anchor_leaf ~anchor surviving =
    List.iter
      (fun (l, tr) ->
        if not (Subset.is_covered t.subset ~leaf:l ~trace:tr) then
          consume_pin (l, tr) (run_search ~pin:(l, tr) ~anchor_leaf ~anchor ()))
      surviving
  in
  let ewma old x = if old <= 0. then x else (0.8 *. old) +. (0.2 *. x) in
  (* Above the static gate the cut-over self-calibrates: eligible batches
     are timed, an EWMA of per-slot wall time is kept per mode, and the
     currently faster mode runs — with the other mode revisited first to
     collect [calib_samples] and then every 64th eligible batch, so a
     changed environment can flip the decision. On a machine where the
     pool cannot win (one core, oversubscribed workers) fanned batches
     measure slower and the engine settles on inline execution. The two
     modes are observably identical, so the timing-dependent choice never
     affects coverage, reports or match counts. *)
  let calib_samples = 3 in
  let run_pins ~anchor_leaf ~anchor surviving =
    if surviving <> [] then begin
      if forced_fan_out && t.parallelism > 1 then fan_out_pins ~anchor_leaf ~anchor surviving
      else if not (batch_eligible ~anchor_leaf surviving) then
        run_inline ~anchor_leaf ~anchor surviving
      else begin
        t.eligible_batches <- t.eligible_batches + 1;
        let fan =
          if t.fan_samples < calib_samples then true
          else if t.inline_samples < calib_samples then false
          else begin
            let prefer_fan = t.ew_fan_us < t.ew_inline_us in
            if t.eligible_batches land 63 = 0 then not prefer_fan else prefer_fan
          end
        in
        let n = List.length surviving in
        let t0 = Clock.now_us () in
        if fan then fan_out_pins ~anchor_leaf ~anchor surviving
        else run_inline ~anchor_leaf ~anchor surviving;
        let per_slot = (Clock.now_us () -. t0) /. float_of_int n in
        if fan then begin
          t.ew_fan_us <- ewma t.ew_fan_us per_slot;
          t.fan_samples <- t.fan_samples + 1
        end
        else begin
          t.ew_inline_us <- ewma t.ew_inline_us per_slot;
          t.inline_samples <- t.inline_samples + 1
        end
      end
    end
  in
  let on_event (ev : Event.t) =
    t.events_processed <- t.events_processed + 1;
    t.frontier.(ev.trace) <- ev.vc;
    History.note_comm t.history ev;
    let cands = t.dispatch ev in
    Vec.clear t.scratch;
    let any_terminating = ref false in
    Array.iter
      (fun i ->
        if Compile.leaf_matches_i inet i ev then begin
          History.add t.history ~leaf:i ev;
          Subset.seen t.subset ~leaf:i ~trace:ev.trace;
          Vec.push t.scratch i;
          if t.net.Compile.terminating.(i) then any_terminating := true
        end)
      cands;
    if !any_terminating then begin
      t.terminating_arrivals <- t.terminating_arrivals + 1;
      let timed = config.record_latency || t.tracer <> None in
      let t0 = if timed then Clock.now_us () else 0. in
      let anchors = ref 0 in
      for ix = 0 to Vec.length t.scratch - 1 do
        let anchor_leaf = Vec.get t.scratch ix in
        if t.net.Compile.terminating.(anchor_leaf) then begin
          incr anchors;
          let outcome = run_search ~anchor_leaf ~anchor:ev () in
          consume_outcome outcome;
          if config.pin_searches then begin
            (* a pin on the anchor leaf is either the anchor's own slot
               (just searched) or contradictory *)
            let slots =
              List.filter (fun (l, _) -> l <> anchor_leaf) (Subset.uncovered_seen_slots t.subset)
            in
            let surviving =
              if config.pin_filtering then
                filter_slots ~anchored_failed:(outcome = Matcher.Not_found) slots
              else slots
            in
            run_pins ~anchor_leaf ~anchor:ev surviving
          end
        end
      done;
      if timed then begin
        let lat_us = Clock.now_us () -. t0 in
        if config.record_latency then begin
          match config.latency_sink with
          | Samples -> Vec.push t.latencies lat_us
          | Histogram -> Hist.record t.latency_hist lat_us
          | Both ->
            Vec.push t.latencies lat_us;
            Hist.record t.latency_hist lat_us
        end;
        match t.tracer with
        | Some tr ->
          Tracer.record tr ~name:"arrival" ~cat:"engine" ~ts_us:t0 ~dur_us:lat_us
            ~tid:(Stdlib.Domain.self () :> int)
            ~args:
              [
                ("trace", Tracer.Int ev.trace);
                ("index", Tracer.Int ev.index);
                ("etype", Tracer.Str ev.etype);
                ("anchors", Tracer.Int !anchors);
              ]
        | None -> ()
      end
    end;
    maybe_gc ()
  in
  Poet.subscribe poet on_event;
  t

let net t = t.net

let interned_net t = t.inet

let config t = t.cfg

let reports t = Subset.reports t.subset

let matches_found t = t.matches_found

let find_containing t (ev : Event.t) =
  let trace_of_sym = Poet.trace_of_sym t.poet in
  let partner_of = Poet.find_partner t.poet in
  let cands = t.dispatch ev in
  let leaves =
    List.filter (fun i -> Compile.leaf_matches_i t.inet i ev) (Array.to_list cands)
  in
  let rec try_leaves = function
    | [] -> None
    | anchor_leaf :: rest -> (
      match
        Matcher.search ~plan:t.plans.(anchor_leaf) ~net:t.inet ~history:t.history
          ~n_traces:t.n_traces ~trace_of_sym ~partner_of ~anchor_leaf ~anchor:ev
          ~stats:t.stats ()
      with
      | Matcher.Found m -> Some m
      | Matcher.Not_found | Matcher.Aborted -> try_leaves rest)
  in
  try_leaves leaves

let latencies_us t = Vec.to_array t.latencies

let latency_histogram t = t.latency_hist

let metrics t = t.metrics

let tracer t = t.tracer

(* Pull every internal counter into the registry. Kept out of the
   per-event hot path: called by whoever is about to render a snapshot
   (the CLI's --metrics-every loop, tests, or a final dump). *)
let sync_metrics t =
  let m = t.meters in
  Metrics.set_counter m.m_events t.events_processed;
  Metrics.set_counter m.m_terminating t.terminating_arrivals;
  Metrics.set_counter m.m_matches t.matches_found;
  Metrics.set m.m_reports (float_of_int (List.length (Subset.reports t.subset)));
  Metrics.set_counter m.m_nodes t.stats.Matcher.nodes;
  Metrics.set_counter m.m_backjumps t.stats.Matcher.backjumps;
  Metrics.set_counter m.m_searches t.stats.Matcher.searches;
  Metrics.set_counter m.m_aborts t.aborted;
  Metrics.set_counter m.m_epochs (History.epochs_total t.history);
  Metrics.set m.m_hist_entries (float_of_int (History.total_entries t.history));
  Metrics.set_counter m.m_hist_dropped (History.dropped t.history);
  Metrics.set_counter m.m_hist_pruned (History.pruned t.history);
  Metrics.set_counter m.m_hist_cap_evicted (History.cap_evicted t.history);
  Metrics.set m.m_covered (float_of_int (Subset.covered_count t.subset));
  Metrics.set m.m_seen (float_of_int (Subset.seen_count t.subset));
  Metrics.set_counter m.m_spec_discards t.speculative_discards;
  Metrics.set_counter m.m_pinned_skipped t.pinned_skipped;
  (match t.pool with
  | Some p ->
    let s = Search_pool.stats p in
    Metrics.set_counter m.m_fan_outs s.Search_pool.fan_outs;
    Metrics.set_counter m.m_fan_out_tasks s.Search_pool.tasks;
    Array.iteri
      (fun i busy -> if i < Array.length m.m_worker_busy then Metrics.set m.m_worker_busy.(i) busy)
      s.Search_pool.busy_s
  | None -> ());
  Metrics.set_counter m.m_poet_ingested (Poet.ingested t.poet);
  Metrics.set_counter m.m_poet_notified (Poet.notifications t.poet);
  match t.tracer with
  | Some tr ->
    Metrics.set_counter m.m_spans (Tracer.recorded tr);
    Metrics.set_counter m.m_spans_dropped (Tracer.dropped tr)
  | None -> ()

let events_processed t = t.events_processed

let terminating_arrivals t = t.terminating_arrivals

let history_entries t = History.total_entries t.history

let history_entries_for t ~leaf = History.entries_for t.history ~leaf

let history_dropped t = History.dropped t.history

let covered_slots t = Subset.covered_count t.subset

let seen_slots t = Subset.seen_count t.subset

let search_stats t = t.stats

let aborted_searches t = t.aborted

let pinned_skipped t = t.pinned_skipped

let parallelism t = t.parallelism

let shutdown t =
  match t.pool with
  | Some p ->
    Search_pool.shutdown p;
    t.pool <- None
  | None -> ()
