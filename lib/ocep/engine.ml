open Ocep_base
module Compile = Ocep_pattern.Compile
module Poet = Ocep_poet.Poet

type config = {
  pruning : bool;
  max_history_per_trace : int option;
  pin_searches : bool;
  node_budget : int option;
  report_cap : int;
  record_latency : bool;
  gc_every : int option;
  parallelism : int;
}

let default_config =
  {
    pruning = true;
    max_history_per_trace = None;
    pin_searches = true;
    node_budget = None;
    report_cap = 100_000;
    record_latency = true;
    gc_every = None;
    parallelism = 1;
  }

(* Reject configurations that would crash later (gc_every = Some 0 used
   to divide by zero in the gc cadence check) or that have no sensible
   meaning, at construction time rather than deep inside on_event. *)
let validate_config (c : config) =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  (match c.gc_every with
  | Some n when n <= 0 -> fail "Engine.create: gc_every must be positive, got %d" n
  | _ -> ());
  (match c.node_budget with
  | Some n when n <= 0 -> fail "Engine.create: node_budget must be positive, got %d" n
  | _ -> ());
  (match c.max_history_per_trace with
  | Some n when n <= 0 -> fail "Engine.create: max_history_per_trace must be positive, got %d" n
  | _ -> ());
  if c.report_cap < 0 then fail "Engine.create: report_cap must be non-negative, got %d" c.report_cap;
  if c.parallelism < 0 then
    fail "Engine.create: parallelism must be >= 0 (0 = one worker per core), got %d" c.parallelism

(* A leaf's stored events can be garbage-collected once they are in the
   causal past of every trace iff (a) the leaf never serves as interposer
   evidence for a [~>] check and (b) its relation to every possible anchor
   (terminating) leaf excludes Before: any future anchor is causally after
   a fully-seen event, so such an event can never satisfy the constraint
   again. *)
let gc_able_leaves (net : Compile.t) =
  let k = Compile.size net in
  Array.init k (fun l ->
      (not (List.exists (fun (i, _) -> i = l) net.Compile.lim_checks))
      && List.for_all
           (fun a ->
             (not net.Compile.terminating.(a)) || a = l
             ||
             match net.Compile.cons.(l).(a) with
             | Some s -> not s.Compile.before
             | None -> false)
           (List.init k (fun i -> i)))

type t = {
  cfg : config;
  net : Compile.t;
  poet : Poet.t;
  n_traces : int;
  history : History.t;
  subset : Subset.t;
  stats : Matcher.stats;
  latencies : float Vec.t;
  frontier : Vclock.t array;  (* latest timestamp seen per trace *)
  gcable : bool array;
  matching_leaves : Event.t -> int list;  (* cached dispatch *)
  parallelism : int;  (* resolved: >= 1 *)
  mutable pool : Search_pool.t option;  (* spawned on first fan-out *)
  mutable matches_found : int;
  mutable events_processed : int;
  mutable terminating_arrivals : int;
  mutable aborted : int;
}

(* Dispatching an arriving event to the leaves it class-matches: most
   patterns pin the event type exactly, so index leaves by exact etype and
   keep the others (wildcard/variable type) in a fallback list. *)
let make_dispatch (net : Compile.t) =
  let by_type : (string, int list) Hashtbl.t = Hashtbl.create 16 in
  let generic = ref [] in
  (* accumulate reversed (cons is O(1)); flip once when the table is done *)
  Array.iter
    (fun (l : Compile.leaf) ->
      match l.cls.Ocep_pattern.Ast.typ with
      | Ocep_pattern.Ast.Exact ty ->
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_type ty) in
        Hashtbl.replace by_type ty (l.id :: cur)
      | Ocep_pattern.Ast.Any | Ocep_pattern.Ast.Var _ -> generic := l.id :: !generic)
    net.Compile.leaves;
  Hashtbl.filter_map_inplace (fun _ ids -> Some (List.rev ids)) by_type;
  let generic = List.rev !generic in
  fun (ev : Event.t) ->
    let candidates =
      Option.value ~default:[] (Hashtbl.find_opt by_type ev.etype) @ generic
    in
    List.filter (fun i -> Compile.leaf_matches net i ev) candidates

let create ?(config = default_config) ~net ~poet () =
  validate_config config;
  let n_traces = Poet.trace_count poet in
  let parallelism =
    if config.parallelism = 0 then max 1 (Stdlib.Domain.recommended_domain_count ())
    else config.parallelism
  in
  let t =
    {
      cfg = config;
      net;
      poet;
      n_traces;
      history =
        History.create net ~n_traces ~pruning:config.pruning
          ?max_per_trace:config.max_history_per_trace ();
      subset = Subset.create ~k:(Compile.size net) ~n_traces ~report_cap:config.report_cap ();
      stats = Matcher.new_stats ();
      latencies = Vec.create ();
      frontier = Array.make n_traces (Vclock.make ~dim:n_traces);
      gcable = gc_able_leaves net;
      matching_leaves = make_dispatch net;
      parallelism;
      pool = None;
      matches_found = 0;
      events_processed = 0;
      terminating_arrivals = 0;
      aborted = 0;
    }
  in
  let trace_of_name = Poet.trace_of_name poet in
  let partner_of = Poet.find_partner poet in
  let consume_outcome outcome =
    match outcome with
    | Matcher.Found m ->
      t.matches_found <- t.matches_found + 1;
      ignore (Subset.record t.subset ~seq:t.events_processed m)
    | Matcher.Not_found -> ()
    | Matcher.Aborted -> t.aborted <- t.aborted + 1
  in
  let run_search ?pin ~anchor_leaf ~anchor () =
    consume_outcome
      (Matcher.search ~net ~history:t.history ~n_traces ~trace_of_name ~partner_of ~anchor_leaf
         ~anchor ?pin
         ?node_budget:config.node_budget ~stats:t.stats ())
  in
  let get_pool () =
    match t.pool with
    | Some p -> p
    | None ->
      let p = Search_pool.create ~workers:t.parallelism in
      t.pool <- Some p;
      p
  in
  (* Fan the pinned searches of one terminating arrival out across the
     pool. Every search only reads the shared history/POET tables (no
     event is ingested while this arrival is being processed), so the
     workers need no locks; each gets a private Matcher.stats. The
     results are consumed on the calling domain, deterministically in
     slot order: a slot that an earlier-in-order match already covered
     is dropped unconsumed — sequential execution would never have
     searched it — which makes coverage, reports and matches_found
     bit-identical to parallelism = 1. Only the merged node/backjump
     counters can exceed the sequential ones (speculative work). *)
  let fan_out_pins ~anchor_leaf ~anchor slots =
    let slots = Array.of_list slots in
    let results =
      Search_pool.run (get_pool ()) ~n:(Array.length slots) (fun i ->
          let l, tr = slots.(i) in
          let stats = Matcher.new_stats () in
          let outcome =
            Matcher.search ~net ~history:t.history ~n_traces ~trace_of_name ~partner_of
              ~anchor_leaf ~anchor ~pin:(l, tr)
              ?node_budget:config.node_budget ~stats ()
          in
          (outcome, stats))
    in
    Array.iteri
      (fun i (outcome, (s : Matcher.stats)) ->
        t.stats.Matcher.nodes <- t.stats.Matcher.nodes + s.Matcher.nodes;
        t.stats.Matcher.backjumps <- t.stats.Matcher.backjumps + s.Matcher.backjumps;
        t.stats.Matcher.searches <- t.stats.Matcher.searches + s.Matcher.searches;
        let l, tr = slots.(i) in
        if not (Subset.is_covered t.subset ~leaf:l ~trace:tr) then consume_outcome outcome)
      results
  in
  let maybe_gc () =
    match config.gc_every with
    | Some n when t.events_processed mod n = 0 && Array.exists (fun b -> b) t.gcable ->
      (* threshold per trace: the greatest index already covered by every
         trace's frontier *)
      let thresholds =
        Array.init n_traces (fun tr ->
            Array.fold_left (fun acc vc -> min acc (Vclock.get vc tr)) max_int t.frontier)
      in
      ignore (History.gc t.history ~thresholds ~leaves:t.gcable)
    | _ -> ()
  in
  let on_event (ev : Event.t) =
    t.events_processed <- t.events_processed + 1;
    t.frontier.(ev.trace) <- ev.vc;
    History.note_comm t.history ev;
    let leaves = t.matching_leaves ev in
    List.iter
      (fun i ->
        History.add t.history ~leaf:i ev;
        Subset.seen t.subset ~leaf:i ~trace:ev.trace)
      leaves;
    let terminating = List.filter (fun i -> t.net.Compile.terminating.(i)) leaves in
    if terminating <> [] then begin
      t.terminating_arrivals <- t.terminating_arrivals + 1;
      let t0 = if config.record_latency then Clock.now_s () else 0. in
      List.iter
        (fun anchor_leaf ->
          run_search ~anchor_leaf ~anchor:ev ();
          if config.pin_searches then begin
            (* a pin on the anchor leaf is either the anchor's own slot
               (just searched) or contradictory *)
            let slots =
              List.filter (fun (l, _) -> l <> anchor_leaf) (Subset.uncovered_seen_slots t.subset)
            in
            if t.parallelism = 1 || List.compare_length_with slots 2 < 0 then
              List.iter
                (fun (l, tr) ->
                  if not (Subset.is_covered t.subset ~leaf:l ~trace:tr) then
                    run_search ~pin:(l, tr) ~anchor_leaf ~anchor:ev ())
                slots
            else fan_out_pins ~anchor_leaf ~anchor:ev slots
          end)
        terminating;
      if config.record_latency then
        Vec.push t.latencies ((Clock.now_s () -. t0) *. 1e6)
    end;
    maybe_gc ()
  in
  Poet.subscribe poet on_event;
  t

let net t = t.net

let config t = t.cfg

let reports t = Subset.reports t.subset

let matches_found t = t.matches_found

let find_containing t (ev : Event.t) =
  let trace_of_name = Poet.trace_of_name t.poet in
  let partner_of = Poet.find_partner t.poet in
  let leaves = t.matching_leaves ev in
  let rec try_leaves = function
    | [] -> None
    | anchor_leaf :: rest -> (
      match
        Matcher.search ~net:t.net ~history:t.history ~n_traces:t.n_traces ~trace_of_name
          ~partner_of ~anchor_leaf ~anchor:ev ~stats:t.stats ()
      with
      | Matcher.Found m -> Some m
      | Matcher.Not_found | Matcher.Aborted -> try_leaves rest)
  in
  try_leaves leaves

let latencies_us t = Vec.to_array t.latencies

let events_processed t = t.events_processed

let terminating_arrivals t = t.terminating_arrivals

let history_entries t = History.total_entries t.history

let history_entries_for t ~leaf = History.entries_for t.history ~leaf

let history_dropped t = History.dropped t.history

let covered_slots t = Subset.covered_count t.subset

let seen_slots t = Subset.seen_count t.subset

let search_stats t = t.stats

let aborted_searches t = t.aborted

let parallelism t = t.parallelism

let shutdown t =
  match t.pool with
  | Some p ->
    Search_pool.shutdown p;
    t.pool <- None
  | None -> ()
