module Compile = Ocep_pattern.Compile

let search ~pool ~net ~history ~n_traces ~trace_of_sym ~partner_of ~anchor_leaf ~anchor
    ?(node_budget = max_int) ?(stats = Matcher.new_stats ()) () =
  match Matcher.first_search_leaf ~net ~anchor_leaf with
  | None ->
    (* single-leaf pattern: nothing to parallelize *)
    Matcher.search ~net ~history ~n_traces ~trace_of_sym ~partner_of ~anchor_leaf ~anchor
      ~node_budget ~stats ()
  | Some level1_leaf ->
    (* one plan for the whole fan-out; immutable, shared by all workers *)
    let plan = Matcher.plan ~net ~anchor_leaf in
    let stop = Atomic.make false in
    (* one task per worker, each owning an interleaved slice of the traces:
       dispatch cost is paid per worker, not per trace *)
    let w = Pool.workers pool in
    let tasks =
      Array.init (min w n_traces) (fun slice () ->
          let task_stats = Matcher.new_stats () in
          let best = ref Matcher.Not_found in
          let t = ref slice in
          while !best = Matcher.Not_found && !t < n_traces && not (Atomic.get stop) do
            (match
               Matcher.search ~plan ~net ~history ~n_traces ~trace_of_sym ~partner_of
                 ~anchor_leaf ~anchor ~pin:(level1_leaf, !t) ~node_budget ~stats:task_stats ()
             with
            | Matcher.Found _ as f ->
              Atomic.set stop true;
              best := f
            | Matcher.Aborted -> best := Matcher.Aborted
            | Matcher.Not_found -> ());
            t := !t + min w n_traces
          done;
          (!best, task_stats))
    in
    let results = Pool.run_all pool tasks in
    stats.Matcher.searches <- stats.Matcher.searches + 1;
    Array.iter
      (fun (_, (s : Matcher.stats)) ->
        stats.Matcher.nodes <- stats.Matcher.nodes + s.Matcher.nodes;
        stats.Matcher.backjumps <- stats.Matcher.backjumps + s.Matcher.backjumps)
      results;
    let found = Array.find_opt (fun (o, _) -> match o with Matcher.Found _ -> true | _ -> false) results in
    (match found with
    | Some (o, _) -> o
    | None ->
      if Array.exists (fun (o, _) -> o = Matcher.Aborted) results then Matcher.Aborted
      else Matcher.Not_found)
