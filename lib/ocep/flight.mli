(** The engine's flight recorder: a bounded, always-on store of
    per-event provenance — which wire record an event came from, what
    the admission layer decided about it, and when it passed each
    pipeline stage — plus a small ring of wire records admission
    refused. Together they let [ocep explain] reconstruct the full
    ingest → match causal chain of a report after the fact.

    Storage is per-trace rings keyed by the event's index in its trace
    (slot = index land (capacity - 1); capacity is rounded up to a
    power of two), flattened structure-of-arrays, so recording one
    event is a handful of unchecked array stores with no division and
    no allocation: cheap enough to leave on under the engine's <5%
    observability budget. Lookups
    return [None] once the slot has been overwritten by a newer event
    of the same residue — provenance is a window over the recent past,
    sized by [capacity]. *)

type record = {
  wire_id : int;  (** -1 for events fed directly (no wire framing) *)
  verdict : Ocep_obs.Provenance.verdict;
  decode_us : float;  (** admission-entry timestamp; meaningless when [wire_id] is -1 *)
  admit_us : float;  (** admission-release timestamp; meaningless when [wire_id] is -1 *)
  dispatch_us : float;  (** engine dispatch timestamp (always set) *)
  match_us : float;
      (** duration of the arrival's search phase, µs; 0 when the event
          anchored nothing or the engine was not timing *)
}

type t

val create : ?drop_capacity:int -> n_traces:int -> capacity:int -> unit -> t
(** [capacity] is per trace, rounded up to the next power of two;
    [drop_capacity] (default 1024) bounds the refused-record ring.
    Raises [Invalid_argument] unless both are positive. *)

val capacity : t -> int
(** The effective (rounded) per-trace window. *)

val recorded : t -> int
(** Events ever noted. *)

val note :
  t -> trace:int -> index:int -> wire_id:int -> verdict:int -> stamps:float array -> unit
(** Record one dispatched event. [verdict] is packed
    ({!Ocep_obs.Provenance.verdict_to_int}) and the timestamps arrive
    as [stamps = [|decode_us; admit_us; dispatch_us|]] (read, not
    retained; must have at least 3 slots) so the once-per-event call
    carries no float arguments — those would box. *)

val note_match : t -> trace:int -> index:int -> dur_us:float -> unit
(** Attach the arrival's search-phase duration to an already-noted
    event; ignored if the slot has been overwritten. *)

val find : t -> trace:int -> index:int -> record option
(** Provenance of event (trace, index), if still within the window. *)

val last_dispatch_us : t -> trace:int -> float
(** Dispatch timestamp of the trace's most recent event; 0 before the
    first — the basis of the per-trace staleness gauges. *)

val note_drop : t -> id:int -> verdict:Ocep_obs.Provenance.verdict -> unit
(** Record a wire id admission refused. *)

val drops_recorded : t -> int

val drops : t -> (int * Ocep_obs.Provenance.verdict) list
(** Retained refused records, oldest first. *)
