open Ocep_base
module Compile = Ocep_pattern.Compile

type outcome = Found of Event.t array | Not_found | Aborted

type stats = {
  mutable nodes : int;
  mutable backjumps : int;
  mutable searches : int;
  mutable miss_level : int;  (* deepest level any failed search reached; -1 none *)
  mutable miss_leaf : int;  (* the leaf at that level — failed binding last *)
}

let new_stats () = { nodes = 0; backjumps = 0; searches = 0; miss_level = -1; miss_leaf = -1 }

(* Attribute value of an event as a symbol id — the only representation
   the search ever compares. *)
let field_value (ev : Event.t) = function
  | Compile.Fproc -> ev.tsym
  | Compile.Ftyp -> ev.esym
  | Compile.Ftext -> ev.xsym

(* Search context shared by the two entry points. *)
type ctx = {
  inet : Compile.inet;
  net : Compile.t;  (* = inet.net, saves a field chase in the loops *)
  history : History.t;
  n_traces : int;
  trace_of_sym : int -> int option;
  partner_of : Event.t -> Event.t option;
  k : int;
  order : int array;  (* level -> leaf *)
  level_of : int array;  (* leaf -> level *)
  assigned : Event.t array;  (* by leaf; Event.none (by ==) when unassigned *)
  partner_links : int list array;  (* leaf -> partner-constrained leaves *)
  pin : (int * int) option;
  all_traces : int array;  (* [|0..n_traces-1|], shared by every level *)
  stats : stats;
  node_budget : int;
  start_nodes : int;
      (* [stats.nodes] at search entry: callers share one cumulative stats
         record across searches, so the budget must be charged against the
         nodes expanded by THIS search only *)
}

(* Per-level search state. [cursor] is the next position to try on the
   current trace (descending, newest-first); -1 requests the next trace.
   [conflicts] is a bitset of levels (bit l = level l), which is why the
   matcher caps patterns at 62 leaves. *)
type level_state = {
  leaf : int;
  traces : int array;
  text_filter : int;
      (* symbol id of the exact text the candidate must carry (exact spec
         or bound variable), -1 for none: iterate the history's text index
         instead of the whole domain *)
  mutable trace_ix : int;
  mutable dom : Interval.Set.t;
  mutable cursor : int;
  mutable tvec : int Vec.t option;  (* text-index positions for current trace *)
  mutable tix : int;  (* descending index into tvec *)
  mutable partner_source : int option;  (* leaf providing the partner event *)
  mutable partner_done : bool;
  mutable conflicts : int;  (* bitset of levels *)
}

let add_conflict st l = st.conflicts <- st.conflicts lor (1 lsl l)

(* Position of the highest set bit; [m] must be positive. *)
let top_bit m =
  let rec go m b = if m <= 1 then b else go (m lsr 1) (b + 1) in
  go m 0

let max_leaves = Compile.max_leaves

(* Evaluation order: anchor first, then greedily the leaf most constrained
   by the already-ordered set — the standard most-constrained-first CSP
   heuristic, which realizes the paper's Order attribute on the pattern
   tree. A leaf whose text variable is already bound iterates a single
   index bucket; a bound process variable iterates a single trace; each
   causal constraint shrinks the domain interval; a partner link determines
   the event outright. *)
let make_order (inet : Compile.inet) ~anchor_leaf =
  let net = inet.Compile.net in
  let k = Compile.size net in
  let ordered = Array.make k false in
  ordered.(anchor_leaf) <- true;
  let var_bound_by_ordered v =
    Array.exists (fun (j, _) -> ordered.(j)) inet.Compile.var_occs.(v)
  in
  let spec_score spec weight =
    match spec with
    | Compile.I_exact _ -> weight
    | Compile.I_var v -> if var_bound_by_ordered v then weight else 0
    | Compile.I_any -> 0
  in
  let score u =
    let text_score = spec_score inet.Compile.itext.(u) 8 in
    let proc_score = spec_score inet.Compile.iproc.(u) 4 in
    let cons_score =
      let c = ref 0 in
      for j = 0 to k - 1 do
        if ordered.(j) && net.Compile.cons.(u).(j) <> None then c := !c + 2
      done;
      !c
    in
    let partner_score =
      if List.exists (fun (i, j) -> (i = u && ordered.(j)) || (j = u && ordered.(i))) net.Compile.partners
      then 16
      else 0
    in
    text_score + proc_score + cons_score + partner_score
  in
  let order = ref [ anchor_leaf ] in
  for _ = 2 to k do
    let best = ref (-1) in
    let best_score = ref (-1) in
    for u = 0 to k - 1 do
      if not ordered.(u) then begin
        let s = score u in
        if s > !best_score then begin
          best_score := s;
          best := u
        end
      end
    done;
    ordered.(!best) <- true;
    order := !best :: !order
  done;
  Array.of_list (List.rev !order)

(* The evaluation order, its inverse, and the partner adjacency are pure
   functions of (net, anchor_leaf); a [plan] precomputes them once so
   repeated searches for the same anchor leaf — every pinned search of a
   batch, every arrival of the same terminating class — skip the greedy
   ordering pass. Plans are immutable after construction and safe to
   share across domains. *)
type plan = {
  plan_anchor : int;
  plan_order : int array;
  plan_level_of : int array;
  plan_partner_links : int list array;
}

let plan_of ~(net : Compile.inet) ~anchor_leaf =
  let k = Compile.size net.Compile.net in
  if k > max_leaves then
    invalid_arg
      (Printf.sprintf "Matcher: patterns are limited to %d leaves (conflict bitset)" max_leaves);
  let order = make_order net ~anchor_leaf in
  let level_of = Array.make k 0 in
  Array.iteri (fun lvl leaf -> level_of.(leaf) <- lvl) order;
  let partner_links = Array.make k [] in
  List.iter
    (fun (i, j) ->
      partner_links.(i) <- j :: partner_links.(i);
      partner_links.(j) <- i :: partner_links.(j))
    net.Compile.net.Compile.partners;
  { plan_anchor = anchor_leaf; plan_order = order; plan_level_of = level_of; plan_partner_links = partner_links }

(* [plan] is also the name of [make_ctx]'s optional argument *)
let plan = plan_of

(* The symbol an attribute variable is currently bound to, with the level
   of the leaf that bound it; (-1, _) when unbound. *)
let binding ctx v =
  let occs = ctx.inet.Compile.var_occs.(v) in
  let n = Array.length occs in
  let rec loop i =
    if i >= n then (-1, -1)
    else
      let j, f = occs.(i) in
      let e = ctx.assigned.(j) in
      if e != Event.none then (field_value e f, ctx.level_of.(j)) else loop (i + 1)
  in
  loop 0

let all_traces ctx = ctx.all_traces

let trace_list ctx st_conflicts leaf =
  match ctx.pin with
  | Some (l, t) when l = leaf -> [| t |]
  | _ -> (
    match ctx.inet.Compile.iproc.(leaf) with
    | Compile.I_exact sym -> (
      match ctx.trace_of_sym sym with Some t -> [| t |] | None -> [||])
    | Compile.I_var v -> (
      let sym, lvl = binding ctx v in
      if sym < 0 then all_traces ctx
      else begin
        add_conflict st_conflicts lvl;
        match ctx.trace_of_sym sym with Some t -> [| t |] | None -> [||]
      end)
    | Compile.I_any -> all_traces ctx)

let init_level ctx i =
  let leaf = ctx.order.(i) in
  let partner_source =
    List.find_opt (fun j -> ctx.assigned.(j) != Event.none) ctx.partner_links.(leaf)
  in
  let st =
    {
      leaf;
      traces = [||];
      text_filter = -1;
      trace_ix = -1;
      dom = Interval.Set.empty;
      cursor = -1;
      tvec = None;
      tix = -1;
      partner_source;
      partner_done = false;
      conflicts = 0;
    }
  in
  let traces = trace_list ctx st leaf in
  let text_filter =
    match ctx.inet.Compile.itext.(leaf) with
    | Compile.I_exact sym -> sym
    | Compile.I_var v ->
      let sym, lvl = binding ctx v in
      if sym >= 0 then add_conflict st lvl;
      sym
    | Compile.I_any -> -1
  in
  { st with traces; text_filter }

(* Compute the Fig. 4 domain of [leaf] on trace [t]: intersection of the
   restrictions by every instantiated event. Every level whose constraint
   shaped the domain joins the conflict set — if this level later wipes
   out, any of them could be the culprit (their choices decide which
   candidates were available at all), so a backjump must not skip them. *)
let domain_on ctx st t =
  let leaf = st.leaf in
  let hist = History.on ctx.history ~leaf ~trace:t in
  let cons = ctx.net.Compile.cons.(leaf) in
  let dom = ref (Domain.full hist) in
  (try
     for j = 0 to ctx.k - 1 do
       let e = Array.unsafe_get ctx.assigned j in
       if e != Event.none then
         match Array.unsafe_get cons j with
         | Some a ->
           add_conflict st ctx.level_of.(j);
           dom := Interval.Set.inter !dom (Domain.restrict hist ~trace:t ~w:e a);
           if Interval.Set.is_empty !dom then raise Exit
         | None -> ()
     done
   with Exit -> ());
  !dom

(* Does [x] satisfy every constraint against the instantiated events? On
   rejection the conflicting level is recorded for backjumping. [accept]
   runs once per search node, so every pass below is an explicit loop —
   closure-based iteration here was the search's dominant allocation. *)

(* causal relations (already true for history candidates by construction;
   re-checked cheaply, and required for partner-derived candidates).
   Distinct unconstrained leaves may share an event, so an assigned leaf
   without a constraint needs no check. *)
let cons_ok ctx st (x : Event.t) =
  let cons = ctx.net.Compile.cons.(st.leaf) in
  let rec loop j =
    j >= ctx.k
    ||
    let e = Array.unsafe_get ctx.assigned j in
    if e == Event.none then loop (j + 1)
    else
      match Array.unsafe_get cons j with
      | None -> loop (j + 1)
      | Some a ->
        if Compile.allowed_of_relation (Event.relation x e) a then loop (j + 1)
        else begin
          add_conflict st ctx.level_of.(j);
          false
        end
  in
  loop 0

(* partner links *)
let rec partners_ok ctx st (x : Event.t) = function
  | [] -> true
  | j :: rest ->
    let e = ctx.assigned.(j) in
    if e == Event.none then partners_ok ctx st x rest
    else
      let same_msg =
        match (x.Event.kind, e.Event.kind) with
        | ( (Event.Send { msg = a } | Event.Receive { msg = a }),
            (Event.Send { msg = b } | Event.Receive { msg = b }) ) ->
          Int.equal a b && not (Event.equal x e)
        | _ -> false
      in
      if same_msg then partners_ok ctx st x rest
      else begin
        add_conflict st ctx.level_of.(j);
        false
      end

(* self-consistency: the leaf's other positions of [v] must carry [xv] *)
let self_ok lvars (x : Event.t) ~v ~f ~xv =
  let n = Array.length lvars in
  let rec loop i =
    i >= n
    ||
    let v', f' = Array.unsafe_get lvars i in
    ((not (Int.equal v' v)) || f' = f || Int.equal (field_value x f') xv) && loop (i + 1)
  in
  loop 0

(* consistency of [v = xv] with its instantiated occurrences elsewhere *)
let var_occs_ok ctx st ~leaf ~v ~xv =
  let occs = ctx.inet.Compile.var_occs.(v) in
  let n = Array.length occs in
  let rec loop i =
    i >= n
    ||
    let j, f2 = Array.unsafe_get occs i in
    if j = leaf then loop (i + 1)
    else
      let e = ctx.assigned.(j) in
      if e == Event.none || Int.equal (field_value e f2) xv then loop (i + 1)
      else begin
        add_conflict st ctx.level_of.(j);
        false
      end
  in
  loop 0

(* attribute variables: self-consistency and consistency with bindings *)
let vars_ok ctx st (x : Event.t) =
  let leaf = st.leaf in
  let lvars = ctx.inet.Compile.leaf_vars.(leaf) in
  let n = Array.length lvars in
  let rec loop i =
    i >= n
    ||
    let v, f = Array.unsafe_get lvars i in
    let xv = field_value x f in
    self_ok lvars x ~v ~f ~xv && var_occs_ok ctx st ~leaf ~v ~xv && loop (i + 1)
  in
  loop 0

let accept ctx st (x : Event.t) =
  cons_ok ctx st x
  && partners_ok ctx st x ctx.partner_links.(st.leaf)
  && vars_ok ctx st x

exception Budget

(* Nearest-miss bookkeeping: a failed search bound levels 1..[deepest]-1
   and never filled [deepest]; remember the deepest such frontier ever
   seen so a digest that matches nothing can still be explained ("got
   this far, this leaf never bound"). *)
let note_miss ctx deepest =
  let stats = ctx.stats in
  if deepest > stats.miss_level then begin
    stats.miss_level <- deepest;
    stats.miss_leaf <- ctx.order.(deepest)
  end

let bump_nodes ctx =
  ctx.stats.nodes <- ctx.stats.nodes + 1;
  if ctx.stats.nodes - ctx.start_nodes > ctx.node_budget then raise Budget

(* Next raw candidate at this level, newest-first across the trace list. *)
let rec next_candidate ctx st =
  match st.partner_source with
  | Some j -> (
    if st.partner_done then None
    else begin
      st.partner_done <- true;
      let e = ctx.assigned.(j) in
      if e == Event.none then None
      else begin
        (* the level's single candidate is a function of level [j]'s
           choice, so exhausting this level is attributable to [j]
           whatever later rejects the candidate — without this bit a
           backjump from deeper levels could skip [j] while it still has
           untried events whose partners would succeed *)
        add_conflict st ctx.level_of.(j);
        match ctx.partner_of e with
        | Some x when Compile.leaf_matches_i ctx.inet st.leaf x -> (
          match ctx.pin with
          | Some (l, t) when l = st.leaf && x.trace <> t -> None
          | _ -> Some x)
        | Some _ | None -> None
      end
    end)
  | None -> (
    match st.tvec with
    | Some pv ->
      (* text-indexed iteration: walk the index positions newest-first,
         keeping those inside the causal domain *)
      while st.tix >= 0 && not (Interval.Set.mem (Vec.get pv st.tix) st.dom) do
        st.tix <- st.tix - 1
      done;
      if st.tix >= 0 then begin
        let t = st.traces.(st.trace_ix) in
        let hist = History.on ctx.history ~leaf:st.leaf ~trace:t in
        let x = (Vec.get hist (Vec.get pv st.tix)).History.ev in
        st.tix <- st.tix - 1;
        Some x
      end
      else begin
        st.tvec <- None;
        advance_trace ctx st
      end
    | None ->
      if st.cursor >= 0 then begin
        let t = st.traces.(st.trace_ix) in
        let hist = History.on ctx.history ~leaf:st.leaf ~trace:t in
        let x = (Vec.get hist st.cursor).History.ev in
        st.cursor <-
          (match Interval.Set.next_below st.dom (st.cursor - 1) with Some p -> p | None -> -1);
        Some x
      end
      else advance_trace ctx st)

and advance_trace ctx st =
  if st.trace_ix + 1 >= Array.length st.traces then None
  else begin
    st.trace_ix <- st.trace_ix + 1;
    let t = st.traces.(st.trace_ix) in
    st.dom <- domain_on ctx st t;
    if Interval.Set.is_empty st.dom then begin
      st.cursor <- -1;
      st.tvec <- None;
      advance_trace ctx st
    end
    else begin
      (if st.text_filter >= 0 then (
         match History.positions_for_text ctx.history ~leaf:st.leaf ~trace:t st.text_filter with
         | Some pv ->
           st.tvec <- Some pv;
           st.tix <- Vec.length pv - 1;
           st.cursor <- -1
         | None ->
           st.tvec <- None;
           st.cursor <- -1)
       else begin
         st.tvec <- None;
         st.cursor <- (match Interval.Set.max_elt st.dom with Some p -> p | None -> -1)
       end);
      next_candidate ctx st
    end
  end

let debug = Sys.getenv_opt "OCEP_DEBUG" <> None

let next_acceptable ctx st =
  let rec loop () =
    match next_candidate ctx st with
    | None -> None
    | Some x ->
      bump_nodes ctx;
      let ok = accept ctx st x in
      if debug then
        Format.eprintf "  leaf %d candidate %a -> %b@." st.leaf Event.pp x ok;
      if ok then Some x else loop ()
  in
  loop ()

(* Limited happens-before: no event of [leaf]'s class strictly causally
   between a and b, per trace, located with two binary searches. *)
let lim_ok ctx ~leaf ~a ~b =
  let interposed = ref false in
  for t = 0 to ctx.n_traces - 1 do
    if not !interposed then begin
      let hist = History.on ctx.history ~leaf ~trace:t in
      if not (Vec.is_empty hist) then begin
        let lo = Domain.ls_position hist ~trace:t ~w:a in
        let hi = Domain.gp_position hist ~trace:t ~w:b in
        if lo <= hi then interposed := true
      end
    end
  done;
  not !interposed

let post_checks ctx m =
  List.for_all
    (fun (lx, ly) -> List.exists (fun i -> List.exists (fun j -> Event.hb m.(i) m.(j)) ly) lx)
    ctx.net.Compile.exists_before
  && List.for_all (fun (i, j) -> lim_ok ctx ~leaf:i ~a:m.(i) ~b:m.(j)) ctx.net.Compile.lim_checks

let extract ctx = Array.copy ctx.assigned

let make_ctx ?plan ~(net : Compile.inet) ~history ~n_traces ~trace_of_sym ~partner_of
    ~anchor_leaf ~anchor ~pin ~node_budget ~stats () =
  if not (Compile.leaf_matches_i net anchor_leaf anchor) then
    invalid_arg "Matcher: anchor event does not match the anchor leaf";
  (match pin with
  | Some (l, t) when l = anchor_leaf && t <> (anchor : Event.t).trace ->
    invalid_arg "Matcher: pin names the anchor leaf on a different trace"
  | _ -> ());
  let p =
    match plan with
    | Some p ->
      if p.plan_anchor <> anchor_leaf then
        invalid_arg "Matcher: plan was built for a different anchor leaf";
      p
    | None -> plan_of ~net ~anchor_leaf
  in
  let k = Compile.size net.Compile.net in
  let ctx =
    {
      inet = net;
      net = net.Compile.net;
      history;
      n_traces;
      trace_of_sym;
      partner_of;
      k;
      order = p.plan_order;
      level_of = p.plan_level_of;
      assigned = Array.make k Event.none;
      partner_links = p.plan_partner_links;
      pin;
      all_traces = Array.init n_traces Fun.id;
      stats;
      node_budget;
      start_nodes = stats.nodes;
    }
  in
  ctx.assigned.(anchor_leaf) <- anchor;
  ctx

(* The main loop: [forward] fills level [i]; a wiped-out level jumps to the
   deepest conflicting level (goBackward with the recorded information of
   Fig. 5). *)
let search ?plan ~net ~history ~n_traces ~trace_of_sym ~partner_of ~anchor_leaf ~anchor ?pin
    ?(node_budget = max_int) ?(stats = new_stats ()) () =
  let ctx =
    make_ctx ?plan ~net ~history ~n_traces ~trace_of_sym ~partner_of ~anchor_leaf ~anchor ~pin
      ~node_budget ~stats ()
  in
  stats.searches <- stats.searches + 1;
  let k = ctx.k in
  if k = 1 then
    if post_checks ctx (extract ctx) then Found (extract ctx) else Not_found
  else begin
    let levels = Array.make k None in
    levels.(1) <- Some (init_level ctx 1);
    let result = ref None in
    let i = ref 1 in
    let deepest = ref 1 in
    (try
       while !result = None do
         let st = match levels.(!i) with Some st -> st | None -> assert false in
         match next_acceptable ctx st with
         | Some x ->
           ctx.assigned.(st.leaf) <- x;
           if !i = k - 1 then begin
             let m = extract ctx in
             if post_checks ctx m then result := Some (Found m)
             else begin
               (* keep searching at this level; a post-check failure may be
                  caused by any earlier choice *)
               ctx.assigned.(st.leaf) <- Event.none;
               st.conflicts <- st.conflicts lor ((1 lsl !i) - 1)
             end
           end
           else begin
             incr i;
             if !i > !deepest then deepest := !i;
             levels.(!i) <- Some (init_level ctx !i)
           end
         | None ->
           (* goBackward: jump to the deepest conflicting level; a conflict
              set that is empty or {0} means no earlier choice can help *)
           let above0 = st.conflicts land lnot 1 in
           if above0 = 0 then begin
             result := Some Not_found;
             note_miss ctx !deepest
           end
           else begin
             let j = top_bit above0 in
             ctx.stats.backjumps <- ctx.stats.backjumps + 1;
             (match levels.(j) with
             | Some stj -> stj.conflicts <- stj.conflicts lor (st.conflicts land lnot (1 lsl j))
             | None -> assert false);
             for l = j to !i do
               (match levels.(l) with
               | Some s -> ctx.assigned.(s.leaf) <- Event.none
               | None -> ());
               if l > j then levels.(l) <- None
             done;
             i := j
           end
       done
     with Budget -> result := Some Aborted);
    match !result with Some r -> r | None -> assert false
  end

let first_search_leaf ~net ~anchor_leaf =
  if Compile.size net.Compile.net <= 1 then None else Some (make_order net ~anchor_leaf).(1)

let enumerate ?plan ~net ~history ~n_traces ~trace_of_sym ~partner_of ~anchor_leaf ~anchor
    ?(limit = max_int) yield =
  let stats = new_stats () in
  let ctx =
    make_ctx ?plan ~net ~history ~n_traces ~trace_of_sym ~partner_of ~anchor_leaf ~anchor
      ~pin:None ~node_budget:max_int ~stats ()
  in
  let k = ctx.k in
  let found = ref 0 in
  if k = 1 then begin
    if post_checks ctx (extract ctx) then yield (extract ctx)
  end
  else begin
    let levels = Array.make k None in
    levels.(1) <- Some (init_level ctx 1);
    let i = ref 1 in
    let stop = ref false in
    while not !stop do
      let st = match levels.(!i) with Some st -> st | None -> assert false in
      match next_acceptable ctx st with
      | Some x ->
        ctx.assigned.(st.leaf) <- x;
        if !i = k - 1 then begin
          let m = extract ctx in
          if post_checks ctx m then begin
            yield m;
            incr found;
            if !found >= limit then stop := true
          end;
          ctx.assigned.(st.leaf) <- Event.none
        end
        else begin
          incr i;
          levels.(!i) <- Some (init_level ctx !i)
        end
      | None ->
        (* chronological backtracking for exhaustive enumeration *)
        if !i = 1 then stop := true
        else begin
          levels.(!i) <- None;
          decr i;
          let prev = match levels.(!i) with Some s -> s | None -> assert false in
          ctx.assigned.(prev.leaf) <- Event.none
        end
    done
  end
