open Ocep_base
module Compile = Ocep_pattern.Compile
module Ast = Ocep_pattern.Ast

type outcome = Found of Event.t array | Not_found | Aborted

type stats = { mutable nodes : int; mutable backjumps : int; mutable searches : int }

let new_stats () = { nodes = 0; backjumps = 0; searches = 0 }

let field_value (ev : Event.t) = function
  | Compile.Fproc -> ev.trace_name
  | Compile.Ftyp -> ev.etype
  | Compile.Ftext -> ev.text

(* Search context shared by the two entry points. *)
type ctx = {
  net : Compile.t;
  history : History.t;
  n_traces : int;
  trace_of_name : string -> int option;
  partner_of : Event.t -> Event.t option;
  k : int;
  order : int array;  (* level -> leaf *)
  level_of : int array;  (* leaf -> level *)
  assigned : Event.t option array;  (* by leaf *)
  partner_links : int list array;  (* leaf -> partner-constrained leaves *)
  leaf_vars : (string * Compile.field) list array;  (* leaf -> its variable fields *)
  var_positions : (string * (int * Compile.field) list) list;
  pin : (int * int) option;
  stats : stats;
  node_budget : int;
  start_nodes : int;
      (* [stats.nodes] at search entry: callers share one cumulative stats
         record across searches, so the budget must be charged against the
         nodes expanded by THIS search only *)
}

(* Per-level search state. [cursor] is the next position to try on the
   current trace (descending, newest-first); -1 requests the next trace. *)
type level_state = {
  leaf : int;
  traces : int array;
  text_filter : string option;
      (* exact text the candidate must carry (exact spec or bound variable):
         iterate the history's text index instead of the whole domain *)
  mutable trace_ix : int;
  mutable dom : Interval.Set.t;
  mutable cursor : int;
  mutable tvec : int Vec.t option;  (* text-index positions for current trace *)
  mutable tix : int;  (* descending index into tvec *)
  mutable partner_source : int option;  (* leaf providing the partner event *)
  mutable partner_done : bool;
  mutable conflicts : int list;  (* levels *)
}

let add_conflict st l = if not (List.mem l st.conflicts) then st.conflicts <- l :: st.conflicts

(* Evaluation order: anchor first, then greedily the leaf most constrained
   by the already-ordered set — the standard most-constrained-first CSP
   heuristic, which realizes the paper's Order attribute on the pattern
   tree. A leaf whose text variable is already bound iterates a single
   index bucket; a bound process variable iterates a single trace; each
   causal constraint shrinks the domain interval; a partner link determines
   the event outright. *)
let make_order net ~anchor_leaf =
  let k = Compile.size net in
  let ordered = Array.make k false in
  ordered.(anchor_leaf) <- true;
  let var_bound_by_ordered v =
    match List.assoc_opt v net.Compile.var_fields with
    | None -> false
    | Some positions -> List.exists (fun (j, _) -> ordered.(j)) positions
  in
  let score u =
    let cls = net.Compile.leaves.(u).cls in
    let text_score =
      match cls.Ast.text with
      | Ast.Exact _ -> 8
      | Ast.Var v -> if var_bound_by_ordered v then 8 else 0
      | Ast.Any -> 0
    in
    let proc_score =
      match cls.Ast.proc with
      | Ast.Exact _ -> 4
      | Ast.Var v -> if var_bound_by_ordered v then 4 else 0
      | Ast.Any -> 0
    in
    let cons_score =
      let c = ref 0 in
      for j = 0 to k - 1 do
        if ordered.(j) && net.Compile.cons.(u).(j) <> None then c := !c + 2
      done;
      !c
    in
    let partner_score =
      if List.exists (fun (i, j) -> (i = u && ordered.(j)) || (j = u && ordered.(i))) net.Compile.partners
      then 16
      else 0
    in
    text_score + proc_score + cons_score + partner_score
  in
  let order = ref [ anchor_leaf ] in
  for _ = 2 to k do
    let best = ref (-1) in
    let best_score = ref (-1) in
    for u = 0 to k - 1 do
      if not ordered.(u) then begin
        let s = score u in
        if s > !best_score then begin
          best_score := s;
          best := u
        end
      end
    done;
    ordered.(!best) <- true;
    order := !best :: !order
  done;
  Array.of_list (List.rev !order)

(* The value an attribute variable is currently bound to, with the level of
   the leaf that bound it. *)
let binding ctx v =
  match List.assoc_opt v ctx.var_positions with
  | None -> None
  | Some positions ->
    let rec loop = function
      | [] -> None
      | (j, f) :: rest -> (
        match ctx.assigned.(j) with
        | Some e -> Some (field_value e f, ctx.level_of.(j))
        | None -> loop rest)
    in
    loop positions

let trace_list ctx st_conflicts leaf =
  match ctx.pin with
  | Some (l, t) when l = leaf -> [| t |]
  | _ -> (
    let cls = ctx.net.Compile.leaves.(leaf).cls in
    match cls.Ast.proc with
    | Ast.Exact name -> (
      match ctx.trace_of_name name with Some t -> [| t |] | None -> [||])
    | Ast.Var v -> (
      match binding ctx v with
      | Some (name, lvl) -> (
        add_conflict st_conflicts lvl;
        match ctx.trace_of_name name with Some t -> [| t |] | None -> [||])
      | None -> Array.init ctx.n_traces (fun i -> i))
    | Ast.Any -> Array.init ctx.n_traces (fun i -> i))

let init_level ctx i =
  let leaf = ctx.order.(i) in
  let partner_source =
    List.find_opt (fun j -> ctx.assigned.(j) <> None) ctx.partner_links.(leaf)
  in
  let st =
    {
      leaf;
      traces = [||];
      text_filter = None;
      trace_ix = -1;
      dom = Interval.Set.empty;
      cursor = -1;
      tvec = None;
      tix = -1;
      partner_source;
      partner_done = false;
      conflicts = [];
    }
  in
  let traces = trace_list ctx st leaf in
  let text_filter =
    match ctx.net.Compile.leaves.(leaf).cls.Ast.text with
    | Ast.Exact s -> Some s
    | Ast.Var v -> (
      match binding ctx v with
      | Some (value, lvl) ->
        add_conflict st lvl;
        Some value
      | None -> None)
    | Ast.Any -> None
  in
  { st with traces; text_filter }

(* Compute the Fig. 4 domain of [leaf] on trace [t]: intersection of the
   restrictions by every instantiated event. Every level whose constraint
   shaped the domain joins the conflict set — if this level later wipes
   out, any of them could be the culprit (their choices decide which
   candidates were available at all), so a backjump must not skip them. *)
let domain_on ctx st t =
  let leaf = st.leaf in
  let hist = History.on ctx.history ~leaf ~trace:t in
  let dom = ref (Domain.full hist) in
  (try
     Array.iteri
       (fun j e_opt ->
         match (e_opt, ctx.net.Compile.cons.(leaf).(j)) with
         | Some e, Some a ->
           add_conflict st ctx.level_of.(j);
           dom := Interval.Set.inter !dom (Domain.restrict hist ~trace:t ~w:e a);
           if Interval.Set.is_empty !dom then raise Exit
         | _ -> ())
       ctx.assigned
   with Exit -> ());
  !dom

(* Does [x] satisfy every constraint against the instantiated events? On
   rejection the conflicting level is recorded for backjumping. *)
let accept ctx st (x : Event.t) =
  let leaf = st.leaf in
  let ok = ref true in
  (* causal relations (already true for history candidates by construction;
     re-checked cheaply, and required for partner-derived candidates) *)
  Array.iteri
    (fun j e_opt ->
      if !ok then
        match (e_opt, ctx.net.Compile.cons.(leaf).(j)) with
        | Some e, Some a ->
          if not (Compile.allowed_of_relation (Event.relation x e) a) then begin
            add_conflict st ctx.level_of.(j);
            ok := false
          end
        | Some e, None ->
          (* distinct unconstrained leaves may share an event; nothing to do *)
          ignore e
        | _ -> ())
    ctx.assigned;
  (* partner links *)
  if !ok then
    List.iter
      (fun j ->
        if !ok then
          match ctx.assigned.(j) with
          | Some e ->
            let same_msg =
              match (Event.msg_of x, Event.msg_of e) with
              | Some a, Some b -> a = b && not (Event.equal x e)
              | _ -> false
            in
            if not same_msg then begin
              add_conflict st ctx.level_of.(j);
              ok := false
            end
          | None -> ())
      ctx.partner_links.(leaf);
  (* attribute variables: self-consistency and consistency with bindings *)
  if !ok then
    List.iter
      (fun (v, f) ->
        if !ok then begin
          let xv = field_value x f in
          (* self-consistency with the leaf's other positions of v *)
          List.iter
            (fun (v', f') ->
              if !ok && v' = v && f' <> f && field_value x f' <> xv then ok := false)
            ctx.leaf_vars.(leaf);
          (* consistency with instantiated occurrences *)
          if !ok then
            match List.assoc_opt v ctx.var_positions with
            | None -> ()
            | Some positions ->
              List.iter
                (fun (j, f2) ->
                  if !ok && j <> leaf then
                    match ctx.assigned.(j) with
                    | Some e ->
                      if field_value e f2 <> xv then begin
                        add_conflict st ctx.level_of.(j);
                        ok := false
                      end
                    | None -> ())
                positions
        end)
      ctx.leaf_vars.(leaf);
  !ok

exception Budget

let bump_nodes ctx =
  ctx.stats.nodes <- ctx.stats.nodes + 1;
  if ctx.stats.nodes - ctx.start_nodes > ctx.node_budget then raise Budget

(* Next raw candidate at this level, newest-first across the trace list. *)
let rec next_candidate ctx st =
  match st.partner_source with
  | Some j -> (
    if st.partner_done then None
    else begin
      st.partner_done <- true;
      match ctx.assigned.(j) with
      | None -> None
      | Some e -> (
        match ctx.partner_of e with
        | Some x when Compile.leaf_matches ctx.net st.leaf x -> (
          match ctx.pin with
          | Some (l, t) when l = st.leaf && x.trace <> t ->
            add_conflict st ctx.level_of.(j);
            None
          | _ -> Some x)
        | Some _ | None ->
          add_conflict st ctx.level_of.(j);
          None)
    end)
  | None -> (
    match st.tvec with
    | Some pv ->
      (* text-indexed iteration: walk the index positions newest-first,
         keeping those inside the causal domain *)
      while st.tix >= 0 && not (Interval.Set.mem (Vec.get pv st.tix) st.dom) do
        st.tix <- st.tix - 1
      done;
      if st.tix >= 0 then begin
        let t = st.traces.(st.trace_ix) in
        let hist = History.on ctx.history ~leaf:st.leaf ~trace:t in
        let x = (Vec.get hist (Vec.get pv st.tix)).History.ev in
        st.tix <- st.tix - 1;
        Some x
      end
      else begin
        st.tvec <- None;
        advance_trace ctx st
      end
    | None ->
      if st.cursor >= 0 then begin
        let t = st.traces.(st.trace_ix) in
        let hist = History.on ctx.history ~leaf:st.leaf ~trace:t in
        let x = (Vec.get hist st.cursor).History.ev in
        st.cursor <-
          (match Interval.Set.next_below st.dom (st.cursor - 1) with Some p -> p | None -> -1);
        Some x
      end
      else advance_trace ctx st)

and advance_trace ctx st =
  if st.trace_ix + 1 >= Array.length st.traces then None
  else begin
    st.trace_ix <- st.trace_ix + 1;
    let t = st.traces.(st.trace_ix) in
    st.dom <- domain_on ctx st t;
    if Interval.Set.is_empty st.dom then begin
      st.cursor <- -1;
      st.tvec <- None;
      advance_trace ctx st
    end
    else begin
      (match st.text_filter with
      | Some text -> (
        match History.positions_for_text ctx.history ~leaf:st.leaf ~trace:t text with
        | Some pv ->
          st.tvec <- Some pv;
          st.tix <- Vec.length pv - 1;
          st.cursor <- -1
        | None ->
          st.tvec <- None;
          st.cursor <- -1)
      | None ->
        st.tvec <- None;
        st.cursor <- (match Interval.Set.max_elt st.dom with Some p -> p | None -> -1));
      next_candidate ctx st
    end
  end

let debug = Sys.getenv_opt "OCEP_DEBUG" <> None

let next_acceptable ctx st =
  let rec loop () =
    match next_candidate ctx st with
    | None -> None
    | Some x ->
      bump_nodes ctx;
      let ok = accept ctx st x in
      if debug then
        Format.eprintf "  leaf %d candidate %a -> %b@." st.leaf Event.pp x ok;
      if ok then Some x else loop ()
  in
  loop ()

(* Limited happens-before: no event of [leaf]'s class strictly causally
   between a and b, per trace, located with two binary searches. *)
let lim_ok ctx ~leaf ~a ~b =
  let interposed = ref false in
  for t = 0 to ctx.n_traces - 1 do
    if not !interposed then begin
      let hist = History.on ctx.history ~leaf ~trace:t in
      if not (Vec.is_empty hist) then begin
        let lo = Domain.ls_position hist ~trace:t ~w:a in
        let hi = Domain.gp_position hist ~trace:t ~w:b in
        if lo <= hi then interposed := true
      end
    end
  done;
  not !interposed

let post_checks ctx m =
  List.for_all
    (fun (lx, ly) -> List.exists (fun i -> List.exists (fun j -> Event.hb m.(i) m.(j)) ly) lx)
    ctx.net.Compile.exists_before
  && List.for_all (fun (i, j) -> lim_ok ctx ~leaf:i ~a:m.(i) ~b:m.(j)) ctx.net.Compile.lim_checks

let extract ctx = Array.map (fun e -> Option.get e) ctx.assigned

let make_ctx ~net ~history ~n_traces ~trace_of_name ~partner_of ~anchor_leaf ~anchor ~pin
    ~node_budget ~stats =
  if not (Compile.leaf_matches net anchor_leaf anchor) then
    invalid_arg "Matcher: anchor event does not match the anchor leaf";
  (match pin with
  | Some (l, t) when l = anchor_leaf && t <> (anchor : Event.t).trace ->
    invalid_arg "Matcher: pin names the anchor leaf on a different trace"
  | _ -> ());
  let k = Compile.size net in
  let order = make_order net ~anchor_leaf in
  let level_of = Array.make k 0 in
  Array.iteri (fun lvl leaf -> level_of.(leaf) <- lvl) order;
  let partner_links = Array.make k [] in
  List.iter
    (fun (i, j) ->
      partner_links.(i) <- j :: partner_links.(i);
      partner_links.(j) <- i :: partner_links.(j))
    net.Compile.partners;
  let leaf_vars = Array.make k [] in
  List.iter
    (fun (v, ps) -> List.iter (fun (i, f) -> leaf_vars.(i) <- (v, f) :: leaf_vars.(i)) ps)
    net.Compile.var_fields;
  let ctx =
    {
      net;
      history;
      n_traces;
      trace_of_name;
      partner_of;
      k;
      order;
      level_of;
      assigned = Array.make k None;
      partner_links;
      leaf_vars;
      var_positions = net.Compile.var_fields;
      pin;
      stats;
      node_budget;
      start_nodes = stats.nodes;
    }
  in
  ctx.assigned.(anchor_leaf) <- Some anchor;
  ctx

(* The main loop: [forward] fills level [i]; a wiped-out level jumps to the
   deepest conflicting level (goBackward with the recorded information of
   Fig. 5). *)
let search ~net ~history ~n_traces ~trace_of_name ~partner_of ~anchor_leaf ~anchor ?pin
    ?(node_budget = max_int) ?(stats = new_stats ()) () =
  let ctx =
    make_ctx ~net ~history ~n_traces ~trace_of_name ~partner_of ~anchor_leaf ~anchor ~pin
      ~node_budget ~stats
  in
  stats.searches <- stats.searches + 1;
  let k = ctx.k in
  if k = 1 then
    if post_checks ctx (extract ctx) then Found (extract ctx) else Not_found
  else begin
    let levels = Array.make k None in
    levels.(1) <- Some (init_level ctx 1);
    let result = ref None in
    let i = ref 1 in
    (try
       while !result = None do
         let st = match levels.(!i) with Some st -> st | None -> assert false in
         match next_acceptable ctx st with
         | Some x ->
           ctx.assigned.(st.leaf) <- Some x;
           if !i = k - 1 then begin
             let m = extract ctx in
             if post_checks ctx m then result := Some (Found m)
             else begin
               (* keep searching at this level; a post-check failure may be
                  caused by any earlier choice *)
               ctx.assigned.(st.leaf) <- None;
               for l = 0 to !i - 1 do
                 add_conflict st l
               done
             end
           end
           else begin
             incr i;
             levels.(!i) <- Some (init_level ctx !i)
           end
         | None -> (
           (* goBackward: jump to the deepest conflicting level *)
           match List.sort (fun a b -> compare b a) st.conflicts with
           | [] | 0 :: _ -> result := Some Not_found
           | j :: _ ->
             ctx.stats.backjumps <- ctx.stats.backjumps + 1;
             (match levels.(j) with
             | Some stj ->
               List.iter (fun c -> if c <> j then add_conflict stj c) st.conflicts
             | None -> assert false);
             for l = j to !i do
               (match levels.(l) with
               | Some s -> ctx.assigned.(s.leaf) <- None
               | None -> ());
               if l > j then levels.(l) <- None
             done;
             i := j)
       done
     with Budget -> result := Some Aborted);
    match !result with Some r -> r | None -> assert false
  end

let first_search_leaf ~net ~anchor_leaf =
  if Compile.size net <= 1 then None else Some (make_order net ~anchor_leaf).(1)

let enumerate ~net ~history ~n_traces ~trace_of_name ~partner_of ~anchor_leaf ~anchor
    ?(limit = max_int) yield =
  let stats = new_stats () in
  let ctx =
    make_ctx ~net ~history ~n_traces ~trace_of_name ~partner_of ~anchor_leaf ~anchor ~pin:None
      ~node_budget:max_int ~stats
  in
  let k = ctx.k in
  let found = ref 0 in
  if k = 1 then begin
    if post_checks ctx (extract ctx) then yield (extract ctx)
  end
  else begin
    let levels = Array.make k None in
    levels.(1) <- Some (init_level ctx 1);
    let i = ref 1 in
    let stop = ref false in
    while not !stop do
      let st = match levels.(!i) with Some st -> st | None -> assert false in
      match next_acceptable ctx st with
      | Some x ->
        ctx.assigned.(st.leaf) <- Some x;
        if !i = k - 1 then begin
          let m = extract ctx in
          if post_checks ctx m then begin
            yield m;
            incr found;
            if !found >= limit then stop := true
          end;
          ctx.assigned.(st.leaf) <- None
        end
        else begin
          incr i;
          levels.(!i) <- Some (init_level ctx !i)
        end
      | None ->
        (* chronological backtracking for exhaustive enumeration *)
        if !i = 1 then stop := true
        else begin
          levels.(!i) <- None;
          decr i;
          let prev = match levels.(!i) with Some s -> s | None -> assert false in
          ctx.assigned.(prev.leaf) <- None
        end
    done
  end
