module Provenance = Ocep_obs.Provenance

type record = {
  wire_id : int;
  verdict : Provenance.verdict;
  decode_us : float;
  admit_us : float;
  dispatch_us : float;
  match_us : float;
}

(* Per-trace rings flattened into ONE float array, stride 6 per slot:
   [stored index; packed (wire_id, verdict); decode; admit; dispatch;
   match]. The index and the packed word are small non-negative
   integers stored as floats — exact below 2^53, far beyond any run —
   so the whole slot is 48 contiguous bytes and recording one event is
   six unchecked stores that touch a single cache line (sometimes two):
   the ring cycles through megabytes, so per-note cache traffic, not
   instruction count, is what the always-on budget buys. No division
   (capacity is a power of two, slot = index land mask), no allocation.
   A slot is valid only while its stored index matches the queried one
   (older events of the same residue have been overwritten).

   The packed word is [(wire_id + 1) * 8 + verdict]: wire ids are
   >= -1 (-1 marks a direct feed), verdicts fit in 3 bits. *)
type t = {
  cap : int;  (* power of two *)
  mask : int;
  n_traces : int;
  slots : float array;  (* n_traces * cap * 6 *)
  last_dispatch : float array;  (* per trace; 0 until the first event *)
  mutable recorded : int;
  (* bounded ring of wire records admission refused (deduped,
     gap-skipped, late, orphaned) — the negative space of a causal
     chain: why a wire id near a match never reached the engine *)
  drop_id : int array;
  drop_verd : int array;
  mutable drop_next : int;
  mutable drop_total : int;
}

let stride = 6

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(drop_capacity = 1024) ~n_traces ~capacity () =
  if capacity <= 0 then invalid_arg "Flight.create: capacity must be positive";
  if drop_capacity <= 0 then invalid_arg "Flight.create: drop_capacity must be positive";
  let cap = pow2 capacity 1 in
  {
    cap;
    mask = cap - 1;
    n_traces;
    slots = Array.make (n_traces * cap * stride) (-1.);
    last_dispatch = Array.make n_traces 0.;
    recorded = 0;
    drop_id = Array.make drop_capacity (-1);
    drop_verd = Array.make drop_capacity 0;
    drop_next = 0;
    drop_total = 0;
  }

let capacity t = t.cap

let recorded t = t.recorded

let note t ~trace ~index ~wire_id ~verdict ~stamps =
  (* trace and index come from an event the engine already built, so
     the slot arithmetic below cannot escape the array. The stamps
     arrive as a 3-slot array [decode; admit; dispatch] rather than
     three float arguments: float args to a non-inlined call are boxed
     (no flambda), and this runs once per event *)
  let s = ((trace * t.cap) + (index land t.mask)) * stride in
  let sl = t.slots in
  Array.unsafe_set sl s (float_of_int index);
  Array.unsafe_set sl (s + 1) (float_of_int (((wire_id + 1) lsl 3) lor verdict));
  Array.unsafe_set sl (s + 2) (Array.unsafe_get stamps 0);
  Array.unsafe_set sl (s + 3) (Array.unsafe_get stamps 1);
  let dispatch = Array.unsafe_get stamps 2 in
  Array.unsafe_set sl (s + 4) dispatch;
  Array.unsafe_set sl (s + 5) 0.;
  Array.unsafe_set t.last_dispatch trace dispatch;
  t.recorded <- t.recorded + 1

let note_match t ~trace ~index ~dur_us =
  let s = ((trace * t.cap) + (index land t.mask)) * stride in
  if Array.unsafe_get t.slots s = float_of_int index then
    Array.unsafe_set t.slots (s + 5) dur_us

let find t ~trace ~index =
  if trace < 0 || trace >= t.n_traces || index < 0 then None
  else begin
    let s = ((trace * t.cap) + (index land t.mask)) * stride in
    if t.slots.(s) <> float_of_int index then None
    else begin
      let p = int_of_float t.slots.(s + 1) in
      Some
        {
          wire_id = (p lsr 3) - 1;
          verdict = Provenance.verdict_of_int (p land 7);
          decode_us = t.slots.(s + 2);
          admit_us = t.slots.(s + 3);
          dispatch_us = t.slots.(s + 4);
          match_us = t.slots.(s + 5);
        }
    end
  end

let last_dispatch_us t ~trace = t.last_dispatch.(trace)

let note_drop t ~id ~verdict =
  let s = t.drop_next in
  t.drop_id.(s) <- id;
  t.drop_verd.(s) <- Provenance.verdict_to_int verdict;
  t.drop_next <- (if s + 1 = Array.length t.drop_id then 0 else s + 1);
  t.drop_total <- t.drop_total + 1

let drops_recorded t = t.drop_total

let drops t =
  let cap = Array.length t.drop_id in
  let n = min t.drop_total cap in
  let first = if t.drop_total > cap then t.drop_next else 0 in
  List.init n (fun i ->
      let s = (first + i) mod cap in
      (t.drop_id.(s), Provenance.verdict_of_int t.drop_verd.(s)))
