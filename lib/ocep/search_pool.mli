(** A persistent pool of worker domains for fanning the engine's pinned
    searches out across cores (OCaml 5 [Domain]s; stdlib
    [Mutex]/[Condition]/[Atomic] only).

    One terminating arrival triggers one anchor search plus one pinned
    search per still-uncovered coverage slot; the pinned searches are
    independent read-only traversals of the shared history, so they can
    run concurrently. This pool is shaped for exactly that fan-out:

    - the pool is created once and reused for every arrival, so the
      per-batch cost is a broadcast and a barrier, not domain spawns;
    - tasks of a batch are indices [0 .. n-1] pulled from a shared
      atomic counter, so imbalanced searches (one slot exhausting a huge
      subtree while the others finish instantly) are load-balanced for
      free;
    - the submitting domain participates in the batch instead of
      blocking, so [create ~workers:p] spawns only [p - 1] domains and
      [workers:1] degenerates to a plain sequential loop with no domains
      at all.

    Distinct from {!Pool}/{!Par}, which parallelize the inside of a
    single search (the first backtracking level's traces); this pool
    parallelizes across whole searches and is what {!Engine} uses.

    Thread-safety contract: the task function must only read state
    shared with other tasks and with the submitting domain. The engine's
    searches qualify — see "Parallel pinned-search fan-out" in
    DESIGN.md for the audit of the read-only-history invariant. *)

type t

val create : ?tracer:Ocep_obs.Tracer.t -> workers:int -> unit -> t
(** A pool of [max 1 workers] total workers: the caller plus
    [workers - 1] spawned domains. With [tracer], every worker records a
    ["drain"] span per batch it pulled tasks from, tagged with its
    domain id as the span's tid — the worker-domain rows of the Chrome
    trace. *)

val workers : t -> int
(** Total parallel workers (including the calling domain), at least 1. *)

type stats = {
  fan_outs : int;  (** batches submitted via {!run} *)
  tasks : int;  (** tasks executed across all batches *)
  busy_s : float array;
      (** wall-clock seconds each worker index spent draining batches
          (index 0 is the submitting domain); idle waits are excluded *)
}

val stats : t -> stats
(** A consistent snapshot of the pool's activity counters. *)

val run : t -> n:int -> (int -> 'a) -> 'a array
(** [run pool ~n f] evaluates [f 0 .. f (n-1)], each exactly once, in
    any order and concurrently across the pool's workers, and returns
    the results in index order after all have completed. The calling
    domain executes tasks too. If any task raises, the first exception
    observed is re-raised in the caller once the batch has drained (the
    barrier is never abandoned). Not reentrant: one [run] at a time per
    pool, and tasks must not submit to the pool they run on. *)

val shutdown : t -> unit
(** Terminate and join the worker domains. Idempotent; [run] afterwards
    raises [Invalid_argument]. Running domains keep the whole program
    alive, so the pool's owner must call this before exit. *)
