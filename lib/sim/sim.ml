open Ocep_base

type msg = {
  m_id : int;
  m_src : int;
  m_dst : int;
  m_tag : string;
  m_text : string;
  m_size : int;
}

type config = {
  n_procs : int;
  sem_names : string list;
  seed : int;
  eager_threshold : int;
  max_events : int;
  on_stall : [ `Recover | `Stop ];
  blocked_send_etype : string;
}

let default_config ~n_procs ~seed =
  {
    n_procs;
    sem_names = [];
    seed;
    eager_threshold = 1024;
    max_events = 100_000;
    on_stall = `Recover;
    blocked_send_etype = "Blocked_Send";
  }

let n_traces cfg = cfg.n_procs + List.length cfg.sem_names

(* memoized so repeated calls return the physically same string — the
   POET ingest memo then recognizes event texts built from process names
   without re-hashing them *)
let proc_name_cache = ref [||]

let proc_name i =
  let cache = !proc_name_cache in
  if i >= 0 && i < Array.length cache then cache.(i)
  else if i >= 0 && i < 1 lsl 16 then begin
    let n = max 64 (max (Array.length cache * 2) (i + 1)) in
    let grown = Array.init n (fun j -> if j < Array.length cache then cache.(j) else "P" ^ string_of_int j) in
    proc_name_cache := grown;
    grown.(i)
  end
  else "P" ^ string_of_int i

let trace_names cfg =
  Array.init (n_traces cfg) (fun i ->
      if i < cfg.n_procs then proc_name i
      else List.nth cfg.sem_names (i - cfg.n_procs))

type deadlock = { participants : (int * int) list; at_event : int }

type stats = { events_emitted : int; deadlocks : deadlock list; all_done : bool }

(* ------------------------------------------------------------------ *)
(* Effects performed by process bodies                                 *)
(* ------------------------------------------------------------------ *)

type _ Effect.t +=
  | Send_e : { dst : int; etype : string; tag : string; text : string; size : int } -> unit Effect.t
  | Recv_e : { src : int option; tag : string option; etype : string } -> msg Effect.t
  | Emit_e : { etype : string; text : string } -> unit Effect.t
  | Sem_p_e : int -> unit Effect.t
  | Sem_v_e : int -> unit Effect.t
  | Yield_e : unit Effect.t

let send ?(etype = "Send") ?(tag = "") ?(text = "") ?(size = 0) ~dst () =
  Effect.perform (Send_e { dst; etype; tag; text; size })

let recv ?src ?tag ?(etype = "Recv") () = Effect.perform (Recv_e { src; tag; etype })

let emit ~etype ~text = Effect.perform (Emit_e { etype; text })

let sem_p i = Effect.perform (Sem_p_e i)

let sem_v i = Effect.perform (Sem_v_e i)

let yield () = Effect.perform Yield_e

let current_pid = ref (-1)

let self () = !current_pid

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

type recv_spec = { rs_src : int option; rs_tag : string option; rs_etype : string }

type pending_send = {
  ps_dst : int;
  ps_etype : string;
  ps_tag : string;
  ps_text : string;
  ps_size : int;
}

type pstate =
  | Fresh of (int -> unit)
  | Ready_u of (unit, unit) Effect.Deep.continuation
  | Ready_m of (msg, unit) Effect.Deep.continuation * msg
  | Waiting_recv of (msg, unit) Effect.Deep.continuation * recv_spec
  | Waiting_send of (unit, unit) Effect.Deep.continuation * pending_send
  | Waiting_sem of (unit, unit) Effect.Deep.continuation
  | Running
  | Done_p

type sem_state = {
  s_name : string;
  s_trace : int;
  mutable s_holder : int option;
  s_queue : int Queue.t;
}

type t = {
  cfg : config;
  names : string array;
  prng : Prng.t;
  states : pstate array;
  mailboxes : msg list ref array;
  sems : sem_state array;
  runnable : int Vec.t;
  sink : Event.raw -> unit;
  mutable emitted : int;
  mutable msg_counter : int;
  mutable deadlock_log : deadlock list;
  mutable live : int;
}

let emit_raw t ~trace ~etype ~text ~kind =
  t.emitted <- t.emitted + 1;
  t.sink { Event.r_trace = trace; r_etype = etype; r_text = text; r_kind = kind }

let fresh_msg_id t =
  t.msg_counter <- t.msg_counter + 1;
  t.msg_counter

let set_ready t p st =
  t.states.(p) <- st;
  Vec.push t.runnable p

let spec_matches spec ~src ~tag =
  (match spec.rs_src with None -> true | Some s -> s = src)
  && (match spec.rs_tag with None -> true | Some tg -> tg = tag)

(* Emit the send/receive event pair for a message that is transferred right
   now (receiver is known). *)
let emit_transfer t ~src ~dst ~etype ~recv_etype ~tag ~text ~size =
  let id = fresh_msg_id t in
  let m = { m_id = id; m_src = src; m_dst = dst; m_tag = tag; m_text = text; m_size = size } in
  emit_raw t ~trace:src ~etype ~text ~kind:(Send { msg = id });
  emit_raw t ~trace:dst ~etype:recv_etype ~text:t.names.(src) ~kind:(Receive { msg = id });
  m

(* A new message whose receiver may or may not be waiting: emit the send
   event; deliver now if a matching receive is pending, else enqueue. *)
let deliver_new_msg t ~src ~dst ~etype ~tag ~text ~size =
  match t.states.(dst) with
  | Waiting_recv (kd, spec) when spec_matches spec ~src ~tag ->
    let id = fresh_msg_id t in
    let m = { m_id = id; m_src = src; m_dst = dst; m_tag = tag; m_text = text; m_size = size } in
    emit_raw t ~trace:src ~etype ~text ~kind:(Send { msg = id });
    emit_raw t ~trace:dst ~etype:spec.rs_etype ~text:t.names.(src) ~kind:(Receive { msg = id });
    set_ready t dst (Ready_m (kd, m))
  | _ ->
    let id = fresh_msg_id t in
    let m = { m_id = id; m_src = src; m_dst = dst; m_tag = tag; m_text = text; m_size = size } in
    emit_raw t ~trace:src ~etype ~text ~kind:(Send { msg = id });
    t.mailboxes.(dst) := !(t.mailboxes.(dst)) @ [ m ]

let handle_send t p ~dst ~etype ~tag ~text ~size k =
  if size <= t.cfg.eager_threshold then begin
    deliver_new_msg t ~src:p ~dst ~etype ~tag ~text ~size;
    set_ready t p (Ready_u k)
  end
  else
    match t.states.(dst) with
    | Waiting_recv (kd, spec) when spec_matches spec ~src:p ~tag ->
      let m = emit_transfer t ~src:p ~dst ~etype ~recv_etype:spec.rs_etype ~tag ~text ~size in
      set_ready t dst (Ready_m (kd, m));
      set_ready t p (Ready_u k)
    | _ ->
      emit_raw t ~trace:p ~etype:t.cfg.blocked_send_etype ~text:t.names.(dst) ~kind:Internal;
      t.states.(p) <-
        Waiting_send (k, { ps_dst = dst; ps_etype = etype; ps_tag = tag; ps_text = text; ps_size = size })

let take_from_mailbox t p spec =
  let rec extract acc = function
    | [] -> None
    | m :: rest ->
      if spec_matches spec ~src:m.m_src ~tag:m.m_tag then begin
        t.mailboxes.(p) := List.rev_append acc rest;
        Some m
      end
      else extract (m :: acc) rest
  in
  extract [] !(t.mailboxes.(p))

(* A blocked (rendezvous) sender whose message matches the receive now being
   posted on [p]. Scanned in process-id order for determinism. *)
let find_blocked_sender t p spec =
  let n = Array.length t.states in
  let rec loop q =
    if q >= n then None
    else
      match t.states.(q) with
      | Waiting_send (kq, ps)
        when ps.ps_dst = p && spec_matches spec ~src:q ~tag:ps.ps_tag ->
        Some (q, kq, ps)
      | _ -> loop (q + 1)
  in
  loop 0

let handle_recv t p ~src ~tag ~etype k =
  let spec = { rs_src = src; rs_tag = tag; rs_etype = etype } in
  match take_from_mailbox t p spec with
  | Some m ->
    emit_raw t ~trace:p ~etype ~text:t.names.(m.m_src) ~kind:(Receive { msg = m.m_id });
    set_ready t p (Ready_m (k, m))
  | None -> (
    match find_blocked_sender t p spec with
    | Some (q, kq, ps) ->
      let m =
        emit_transfer t ~src:q ~dst:p ~etype:ps.ps_etype ~recv_etype:etype ~tag:ps.ps_tag
          ~text:ps.ps_text ~size:ps.ps_size
      in
      set_ready t q (Ready_u kq);
      set_ready t p (Ready_m (k, m))
    | None -> t.states.(p) <- Waiting_recv (k, spec))

let grant t sem q =
  sem.s_holder <- Some q;
  let id = fresh_msg_id t in
  emit_raw t ~trace:sem.s_trace ~etype:"Sem_Grant" ~text:t.names.(q) ~kind:(Send { msg = id });
  emit_raw t ~trace:q ~etype:"Sem_Grant_Recv" ~text:sem.s_name ~kind:(Receive { msg = id })

let handle_sem_p t p i k =
  let sem = t.sems.(i) in
  let id = fresh_msg_id t in
  emit_raw t ~trace:p ~etype:"Sem_P" ~text:sem.s_name ~kind:(Send { msg = id });
  emit_raw t ~trace:sem.s_trace ~etype:"Sem_P_Recv" ~text:t.names.(p) ~kind:(Receive { msg = id });
  if sem.s_holder = None && Queue.is_empty sem.s_queue then begin
    grant t sem p;
    set_ready t p (Ready_u k)
  end
  else begin
    Queue.push p sem.s_queue;
    t.states.(p) <- Waiting_sem k
  end

let handle_sem_v t p i k =
  let sem = t.sems.(i) in
  let id = fresh_msg_id t in
  emit_raw t ~trace:p ~etype:"Sem_V" ~text:sem.s_name ~kind:(Send { msg = id });
  emit_raw t ~trace:sem.s_trace ~etype:"Sem_V_Recv" ~text:t.names.(p) ~kind:(Receive { msg = id });
  (if Queue.is_empty sem.s_queue then sem.s_holder <- None
   else
     let q = Queue.pop sem.s_queue in
     grant t sem q;
     match t.states.(q) with
     | Waiting_sem kq -> set_ready t q (Ready_u kq)
     | _ -> assert false);
  set_ready t p (Ready_u k)

let handler t p : (unit, unit) Effect.Deep.handler =
  {
    retc =
      (fun () ->
        t.states.(p) <- Done_p;
        t.live <- t.live - 1);
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Send_e { dst; etype; tag; text; size } ->
          Some
            (fun (k : (a, unit) Effect.Deep.continuation) ->
              handle_send t p ~dst ~etype ~tag ~text ~size k)
        | Recv_e { src; tag; etype } ->
          Some
            (fun (k : (a, unit) Effect.Deep.continuation) ->
              handle_recv t p ~src ~tag ~etype k)
        | Emit_e { etype; text } ->
          Some
            (fun (k : (a, unit) Effect.Deep.continuation) ->
              emit_raw t ~trace:p ~etype ~text ~kind:Internal;
              set_ready t p (Ready_u k))
        | Sem_p_e i -> Some (fun (k : (a, unit) Effect.Deep.continuation) -> handle_sem_p t p i k)
        | Sem_v_e i -> Some (fun (k : (a, unit) Effect.Deep.continuation) -> handle_sem_v t p i k)
        | Yield_e -> Some (fun (k : (a, unit) Effect.Deep.continuation) -> set_ready t p (Ready_u k))
        | _ -> None);
  }

let step t p =
  current_pid := p;
  match t.states.(p) with
  | Fresh body ->
    t.states.(p) <- Running;
    Effect.Deep.match_with (fun () -> body p) () (handler t p)
  | Ready_u k ->
    t.states.(p) <- Running;
    Effect.Deep.continue k ()
  | Ready_m (k, m) ->
    t.states.(p) <- Running;
    Effect.Deep.continue k m
  | Waiting_recv _ | Waiting_send _ | Waiting_sem _ | Running | Done_p ->
    (* stale runnable entry; skip *)
    ()

(* Pop a random runnable process (swap-remove for O(1)). *)
let pop_runnable t =
  let rec loop () =
    let n = Vec.length t.runnable in
    if n = 0 then None
    else begin
      let i = if n = 1 then 0 else Prng.int t.prng n in
      let p = Vec.get t.runnable i in
      let last = Vec.length t.runnable - 1 in
      Vec.set t.runnable i (Vec.get t.runnable last);
      ignore (Vec.pop t.runnable);
      match t.states.(p) with
      | Fresh _ | Ready_u _ | Ready_m _ -> Some p
      | _ -> loop ()
    end
  in
  loop ()

(* Global stall: every live process is parked. If blocked (rendezvous)
   senders exist this is a communication deadlock; under [`Recover] the
   scheduler force-buffers one blocked message — standing in for an
   operator aborting/restarting — records the instance, and continues. *)
let handle_stall t =
  let blocked =
    let acc = ref [] in
    Array.iteri
      (fun q st -> match st with Waiting_send (_, ps) -> acc := (q, ps.ps_dst) :: !acc | _ -> ())
      t.states;
    List.rev !acc
  in
  match (blocked, t.cfg.on_stall) with
  | [], _ | _, `Stop -> false
  | (q, _) :: _, `Recover ->
    t.deadlock_log <- { participants = blocked; at_event = t.emitted } :: t.deadlock_log;
    (match t.states.(q) with
    | Waiting_send (kq, ps) ->
      deliver_new_msg t ~src:q ~dst:ps.ps_dst ~etype:ps.ps_etype ~tag:ps.ps_tag ~text:ps.ps_text
        ~size:ps.ps_size;
      set_ready t q (Ready_u kq)
    | _ -> assert false);
    true

let run cfg ~sink ~bodies =
  if Array.length bodies <> cfg.n_procs then
    invalid_arg "Sim.run: bodies length must equal n_procs";
  let names = trace_names cfg in
  let sems =
    Array.of_list
      (List.mapi
         (fun i name ->
           { s_name = name; s_trace = cfg.n_procs + i; s_holder = None; s_queue = Queue.create () })
         cfg.sem_names)
  in
  let t =
    {
      cfg;
      names;
      prng = Prng.create cfg.seed;
      states = Array.map (fun b -> Fresh b) bodies;
      mailboxes = Array.init cfg.n_procs (fun _ -> ref []);
      sems;
      runnable = Vec.create ();
      sink;
      emitted = 0;
      msg_counter = 0;
      deadlock_log = [];
      live = cfg.n_procs;
    }
  in
  for p = 0 to cfg.n_procs - 1 do
    Vec.push t.runnable p
  done;
  let rec loop () =
    if t.emitted >= cfg.max_events || t.live <= 0 then ()
    else
      match pop_runnable t with
      | Some p ->
        step t p;
        loop ()
      | None -> if handle_stall t then loop () else ()
  in
  loop ();
  { events_emitted = t.emitted; deadlocks = List.rev t.deadlock_log; all_done = t.live = 0 }
