open Ocep_base
module Sim = Ocep_sim.Sim
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine
module Matcher = Ocep.Matcher
module History = Ocep.History
module Summary = Ocep_stats.Summary
module Oracle = Ocep_baselines.Oracle
module Window = Ocep_baselines.Window
module Chrono = Ocep_baselines.Chrono
module Waitfor = Ocep_baselines.Waitfor
module Conflict_graph = Ocep_baselines.Conflict_graph
module Race_checker = Ocep_baselines.Race_checker
module Workload = Ocep_workloads.Workload

type scale = { events : int; runs : int }

let scale_from_env () =
  let get name default =
    match Sys.getenv_opt name with
    | Some v -> ( match int_of_string_opt v with Some n when n > 0 -> n | _ -> default)
    | None -> default
  in
  { events = get "OCEP_EVENTS" 50_000; runs = get "OCEP_RUNS" 2 }

(* OCEP_LATENCY_SINK=histogram reruns the whole evaluation in bounded
   memory (quantiles at bucket resolution); =both validates the histogram
   path against the exact samples. Default: the exact raw samples. *)
let latency_sink_from_env () =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "OCEP_LATENCY_SINK") with
  | Some "histogram" -> Engine.Histogram
  | Some "both" -> Engine.Both
  | _ -> Engine.Samples

let repro_engine_config () =
  { Engine.default_config with Engine.latency_sink = latency_sink_from_env () }

(* Standalone-matcher experiments intern their net through the POET
   store's table, as the engine does internally. *)
let inet_of poet net = Compile.intern_net net ~intern:(Symbol.intern (Poet.symbols poet))

(* Pool the per-event latencies of [runs] seeded runs of one configuration
   (the paper runs each configuration five times). *)
let pooled_runs ~scale ~case ~traces =
  let config = repro_engine_config () in
  let outcomes =
    List.init scale.runs (fun i ->
        let w = Cases.make case ~traces ~seed:(1009 * (i + 1)) ~max_events:scale.events in
        Runner.run ~engine_config:config w)
  in
  let latencies = Array.concat (List.map (fun o -> o.Runner.latencies_us) outcomes) in
  (outcomes, latencies)

(* The pooled distribution: exact when raw samples were kept, otherwise the
   runs' bounded histograms merged bucket-wise. *)
let pooled_summary outcomes latencies =
  if Array.length latencies > 0 then Some (Summary.of_samples latencies)
  else
    match List.filter_map (fun o -> o.Runner.latency_hist) outcomes with
    | [] -> None
    | h :: rest ->
      let merged = List.fold_left Ocep_stats.Histogram.merge h rest in
      if Ocep_stats.Histogram.count merged = 0 then None
      else Some (Summary.of_histogram merged)

(* ------------------------------------------------------------------ *)
(* Fig. 3                                                              *)
(* ------------------------------------------------------------------ *)

let fig3 ppf =
  Format.fprintf ppf "== Fig. 3: choosing a representative subset ==@.";
  let names = [| "P0"; "P1"; "P2" |] in
  let net = Compile.compile (Parser.parse "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;") in
  let poet = Poet.create ~retain:true ~trace_names:names () in
  let engine = Engine.create ~net ~poet () in
  let window = Window.create ~net ~window:(3 * 3) () in
  Poet.subscribe poet (fun ev -> ignore (Window.on_event window ev));
  let msg = ref 0 in
  let ingest raw = ignore (Poet.ingest poet raw) in
  let internal tr ty = ingest { Event.r_trace = tr; r_etype = ty; r_text = ""; r_kind = Event.Internal } in
  let send tr =
    incr msg;
    ingest { Event.r_trace = tr; r_etype = "m"; r_text = ""; r_kind = Event.Send { msg = !msg } };
    !msg
  in
  let recv tr m = ingest { Event.r_trace = tr; r_etype = "m"; r_text = ""; r_kind = Event.Receive { msg = m } } in
  internal 1 "A";
  let m1 = send 1 in
  for _ = 1 to 20 do
    internal 0 "N"
  done;
  internal 0 "A";
  internal 0 "A";
  let m0 = send 0 in
  recv 2 m0;
  recv 2 m1;
  internal 2 "B";
  let events = Poet.all_events poet in
  let all = Oracle.all_matches ~net ~events in
  let slot_str slots =
    String.concat ", " (List.map (fun (l, t) -> Printf.sprintf "(%s,P%d)" (if l = 0 then "A" else "B") t) slots)
  in
  Format.fprintf ppf "all matches:            %d, covering slots %s@." (List.length all)
    (slot_str (Oracle.true_slots all));
  Format.fprintf ppf "window (n^2 = 9 events): %d, covering slots %s   <- (A,P1) lost@."
    (List.length (Window.matches window))
    (slot_str (Window.covered_slots window));
  let reported =
    List.sort_uniq compare
      (List.concat_map
         (fun (r : Ocep.Subset.report) ->
           Array.to_list (Array.mapi (fun leaf (e : Event.t) -> (leaf, e.trace)) r.events))
         (Engine.reports engine))
  in
  Format.fprintf ppf "OCEP subset:            %d, covering slots %s@."
    (List.length (Engine.reports engine))
    (slot_str reported);
  Format.fprintf ppf "@."

(* ------------------------------------------------------------------ *)
(* Figs. 6-9                                                           *)
(* ------------------------------------------------------------------ *)

let fig_number = function
  | "deadlock" -> 6
  | "races" -> 7
  | "atomicity" -> 8
  | "ordering" -> 9
  | _ -> 0

(* Fig. 6's discussion: the search is exponential in the pattern length;
   sweep the deadlock-cycle length at a fixed trace count. *)
let fig6_pattern_length ppf ~scale =
  Format.fprintf ppf
    "== Fig. 6 (discussion): cost vs pattern length (deadlock cycle, 20 traces) ==@.";
  Format.fprintf ppf "%8s %8s %10s %10s %14s %10s@." "cycle" "samples" "Med" "Q3" "TopWhisker"
    "Max";
  let config = repro_engine_config () in
  List.iter
    (fun cycle_len ->
      let outcomes =
        List.init scale.runs (fun i ->
            let w =
              Ocep_workloads.Random_walk.make ~traces:20 ~seed:(701 * (i + 1))
                ~max_events:scale.events ~cycle_len ()
            in
            Runner.run ~engine_config:config w)
      in
      let latencies = Array.concat (List.map (fun o -> o.Runner.latencies_us) outcomes) in
      match pooled_summary outcomes latencies with
      | None -> ()
      | Some s ->
        Format.fprintf ppf "%8d %8d %10.1f %10.1f %14.1f %10.1f@." cycle_len s.Summary.n
          s.Summary.median s.Summary.q3 s.Summary.top_whisker s.Summary.max)
    [ 2; 3; 4; 5; 6 ];
  Format.fprintf ppf "@."

let boxplot_figure ppf ~scale ~case =
  Format.fprintf ppf "== Fig. %d: execution time for %s (us per terminating event) ==@."
    (fig_number case) case;
  Format.fprintf ppf "%8s %8s %10s %10s %10s %14s %10s %10s@." "traces" "samples" "Q1" "Med"
    "Q3" "TopWhisker" "Max" "Outliers";
  List.iter
    (fun traces ->
      let outcomes, latencies = pooled_runs ~scale ~case ~traces in
      match pooled_summary outcomes latencies with
      | None -> Format.fprintf ppf "%8d (no terminating events at this scale)@." traces
      | Some s ->
        Format.fprintf ppf "%8d %8d %10.1f %10.1f %10.1f %14.1f %10.1f %10d@." traces
          s.Summary.n s.Summary.q1 s.Summary.median s.Summary.q3 s.Summary.top_whisker
          s.Summary.max s.Summary.outliers_above)
    (Cases.paper_trace_counts case);
  Format.fprintf ppf "@."

(* ------------------------------------------------------------------ *)
(* Fig. 10                                                             *)
(* ------------------------------------------------------------------ *)

let fig10_reference_traces = function "ordering" -> 100 | _ -> 20

let fig10 ppf ~scale =
  Format.fprintf ppf
    "== Fig. 10: detailed runtime per test case (us; measured at the middle trace count) ==@.";
  Format.fprintf ppf "%-12s %7s | %8s %8s %8s %12s %10s@." "Test Case" "" "Q1" "Med" "Q3"
    "Top Whisker" "Max";
  List.iter
    (fun case ->
      let traces = fig10_reference_traces case in
      let outcomes, latencies = pooled_runs ~scale ~case ~traces in
      (match pooled_summary outcomes latencies with
      | Some s ->
        Format.fprintf ppf "%-12s %7s | %8.0f %8.0f %8.0f %12.0f %10.0f@." case "measured"
          s.Summary.q1 s.Summary.median s.Summary.q3 s.Summary.top_whisker s.Summary.max
      | None -> ());
      let q1, med, q3, topw, mx = Cases.paper_fig10_us case in
      Format.fprintf ppf "%-12s %7s | %8.0f %8.0f %8.0f %12.0f %10.0f@." "" "paper" q1 med q3
        topw mx)
    Cases.names;
  Format.fprintf ppf "@."

(* ------------------------------------------------------------------ *)
(* Completeness (Section V-D)                                          *)
(* ------------------------------------------------------------------ *)

let completeness ppf ~scale =
  Format.fprintf ppf "== Completeness: injected violations detected / false positives ==@.";
  Format.fprintf ppf "%-12s %10s %10s %16s %10s@." "case" "injected" "detected" "false-positives"
    "reports";
  List.iter
    (fun case ->
      let traces = fig10_reference_traces case in
      let outcomes, _ = pooled_runs ~scale ~case ~traces in
      let sum f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
      Format.fprintf ppf "%-12s %10d %10d %16d %10d@." case
        (sum (fun o -> o.Runner.injections_total))
        (sum (fun o -> o.Runner.injections_detected))
        (sum (fun o -> o.Runner.false_reports))
        (sum (fun o -> List.length o.Runner.reports)))
    Cases.names;
  Format.fprintf ppf "@."

(* ------------------------------------------------------------------ *)
(* Multi-pattern registry: the paper's four patterns in one engine     *)
(* ------------------------------------------------------------------ *)

(* The evaluation's deployment story: all four concurrency-bug patterns
   monitor the same execution. One registry engine ingests each case's
   stream once with all four patterns registered; the stream's own
   pattern must report exactly what a dedicated single-pattern engine
   does (the registry isolation contract), while the engine pays one
   POET subscription and one shared history store. *)
let multi ppf ~scale =
  Format.fprintf ppf "== Multi-pattern engine: all four case patterns in one engine ==@.";
  let traces = 6 in
  let config = repro_engine_config () in
  let patterns =
    List.map
      (fun name -> (name, (Cases.make name ~traces ~seed:7 ~max_events:1).Workload.pattern))
      Cases.names
  in
  List.iter
    (fun case ->
      let w = Cases.make case ~traces ~seed:7 ~max_events:scale.events in
      let mo = Runner.run_multi ~engine_config:config ~patterns w in
      let single = Runner.run ~engine_config:config w in
      Format.fprintf ppf "-- stream: %s --@.%a" case Runner.pp_multi_outcome mo;
      let own = List.find (fun (p : Runner.pattern_outcome) -> p.p_name = case) mo.m_patterns in
      let equal =
        own.Runner.p_matches = single.Runner.matches_found
        && own.Runner.p_reports = List.length single.Runner.reports
        && own.Runner.p_covered = single.Runner.covered_slots
      in
      Format.fprintf ppf "  vs dedicated engine: matches %d/%d reports %d/%d -> %s@." own.Runner.p_matches
        single.Runner.matches_found own.Runner.p_reports
        (List.length single.Runner.reports)
        (if equal then "equal" else "MISMATCH"))
    Cases.names;
  Format.fprintf ppf "@."

(* ------------------------------------------------------------------ *)
(* Baseline comparisons (Section V-C)                                  *)
(* ------------------------------------------------------------------ *)

let time_per_event f events =
  let t0 = Clock.now_s () in
  List.iter f events;
  let dt = Clock.now_s () -. t0 in
  dt /. float_of_int (max 1 (List.length events)) *. 1e6

let baselines ppf ~scale =
  Format.fprintf ppf "== Baselines (measured counterparts of Section V-C's comparisons) ==@.";
  (* deadlock: wait-for graph, incremental and full-history *)
  let w = Cases.make "deadlock" ~traces:20 ~seed:4242 ~max_events:scale.events in
  let names = Sim.trace_names w.Workload.sim_config in
  let poet = Poet.create ~retain:true ~trace_names:names () in
  let _ = Sim.run w.Workload.sim_config ~sink:(fun raw -> ignore (Poet.ingest poet raw)) ~bodies:w.Workload.bodies in
  let events = Poet.all_events poet in
  let trace_of_name = Poet.trace_of_name poet in
  let wf_inc = Waitfor.create ~n_traces:(Array.length names) ~trace_of_name `Incremental in
  let inc_us = time_per_event (fun e -> ignore (Waitfor.on_event wf_inc e)) events in
  let wf_full = Waitfor.create ~n_traces:(Array.length names) ~trace_of_name `Full_history in
  let full_us = time_per_event (fun e -> ignore (Waitfor.on_event wf_full e)) events in
  Format.fprintf ppf
    "deadlock : wait-for graph detections inc=%d (%.2f us/event) full-history=%d (%.2f us/event, %d edges kept)@."
    (List.length (Waitfor.detections wf_inc))
    inc_us
    (List.length (Waitfor.detections wf_full))
    full_us (Waitfor.edges wf_full);
  (* atomicity: conflict graph *)
  let w = Cases.make "atomicity" ~traces:20 ~seed:4242 ~max_events:scale.events in
  let names = Sim.trace_names w.Workload.sim_config in
  let poet = Poet.create ~retain:true ~trace_names:names () in
  let _ = Sim.run w.Workload.sim_config ~sink:(fun raw -> ignore (Poet.ingest poet raw)) ~bodies:w.Workload.bodies in
  let events = Poet.all_events poet in
  let cg = Conflict_graph.create ~n_traces:(Array.length names) () in
  let cg_us = time_per_event (fun e -> ignore (Conflict_graph.on_event cg e)) events in
  Format.fprintf ppf
    "atomicity: interval-overlap detector found %d observed overlaps (%.2f us/event) - observed order only, vs OCEP's causal matches@."
    (List.length (Conflict_graph.violations cg))
    cg_us;
  (* races: vector-timestamp checker *)
  let w = Cases.make "races" ~traces:20 ~seed:4242 ~max_events:scale.events in
  let names = Sim.trace_names w.Workload.sim_config in
  let poet = Poet.create ~retain:true ~trace_names:names () in
  let _ = Sim.run w.Workload.sim_config ~sink:(fun raw -> ignore (Poet.ingest poet raw)) ~bodies:w.Workload.bodies in
  let events = Poet.all_events poet in
  let rc = Race_checker.create ~n_traces:(Array.length names) ~partner_of:(Poet.find_partner poet) () in
  let rc_us = time_per_event (fun e -> ignore (Race_checker.on_event rc e)) events in
  Format.fprintf ppf "races    : vector-timestamp race checker found %d racing pairs (%.2f us/event)@."
    (List.length (Race_checker.races rc))
    rc_us;
  Format.fprintf ppf "@."

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_pruning ppf ~scale =
  Format.fprintf ppf
    "== Ablation A1: causal pruning + backjumping vs chronological backtracking ==@.";
  let max_events = max 2_000 (scale.events / 5) in
  let w = Cases.make "ordering" ~traces:20 ~seed:31415 ~max_events in
  let names = Sim.trace_names w.Workload.sim_config in
  let poet = Poet.create ~retain:true ~trace_names:names () in
  let net = Compile.compile (Parser.parse w.Workload.pattern) in
  let _ = Sim.run w.Workload.sim_config ~sink:(fun raw -> ignore (Poet.ingest poet raw)) ~bodies:w.Workload.bodies in
  let events = Poet.all_events poet in
  let n_traces = Array.length names in
  let history = History.create net ~n_traces ~pruning:true () in
  List.iter
    (fun ev ->
      History.note_comm history ev;
      for i = 0 to Compile.size net - 1 do
        if Compile.leaf_matches net i ev then History.add history ~leaf:i ev
      done)
    events;
  (* replay all terminating anchors against the full histories *)
  let anchors =
    List.filter
      (fun (e : Event.t) ->
        List.exists
          (fun i -> net.Compile.terminating.(i) && Compile.leaf_matches net i e)
          (List.init (Compile.size net) (fun i -> i)))
      events
  in
  let stats = Matcher.new_stats () in
  let inet = inet_of poet net in
  let t0 = Clock.now_s () in
  List.iter
    (fun (e : Event.t) ->
      List.iter
        (fun i ->
          if net.Compile.terminating.(i) && Compile.leaf_matches net i e then
            ignore
              (Matcher.search ~net:inet ~history ~n_traces
                 ~trace_of_sym:(Poet.trace_of_sym poet)
                 ~partner_of:(Poet.find_partner poet) ~anchor_leaf:i ~anchor:e ~stats ()))
        (List.init (Compile.size net) (fun i -> i)))
    anchors;
  let ocep_s = Clock.now_s () -. t0 in
  let chrono_nodes = ref 0 in
  let t0 = Clock.now_s () in
  List.iter
    (fun (e : Event.t) ->
      List.iter
        (fun i ->
          if net.Compile.terminating.(i) && Compile.leaf_matches net i e then begin
            let _, n =
              Chrono.search ~net ~history ~n_traces ~anchor_leaf:i ~anchor:e
                ~node_budget:200_000 ()
            in
            chrono_nodes := !chrono_nodes + n
          end)
        (List.init (Compile.size net) (fun i -> i)))
    anchors;
  let chrono_s = Clock.now_s () -. t0 in
  Format.fprintf ppf "%d anchored searches over %d events:@." (List.length anchors)
    (List.length events);
  Format.fprintf ppf "  OCEP (Fig. 4 domains + Fig. 5 backjumps): %9d candidates  %.3f s@."
    stats.Matcher.nodes ocep_s;
  Format.fprintf ppf "  chronological generate-and-test:          %9d candidates  %.3f s@."
    !chrono_nodes chrono_s;
  Format.fprintf ppf "@."

let ablation_history ppf ~scale =
  Format.fprintf ppf "== Ablation A2: O(1) history pruning on vs off (ordering workload) ==@.";
  Format.fprintf ppf "%-10s %16s %18s %12s %10s@." "pruning" "history-entries"
    "update-leaf-entries" "median-us" "max-us";
  List.iter
    (fun pruning ->
      let w = Cases.make "ordering" ~traces:50 ~seed:2718 ~max_events:scale.events in
      let names = Sim.trace_names w.Workload.sim_config in
      let poet = Poet.create ~trace_names:names () in
      let net = Compile.compile (Parser.parse w.Workload.pattern) in
      let engine =
        Engine.create ~config:{ Engine.default_config with Engine.pruning } ~net ~poet ()
      in
      let _ =
        Sim.run w.Workload.sim_config
          ~sink:(fun raw -> ignore (Poet.ingest poet raw))
          ~bodies:w.Workload.bodies
      in
      (* the Update leaf is the one fed by uninterrupted bursts *)
      let update_leaf = ref 0 in
      Array.iter
        (fun (l : Compile.leaf) ->
          if l.Compile.cls.Ocep_pattern.Ast.cname = "Update" then update_leaf := l.Compile.id)
        net.Compile.leaves;
      let latencies = Engine.latencies_us engine in
      if Array.length latencies > 0 then begin
        let s = Summary.of_samples latencies in
        Format.fprintf ppf "%-10b %16d %18d %12.1f %10.1f@." pruning
          (Engine.history_entries engine)
          (Engine.Handle.history_entries (List.hd (Engine.handles engine)) ~leaf:!update_leaf)
          s.Summary.median s.Summary.max
      end)
    [ true; false ];
  Format.fprintf ppf "@."

(* The global-state alternative the paper's introduction dismisses: detect
   "two traces inside the critical section" by exploring the consistent-cut
   lattice, on a small slice of the atomicity workload, next to OCEP on the
   same slice. *)
let lattice ppf ~scale =
  let module Lattice = Ocep_baselines.Lattice in
  Format.fprintf ppf
    "== Global-state lattice (Cooper-Marzullo) vs event-pattern matching ==@.";
  let slice = min 600 (max 200 (scale.events / 100)) in
  let one ~skip_rate ~label =
    let w =
      Ocep_workloads.Atomicity.make ~traces:5 ~seed:5151 ~max_events:slice ~skip_rate
        ~work_burst:4 ()
    in
    let names = Sim.trace_names w.Workload.sim_config in
    let poet = Poet.create ~retain:true ~trace_names:names () in
    let net = Compile.compile (Parser.parse w.Workload.pattern) in
    let engine = Engine.create ~net ~poet () in
    let t0 = Clock.now_s () in
    let _ =
      Sim.run w.Workload.sim_config
        ~sink:(fun raw -> ignore (Poet.ingest poet raw))
        ~bodies:w.Workload.bodies
    in
    let ocep_s = Clock.now_s () -. t0 in
    let events_by_trace = Array.init (Array.length names) (fun t -> Poet.events_on poet t) in
    let t0 = Clock.now_s () in
    let r =
      Lattice.possibly ~events_by_trace ~flag:(fun e -> Lattice.cs_flag e) ~threshold:2
        ~node_budget:2_000_000 ()
    in
    let lattice_s = Clock.now_s () -. t0 in
    Format.fprintf ppf "%s (%d events, %d traces):@." label (Poet.ingested poet)
      (Array.length names);
    Format.fprintf ppf "  OCEP online matching:          %d matches in %.3f s@."
      (Engine.matches_found engine) ocep_s;
    Format.fprintf ppf "  lattice possibly(two inside):  %s after %d consistent cuts in %.3f s@."
      (match r.Lattice.outcome with
      | Lattice.Found _ -> "FOUND"
      | Lattice.Not_possible -> "not possible"
      | Lattice.Budget_exhausted -> "budget exhausted")
      r.Lattice.cuts_explored lattice_s
  in
  one ~skip_rate:0.05 ~label:"buggy run";
  (* the common case for a monitor: a correct execution, where the lattice
     has to be explored exhaustively to conclude anything *)
  one ~skip_rate:0. ~label:"correct run";
  Format.fprintf ppf "@."

let ablation_gc ppf ~scale =
  Format.fprintf ppf
    "== Ablation A3 (future work): history GC of events unable to join future matches ==@.";
  Format.fprintf ppf "%-8s %16s %12s %12s %10s@." "gc" "history-entries" "gc-dropped"
    "median-us" "max-us";
  List.iter
    (fun gc_every ->
      let w = Cases.make "races" ~traces:20 ~seed:1618 ~max_events:scale.events in
      let names = Sim.trace_names w.Workload.sim_config in
      let poet = Poet.create ~trace_names:names () in
      let net = Compile.compile (Parser.parse w.Workload.pattern) in
      let engine =
        Engine.create ~config:{ Engine.default_config with Engine.gc_every } ~net ~poet ()
      in
      let _ =
        Sim.run w.Workload.sim_config
          ~sink:(fun raw -> ignore (Poet.ingest poet raw))
          ~bodies:w.Workload.bodies
      in
      let latencies = Engine.latencies_us engine in
      if Array.length latencies > 0 then begin
        let s = Summary.of_samples latencies in
        Format.fprintf ppf "%-8s %16d %12d %12.1f %10.1f@."
          (match gc_every with None -> "off" | Some n -> Printf.sprintf "every %d" n)
          (Engine.history_entries engine) (Engine.history_dropped engine) s.Summary.median
          s.Summary.max
      end)
    [ None; Some 1_000 ];
  Format.fprintf ppf "@."

let ablation_parallel ppf ~scale =
  Format.fprintf ppf
    "== Ablation A4 (future work): parallel traversal of the first level's traces ==@.";
  Format.fprintf ppf "available cores (recommended domain count): %d@."
    (Stdlib.Domain.recommended_domain_count ());
  let max_events = max 5_000 (scale.events / 4) in
  let w = Cases.make "deadlock" ~traces:50 ~seed:2024 ~max_events in
  let names = Sim.trace_names w.Workload.sim_config in
  let poet = Poet.create ~retain:true ~trace_names:names () in
  let net = Compile.compile (Parser.parse w.Workload.pattern) in
  let _ =
    Sim.run w.Workload.sim_config
      ~sink:(fun raw -> ignore (Poet.ingest poet raw))
      ~bodies:w.Workload.bodies
  in
  let events = Poet.all_events poet in
  let n_traces = Array.length names in
  let history = History.create net ~n_traces ~pruning:true () in
  List.iter
    (fun ev ->
      History.note_comm history ev;
      for i = 0 to Compile.size net - 1 do
        if Compile.leaf_matches net i ev then History.add history ~leaf:i ev
      done)
    events;
  let anchors =
    List.concat_map
      (fun (e : Event.t) ->
        List.filter_map
          (fun i ->
            if net.Compile.terminating.(i) && Compile.leaf_matches net i e then Some (i, e)
            else None)
          (List.init (Compile.size net) (fun i -> i)))
      events
  in
  let inet = inet_of poet net in
  let run_seq () =
    let found = ref 0 in
    let t0 = Clock.now_s () in
    List.iter
      (fun (i, e) ->
        match
          Matcher.search ~net:inet ~history ~n_traces ~trace_of_sym:(Poet.trace_of_sym poet)
            ~partner_of:(Poet.find_partner poet) ~anchor_leaf:i ~anchor:e ()
        with
        | Matcher.Found _ -> incr found
        | _ -> ())
      anchors;
    (!found, Clock.now_s () -. t0)
  in
  let run_par workers =
    let pool = Ocep.Pool.create ~workers in
    let finally () = Ocep.Pool.shutdown pool in
    Fun.protect ~finally (fun () ->
        let found = ref 0 in
        let t0 = Clock.now_s () in
        List.iter
          (fun (i, e) ->
            match
              Ocep.Par.search ~pool ~net:inet ~history ~n_traces
                ~trace_of_sym:(Poet.trace_of_sym poet)
                ~partner_of:(Poet.find_partner poet) ~anchor_leaf:i ~anchor:e ()
            with
            | Matcher.Found _ -> incr found
            | _ -> ())
          anchors;
        (!found, Clock.now_s () -. t0))
  in
  let f0, t_seq = run_seq () in
  let f2, t2 = run_par 2 in
  let f4, t4 = run_par 4 in
  Format.fprintf ppf "%d anchored deadlock searches (50 traces):@." (List.length anchors);
  Format.fprintf ppf "  sequential : %4d found  %.4f s@." f0 t_seq;
  Format.fprintf ppf "  2 workers  : %4d found  %.4f s@." f2 t2;
  Format.fprintf ppf "  4 workers  : %4d found  %.4f s@." f4 t4;
  Format.fprintf ppf
    "  (the case-study searches take microseconds; dispatch overhead wins)@.";
  (* a worst-case exhaustive search, where per-trace subtrees are big: a
     concurrency triangle with many candidates per trace and a third class
     that always wipes out *)
  let n_traces = 17 in
  let per_trace = max 500 (scale.events / 50) in
  let names = Array.init n_traces (fun i -> "P" ^ string_of_int i) in
  let poet = Poet.create ~trace_names:names () in
  let net =
    Compile.compile
      (Parser.parse
         "A := [_, A, _]; B := [_, B, _]; C := [_, C, _]; A $a; B $b; C $c;\n\
          pattern := $a || $b && $b || $c && $a || $c;")
  in
  let history = History.create net ~n_traces ~pruning:false () in
  let feed raw =
    let ev = Poet.ingest poet raw in
    History.note_comm history ev;
    for i = 0 to Compile.size net - 1 do
      if Compile.leaf_matches net i ev then History.add history ~leaf:i ev
    done;
    ev
  in
  (* A events everywhere except the last two traces; no messages, so all
     concurrent with the anchor *)
  for _ = 1 to per_trace do
    for t = 0 to n_traces - 3 do
      ignore (feed { Event.r_trace = t; r_etype = "A"; r_text = ""; r_kind = Event.Internal })
    done
  done;
  (* C events causally before the anchor: the C level always wipes out *)
  for _ = 1 to 4 do
    ignore (feed { Event.r_trace = n_traces - 2; r_etype = "C"; r_text = ""; r_kind = Event.Internal })
  done;
  ignore (feed { Event.r_trace = n_traces - 2; r_etype = "m"; r_text = ""; r_kind = Event.Send { msg = 1 } });
  ignore (feed { Event.r_trace = n_traces - 1; r_etype = "m"; r_text = ""; r_kind = Event.Receive { msg = 1 } });
  let anchor = feed { Event.r_trace = n_traces - 1; r_etype = "B"; r_text = ""; r_kind = Event.Internal } in
  let inet = inet_of poet net in
  let seq_search () =
    let t0 = Clock.now_s () in
    let o =
      Matcher.search ~net:inet ~history ~n_traces ~trace_of_sym:(Poet.trace_of_sym poet)
        ~partner_of:(Poet.find_partner poet) ~anchor_leaf:1 ~anchor ()
    in
    (o, Clock.now_s () -. t0)
  in
  let par_search workers =
    let pool = Ocep.Pool.create ~workers in
    let finally () = Ocep.Pool.shutdown pool in
    Fun.protect ~finally (fun () ->
        let t0 = Clock.now_s () in
        let o =
          Ocep.Par.search ~pool ~net:inet ~history ~n_traces
            ~trace_of_sym:(Poet.trace_of_sym poet)
            ~partner_of:(Poet.find_partner poet) ~anchor_leaf:1 ~anchor ()
        in
        (o, Clock.now_s () -. t0))
  in
  let show name (o, dt) =
    Format.fprintf ppf "  %-11s: %-9s %.4f s@." name
      (match o with
      | Matcher.Found _ -> "found"
      | Matcher.Not_found -> "exhausted"
      | Matcher.Aborted -> "aborted")
      dt
  in
  Format.fprintf ppf
    "one exhaustive triangle search (%d A-candidates on each of %d traces):@." per_trace
    (n_traces - 2);
  show "sequential" (seq_search ());
  show "2 workers" (par_search 2);
  show "4 workers" (par_search 4);
  if Stdlib.Domain.recommended_domain_count () <= 1 then
    Format.fprintf ppf
      "  (single-core machine: worker domains only add dispatch overhead here;@.\
      \   the speedup requires real cores - correctness is property-tested either way)@.";
  Format.fprintf ppf "@."

let all ppf ~scale =
  Format.fprintf ppf
    "OCEP evaluation reproduction - %d events/run, %d run(s) pooled per configuration@.\
     (paper: >1M events, 5 runs; set OCEP_EVENTS=1000000 OCEP_RUNS=5 for full scale)@.@."
    scale.events scale.runs;
  fig3 ppf;
  List.iter (fun case -> boxplot_figure ppf ~scale ~case) Cases.names;
  fig6_pattern_length ppf ~scale;
  fig10 ppf ~scale;
  completeness ppf ~scale;
  multi ppf ~scale;
  baselines ppf ~scale;
  lattice ppf ~scale;
  ablation_pruning ppf ~scale;
  ablation_history ppf ~scale;
  ablation_gc ppf ~scale;
  ablation_parallel ppf ~scale
