(** End-to-end case-study runner: simulate the workload, stream its events
    through POET into the OCEP engine, and evaluate the paper's two metrics
    — per-terminating-event execution time and completeness (all injected
    violations found, no false positives). *)

module Workload = Ocep_workloads.Workload
module Engine = Ocep.Engine
module Summary = Ocep_stats.Summary
module Histogram = Ocep_stats.Histogram

type outcome = {
  events : int;  (** events ingested *)
  latencies_us : float array;
      (** per terminating arrival; empty when the engine config's
          [latency_sink] is [Histogram] *)
  latency_hist : Histogram.t option;
      (** the engine's bounded latency histogram when its sink populated
          one, otherwise the raw samples re-bucketed; [None] only when
          no latency was recorded at all *)
  tail : Histogram.tail option;  (** p50/p95/p99/p999 of [latency_hist] *)
  summary : Summary.t option;
      (** boxplot of the latencies, if any: exact from the raw samples
          when present, else at bucket resolution from [latency_hist] *)
  reports : Ocep.Subset.report list;  (** the representative subset *)
  matches_found : int;
  injections_total : int;  (** fully materialized injections (minus the cutoff margin) *)
  injections_detected : int;  (** every constituent event is in some complete match *)
  false_reports : int;  (** reports failing independent re-verification *)
  history_entries : int;
  covered_slots : int;
  seen_slots : int;
  sim : Ocep_sim.Sim.stats;
  search_stats : Ocep.Matcher.stats;
  wall_s : float;  (** total wall-clock of the run *)
}

type pattern_outcome = {
  p_id : Engine.pattern_id;
  p_name : string;
  p_matches : int;
  p_reports : int;
  p_covered : int;
  p_seen : int;
  p_searches : int;
  p_nodes : int;
}

type multi_outcome = {
  m_events : int;
  m_terminating : int;
  m_history_entries : int;  (** shared store: each physical class counted once *)
  m_wall_s : float;
  m_patterns : pattern_outcome list;  (** registration order *)
}

val run_multi :
  ?engine_config:Engine.config ->
  patterns:(string * string) list ->
  Workload.t ->
  multi_outcome
(** Register every [(name, pattern-source)] pair into {e one} engine and
    stream the workload's events through it once, reporting per-pattern
    outcomes. Each pattern's matches/coverage/reports are bit-identical
    to a dedicated single-pattern engine fed the same stream. *)

val pp_multi_outcome : Format.formatter -> multi_outcome -> unit

val run :
  ?engine_config:Engine.config ->
  ?cutoff_margin:float ->
  Workload.t ->
  outcome
(** [cutoff_margin] (default 0.05): injections whose last constituent
    arrived within the final fraction of the run are excluded from the
    completeness denominator — the monitor never saw enough of the
    execution to be asked about them. *)

val pp_outcome : Format.formatter -> outcome -> unit

val report_digest : pattern_id:Engine.pattern_id -> Ocep.Subset.report -> string
(** 16-hex-digit FNV-1a digest of one report's observables (arrival
    sequence, freshness, event identities), salted with its pattern id —
    the stable name [ocep run]/[ocep replay] print next to each report
    and [ocep explain] resolves. *)

val reports_digest : Ocep.Engine.t -> string
(** 16-hex-digit FNV-1a digest of every live pattern's observables —
    matches, coverage, and each report's arrival sequence, freshness and
    event identities, in registration order. Two engines produce the
    same digest iff their match reports are bit-identical; [ocep run]
    and [ocep replay] print it so record/replay equivalence is a string
    comparison. *)
