(** Render the ingest → match causal chain of a retained report — the
    read side of the engine's flight recorder, behind [ocep explain].

    A report is named by its {!Runner.report_digest}. Given an engine
    that has just processed a stream, {!explain} resolves a digest
    (prefixes allowed) against every live pattern's retained reports
    and renders, for the matching report:

    - each bound event (leaf, trace, index, type) in dispatch order —
      a linearization of happened-before — with its provenance: wire
      record id, admission verdict, and decode → admit → dispatch
      timestamps relative to the chain's first stage, plus the
      arrival's match time when the engine was timing;
    - the pattern's causal constraints over the bound events, required
      relation next to the observed one;
    - the slots the report covered first, and the most recent wire
      records admission refused (the drop-ring context).

    When no report matches, the rendering falls back to each pattern's
    bounded nearest miss ({!Ocep.Engine.Handle.nearest_miss}): how deep
    the deepest failed search got and which leaf failed binding last. *)

val find :
  Ocep.Engine.t -> digest:string -> (Ocep.Engine.Handle.t * Ocep.Subset.report) option
(** First retained report (in pattern registration order) whose digest
    starts with [digest] (case-insensitive); [None] for the empty
    string. *)

val render : Ocep.Engine.t -> Ocep.Engine.Handle.t -> Ocep.Subset.report -> string
(** The causal-chain rendering of one report. *)

val nearest_misses : Ocep.Engine.t -> string
(** One line per live pattern describing its nearest miss. *)

val explain : Ocep.Engine.t -> digest:string -> string
(** {!render} of the report resolved by {!find}, or the
    {!nearest_misses} fallback. *)
