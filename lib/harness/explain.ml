open Ocep_base
module Engine = Ocep.Engine
module Subset = Ocep.Subset
module Flight = Ocep.Flight
module Compile = Ocep_pattern.Compile
module Provenance = Ocep_obs.Provenance

let find engine ~digest =
  let d = String.lowercase_ascii digest in
  if d = "" then None
  else
    List.fold_left
      (fun acc handle ->
        match acc with
        | Some _ -> acc
        | None ->
          let pattern_id = Engine.Handle.id handle in
          List.find_opt
            (fun r -> String.starts_with ~prefix:d (Runner.report_digest ~pattern_id r))
            (Engine.Handle.reports handle)
          |> Option.map (fun r -> (handle, r)))
      None (Engine.handles engine)

let leaf_label (net : Compile.t) i =
  if i < 0 || i >= Array.length net.Compile.leaves then Printf.sprintf "leaf %d" i
  else
    let l = net.Compile.leaves.(i) in
    match l.Compile.evar with
    | Some v -> Printf.sprintf "leaf %d %s:%s" i v l.Compile.cls.Ocep_pattern.Ast.cname
    | None -> Printf.sprintf "leaf %d %s" i l.Compile.cls.Ocep_pattern.Ast.cname

let allowed_to_string (a : Compile.allowed) =
  String.concat "|"
    (List.filter_map
       (fun (set, s) -> if set then Some s else None)
       [ (a.Compile.before, "before"); (a.Compile.after, "after"); (a.Compile.concurrent, "concurrent") ])

let relation_to_string = function
  | Event.Before -> "before"
  | Event.After -> "after"
  | Event.Concurrent -> "concurrent"
  | Event.Equal -> "equal"

(* The per-event provenance line. Timestamps are rendered relative to
   [base_us] (the chain's earliest stage timestamp) — absolute
   monotonic-clock readings mean nothing to a reader. *)
let provenance_line buf flight ~base_us (ev : Event.t) =
  match flight with
  | None -> Buffer.add_string buf "      provenance: recorder disabled\n"
  | Some fl -> (
    match Flight.find fl ~trace:ev.Event.trace ~index:ev.Event.index with
    | None ->
      Buffer.add_string buf
        (Printf.sprintf "      provenance: evicted (window %d events/trace)\n"
           (Flight.capacity fl))
    | Some p ->
      let rel ts = if ts <= 0. then "-" else Printf.sprintf "+%.1fus" (ts -. base_us) in
      let stages =
        if p.Flight.wire_id < 0 then
          Printf.sprintf "dispatch@%s" (rel p.Flight.dispatch_us)
        else
          Printf.sprintf "decode@%s admit@%s dispatch@%s" (rel p.Flight.decode_us)
            (rel p.Flight.admit_us) (rel p.Flight.dispatch_us)
      in
      let wire =
        if p.Flight.wire_id < 0 then "fed directly"
        else Printf.sprintf "wire record %d" p.Flight.wire_id
      in
      let matched =
        if p.Flight.match_us > 0. then Printf.sprintf " match=%.1fus" p.Flight.match_us else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "      provenance: %s, verdict %s, %s%s\n" wire
           (Provenance.verdict_to_string p.Flight.verdict)
           stages matched))

let render engine handle (r : Subset.report) =
  let net = Engine.Handle.net handle in
  let pattern_id = Engine.Handle.id handle in
  let flight = Engine.flight engine in
  let buf = Buffer.create 1024 in
  let n = Array.length r.Subset.events in
  Buffer.add_string buf
    (Printf.sprintf "report %s — pattern %d, %d events, recorded at ingest seq %d\n"
       (Runner.report_digest ~pattern_id r)
       pattern_id n r.Subset.seq);
  (* dispatch order is a linearization of happened-before (POET's
     precondition), so sorting on it renders the chain causally; events
     outside the provenance window fall back to (trace, index) *)
  let dispatch i =
    match flight with
    | None -> 0.
    | Some fl -> (
      let e = r.Subset.events.(i) in
      match Flight.find fl ~trace:e.Event.trace ~index:e.Event.index with
      | Some p -> p.Flight.dispatch_us
      | None -> 0.)
  in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let ea = r.Subset.events.(a) and eb = r.Subset.events.(b) in
      let da = dispatch a and db = dispatch b in
      if da > 0. && db > 0. && da <> db then compare da db
      else compare (ea.Event.trace, ea.Event.index) (eb.Event.trace, eb.Event.index))
    order;
  let base_us =
    Array.fold_left
      (fun acc i ->
        match flight with
        | None -> acc
        | Some fl -> (
          let e = r.Subset.events.(i) in
          match Flight.find fl ~trace:e.Event.trace ~index:e.Event.index with
          | None -> acc
          | Some p ->
            let first = if p.Flight.wire_id >= 0 then p.Flight.decode_us else p.Flight.dispatch_us in
            if first > 0. && (acc = 0. || first < acc) then first else acc))
      0. order
  in
  Buffer.add_string buf "  ingest -> match chain (dispatch order):\n";
  Array.iter
    (fun i ->
      let e = r.Subset.events.(i) in
      let kind =
        match e.Event.kind with
        | Event.Send { msg } -> Printf.sprintf " send(msg %d)" msg
        | Event.Receive { msg } -> Printf.sprintf " receive(msg %d)" msg
        | Event.Internal -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "    %s <- %s#%d %s%s\n" (leaf_label net i) e.Event.trace_name
           e.Event.index e.Event.etype kind);
      provenance_line buf flight ~base_us e)
    order;
  (* the causal constraints the matcher verified, with what actually holds *)
  let any_cons = ref false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match net.Compile.cons.(i).(j) with
      | None -> ()
      | Some allowed ->
        if not !any_cons then begin
          any_cons := true;
          Buffer.add_string buf "  causal constraints (required : observed):\n"
        end;
        Buffer.add_string buf
          (Printf.sprintf "    e%d %s e%d : required %s, observed %s\n" i
             (if allowed.Compile.before && not allowed.Compile.after then "->"
              else if allowed.Compile.after && not allowed.Compile.before then "<-"
              else "~")
             j (allowed_to_string allowed)
             (relation_to_string (Event.relation r.Subset.events.(i) r.Subset.events.(j))))
    done
  done;
  List.iter
    (fun (i, j) ->
      Buffer.add_string buf (Printf.sprintf "  message partners: e%d send <-> e%d receive\n" i j))
    net.Compile.partners;
  (match r.Subset.fresh with
  | [] -> ()
  | fresh ->
    Buffer.add_string buf "  freshly covered slots:\n";
    List.iter
      (fun (leaf, trace) ->
        Buffer.add_string buf
          (Printf.sprintf "    (%s, trace %d)\n" (leaf_label net leaf) trace))
      fresh);
  (match flight with
  | Some fl when Flight.drops_recorded fl > 0 ->
    let drops = Flight.drops fl in
    let shown =
      let rec last k = function
        | l when List.length l <= k -> l
        | _ :: tl -> last k tl
        | [] -> []
      in
      last 8 drops
    in
    Buffer.add_string buf
      (Printf.sprintf "  admission refused %d wire record(s); most recent:\n"
         (Flight.drops_recorded fl));
    List.iter
      (fun (id, v) ->
        Buffer.add_string buf
          (Printf.sprintf "    wire record %d: %s\n" id (Provenance.verdict_to_string v)))
      shown
  | _ -> ());
  Buffer.contents buf

let nearest_misses engine =
  let buf = Buffer.create 256 in
  List.iter
    (fun handle ->
      let net = Engine.Handle.net handle in
      match Engine.Handle.nearest_miss handle with
      | None ->
        Buffer.add_string buf
          (Printf.sprintf "  pattern %d: no failed search recorded\n" (Engine.Handle.id handle))
      | Some (leaf, level) ->
        Buffer.add_string buf
          (Printf.sprintf
             "  pattern %d: deepest failed search bound %d of %d leaves; %s failed binding last\n"
             (Engine.Handle.id handle) level
             (Array.length net.Compile.leaves)
             (leaf_label net leaf)))
    (Engine.handles engine);
  Buffer.contents buf

let explain engine ~digest =
  match find engine ~digest with
  | Some (handle, r) -> render engine handle r
  | None ->
    Printf.sprintf "no retained report matches digest %s\nnearest misses:\n%s" digest
      (nearest_misses engine)
