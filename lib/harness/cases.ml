(* The paper's four case studies — the set the repro figures sweep
   ([paper_fig10_us] has reference numbers only for these). *)
let names = [ "deadlock"; "races"; "atomicity"; "ordering" ]

(* Distributed-protocol bug corpus (PR 6): no paper reference figures,
   but first-class everywhere else (gen/record/run/check, fuzz). *)
let protocol_names = [ "twopc"; "election"; "gossip"; "lockserver" ]

let all_names = names @ protocol_names

let make name ~traces ~seed ~max_events =
  match name with
  | "deadlock" -> Ocep_workloads.Random_walk.make ~traces ~seed ~max_events ()
  | "races" -> Ocep_workloads.Msg_race.make ~traces ~seed ~max_events ()
  | "atomicity" -> Ocep_workloads.Atomicity.make ~traces ~seed ~max_events ()
  | "ordering" -> Ocep_workloads.Ordering.make ~traces ~seed ~max_events ()
  | "twopc" -> Ocep_workloads.Twopc.make ~traces ~seed ~max_events ()
  | "election" -> Ocep_workloads.Election.make ~traces ~seed ~max_events ()
  | "gossip" -> Ocep_workloads.Gossip.make ~traces ~seed ~max_events ()
  | "lockserver" -> Ocep_workloads.Lockserver.make ~traces ~seed ~max_events ()
  | other -> invalid_arg ("Cases.make: unknown case " ^ other)

let paper_trace_counts = function
  | "ordering" -> [ 50; 100; 500 ]
  | _ -> [ 10; 20; 50 ]

(* Fig. 10 of the paper (microseconds, Core 2 Duo 2 GHz). *)
let paper_fig10_us = function
  | "deadlock" -> (1712., 1805., 1888., 2153., 14931.)
  | "races" -> (49., 69., 76., 117., 10830.)
  | "atomicity" -> (42., 45., 51., 65., 6819.)
  | "ordering" -> (119., 121., 124., 132., 7668.)
  | other -> invalid_arg ("Cases.paper_fig10_us: unknown case " ^ other)
