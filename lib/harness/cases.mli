(** Factory for the built-in workloads by name: the paper's four case
    studies plus the distributed-protocol bug corpus. *)

val names : string list
(** ["deadlock"; "races"; "atomicity"; "ordering"] — the paper's case
    studies, the only names the repro figures (and {!paper_fig10_us})
    accept. *)

val protocol_names : string list
(** ["twopc"; "election"; "gossip"; "lockserver"] — the protocol bug
    corpus; no paper reference figures. *)

val all_names : string list
(** {!names} followed by {!protocol_names}: everything {!make} accepts. *)

val make : string -> traces:int -> seed:int -> max_events:int -> Ocep_workloads.Workload.t
(** Raises [Invalid_argument] on an unknown name. [election] needs
    [traces >= 4], the other protocol cases [traces >= 3]. *)

val paper_trace_counts : string -> int list
(** The x-axis of the corresponding figure: 10/20/50 for the first three
    (Figs. 6–8), 50/100/500 for ordering (Fig. 9). *)

val paper_fig10_us : string -> float * float * float * float * float
(** The paper's Fig. 10 row (Q1, Med, Q3, top whisker, max) in
    microseconds — recorded here so the benchmark output can print the
    paper-vs-measured comparison. *)
