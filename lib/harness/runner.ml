module Sim = Ocep_sim.Sim
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine
module Subset = Ocep.Subset
module Oracle = Ocep_baselines.Oracle
module Workload = Ocep_workloads.Workload
module Inject = Ocep_workloads.Inject
module Summary = Ocep_stats.Summary
module Histogram = Ocep_stats.Histogram

type outcome = {
  events : int;
  latencies_us : float array;
  latency_hist : Histogram.t option;
  tail : Histogram.tail option;
  summary : Summary.t option;
  reports : Subset.report list;
  matches_found : int;
  injections_total : int;
  injections_detected : int;
  false_reports : int;
  history_entries : int;
  covered_slots : int;
  seen_slots : int;
  sim : Sim.stats;
  search_stats : Ocep.Matcher.stats;
  wall_s : float;
}

type pattern_outcome = {
  p_id : Engine.pattern_id;
  p_name : string;
  p_matches : int;
  p_reports : int;
  p_covered : int;
  p_seen : int;
  p_searches : int;
  p_nodes : int;
}

type multi_outcome = {
  m_events : int;
  m_terminating : int;
  m_history_entries : int;
  m_wall_s : float;
  m_patterns : pattern_outcome list;
}

let run_multi ?(engine_config = Engine.default_config) ~patterns (w : Workload.t) =
  let t0 = Ocep_base.Clock.now_s () in
  let names = Sim.trace_names w.sim_config in
  let poet = Poet.create ~trace_names:names () in
  let engine = Engine.create ~config:engine_config ~poet () in
  let hs =
    List.map
      (fun (name, src) -> (name, Engine.add_pattern engine (Compile.compile (Parser.parse src))))
      patterns
  in
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  ignore
    (Sim.run w.sim_config ~sink:(fun raw -> ignore (Poet.ingest poet raw)) ~bodies:w.bodies);
  {
    m_events = Poet.ingested poet;
    m_terminating = Engine.terminating_arrivals engine;
    m_history_entries = Engine.history_entries engine;
    m_wall_s = Ocep_base.Clock.now_s () -. t0;
    m_patterns =
      List.map
        (fun (name, h) ->
          let m = Engine.Handle.metrics h in
          {
            p_id = Engine.Handle.id h;
            p_name = name;
            p_matches = m.Engine.Handle.matches;
            p_reports = m.Engine.Handle.reports_retained;
            p_covered = m.Engine.Handle.covered_slots;
            p_seen = m.Engine.Handle.seen_slots;
            p_searches = m.Engine.Handle.searches;
            p_nodes = m.Engine.Handle.nodes;
          })
        hs;
  }

let pp_multi_outcome ppf (o : multi_outcome) =
  Format.fprintf ppf "events=%d terminating=%d shared history entries=%d wall=%.2fs@\n"
    o.m_events o.m_terminating o.m_history_entries o.m_wall_s;
  List.iter
    (fun p ->
      Format.fprintf ppf
        "  pattern %d %-10s matches=%d reports=%d coverage=%d/%d searches=%d nodes=%d@\n"
        p.p_id p.p_name p.p_matches p.p_reports p.p_covered p.p_seen p.p_searches p.p_nodes)
    o.m_patterns

let run ?(engine_config = Engine.default_config) ?(cutoff_margin = 0.05) (w : Workload.t) =
  let t0 = Ocep_base.Clock.now_s () in
  let names = Sim.trace_names w.sim_config in
  let poet = Poet.create ~trace_names:names () in
  let net = Compile.compile (Parser.parse w.pattern) in
  (* resolve ground truth first so injection events are known even if the
     engine callback raises *)
  let last_resolved_seq : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Poet.subscribe poet (fun ev ->
      match Inject.resolve w.inject ev with
      | Some inj -> Hashtbl.replace last_resolved_seq inj.Inject.inj_id (Poet.ingested poet)
      | None -> ());
  let engine = Engine.create ~config:engine_config ~net ~poet () in
  (* join any fan-out worker domains even if the run raises *)
  Fun.protect ~finally:(fun () -> Engine.shutdown engine) @@ fun () ->
  let sim = Sim.run w.sim_config ~sink:(fun raw -> ignore (Poet.ingest poet raw)) ~bodies:w.bodies in
  let events = Poet.ingested poet in
  (* completeness over injections fully materialized before the margin *)
  let margin_seq = int_of_float (float_of_int events *. (1. -. cutoff_margin)) in
  let considered =
    List.filter
      (fun (inj : Inject.injection) ->
        match Hashtbl.find_opt last_resolved_seq inj.inj_id with
        | Some seq -> seq <= margin_seq
        | None -> false)
      (Inject.complete w.inject)
  in
  let detected =
    List.filter
      (fun (inj : Inject.injection) ->
        List.for_all (fun ev -> Engine.find_containing engine ev <> None) inj.Inject.resolved)
      considered
  in
  (* soundness: re-verify every reported match independently *)
  let reports = Engine.reports engine in
  let false_reports =
    List.length
      (List.filter
         (fun (r : Subset.report) -> not (Oracle.is_match ~net ~events:[] r.events))
         reports)
  in
  let latencies_us = Engine.latencies_us engine in
  (* the tail percentiles always come from a histogram: the engine's own
     when the sink populated one, otherwise the raw samples re-bucketed *)
  let latency_hist =
    let h = Engine.latency_histogram engine in
    if Histogram.count h > 0 then Some h
    else if Array.length latencies_us = 0 then None
    else begin
      let h = Histogram.create () in
      Array.iter (Histogram.record h) latencies_us;
      Some h
    end
  in
  {
    events;
    latencies_us;
    latency_hist;
    tail = Option.map Histogram.tail latency_hist;
    summary =
      (if Array.length latencies_us > 0 then Some (Summary.of_samples latencies_us)
       else Option.map Summary.of_histogram latency_hist);
    reports;
    matches_found = Engine.matches_found engine;
    injections_total = List.length considered;
    injections_detected = List.length detected;
    false_reports;
    history_entries = Engine.history_entries engine;
    covered_slots = Engine.covered_slots engine;
    seen_slots = Engine.seen_slots engine;
    sim;
    search_stats = Engine.search_stats engine;
    wall_s = Ocep_base.Clock.now_s () -. t0;
  }

(* The digest itself lives in the engine (Engine.reports_digest) since
   the service tier ships it over the control plane; these aliases keep
   the harness's historical entry points. *)
let report_digest = Engine.report_digest

let reports_digest = Engine.reports_digest

let pp_outcome ppf o =
  let terminating =
    if Array.length o.latencies_us > 0 then Array.length o.latencies_us
    else match o.latency_hist with Some h -> Histogram.count h | None -> 0
  in
  Format.fprintf ppf
    "events=%d terminating=%d matches=%d reports=%d coverage=%d/%d@\n\
     completeness: %d/%d injected violations detected, %d false positives@\n\
     history entries=%d search nodes=%d backjumps=%d searches=%d wall=%.2fs@\n"
    o.events terminating o.matches_found (List.length o.reports)
    o.covered_slots o.seen_slots o.injections_detected o.injections_total o.false_reports
    o.history_entries o.search_stats.Ocep.Matcher.nodes o.search_stats.Ocep.Matcher.backjumps
    o.search_stats.Ocep.Matcher.searches o.wall_s;
  (match o.summary with
  | None -> Format.fprintf ppf "no latency samples@\n"
  | Some s -> Format.fprintf ppf "latency (us): %a@\n" Summary.pp s);
  match o.tail with
  | None -> ()
  | Some t ->
    Format.fprintf ppf "latency tail (us): p50=%.1f p95=%.1f p99=%.1f p999=%.1f@\n"
      t.Histogram.p50 t.Histogram.p95 t.Histogram.p99 t.Histogram.p999
