module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Ast = Ocep_pattern.Ast
module Gen = Ocep_pattern.Gen
module Engine = Ocep.Engine
module Subset = Ocep.Subset
module Oracle = Ocep_baselines.Oracle
module Inject = Ocep_workloads.Inject
module Wire = Ocep_ingest.Wire
module Framing = Ocep_ingest.Framing
module Admission = Ocep_ingest.Admission
module Source = Ocep_ingest.Source
open Ocep_base

type case = {
  c_seed : int;
  c_traces : string array;
  c_pattern : string;
  c_events : Event.raw list;
  c_faults : Inject.faults;
}

type mutation = No_pinned_searches | Tiny_node_budget | History_cap_one | Lossy_replay

let mutations =
  [
    ("no-pins", No_pinned_searches);
    ("tiny-budget", Tiny_node_budget);
    ("history-cap", History_cap_one);
    ("lossy-replay", Lossy_replay);
  ]

let mutation_name m = fst (List.find (fun (_, x) -> x = m) mutations)
let mutation_of_name n = List.assoc_opt n mutations

type divergence = { d_oracle : string; d_detail : string }
type result = { r_divergence : divergence option; r_oracle_checked : bool }

(* ---------------------------------------------------------------- *)
(* Generation                                                        *)
(* ---------------------------------------------------------------- *)

(* A case's pattern source is a full file: usually one plain pattern,
   and every third draw a template-instantiated registry (2-3 instances
   of one parameterized template, sometimes plus an independent plain
   pattern) — the multi-pattern inputs the automaton-vs-dedicated
   oracle needs. Template instances stay small so the brute-force
   oracle can still afford each expanded pattern. *)
let rec gen_pattern rng u ~tries =
  let src =
    if Prng.int rng 3 = 0 then
      Format.asprintf "%a" Ast.pp_file (Gen.registry rng u ~max_leaves:3)
    else Format.asprintf "%a" Ast.pp (Gen.pattern rng u ~max_leaves:4)
  in
  match Compile.compile_file (Parser.parse_file src) with
  | _ -> src
  | exception (Compile.Compile_error _ | Invalid_argument _) ->
    (* with <= 4 leaves a rejected draw is essentially impossible, but a
       generator bug must not loop the fuzzer forever *)
    if tries >= 20 then failwith "Fuzz.generate: cannot draw a compilable pattern"
    else gen_pattern rng u ~tries:(tries + 1)

(* A random valid linearization: each step picks a trace and either
   receives a message pending for it, sends to a random peer, or acts
   internally. A message becomes receivable only after its send was
   emitted, so ingestion order is always a linearization; unreceived
   sends simply stay in flight. *)
let gen_events rng (u : Gen.universe) ~n_traces:n =
  let count = 24 + Prng.int rng 37 in
  let pending = ref [] in
  let next_msg = ref 0 in
  let evs = ref [] in
  for _ = 1 to count do
    let t = Prng.int rng n in
    let deliverable = List.filter (fun (_, dst) -> dst = t) !pending in
    let kind =
      if deliverable <> [] && Prng.bool rng then begin
        let msg, _ = List.nth deliverable (Prng.int rng (List.length deliverable)) in
        pending := List.filter (fun (m, _) -> m <> msg) !pending;
        Event.Receive { msg }
      end
      else if n > 1 && Prng.int rng 3 = 0 then begin
        let dst = (t + 1 + Prng.int rng (n - 1)) mod n in
        let msg = !next_msg in
        incr next_msg;
        pending := (msg, dst) :: !pending;
        Event.Send { msg }
      end
      else Event.Internal
    in
    evs :=
      {
        Event.r_trace = t;
        r_etype = Prng.pick rng u.Gen.u_etypes;
        r_text = Prng.pick rng u.Gen.u_texts;
        r_kind = kind;
      }
      :: !evs
  done;
  List.rev !evs

(* Restorable faults only (no drops): under them the admission layer
   owes a bit-identical replay, so any digest difference is a bug. Drops
   are introduced solely by the lossy-replay mutation, which must make
   the digest comparison fail. *)
let gen_faults rng =
  {
    Inject.f_reorder = Prng.pick rng [| 0; 0; 2; 4; 8 |];
    f_dup = Prng.pick rng [| 0.; 0.; 0.1; 0.3 |];
    f_drop = 0.;
  }

let generate ~seed =
  let rng = Prng.create seed in
  let n = 2 + Prng.int rng 3 in
  let traces = Array.init n (fun i -> "P" ^ string_of_int i) in
  let u = Gen.universe rng ~trace_names:traces in
  {
    c_seed = seed;
    c_traces = traces;
    c_pattern = gen_pattern rng u ~tries:0;
    c_events = gen_events rng u ~n_traces:n;
    c_faults = gen_faults rng;
  }

(* ---------------------------------------------------------------- *)
(* The five oracles                                                  *)
(* ---------------------------------------------------------------- *)

let base_config = { Engine.default_config with Engine.record_latency = false }

let mutate_config cfg = function
  | None | Some Lossy_replay -> cfg
  | Some No_pinned_searches -> { cfg with Engine.pin_searches = false }
  | Some Tiny_node_budget -> { cfg with Engine.node_budget = Some 1 }
  | Some History_cap_one -> { cfg with Engine.max_history_per_trace = Some 1 }

(* Skip the brute-force oracle when the product of per-leaf candidate
   counts — its worst-case enumeration — exceeds this. The generator's
   selective-leaf weighting keeps skips rare. *)
let oracle_budget = 2_000_000.

(* One registry engine with every pattern of the case's source file
   registered, fed the case's events. *)
let build_registry ~config ~traces ?retain nets events =
  let poet = Poet.create ?retain ~trace_names:traces () in
  let engine = Engine.create ~config ~poet () in
  let handles = List.map (fun (_, net) -> Engine.add_pattern engine net) nets in
  List.iter (fun r -> ignore (Engine.feed_raw engine r)) events;
  (poet, engine, handles)

(* A handle's full observable state, directly comparable. *)
let observe_handle h =
  ( Engine.Handle.matches_found h,
    Engine.Handle.covered_slots h,
    Engine.Handle.seen_slots h,
    List.map
      (fun (r : Subset.report) ->
        ( r.Subset.seq,
          r.Subset.fresh,
          Array.to_list
            (Array.map (fun (e : Event.t) -> (e.Event.trace, e.Event.index)) r.Subset.events)
        ))
      (Engine.Handle.reports h) )

let check ?mutation case =
  let nets = Compile.compile_file (Parser.parse_file case.c_pattern) in
  let cfg = mutate_config base_config mutation in
  let seq_cfg = { cfg with Engine.parallelism = 1 } in
  (* the sequential registry run is the reference every oracle compares
     against *)
  let poet, engine, handles =
    build_registry ~config:seq_cfg ~traces:case.c_traces ~retain:true nets case.c_events
  in
  let digest_seq = Runner.reports_digest engine in
  let events = Poet.all_events poet in
  (* oracle A: a 4-worker engine forced onto the search pool must be
     observably identical to the sequential one *)
  let divergence =
    let par_cfg =
      { cfg with Engine.parallelism = 4; cutover_batch = 0; cutover_work = 0 }
    in
    let _, engine_p, _ =
      build_registry ~config:par_cfg ~traces:case.c_traces nets []
    in
    let digest_par =
      Fun.protect
        ~finally:(fun () -> Engine.shutdown engine_p)
        (fun () ->
          List.iter (fun r -> ignore (Engine.feed_raw engine_p r)) case.c_events;
          Runner.reports_digest engine_p)
    in
    if digest_par = digest_seq then None
    else
      Some
        {
          d_oracle = "engine-parallel";
          d_detail =
            Printf.sprintf "sequential digest %s <> 4-worker digest %s" digest_seq digest_par;
        }
  in
  (* oracle A': the flat-arena subscription (the default) and the boxed
     record path must be observably identical — same dispatch decisions,
     same searches, same reports. This is the contract that lets the
     arena fast path replace the record path at all. *)
  let divergence =
    match divergence with
    | Some _ -> divergence
    | None ->
      let rec_cfg = { seq_cfg with Engine.arena = not seq_cfg.Engine.arena } in
      let _, engine_r, _ =
        build_registry ~config:rec_cfg ~traces:case.c_traces nets case.c_events
      in
      let digest_rec = Runner.reports_digest engine_r in
      if digest_rec = digest_seq then None
      else
        Some
          {
            d_oracle = "arena-record";
            d_detail =
              Printf.sprintf "arena=%b digest %s <> arena=%b digest %s"
                seq_cfg.Engine.arena digest_seq rec_cfg.Engine.arena digest_rec;
          }
  in
  (* oracle D: automaton vs dedicated dispatch — the registry compiles
     every pattern into one shared discrimination network, and each
     pattern's observables must still be bit-identical to a dedicated
     single-pattern engine fed the same stream (node sharing, the
     touched-pattern worklist and shared plans are pure plumbing) *)
  let divergence =
    match divergence with
    | Some _ -> divergence
    | None ->
      if List.length nets < 2 then None
      else
        let rec per_pattern = function
          | [] -> None
          | ((name, net), h) :: rest ->
            let poet_d = Poet.create ~trace_names:case.c_traces () in
            let engine_d = Engine.create ~config:seq_cfg ~net ~poet:poet_d () in
            List.iter (fun r -> ignore (Engine.feed_raw engine_d r)) case.c_events;
            let hd = List.hd (Engine.handles engine_d) in
            if observe_handle hd = observe_handle h then per_pattern rest
            else
              Some
                {
                  d_oracle = "automaton-dedicated";
                  d_detail =
                    Printf.sprintf
                      "pattern %s: shared-automaton registry diverges from its dedicated \
                       engine"
                      name;
                }
        in
        per_pattern (List.combine nets handles)
  in
  (* oracle B: brute-force enumeration, per registered pattern — every
     report is a real match, and the subset covers exactly the slots the
     pattern's full match set covers *)
  let oracle_checked = ref false in
  let divergence =
    match divergence with
    | Some _ -> divergence
    | None ->
      let rec per_pattern = function
        | [] -> None
        | ((name, net), h) :: rest ->
          let k = Compile.size net in
          let empty = Array.make k None in
          let cost = ref 1. in
          for leaf = 0 to k - 1 do
            let c =
              List.fold_left
                (fun n e -> if Oracle.consistent_exposed ~net empty leaf e then n + 1 else n)
                0 events
            in
            cost := !cost *. float_of_int c
          done;
          if !cost > oracle_budget then per_pattern rest
          else begin
            oracle_checked := true;
            let reports = Engine.Handle.reports h in
            let truth = Oracle.true_slots (Oracle.all_matches ~net ~events) in
            match
              List.find_opt
                (fun (r : Subset.report) -> not (Oracle.is_match ~net ~events r.Subset.events))
                reports
            with
            | Some r ->
              Some
                {
                  d_oracle = "oracle-soundness";
                  d_detail =
                    Printf.sprintf "pattern %s: report seq %d is not a match of the pattern"
                      name r.Subset.seq;
                }
            | None ->
              let covered =
                List.sort_uniq compare (List.concat_map (fun r -> r.Subset.fresh) reports)
              in
              if covered = truth then per_pattern rest
              else
                Some
                  {
                    d_oracle = "oracle-coverage";
                    d_detail =
                      Printf.sprintf
                        "pattern %s: engine covered %d (leaf, trace) slots, the oracle's \
                         match set covers %d"
                        name (List.length covered) (List.length truth);
                  }
          end
      in
      per_pattern (List.combine nets handles)
  in
  (* oracle C: record, degrade the transport, replay through admission —
     restorable faults owe a bit-identical digest *)
  let divergence =
    match divergence with
    | Some _ -> divergence
    | None ->
      let faults =
        match mutation with
        | Some Lossy_replay -> { case.c_faults with Inject.f_drop = 0.25 }
        | _ -> case.c_faults
      in
      let seqs = Array.make (Array.length case.c_traces) 0 in
      let frames =
        List.mapi
          (fun i (r : Event.raw) ->
            seqs.(r.Event.r_trace) <- seqs.(r.Event.r_trace) + 1;
            Wire.of_raw ~id:i ~seq:seqs.(r.Event.r_trace) r)
          case.c_events
      in
      let faulted = Inject.apply_faults faults ~seed:case.c_seed frames in
      let tmp = Filename.temp_file "ocep_fuzz" ".wire" in
      Fun.protect ~finally:(fun () -> Sys.remove tmp)
      @@ fun () ->
      let oc = open_out_bin tmp in
      let wr = Framing.create_writer oc ~trace_names:case.c_traces in
      List.iter (Framing.write wr) faulted;
      Framing.flush wr;
      close_out oc;
      let ic = open_in_bin tmp in
      Fun.protect ~finally:(fun () -> close_in ic)
      @@ fun () ->
      let reader = Framing.create_reader ic in
      let poet_r = Poet.create ~trace_names:case.c_traces () in
      let engine_r = Engine.create ~config:seq_cfg ~poet:poet_r () in
      List.iter (fun (_, net) -> ignore (Engine.add_pattern engine_r net)) nets;
      (* patience comfortably above the largest displacement block
         shuffling can produce, so pristine streams always recover and
         lossy ones skip (differing digest) instead of raising *)
      let window = max 16 (4 * faults.Inject.f_reorder) in
      let session_cfg =
        {
          Ocep_ingest.Session.default with
          Ocep_ingest.Session.reorder_window = window;
          gap_policy = Admission.Skip window;
        }
      in
      (match Ocep_ingest.Session.replay ~config:session_cfg ~engine:engine_r reader with
      | (_ : Source.stats) ->
        let digest_replay = Runner.reports_digest engine_r in
        if digest_replay = digest_seq then None
        else
          Some
            {
              d_oracle = "record-replay";
              d_detail =
                Format.asprintf "live digest %s <> replay digest %s under faults %a"
                  digest_seq digest_replay Inject.pp_faults faults;
            }
      | exception Admission.Gap msg ->
        Some { d_oracle = "record-replay"; d_detail = "unrecoverable gap: " ^ msg })
  in
  { r_divergence = divergence; r_oracle_checked = !oracle_checked }

(* ---------------------------------------------------------------- *)
(* Shrinking                                                         *)
(* ---------------------------------------------------------------- *)

(* Remove event [idx]; removing a send also removes its receive so the
   stream stays a valid linearization (a receive alone may go — its
   message is then merely in flight). *)
let remove_nth case idx =
  let victim = List.nth case.c_events idx in
  let dead_msg =
    match victim.Event.r_kind with Event.Send { msg } -> Some msg | _ -> None
  in
  let events =
    List.filteri
      (fun j (e : Event.raw) ->
        j <> idx
        &&
        match (dead_msg, e.Event.r_kind) with
        | Some m, Event.Receive { msg } when msg = m -> false
        | _ -> true)
      case.c_events
  in
  { case with c_events = events }

let shrink ?mutation case =
  let diverges c = (check ?mutation c).r_divergence <> None in
  let budget = ref 300 in
  let cur = ref case in
  let progress = ref true in
  while !progress && !budget > 0 do
    progress := false;
    (* back to front, so indices below the cursor stay meaningful after
       a successful removal *)
    let i = ref (List.length (!cur).c_events - 1) in
    while !i >= 0 && !budget > 0 do
      let candidate = remove_nth !cur !i in
      decr budget;
      if diverges candidate then begin
        cur := candidate;
        progress := true
      end;
      decr i
    done
  done;
  (if (!cur).c_faults <> Inject.no_faults && !budget > 0 then
     let candidate = { !cur with c_faults = Inject.no_faults } in
     if diverges candidate then cur := candidate);
  !cur

(* ---------------------------------------------------------------- *)
(* Corpus files                                                      *)
(* ---------------------------------------------------------------- *)

let magic = "ocep-fuzz v1"

let save ~dir ?expect_mutant case =
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let name =
    match expect_mutant with
    | Some m -> Printf.sprintf "mutant-%s-seed%d.case" m case.c_seed
    | None -> Printf.sprintf "seed%d.case" case.c_seed
  in
  let path = Filename.concat dir name in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc)
  @@ fun () ->
  Printf.fprintf oc "%s\n" magic;
  Printf.fprintf oc "seed: %d\n" case.c_seed;
  (match expect_mutant with
  | Some m -> Printf.fprintf oc "expect-mutant: %s\n" m
  | None -> ());
  Printf.fprintf oc "faults: %s\n" (Format.asprintf "%a" Inject.pp_faults case.c_faults);
  Printf.fprintf oc "traces: %s\n" (String.concat " " (Array.to_list case.c_traces));
  Printf.fprintf oc "events: %d\n" (List.length case.c_events);
  List.iter
    (fun (e : Event.raw) ->
      match e.Event.r_kind with
      | Event.Internal -> Printf.fprintf oc "I %d %S %S\n" e.r_trace e.r_etype e.r_text
      | Event.Send { msg } -> Printf.fprintf oc "S %d %d %S %S\n" e.r_trace msg e.r_etype e.r_text
      | Event.Receive { msg } ->
        Printf.fprintf oc "R %d %d %S %S\n" e.r_trace msg e.r_etype e.r_text)
    case.c_events;
  Printf.fprintf oc "pattern:\n%s" case.c_pattern;
  path

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic)
  @@ fun () ->
  let fail fmt = Printf.ksprintf (fun m -> failwith (path ^ ": " ^ m)) fmt in
  let line () = try input_line ic with End_of_file -> fail "truncated corpus file" in
  if line () <> magic then fail "not an ocep-fuzz corpus file";
  let seed = ref 0 in
  let expect = ref None in
  let faults = ref Inject.no_faults in
  let traces = ref [||] in
  let events = ref [] in
  let raw trace etype text kind =
    { Event.r_trace = trace; r_etype = etype; r_text = text; r_kind = kind }
  in
  let rec header () =
    let l = line () in
    if l <> "pattern:" then begin
      (match String.index_opt l ':' with
      | None -> fail "malformed header line %S" l
      | Some i ->
        let key = String.sub l 0 i in
        let v = String.trim (String.sub l (i + 1) (String.length l - i - 1)) in
        (match key with
        | "seed" -> seed := int_of_string v
        | "expect-mutant" -> expect := Some v
        | "faults" -> (
          match Inject.parse_faults v with
          | Ok f -> faults := f
          | Error e -> fail "%s" e)
        | "traces" -> traces := Array.of_list (String.split_on_char ' ' v)
        | "events" ->
          for _ = 1 to int_of_string v do
            let el = line () in
            let ev =
              if el = "" then fail "empty event line"
              else
                match el.[0] with
                | 'I' ->
                  Scanf.sscanf el "I %d %S %S" (fun t e x -> raw t e x Event.Internal)
                | 'S' ->
                  Scanf.sscanf el "S %d %d %S %S" (fun t m e x ->
                      raw t e x (Event.Send { msg = m }))
                | 'R' ->
                  Scanf.sscanf el "R %d %d %S %S" (fun t m e x ->
                      raw t e x (Event.Receive { msg = m }))
                | _ -> fail "bad event line %S" el
            in
            events := ev :: !events
          done
        | k -> fail "unknown header key %S" k));
      header ()
    end
  in
  header ();
  (* the pattern is the rest of the file, written verbatim without a
     trailing newline — reassemble it exactly so load (save c) = c *)
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  ( {
      c_seed = !seed;
      c_traces = !traces;
      c_pattern = String.concat "\n" (List.rev !lines);
      c_events = List.rev !events;
      c_faults = !faults;
    },
    !expect )

let load_dir dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".case")
    |> List.sort compare
    |> List.map (fun f ->
           let case, expect = load (Filename.concat dir f) in
           (f, case, expect))

(* ---------------------------------------------------------------- *)
(* Campaign driver                                                   *)
(* ---------------------------------------------------------------- *)

type summary = {
  s_ran : int;
  s_oracle_checked : int;
  s_failures : (int * divergence) list;
}

let run ?mutation ?corpus_dir ?(log = fun (_ : string) -> ()) ~seeds ~start_seed () =
  let failures = ref [] in
  let checked = ref 0 in
  for i = 0 to seeds - 1 do
    let seed = start_seed + i in
    let case = generate ~seed in
    let res = check ?mutation case in
    if res.r_oracle_checked then incr checked;
    (match res.r_divergence with
    | None -> ()
    | Some d ->
      log (Printf.sprintf "seed %d: %s: %s" seed d.d_oracle d.d_detail);
      let small = shrink ?mutation case in
      let d =
        match (check ?mutation small).r_divergence with Some d' -> d' | None -> d
      in
      (match corpus_dir with
      | Some dir ->
        let path = save ~dir ?expect_mutant:(Option.map mutation_name mutation) small in
        log
          (Printf.sprintf "seed %d: minimized to %d events -> %s" seed
             (List.length small.c_events) path)
      | None -> ());
      failures := (seed, d) :: !failures);
    if (i + 1) mod 200 = 0 then
      log
        (Printf.sprintf "%d/%d seeds, %d divergences, oracle on %d" (i + 1) seeds
           (List.length !failures) !checked)
  done;
  { s_ran = seeds; s_oracle_checked = !checked; s_failures = List.rev !failures }
