(** Differential fuzzing of the whole matching stack.

    A fuzz {e case} is a pure function of its seed: a random pattern
    (via {!Ocep_pattern.Gen}), a random valid linearization of message
    exchanges over 2–4 traces, and a restorable fault schedule for the
    transport. {!check} runs the case through three independent oracles,
    any of which failing is an engine bug:

    - {b engine-parallel}: the sequential engine and a 4-worker engine
      forced onto the search pool must produce bit-identical match
      reports ({!Runner.reports_digest}).
    - {b arena-record}: the flat-arena subscription and the boxed
      record path must produce bit-identical reports — the contract
      that lets the arena fast path stand in for the record path.
    - {b oracle-soundness} / {b oracle-coverage}: against the
      brute-force {!Ocep_baselines.Oracle} — every retained report is a
      real match, and the representative subset covers exactly the
      (leaf, trace) slots the full match set covers. Skipped (and
      counted) when the enumeration would exceed a work budget.
    - {b record-replay}: record the stream, degrade it with the case's
      (restorable: reorder + duplicate, no drop) faults, replay through
      framing + admission into a fresh engine — the digest must be
      bit-identical.

    A diverging case is {!shrink}-minimized by greedy event deletion and
    saved to a corpus directory as a small text file that {!load} reads
    back — the regression suite replays [test/corpus/] on every run.

    Engine {e mutations} deliberately break one engine invariant each;
    the test suite uses them to prove the harness actually catches bugs
    (a fuzzer that never fails proves nothing). *)

open Ocep_base

type case = {
  c_seed : int;
  c_traces : string array;
  c_pattern : string;  (** pattern source text *)
  c_events : Event.raw list;  (** a valid linearization *)
  c_faults : Ocep_workloads.Inject.faults;  (** restorable transport degradation *)
}

type mutation =
  | No_pinned_searches  (** pinned searches off: coverage-only matches are lost *)
  | Tiny_node_budget  (** [node_budget = 1]: almost every search aborts *)
  | History_cap_one  (** [max_history_per_trace = 1]: history evicted *)
  | Lossy_replay  (** 25% frame drop in the replay transport *)

val mutations : (string * mutation) list
(** CLI-name/value pairs: [no-pins], [tiny-budget], [history-cap],
    [lossy-replay]. *)

val mutation_name : mutation -> string
val mutation_of_name : string -> mutation option

type divergence = {
  d_oracle : string;
      (** [engine-parallel], [arena-record], [oracle-soundness],
          [oracle-coverage] or [record-replay] *)
  d_detail : string;
}

type result = {
  r_divergence : divergence option;
  r_oracle_checked : bool;
      (** whether the brute-force oracle ran (false when its work budget
          was exceeded, or when an earlier oracle already diverged) *)
}

val generate : seed:int -> case
(** Deterministic: equal seeds give equal cases. *)

val check : ?mutation:mutation -> case -> result
(** Run the three oracles in order, stopping at the first divergence.
    [mutation] seeds a deliberate bug into the engine (or transport)
    under test; the reference comparisons stay honest. *)

val shrink : ?mutation:mutation -> case -> case
(** Greedy minimization: repeatedly delete events (a send takes its
    receive along, keeping the stream a linearization) while the case
    still diverges, then try clearing the fault schedule. Bounded by a
    fixed re-check budget; returns the smallest still-diverging case. *)

val save : dir:string -> ?expect_mutant:string -> case -> string
(** Write the case as [<dir>/seed<n>.case] (or
    [mutant-<name>-seed<n>.case] with [expect_mutant]), creating [dir]
    if needed; returns the path. The file is a small self-contained
    text format: header lines, one line per event, then the pattern
    source. *)

val load : string -> case * string option
(** Read a saved case back; the second component is the
    [expect-mutant:] header if present — such a case is expected to
    pass {!check} clean and to diverge under that mutation. Raises
    [Failure] on a malformed file. *)

val load_dir : string -> (string * case * string option) list
(** All [*.case] files of a directory, sorted by name; [] if the
    directory does not exist. *)

type summary = {
  s_ran : int;
  s_oracle_checked : int;  (** cases where the brute-force oracle ran *)
  s_failures : (int * divergence) list;  (** offending seed, divergence *)
}

val run :
  ?mutation:mutation ->
  ?corpus_dir:string ->
  ?log:(string -> unit) ->
  seeds:int ->
  start_seed:int ->
  unit ->
  summary
(** Fuzz campaign over [start_seed .. start_seed + seeds - 1]: generate,
    check, and — on divergence — shrink and (with [corpus_dir]) save the
    minimized case. [log] receives progress lines. *)
