(** Reproduction of every table and figure in the paper's evaluation
    (Section V), plus the ablations DESIGN.md calls out.

    Scale is controlled by [events] (events per run; the paper uses >1M)
    and [runs] (seeds pooled per configuration; the paper averages 5).
    Absolute times differ from the paper's 2008 hardware; the tables print
    the paper's numbers next to the measured ones so the *shape* can be
    compared. *)

type scale = { events : int; runs : int }

val scale_from_env : unit -> scale
(** [OCEP_EVENTS] (default 50_000) and [OCEP_RUNS] (default 2). *)

val fig3 : Format.formatter -> unit
(** The representative-subset example: all matches vs an n²-event sliding
    window vs OCEP's reported subset, on the Fig. 3 scenario. *)

val boxplot_figure :
  Format.formatter -> scale:scale -> case:string -> unit
(** One of Figs. 6–9: per-terminating-event latency summaries for the
    paper's trace counts of that case. *)

val fig6_pattern_length : Format.formatter -> scale:scale -> unit
(** The discussion attached to Fig. 6: matching cost as a function of the
    pattern length, sweeping the deadlock-cycle length at 20 traces. *)

val fig10 : Format.formatter -> scale:scale -> unit
(** The detailed-runtime table: Q1/Med/Q3/top-whisker/max per case,
    measured next to the paper's values. *)

val completeness : Format.formatter -> scale:scale -> unit
(** Section V-D's completeness metric: injected violations detected and
    false positives per case. *)

val multi : Format.formatter -> scale:scale -> unit
(** Registry deployment: all four case-study patterns registered in one
    engine, run over each case's stream — per-pattern outcomes, plus the
    isolation check that the stream's own pattern reports exactly what a
    dedicated single-pattern engine does. *)

val baselines : Format.formatter -> scale:scale -> unit
(** Section V-C's qualitative comparisons, measured: wait-for-graph
    deadlock detection (incremental and full-history), the conflict-graph
    atomicity detector, the vector-timestamp race checker, and the
    sliding-window matcher's omission rate on the Fig. 3 scenario. *)

val lattice : Format.formatter -> scale:scale -> unit
(** The global-state alternative of Sections I and III: possibly(two
    traces inside the critical section) by consistent-cut lattice
    exploration, on a small slice, next to OCEP on the same slice. *)

val ablation_pruning : Format.formatter -> scale:scale -> unit
(** A1: causal domain restriction + backjumping vs chronological
    backtracking — candidate counts per search on identical histories. *)

val ablation_history : Format.formatter -> scale:scale -> unit
(** A2: the O(1) history-pruning rule on vs off — monitor storage and
    latency on the ordering workload. *)

val ablation_gc : Format.formatter -> scale:scale -> unit
(** A3 (the paper's first future-work item): garbage-collect history
    entries provably unable to join future matches — storage and latency
    on the race workload, whose concurrency pattern makes both leaves
    collectable. *)

val ablation_parallel : Format.formatter -> scale:scale -> unit
(** A4 (the paper's third future-work item): the traces of the first
    backtracking level searched in parallel by a domain pool vs
    sequentially — wall time over the deadlock case's anchored searches. *)

val all : Format.formatter -> scale:scale -> unit
(** Everything above, in paper order. *)
