module Wire = Ocep_ingest.Wire
module Framing = Ocep_ingest.Framing
module Admission = Ocep_ingest.Admission
module Bqueue = Ocep_ingest.Bqueue
module Session = Ocep_ingest.Session
module Engine = Ocep.Engine
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Metrics = Ocep_obs.Metrics
module Serve = Ocep_obs.Serve
module Snapshot = Ocep_obs.Snapshot
module Error = Ocep_base.Ocep_error

type config = {
  host : string;
  port : int;
  shards : int;
  tenant_quota : int;
  quota_policy : Bqueue.policy;
  session : Session.config;
  max_patterns : int;
  metrics_port : int option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    shards = 2;
    tenant_quota = 4096;
    quota_policy = Bqueue.Block;
    (* a shed frame is a hole in the tenant's record-id sequence; Skip
       lets the tenant's own admission layer absorb it instead of
       wedging on Wait *)
    session = { Session.default with Session.gap_policy = Admission.Skip 64 };
    max_patterns = 64;
    metrics_port = None;
  }

(* ---------------------------------------------------------------- *)
(* Tenants                                                           *)
(* ---------------------------------------------------------------- *)

type tenant = {
  t_name : string;
  t_shard : int;
  t_quota : int;
  t_policy : Bqueue.policy;
  t_engine : Engine.t;
  t_adm : Admission.t;
  (* shard-domain-only state *)
  t_names : (string, int) Hashtbl.t;  (* attach name -> pattern id *)
  mutable t_drained : bool;
  mutable t_failed : Error.t option;
  (* router increments, shard decrements; the Block policy parks the
     router on [t_cond] until the shard catches up *)
  t_inflight : int Atomic.t;
  t_mu : Mutex.t;
  t_cond : Condition.t;
  (* mirrors for STATS and the metrics publisher *)
  t_frames : int Atomic.t;
  t_admitted : int Atomic.t;
  t_shed : int Atomic.t;
  t_matches : int Atomic.t;
  (* response channel back to the tenant's connection *)
  t_wmu : Mutex.t;
  t_wr : Framing.writer;
}

type item =
  | Data of tenant * Wire.t array
  | Ctl of tenant * int * Control.request
  | Bye of tenant

type shard = { s_q : item Bqueue.t; mutable s_dom : unit Domain.t option }

type t = {
  cfg : config;
  fd : Unix.file_descr;
  srv_port : int;
  shards : shard array;
  reg_mu : Mutex.t;
  tenants : (string, tenant) Hashtbl.t;  (* live, keyed by name *)
  mutable ever : tenant list;  (* every session, for monotone per-tenant series *)
  mutable conns : Unix.file_descr list;
  mutable conn_threads : Thread.t list;
  mutable stopping : bool;
  mutable accept_thread : Thread.t option;
  serve : Serve.t option;
  mutable pub_thread : Thread.t option;
}

let engine_config =
  (* one engine per tenant, pinned to its shard domain: matching stays
     sequential per tenant (parallelism 1 — a worker pool per tenant
     would oversubscribe the machine shards^2-fold), and the bounded
     histogram sink keeps a long-lived tenant's memory flat *)
  { Engine.default_config with Engine.latency_sink = Engine.Histogram }

let make_tenant cfg ~name ~traces ~quota ~policy ~wr =
  let poet = Poet.create ~trace_names:traces () in
  let engine = Engine.create ~config:engine_config ~poet () in
  let admitted = Atomic.make 0 in
  let adm =
    Admission.create
      ~config:
        {
          Admission.reorder_window = cfg.session.Session.reorder_window;
          gap_policy = cfg.session.Session.gap_policy;
        }
      ~n_traces:(Array.length traces)
      ~emit:(fun ~verdict ~decode_us:_ ~admit_us:_ w ->
        Atomic.incr admitted;
        ignore (Engine.feed_wire engine ~id:w.Wire.id ~verdict (Wire.to_raw w)))
      ()
  in
  {
    t_name = name;
    t_shard = Hashtbl.hash name mod cfg.shards;
    t_quota = quota;
    t_policy = policy;
    t_engine = engine;
    t_adm = adm;
    t_names = Hashtbl.create 8;
    t_drained = false;
    t_failed = None;
    t_inflight = Atomic.make 0;
    t_mu = Mutex.create ();
    t_cond = Condition.create ();
    t_frames = Atomic.make 0;
    t_admitted = admitted;
    t_shed = Atomic.make 0;
    t_matches = Atomic.make 0;
    t_wmu = Mutex.create ();
    t_wr = wr;
  }

let respond t ~seq resp =
  Mutex.lock t.t_wmu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.t_wmu)
    (fun () ->
      Framing.write t.t_wr (Control.response_frame ~seq resp);
      Framing.flush t.t_wr)

(* ---------------------------------------------------------------- *)
(* Shard domains                                                     *)
(* ---------------------------------------------------------------- *)

let release t n =
  ignore (Atomic.fetch_and_add t.t_inflight (-n));
  Mutex.lock t.t_mu;
  Condition.broadcast t.t_cond;
  Mutex.unlock t.t_mu

let shard_data t frames =
  (if (not t.t_drained) && t.t_failed = None then
     try
       Array.iter (fun w -> Admission.push t.t_adm w) frames;
       Atomic.set t.t_matches (Engine.matches_found t.t_engine)
     with
     | Admission.Gap m -> t.t_failed <- Some (Error.Bad_request ("unrecoverable gap: " ^ m))
     | Invalid_argument m -> t.t_failed <- Some (Error.Trace_mismatch m));
  release t (Array.length frames)

let tenant_stats t =
  {
    Control.frames = Atomic.get t.t_frames;
    admitted = Atomic.get t.t_admitted;
    shed = Atomic.get t.t_shed;
    matches = Engine.matches_found t.t_engine;
    digest = Engine.reports_digest t.t_engine;
  }

let do_attach cfg t name source =
  if Hashtbl.length t.t_names >= cfg.max_patterns then
    Control.Err
      (Error.Quota_exceeded { tenant = t.t_name; what = "patterns"; limit = cfg.max_patterns })
  else
    match Compile.compile (Parser.parse source) with
    | net -> (
      match Engine.add_pattern t.t_engine net with
      | h ->
        let id = Engine.Handle.id h in
        Hashtbl.replace t.t_names name id;
        Control.Ok [ string_of_int id ]
      | exception Invalid_argument m -> Control.Err (Error.Compile_error m))
    | exception Parser.Parse_error m -> Control.Err (Error.Parse_error m)
    | exception Compile.Compile_error m -> Control.Err (Error.Compile_error m)

let do_detach t pattern =
  let id =
    match int_of_string_opt pattern with
    | Some id -> Some id
    | None -> Hashtbl.find_opt t.t_names pattern
  in
  match id with
  | None -> Control.Err (Error.Unknown_pattern pattern)
  | Some id -> (
    match Engine.remove_pattern t.t_engine id with
    | () ->
      let stale = Hashtbl.fold (fun n i acc -> if i = id then n :: acc else acc) t.t_names [] in
      List.iter (Hashtbl.remove t.t_names) stale;
      Control.Ok []
    | exception Error.Error e -> Control.Err e)

let shard_ctl cfg t seq req =
  let resp =
    match t.t_failed with
    | Some e -> Control.Err e
    | None -> (
      match req with
      | Control.Hello _ -> Control.Err (Error.Bad_request "HELLO: already identified")
      | Control.Stats -> Control.Ok (Control.stats_fields (tenant_stats t))
      | _ when t.t_drained -> Control.Err (Error.Drained t.t_name)
      | Control.Attach { name; source } -> do_attach cfg t name source
      | Control.Detach { pattern } -> do_detach t pattern
      | Control.Drain -> (
        match Admission.finish t.t_adm with
        | () ->
          t.t_drained <- true;
          Atomic.set t.t_matches (Engine.matches_found t.t_engine);
          Control.Ok (Control.stats_fields (tenant_stats t))
        | exception Admission.Gap m ->
          t.t_drained <- true;
          Control.Err (Error.Bad_request ("unrecoverable gap at drain: " ^ m))))
  in
  try respond t ~seq resp with _ -> ()

let shard_loop cfg sh =
  let rec go () =
    match Bqueue.pop sh.s_q with
    | None -> ()
    | Some (Data (t, frames)) ->
      shard_data t frames;
      go ()
    | Some (Ctl (t, seq, req)) ->
      shard_ctl cfg t seq req;
      go ()
    | Some (Bye t) ->
      if (not t.t_drained) && t.t_failed = None then
        (try Admission.finish t.t_adm with Admission.Gap _ -> ());
      t.t_drained <- true;
      Atomic.set t.t_matches (Engine.matches_found t.t_engine);
      Engine.shutdown t.t_engine;
      go ()
  in
  go ()

(* ---------------------------------------------------------------- *)
(* Connection threads                                                *)
(* ---------------------------------------------------------------- *)

let batch_cap = 256

(* Route one identified tenant's stream until EOF: data frames through
   the quota into [Data] batches, control frames as [Ctl] items — a
   control frame flushes the pending batch first, so its effect lands at
   its exact stream position. *)
let stream srv t reader =
  let sh = srv.shards.(t.t_shard) in
  let pending = ref [] in
  let npending = ref 0 in
  let flush () =
    if !npending > 0 then begin
      let arr = Array.of_list (List.rev !pending) in
      pending := [];
      npending := 0;
      ignore (Bqueue.push sh.s_q (Data (t, arr)))
    end
  in
  let enqueue w =
    Atomic.incr t.t_inflight;
    pending := w :: !pending;
    incr npending;
    if !npending >= batch_cap then flush ()
  in
  let offer w =
    Atomic.incr t.t_frames;
    match t.t_policy with
    | Bqueue.Shed ->
      if Atomic.get t.t_inflight >= t.t_quota then Atomic.incr t.t_shed else enqueue w
    | Bqueue.Block ->
      if Atomic.get t.t_inflight >= t.t_quota then begin
        (* our own unsent batch holds quota; push it before parking *)
        flush ();
        Mutex.lock t.t_mu;
        while Atomic.get t.t_inflight >= t.t_quota && not srv.stopping do
          Condition.wait t.t_cond t.t_mu
        done;
        Mutex.unlock t.t_mu
      end;
      enqueue w
  in
  let continue = ref true in
  while !continue do
    match Framing.next reader with
    | Framing.Frame w when Control.is_control w -> (
      flush ();
      match Control.parse_request w with
      | Result.Ok req -> ignore (Bqueue.push sh.s_q (Ctl (t, w.Wire.id, req)))
      | Result.Error e -> ( try respond t ~seq:w.Wire.id (Control.Err e) with _ -> ()))
    | Framing.Frame w -> offer w
    | Framing.Crc_error | Framing.Bad_frame _ -> ()
    | Framing.Truncated | Framing.Eof -> continue := false
  done;
  flush ();
  ignore (Bqueue.push sh.s_q (Bye t))

let hello srv ~traces ~wr = function
  | Control.Hello { tenant = name; quota; policy } -> (
    let cfg = srv.cfg in
    let policy = Option.value policy ~default:cfg.quota_policy in
    let quota_r =
      match quota with
      | None -> Result.Ok cfg.tenant_quota
      | Some q when q > cfg.tenant_quota ->
        Result.Error
          (Error.Quota_exceeded { tenant = name; what = "events"; limit = cfg.tenant_quota })
      | Some q -> Result.Ok q
    in
    match quota_r with
    | Result.Error _ as e -> e
    | Result.Ok quota ->
      if quota = 0 && policy = Bqueue.Block then
        Result.Error
          (Error.Bad_request "HELLO: quota 0 under policy block would stall forever; use shed")
      else begin
        Mutex.lock srv.reg_mu;
        let r =
          if srv.stopping then Result.Error (Error.Bad_request "server is shutting down")
          else if Hashtbl.mem srv.tenants name then
            Result.Error
              (Error.Bad_request (Printf.sprintf "tenant %S is already connected" name))
          else begin
            let t = make_tenant cfg ~name ~traces ~quota ~policy ~wr in
            Hashtbl.replace srv.tenants name t;
            srv.ever <- t :: srv.ever;
            Result.Ok t
          end
        in
        Mutex.unlock srv.reg_mu;
        r
      end)
  | _ -> Result.Error (Error.Unknown_tenant "no HELLO yet: identify before any other request")

let conn_loop srv fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  match Framing.create_reader ic with
  | exception (Framing.Bad_header _ | End_of_file | Sys_error _) -> ()
  | reader -> (
    let traces = Framing.reader_trace_names reader in
    let wr = Framing.create_writer oc ~trace_names:traces in
    Framing.flush wr;
    (* no concurrent writer exists until the tenant is registered, so
       pre-Hello responses go straight through [wr] *)
    let rsp ~seq resp =
      Framing.write wr (Control.response_frame ~seq resp);
      Framing.flush wr
    in
    match Framing.next reader with
    | Framing.Frame w when w.Wire.etype = Control.ctl_etype -> (
      match Control.parse_request w with
      | Result.Error e -> rsp ~seq:w.Wire.id (Control.Err e)
      | Result.Ok req -> (
        match hello srv ~traces ~wr req with
        | Result.Error e -> rsp ~seq:w.Wire.id (Control.Err e)
        | Result.Ok t ->
          rsp ~seq:w.Wire.id (Control.Ok [ string_of_int t.t_shard ]);
          Fun.protect
            ~finally:(fun () ->
              Mutex.lock srv.reg_mu;
              Hashtbl.remove srv.tenants t.t_name;
              Mutex.unlock srv.reg_mu)
            (fun () -> stream srv t reader)))
    | Framing.Frame w ->
      rsp ~seq:w.Wire.id (Control.Err (Error.Unknown_tenant "data frame before HELLO"))
    | Framing.Crc_error | Framing.Bad_frame _ | Framing.Truncated | Framing.Eof -> ())

let conn_main srv fd =
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock srv.reg_mu;
      srv.conns <- List.filter (fun f -> f != fd) srv.conns;
      Mutex.unlock srv.reg_mu;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> try conn_loop srv fd with Sys_error _ | End_of_file | Unix.Unix_error _ -> ())

(* ---------------------------------------------------------------- *)
(* Accept loop, telemetry, lifecycle                                 *)
(* ---------------------------------------------------------------- *)

let accept_loop srv =
  while not srv.stopping do
    match Unix.select [ srv.fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept srv.fd with
      | fd, _ ->
        Mutex.lock srv.reg_mu;
        if srv.stopping then begin
          Mutex.unlock srv.reg_mu;
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
        else begin
          srv.conns <- fd :: srv.conns;
          let th = Thread.create (fun () -> conn_main srv fd) () in
          srv.conn_threads <- th :: srv.conn_threads;
          Mutex.unlock srv.reg_mu
        end
      | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  done

let publish_loop srv serve =
  (* this thread owns the service-level registry outright — shards and
     routers only touch the tenants' Atomic mirrors — so the
     single-domain Metrics contract holds by construction *)
  let m = Metrics.create () in
  let tenants_g = Metrics.gauge m ~help:"Currently connected tenants" "ocep_service_tenants" in
  Serve.set_health serve Serve.Serving;
  Serve.set_ready serve true;
  while not srv.stopping do
    Mutex.lock srv.reg_mu;
    let ever = srv.ever in
    let live = Hashtbl.length srv.tenants in
    Mutex.unlock srv.reg_mu;
    Metrics.set tenants_g (float_of_int live);
    List.iter
      (fun t ->
        let c name help v =
          Metrics.set_counter
            (Metrics.counter m ~help (Metrics.with_labels name [ ("tenant", t.t_name) ]))
            v
        in
        c "ocep_tenant_frames_total" "Data frames accepted from the tenant"
          (Atomic.get t.t_frames);
        c "ocep_tenant_events_total" "Events admitted to the tenant's engine"
          (Atomic.get t.t_admitted);
        c "ocep_tenant_shed_total" "Frames dropped by the tenant's quota"
          (Atomic.get t.t_shed);
        c "ocep_tenant_matches_total" "Matches found for the tenant" (Atomic.get t.t_matches))
      ever;
    Array.iteri
      (fun i sh ->
        Metrics.set
          (Metrics.gauge m ~help:"Items queued toward the shard"
             (Metrics.with_labels "ocep_shard_queue_depth" [ ("shard", string_of_int i) ]))
          (float_of_int (Bqueue.length sh.s_q)))
      srv.shards;
    Serve.publish serve ~metrics:(Snapshot.prometheus m) ~snapshot:(Snapshot.json m);
    Thread.delay 0.2
  done;
  Serve.set_health serve (Serve.Not_serving "stopping");
  Serve.set_ready serve false

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
    | _ | (exception Not_found) ->
      invalid_arg (Printf.sprintf "Server.start: cannot resolve host %s" host))

let start ?(config = default_config) () =
  if config.shards <= 0 then
    invalid_arg (Printf.sprintf "Server.start: shards must be > 0, got %d" config.shards);
  if config.tenant_quota < 0 then
    invalid_arg
      (Printf.sprintf "Server.start: tenant_quota must be >= 0, got %d" config.tenant_quota);
  let addr = resolve config.host in
  let fd =
    Unix.socket (Unix.domain_of_sockaddr (Unix.ADDR_INET (addr, config.port))) Unix.SOCK_STREAM 0
  in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try Unix.bind fd (Unix.ADDR_INET (addr, config.port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen fd 128;
  let srv_port = match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> config.port in
  let shards =
    Array.init config.shards (fun _ ->
        { s_q = Bqueue.create ~capacity:(max 16 config.tenant_quota) (); s_dom = None })
  in
  let serve =
    match config.metrics_port with
    | Some p -> Some (Serve.start ~host:"127.0.0.1" ~port:p ())
    | None -> None
  in
  let srv =
    {
      cfg = config;
      fd;
      srv_port;
      shards;
      reg_mu = Mutex.create ();
      tenants = Hashtbl.create 64;
      ever = [];
      conns = [];
      conn_threads = [];
      stopping = false;
      accept_thread = None;
      serve;
      pub_thread = None;
    }
  in
  Array.iter (fun sh -> sh.s_dom <- Some (Domain.spawn (fun () -> shard_loop config sh))) shards;
  srv.accept_thread <- Some (Thread.create accept_loop srv);
  (match serve with
  | Some s -> srv.pub_thread <- Some (Thread.create (fun () -> publish_loop srv s) ())
  | None -> ());
  srv

let port t = t.srv_port
let metrics_port t = match t.serve with Some s -> Some (Serve.port s) | None -> None

let tenant_count t =
  Mutex.lock t.reg_mu;
  let n = Hashtbl.length t.tenants in
  Mutex.unlock t.reg_mu;
  n

let stop srv =
  let proceed =
    Mutex.lock srv.reg_mu;
    let p = not srv.stopping in
    srv.stopping <- true;
    Mutex.unlock srv.reg_mu;
    p
  in
  if proceed then begin
    (match srv.accept_thread with Some th -> Thread.join th | None -> ());
    srv.accept_thread <- None;
    (try Unix.close srv.fd with Unix.Unix_error _ -> ());
    (* unblock connection readers, then wait them out *)
    Mutex.lock srv.reg_mu;
    let conns = srv.conns in
    Mutex.unlock srv.reg_mu;
    List.iter (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()) conns;
    (* a router parked on a Block quota re-checks [stopping] on wakeup *)
    Mutex.lock srv.reg_mu;
    Hashtbl.iter
      (fun _ t ->
        Mutex.lock t.t_mu;
        Condition.broadcast t.t_cond;
        Mutex.unlock t.t_mu)
      srv.tenants;
    let ths = srv.conn_threads in
    srv.conn_threads <- [];
    Mutex.unlock srv.reg_mu;
    List.iter Thread.join ths;
    Array.iter (fun sh -> Bqueue.close sh.s_q) srv.shards;
    Array.iter
      (fun sh ->
        match sh.s_dom with
        | Some d ->
          Domain.join d;
          sh.s_dom <- None
        | None -> ())
      srv.shards;
    (match srv.pub_thread with Some th -> Thread.join th | None -> ());
    srv.pub_thread <- None;
    match srv.serve with Some s -> Serve.stop s | None -> ()
  end
