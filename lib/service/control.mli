(** The control plane's frame codec.

    Control messages ride the same CRC-framed transport as event data
    ({!Ocep_ingest.Framing}): a control message is a {!Ocep_ingest.Wire.t}
    whose [etype] is one of two reserved names ({!ctl_etype} for
    client→server requests, {!rsp_etype} for server→client responses) and
    whose [text] carries the NUL-joined payload fields. Reusing the event
    framing means the service needs exactly one parser, one CRC check and
    one reader loop per connection — a control frame is just a frame the
    router peels off before admission — and any future transport that can
    carry the recorder's log format can carry the control plane for free.

    The reserved names start with ['!'], which the pattern language's
    identifier grammar rejects, so no real workload event can collide
    with them.

    Requests and responses are strictly 1:1 and ordered per connection:
    the [id] field of a request frame is the connection's control
    sequence number, echoed in the matching response. *)

module Wire = Ocep_ingest.Wire
module Bqueue = Ocep_ingest.Bqueue

val ctl_etype : string
val rsp_etype : string

val is_control : Wire.t -> bool
(** True on both request and response frames. *)

(** What a tenant can ask of the server.

    [Hello] must be the first frame after the stream header and
    identifies the tenant; [quota]/[policy] lower the server's
    per-tenant in-flight quota or choose its enforcement policy for this
    session (a request {e above} the server's cap is refused with
    [Quota_exceeded]). [Attach] registers a pattern from source text at
    runtime and answers its pattern id; [Detach] removes one by id or by
    the name given at attach. [Stats] answers live counters plus the
    report digest; [Drain] flushes admission, freezes the stream and
    answers the final digest — the tenant's bit-identity witness. *)
type request =
  | Hello of { tenant : string; quota : int option; policy : Bqueue.policy option }
  | Attach of { name : string; source : string }
  | Detach of { pattern : string }  (** a pattern id in decimal, or an attach name *)
  | Stats
  | Drain

(** [Ok fields] with the request-specific payload, or [Err] carrying the
    typed error ({!Ocep_base.Ocep_error.t}) the operation raised
    server-side. *)
type response = Ok of string list | Err of Ocep_base.Ocep_error.t

val request_frame : seq:int -> request -> Wire.t
(** Raises [Invalid_argument] if any field contains a NUL byte. *)

val parse_request : Wire.t -> (request, Ocep_base.Ocep_error.t) result
(** [Error (Decode_error _)] on an unknown opcode or missing fields,
    [Error (Bad_request _)] on fields that parse but make no sense
    (e.g. a negative quota). *)

val response_frame : seq:int -> response -> Wire.t

val parse_response : Wire.t -> (response, Ocep_base.Ocep_error.t) result

(** Decoded [Stats]/[Drain] payload. *)
type stats = {
  frames : int;  (** data frames the router accepted from this tenant *)
  admitted : int;  (** events released to the tenant's engine *)
  shed : int;  (** frames dropped by the tenant's quota *)
  matches : int;
  digest : string;  (** {!Ocep.Engine.reports_digest} of the tenant's engine *)
}

val stats_fields : stats -> string list
val parse_stats : string list -> (stats, Ocep_base.Ocep_error.t) result
