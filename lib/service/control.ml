module Wire = Ocep_ingest.Wire
module Bqueue = Ocep_ingest.Bqueue
module Error = Ocep_base.Ocep_error

let ctl_etype = "!ocep:ctl"
let rsp_etype = "!ocep:rsp"

let is_control (w : Wire.t) = w.Wire.etype = ctl_etype || w.Wire.etype = rsp_etype

type request =
  | Hello of { tenant : string; quota : int option; policy : Bqueue.policy option }
  | Attach of { name : string; source : string }
  | Detach of { pattern : string }
  | Stats
  | Drain

type response = Ok of string list | Err of Error.t

type stats = {
  frames : int;
  admitted : int;
  shed : int;
  matches : int;
  digest : string;
}

(* ---------------------------------------------------------------- *)
(* Payload fields: NUL-joined inside Wire.text                       *)
(* ---------------------------------------------------------------- *)

let check_field f =
  if String.contains f '\x00' then
    invalid_arg "Control: a control field may not contain a NUL byte";
  f

let join fields = String.concat "\x00" (List.map check_field fields)
let split text = String.split_on_char '\x00' text

let frame ~etype ~seq text =
  { Wire.id = seq; trace = 0; seq = 0; etype; text; kind = Ocep_base.Event.Internal }

let policy_name = function Bqueue.Block -> "block" | Bqueue.Shed -> "shed"

let request_fields = function
  | Hello { tenant; quota; policy } ->
    [
      "HELLO";
      tenant;
      (match quota with Some q -> string_of_int q | None -> "");
      (match policy with Some p -> policy_name p | None -> "");
    ]
  | Attach { name; source } -> [ "ATTACH"; name; source ]
  | Detach { pattern } -> [ "DETACH"; pattern ]
  | Stats -> [ "STATS" ]
  | Drain -> [ "DRAIN" ]

let request_frame ~seq req = frame ~etype:ctl_etype ~seq (join (request_fields req))

let decode_error fmt = Printf.ksprintf (fun m -> Result.Error (Error.Decode_error m)) fmt
let bad_request fmt = Printf.ksprintf (fun m -> Result.Error (Error.Bad_request m)) fmt

let parse_request (w : Wire.t) =
  match split w.Wire.text with
  | [ "HELLO"; tenant; quota; policy ] -> (
    if tenant = "" then bad_request "HELLO: empty tenant name"
    else
      let quota_r =
        if quota = "" then Result.Ok None
        else
          match int_of_string_opt quota with
          | Some q when q >= 0 -> Result.Ok (Some q)
          | _ -> bad_request "HELLO: quota must be a non-negative integer, got %S" quota
      in
      match quota_r with
      | Result.Error _ as e -> e
      | Result.Ok quota -> (
        match policy with
        | "" -> Result.Ok (Hello { tenant; quota; policy = None })
        | "block" -> Result.Ok (Hello { tenant; quota; policy = Some Bqueue.Block })
        | "shed" -> Result.Ok (Hello { tenant; quota; policy = Some Bqueue.Shed })
        | p -> bad_request "HELLO: unknown quota policy %S (want block|shed)" p))
  | "ATTACH" :: name :: source_head :: source_tail ->
    (* the source is the last field and may not contain NULs itself, but
       re-joining guards against a future multi-field tail *)
    let source = String.concat "\x00" (source_head :: source_tail) in
    if name = "" then bad_request "ATTACH: empty pattern name"
    else Result.Ok (Attach { name; source })
  | [ "DETACH"; pattern ] ->
    if pattern = "" then bad_request "DETACH: empty pattern"
    else Result.Ok (Detach { pattern })
  | [ "STATS" ] -> Result.Ok Stats
  | [ "DRAIN" ] -> Result.Ok Drain
  | op :: _ -> decode_error "unknown or malformed control request %S" op
  | [] -> decode_error "empty control request"

let response_frame ~seq resp =
  let text =
    match resp with
    | Ok fields -> join ("OK" :: fields)
    | Err e ->
      (* Error.encode is [code NUL detail] with both sides NUL-free, so
         it contributes exactly the two trailing fields *)
      "ERR\x00" ^ Error.encode e
  in
  frame ~etype:rsp_etype ~seq text

let parse_response (w : Wire.t) =
  match split w.Wire.text with
  | "OK" :: fields -> Result.Ok (Ok fields)
  | [ "ERR"; code; detail ] -> Result.Ok (Err (Error.decode (code ^ "\x00" ^ detail)))
  | op :: _ -> decode_error "unknown or malformed control response %S" op
  | [] -> decode_error "empty control response"

let stats_fields s =
  [
    string_of_int s.frames;
    string_of_int s.admitted;
    string_of_int s.shed;
    string_of_int s.matches;
    s.digest;
  ]

let parse_stats = function
  | [ frames; admitted; shed; matches; digest ] -> (
    match
      ( int_of_string_opt frames,
        int_of_string_opt admitted,
        int_of_string_opt shed,
        int_of_string_opt matches )
    with
    | Some frames, Some admitted, Some shed, Some matches ->
      Result.Ok { frames; admitted; shed; matches; digest }
    | _ -> decode_error "malformed stats payload"
  )
  | fields -> decode_error "stats payload has %d fields, want 5" (List.length fields)
