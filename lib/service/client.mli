(** The tenant-side session: one framed TCP connection to a
    {!Server}, speaking data frames and {!Control} requests.

    A session is single-threaded on the caller's side: {!send} streams
    data frames (buffered; {!flush} or any control call pushes them
    out), and the control calls ({!attach}, {!detach}, {!stats},
    {!drain}) are synchronous — each writes one request and blocks until
    the matching response arrives. Server-side typed errors come back as
    [Error (e : Ocep_base.Ocep_error.t)] values, never exceptions;
    transport failures (connection reset, protocol corruption) raise
    [Sys_error]/[End_of_file] like any channel I/O. *)

module Wire = Ocep_ingest.Wire
module Bqueue = Ocep_ingest.Bqueue

type t

val connect :
  host:string ->
  port:int ->
  tenant:string ->
  traces:string array ->
  ?quota:int ->
  ?policy:Bqueue.policy ->
  unit ->
  (t, Ocep_base.Ocep_error.t) result
(** Open the connection, write the stream header for [traces], perform
    the HELLO exchange. [quota]/[policy] are the per-session overrides
    (see {!Control.request.Hello}). On [Error] the connection has been
    closed. Raises [Unix.Unix_error] when the server cannot be reached. *)

val shard : t -> int
(** The shard the server pinned this tenant to. *)

val send : t -> Wire.t -> unit
(** Stream one data frame (buffered). *)

val send_raw : t -> Ocep_base.Event.raw -> Wire.t
(** Stamp and stream a raw event ({!Ocep_ingest.Framing.write_raw}):
    record ids and local clocks are assigned exactly as a recorder
    would, so a client can stream live events without pre-recording. *)

val send_encoded : t -> string -> unit
(** Splice pre-framed bytes (everything after the magic + header of a
    recorded stream, or a slice of it) directly into the connection —
    the zero-encode fast path the 1000-tenant bench uses to saturate the
    server without the client-side encode dominating. The caller owes
    the bytes' integrity; the server's CRC layer catches corruption. *)

val flush : t -> unit

val attach :
  t -> name:string -> source:string -> (int, Ocep_base.Ocep_error.t) result
(** Register a pattern from source text; returns its pattern id. *)

val detach : t -> pattern:string -> (unit, Ocep_base.Ocep_error.t) result
(** [pattern] is a decimal id or an {!attach} name. *)

val stats : t -> (Control.stats, Ocep_base.Ocep_error.t) result

val drain : t -> (Control.stats, Ocep_base.Ocep_error.t) result
(** Flush the tenant's admission layer server-side and return the final
    counters + digest. After a successful drain only {!stats} and
    {!close} are useful. *)

val close : t -> unit
(** Close the connection (without draining). Idempotent. *)
