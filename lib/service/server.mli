(** The sharded multi-tenant matching service.

    One process hosts [shards] POET engines' worth of matching capacity:
    each shard is an OCaml 5 domain running an admission + engine loop,
    fed through a bounded {!Ocep_ingest.Bqueue}. A tenant is one framed
    connection ({!Ocep_ingest.Framing} over TCP): the stream header
    names the tenant's traces, the first frame must be a
    {!Control.request.Hello}, and from then on data frames and control
    frames interleave freely on the wire.

    {b Routing.} A tenant is pinned to [hash(tenant) mod shards] for its
    whole session, so every trace the tenant owns is replayed on one
    domain — causal order within a tenant never crosses a domain
    boundary, which is what lets each tenant's engine produce digests
    bit-identical to a dedicated single-process engine. Different
    tenants hashing to the same shard interleave at frame-batch
    granularity but touch disjoint engines, so they cannot perturb each
    other's observables.

    {b Quotas.} Each tenant has an in-flight quota: the number of its
    events queued toward its shard but not yet matched. The enforcement
    stance is the existing {!Ocep_ingest.Bqueue.policy}: [Block] stalls
    the tenant's connection reader until the shard catches up (lossless
    backpressure — TCP pushes back to the client), [Shed] drops the
    overflow at the router and counts it ([shed] in {!Control.stats}),
    degrading {e only} that tenant: its record-id gaps are absorbed by
    its own admission layer's [Skip] policy. [Hello] may lower the quota
    or switch the policy per session; raising it above the server cap is
    refused with [Quota_exceeded].

    {b Control.} ATTACH/DETACH/STATS/DRAIN frames are routed through the
    same shard queue as the tenant's data, so a control edit takes
    effect at an exact, reproducible stream position: a client that
    sends [f1 .. fk, ATTACH, fk+1 ..] observes precisely the reports of
    an engine whose pattern was attached between [fk] and [fk+1].
    Responses are written by the shard directly to the tenant's
    connection (1:1, in request order).

    {b Telemetry.} With [metrics_port] set, a publisher thread owns a
    service-level metrics registry (the per-tenant engines' registries
    stay on their shard domains, per the {!Ocep_obs.Metrics} contract)
    and serves [ocep_tenant_events_total{tenant=...}],
    [..._frames_total], [..._shed_total], [..._matches_total],
    [ocep_service_tenants] and [ocep_shard_queue_depth{shard=...}] over
    the existing {!Ocep_obs.Serve} endpoint, refreshed from the shards'
    atomic counters twice a second. *)

module Session = Ocep_ingest.Session
module Bqueue = Ocep_ingest.Bqueue

type config = {
  host : string;
  port : int;  (** 0 asks the OS for a free port (see {!port}) *)
  shards : int;  (** matching domains; > 0 *)
  tenant_quota : int;  (** in-flight event cap per tenant, and the Hello ceiling *)
  quota_policy : Bqueue.policy;  (** default enforcement stance *)
  session : Session.config;
      (** per-tenant admission knobs ([gap_policy], [reorder_window]);
          the [faults]/[pipeline] fields are ignored — degradation is
          the transport's job and each shard is already a pipeline *)
  max_patterns : int;  (** ATTACH cap per tenant; exceeding it is [Quota_exceeded] *)
  metrics_port : int option;  (** [Some p] serves /metrics on 127.0.0.1:p (0 = free port) *)
}

val default_config : config
(** 127.0.0.1:0, 2 shards, quota 4096 [Block], admission [Skip 64] with
    the default window (a quota shed must not wedge the tenant's own
    stream on [Wait]), 64 patterns, no metrics endpoint. *)

type t

val start : ?config:config -> unit -> t
(** Bind, spawn the shard domains and the accept thread, and return.
    Raises [Unix.Unix_error] if the address cannot be bound,
    [Invalid_argument] on a non-positive [shards] or [tenant_quota < 0]. *)

val port : t -> int
val metrics_port : t -> int option

val tenant_count : t -> int
(** Currently connected tenants. *)

val stop : t -> unit
(** Stop accepting, close every live connection, drain and join the
    shard domains, stop the telemetry endpoint. Idempotent. Clients
    still connected see EOF; clients that already received their DRAIN
    response lose nothing. *)
