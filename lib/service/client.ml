module Wire = Ocep_ingest.Wire
module Framing = Ocep_ingest.Framing
module Bqueue = Ocep_ingest.Bqueue
module Error = Ocep_base.Ocep_error

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  wr : Framing.writer;
  mutable rd : Framing.reader option;  (* created lazily: the server's header
                                          arrives only after our HELLO reaches it *)
  mutable seq : int;
  mutable t_shard : int;
  mutable closed : bool;
}

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let reader t =
  match t.rd with
  | Some r -> r
  | None ->
    let r = Framing.create_reader t.ic in
    t.rd <- Some r;
    r

let protocol_error fmt = Printf.ksprintf (fun m -> Error.Decode_error m) fmt

(* Read the next response frame; data never flows server -> client, so
   any non-control frame is protocol corruption. *)
let read_response t =
  let rec go () =
    match Framing.next (reader t) with
    | Framing.Frame w when w.Wire.etype = Control.rsp_etype -> (
      match Control.parse_response w with
      | Result.Ok resp -> Result.Ok resp
      | Result.Error e -> Result.Error e)
    | Framing.Frame w -> Result.Error (protocol_error "unexpected %s frame from server" w.Wire.etype)
    | Framing.Crc_error | Framing.Bad_frame _ -> go ()
    | Framing.Truncated | Framing.Eof ->
      Result.Error (protocol_error "connection closed mid-response")
  in
  go ()

let request t req =
  Framing.write t.wr (Control.request_frame ~seq:(next_seq t) req);
  Framing.flush t.wr;
  match read_response t with
  | Result.Error _ as e -> e
  | Result.Ok (Control.Ok fields) -> Result.Ok fields
  | Result.Ok (Control.Err e) -> Result.Error e

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try flush t.oc with Sys_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let connect ~host ~port ~tenant ~traces ?quota ?policy () =
  let addr =
    match Unix.inet_addr_of_string host with
    | a -> a
    | exception _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
      | _ | (exception Not_found) ->
        invalid_arg (Printf.sprintf "Client.connect: cannot resolve host %s" host))
  in
  let fd = Unix.socket (Unix.domain_of_sockaddr (Unix.ADDR_INET (addr, port))) Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_INET (addr, port)) with
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e
  | () -> (
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let wr = Framing.create_writer oc ~trace_names:traces in
    let t =
      { fd; ic; oc; wr; rd = None; seq = 0; t_shard = -1; closed = false }
    in
    match request t (Control.Hello { tenant; quota; policy }) with
    | Result.Ok fields ->
      (match fields with [ s ] -> t.t_shard <- int_of_string s | _ -> ());
      Result.Ok t
    | Result.Error e ->
      close t;
      Result.Error e)

let shard t = t.t_shard
let send t w = Framing.write t.wr w
let send_raw t raw = Framing.write_raw t.wr raw

let send_encoded t bytes =
  (* the writer and the channel share the buffer; framed bytes spliced
     between whole frames keep the stream well-formed *)
  output_string t.oc bytes

let flush t = Framing.flush t.wr

let one_field what = function
  | Result.Ok [ f ] -> Result.Ok f
  | Result.Ok fields ->
    Result.Error (protocol_error "%s: response has %d fields, want 1" what (List.length fields))
  | Result.Error _ as e -> e

let attach t ~name ~source =
  match one_field "attach" (request t (Control.Attach { name; source })) with
  | Result.Ok s -> (
    match int_of_string_opt s with
    | Some id -> Result.Ok id
    | None -> Result.Error (protocol_error "attach: non-numeric pattern id %S" s))
  | Result.Error _ as e -> e

let detach t ~pattern =
  match request t (Control.Detach { pattern }) with
  | Result.Ok _ -> Result.Ok ()
  | Result.Error _ as e -> e

let stats_request t req =
  match request t req with
  | Result.Ok fields -> Control.parse_stats fields
  | Result.Error _ as e -> e

let stats t = stats_request t Control.Stats
let drain t = stats_request t Control.Drain
