(** Compilation of a parsed pattern into the constraint net the matcher
    executes.

    The paper's pattern tree has one leaf per primitive-event occurrence
    and internal nodes for compound expressions. The net flattens that
    tree: each leaf keeps its class definition; each pair of leaves carries
    the set of atomic causal relations ([Before]/[After]/[Concurrent]) the
    internal nodes allow between them; compound precedence additionally
    records an existential post-check (at least one cross pair related by
    [→], per weak precedence); [~>] records a no-interposed-occurrence
    post-check; [<>] records a partner link.

    Equality of two distinct leaf instantiations is allowed only between
    leaves with no constraint at all. *)

open Ocep_base

type allowed = { before : bool; after : bool; concurrent : bool }
(** Non-empty set of permitted relations for a constrained pair. *)

type field = Fproc | Ftyp | Ftext

type leaf = {
  id : int;
  cls : Ast.class_def;
  evar : string option;  (** the event variable this leaf realizes, if any *)
}

type t = {
  source : Ast.t;
  leaves : leaf array;
  cons : allowed option array array;
      (** [cons.(i).(j)]: allowed relations of (event_i, event_j); [None]
          when unconstrained. Symmetric under relation flip. *)
  partners : (int * int) list;
  exists_before : (int list * int list) list;
      (** for each compound [X -> Y]: at least one pair (i ∈ fst, j ∈ snd)
          with event_i → event_j *)
  lim_checks : (int * int) list;
      (** [(i, j)] for [i ~> j]: no event of leaf [i]'s class strictly
          causally between event_i and event_j *)
  terminating : bool array;
      (** leaf may be the causally-last constituent of some match; only
          arrivals matching a terminating leaf can complete a match *)
  var_fields : (string * (int * field) list) list;
      (** each attribute variable with the (leaf, field) positions bound to it *)
}

exception Compile_error of string

val max_leaves : int
(** 62 — the matcher's per-level conflict sets are int bitsets. *)

val compile : Ast.t -> t
(** Raises {!Compile_error} on an unsatisfiable or ill-formed pattern
    (e.g. a partner/limited operator applied to a compound operand, or a
    leaf constrained against itself), and [Invalid_argument] on a pattern
    exceeding {!max_leaves} leaves. *)

val size : t -> int
(** Number of leaves, the pattern length [k]. *)

val leaf_matches : t -> int -> Event.t -> bool
(** Class match of the leaf's exact attributes (variables and wildcards
    accept anything; consistency of variables is the matcher's job).
    String-comparing reference; the engine hot path uses
    {!leaf_matches_i} on the interned view instead. *)

(** {1 Interned view}

    The net with every exact attribute string replaced by its id in a
    {!Ocep_base.Symbol} table and every attribute variable by a dense
    index — what lets the matcher compare candidate events against specs
    and bindings with integer equality only. The table must be the one
    that interns the events the matcher will see (the POET store's). *)

type ispec =
  | I_any
  | I_exact of int  (** symbol id of the exact string *)
  | I_var of int  (** dense variable index in [0, Array.length var_names) *)

type inet = {
  net : t;
  iproc : ispec array;  (** per leaf *)
  ityp : ispec array;
  itext : ispec array;
  var_names : string array;  (** variable index -> source name *)
  var_occs : (int * field) array array;
      (** variable index -> its (leaf, field) positions, source order *)
  leaf_vars : (int * field) array array;
      (** leaf -> its (variable index, field) occurrences *)
}

val intern_net : t -> intern:(string -> int) -> inet
(** Intern every exact attribute of the net through [intern]. Exact
    strings never seen in any event simply get fresh ids no event
    carries — such specs match nothing, as with strings. *)

val leaf_matches_i : inet -> int -> Event.t -> bool
(** {!leaf_matches} on symbols: integer compares only. *)

val class_key : inet -> int -> int * int * int
(** The leaf's deduplication key [(proc, typ, text)]: the symbol id for
    an exact attribute, [-1] for a wildcard {e or} a variable (both
    accept any value at class-match time). Two leaves interned through
    the same symbol table class-match exactly the same events iff their
    keys are equal — the basis for the multi-pattern engine's shared
    history store. *)

val shape_key : inet -> string
(** The net's structural signature: spec {e kinds} (exact/any/variable,
    with variable indices but never exact symbol values), constraint
    matrix, partner links, post-checks and terminating flags. Two nets
    with equal shape keys — notably two instantiations of one template
    at different bindings — admit the same {!Matcher.plan}s and other
    shape-derived artifacts, which the engine shares physically. *)

(** {1 Parameterized templates}

    Static instantiation of {!Ast.template}s: substitute each declared
    parameter's [$p] attribute occurrences with the binding's concrete
    string (other [$v] attributes stay match-time variables), yielding an
    ordinary {!Ast.t} per distinct binding — heptagon's
    [Param_instances] expansion. Instantiations of one template share
    compiled structure downstream: equal class keys share history
    classes, and equal {!shape_key}s share search plans. *)

val instance_name : Ast.template -> args:string list -> string
(** The generated pattern name, [tname('a', 'b')]. *)

val instantiate : Ast.template -> args:string list -> Ast.t
(** Raises {!Compile_error} on an arity mismatch. *)

val compile_instance : Ast.template -> args:string list -> t
(** [compile (instantiate tpl ~args)] with every failure — including the
    {!max_leaves} cap, which is enforced per concrete instantiated
    pattern — rewrapped to name the template and the binding. *)

val expand_file : Ast.file -> (string * Ast.t) list
(** Every distinct instantiation in first-occurrence order (duplicates
    collapse), then the plain pattern (named ["main"]) when present.
    Raises {!Compile_error} on an undefined template. *)

val compile_file : Ast.file -> (string * t) list
(** {!expand_file} with each pattern compiled ({!compile_instance}
    semantics for instances). *)

val allowed_of_relation : Event.relation -> allowed -> bool
(** Whether a concrete relation is permitted ([Equal] never is). *)

val flip : allowed -> allowed

val pp : Format.formatter -> t -> unit

(** {1 The registry-level discrimination network}

    The shared dispatch automaton a multi-pattern engine compiles its
    whole registry into: one hash-consed node per distinct
    [(proc, typ, text)] class key, each holding every subscribed
    (pattern, leaf) pair — so the class predicate of an arriving event
    is evaluated once per node, regardless of how many patterns (or
    leaves) reference it. Edits are incremental: subscribing a leaf
    touches one node and at most one per-symbol dispatch entry, so
    registration cost does not grow with the number of registered
    patterns. Node ids are dense and recycled; the engine keys the
    shared history store on them. The subscriber payload type is a
    parameter, keeping this module independent of the engine's pattern
    state representation. *)
module Network : sig
  type 'a node = private {
    nid : int;  (** dense node id — the history-store class id *)
    nproc : int;  (** class key: symbol id, or -1 for wildcard/variable *)
    ntyp : int;
    ntext : int;
    mutable nsubs : ('a * int) array;  (** (subscriber, leaf), registration order *)
    mutable ngcable : bool;  (** maintained by the caller (AND over subscribers) *)
  }

  type 'a t

  val create : unit -> 'a t

  val node_count : 'a t -> int
  (** Live nodes. *)

  val nodes_allocated : 'a t -> int
  (** Nodes ever created ([ocep_automaton_nodes_total]). *)

  val node_key : 'a node -> int * int * int

  val node_matches : 'a node -> tsym:int -> esym:int -> xsym:int -> bool
  (** The node's class predicate — three int compares, arena-safe. *)

  val candidates : 'a t -> esym:int -> 'a node array
  (** Dispatch: the nodes an event with this type symbol can match —
      that symbol's exact-type nodes (ascending [nid]) then the generic
      ones. One bounds check and one load; the returned array is shared,
      do not mutate. *)

  val find : 'a t -> key:(int * int * int) -> 'a node option

  val iter : 'a t -> ('a node -> unit) -> unit

  val resolve : 'a t -> key:(int * int * int) -> 'a node * bool
  (** Find-or-create the key's node. [true] means the node is fresh and
      the caller must materialize backing state for its [nid] (the
      engine binds a history class) before events flow. *)

  val attach : 'a node -> 'a * int -> unit
  (** Append one subscriber (registration order is preserved). Split
      from {!resolve} because the engine needs every node id before it
      can build the subscriber it attaches (the pattern state embeds a
      history view keyed on those ids). *)

  val unsubscribe : 'a t -> 'a node -> remove:('a * int -> bool) -> bool
  (** Drop every subscriber [remove] selects; [true] means the node lost
      its last subscriber and left the network (its id is recycled) —
      the caller tears down the id's backing state. *)

  val set_gcable : 'a node -> bool -> unit
end
