open Ocep_base

type universe = {
  u_traces : string array;
  u_etypes : string array;
  u_texts : string array;
}

let universe rng ~trace_names =
  let sub pool n =
    let a = Array.copy pool in
    Prng.shuffle rng a;
    Array.sub a 0 (min n (Array.length a))
  in
  {
    u_traces = trace_names;
    u_etypes = sub [| "A"; "B"; "C"; "D"; "Req"; "Ack" |] (3 + Prng.int rng 3);
    u_texts = sub [| ""; "x"; "y"; "z" |] (2 + Prng.int rng 2);
  }

(* Attribute specs are weighted so that leaves stay selective: a mostly
   exact type keeps the per-leaf candidate population (and with it the
   brute-force oracle's enumeration) small, while wildcards and shared
   variables still appear often enough to exercise those paths. *)
let gen_proc rng u =
  match Prng.int rng 10 with
  | 0 | 1 -> Ast.Exact (Prng.pick rng u.u_traces)
  | 2 -> Ast.Var "p"
  | _ -> Ast.Any

let gen_typ rng u =
  if Prng.int rng 8 = 0 then Ast.Any else Ast.Exact (Prng.pick rng u.u_etypes)

let gen_text rng u =
  match Prng.int rng 8 with
  | 0 | 1 -> Ast.Exact (Prng.pick rng u.u_texts)
  | 2 | 3 -> Ast.Var "d"
  | _ -> Ast.Any

let gen_class rng u i =
  {
    Ast.cname = "E" ^ string_of_int i;
    proc = gen_proc rng u;
    typ = gen_typ rng u;
    text = gen_text rng u;
  }

let gen_op rng =
  match Prng.int rng 8 with
  | 0 | 1 | 2 -> Ast.Concurrent_with
  | 3 -> Ast.Partner
  | _ -> Ast.Happens_before

let and_all = function
  | [] -> invalid_arg "Gen.pattern: empty conjunction"
  | e :: rest -> List.fold_left (fun acc x -> Ast.And (acc, x)) e rest

let pattern rng u ~max_leaves =
  if max_leaves < 1 then invalid_arg "Gen.pattern: max_leaves must be >= 1";
  let k =
    if max_leaves = 1 then 1
    else begin
      match Prng.int rng 10 with
      | 0 -> 1
      | 1 | 2 | 3 | 4 -> min 2 max_leaves
      | 5 | 6 | 7 -> min 3 max_leaves
      | 8 -> min 4 max_leaves
      (* the occasional long chain, up to the caller's cap (the compiler
         enforces its own 62-leaf ceiling) *)
      | _ -> min (2 + Prng.int rng (max 1 (max_leaves - 1))) max_leaves
    end
  in
  let classes = Array.init k (gen_class rng u) in
  let class_decls = Array.to_list (Array.map (fun c -> Ast.Class_decl c) classes) in
  if k = 1 then { Ast.decls = class_decls; pattern = Ast.Single (Ast.Class classes.(0).Ast.cname) }
  else if k = 2 then
    {
      Ast.decls = class_decls;
      pattern = Ast.Op (gen_op rng, Ast.Class classes.(0).Ast.cname, Ast.Class classes.(1).Ast.cname);
    }
  else if k = 4 && Prng.bool rng then
    (* two independent pairs — a conjunction with two terminating leaves *)
    {
      Ast.decls = class_decls;
      pattern =
        and_all
          [
            Ast.Op (gen_op rng, Ast.Class classes.(0).Ast.cname, Ast.Class classes.(1).Ast.cname);
            Ast.Op (gen_op rng, Ast.Class classes.(2).Ast.cname, Ast.Class classes.(3).Ast.cname);
          ];
    }
  else begin
    (* a chain: inner leaves are event variables so consecutive operators
       constrain the same occurrence *)
    let var_decls =
      List.init (k - 2) (fun i ->
          Ast.Var_decl { vclass = classes.(i + 1).Ast.cname; vname = "v" ^ string_of_int (i + 1) })
    in
    let operand i =
      if i = 0 then Ast.Class classes.(0).Ast.cname
      else if i = k - 1 then Ast.Class classes.(k - 1).Ast.cname
      else Ast.Evar ("v" ^ string_of_int i)
    in
    let links = List.init (k - 1) (fun i -> Ast.Op (gen_op rng, operand i, operand (i + 1))) in
    { Ast.decls = class_decls @ var_decls; pattern = and_all links }
  end

(* A template-instantiated registry: parameterize one class of a drawn
   pattern on [$arg] (its text attribute — the axis the paper's
   per-channel patterns vary on), instantiate it at 2-3 distinct
   bindings drawn from the universe's texts, sometimes repeat a binding
   (instantiation dedup must collapse it), and sometimes add a plain
   main pattern alongside. *)
let registry rng u ~max_leaves =
  let base = pattern rng u ~max_leaves in
  let param = "arg" in
  let class_count =
    List.length
      (List.filter (function Ast.Class_decl _ -> true | _ -> false) base.Ast.decls)
  in
  let target = Prng.int rng class_count in
  let seen = ref (-1) in
  let tdecls =
    List.map
      (function
        | Ast.Class_decl c ->
          incr seen;
          if !seen = target then Ast.Class_decl { c with Ast.text = Ast.Var param }
          else Ast.Class_decl c
        | d -> d)
      base.Ast.decls
  in
  let tpl =
    { Ast.tname = "tpl"; tparams = [ param ]; tdecls; tpattern = base.Ast.pattern }
  in
  let texts = Array.copy u.u_texts in
  Prng.shuffle rng texts;
  let n_inst = min (Array.length texts) (2 + Prng.int rng 2) in
  let instances =
    List.init n_inst (fun i -> { Ast.iname = "tpl"; iargs = [ texts.(i) ] })
  in
  let instances =
    if Prng.bool rng then instances @ [ List.hd instances ] else instances
  in
  let main = if Prng.int rng 3 = 0 then Some (pattern rng u ~max_leaves) else None in
  { Ast.templates = [ tpl ]; instances; main }
