open Ocep_base

type allowed = { before : bool; after : bool; concurrent : bool }

type field = Fproc | Ftyp | Ftext

type leaf = { id : int; cls : Ast.class_def; evar : string option }

type t = {
  source : Ast.t;
  leaves : leaf array;
  cons : allowed option array array;
  partners : (int * int) list;
  exists_before : (int list * int list) list;
  lim_checks : (int * int) list;
  terminating : bool array;
  var_fields : (string * (int * field) list) list;
}

exception Compile_error of string

let fail msg = raise (Compile_error msg)

(* The matcher's per-level conflict sets are int bitsets with two bits
   reserved, so a pattern can have at most 62 leaves. Enforced here (and
   at Engine.add_pattern registration) rather than only when a search
   plan is first built. *)
let max_leaves = 62

let all = { before = true; after = true; concurrent = true }

let inter a b =
  { before = a.before && b.before; after = a.after && b.after; concurrent = a.concurrent && b.concurrent }

let is_empty a = (not a.before) && (not a.after) && not a.concurrent

let flip a = { before = a.after; after = a.before; concurrent = a.concurrent }

let allowed_of_relation (r : Event.relation) a =
  match r with
  | Event.Before -> a.before
  | Event.After -> a.after
  | Event.Concurrent -> a.concurrent
  | Event.Equal -> false

(* Mutable build state *)
type builder = {
  mutable bleaves : leaf list;  (* reversed *)
  mutable count : int;
  classes : (string, Ast.class_def) Hashtbl.t;
  evar_class : (string, string) Hashtbl.t;
  evar_leaf : (string, int) Hashtbl.t;
  mutable bcons : (int * int * allowed) list;
  mutable bpartners : (int * int) list;
  mutable bexists : (int list * int list) list;
  mutable blims : (int * int) list;
}

let new_leaf b cname evar =
  let cls =
    match Hashtbl.find_opt b.classes cname with
    | Some c -> c
    | None -> fail ("undefined class: " ^ cname)
  in
  let id = b.count in
  b.count <- id + 1;
  b.bleaves <- { id; cls; evar } :: b.bleaves;
  id

let leaf_of_evar b v =
  match Hashtbl.find_opt b.evar_leaf v with
  | Some id -> id
  | None ->
    let cname =
      match Hashtbl.find_opt b.evar_class v with
      | Some c -> c
      | None -> fail ("undeclared event variable: $" ^ v)
    in
    let id = new_leaf b cname (Some v) in
    Hashtbl.replace b.evar_leaf v id;
    id

(* Leaves of an operand; [Sub] flattens the whole sub-expression. *)
let rec operand_leaves b = function
  | Ast.Class c -> [ new_leaf b c None ]
  | Ast.Evar v -> [ leaf_of_evar b v ]
  | Ast.Sub e -> expr_leaves b e

and expr_leaves b = function
  | Ast.Op (op, x, y) ->
    let lx = operand_leaves b x in
    let ly = operand_leaves b y in
    constrain_op b op x y lx ly;
    lx @ ly
  | Ast.Single o -> operand_leaves b o
  | Ast.And (e1, e2) ->
    (* bind sequentially: leaf ids follow source order *)
    let l1 = expr_leaves b e1 in
    let l2 = expr_leaves b e2 in
    l1 @ l2

and constrain_op b op _x _y lx ly =
  let pairwise a =
    List.iter (fun i -> List.iter (fun j -> b.bcons <- (i, j, a) :: b.bcons) ly) lx
  in
  let single_single name =
    match (lx, ly) with
    | [ i ], [ j ] -> (i, j)
    | _ -> fail (name ^ " requires primitive operands")
  in
  match op with
  | Ast.Concurrent_with -> pairwise { before = false; after = false; concurrent = true }
  | Ast.Happens_before -> (
    match (lx, ly) with
    | [ i ], [ j ] -> b.bcons <- (i, j, { before = true; after = false; concurrent = false }) :: b.bcons
    | _ ->
      (* weak precedence between compound events: no pair may go backwards
         (that would be crossing/equality), and at least one pair must be
         related forward *)
      pairwise { before = true; after = false; concurrent = true };
      b.bexists <- (lx, ly) :: b.bexists)
  | Ast.Partner ->
    let i, j = single_single "<>" in
    b.bpartners <- (i, j) :: b.bpartners;
    b.bcons <- (i, j, { before = true; after = true; concurrent = false }) :: b.bcons
  | Ast.Limited_hb ->
    let i, j = single_single "~>" in
    b.blims <- (i, j) :: b.blims;
    b.bcons <- (i, j, { before = true; after = false; concurrent = false }) :: b.bcons
  | Ast.Strong_precedes ->
    (* Lamport's strong precedence: every pair strictly forward *)
    pairwise { before = true; after = false; concurrent = false }
  | Ast.Entangled ->
    (* crossing compound events: any pairwise relation, but at least one
       pair forward and at least one pair backward (distinct instantiation
       rules out overlap) *)
    pairwise all;
    b.bexists <- (lx, ly) :: b.bexists;
    b.bexists <- (ly, lx) :: b.bexists

let compile (src : Ast.t) =
  let b =
    {
      bleaves = [];
      count = 0;
      classes = Hashtbl.create 8;
      evar_class = Hashtbl.create 8;
      evar_leaf = Hashtbl.create 8;
      bcons = [];
      bpartners = [];
      bexists = [];
      blims = [];
    }
  in
  List.iter
    (function
      | Ast.Class_decl cd ->
        if Hashtbl.mem b.classes cd.Ast.cname then fail ("duplicate class: " ^ cd.Ast.cname);
        Hashtbl.replace b.classes cd.Ast.cname cd
      | Ast.Var_decl { vclass; vname } ->
        if Hashtbl.mem b.evar_class vname then fail ("duplicate event variable: $" ^ vname);
        Hashtbl.replace b.evar_class vname vclass)
    src.Ast.decls;
  ignore (expr_leaves b src.Ast.pattern);
  let k = b.count in
  if k = 0 then fail "empty pattern";
  if k > max_leaves then
    invalid_arg
      (Printf.sprintf
         "Compile.compile: pattern has %d leaves; the matcher's conflict bitsets cap patterns \
          at %d"
         k max_leaves);
  let leaves = Array.of_list (List.sort (fun a b' -> compare a.id b'.id) b.bleaves) in
  let cons = Array.make_matrix k k None in
  let add i j a =
    if i = j then fail "a leaf cannot be constrained against itself (use distinct classes or variables)";
    let cur = match cons.(i).(j) with None -> all | Some c -> c in
    let merged = inter cur a in
    if is_empty merged then fail "unsatisfiable pattern: contradictory constraints between two events";
    cons.(i).(j) <- Some merged;
    cons.(j).(i) <- Some (flip merged)
  in
  List.iter (fun (i, j, a) -> add i j a) b.bcons;
  (* terminating: never forced to strictly precede another leaf *)
  let terminating =
    Array.init k (fun i ->
        not
          (Array.exists
             (function Some { before = true; after = false; concurrent = false } -> true | _ -> false)
             cons.(i)))
  in
  (* attribute-variable occurrence positions *)
  let var_tbl : (string, (int * field) list) Hashtbl.t = Hashtbl.create 8 in
  let record v pos =
    let cur = Option.value ~default:[] (Hashtbl.find_opt var_tbl v) in
    Hashtbl.replace var_tbl v (pos :: cur)
  in
  Array.iter
    (fun l ->
      (match l.cls.Ast.proc with Ast.Var v -> record v (l.id, Fproc) | _ -> ());
      (match l.cls.Ast.typ with Ast.Var v -> record v (l.id, Ftyp) | _ -> ());
      match l.cls.Ast.text with Ast.Var v -> record v (l.id, Ftext) | _ -> ())
    leaves;
  let var_fields = Hashtbl.fold (fun v ps acc -> (v, List.rev ps) :: acc) var_tbl [] in
  let var_fields = List.sort compare var_fields in
  {
    source = src;
    leaves;
    cons;
    partners = List.rev b.bpartners;
    exists_before = List.rev b.bexists;
    lim_checks = List.rev b.blims;
    terminating;
    var_fields;
  }

let size t = Array.length t.leaves

let spec_matches spec value =
  match spec with
  | Ast.Exact s -> s = value
  | Ast.Any | Ast.Var _ -> true

let leaf_matches t i (ev : Event.t) =
  let cls = t.leaves.(i).cls in
  spec_matches cls.Ast.typ ev.etype
  && spec_matches cls.Ast.proc ev.trace_name
  && spec_matches cls.Ast.text ev.text

(* ------------------------------------------------------------------ *)
(* Interned view                                                       *)
(* ------------------------------------------------------------------ *)

type ispec = I_any | I_exact of int | I_var of int

type inet = {
  net : t;
  iproc : ispec array;
  ityp : ispec array;
  itext : ispec array;
  var_names : string array;
  var_occs : (int * field) array array;
  leaf_vars : (int * field) array array;
}

let intern_net (t : t) ~intern =
  let var_names = Array.of_list (List.map fst t.var_fields) in
  let var_id v =
    let n = Array.length var_names in
    let rec loop i = if i >= n then fail ("unknown variable: " ^ v) else if var_names.(i) = v then i else loop (i + 1) in
    loop 0
  in
  let ispec = function
    | Ast.Any -> I_any
    | Ast.Exact s -> I_exact (intern s)
    | Ast.Var v -> I_var (var_id v)
  in
  let k = Array.length t.leaves in
  let var_occs =
    Array.of_list (List.map (fun (_, ps) -> Array.of_list ps) t.var_fields)
  in
  let leaf_vars = Array.make k [] in
  List.iteri
    (fun vid (_, ps) ->
      List.iter (fun (i, f) -> leaf_vars.(i) <- (vid, f) :: leaf_vars.(i)) ps)
    t.var_fields;
  {
    net = t;
    iproc = Array.map (fun l -> ispec l.cls.Ast.proc) t.leaves;
    ityp = Array.map (fun l -> ispec l.cls.Ast.typ) t.leaves;
    itext = Array.map (fun l -> ispec l.cls.Ast.text) t.leaves;
    var_names;
    var_occs;
    leaf_vars = Array.map (fun l -> Array.of_list (List.rev l)) leaf_vars;
  }

let ispec_matches spec sym =
  match spec with I_exact s -> s = sym | I_any | I_var _ -> true

let leaf_matches_i (inet : inet) i (ev : Event.t) =
  ispec_matches inet.ityp.(i) ev.esym
  && ispec_matches inet.iproc.(i) ev.tsym
  && ispec_matches inet.itext.(i) ev.xsym

(* Two leaves class-match exactly the same events iff they agree on this
   key: at class-match time [I_any] and [I_var _] both accept anything
   (variable consistency is the matcher's job), so both collapse to -1,
   and exact specs interned through the same symbol table compare by
   id. This is what lets a multi-pattern engine share one physical
   history between leaves — of one pattern or of different patterns —
   that name the same [process, type, text] class. *)
let class_key_of = function I_exact s -> s | I_any | I_var _ -> -1

let class_key (inet : inet) i =
  (class_key_of inet.iproc.(i), class_key_of inet.ityp.(i), class_key_of inet.itext.(i))

(* The interned net's structural signature: spec kinds (with variable
   indices, but never exact symbol values), the constraint matrix,
   partner links, post-checks and terminating flags. Everything a
   search plan ({!Matcher.plan_of}) or any other shape-derived artifact
   reads is a function of this, so two nets with equal shape keys — in
   particular two instantiations of one template at different bindings —
   can share those artifacts physically. *)
let shape_key (inet : inet) =
  let kind = function I_any -> (0, 0) | I_exact _ -> (1, 0) | I_var v -> (2, v) in
  let t = inet.net in
  Marshal.to_string
    ( Array.map kind inet.iproc,
      Array.map kind inet.ityp,
      Array.map kind inet.itext,
      t.cons,
      t.partners,
      t.exists_before,
      t.lim_checks,
      t.terminating )
    []

(* ------------------------------------------------------------------ *)
(* Parameterized templates                                             *)
(* ------------------------------------------------------------------ *)

let binding_string args = "(" ^ String.concat ", " (List.map (fun a -> "'" ^ a ^ "'") args) ^ ")"

let instance_name (tpl : Ast.template) ~args = tpl.Ast.tname ^ binding_string args

let instantiate (tpl : Ast.template) ~args =
  let np = List.length tpl.Ast.tparams and na = List.length args in
  if np <> na then
    fail
      (Printf.sprintf "template %s expects %d parameter%s, got %d in %s" tpl.Ast.tname np
         (if np = 1 then "" else "s")
         na (binding_string args));
  let subst = List.combine tpl.Ast.tparams args in
  let attr = function
    | Ast.Var v as s -> (
      match List.assoc_opt v subst with Some x -> Ast.Exact x | None -> s)
    | s -> s
  in
  let decl = function
    | Ast.Class_decl cd ->
      Ast.Class_decl
        { cd with Ast.proc = attr cd.Ast.proc; typ = attr cd.Ast.typ; text = attr cd.Ast.text }
    | Ast.Var_decl _ as d -> d
  in
  { Ast.decls = List.map decl tpl.Ast.tdecls; pattern = tpl.Ast.tpattern }

(* The leaf cap (and any other compile failure) is enforced per concrete
   instantiated pattern, and the error names the template and the
   binding — a registry never rejects a whole template because one
   binding is oversized. *)
let compile_instance (tpl : Ast.template) ~args =
  let ast = instantiate tpl ~args in
  let where = Printf.sprintf "template %s at %s" tpl.Ast.tname (binding_string args) in
  try compile ast with
  | Invalid_argument msg -> invalid_arg (where ^ ": " ^ msg)
  | Compile_error msg -> fail (where ^ ": " ^ msg)

(* Instantiations deduplicated on (template, binding) in first-occurrence
   order — the [Param_instances] set — followed by the file's plain
   pattern. *)
let unique_instances (f : Ast.file) =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun { Ast.iname; iargs } ->
      let key = (iname, iargs) in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.replace seen key ();
        match List.find_opt (fun t -> t.Ast.tname = iname) f.Ast.templates with
        | None -> fail ("instantiate of undefined template: " ^ iname)
        | Some tpl -> Some (tpl, iargs)
      end)
    f.Ast.instances

let expand_file (f : Ast.file) =
  List.map
    (fun (tpl, args) -> (instance_name tpl ~args, instantiate tpl ~args))
    (unique_instances f)
  @ (match f.Ast.main with None -> [] | Some t -> [ ("main", t) ])

let compile_file (f : Ast.file) =
  List.map
    (fun (tpl, args) -> (instance_name tpl ~args, compile_instance tpl ~args))
    (unique_instances f)
  @ (match f.Ast.main with None -> [] | Some t -> [ ("main", compile t) ])

let pp_allowed ppf a =
  let parts =
    (if a.before then [ "->" ] else [])
    @ (if a.after then [ "<-" ] else [])
    @ if a.concurrent then [ "||" ] else []
  in
  Format.fprintf ppf "{%s}" (String.concat "," parts)

let pp ppf t =
  let k = size t in
  Format.fprintf ppf "net with %d leaves:@\n" k;
  Array.iter
    (fun l ->
      Format.fprintf ppf "  leaf %d: %s%s@\n" l.id l.cls.Ast.cname
        (match l.evar with None -> "" | Some v -> " ($" ^ v ^ ")"))
    t.leaves;
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      match t.cons.(i).(j) with
      | None -> ()
      | Some a -> Format.fprintf ppf "  (%d,%d): %a@\n" i j pp_allowed a
    done
  done;
  List.iter (fun (i, j) -> Format.fprintf ppf "  partner (%d,%d)@\n" i j) t.partners;
  List.iter
    (fun (lx, ly) ->
      Format.fprintf ppf "  exists-before [%s] [%s]@\n"
        (String.concat "," (List.map string_of_int lx))
        (String.concat "," (List.map string_of_int ly)))
    t.exists_before;
  List.iter (fun (i, j) -> Format.fprintf ppf "  lim (%d,%d)@\n" i j) t.lim_checks;
  Format.fprintf ppf "  terminating: %s@\n"
    (String.concat ","
       (List.filteri (fun i _ -> t.terminating.(i)) (Array.to_list (Array.mapi (fun i _ -> string_of_int i) t.leaves))))

(* ------------------------------------------------------------------ *)
(* The registry-level discrimination network                           *)
(* ------------------------------------------------------------------ *)

module Network = struct
  (* One hash-consed class-predicate node: the [(proc, typ, text)] class
     key split into int fields (so the per-event predicate is three
     unboxed loads) plus the subscriber list. Node ids are allocated
     from a free list, densely, and are what the engine keys the shared
     history store on. *)
  type 'a node = {
    nid : int;
    nproc : int;
    ntyp : int;
    ntext : int;
    mutable nsubs : ('a * int) array;  (* (subscriber, leaf), registration order *)
    mutable ngcable : bool;  (* AND over subscribers, maintained by the caller *)
  }

  type 'a t = {
    by_key : (int * int * int, 'a node) Hashtbl.t;
    mutable exacts : 'a node array array;  (* dense by exact type symbol, ascending nid *)
    mutable by_sym : 'a node array array;  (* cached exacts(sym) ++ generic per symbol *)
    mutable generic : 'a node array;  (* wildcard/variable-type nodes, ascending nid *)
    mutable free_ids : int list;
    mutable next_id : int;
    mutable allocated_total : int;  (* nodes ever created (ocep_automaton_nodes_total) *)
  }

  let create () =
    {
      by_key = Hashtbl.create 16;
      exacts = [||];
      by_sym = [||];
      generic = [||];
      free_ids = [];
      next_id = 0;
      allocated_total = 0;
    }

  let node_count t = Hashtbl.length t.by_key

  let nodes_allocated t = t.allocated_total

  let node_key (n : 'a node) = (n.nproc, n.ntyp, n.ntext)

  let set_gcable (n : 'a node) b = n.ngcable <- b

  let node_matches (n : 'a node) ~tsym ~esym ~xsym =
    (n.ntyp < 0 || n.ntyp = esym) && (n.nproc < 0 || n.nproc = tsym) && (n.ntext < 0 || n.ntext = xsym)

  (* The per-event dispatch: candidates for an exact type symbol are its
     own nodes followed by the generic ones — one bounds check and one
     load, no per-event allocation. Symbols interned after the last
     network edit (or past the dense range) can only match generic
     nodes. *)
  let candidates t ~esym =
    if esym >= 0 && esym < Array.length t.by_sym then Array.unsafe_get t.by_sym esym
    else t.generic

  let find t ~key = Hashtbl.find_opt t.by_key key

  let iter t f = Hashtbl.iter (fun _ n -> f n) t.by_key

  (* insertion position by ascending nid: what a full rebuild sorted by
     class id produced before network edits became incremental *)
  let insert_sorted arr (n : 'a node) =
    let len = Array.length arr in
    let pos = ref len in
    (try
       for i = 0 to len - 1 do
         if arr.(i).nid > n.nid then begin
           pos := i;
           raise Exit
         end
       done
     with Exit -> ());
    let out = Array.make (len + 1) n in
    Array.blit arr 0 out 0 !pos;
    Array.blit arr !pos out (!pos + 1) (len - !pos);
    out

  let remove_node arr (n : 'a node) =
    Array.of_list (List.filter (fun m -> m != n) (Array.to_list arr))

  let refresh_sym t sym = t.by_sym.(sym) <- Array.append t.exacts.(sym) t.generic

  let refresh_all t =
    for sym = 0 to Array.length t.by_sym - 1 do
      refresh_sym t sym
    done

  let grow t sym =
    if sym >= Array.length t.by_sym then begin
      let len = max (sym + 1) (2 * Array.length t.by_sym) in
      let ex = Array.make len [||] in
      Array.blit t.exacts 0 ex 0 (Array.length t.exacts);
      t.exacts <- ex;
      let bs = Array.make len t.generic in
      Array.blit t.by_sym 0 bs 0 (Array.length t.by_sym);
      t.by_sym <- bs
    end

  (* Find-or-create the node for a class key, updating only the dispatch
     entries the edit touches: a new exact-type node edits its own
     symbol's entry; a new generic node refreshes the per-symbol caches
     (O(nodes), independent of registered patterns). Returns the node
     and whether it was freshly allocated — on [true] the caller must
     materialize backing state for [nid] (the engine binds a history
     class). *)
  let resolve t ~key =
    match Hashtbl.find_opt t.by_key key with
    | Some n -> (n, false)
    | None ->
      let nid =
        match t.free_ids with
        | id :: rest ->
          t.free_ids <- rest;
          id
        | [] ->
          let id = t.next_id in
          t.next_id <- id + 1;
          id
      in
      let p, ty, x = key in
      let n = { nid; nproc = p; ntyp = ty; ntext = x; nsubs = [||]; ngcable = true } in
      Hashtbl.add t.by_key key n;
      t.allocated_total <- t.allocated_total + 1;
      if ty >= 0 then begin
        grow t ty;
        t.exacts.(ty) <- insert_sorted t.exacts.(ty) n;
        refresh_sym t ty
      end
      else begin
        t.generic <- insert_sorted t.generic n;
        refresh_all t
      end;
      (n, true)

  let attach (n : 'a node) sub = n.nsubs <- Array.append n.nsubs [| sub |]

  (* Drop every subscriber [remove] selects; when the node loses its last
     subscriber it leaves the network and its id returns to the free
     list. Returns [true] when the node was released — the caller tears
     down the id's backing state. *)
  let unsubscribe t (n : 'a node) ~remove =
    n.nsubs <- Array.of_list (List.filter (fun s -> not (remove s)) (Array.to_list n.nsubs));
    if Array.length n.nsubs > 0 then false
    else begin
      Hashtbl.remove t.by_key (node_key n);
      if n.ntyp >= 0 then begin
        t.exacts.(n.ntyp) <- remove_node t.exacts.(n.ntyp) n;
        refresh_sym t n.ntyp
      end
      else begin
        t.generic <- remove_node t.generic n;
        refresh_all t
      end;
      t.free_ids <- n.nid :: t.free_ids;
      true
    end
end
