type attr_spec = Exact of string | Any | Var of string

type class_def = { cname : string; proc : attr_spec; typ : attr_spec; text : attr_spec }

type causal_op =
  | Happens_before
  | Concurrent_with
  | Partner
  | Limited_hb
  | Strong_precedes
  | Entangled

type operand = Class of string | Evar of string | Sub of expr

and expr = Op of causal_op * operand * operand | Single of operand | And of expr * expr

type decl = Class_decl of class_def | Var_decl of { vclass : string; vname : string }

type t = { decls : decl list; pattern : expr }

type template = { tname : string; tparams : string list; tdecls : decl list; tpattern : expr }

type instantiation = { iname : string; iargs : string list }

type file = { templates : template list; instances : instantiation list; main : t option }

let pp_attr_spec ppf = function
  | Exact s -> Format.fprintf ppf "'%s'" s
  | Any -> Format.fprintf ppf "_"
  | Var v -> Format.fprintf ppf "$%s" v

let pp_op ppf = function
  | Happens_before -> Format.fprintf ppf "->"
  | Concurrent_with -> Format.fprintf ppf "||"
  | Partner -> Format.fprintf ppf "<>"
  | Limited_hb -> Format.fprintf ppf "~>"
  | Strong_precedes -> Format.fprintf ppf "=>"
  | Entangled -> Format.fprintf ppf "<->"

let rec pp_operand ppf = function
  | Class c -> Format.fprintf ppf "%s" c
  | Evar v -> Format.fprintf ppf "$%s" v
  | Sub e -> Format.fprintf ppf "(%a)" pp_expr e

and pp_expr ppf = function
  | Op (op, a, b) -> Format.fprintf ppf "%a %a %a" pp_operand a pp_op op pp_operand b
  | Single o -> Format.fprintf ppf "%a" pp_operand o
  | And (a, b) -> Format.fprintf ppf "%a && %a" pp_conj a pp_conj b

(* conjuncts that are themselves conjunctions need no parentheses ([&&] is
   associative) but operator expressions do not, to keep the grammar
   unambiguous on reparse *)
and pp_conj ppf = function
  | And _ as e -> pp_expr ppf e
  | e -> pp_expr ppf e

let pp_decl ppf = function
  | Class_decl { cname; proc; typ; text } ->
    Format.fprintf ppf "%s := [%a, %a, %a];" cname pp_attr_spec proc pp_attr_spec typ
      pp_attr_spec text
  | Var_decl { vclass; vname } -> Format.fprintf ppf "%s $%s;" vclass vname

let pp ppf { decls; pattern } =
  List.iter (fun d -> Format.fprintf ppf "%a@\n" pp_decl d) decls;
  Format.fprintf ppf "pattern := %a;" pp_expr pattern

let pp_template ppf { tname; tparams; tdecls; tpattern } =
  Format.fprintf ppf "template %s(%s) {@\n" tname
    (String.concat ", " (List.map (fun p -> "$" ^ p) tparams));
  List.iter (fun d -> Format.fprintf ppf "  %a@\n" pp_decl d) tdecls;
  Format.fprintf ppf "  pattern := %a;@\n}" pp_expr tpattern

let pp_instantiation ppf { iname; iargs } =
  Format.fprintf ppf "instantiate %s(%s);" iname
    (String.concat ", " (List.map (fun a -> "'" ^ a ^ "'") iargs))

let pp_file ppf { templates; instances; main } =
  List.iter (fun tpl -> Format.fprintf ppf "%a@\n" pp_template tpl) templates;
  List.iter (fun inst -> Format.fprintf ppf "%a@\n" pp_instantiation inst) instances;
  match main with None -> () | Some t -> pp ppf t

let equal (a : t) (b : t) = a = b

let equal_file (a : file) (b : file) = a = b
