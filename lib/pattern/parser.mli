(** Parser for the textual pattern language.

    Grammar (whitespace-separated; [#] starts a line comment):
    {v
      file    := { stmt }
      stmt    := "pattern" ":=" expr ";"
               | IDENT ":=" "[" attr "," attr "," attr "]" ";"
               | IDENT "$" IDENT ";"                (event-variable decl)
               | "template" IDENT "(" "$" IDENT { "," "$" IDENT } ")"
                   "{" { stmt } "}"                 (no nested templates)
               | "instantiate" IDENT "(" arg { "," arg } ")" ";"
      attr    := "'" chars "'" | "$" IDENT | "_" | IDENT
      arg     := "'" chars "'" | IDENT
      expr    := rel { "&&" rel }
      rel     := operand [ ("->" | "||" | "<>" | "~>") operand ]
      operand := IDENT | "$" IDENT | "(" expr ")"
    v}

    Inside a template body a [$p] attribute whose name matches a declared
    parameter is substituted at instantiation
    ({!Compile.instantiate}); other [$v] attributes keep their usual
    match-time-variable meaning. Templates must be defined before they
    are instantiated; instantiation arity is checked at parse time. *)

exception Parse_error of string
(** Carries a human-readable message with position information. *)

val parse : string -> Ast.t
(** Parse a plain (template-free) pattern file. Raises {!Parse_error} on
    malformed input, including use of an undefined class or event
    variable, duplicate definitions, a missing [pattern := ...]
    statement, or a source that declares templates (use {!parse_file}
    for those). *)

val parse_file : string -> Ast.file
(** Parse a full source file: templates, [instantiate] statements and at
    most one plain pattern, in any order. A plain pattern file parses to
    [{ templates = []; instances = []; main = Some _ }], so this accepts
    a strict superset of {!parse}'s inputs. *)

val parse_expr : string -> Ast.expr
(** Parse a bare pattern expression (used by tests). *)
