(** Abstract syntax of the causal-pattern language (Section III of the
    paper).

    A pattern file is a sequence of statements: event-class definitions
    ([Synch := \[$1, Synch_Leader, $2\];]), event-variable declarations
    ([Snapshot $Diff;]) and the pattern itself
    ([pattern := (Synch -> $Diff) && ...;]).

    Attribute specifications are an exact string, a wildcard, or a
    variable; a variable that occurs in several attribute positions forces
    the matched values to be equal. An event variable names one occurrence
    of a class so that several operators constrain the same matched
    event. *)

type attr_spec =
  | Exact of string
  | Any
  | Var of string  (** without the leading [$] *)

type class_def = {
  cname : string;
  proc : attr_spec;  (** matched against the trace name *)
  typ : attr_spec;  (** matched against the event type *)
  text : attr_spec;  (** matched against the text field *)
}

(** Binary causality operators of Fig. 1 and Section III-B. *)
type causal_op =
  | Happens_before  (** [->]: weak precedence on compound operands *)
  | Concurrent_with  (** [||] *)
  | Partner  (** [<>]: the two events are the send/receive pair of one message *)
  | Limited_hb  (** [~>]: happens before with no interposed event of the left class *)
  | Strong_precedes  (** [=>]: every left event before every right event (Lamport) *)
  | Entangled  (** [<->]: the compound operands cross (some pair forward, some pair backward) *)

type operand =
  | Class of string  (** a fresh occurrence of the class *)
  | Evar of string  (** a declared event variable (shared occurrence) *)
  | Sub of expr  (** parenthesized compound event *)

and expr =
  | Op of causal_op * operand * operand
  | Single of operand  (** pattern that just requires an occurrence *)
  | And of expr * expr

type decl =
  | Class_decl of class_def
  | Var_decl of { vclass : string; vname : string }

type t = { decls : decl list; pattern : expr }

(** {1 Parameterized templates}

    A template is a whole pattern body abstracted over attribute
    parameters ([template race($c) { S1 := \[_, send, $c\]; ... }]):
    inside the body a [$p] in attribute position where [p] is a declared
    parameter stands for the concrete string supplied at instantiation;
    any other [$v] keeps its usual meaning (match-time attribute
    variable). Each [instantiate race('ch0');] statement expands to one
    concrete pattern — the statically-instantiated [Param_instances]
    scheme — and identical instantiations are deduplicated. *)

type template = {
  tname : string;
  tparams : string list;  (** parameter names, without the leading [$] *)
  tdecls : decl list;
  tpattern : expr;
}

type instantiation = {
  iname : string;  (** template name *)
  iargs : string list;  (** one concrete string per template parameter *)
}

type file = {
  templates : template list;
  instances : instantiation list;  (** source order, duplicates allowed *)
  main : t option;  (** the file's plain (non-template) pattern, if any *)
}

val pp_attr_spec : Format.formatter -> attr_spec -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp : Format.formatter -> t -> unit
(** Prints a pattern file that reparses to an equal AST. *)

val pp_template : Format.formatter -> template -> unit
val pp_instantiation : Format.formatter -> instantiation -> unit

val pp_file : Format.formatter -> file -> unit
(** Prints a source file that reparses ({!Parser.parse_file}) to an equal
    [file]. *)

val equal : t -> t -> bool
val equal_file : file -> file -> bool
