exception Parse_error of string

type token =
  | Tident of string
  | Tvar of string
  | Tstring of string
  | Tunderscore
  | Tlbracket
  | Trbracket
  | Tlparen
  | Trparen
  | Tlbrace
  | Trbrace
  | Tcomma
  | Tsemi
  | Tassign
  | Tarrow
  | Tpar
  | Tpartner
  | Tlim
  | Tstrong
  | Tentangle
  | Tand
  | Teof

let pp_token = function
  | Tident s -> Printf.sprintf "identifier %S" s
  | Tvar s -> Printf.sprintf "variable $%s" s
  | Tstring s -> Printf.sprintf "string '%s'" s
  | Tunderscore -> "_"
  | Tlbracket -> "["
  | Trbracket -> "]"
  | Tlparen -> "("
  | Trparen -> ")"
  | Tlbrace -> "{"
  | Trbrace -> "}"
  | Tcomma -> ","
  | Tsemi -> ";"
  | Tassign -> ":="
  | Tarrow -> "->"
  | Tpar -> "||"
  | Tpartner -> "<>"
  | Tlim -> "~>"
  | Tstrong -> "=>"
  | Tentangle -> "<->"
  | Tand -> "&&"
  | Teof -> "end of input"

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let is_ident_start c = is_ident_char c && not (c >= '0' && c <= '9')

(* Tokenize the whole input up front; patterns are tiny. *)
let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let fail msg = raise (Parse_error (Printf.sprintf "line %d: %s" !line msg)) in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '\'' then begin
      let j = ref (!i + 1) in
      while !j < n && src.[!j] <> '\'' do
        if src.[!j] = '\n' then fail "unterminated string";
        incr j
      done;
      if !j >= n then fail "unterminated string";
      push (Tstring (String.sub src (!i + 1) (!j - !i - 1)));
      i := !j + 1
    end
    else if c = '$' then begin
      let j = ref (!i + 1) in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      if !j = !i + 1 then fail "expected a name after $";
      push (Tvar (String.sub src (!i + 1) (!j - !i - 1)));
      i := !j
    end
    else if c = '_' && (!i + 1 >= n || not (is_ident_char src.[!i + 1])) then begin
      push Tunderscore;
      incr i
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      push (Tident (String.sub src !i (!j - !i)));
      i := !j
    end
    else begin
      let three = if !i + 2 < n then String.sub src !i 3 else "" in
      if three = "<->" then begin
        push Tentangle;
        i := !i + 3
      end
      else
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | ":=" -> push Tassign; i := !i + 2
      | "->" -> push Tarrow; i := !i + 2
      | "||" -> push Tpar; i := !i + 2
      | "<>" -> push Tpartner; i := !i + 2
      | "~>" -> push Tlim; i := !i + 2
      | "=>" -> push Tstrong; i := !i + 2
      | "&&" -> push Tand; i := !i + 2
      | _ -> (
        match c with
        | '[' -> push Tlbracket; incr i
        | ']' -> push Trbracket; incr i
        | '(' -> push Tlparen; incr i
        | ')' -> push Trparen; incr i
        | '{' -> push Tlbrace; incr i
        | '}' -> push Trbrace; incr i
        | ',' -> push Tcomma; incr i
        | ';' -> push Tsemi; incr i
        | _ -> fail (Printf.sprintf "unexpected character %C" c))
    end
  done;
  push Teof;
  List.rev !toks

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> Teof | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st t =
  let got = peek st in
  if got = t then advance st
  else raise (Parse_error (Printf.sprintf "expected %s but found %s" (pp_token t) (pp_token got)))

let parse_attr st =
  match peek st with
  | Tstring s ->
    advance st;
    Ast.Exact s
  | Tvar v ->
    advance st;
    Ast.Var v
  | Tunderscore ->
    advance st;
    Ast.Any
  | Tident s ->
    advance st;
    Ast.Exact s
  | t -> raise (Parse_error ("expected an attribute but found " ^ pp_token t))

let rec parse_operand st =
  match peek st with
  | Tident c ->
    advance st;
    Ast.Class c
  | Tvar v ->
    advance st;
    Ast.Evar v
  | Tlparen ->
    advance st;
    let e = parse_expr_toks st in
    expect st Trparen;
    Ast.Sub e
  | t -> raise (Parse_error ("expected an operand but found " ^ pp_token t))

and parse_rel st =
  let a = parse_operand st in
  let op =
    match peek st with
    | Tarrow -> Some Ast.Happens_before
    | Tpar -> Some Ast.Concurrent_with
    | Tpartner -> Some Ast.Partner
    | Tlim -> Some Ast.Limited_hb
    | Tstrong -> Some Ast.Strong_precedes
    | Tentangle -> Some Ast.Entangled
    | _ -> None
  in
  match op with
  | None -> Ast.Single a
  | Some op ->
    advance st;
    let b = parse_operand st in
    Ast.Op (op, a, b)

and parse_expr_toks st =
  let first = parse_rel st in
  let rec loop acc =
    match peek st with
    | Tand ->
      advance st;
      let r = parse_rel st in
      loop (Ast.And (acc, r))
    | _ -> acc
  in
  loop first

let parse_class_def st cname =
  expect st Tlbracket;
  let proc = parse_attr st in
  expect st Tcomma;
  let typ = parse_attr st in
  expect st Tcomma;
  let text = parse_attr st in
  expect st Trbracket;
  { Ast.cname; proc; typ; text }

(* Check that every class / event variable used in the expression is
   declared, and that event variables are used consistently. *)
let validate decls pattern =
  let classes = Hashtbl.create 8 in
  let evars = Hashtbl.create 8 in
  List.iter
    (function
      | Ast.Class_decl cd ->
        if Hashtbl.mem classes cd.Ast.cname then
          raise (Parse_error ("duplicate class definition: " ^ cd.Ast.cname));
        Hashtbl.replace classes cd.Ast.cname ()
      | Ast.Var_decl { vclass; vname } ->
        if not (Hashtbl.mem classes vclass) then
          raise (Parse_error ("event variable $" ^ vname ^ " of undefined class " ^ vclass));
        if Hashtbl.mem evars vname then
          raise (Parse_error ("duplicate event variable: $" ^ vname));
        Hashtbl.replace evars vname ())
    decls;
  let rec check_operand = function
    | Ast.Class c ->
      if not (Hashtbl.mem classes c) then raise (Parse_error ("undefined class: " ^ c))
    | Ast.Evar v ->
      if not (Hashtbl.mem evars v) then raise (Parse_error ("undeclared event variable: $" ^ v))
    | Ast.Sub e -> check_expr e
  and check_expr = function
    | Ast.Op (_, a, b) ->
      check_operand a;
      check_operand b
    | Ast.Single o -> check_operand o
    | Ast.And (a, b) ->
      check_expr a;
      check_expr b
  in
  check_expr pattern

(* One run of body statements (class defs, event-variable decls, the
   pattern statement) until [stop]. [extra] gets first crack at each
   leading token — the top-level loop uses it for the [template] and
   [instantiate] statements, template bodies pass a handler that accepts
   nothing. *)
let parse_stmts st ~stop ~extra =
  let decls = ref [] in
  let pattern = ref None in
  let rec loop () =
    let tok = peek st in
    if tok = stop then ()
    else if extra tok then loop ()
    else
      match tok with
      | Tident "pattern" ->
        advance st;
        expect st Tassign;
        let e = parse_expr_toks st in
        expect st Tsemi;
        if !pattern <> None then raise (Parse_error "duplicate pattern statement");
        pattern := Some e;
        loop ()
      | Tident name -> (
        advance st;
        match peek st with
        | Tassign ->
          advance st;
          let cd = parse_class_def st name in
          expect st Tsemi;
          decls := Ast.Class_decl cd :: !decls;
          loop ()
        | Tvar v ->
          advance st;
          expect st Tsemi;
          decls := Ast.Var_decl { vclass = name; vname = v } :: !decls;
          loop ()
        | t ->
          raise
            (Parse_error ("expected := or an event variable after " ^ name ^ ", found " ^ pp_token t)))
      | t -> raise (Parse_error ("expected a statement but found " ^ pp_token t))
  in
  loop ();
  (List.rev !decls, !pattern)

let parse_params st =
  expect st Tlparen;
  let rec loop acc =
    match peek st with
    | Tvar p -> (
      advance st;
      match peek st with
      | Tcomma ->
        advance st;
        loop (p :: acc)
      | _ -> List.rev (p :: acc))
    | t -> raise (Parse_error ("expected a template parameter ($name) but found " ^ pp_token t))
  in
  let params = loop [] in
  expect st Trparen;
  params

let parse_args st =
  expect st Tlparen;
  let one () =
    match peek st with
    | Tstring s ->
      advance st;
      s
    | Tident s ->
      advance st;
      s
    | t -> raise (Parse_error ("expected an instantiation argument but found " ^ pp_token t))
  in
  let rec loop acc =
    let a = one () in
    match peek st with
    | Tcomma ->
      advance st;
      loop (a :: acc)
    | _ -> List.rev (a :: acc)
  in
  let args = loop [] in
  expect st Trparen;
  args

let parse_file src =
  let st = { toks = tokenize src } in
  let templates = ref [] in
  let instances = ref [] in
  let template_of name = List.find_opt (fun t -> t.Ast.tname = name) !templates in
  let extra = function
    | Tident "template" ->
      advance st;
      let tname =
        match peek st with
        | Tident n ->
          advance st;
          n
        | t -> raise (Parse_error ("expected a template name but found " ^ pp_token t))
      in
      if template_of tname <> None then raise (Parse_error ("duplicate template: " ^ tname));
      let tparams = parse_params st in
      let dup = Hashtbl.create 4 in
      List.iter
        (fun p ->
          if Hashtbl.mem dup p then
            raise (Parse_error ("duplicate parameter $" ^ p ^ " of template " ^ tname));
          Hashtbl.replace dup p ())
        tparams;
      expect st Tlbrace;
      let tdecls, tpattern = parse_stmts st ~stop:Trbrace ~extra:(fun _ -> false) in
      expect st Trbrace;
      (match tpattern with
      | None ->
        raise (Parse_error ("template " ^ tname ^ " is missing its pattern := ... statement"))
      | Some tpattern ->
        validate tdecls tpattern;
        templates := !templates @ [ { Ast.tname; tparams; tdecls; tpattern } ]);
      true
    | Tident "instantiate" ->
      advance st;
      let iname =
        match peek st with
        | Tident n ->
          advance st;
          n
        | t -> raise (Parse_error ("expected a template name but found " ^ pp_token t))
      in
      let iargs = parse_args st in
      expect st Tsemi;
      (match template_of iname with
      | None -> raise (Parse_error ("instantiate of undefined template: " ^ iname))
      | Some tpl ->
        let np = List.length tpl.Ast.tparams and na = List.length iargs in
        if np <> na then
          raise
            (Parse_error
               (Printf.sprintf "template %s expects %d argument%s, got %d" iname np
                  (if np = 1 then "" else "s")
                  na)));
      instances := !instances @ [ { Ast.iname; iargs } ];
      true
    | _ -> false
  in
  let decls, pattern = parse_stmts st ~stop:Teof ~extra in
  let main =
    match pattern with
    | Some pattern ->
      validate decls pattern;
      Some { Ast.decls; pattern }
    | None ->
      if decls <> [] then raise (Parse_error "missing pattern := ... statement");
      if !templates = [] && !instances = [] then
        raise (Parse_error "missing pattern := ... statement");
      None
  in
  { Ast.templates = !templates; instances = !instances; main }

let parse src =
  let f = parse_file src in
  if f.Ast.templates <> [] || f.Ast.instances <> [] then
    raise
      (Parse_error
         "this source declares pattern templates; use Parser.parse_file (and Compile.compile_file)");
  match f.Ast.main with
  | Some t -> t
  | None -> raise (Parse_error "missing pattern := ... statement")

let parse_expr src =
  let st = { toks = tokenize src } in
  let e = parse_expr_toks st in
  expect st Teof;
  e
