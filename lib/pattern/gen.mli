(** Random but well-formed pattern ASTs for the differential fuzzer.

    Everything is driven by an explicit {!Ocep_base.Prng.t}, so a
    generated pattern is a pure function of the seed. The shapes are the
    ones the compiler accepts and the paper's case studies use: a single
    occurrence, one binary operator, a variable-linked chain, or a
    conjunction of independent pairs — over classes whose attribute
    specs mix exact strings, wildcards and shared [$p]/[$d] variables.
    Operators are drawn from [->], [||] and [<>]. Leaf counts are
    weighted heavily toward the small patterns the brute-force oracle
    can enumerate, with an occasional chain up to [max_leaves] (callers
    pass at most {!Compile.max_leaves}; the compiler still enforces its
    own ceiling). *)

open Ocep_base

(** The attribute alphabet patterns draw from. Generating it alongside
    the workload keeps patterns and event streams speaking about the
    same processes, types and texts — otherwise almost every random
    pattern would be trivially unsatisfiable. *)
type universe = {
  u_traces : string array;
  u_etypes : string array;
  u_texts : string array;
}

val universe : Prng.t -> trace_names:string array -> universe
(** A random alphabet: 3–5 event types, 2–3 texts, the given traces. *)

val pattern : Prng.t -> universe -> max_leaves:int -> Ast.t
(** A random pattern with 1..[max_leaves] leaves ([max_leaves >= 1];
    values above {!Compile.max_leaves} are pointless — compilation of
    such a draw raises). The result round-trips through {!Ast.pp} and
    {!Parser.parse} and compiles, except for the rare draw rejected by
    the compiler (e.g. a 63-leaf chain when [max_leaves] allows it) —
    fuzzing callers regenerate on [Compile_error]. *)

val registry : Prng.t -> universe -> max_leaves:int -> Ast.file
(** A random template-instantiated registry: one template whose [$arg]
    parameter replaces the text attribute of one class of a {!pattern}
    draw, instantiated at 2–3 distinct text bindings (occasionally with
    a duplicate instantiation, which {!Compile.expand_file} must
    collapse), sometimes alongside an independent plain pattern. Round
    trips through {!Ast.pp_file} and {!Parser.parse_file}; same
    rejection caveat as {!pattern}. *)
