type health = Serving | Not_serving of string

type t = {
  fd : Unix.file_descr;
  port : int;
  mu : Mutex.t;
  mutable metrics_body : string;
  mutable snapshot_body : string;
  mutable health : health;
  mutable ready : bool;
  mutable stopping : bool;
  mutable thread : Thread.t option;
}

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
    | _ | (exception Not_found) ->
      invalid_arg (Printf.sprintf "Serve.start: cannot resolve host %s" host))

let write_all fd s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write fd b !off (n - !off) in
    if w <= 0 then raise Exit;
    off := !off + w
  done

let reason_of = function
  | 200 -> "OK"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let respond fd ?(head = false) ~status ~ctype body =
  let hdr =
    Printf.sprintf
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      status (reason_of status) ctype (String.length body)
  in
  write_all fd (if head then hdr else hdr ^ body)

(* Read until the end of the request head (CRLFCRLF) or a size cap; the
   request body, if any, is ignored — every route is a plain GET. *)
let read_head fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 8192 then Buffer.contents buf
    else begin
      let n = try Unix.read fd chunk 0 (Bytes.length chunk) with _ -> 0 in
      if n <= 0 then Buffer.contents buf
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        let rec has_end i =
          if i + 3 >= String.length s then false
          else
            (s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n')
            || has_end (i + 1)
        in
        if has_end 0 then s else go ()
      end
    end
  in
  go ()

let parse_request head =
  match String.index_opt head '\n' with
  | None -> None
  | Some eol -> (
    let line = String.trim (String.sub head 0 eol) in
    match String.split_on_char ' ' line with
    | meth :: path :: _ -> Some (meth, path)
    | _ -> None)

let index_body =
  "ocep telemetry endpoints:\n\
   /metrics       Prometheus text exposition\n\
   /snapshot.json JSON metrics snapshot\n\
   /healthz       liveness (200 while the engine is serving)\n\
   /readyz        readiness (200 once the engine accepts events)\n"

let handle t client =
  (try Unix.setsockopt_float client Unix.SO_RCVTIMEO 5.0 with _ -> ());
  (try Unix.setsockopt_float client Unix.SO_SNDTIMEO 5.0 with _ -> ());
  match parse_request (read_head client) with
  | None -> ()
  | Some (meth, path) -> (
    let head =
      match meth with
      | "GET" -> false
      | "HEAD" -> true
      | _ ->
        respond client ~status:405 ~ctype:"text/plain" "only GET is supported\n";
        raise Exit
    in
    let path = match String.index_opt path '?' with
      | Some q -> String.sub path 0 q
      | None -> path
    in
    Mutex.lock t.mu;
    let metrics_body = t.metrics_body
    and snapshot_body = t.snapshot_body
    and health = t.health
    and ready = t.ready in
    Mutex.unlock t.mu;
    match path with
    | "/metrics" ->
      respond client ~head ~status:200 ~ctype:"text/plain; version=0.0.4" metrics_body
    | "/snapshot.json" -> respond client ~head ~status:200 ~ctype:"application/json" snapshot_body
    | "/healthz" -> (
      match health with
      | Serving -> respond client ~head ~status:200 ~ctype:"text/plain" "ok\n"
      | Not_serving why ->
        respond client ~head ~status:503 ~ctype:"text/plain" (Printf.sprintf "unhealthy: %s\n" why))
    | "/readyz" ->
      if ready then respond client ~head ~status:200 ~ctype:"text/plain" "ready\n"
      else respond client ~head ~status:503 ~ctype:"text/plain" "not ready\n"
    | "/" -> respond client ~head ~status:200 ~ctype:"text/plain" index_body
    | _ -> respond client ~head ~status:404 ~ctype:"text/plain" "not found\n")

(* Accept loop: a short select timeout keeps [stop] prompt without
   closing the listening socket under a blocked accept. Connections are
   handled inline — scrapes are small, rare and read prerendered
   strings, so a second thread per connection buys nothing. *)
let rec accept_loop t =
  if not t.stopping then begin
    (match Unix.select [ t.fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept t.fd with
      | client, _ ->
        (try handle t client with _ -> ());
        (try Unix.close client with _ -> ())
      | exception _ -> ())
    | exception _ -> ());
    accept_loop t
  end

let start ?(host = "127.0.0.1") ~port () =
  let addr = resolve host in
  let fd = Unix.socket (Unix.domain_of_sockaddr (Unix.ADDR_INET (addr, port))) Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try Unix.bind fd (Unix.ADDR_INET (addr, port))
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  Unix.listen fd 16;
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  let t =
    {
      fd;
      port;
      mu = Mutex.create ();
      metrics_body = "";
      snapshot_body = "{}\n";
      health = Not_serving "starting";
      ready = false;
      stopping = false;
      thread = None;
    }
  in
  t.thread <- Some (Thread.create accept_loop t);
  t

let port t = t.port

let publish t ~metrics ~snapshot =
  Mutex.lock t.mu;
  t.metrics_body <- metrics;
  t.snapshot_body <- snapshot;
  Mutex.unlock t.mu

let set_health t h =
  Mutex.lock t.mu;
  t.health <- h;
  Mutex.unlock t.mu

let set_ready t r =
  Mutex.lock t.mu;
  t.ready <- r;
  Mutex.unlock t.mu

let stop t =
  if not t.stopping then begin
    t.stopping <- true;
    (match t.thread with Some th -> Thread.join th | None -> ());
    t.thread <- None;
    try Unix.close t.fd with _ -> ()
  end

(* Minimal HTTP/1.0 client for the polling views and tests; same
   zero-dependency constraint as the server. *)
let http_get ?(timeout_s = 5.0) ~host ~port ~path () =
  let addr = resolve host in
  let fd = Unix.socket (Unix.domain_of_sockaddr (Unix.ADDR_INET (addr, port))) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s with _ -> ());
      (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s with _ -> ());
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      write_all fd (Printf.sprintf "GET %s HTTP/1.0\r\nHost: %s\r\nConnection: close\r\n\r\n" path host);
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = try Unix.read fd chunk 0 (Bytes.length chunk) with _ -> 0 in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      let raw = Buffer.contents buf in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> ( try int_of_string (String.trim code) with _ -> 0)
        | _ -> 0
      in
      let body =
        let n = String.length raw in
        let rec find i =
          if i + 3 >= n then n
          else if raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r' && raw.[i + 3] = '\n'
          then i + 4
          else find (i + 1)
        in
        let start = find 0 in
        String.sub raw start (n - start)
      in
      (status, body))
