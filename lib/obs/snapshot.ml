module Histogram = Ocep_stats.Histogram

(* "name{worker=\"3\"}" -> base "name", labels "{worker=\"3\"}" *)
let split_labels name =
  match String.index_opt name '{' with
  | None -> (name, "")
  | Some i -> (String.sub name 0 i, String.sub name i (String.length name - i))

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

(* metric names with inline labels contain quotes; escape them in JSON keys *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prometheus m =
  let b = Buffer.create 1024 in
  let seen_family : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let family base help kind =
    if not (Hashtbl.mem seen_family base) then begin
      Hashtbl.replace seen_family base ();
      if help <> "" then Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" base help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" base kind)
    end
  in
  List.iter
    (fun (it : Metrics.item) ->
      let base, labels = split_labels it.Metrics.name in
      match it.Metrics.value with
      | Metrics.Counter v ->
        family base it.Metrics.help "counter";
        Buffer.add_string b (Printf.sprintf "%s%s %d\n" base labels v)
      | Metrics.Gauge v ->
        family base it.Metrics.help "gauge";
        Buffer.add_string b (Printf.sprintf "%s%s %s\n" base labels (fmt_float v))
      | Metrics.Hist h ->
        family base it.Metrics.help "histogram";
        (* _bucket carries the instrument's own labels plus le: strip the
           braces off [labels] and splice le into the same label set, so a
           labelled histogram doesn't collide with its unlabelled sibling *)
        let bucket le =
          if labels = "" then Printf.sprintf "{le=\"%s\"}" le
          else Printf.sprintf "%s,le=\"%s\"}" (String.sub labels 0 (String.length labels - 1)) le
        in
        let cum = ref 0 in
        let inf_emitted = ref false in
        Histogram.iter_nonempty h (fun ~upper ~rep:_ ~count ->
            cum := !cum + count;
            let le =
              if upper = infinity then begin
                inf_emitted := true;
                "+Inf"
              end
              else fmt_float upper
            in
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" base (bucket le) !cum));
        if not !inf_emitted then
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" base (bucket "+Inf") (Histogram.count h));
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %s\n" base labels (fmt_float (Histogram.sum h)));
        Buffer.add_string b (Printf.sprintf "%s_count%s %d\n" base labels (Histogram.count h)))
    (Metrics.items m);
  Buffer.contents b

let json m =
  let b = Buffer.create 1024 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (it : Metrics.item) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": " (json_escape it.Metrics.name));
      match it.Metrics.value with
      | Metrics.Counter v -> Buffer.add_string b (string_of_int v)
      | Metrics.Gauge v -> Buffer.add_string b (fmt_float v)
      | Metrics.Hist h ->
        if Histogram.count h = 0 then Buffer.add_string b "{\"count\": 0}"
        else begin
          let t = Histogram.tail h in
          Buffer.add_string b
            (Printf.sprintf
               "{\"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \"mean\": %s, \
                \"p50\": %s, \"p95\": %s, \"p99\": %s, \"p999\": %s}"
               (Histogram.count h)
               (fmt_float (Histogram.sum h))
               (fmt_float (Histogram.min_value h))
               (fmt_float (Histogram.max_value h))
               (fmt_float (Histogram.mean h))
               (fmt_float t.Histogram.p50) (fmt_float t.Histogram.p95)
               (fmt_float t.Histogram.p99) (fmt_float t.Histogram.p999))
        end)
    (Metrics.items m);
  Buffer.add_char b '}';
  Buffer.contents b
