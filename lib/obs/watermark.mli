(** Pipeline watermarks and per-stage latency attribution for the
    ingest path (wire decode → bounded queue → admission reorder buffer
    → engine match).

    A stage's {e low watermark} is the highest wire record id that has
    fully passed the stage — every lower id has also passed (or has
    been definitively dropped and charged to an admission counter).
    Decode may observe ids out of order under fault injection, but every
    id passes it eventually, so its running max is exact; admission
    releases records in ascending id order by construction, making the
    last released id the admit watermark, and likewise for match.

    The gap between the decode and admit watermarks is the ingest lag:
    records decoded but still sitting in the queue or the reorder
    buffer.

    All instruments register into the supplied {!Metrics} registry:

    - [ocep_watermark{stage="decode"|"admit"|"match"}] gauges (-1 until
      the first record passes),
    - [ocep_ingest_lag_records] and [ocep_reorder_depth] gauges,
    - [ocep_stage_latency_us{stage="decode"|"queue"|"admit"|"match"}]
      histograms: wire-frame decode time, bounded-queue residency
      (pipelined replay only), reorder-buffer residency, and the
      engine's per-record dispatch-to-done match time.

    Not thread-safe: observe from the domain that owns the registry
    (the ingesting domain), like every other instrument. *)

type t

val create : Metrics.t -> t
(** Register the watermark instruments into the registry (idempotent
    per registry, like all registrations). *)

val observe_decode : t -> id:int -> dur_us:float -> unit
(** A wire record finished decoding: advance the decode watermark and
    record the frame's read+decode time. *)

val observe_queue : t -> dur_us:float -> unit
(** A record spent [dur_us] in the bounded hand-off queue. *)

val observe_admit : t -> id:int -> dur_us:float -> unit
(** Admission released record [id]; [dur_us] is its reorder-buffer
    residency (admission entry → release). *)

val observe_match : t -> id:int -> dur_us:float -> unit
(** The engine finished processing record [id]; [dur_us] covers
    dispatch → search completion. *)

val advance_decode : t -> id:int -> unit
val advance_admit : t -> id:int -> unit

val advance_match : t -> id:int -> unit
(** Tracker-only variants of the observers for the unsampled records of
    a stamping pipeline: the in-memory watermarks ({!decode_watermark}
    etc.) and {!lag} stay exact on every record while the latency
    histograms fill from the sampled subset ({!Ocep_ingest.Source}
    stamps full timing on one record in 64). A compare and at most one
    int store per call — no clock reads, no histogram update, and no
    gauge write: the published gauges catch up at the next [observe_*]
    or {!sync}. *)

val sync : t -> unit
(** Publish the current watermark trackers and lag into their gauges.
    Every [observe_*] syncs; pipelines that run long unsampled streaks
    call it at publish points so a scrape never lags the stream by more
    than a sample window. *)

val set_depth : t -> int -> unit
(** Current reorder-buffer depth (from the admission layer's [on_depth]
    callback). *)

val decode_watermark : t -> int
(** Highest record id decoded; -1 before the first. *)

val admit_watermark : t -> int
(** Highest record id released by admission; -1 before the first. *)

val match_watermark : t -> int
(** Highest record id fully processed by the engine; -1 before the
    first. *)

val lag : t -> int
(** [decode_watermark - admit_watermark], clamped at 0. *)

val decode_latency : t -> Ocep_stats.Histogram.t
val queue_latency : t -> Ocep_stats.Histogram.t
val admit_latency : t -> Ocep_stats.Histogram.t
val match_latency : t -> Ocep_stats.Histogram.t
