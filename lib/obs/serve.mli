(** Minimal dependency-free HTTP/1.0 telemetry listener.

    One background thread accepts connections and serves four routes
    from {e prerendered} strings:

    - [/metrics] — Prometheus text exposition,
    - [/snapshot.json] — JSON metrics snapshot,
    - [/healthz] — liveness: 200 while {!set_health} last said
      [Serving], 503 with the reason otherwise,
    - [/readyz] — readiness: 200 once {!set_ready} was given [true].

    The server never touches the metrics registry itself: the driving
    loop renders {!Snapshot.prometheus}/{!Snapshot.json} on its own
    domain and hands the strings over with {!publish} (double-buffered
    under a mutex). That keeps the registry single-domain, as its
    contract requires, and makes a scrape a pure string write — a
    scrape can never observe a half-updated histogram or race a
    registration. Scrapes between publishes see the previous snapshot.

    HTTP/1.0, one request per connection, GET/HEAD only; anything else
    gets 405, unknown paths 404. *)

type t

type health = Serving | Not_serving of string

val start : ?host:string -> port:int -> unit -> t
(** Bind and start the accept thread. [host] defaults to [127.0.0.1];
    [port] 0 asks the OS for a free port (see {!port}). Raises
    [Unix.Unix_error] if the address cannot be bound and
    [Invalid_argument] if [host] does not resolve. *)

val port : t -> int
(** The actually bound port (useful with [port:0]). *)

val publish : t -> metrics:string -> snapshot:string -> unit
(** Atomically replace the bodies served at [/metrics] and
    [/snapshot.json]. *)

val set_health : t -> health -> unit

val set_ready : t -> bool -> unit

val stop : t -> unit
(** Stop accepting, join the thread, close the socket. Idempotent. *)

val http_get :
  ?timeout_s:float -> host:string -> port:int -> path:string -> unit -> int * string
(** Minimal blocking HTTP/1.0 GET returning (status, body); status 0 if
    the response could not be parsed. For the [ocep top] poller and the
    tests — not a general client. *)
