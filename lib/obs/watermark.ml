module Histogram = Ocep_stats.Histogram

type t = {
  g_decode : Metrics.gauge;
  g_admit : Metrics.gauge;
  g_match : Metrics.gauge;
  g_lag : Metrics.gauge;
  g_depth : Metrics.gauge;
  h_decode : Histogram.t;
  h_queue : Histogram.t;
  h_admit : Histogram.t;
  h_match : Histogram.t;
  mutable decode_high : int;
  mutable admit_low : int;
  mutable match_low : int;
}

let stage_label name = Metrics.with_labels "ocep_stage_latency_us" [ ("stage", name) ]

let wm_label name = Metrics.with_labels "ocep_watermark" [ ("stage", name) ]

let create metrics =
  let wm_help =
    "Pipeline watermark: highest wire record id fully past the stage \
     (every lower id has also passed)"
  in
  let stage_help = "Per-stage pipeline latency (microseconds)" in
  let g_decode = Metrics.gauge metrics ~help:wm_help (wm_label "decode") in
  let g_admit = Metrics.gauge metrics ~help:wm_help (wm_label "admit") in
  let g_match = Metrics.gauge metrics ~help:wm_help (wm_label "match") in
  let g_lag =
    Metrics.gauge metrics
      ~help:"Records decoded but not yet admitted (decode watermark - admit watermark)"
      "ocep_ingest_lag_records"
  in
  let g_depth =
    Metrics.gauge metrics ~help:"Current reorder-buffer depth" "ocep_reorder_depth"
  in
  let h_decode = Metrics.histogram metrics ~help:stage_help (stage_label "decode") in
  let h_queue = Metrics.histogram metrics ~help:stage_help (stage_label "queue") in
  let h_admit = Metrics.histogram metrics ~help:stage_help (stage_label "admit") in
  let h_match = Metrics.histogram metrics ~help:stage_help (stage_label "match") in
  Metrics.set g_decode (-1.);
  Metrics.set g_admit (-1.);
  Metrics.set g_match (-1.);
  {
    g_decode;
    g_admit;
    g_match;
    g_lag;
    g_depth;
    h_decode;
    h_queue;
    h_admit;
    h_match;
    decode_high = -1;
    admit_low = -1;
    match_low = -1;
  }

(* The exact watermark state lives in the plain int fields; the gauges
   are a published view of it, refreshed by {!sync} — called from every
   [observe_*] (the sampled records of a stamping pipeline) and by the
   pipeline at publish points. Writing the gauges from the unsampled
   [advance_*] path would cost a cross-module float store per call on
   the per-record budget for a value nothing reads between scrapes. *)
let sync t =
  Metrics.set t.g_decode (float_of_int t.decode_high);
  Metrics.set t.g_admit (float_of_int t.admit_low);
  Metrics.set t.g_match (float_of_int t.match_low);
  Metrics.set t.g_lag (float_of_int (max 0 (t.decode_high - t.admit_low)))

let observe_decode t ~id ~dur_us =
  (* faults may deliver ids out of order, but every id eventually passes
     decode, so the running max is the exact low watermark of the stage *)
  if id > t.decode_high then t.decode_high <- id;
  Histogram.record t.h_decode dur_us;
  sync t

let observe_queue t ~dur_us = Histogram.record t.h_queue dur_us

let observe_admit t ~id ~dur_us =
  (* admission releases in ascending id order (skipped ids are charged to
     the skip counters, never re-emitted), so the last released id is the
     stage's low watermark *)
  if id > t.admit_low then t.admit_low <- id;
  Histogram.record t.h_admit dur_us;
  sync t

let observe_match t ~id ~dur_us =
  if id > t.match_low then t.match_low <- id;
  Histogram.record t.h_match dur_us;
  sync t

(* Tracker-only advances for the unsampled records of a stamping
   pipeline: the in-memory watermarks and lag stay exact on every
   record; the gauges catch up at the next [observe_*] or {!sync}. *)
let advance_decode t ~id = if id > t.decode_high then t.decode_high <- id

let advance_admit t ~id = if id > t.admit_low then t.admit_low <- id

let advance_match t ~id = if id > t.match_low then t.match_low <- id

let set_depth t depth = Metrics.set t.g_depth (float_of_int depth)

let decode_watermark t = t.decode_high

let admit_watermark t = t.admit_low

let match_watermark t = t.match_low

let lag t = max 0 (t.decode_high - t.admit_low)

let decode_latency t = t.h_decode

let queue_latency t = t.h_queue

let admit_latency t = t.h_admit

let match_latency t = t.h_match
