type arg = Int of int | Float of float | Str of string

type span = {
  name : string;
  cat : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  args : (string * arg) list;
}

(* The ring is a structure of arrays so that a record is a handful of
   array stores and nothing else: the float columns are flat (unboxed)
   float arrays, the int columns hold immediates, and the typed argument
   columns below replace the per-span association list the hot path used
   to build. Strings written into the ring are the caller's constants
   (span names, outcome tags), so no column write allocates. *)
type t = {
  cap : int;
  s_name : string array;
  s_cat : string array;
  s_ts : float array;
  s_dur : float array;
  s_tid : int array;
  s_args : (string * arg) list array;  (* generic path only; [] otherwise *)
  (* typed argument columns; -1 / "" mean absent *)
  s_pattern : int array;
  s_leaf : int array;
  s_nodes : int array;
  s_backjumps : int array;
  s_pin_leaf : int array;
  s_pin_trace : int array;
  s_trace : int array;
  s_index : int array;
  s_anchors : int array;
  s_outcome : string array;
  s_etype : string array;
  m : Mutex.t;
  mutable next : int;  (* ring slot of the next write *)
  mutable total : int;  (* spans ever recorded *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  {
    cap = capacity;
    s_name = Array.make capacity "";
    s_cat = Array.make capacity "";
    s_ts = Array.make capacity 0.;
    s_dur = Array.make capacity 0.;
    s_tid = Array.make capacity 0;
    s_args = Array.make capacity [];
    s_pattern = Array.make capacity (-1);
    s_leaf = Array.make capacity (-1);
    s_nodes = Array.make capacity (-1);
    s_backjumps = Array.make capacity (-1);
    s_pin_leaf = Array.make capacity (-1);
    s_pin_trace = Array.make capacity (-1);
    s_trace = Array.make capacity (-1);
    s_index = Array.make capacity (-1);
    s_anchors = Array.make capacity (-1);
    s_outcome = Array.make capacity "";
    s_etype = Array.make capacity "";
    m = Mutex.create ();
    next = 0;
    total = 0;
  }

let capacity t = t.cap

(* Claim the next slot and stamp the common columns; caller holds no
   lock — each writer runs entirely under [t.m]. *)
let begin_slot t ~name ~cat ~ts_us ~dur_us ~tid =
  let i = t.next in
  t.next <- (if i + 1 = t.cap then 0 else i + 1);
  t.total <- t.total + 1;
  t.s_name.(i) <- name;
  t.s_cat.(i) <- cat;
  t.s_ts.(i) <- ts_us;
  t.s_dur.(i) <- dur_us;
  t.s_tid.(i) <- tid;
  i

let record t ~name ~cat ~ts_us ~dur_us ~tid ~args =
  Mutex.lock t.m;
  let i = begin_slot t ~name ~cat ~ts_us ~dur_us ~tid in
  t.s_args.(i) <- args;
  t.s_pattern.(i) <- -1;
  t.s_trace.(i) <- -1;
  Mutex.unlock t.m

let record_search t ~name ~cat ~ts_us ~dur_us ~tid ~pattern ~anchor_leaf ~nodes ~backjumps
    ~outcome ~pin_leaf ~pin_trace =
  Mutex.lock t.m;
  let i = begin_slot t ~name ~cat ~ts_us ~dur_us ~tid in
  t.s_args.(i) <- [];
  t.s_pattern.(i) <- pattern;
  t.s_leaf.(i) <- anchor_leaf;
  t.s_nodes.(i) <- nodes;
  t.s_backjumps.(i) <- backjumps;
  t.s_outcome.(i) <- outcome;
  t.s_pin_leaf.(i) <- pin_leaf;
  t.s_pin_trace.(i) <- pin_trace;
  t.s_trace.(i) <- -1;
  Mutex.unlock t.m

let record_arrival t ~ts_us ~dur_us ~tid ~trace ~index ~etype ~anchors =
  Mutex.lock t.m;
  let i = begin_slot t ~name:"arrival" ~cat:"engine" ~ts_us ~dur_us ~tid in
  t.s_args.(i) <- [];
  t.s_pattern.(i) <- -1;
  t.s_trace.(i) <- trace;
  t.s_index.(i) <- index;
  t.s_etype.(i) <- etype;
  t.s_anchors.(i) <- anchors;
  Mutex.unlock t.m

let length t = min t.total t.cap

let recorded t = t.total

let dropped t = max 0 (t.total - t.cap)

(* Materialize slot [i]'s arguments as the association list the old
   per-span representation carried, in the same key order. *)
let args_of t i =
  match t.s_args.(i) with
  | (_ :: _) as l -> l
  | [] ->
    if t.s_pattern.(i) >= 0 then begin
      let base =
        [
          ("pattern", Int t.s_pattern.(i));
          ("anchor_leaf", Int t.s_leaf.(i));
          ("nodes", Int t.s_nodes.(i));
          ("backjumps", Int t.s_backjumps.(i));
          ("outcome", Str t.s_outcome.(i));
        ]
      in
      if t.s_pin_leaf.(i) >= 0 then
        ("pin_leaf", Int t.s_pin_leaf.(i)) :: ("pin_trace", Int t.s_pin_trace.(i)) :: base
      else base
    end
    else if t.s_trace.(i) >= 0 then
      [
        ("trace", Int t.s_trace.(i));
        ("index", Int t.s_index.(i));
        ("etype", Str t.s_etype.(i));
        ("anchors", Int t.s_anchors.(i));
      ]
    else []

let span_of t i =
  {
    name = t.s_name.(i);
    cat = t.s_cat.(i);
    ts_us = t.s_ts.(i);
    dur_us = t.s_dur.(i);
    tid = t.s_tid.(i);
    args = args_of t i;
  }

let spans t =
  Mutex.lock t.m;
  let n = min t.total t.cap in
  (* oldest retained span sits at [next] once the ring has wrapped *)
  let first = if t.total > t.cap then t.next else 0 in
  let out = List.init n (fun i -> span_of t ((first + i) mod t.cap)) in
  Mutex.unlock t.m;
  out

let escape_json s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let arg_json = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> Printf.sprintf "\"%s\"" (escape_json s)

let dump oc t =
  let all = spans t in
  output_string oc "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  List.iteri
    (fun i s ->
      if i > 0 then output_string oc ",";
      Printf.fprintf oc
        "\n  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, \
         \"pid\": 0, \"tid\": %d, \"args\": {"
        (escape_json s.name) (escape_json s.cat) s.ts_us s.dur_us s.tid;
      List.iteri
        (fun j (k, v) ->
          if j > 0 then output_string oc ", ";
          Printf.fprintf oc "\"%s\": %s" (escape_json k) (arg_json v))
        s.args;
      output_string oc "}}")
    all;
  Printf.fprintf oc "\n], \"otherData\": {\"spans_recorded\": %d, \"spans_dropped\": %d}}\n"
    (recorded t) (dropped t)
