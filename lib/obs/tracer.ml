type arg = Int of int | Float of float | Str of string

type span = {
  name : string;
  cat : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  args : (string * arg) list;
}

(* slots the ring has not written yet hold this placeholder; [spans]
   never reads them because it only visits the first [total] slots *)
let dummy = { name = ""; cat = ""; ts_us = 0.; dur_us = 0.; tid = 0; args = [] }

type t = {
  cap : int;
  ring : span array;
  m : Mutex.t;
  mutable next : int;  (* ring slot of the next write *)
  mutable total : int;  (* spans ever recorded *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  { cap = capacity; ring = Array.make capacity dummy; m = Mutex.create (); next = 0; total = 0 }

let capacity t = t.cap

let record t ~name ~cat ~ts_us ~dur_us ~tid ~args =
  let span = { name; cat; ts_us; dur_us; tid; args } in
  Mutex.lock t.m;
  t.ring.(t.next) <- span;
  t.next <- (t.next + 1) mod t.cap;
  t.total <- t.total + 1;
  Mutex.unlock t.m

let length t = min t.total t.cap

let recorded t = t.total

let dropped t = max 0 (t.total - t.cap)

let spans t =
  Mutex.lock t.m;
  let n = min t.total t.cap in
  (* oldest retained span sits at [next] once the ring has wrapped *)
  let first = if t.total > t.cap then t.next else 0 in
  let out = List.init n (fun i -> t.ring.((first + i) mod t.cap)) in
  Mutex.unlock t.m;
  out

let escape_json s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let arg_json = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> Printf.sprintf "\"%s\"" (escape_json s)

let dump oc t =
  let all = spans t in
  output_string oc "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
  List.iteri
    (fun i s ->
      if i > 0 then output_string oc ",";
      Printf.fprintf oc
        "\n  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, \
         \"pid\": 0, \"tid\": %d, \"args\": {"
        (escape_json s.name) (escape_json s.cat) s.ts_us s.dur_us s.tid;
      List.iteri
        (fun j (k, v) ->
          if j > 0 then output_string oc ", ";
          Printf.fprintf oc "\"%s\": %s" (escape_json k) (arg_json v))
        s.args;
      output_string oc "}}")
    all;
  Printf.fprintf oc "\n], \"otherData\": {\"spans_recorded\": %d, \"spans_dropped\": %d}}\n"
    (recorded t) (dropped t)
