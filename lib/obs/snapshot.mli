(** Exposition of a {!Metrics} registry: Prometheus text format and
    one-line JSON, both pure functions of the registry's current values
    so they can be rendered repeatedly {e during} a run (the
    [--metrics-every] flag) as well as at the end. *)

val prometheus : Metrics.t -> string
(** Prometheus text exposition format ([# HELP]/[# TYPE] once per metric
    family; histograms as cumulative [_bucket{le="…"}] lines over the
    non-empty bucket edges plus [+Inf], [_sum] and [_count]). *)

val json : Metrics.t -> string
(** One JSON object on a single line (no trailing newline): counters and
    gauges as numbers, histograms as
    [{"count", "sum", "min", "max", "mean", "p50", "p95", "p99",
    "p999"}] (only ["count"] when empty). *)
