type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string

type state = { s : string; mutable pos : int }

let fail st msg = raise (Error (Printf.sprintf "%s at byte %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let utf8_of_code b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char b '"'; advance st
      | Some '\\' -> Buffer.add_char b '\\'; advance st
      | Some '/' -> Buffer.add_char b '/'; advance st
      | Some 'n' -> Buffer.add_char b '\n'; advance st
      | Some 't' -> Buffer.add_char b '\t'; advance st
      | Some 'r' -> Buffer.add_char b '\r'; advance st
      | Some 'b' -> Buffer.add_char b '\b'; advance st
      | Some 'f' -> Buffer.add_char b '\012'; advance st
      | Some 'u' ->
        advance st;
        if st.pos + 4 > String.length st.s then fail st "truncated \\u escape";
        let hex = String.sub st.s st.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex) with _ -> fail st "bad \\u escape"
        in
        st.pos <- st.pos + 4;
        utf8_of_code b code
      | _ -> fail st "bad escape");
      go ()
    | Some c ->
      Buffer.add_char b c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let numchar = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> numchar c | None -> false) do
    advance st
  done;
  if st.pos = start then fail st "expected a number";
  match float_of_string_opt (String.sub st.s start (st.pos - start)) with
  | Some f -> Num f
  | None -> fail st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ((k, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((k, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      Arr (elements [])
    end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then Result.Error "trailing garbage"
    else Result.Ok v
  | exception Error msg -> Result.Error msg

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_num = function
  | Num f -> Some f
  | _ -> None

let to_str = function
  | Str s -> Some s
  | _ -> None
