(** Minimal JSON parser for the telemetry plane's own documents — the
    snapshot the server publishes and the poller ([ocep top]) reads
    back, plus test-side validation of every JSON artifact. Strict
    (whole-input, no trailing garbage), recursive-descent, zero
    dependencies. Not a general-purpose JSON library: numbers are
    [float], object keys keep document order, duplicate keys are kept
    (lookup returns the first). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result

val member : string -> t -> t option
(** First value under the key of an [Obj]; [None] on anything else. *)

val to_num : t -> float option
val to_str : t -> string option
