module Histogram = Ocep_stats.Histogram

type counter = int ref

(* A single-mutable-float record keeps the value unboxed, so [set] is
   one store — no float box, no write barrier. A [float ref] would
   allocate on every set, and gauges sit on the per-record hot path
   (watermarks and lag move on every wire record). *)
type gauge = { mutable g_v : float }

type instrument = C of counter | G of gauge | H of Histogram.t

type registered = { r_help : string; r_instr : instrument }

type t = {
  tbl : (string, registered) Hashtbl.t;
  mutable order_rev : string list;  (* registration order, for stable exposition *)
}

let create () = { tbl = Hashtbl.create 32; order_rev = [] }

(* Label values go inside double quotes in the Prometheus text format,
   which reserves exactly three characters: backslash, double quote and
   newline. Pattern-derived values (file names, user-supplied pattern
   names) can contain any of them. *)
let escape_label_value s =
  let n = String.length s in
  let rec clean i = i >= n || (match s.[i] with '\\' | '"' | '\n' -> false | _ -> clean (i + 1)) in
  if clean 0 then s
  else begin
    let b = Buffer.create (n + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let with_labels name labels =
  match labels with
  | [] -> name
  | _ ->
    let b = Buffer.create (String.length name + 16) in
    Buffer.add_string b name;
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b k;
        Buffer.add_string b "=\"";
        Buffer.add_string b (escape_label_value v);
        Buffer.add_char b '"')
      labels;
    Buffer.add_char b '}';
    Buffer.contents b

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register t ~help name make =
  match Hashtbl.find_opt t.tbl name with
  | Some r -> r.r_instr
  | None ->
    let instr = make () in
    Hashtbl.replace t.tbl name { r_help = help; r_instr = instr };
    t.order_rev <- name :: t.order_rev;
    instr

let counter t ?(help = "") name =
  match register t ~help name (fun () -> C (ref 0)) with
  | C c -> c
  | other ->
    invalid_arg
      (Printf.sprintf "Metrics.counter: %s is already a %s" name (kind_name other))

let gauge t ?(help = "") name =
  match register t ~help name (fun () -> G { g_v = 0. }) with
  | G g -> g
  | other ->
    invalid_arg (Printf.sprintf "Metrics.gauge: %s is already a %s" name (kind_name other))

let histogram t ?(help = "") name =
  match register t ~help name (fun () -> H (Histogram.create ())) with
  | H h -> h
  | other ->
    invalid_arg
      (Printf.sprintf "Metrics.histogram: %s is already a %s" name (kind_name other))

let incr c ?(by = 1) () =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  c := !c + by

let set_counter c v =
  if v < 0 then invalid_arg "Metrics.set_counter: negative total";
  c := v

let counter_value c = !c

let set g v = g.g_v <- v

let gauge_value g = g.g_v

type value = Counter of int | Gauge of float | Hist of Histogram.t

type item = { name : string; help : string; value : value }

let items t =
  List.rev_map
    (fun name ->
      let r = Hashtbl.find t.tbl name in
      let value =
        match r.r_instr with C c -> Counter !c | G g -> Gauge g.g_v | H h -> Hist h
      in
      { name; help = r.r_help; value })
    t.order_rev
