module Histogram = Ocep_stats.Histogram

type counter = int ref
type gauge = float ref

type instrument = C of counter | G of gauge | H of Histogram.t

type registered = { r_help : string; r_instr : instrument }

type t = {
  tbl : (string, registered) Hashtbl.t;
  mutable order_rev : string list;  (* registration order, for stable exposition *)
}

let create () = { tbl = Hashtbl.create 32; order_rev = [] }

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register t ~help name make =
  match Hashtbl.find_opt t.tbl name with
  | Some r -> r.r_instr
  | None ->
    let instr = make () in
    Hashtbl.replace t.tbl name { r_help = help; r_instr = instr };
    t.order_rev <- name :: t.order_rev;
    instr

let counter t ?(help = "") name =
  match register t ~help name (fun () -> C (ref 0)) with
  | C c -> c
  | other ->
    invalid_arg
      (Printf.sprintf "Metrics.counter: %s is already a %s" name (kind_name other))

let gauge t ?(help = "") name =
  match register t ~help name (fun () -> G (ref 0.)) with
  | G g -> g
  | other ->
    invalid_arg (Printf.sprintf "Metrics.gauge: %s is already a %s" name (kind_name other))

let histogram t ?(help = "") name =
  match register t ~help name (fun () -> H (Histogram.create ())) with
  | H h -> h
  | other ->
    invalid_arg
      (Printf.sprintf "Metrics.histogram: %s is already a %s" name (kind_name other))

let incr c ?(by = 1) () =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  c := !c + by

let set_counter c v =
  if v < 0 then invalid_arg "Metrics.set_counter: negative total";
  c := v

let counter_value c = !c

let set g v = g := v

let gauge_value g = !g

type value = Counter of int | Gauge of float | Hist of Histogram.t

type item = { name : string; help : string; value : value }

let items t =
  List.rev_map
    (fun name ->
      let r = Hashtbl.find t.tbl name in
      let value =
        match r.r_instr with C c -> Counter !c | G g -> Gauge !g | H h -> Hist h
      in
      { name; help = r.r_help; value })
    t.order_rev
