type verdict =
  | Direct
  | In_order
  | Reordered
  | Deduped
  | Gap_skipped
  | Late
  | Orphaned

let verdict_to_string = function
  | Direct -> "direct"
  | In_order -> "in-order"
  | Reordered -> "reordered"
  | Deduped -> "deduped"
  | Gap_skipped -> "gap-skipped"
  | Late -> "late"
  | Orphaned -> "orphaned"

let verdict_to_int = function
  | Direct -> 0
  | In_order -> 1
  | Reordered -> 2
  | Deduped -> 3
  | Gap_skipped -> 4
  | Late -> 5
  | Orphaned -> 6

let verdict_of_int = function
  | 0 -> Direct
  | 1 -> In_order
  | 2 -> Reordered
  | 3 -> Deduped
  | 4 -> Gap_skipped
  | 5 -> Late
  | 6 -> Orphaned
  | n -> invalid_arg (Printf.sprintf "Provenance.verdict_of_int: %d" n)

let admitted = function
  | Direct | In_order | Reordered -> true
  | Deduped | Gap_skipped | Late | Orphaned -> false
