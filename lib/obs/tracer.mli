(** Search-span tracing into a bounded ring buffer, dumpable as Chrome
    [trace_event] JSON (loadable by chrome://tracing and Perfetto).

    A span is one completed unit of engine work — a terminating arrival,
    an anchored or pinned search, a worker's drain of a fan-out batch —
    with a name, a category, a wall-clock interval and a few typed
    arguments. Spans are recorded after the fact (one call per span, no
    open/close pairing) into a fixed-capacity ring: memory is
    O(capacity) and an always-on tracer over a ≥1M-event run simply
    keeps the most recent spans, counting what it overwrote.

    Recording is thread-safe (a mutex around the ring slot), so worker
    domains of the search pool record their spans directly, tagged with
    their own domain id as the [tid]. *)

type arg = Int of int | Float of float | Str of string

type span = {
  name : string;
  cat : string;
  ts_us : float;  (** start, µs on the monotonic clock *)
  dur_us : float;
  tid : int;  (** domain id of the recording domain *)
  args : (string * arg) list;
}

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : t -> int

val record :
  t ->
  name:string ->
  cat:string ->
  ts_us:float ->
  dur_us:float ->
  tid:int ->
  args:(string * arg) list ->
  unit

val length : t -> int
(** Spans currently held (≤ capacity). *)

val recorded : t -> int
(** Spans ever recorded. *)

val dropped : t -> int
(** Spans overwritten by the ring ([recorded − length]). *)

val spans : t -> span list
(** Retained spans, oldest first. *)

val dump : out_channel -> t -> unit
(** Write the whole ring as one Chrome [trace_event] JSON object
    ([{"traceEvents": [...]}], complete events, [ph:"X"], one row per
    recording domain). *)
