(** Search-span tracing into a bounded ring buffer, dumpable as Chrome
    [trace_event] JSON (loadable by chrome://tracing and Perfetto).

    A span is one completed unit of engine work — a terminating arrival,
    an anchored or pinned search, a worker's drain of a fan-out batch —
    with a name, a category, a wall-clock interval and a few typed
    arguments. Spans are recorded after the fact (one call per span, no
    open/close pairing) into a fixed-capacity ring: memory is
    O(capacity) and an always-on tracer over a ≥1M-event run simply
    keeps the most recent spans, counting what it overwrote.

    The ring is preallocated as a structure of arrays, so the typed
    entry points ({!record_search}, {!record_arrival}) allocate nothing
    per span — a record is a mutex acquisition plus a dozen array
    stores. The generic {!record} path keeps the old association-list
    arguments for ad-hoc spans off the hot path.

    Recording is thread-safe (a mutex around the ring slot), so worker
    domains of the search pool record their spans directly, tagged with
    their own domain id as the [tid]. *)

type arg = Int of int | Float of float | Str of string

type span = {
  name : string;
  cat : string;
  ts_us : float;  (** start, µs on the monotonic clock *)
  dur_us : float;
  tid : int;  (** domain id of the recording domain *)
  args : (string * arg) list;
}

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : t -> int

val record :
  t ->
  name:string ->
  cat:string ->
  ts_us:float ->
  dur_us:float ->
  tid:int ->
  args:(string * arg) list ->
  unit
(** Generic span with caller-built arguments. Allocation-free only if
    [args] is; prefer the typed entry points on hot paths. *)

val record_search :
  t ->
  name:string ->
  cat:string ->
  ts_us:float ->
  dur_us:float ->
  tid:int ->
  pattern:int ->
  anchor_leaf:int ->
  nodes:int ->
  backjumps:int ->
  outcome:string ->
  pin_leaf:int ->
  pin_trace:int ->
  unit
(** Allocation-free span of an anchored or pinned search. [pin_leaf] and
    [pin_trace] are [-1] for an unpinned search; [outcome] should be a
    constant ("found" / "not_found" / "aborted"). The rendered arguments
    match what the engine used to pass to {!record}. *)

val record_arrival :
  t ->
  ts_us:float ->
  dur_us:float ->
  tid:int ->
  trace:int ->
  index:int ->
  etype:string ->
  anchors:int ->
  unit
(** Allocation-free span of one terminating arrival (name ["arrival"],
    category ["engine"]). *)

val length : t -> int
(** Spans currently held (≤ capacity). *)

val recorded : t -> int
(** Spans ever recorded. *)

val dropped : t -> int
(** Spans overwritten by the ring ([recorded − length]). *)

val spans : t -> span list
(** Retained spans, oldest first, with typed-column arguments
    materialized back into the [args] list. *)

val dump : out_channel -> t -> unit
(** Write the whole ring as one Chrome [trace_event] JSON object
    ([{"traceEvents": [...]}], complete events, [ph:"X"], one row per
    recording domain). *)
