(** Shared vocabulary of the match-provenance plane: what the admission
    layer decided about a wire record. The ingest pipeline stamps one
    verdict per record; admitted records carry theirs (with decode →
    admit → dispatch timestamps) into the engine's flight recorder,
    dropped records are noted in its drop ring. [Direct] marks events
    fed straight into the engine without a wire framing (simulator
    runs, [ocep run]). *)

type verdict =
  | Direct  (** not from the wire: fed by a simulator or trace file *)
  | In_order  (** admitted on the fast path, already in id order *)
  | Reordered  (** held in the reorder buffer, released in order *)
  | Deduped  (** dropped: record id already admitted *)
  | Gap_skipped  (** dropped: id given up on by the [Skip] gap policy *)
  | Late  (** dropped: arrived after its id was gap-skipped *)
  | Orphaned  (** dropped: receive whose matching send never arrived *)

val verdict_to_string : verdict -> string

val verdict_to_int : verdict -> int
(** Stable packing for compact (int-array) storage; inverse of
    {!verdict_of_int}. *)

val verdict_of_int : int -> verdict
(** Raises [Invalid_argument] outside the packed range. *)

val admitted : verdict -> bool
(** Did a record with this verdict reach the engine? *)
