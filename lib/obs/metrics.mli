(** Bounded-memory metrics registry: a fixed set of named counters,
    gauges and log-bucketed histograms ({!Ocep_stats.Histogram}),
    registered once and updated in O(1). Memory is O(instruments +
    histogram buckets) regardless of run length — the always-on,
    low-overhead regime of Dapper-style production telemetry, as opposed
    to the engine's original unbounded per-arrival sample vector.

    Names follow Prometheus conventions ([ocep_events_total], …) and may
    carry an inline label set ([name{worker="3"}]); {!Snapshot} renders
    both expositions. Registering an existing name returns the existing
    instrument; re-registering it as a different kind raises.

    Not thread-safe: register and update from one domain. (The engine
    updates its registry only on the ingesting domain; worker-domain
    activity reaches it through the pool's merged statistics.) *)

type t

type counter
(** Monotone integer. *)

type gauge
(** Arbitrary float, set to the latest value. *)

val create : unit -> t

val escape_label_value : string -> string
(** Escape a label value per the Prometheus text exposition spec:
    backslash, double quote and newline get a backslash escape; every
    other byte passes through. Idempotent only on values without those
    characters — call it exactly once, at label construction. *)

val with_labels : string -> (string * string) list -> string
(** [with_labels "ocep_matches_total" [("pattern", name)]] builds the
    inline-labelled instrument name
    [ocep_matches_total{pattern=<quoted escaped name>}]. Label values
    are escaped with {!escape_label_value}; the result is what should be
    passed to {!counter}/{!gauge}/{!histogram} so that
    {!Snapshot.prometheus} emits valid text format for any value. An
    empty label list returns the name unchanged. *)

val counter : t -> ?help:string -> string -> counter
val gauge : t -> ?help:string -> string -> gauge

val histogram : t -> ?help:string -> string -> Ocep_stats.Histogram.t
(** Registers (or retrieves) a histogram instrument; record samples
    directly through the returned handle. *)

val incr : counter -> ?by:int -> unit -> unit
(** [by] defaults to 1; raises [Invalid_argument] on a negative [by]. *)

val set_counter : counter -> int -> unit
(** Overwrite the counter's cumulative total — for instruments whose
    source of truth is an internal engine counter synced before each
    snapshot rather than incremented in the hot path. Raises
    [Invalid_argument] on a negative total. *)

val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** Snapshot view. *)

type value =
  | Counter of int
  | Gauge of float
  | Hist of Ocep_stats.Histogram.t

type item = { name : string; help : string; value : value }

val items : t -> item list
(** All instruments in registration order, with their current values. *)
