(** One typed knob-set for driving a framed stream into an engine — the
    ingest path's public entry point since the service tier.

    Before this module, assembling a replay meant threading five
    separately-typed knobs ({!Admission.config}, queue capacity, queue
    policy, pipeline flag, block size) plus a CLI-side fault-injection
    dance through every call site. {!config} is the one flat record:
    the CLI's [ocep replay] flags, the service tier's per-tenant
    admission settings and the tests all build it from {!default} and
    override fields by name. {!Source.replay} remains as a deprecated
    shim for one release; new code goes through {!replay}.

    Fault degradation ([faults]/[fault_seed]) lives here too: a faulted
    replay decodes the pristine log, applies the deterministic
    {!Ocep_workloads.Inject.apply_faults} schedule to the frame
    sequence, re-frames it into a temp file and replays that — so the
    degraded stream exercises exactly the same reader and admission
    path as a pristine one. *)

type config = {
  gap_policy : Admission.gap_policy;
  reorder_window : int;  (** max out-of-order frames held by admission; > 0 *)
  pipeline : bool;  (** decode on a dedicated domain, hand over a {!Bqueue} *)
  queue_capacity : int;  (** pipelined mode: frames (or blocks) buffered *)
  queue_policy : Bqueue.policy;
  block_size : int;  (** > 1 decodes and admits in chunks (see {!Source.config}) *)
  faults : Ocep_workloads.Inject.faults;
      (** deterministic transport degradation applied to the frame
          sequence before admission; {!Ocep_workloads.Inject.no_faults}
          streams the input untouched *)
  fault_seed : int;  (** PRNG seed for [faults] *)
}

val default : config
(** [Wait] on gaps, window 1024, no pipeline, queue 4096 [Block],
    block size 1, no faults (seed 7) — byte-for-byte the behavior of
    {!Source.default_config}. *)

val source_config : config -> Source.config
(** The admission/queue/pipeline subset, in {!Source}'s record — what
    the service tier uses to provision each tenant's admission layer. *)

val replay :
  ?config:config ->
  ?tick:(unit -> unit) ->
  ?log:(string -> unit) ->
  engine:Ocep.Engine.t ->
  Framing.reader ->
  Source.stats
(** Drive the reader into the engine under [config]. Without faults
    this is exactly the streaming path (constant memory); with faults
    the whole stream is decoded first (memory O(frames)) and [log], if
    given, receives one line describing the degradation (frame counts
    before and after). [tick] as in {!Source.replay}. Raises
    [Invalid_argument] on a trace-table mismatch and lets
    {!Admission.Gap} escape, like the underlying stream replay. *)
