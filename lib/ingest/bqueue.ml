type policy = Block | Shed

type 'a t = {
  q : 'a Queue.t;
  capacity : int;
  policy : policy;
  lock : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  mutable closed : bool;
  mutable shed : int;
  mutable max_occupancy : int;
}

let create ?(policy = Block) ~capacity () =
  if capacity <= 0 then invalid_arg "Bqueue.create: capacity must be positive";
  {
    q = Queue.create ();
    capacity;
    policy;
    lock = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
    closed = false;
    shed = 0;
    max_occupancy = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let push t x =
  with_lock t @@ fun () ->
  if t.closed then invalid_arg "Bqueue.push: closed";
  match t.policy with
  | Shed when Queue.length t.q >= t.capacity ->
    t.shed <- t.shed + 1;
    false
  | Shed | Block ->
    while Queue.length t.q >= t.capacity && not t.closed do
      Condition.wait t.not_full t.lock
    done;
    if t.closed then invalid_arg "Bqueue.push: closed";
    Queue.push x t.q;
    t.max_occupancy <- max t.max_occupancy (Queue.length t.q);
    Condition.signal t.not_empty;
    true

let pop t =
  with_lock t @@ fun () ->
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.not_empty t.lock
  done;
  if Queue.is_empty t.q then None
  else begin
    let x = Queue.pop t.q in
    Condition.signal t.not_full;
    Some x
  end

let close t =
  with_lock t @@ fun () ->
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full

let length t = with_lock t @@ fun () -> Queue.length t.q
let shed t = with_lock t @@ fun () -> t.shed
let max_occupancy t = with_lock t @@ fun () -> t.max_occupancy
