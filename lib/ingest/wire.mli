(** The wire representation of one event: what crosses the process
    boundary, before POET timestamps it. Symbols travel as strings (the
    receiving POET re-interns them; symbol ids are process-local and
    never serialized), message ids as zigzag varints so both the dense
    range and negative/huge spill-range ids cost proportional to their
    magnitude, and every integer as a LEB128 varint — a 3-attribute
    internal event is typically under 20 bytes.

    On top of {!Event.raw} a wire event carries two delivery-metadata
    fields the admission layer needs: [id], the global record sequence
    number stamped at recording time (dense from 0, the dedup and
    reordering key), and [seq], the event's 1-based position on its own
    trace (its local clock, which becomes [Event.index] after ingest). *)

open Ocep_base

type t = {
  id : int;  (** global record sequence, dense from 0 *)
  trace : int;  (** trace id in the recorder's trace table *)
  seq : int;  (** 1-based position on [trace] — the local clock *)
  etype : string;
  text : string;
  kind : Event.kind;
}

exception Decode_error of string
(** Malformed bytes: truncated varint or string, varint wider than an
    OCaml [int], unknown kind tag, trailing garbage. *)

val encode : Buffer.t -> t -> unit
(** Append the event's wire bytes to the buffer. *)

val decode : Bytes.t -> pos:int -> len:int -> t
(** Decode exactly the slice [pos, pos+len); raises {!Decode_error} if
    the slice does not hold exactly one event. *)

val to_raw : t -> Event.raw
(** Strip the delivery metadata for {!Ocep_poet.Poet.ingest}. *)

val of_raw : id:int -> seq:int -> Event.raw -> t

val pp : Format.formatter -> t -> unit
