(** Bounded multi-domain FIFO with a backpressure policy: the buffer
    between a decoding producer and the (single-domain) engine. [Block]
    makes a full queue stall the producer — lossless, the right default
    when the producer is a file reader. [Shed] makes a full queue drop
    the offered item and count it — the load-shedding stance for live
    sources that must never stall, surfaced as
    [ocep_ingest_queue_shed_total]. *)

type policy = Block | Shed

type 'a t

val create : ?policy:policy -> capacity:int -> unit -> 'a t
(** [policy] defaults to [Block]. Raises [Invalid_argument] on a
    non-positive capacity. *)

val push : 'a t -> 'a -> bool
(** [false] only under [Shed] on a full queue (the item was dropped);
    under [Block] it waits for room. Pushing to a closed queue raises
    [Invalid_argument]. *)

val pop : 'a t -> 'a option
(** Blocks while the queue is empty and open; [None] once it is closed
    {e and} drained. *)

val close : 'a t -> unit
(** Wakes all waiters; idempotent. Items already queued stay poppable. *)

val length : 'a t -> int
val shed : 'a t -> int
(** Items dropped by [Shed] pushes. *)

val max_occupancy : 'a t -> int
(** High-water mark of {!length}. *)
