(** CRC-32 (IEEE 802.3 polynomial, reflected, init/xorout [0xFFFFFFFF]) —
    the checksum guarding each wire frame. Table-driven, pure OCaml, one
    table shared process-wide. Matches zlib's [crc32], so recorded logs
    can be checked with standard tooling. *)

val bytes : Bytes.t -> pos:int -> len:int -> int32
(** Raises [Invalid_argument] on an out-of-bounds slice. *)

val string : string -> int32
(** CRC of a whole string. *)
