open Ocep_base
module Provenance = Ocep_obs.Provenance

type gap_policy = Wait | Skip of int | Fail

type config = { reorder_window : int; gap_policy : gap_policy }

let default_config = { reorder_window = 1024; gap_policy = Wait }

type stats = {
  frames : int;
  admitted : int;
  duplicates : int;
  late : int;
  reordered : int;
  max_depth : int;
  gaps : int;
  trace_gaps : int array;
  orphan_receives : int;
}

exception Gap of string

type t = {
  cfg : config;
  emit : verdict:Provenance.verdict -> decode_us:float -> admit_us:float -> Wire.t -> unit;
  on_depth : int -> unit;
  on_drop : Provenance.verdict -> int -> unit;
  n_traces : int;
  (* reorder buffer, keyed on record id: the frame, its admission-entry
     timestamp, and whether it overtook an earlier id on arrival *)
  pending : (int, Wire.t * float * bool) Hashtbl.t;
  skipped : (int, unit) Hashtbl.t;  (* ids given up on; a late arrival is not a duplicate *)
  (* msg ids whose send was admitted: a byte-map for the dense id range
     (grown on demand, one lookup per receive on the hot path), a
     hashtable for spill-range ids *)
  mutable sent_dense : Bytes.t;
  sent_spill : (int, unit) Hashtbl.t;
  expected_seq : int array;  (* next local-clock position per trace *)
  mutable next_id : int;  (* next record id owed to [emit] *)
  mutable stall : int;  (* frames pushed since the head id went missing *)
  mutable finished : bool;
  mutable frames : int;
  mutable admitted : int;
  mutable duplicates : int;
  mutable late : int;
  mutable reordered : int;
  mutable max_depth : int;
  mutable gaps : int;
  trace_gaps : int array;
  mutable orphan_receives : int;
}

let create ?(config = default_config) ?(on_depth = fun _ -> ())
    ?(on_drop = fun _ _ -> ()) ~n_traces ~emit () =
  if config.reorder_window <= 0 then
    invalid_arg "Admission.create: reorder_window must be positive";
  (match config.gap_policy with
  | Skip n when n < 0 -> invalid_arg "Admission.create: Skip patience must be non-negative"
  | _ -> ());
  {
    cfg = config;
    emit;
    on_depth;
    on_drop;
    n_traces;
    pending = Hashtbl.create 64;
    skipped = Hashtbl.create 16;
    sent_dense = Bytes.empty;
    sent_spill = Hashtbl.create 16;
    expected_seq = Array.make n_traces 1;
    next_id = 0;
    stall = 0;
    finished = false;
    frames = 0;
    admitted = 0;
    duplicates = 0;
    late = 0;
    reordered = 0;
    max_depth = 0;
    gaps = 0;
    trace_gaps = Array.make n_traces 0;
    orphan_receives = 0;
  }

let dense_cap = Ocep_poet.Poet.dense_capacity

let mark_sent t msg =
  if msg >= 0 && msg < dense_cap then begin
    if msg >= Bytes.length t.sent_dense then begin
      let cap = min dense_cap (max 4096 (max (msg + 1) (2 * Bytes.length t.sent_dense))) in
      let grown = Bytes.make cap '\000' in
      Bytes.blit t.sent_dense 0 grown 0 (Bytes.length t.sent_dense);
      t.sent_dense <- grown
    end;
    Bytes.unsafe_set t.sent_dense msg '\001'
  end
  else Hashtbl.replace t.sent_spill msg ()

let was_sent t msg =
  if msg >= 0 && msg < dense_cap then
    msg < Bytes.length t.sent_dense && Bytes.unsafe_get t.sent_dense msg <> '\000'
  else Hashtbl.mem t.sent_spill msg

(* Release one in-order frame. The local-clock jump check attributes
   gap losses to traces, and orphaned receives — whose send was lost —
   are dropped here so POET never sees an unknown message. *)
let release t (e : Wire.t) at_us was_buffered =
  let tr = e.Wire.trace in
  if e.Wire.seq > t.expected_seq.(tr) then
    t.trace_gaps.(tr) <- t.trace_gaps.(tr) + (e.Wire.seq - t.expected_seq.(tr));
  t.expected_seq.(tr) <- e.Wire.seq + 1;
  let verdict : Provenance.verdict = if was_buffered then Reordered else In_order in
  (* on the fast path release happens within the same push, so the entry
     stamp IS the admit time; only buffered records — which sat in the
     reorder window — pay a clock read for their real residency *)
  let admit_us = if was_buffered then Clock.now_us () else at_us in
  match e.Wire.kind with
  | Event.Send { msg } ->
    mark_sent t msg;
    t.admitted <- t.admitted + 1;
    t.emit ~verdict ~decode_us:at_us ~admit_us e
  | Event.Receive { msg } when not (was_sent t msg) ->
    t.orphan_receives <- t.orphan_receives + 1;
    t.on_drop Orphaned e.Wire.id
  | Event.Receive _ | Event.Internal ->
    t.admitted <- t.admitted + 1;
    t.emit ~verdict ~decode_us:at_us ~admit_us e

let drain t =
  let progressed = ref false in
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt t.pending t.next_id with
    | Some (e, at_us, overtook) ->
      Hashtbl.remove t.pending t.next_id;
      t.next_id <- t.next_id + 1;
      progressed := true;
      release t e at_us overtook
    | None -> continue := false
  done;
  if !progressed then t.stall <- 0

(* Give up on the contiguous run of missing ids blocking the head, then
   drain whatever that unblocks. *)
let skip_gap t =
  while (not (Hashtbl.mem t.pending t.next_id)) && Hashtbl.length t.pending > 0 do
    Hashtbl.replace t.skipped t.next_id ();
    t.gaps <- t.gaps + 1;
    t.on_drop Gap_skipped t.next_id;
    t.next_id <- t.next_id + 1
  done;
  t.stall <- 0;
  drain t

let push ?at_us t (e : Wire.t) =
  if t.finished then invalid_arg "Admission.push: already finished";
  if e.Wire.trace < 0 || e.Wire.trace >= t.n_traces then
    invalid_arg (Printf.sprintf "Admission.push: trace %d out of range" e.Wire.trace);
  let at_us = match at_us with Some v -> v | None -> Clock.now_us () in
  t.frames <- t.frames + 1;
  if e.Wire.id = t.next_id && Hashtbl.length t.pending = 0 then begin
    (* in-order fast path — the common case on a healthy transport:
       never touches the reorder buffer (an id equal to [next_id] cannot
       have been skipped: skipping advances [next_id] past it) *)
    t.next_id <- t.next_id + 1;
    release t e at_us false
  end
  else if Hashtbl.length t.skipped > 0 && Hashtbl.mem t.skipped e.Wire.id then begin
    (* the transport finally delivered an id we gave up on: too late —
       admitting it now would violate record order *)
    t.late <- t.late + 1;
    Hashtbl.remove t.skipped e.Wire.id;
    t.on_drop Late e.Wire.id
  end
  else if e.Wire.id < t.next_id || Hashtbl.mem t.pending e.Wire.id then begin
    t.duplicates <- t.duplicates + 1;
    t.on_drop Deduped e.Wire.id
  end
  else begin
    if e.Wire.id <> t.next_id then t.reordered <- t.reordered + 1;
    Hashtbl.add t.pending e.Wire.id (e, at_us, e.Wire.id <> t.next_id);
    drain t;
    if Hashtbl.length t.pending > 0 then begin
      (* the head id is missing: a frame arrived past it *)
      t.stall <- t.stall + 1;
      let overflow = Hashtbl.length t.pending > t.cfg.reorder_window in
      match t.cfg.gap_policy with
      | Skip patience when overflow || t.stall > patience -> skip_gap t
      | (Wait | Fail) when overflow ->
        raise
          (Gap
             (Printf.sprintf
                "record %d still missing with %d frames buffered (reorder window %d)"
                t.next_id (Hashtbl.length t.pending) t.cfg.reorder_window))
      | _ -> ()
    end
  end;
  let depth = Hashtbl.length t.pending in
  if depth > 0 then begin
    if depth > t.max_depth then t.max_depth <- depth;
    t.on_depth depth
  end

let finish t =
  if not t.finished then begin
    t.finished <- true;
    if Hashtbl.length t.pending > 0 then begin
      (match t.cfg.gap_policy with
      | Fail ->
        raise
          (Gap
             (Printf.sprintf "stream ended with record %d missing and %d frames buffered"
                t.next_id (Hashtbl.length t.pending)))
      | Wait | Skip _ -> ());
      (* flush survivors in id order; every hole is a gap *)
      let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.pending [] in
      List.iter
        (fun id ->
          if id > t.next_id then begin
            t.gaps <- t.gaps + (id - t.next_id);
            for missing = t.next_id to id - 1 do
              t.on_drop Gap_skipped missing
            done;
            t.next_id <- id
          end;
          let e, at_us, overtook = Hashtbl.find t.pending id in
          Hashtbl.remove t.pending id;
          t.next_id <- t.next_id + 1;
          release t e at_us overtook)
        (List.sort compare ids)
    end
  end

let stats t =
  {
    frames = t.frames;
    admitted = t.admitted;
    duplicates = t.duplicates;
    late = t.late;
    reordered = t.reordered;
    max_depth = t.max_depth;
    gaps = t.gaps;
    trace_gaps = Array.copy t.trace_gaps;
    orphan_receives = t.orphan_receives;
  }
