(* Reflected table-driven CRC-32. The table entry for byte [b] is the
   CRC of that byte alone (without pre/post conditioning); the loop is
   the textbook crc = table[(crc xor byte) land 0xff] xor (crc >> 8).

   The arithmetic runs on the native [int] — every intermediate stays
   within 32 bits, and unlike [Int32] the operations neither box nor
   allocate, which matters at one table lookup per payload byte on the
   ingest hot path. Only the returned digest is an [int32]. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := (if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1)
         done;
         !c))

let bytes b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.bytes: slice out of bounds";
  let t = Lazy.force table in
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    crc := Array.unsafe_get t ((!crc lxor Char.code (Bytes.unsafe_get b i)) land 0xff)
           lxor (!crc lsr 8)
  done;
  Int32.of_int (!crc lxor 0xFFFFFFFF)

let string s = bytes (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
