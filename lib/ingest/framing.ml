let magic = "OCEPWIR1"
let max_frame = 1 lsl 20

(* ---------------------------------------------------------------- *)
(* Frame primitives                                                  *)
(* ---------------------------------------------------------------- *)

let put_le32 oc (v : int32) =
  for i = 0 to 3 do
    output_char oc
      (Char.chr (Int32.to_int (Int32.shift_right_logical v (8 * i)) land 0xff))
  done

let write_frame oc payload =
  let len = String.length payload in
  if len > max_frame then invalid_arg "Framing: frame exceeds max_frame";
  put_le32 oc (Int32.of_int len);
  put_le32 oc (Crc32.string payload);
  output_string oc payload

(* ---------------------------------------------------------------- *)
(* Writer                                                            *)
(* ---------------------------------------------------------------- *)

type writer = {
  oc : out_channel;
  buf : Buffer.t;
  mutable next_id : int;
  trace_seq : int array;  (* next local-clock position per trace, 1-based *)
}

let header_payload ~trace_names =
  let b = Buffer.create 64 in
  Wire.encode b
    { Wire.id = Array.length trace_names; trace = 0; seq = 0; etype = "traces";
      text = String.concat "\x00" (Array.to_list trace_names); kind = Ocep_base.Event.Internal };
  Buffer.contents b

let create_writer oc ~trace_names =
  output_string oc magic;
  write_frame oc (header_payload ~trace_names);
  { oc; buf = Buffer.create 64; next_id = 0; trace_seq = Array.map (fun _ -> 1) trace_names }

let write w e =
  Buffer.clear w.buf;
  Wire.encode w.buf e;
  write_frame w.oc (Buffer.contents w.buf);
  w.next_id <- max w.next_id (e.Wire.id + 1)

let write_raw w (r : Ocep_base.Event.raw) =
  let trace = r.Ocep_base.Event.r_trace in
  if trace < 0 || trace >= Array.length w.trace_seq then
    invalid_arg (Printf.sprintf "Framing.write_raw: trace %d out of range" trace);
  let e = Wire.of_raw ~id:w.next_id ~seq:w.trace_seq.(trace) r in
  w.trace_seq.(trace) <- w.trace_seq.(trace) + 1;
  write w e;
  e

let written w = w.next_id
let flush w = flush w.oc

(* ---------------------------------------------------------------- *)
(* Reader                                                            *)
(* ---------------------------------------------------------------- *)

type item =
  | Frame of Wire.t
  | Crc_error
  | Bad_frame of string
  | Truncated
  | Eof

type reader = {
  ic : in_channel;
  traces : string array;
  hdr : Bytes.t;  (* 8-byte scratch for the length/CRC prefix *)
  mutable scratch : Bytes.t;  (* payload scratch, grown on demand *)
  mutable dead : bool;  (* Truncated was reported; everything after is Eof *)
}

exception Bad_header of string

(* Read up to [len] bytes, returning how many arrived before EOF. *)
let input_upto ic buf len =
  let rec go off =
    if off = len then len
    else
      match input ic buf off (len - off) with
      | 0 -> off
      | n -> go (off + n)
  in
  go 0

(* Reads one complete raw frame: None = clean EOF before the frame,
   Some (Error ()) = truncated or implausible length, Some (Ok _) =
   length-delimited bytes with their claimed CRC (not yet verified). *)
let read_frame ic =
  let hdr = Bytes.create 8 in
  match input_upto ic hdr 8 with
  | 0 -> None
  | n when n < 8 -> Some (Error ())
  | _ ->
    let le32 off =
      let v = ref 0l in
      for i = 3 downto 0 do
        v := Int32.logor (Int32.shift_left !v 8) (Int32.of_int (Char.code (Bytes.get hdr (off + i))))
      done;
      !v
    in
    let len = Int32.to_int (le32 0) in
    let crc = le32 4 in
    if len < 0 || len > max_frame then Some (Error ())
    else begin
      let payload = Bytes.create len in
      if input_upto ic payload len < len then Some (Error ()) else Some (Ok (payload, crc))
    end

let create_reader ic =
  let m = Bytes.create (String.length magic) in
  (match really_input ic m 0 (String.length magic) with
  | exception End_of_file -> raise (Bad_header "stream shorter than the magic")
  | () -> ());
  if Bytes.to_string m <> magic then raise (Bad_header "bad magic");
  match read_frame ic with
  | None | Some (Error ()) -> raise (Bad_header "missing or truncated header frame")
  | Some (Ok (payload, crc)) ->
    if Crc32.bytes payload ~pos:0 ~len:(Bytes.length payload) <> crc then
      raise (Bad_header "header CRC mismatch");
    (match Wire.decode payload ~pos:0 ~len:(Bytes.length payload) with
    | exception Wire.Decode_error e -> raise (Bad_header ("undecodable header: " ^ e))
    | h ->
      if h.Wire.etype <> "traces" then raise (Bad_header "header frame is not a trace table");
      let traces =
        if h.Wire.text = "" then [||]
        else Array.of_list (String.split_on_char '\x00' h.Wire.text)
      in
      if Array.length traces <> h.Wire.id then
        raise (Bad_header "trace table length disagrees with its count");
      { ic; traces; hdr = Bytes.create 8; scratch = Bytes.create 256; dead = false })

let reader_trace_names r = r.traces

(* Like [read_frame] but into the reader's scratch buffers — the frame
   loop allocates nothing per frame. Returns the payload length. *)
let read_frame_into r =
  match input_upto r.ic r.hdr 8 with
  | 0 -> None
  | n when n < 8 -> Some (Error ())
  | _ ->
    let le32 off =
      let v = ref 0l in
      for i = 3 downto 0 do
        v :=
          Int32.logor (Int32.shift_left !v 8) (Int32.of_int (Char.code (Bytes.get r.hdr (off + i))))
      done;
      !v
    in
    let len = Int32.to_int (le32 0) in
    let crc = le32 4 in
    if len < 0 || len > max_frame then Some (Error ())
    else begin
      if Bytes.length r.scratch < len then
        r.scratch <- Bytes.create (max len (2 * Bytes.length r.scratch));
      if input_upto r.ic r.scratch len < len then Some (Error ()) else Some (Ok (len, crc))
    end

let next r =
  if r.dead then Eof
  else
    match read_frame_into r with
    | None -> Eof
    | Some (Error ()) ->
      r.dead <- true;
      Truncated
    | Some (Ok (len, crc)) ->
      if Crc32.bytes r.scratch ~pos:0 ~len <> crc then Crc_error
      else (
        match Wire.decode r.scratch ~pos:0 ~len with
        | e -> Frame e
        | exception Wire.Decode_error msg -> Bad_frame msg)
