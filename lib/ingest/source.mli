(** Replay a framed stream into an engine through the admission layer —
    the ingest path's top plumbing. Decode errors are tolerated
    per-frame ({!Framing.item}), admission restores order and drops
    duplicates, and everything is accounted into [ocep_ingest_*]
    instruments of the engine's metrics registry:

    - counters [ocep_ingest_frames_total], [..._crc_errors_total],
      [..._bad_frames_total], [..._truncated_total],
      [..._admitted_total], [..._duplicates_total], [..._late_total],
      [..._reordered_total], [..._gaps_total], [..._trace_gaps_total],
      [..._orphan_receives_total], [..._queue_shed_total]
    - histograms [ocep_ingest_reorder_depth] (buffer depth after each
      frame) and [ocep_ingest_queue_occupancy] (queue length at each
      consumer wakeup, pipelined mode only)
    - the {!Ocep_obs.Watermark} plane: per-stage watermark gauges,
      ingest lag, and [ocep_stage_latency_us] histograms for decode,
      queue residency (pipelined mode), reorder-buffer residency, and
      per-record match time

    Each admitted event reaches the engine through
    {!Ocep.Engine.feed_wire}, so the flight recorder sees its wire id,
    admission verdict, and stage timestamps; refused records land in
    the engine's drop ring via {!Ocep.Engine.note_wire_drop}.

    Timing is {e sampled}: one frame in 64 carries fresh clock stamps
    and feeds the latency histograms; the rest reuse the most recent
    stamp and advance the watermarks gauge-only. Record ids, verdicts,
    watermarks and lag are exact on every record — only the timestamp
    precision of unsampled records is coarse (bounded by the sample
    window), which is what keeps the always-on provenance + watermark
    plane under a few percent of the per-event budget. Buffered
    (reordered) releases always carry a fresh admit stamp, so
    reorder-buffer residency is measured exactly.

    With [pipeline] set, a dedicated domain reads and CRC-checks frames
    while the calling domain runs admission and matching, the two
    coupled by a {!Bqueue} whose policy is the backpressure stance.
    Shedding loses frames exactly like a lossy transport — the admission
    layer turns each shed frame into a gap, so [Shed] only preserves
    match reports when the gap policy tolerates loss. *)

type config = {
  admission : Admission.config;
  queue_capacity : int;
      (** pipelined mode: frames (block mode: blocks) buffered between
          the domains *)
  queue_policy : Bqueue.policy;
  pipeline : bool;
  block_size : int;
      (** > 1 enables block mode: frames are decoded and admitted in
          chunks of this size, amortizing per-record costs — the decode
          loop's clock sampling, and in pipelined mode the queue
          hand-off synchronization (one push/pop per block instead of
          per frame). Admission order, verdicts, watermarks and lag are
          identical to the per-record path; full clock stamps land on
          at most one frame per block, so only the timestamp precision
          of the latency histograms coarsens (and with [Shed],
          [queue_shed] counts shed {e blocks}). [1] (the default) is
          the exact per-record path. *)
}

val default_config : config
(** default admission, capacity 4096, [Block], pipeline off,
    block_size 1. *)

type stats = {
  frames : int;  (** well-formed frames offered to admission *)
  crc_errors : int;
  bad_frames : int;
  truncated : bool;  (** the stream ended mid-frame *)
  queue_shed : int;
  queue_max_occupancy : int;
  admission : Admission.stats;
}

val replay_stream :
  ?config:config -> ?tick:(unit -> unit) -> engine:Ocep.Engine.t -> Framing.reader -> stats
(** Drives the reader to [Eof]/[Truncated], feeding admitted events to
    {!Ocep.Engine.feed_wire}, then finishes admission and syncs the
    [ocep_ingest_*] instruments. [tick] is called every 1024 frames on
    the ingesting domain — the hook the CLI uses to republish telemetry
    under live load. Raises [Invalid_argument] when the stream's trace
    table does not match the engine's POET store (same names, same
    order), and lets {!Admission.Gap} escape. *)

val replay :
  ?config:config -> ?tick:(unit -> unit) -> engine:Ocep.Engine.t -> Framing.reader -> stats
[@@deprecated "use Session.replay (typed Session.config) or Source.replay_stream"]
(** Alias of {!replay_stream}, kept for one release so out-of-tree
    callers keep compiling; {!Session.replay} is the supported entry
    point and adds fault degradation. *)
