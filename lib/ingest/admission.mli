(** The admission layer: restores the engine's delivery preconditions
    from a degraded stream. {!Ocep_poet.Poet.ingest} requires a valid
    linearization — each trace's events in local-clock order, every
    receive after its send — and the engine's match reports additionally
    embed the global arrival sequence, so byte-identical reports need the
    exact recorded order. A real transport delivers neither: it reorders,
    duplicates, and drops.

    The layer holds a bounded reorder buffer keyed on the global record
    id (record order is a linearization, so restoring id-contiguity
    restores every per-trace local clock and every send-before-receive
    edge at once), suppresses duplicate ids, and detects gaps — a
    missing id that newer frames have overtaken. What happens at a gap
    is the {!gap_policy}:

    - [Wait]: never give up on a missing id mid-stream; a gap surfaces
      only if the buffer would exceed [reorder_window] (raises {!Gap} —
      the transport's disorder exceeded the provisioned bound) or at
      {!finish}, where the survivors are flushed in id order.
    - [Skip n]: give up on the ids blocking the head after [n] further
      frames arrive (and immediately when the window fills); matching
      continues on the remaining stream, with the loss counted per
      trace.
    - [Fail]: like [Wait] during the stream, but any loss — window
      overflow or ids still missing at {!finish} — raises {!Gap}.

    After a skip, the per-trace local clocks jump; POET tolerates index
    gaps, but a receive whose send was in the lost range would make
    [ingest] raise, so such orphaned receives are dropped and counted
    ([orphan_receives]) rather than crashing the engine. *)

type gap_policy =
  | Wait
  | Skip of int  (** patience, measured in subsequently arriving frames *)
  | Fail

type config = {
  reorder_window : int;  (** max out-of-order frames held; > 0 *)
  gap_policy : gap_policy;
}

val default_config : config
(** window 1024, [Wait]. *)

type stats = {
  frames : int;  (** frames offered to {!push} *)
  admitted : int;  (** events released to the consumer *)
  duplicates : int;  (** already-admitted or already-buffered ids, dropped *)
  late : int;  (** frames for an id that had been skipped — loss double-counted by the transport, not new data *)
  reordered : int;  (** frames that arrived before an earlier id and had to be buffered *)
  max_depth : int;  (** peak reorder-buffer occupancy *)
  gaps : int;  (** ids given up on *)
  trace_gaps : int array;  (** per-trace events lost to gaps, attributed at the local-clock jump *)
  orphan_receives : int;  (** receives dropped because their send fell into a gap *)
}

exception Gap of string

type t

val create :
  ?config:config ->
  ?on_depth:(int -> unit) ->
  ?on_drop:(Ocep_obs.Provenance.verdict -> int -> unit) ->
  n_traces:int ->
  emit:
    (verdict:Ocep_obs.Provenance.verdict ->
    decode_us:float ->
    admit_us:float ->
    Wire.t ->
    unit) ->
  unit ->
  t
(** [emit] receives admitted events, in exact record order when no id is
    ever skipped, each stamped with its provenance: the verdict
    ([In_order] for frames released on the fast path, [Reordered] for
    frames that overtook an earlier id and sat in the buffer),
    [decode_us] — the frame's admission-entry timestamp (the [at_us]
    given to {!push}), and [admit_us] — the release timestamp; their
    difference is the frame's reorder-buffer residency. Fast-path
    releases happen inside the same {!push}, so they reuse [at_us] as
    the admit stamp without reading the clock; only buffered releases
    pay a clock read for their real residency (so [admit_us >
    decode_us] identifies a buffered release). [on_depth]
    observes the buffer depth after every {!push} that leaves frames
    buffered — in-order frames are released on a fast path that reports
    nothing, so the [ocep_ingest_reorder_depth] histogram it feeds
    counts only actual disorder. [on_drop] observes every record id the
    layer refuses, with why: [Deduped] (duplicate id), [Gap_skipped]
    (given up on under [Skip] or lost in a hole at {!finish}), [Late]
    (arrived after its id was skipped), [Orphaned] (receive whose send
    fell into a gap) — the feed of the engine's refused-record ring.
    Raises [Invalid_argument] on a non-positive window or negative
    [Skip] patience. *)

val push : ?at_us:float -> t -> Wire.t -> unit
(** Offer one frame; may call [emit] zero or more times. [at_us] is the
    frame's admission-entry timestamp (decode completion when the
    caller timestamps at decode; defaults to
    [Ocep_base.Clock.now_us ()]). Raises {!Gap} per the policy, and
    [Invalid_argument] on a frame whose trace id is outside
    [0, n_traces). *)

val finish : t -> unit
(** End of stream: flush the buffer per the policy ([Fail] raises {!Gap}
    if anything is missing). Further {!push}es raise [Invalid_argument]. *)

val stats : t -> stats
(** A snapshot ([trace_gaps] is a fresh copy). *)
