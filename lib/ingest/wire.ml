open Ocep_base

type t = {
  id : int;
  trace : int;
  seq : int;
  etype : string;
  text : string;
  kind : Event.kind;
}

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

(* LEB128: 7 value bits per byte, high bit = continuation. *)
let put_uvarint buf n =
  if n < 0 then invalid_arg "Wire.put_uvarint: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

(* zigzag maps small-magnitude ints of either sign to small naturals:
   0 -> 0, -1 -> 1, 1 -> 2, ... Message ids may be negative (spill
   range), so they take this path. *)
let put_varint buf n = put_uvarint buf ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

let put_string buf s =
  put_uvarint buf (String.length s);
  Buffer.add_string buf s

(* kind tags; stable on-disk values *)
let tag_internal = 0
let tag_send = 1
let tag_receive = 2

let encode buf e =
  put_uvarint buf e.id;
  put_uvarint buf e.trace;
  put_uvarint buf e.seq;
  put_string buf e.etype;
  put_string buf e.text;
  match e.kind with
  | Event.Internal -> put_uvarint buf tag_internal
  | Event.Send { msg } ->
    put_uvarint buf tag_send;
    put_varint buf msg
  | Event.Receive { msg } ->
    put_uvarint buf tag_receive;
    put_varint buf msg

type cursor = { bytes : Bytes.t; stop : int; mutable pos : int }

let get_uvarint c =
  let rec go shift acc =
    if c.pos >= c.stop then fail "truncated varint";
    if shift >= Sys.int_size - 1 then fail "varint overflows int";
    let b = Char.code (Bytes.get c.bytes c.pos) in
    c.pos <- c.pos + 1;
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_varint c =
  let n = get_uvarint c in
  (n lsr 1) lxor (-(n land 1))

let get_string c =
  let len = get_uvarint c in
  if len > c.stop - c.pos then fail "truncated string (%d bytes wanted)" len;
  let s = Bytes.sub_string c.bytes c.pos len in
  c.pos <- c.pos + len;
  s

let decode bytes ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length bytes then
    invalid_arg "Wire.decode: slice out of bounds";
  let c = { bytes; stop = pos + len; pos } in
  let id = get_uvarint c in
  let trace = get_uvarint c in
  let seq = get_uvarint c in
  let etype = get_string c in
  let text = get_string c in
  let kind =
    match get_uvarint c with
    | 0 -> Event.Internal
    | 1 -> Event.Send { msg = get_varint c }
    | 2 -> Event.Receive { msg = get_varint c }
    | t -> fail "unknown kind tag %d" t
  in
  if c.pos <> c.stop then fail "%d trailing bytes after event" (c.stop - c.pos);
  { id; trace; seq; etype; text; kind }

let to_raw e =
  { Event.r_trace = e.trace; r_etype = e.etype; r_text = e.text; r_kind = e.kind }

let of_raw ~id ~seq (r : Event.raw) =
  { id; trace = r.Event.r_trace; seq; etype = r.Event.r_etype; text = r.Event.r_text;
    kind = r.Event.r_kind }

let pp ppf e =
  let kind =
    match e.kind with
    | Event.Internal -> "internal"
    | Event.Send { msg } -> Printf.sprintf "send %d" msg
    | Event.Receive { msg } -> Printf.sprintf "recv %d" msg
  in
  Format.fprintf ppf "#%d t%d.%d %s %s [%s]" e.id e.trace e.seq e.etype e.text kind
