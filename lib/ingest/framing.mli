(** Framed streaming transport for wire events over channels and files.

    Layout: an 8-byte magic ["OCEPWIR1"], a header block naming the
    recorder's traces, then one frame per event. Every frame is
    [4-byte LE payload length | 4-byte LE CRC-32 of the payload |
    payload] — self-delimiting, so a reader can skip a frame whose CRC
    fails (bit rot, partial overwrite) and keep decoding the rest of the
    stream, and a stream cut mid-frame (crash during recording) yields a
    clean [Truncated] after every complete frame has been delivered. The
    header block is itself CRC-framed, so a reader never trusts trace
    names from a corrupt header. *)

type writer

val create_writer : out_channel -> trace_names:string array -> writer
(** Writes the magic and header immediately. The channel stays owned by
    the caller (close it after {!flush}). *)

val write : writer -> Wire.t -> unit
(** Frame and write one already-stamped wire event. *)

val write_raw : writer -> Ocep_base.Event.raw -> Wire.t
(** Stamp a raw event with the next global record id and its trace's
    next local-clock position, then {!write} it; returns the stamped
    event. The stamping matches what {!Ocep_poet.Poet.ingest} will
    assign on replay, provided events are recorded in ingest order. *)

val written : writer -> int
(** Frames written so far (= the next record id {!write_raw} assigns). *)

val flush : writer -> unit

type reader

exception Bad_header of string
(** The magic or the header frame is missing or corrupt — not a stream
    this module wrote, or one damaged where no recovery is possible. *)

val create_reader : in_channel -> reader
(** Reads and validates the magic and header; raises {!Bad_header}. *)

val reader_trace_names : reader -> string array

(** One step of the stream. [Crc_error] (checksum mismatch on a
    complete, well-delimited frame) and [Bad_frame] (CRC-valid payload
    that does not decode) are per-frame: the stream continues after
    them. [Truncated] (EOF mid-frame, or a length field no real frame
    could have) is terminal: the tail is gone, subsequent calls return
    [Eof]. *)
type item =
  | Frame of Wire.t
  | Crc_error
  | Bad_frame of string
  | Truncated
  | Eof

val next : reader -> item

val max_frame : int
(** Upper bound on accepted payload length (1 MiB); a length field above
    it means the framing itself is corrupt, reported as [Truncated]. *)
