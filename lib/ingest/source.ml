module Engine = Ocep.Engine
module Poet = Ocep_poet.Poet
module Metrics = Ocep_obs.Metrics

type config = {
  admission : Admission.config;
  queue_capacity : int;
  queue_policy : Bqueue.policy;
  pipeline : bool;
}

let default_config =
  { admission = Admission.default_config; queue_capacity = 4096; queue_policy = Bqueue.Block;
    pipeline = false }

type stats = {
  frames : int;
  crc_errors : int;
  bad_frames : int;
  truncated : bool;
  queue_shed : int;
  queue_max_occupancy : int;
  admission : Admission.stats;
}

(* Registered on demand in the engine's registry; instruments are
   created once (Metrics re-registration returns the existing one), so
   several replays into one engine accumulate. *)
type meters = {
  g_frames : Metrics.counter;
  g_crc : Metrics.counter;
  g_bad : Metrics.counter;
  g_truncated : Metrics.counter;
  g_admitted : Metrics.counter;
  g_duplicates : Metrics.counter;
  g_late : Metrics.counter;
  g_reordered : Metrics.counter;
  g_gaps : Metrics.counter;
  g_trace_gaps : Metrics.counter;
  g_orphans : Metrics.counter;
  g_shed : Metrics.counter;
  g_depth : Ocep_stats.Histogram.t;
  g_occupancy : Ocep_stats.Histogram.t;
}

let meters engine =
  let m = Engine.metrics engine in
  let c ?help name = Metrics.counter m ?help name in
  {
    g_frames = c ~help:"Well-formed frames offered to admission" "ocep_ingest_frames_total";
    g_crc = c ~help:"Frames dropped on checksum mismatch" "ocep_ingest_crc_errors_total";
    g_bad = c ~help:"CRC-valid frames that failed to decode" "ocep_ingest_bad_frames_total";
    g_truncated = c ~help:"Streams that ended mid-frame" "ocep_ingest_truncated_total";
    g_admitted = c ~help:"Events released to the engine" "ocep_ingest_admitted_total";
    g_duplicates = c ~help:"Duplicate record ids suppressed" "ocep_ingest_duplicates_total";
    g_late = c ~help:"Frames arriving after their id was skipped" "ocep_ingest_late_total";
    g_reordered = c ~help:"Frames buffered for reordering" "ocep_ingest_reordered_total";
    g_gaps = c ~help:"Record ids given up on" "ocep_ingest_gaps_total";
    g_trace_gaps =
      c ~help:"Events lost to gaps, attributed per trace" "ocep_ingest_trace_gaps_total";
    g_orphans =
      c ~help:"Receives dropped because their send fell into a gap"
        "ocep_ingest_orphan_receives_total";
    g_shed = c ~help:"Frames dropped by queue backpressure" "ocep_ingest_queue_shed_total";
    g_depth =
      Metrics.histogram m ~help:"Reorder-buffer depth after each frame that buffered"
        "ocep_ingest_reorder_depth";
    g_occupancy =
      Metrics.histogram m ~help:"Ingest-queue length at each consumer wakeup"
        "ocep_ingest_queue_occupancy";
  }

let check_traces engine reader =
  let expect = Poet.trace_names (Engine.poet engine) in
  let got = Framing.reader_trace_names reader in
  if got <> expect then
    invalid_arg
      (Printf.sprintf "Source.replay: stream traces [%s] do not match the engine's [%s]"
         (String.concat "; " (Array.to_list got))
         (String.concat "; " (Array.to_list expect)))

let replay ?(config = default_config) ~engine reader =
  check_traces engine reader;
  let mt = meters engine in
  let crc_errors = ref 0 and bad_frames = ref 0 and truncated = ref false in
  let adm =
    Admission.create ~config:config.admission
      ~on_depth:(fun d -> Ocep_stats.Histogram.record mt.g_depth (float_of_int d))
      ~n_traces:(Poet.trace_count (Engine.poet engine))
      ~emit:(fun w -> ignore (Engine.feed_raw engine (Wire.to_raw w)))
      ()
  in
  let queue_shed, queue_max =
    if not config.pipeline then begin
      let continue = ref true in
      while !continue do
        match Framing.next reader with
        | Framing.Frame w -> Admission.push adm w
        | Framing.Crc_error -> incr crc_errors
        | Framing.Bad_frame _ -> incr bad_frames
        | Framing.Truncated ->
          truncated := true;
          continue := false
        | Framing.Eof -> continue := false
      done;
      (0, 0)
    end
    else begin
      (* the reader domain decodes and CRC-checks; this domain matches.
         Per-frame error counts are tallied reader-side and handed back
         at join, so all metrics stay single-domain. *)
      let q = Bqueue.create ~policy:config.queue_policy ~capacity:config.queue_capacity () in
      let producer =
        Domain.spawn (fun () ->
            let crc = ref 0 and bad = ref 0 and trunc = ref false in
            let continue = ref true in
            while !continue do
              match Framing.next reader with
              | Framing.Frame w -> ignore (Bqueue.push q w)
              | Framing.Crc_error -> incr crc
              | Framing.Bad_frame _ -> incr bad
              | Framing.Truncated ->
                trunc := true;
                continue := false
              | Framing.Eof -> continue := false
            done;
            Bqueue.close q;
            (!crc, !bad, !trunc))
      in
      let continue = ref true in
      while !continue do
        Ocep_stats.Histogram.record mt.g_occupancy (float_of_int (Bqueue.length q));
        match Bqueue.pop q with
        | Some w -> Admission.push adm w
        | None -> continue := false
      done;
      let crc, bad, trunc = Domain.join producer in
      crc_errors := crc;
      bad_frames := bad;
      truncated := trunc;
      (Bqueue.shed q, Bqueue.max_occupancy q)
    end
  in
  Admission.finish adm;
  let a = Admission.stats adm in
  Metrics.incr mt.g_frames ~by:a.Admission.frames ();
  Metrics.incr mt.g_crc ~by:!crc_errors ();
  Metrics.incr mt.g_bad ~by:!bad_frames ();
  Metrics.incr mt.g_truncated ~by:(if !truncated then 1 else 0) ();
  Metrics.incr mt.g_admitted ~by:a.Admission.admitted ();
  Metrics.incr mt.g_duplicates ~by:a.Admission.duplicates ();
  Metrics.incr mt.g_late ~by:a.Admission.late ();
  Metrics.incr mt.g_reordered ~by:a.Admission.reordered ();
  Metrics.incr mt.g_gaps ~by:a.Admission.gaps ();
  Metrics.incr mt.g_trace_gaps ~by:(Array.fold_left ( + ) 0 a.Admission.trace_gaps) ();
  Metrics.incr mt.g_orphans ~by:a.Admission.orphan_receives ();
  Metrics.incr mt.g_shed ~by:queue_shed ();
  {
    frames = a.Admission.frames;
    crc_errors = !crc_errors;
    bad_frames = !bad_frames;
    truncated = !truncated;
    queue_shed;
    queue_max_occupancy = queue_max;
    admission = a;
  }
