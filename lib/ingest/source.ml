open Ocep_base
module Engine = Ocep.Engine
module Poet = Ocep_poet.Poet
module Metrics = Ocep_obs.Metrics
module Watermark = Ocep_obs.Watermark

type config = {
  admission : Admission.config;
  queue_capacity : int;
  queue_policy : Bqueue.policy;
  pipeline : bool;
  block_size : int;
}

let default_config =
  { admission = Admission.default_config; queue_capacity = 4096; queue_policy = Bqueue.Block;
    pipeline = false; block_size = 1 }

type stats = {
  frames : int;
  crc_errors : int;
  bad_frames : int;
  truncated : bool;
  queue_shed : int;
  queue_max_occupancy : int;
  admission : Admission.stats;
}

(* Registered on demand in the engine's registry; instruments are
   created once (Metrics re-registration returns the existing one), so
   several replays into one engine accumulate. *)
type meters = {
  g_frames : Metrics.counter;
  g_crc : Metrics.counter;
  g_bad : Metrics.counter;
  g_truncated : Metrics.counter;
  g_admitted : Metrics.counter;
  g_duplicates : Metrics.counter;
  g_late : Metrics.counter;
  g_reordered : Metrics.counter;
  g_gaps : Metrics.counter;
  g_trace_gaps : Metrics.counter;
  g_orphans : Metrics.counter;
  g_shed : Metrics.counter;
  g_depth : Ocep_stats.Histogram.t;
  g_occupancy : Ocep_stats.Histogram.t;
}

let meters engine =
  let m = Engine.metrics engine in
  let c ?help name = Metrics.counter m ?help name in
  {
    g_frames = c ~help:"Well-formed frames offered to admission" "ocep_ingest_frames_total";
    g_crc = c ~help:"Frames dropped on checksum mismatch" "ocep_ingest_crc_errors_total";
    g_bad = c ~help:"CRC-valid frames that failed to decode" "ocep_ingest_bad_frames_total";
    g_truncated = c ~help:"Streams that ended mid-frame" "ocep_ingest_truncated_total";
    g_admitted = c ~help:"Events released to the engine" "ocep_ingest_admitted_total";
    g_duplicates = c ~help:"Duplicate record ids suppressed" "ocep_ingest_duplicates_total";
    g_late = c ~help:"Frames arriving after their id was skipped" "ocep_ingest_late_total";
    g_reordered = c ~help:"Frames buffered for reordering" "ocep_ingest_reordered_total";
    g_gaps = c ~help:"Record ids given up on" "ocep_ingest_gaps_total";
    g_trace_gaps =
      c ~help:"Events lost to gaps, attributed per trace" "ocep_ingest_trace_gaps_total";
    g_orphans =
      c ~help:"Receives dropped because their send fell into a gap"
        "ocep_ingest_orphan_receives_total";
    g_shed = c ~help:"Frames dropped by queue backpressure" "ocep_ingest_queue_shed_total";
    g_depth =
      Metrics.histogram m ~help:"Reorder-buffer depth after each frame that buffered"
        "ocep_ingest_reorder_depth";
    g_occupancy =
      Metrics.histogram m ~help:"Ingest-queue length at each consumer wakeup"
        "ocep_ingest_queue_occupancy";
  }

let check_traces engine reader =
  let expect = Poet.trace_names (Engine.poet engine) in
  let got = Framing.reader_trace_names reader in
  if got <> expect then
    invalid_arg
      (Printf.sprintf "Source.replay: stream traces [%s] do not match the engine's [%s]"
         (String.concat "; " (Array.to_list got))
         (String.concat "; " (Array.to_list expect)))

let tick_every = 1024

(* Full timing is stamped on one frame in 64 ([sample_mask]); the rest
   reuse the most recent stamp and advance the watermark trackers only.
   Ids, verdicts, watermarks and lag stay exact on every record; the
   latency histograms and the sub-window timestamp precision come from
   the sampled subset.  This is what keeps the always-on provenance +
   watermark plane inside a single-digit-percent budget: a clock read
   costs ~30 ns and a full stamp takes four of them, on a workload that
   matches an event in ~1.5 us. *)
let sample_mask = 63

let replay_stream ?(config = default_config) ?(tick = fun () -> ()) ~engine reader =
  check_traces engine reader;
  let mt = meters engine in
  let wm = Watermark.create (Engine.metrics engine) in
  let crc_errors = ref 0 and bad_frames = ref 0 and truncated = ref false in
  (* true while the frame being pushed carries fresh stamps; consulted
     by [emit], which runs synchronously inside the push *)
  let sampling = ref true in
  let last_us = ref (Clock.now_us ()) in
  let adm =
    Admission.create ~config:config.admission
      ~on_depth:(fun d ->
        Ocep_stats.Histogram.record mt.g_depth (float_of_int d);
        Watermark.set_depth wm d)
      ~on_drop:(fun verdict id -> Engine.note_wire_drop engine ~id ~verdict)
      ~n_traces:(Poet.trace_count (Engine.poet engine))
      ~emit:(fun ~verdict ~decode_us ~admit_us w ->
        (* a buffered release carries a fresh admit stamp ([admit_us >
           decode_us]) and is rare enough to always time in full *)
        if !sampling || admit_us > decode_us then begin
          Watermark.observe_admit wm ~id:w.Wire.id ~dur_us:(admit_us -. decode_us);
          Engine.set_wire_stamps engine ~decode_us ~admit_us;
          let t0 = Clock.now_us () in
          ignore (Engine.feed_wire engine ~id:w.Wire.id ~verdict (Wire.to_raw w));
          Watermark.observe_match wm ~id:w.Wire.id ~dur_us:(Clock.now_us () -. t0)
        end
        else begin
          (* unsampled: the engine still holds the window's stamps *)
          Watermark.advance_admit wm ~id:w.Wire.id;
          ignore (Engine.feed_wire engine ~id:w.Wire.id ~verdict (Wire.to_raw w));
          Watermark.advance_match wm ~id:w.Wire.id
        end)
      ()
  in
  let seen = ref 0 in
  let beat () =
    incr seen;
    if !seen mod tick_every = 0 then begin
      (* publish point: bring the watermark gauges up to the exact
         trackers before the tick callback republishes telemetry *)
      Watermark.sync wm;
      tick ()
    end
  in
  let block = max 1 config.block_size in
  let queue_shed, queue_max =
    if not config.pipeline then begin
      if block = 1 then begin
        let continue = ref true in
        while !continue do
          let sampled = !seen land sample_mask = 0 in
          sampling := sampled;
          let t0 = if sampled then Clock.now_us () else 0. in
          match Framing.next reader with
          | Framing.Frame w ->
            if sampled then begin
              let done_us = Clock.now_us () in
              Watermark.observe_decode wm ~id:w.Wire.id ~dur_us:(done_us -. t0);
              last_us := done_us;
              Admission.push ~at_us:done_us adm w
            end
            else begin
              Watermark.advance_decode wm ~id:w.Wire.id;
              Admission.push ~at_us:!last_us adm w
            end;
            beat ()
          | Framing.Crc_error -> incr crc_errors
          | Framing.Bad_frame _ -> incr bad_frames
          | Framing.Truncated ->
            truncated := true;
            continue := false
          | Framing.Eof -> continue := false
        done;
        (0, 0)
      end
      else begin
        (* block mode: decode up to [block] frames, then admit them in a
           burst. Admission order, verdicts, watermarks and lag are
           exactly the per-record path's; full clock stamps land on at
           most one frame per block (the block's first, when it falls on
           the sample cadence), so only timestamp precision coarsens.
           The frame buffer is reused across blocks — allocated once,
           lazily, from the first decoded frame. *)
        let buf = ref [||] in
        let continue = ref true in
        while !continue do
          let first_sampled = !seen land sample_mask = 0 in
          let first_dur = ref 0. in
          let n = ref 0 in
          while !continue && !n < block do
            let t0 = if first_sampled && !n = 0 then Clock.now_us () else 0. in
            match Framing.next reader with
            | Framing.Frame w ->
              if first_sampled && !n = 0 then first_dur := Clock.now_us () -. t0;
              if Array.length !buf = 0 then buf := Array.make block w;
              !buf.(!n) <- w;
              incr n
            | Framing.Crc_error -> incr crc_errors
            | Framing.Bad_frame _ -> incr bad_frames
            | Framing.Truncated ->
              truncated := true;
              continue := false
            | Framing.Eof -> continue := false
          done;
          let arr = !buf in
          for i = 0 to !n - 1 do
            let w = arr.(i) in
            let sampled = i = 0 && first_sampled in
            sampling := sampled;
            if sampled then begin
              let now = Clock.now_us () in
              Watermark.observe_decode wm ~id:w.Wire.id ~dur_us:!first_dur;
              last_us := now;
              Admission.push ~at_us:now adm w
            end
            else begin
              Watermark.advance_decode wm ~id:w.Wire.id;
              Admission.push ~at_us:!last_us adm w
            end;
            beat ()
          done
        done;
        (0, 0)
      end
    end
    else if block > 1 then begin
      (* pipelined block mode: the reader domain decodes whole blocks
         and hands each over with a single queue operation — the
         hand-off synchronization is paid once per block instead of once
         per frame. Each chunk is a fresh array (ownership moves across
         domains); its first frame's decode duration travels with it. *)
      let q = Bqueue.create ~policy:config.queue_policy ~capacity:config.queue_capacity () in
      let producer =
        Domain.spawn (fun () ->
            let crc = ref 0 and bad = ref 0 and trunc = ref false in
            let continue = ref true in
            while !continue do
              let arr = ref [||] in
              let first_dur = ref 0. in
              let n = ref 0 in
              while !continue && !n < block do
                let t0 = if !n = 0 then Clock.now_us () else 0. in
                match Framing.next reader with
                | Framing.Frame w ->
                  if !n = 0 then begin
                    first_dur := Clock.now_us () -. t0;
                    arr := Array.make block w
                  end;
                  !arr.(!n) <- w;
                  incr n
                | Framing.Crc_error -> incr crc
                | Framing.Bad_frame _ -> incr bad
                | Framing.Truncated ->
                  trunc := true;
                  continue := false
                | Framing.Eof -> continue := false
              done;
              if !n > 0 then ignore (Bqueue.push q (!arr, !n, !first_dur, Clock.now_us ()))
            done;
            Bqueue.close q;
            (!crc, !bad, !trunc))
      in
      let continue = ref true in
      while !continue do
        Ocep_stats.Histogram.record mt.g_occupancy (float_of_int (Bqueue.length q));
        match Bqueue.pop q with
        | Some (arr, n, first_dur, enq_us) ->
          for i = 0 to n - 1 do
            let w = arr.(i) in
            let sampled = i = 0 && !seen land sample_mask = 0 in
            sampling := sampled;
            if sampled then begin
              let now = Clock.now_us () in
              Watermark.observe_decode wm ~id:w.Wire.id ~dur_us:first_dur;
              Watermark.observe_queue wm ~dur_us:(now -. enq_us);
              last_us := now;
              Admission.push ~at_us:now adm w
            end
            else begin
              Watermark.advance_decode wm ~id:w.Wire.id;
              Admission.push ~at_us:!last_us adm w
            end;
            beat ()
          done
        | None -> continue := false
      done;
      let crc, bad, trunc = Domain.join producer in
      crc_errors := crc;
      bad_frames := bad;
      truncated := trunc;
      (Bqueue.shed q, Bqueue.max_occupancy q)
    end
    else begin
      (* the reader domain decodes and CRC-checks; this domain matches.
         Per-frame error counts are tallied reader-side and handed back
         at join, so all metrics stay single-domain: decode durations
         travel with the frame and are recorded here at pop. *)
      let q = Bqueue.create ~policy:config.queue_policy ~capacity:config.queue_capacity () in
      let producer =
        Domain.spawn (fun () ->
            let crc = ref 0 and bad = ref 0 and trunc = ref false in
            let continue = ref true in
            while !continue do
              let t0 = Clock.now_us () in
              match Framing.next reader with
              | Framing.Frame w ->
                let done_us = Clock.now_us () in
                ignore (Bqueue.push q (w, done_us -. t0, done_us))
              | Framing.Crc_error -> incr crc
              | Framing.Bad_frame _ -> incr bad
              | Framing.Truncated ->
                trunc := true;
                continue := false
              | Framing.Eof -> continue := false
            done;
            Bqueue.close q;
            (!crc, !bad, !trunc))
      in
      let continue = ref true in
      while !continue do
        Ocep_stats.Histogram.record mt.g_occupancy (float_of_int (Bqueue.length q));
        match Bqueue.pop q with
        | Some (w, decode_dur, enq_us) ->
          let sampled = !seen land sample_mask = 0 in
          sampling := sampled;
          if sampled then begin
            let now = Clock.now_us () in
            Watermark.observe_decode wm ~id:w.Wire.id ~dur_us:decode_dur;
            Watermark.observe_queue wm ~dur_us:(now -. enq_us);
            last_us := now;
            Admission.push ~at_us:now adm w
          end
          else begin
            Watermark.advance_decode wm ~id:w.Wire.id;
            Admission.push ~at_us:!last_us adm w
          end;
          beat ()
        | None -> continue := false
      done;
      let crc, bad, trunc = Domain.join producer in
      crc_errors := crc;
      bad_frames := bad;
      truncated := trunc;
      (Bqueue.shed q, Bqueue.max_occupancy q)
    end
  in
  Admission.finish adm;
  Watermark.sync wm;
  let a = Admission.stats adm in
  Metrics.incr mt.g_frames ~by:a.Admission.frames ();
  Metrics.incr mt.g_crc ~by:!crc_errors ();
  Metrics.incr mt.g_bad ~by:!bad_frames ();
  Metrics.incr mt.g_truncated ~by:(if !truncated then 1 else 0) ();
  Metrics.incr mt.g_admitted ~by:a.Admission.admitted ();
  Metrics.incr mt.g_duplicates ~by:a.Admission.duplicates ();
  Metrics.incr mt.g_late ~by:a.Admission.late ();
  Metrics.incr mt.g_reordered ~by:a.Admission.reordered ();
  Metrics.incr mt.g_gaps ~by:a.Admission.gaps ();
  Metrics.incr mt.g_trace_gaps ~by:(Array.fold_left ( + ) 0 a.Admission.trace_gaps) ();
  Metrics.incr mt.g_orphans ~by:a.Admission.orphan_receives ();
  Metrics.incr mt.g_shed ~by:queue_shed ();
  {
    frames = a.Admission.frames;
    crc_errors = !crc_errors;
    bad_frames = !bad_frames;
    truncated = !truncated;
    queue_shed;
    queue_max_occupancy = queue_max;
    admission = a;
  }

let replay = replay_stream
