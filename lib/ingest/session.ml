module Inject = Ocep_workloads.Inject

type config = {
  gap_policy : Admission.gap_policy;
  reorder_window : int;
  pipeline : bool;
  queue_capacity : int;
  queue_policy : Bqueue.policy;
  block_size : int;
  faults : Inject.faults;
  fault_seed : int;
}

let default =
  {
    gap_policy = Admission.default_config.Admission.gap_policy;
    reorder_window = Admission.default_config.Admission.reorder_window;
    pipeline = Source.default_config.Source.pipeline;
    queue_capacity = Source.default_config.Source.queue_capacity;
    queue_policy = Source.default_config.Source.queue_policy;
    block_size = Source.default_config.Source.block_size;
    faults = Inject.no_faults;
    fault_seed = 7;
  }

let source_config c =
  {
    Source.admission =
      { Admission.reorder_window = c.reorder_window; gap_policy = c.gap_policy };
    queue_capacity = c.queue_capacity;
    queue_policy = c.queue_policy;
    pipeline = c.pipeline;
    block_size = c.block_size;
  }

(* Degrading a transport needs the whole frame sequence; re-framing it
   into a temp file keeps the actual replay on the identical
   reader/admission code path as a pristine stream (rather than a
   special in-memory delivery loop that could mask framing bugs). *)
let degraded_copy ~faults ~seed reader =
  let frames = ref [] in
  let continue = ref true in
  while !continue do
    match Framing.next reader with
    | Framing.Frame w -> frames := w :: !frames
    | Framing.Crc_error | Framing.Bad_frame _ -> ()
    | Framing.Truncated | Framing.Eof -> continue := false
  done;
  let before = List.rev !frames in
  let after = Inject.apply_faults faults ~seed before in
  let tmp = Filename.temp_file "ocep_session" ".wire" in
  let oc = open_out_bin tmp in
  let wr = Framing.create_writer oc ~trace_names:(Framing.reader_trace_names reader) in
  List.iter (Framing.write wr) after;
  Framing.flush wr;
  close_out oc;
  (tmp, List.length before, List.length after)

let replay ?(config = default) ?tick ?log ~engine reader =
  if config.faults = Inject.no_faults then
    Source.replay_stream ~config:(source_config config) ?tick ~engine reader
  else begin
    let tmp, before, after =
      degraded_copy ~faults:config.faults ~seed:config.fault_seed reader
    in
    (match log with
    | Some log ->
      log
        (Format.asprintf "faults: %a (seed %d): %d frames -> %d" Inject.pp_faults
           config.faults config.fault_seed before after)
    | None -> ());
    Fun.protect
      ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
      (fun () ->
        let ic = open_in_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            Source.replay_stream ~config:(source_config config) ?tick ~engine
              (Framing.create_reader ic)))
  end
