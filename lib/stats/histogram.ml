let buckets = 128
let lo = 0.1 (* µs *)
let hi = 1e7 (* µs = 10 s *)
let range = (lo, hi)
let decades = log10 (hi /. lo) (* 8 *)
let step = decades /. float_of_int buckets
let bucket_ratio = 10. ** step

type t = {
  counts : int array;  (* buckets + 2: counts.(0) underflow, counts.(buckets+1) overflow *)
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

let create () =
  { counts = Array.make (buckets + 2) 0; count = 0; sum = 0.; min = infinity; max = neg_infinity }

let index v =
  if v < lo then 0
  else if v >= hi then buckets + 1
  else begin
    (* guard the float edges: log10 rounding must not escape [1, buckets] *)
    let i = 1 + int_of_float (log10 (v /. lo) /. step) in
    if i < 1 then 1 else if i > buckets then buckets else i
  end

let record t v =
  if Float.is_nan v then invalid_arg "Histogram.record: NaN sample";
  t.counts.(index v) <- t.counts.(index v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v

let count t = t.count
let sum t = t.sum

let nonempty t fn = if t.count = 0 then invalid_arg ("Histogram." ^ fn ^ ": empty")

let min_value t =
  nonempty t "min_value";
  t.min

let max_value t =
  nonempty t "max_value";
  t.max

let mean t =
  nonempty t "mean";
  t.sum /. float_of_int t.count

let merge a b =
  {
    counts = Array.init (buckets + 2) (fun i -> a.counts.(i) + b.counts.(i));
    count = a.count + b.count;
    sum = a.sum +. b.sum;
    min = Float.min a.min b.min;
    max = Float.max a.max b.max;
  }

(* Upper edge and representative value of bucket [b] (0 = underflow,
   buckets + 1 = overflow). The under/overflow representatives are the
   exact extremes, which necessarily live there when those buckets are
   non-empty. *)
let upper_edge b = if b > buckets then infinity else lo *. (10. ** (float_of_int b *. step))

let rep t b =
  if b = 0 then t.min
  else if b > buckets then t.max
  else lo *. (10. ** ((float_of_int b -. 0.5) *. step))

let quantile t q =
  nonempty t "quantile";
  if Float.is_nan q || q < 0. || q > 1. then invalid_arg "Histogram.quantile: q outside [0,1]";
  (* 0-indexed target rank, as in Summary.quantile over a sorted array *)
  let rank = q *. float_of_int (t.count - 1) in
  let b = ref 0 in
  let cum = ref t.counts.(0) in
  while float_of_int !cum <= rank do
    incr b;
    cum := !cum + t.counts.(!b)
  done;
  Float.max t.min (Float.min t.max (rep t !b))

type tail = { p50 : float; p95 : float; p99 : float; p999 : float }

let tail t =
  { p50 = quantile t 0.5; p95 = quantile t 0.95; p99 = quantile t 0.99; p999 = quantile t 0.999 }

let iter_nonempty t f =
  Array.iteri
    (fun b c -> if c > 0 then f ~upper:(upper_edge b) ~rep:(rep t b) ~count:c)
    t.counts
