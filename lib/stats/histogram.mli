(** Bounded-memory latency histogram: a fixed geometric (log-bucketed)
    grid of {!buckets} buckets spanning {!range} (0.1 µs – 10 s, the span
    of every latency the Figs. 6–10 evaluation can plausibly observe),
    plus one underflow and one overflow bucket. Recording is O(1) (one
    [log10] and an array increment), storage is O(buckets) regardless of
    how many samples are recorded, and two histograms over the same grid
    merge by bucket-wise addition — the KLL-style trade the paper's
    ≥1M-event online setting needs instead of an unbounded sample vector.

    Quantiles are estimated by walking the cumulative counts and
    answering with the geometric midpoint of the target bucket, so the
    relative error of any quantile is at most one bucket width
    ({!bucket_ratio} − 1 ≈ 15.5%, i.e. ±7.5% around the midpoint).
    Exact [min]/[max]/[sum] are tracked alongside the grid.

    Not thread-safe: record and read from one domain (the engine records
    latencies only on the ingesting domain). *)

type t

val buckets : int
(** Interior buckets of the grid (128). *)

val range : float * float
(** [(lo, hi)]: values in µs below [lo] land in the underflow bucket,
    values ≥ [hi] in the overflow bucket. (0.1, 1e7). *)

val bucket_ratio : float
(** Upper/lower edge ratio of one bucket ([10^(8/128)] ≈ 1.1548): the
    multiplicative resolution of every estimated quantile. *)

val create : unit -> t

val record : t -> float -> unit
(** Add one sample (µs). Raises [Invalid_argument] on NaN; negative
    values count into the underflow bucket. *)

val count : t -> int
val sum : t -> float
val min_value : t -> float
(** Exact smallest recorded sample; raises [Invalid_argument] if empty. *)

val max_value : t -> float
(** Exact largest recorded sample; raises [Invalid_argument] if empty. *)

val mean : t -> float
(** Exact mean ([sum/count]); raises [Invalid_argument] if empty. *)

val merge : t -> t -> t
(** Bucket-wise sum, fresh result; the arguments are unchanged. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] ∈ \[0,1\]: the geometric midpoint of the
    bucket holding the q-th order statistic, clamped to
    \[[min_value], [max_value]\]. Raises [Invalid_argument] if the
    histogram is empty or [q] is outside \[0,1\]. *)

type tail = { p50 : float; p95 : float; p99 : float; p999 : float }

val tail : t -> tail
(** The tail percentiles the paper's boxplots cannot show; raises
    [Invalid_argument] if empty. *)

val iter_nonempty : t -> (upper:float -> rep:float -> count:int -> unit) -> unit
(** Visit the non-empty buckets in ascending value order. [upper] is the
    bucket's upper edge ([infinity] for the overflow bucket), [rep] its
    representative value (geometric midpoint; the exact [min]/[max] for
    the underflow/overflow buckets). Used by the Prometheus exposition,
    which renders cumulative [le] lines from exactly these edges. *)
