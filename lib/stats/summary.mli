(** Boxplot summaries in the style of the paper's Figs. 6–10: quartiles,
    1.5×IQR whiskers, and outlier counts. *)

type t = {
  n : int;
  min : float;
  q1 : float;
  median : float;
  q3 : float;
  max : float;
  mean : float;
  bottom_whisker : float;  (** smallest sample ≥ Q1 − 1.5·IQR *)
  top_whisker : float;  (** largest sample ≤ Q3 + 1.5·IQR *)
  outliers_above : int;
  outliers_below : int;
}

val of_samples : float array -> t
(** Raises [Invalid_argument] on an empty array or on a NaN sample (a
    NaN would silently corrupt every quartile). Quartiles use linear
    interpolation between order statistics; sorting uses [Float.compare]
    (total and faster than the polymorphic compare). *)

val of_histogram : Histogram.t -> t
(** The O(buckets)-memory path for ≥1M-event runs: quartiles and
    whiskers are read off the histogram grid and agree with
    {!of_samples} on the underlying samples within one bucket width
    ({!Histogram.bucket_ratio}); [n], [min], [max] and [mean] are exact.
    Outlier counts are resolved at bucket granularity. Raises
    [Invalid_argument] on an empty histogram. *)

val quantile : float array -> float -> float
(** [quantile sorted q] with [q] in \[0,1\]; the array must be sorted.
    Raises [Invalid_argument] if the array is empty or [q] is outside
    \[0,1\]. *)

val pp : Format.formatter -> t -> unit

val pp_fig10_header : Format.formatter -> unit -> unit
val pp_fig10_row : Format.formatter -> string -> t -> unit
(** One row of the paper's Fig. 10 table:
    test case, Q1, Med, Q3, Top Whisker, Max (μs). *)
