type t = {
  n : int;
  min : float;
  q1 : float;
  median : float;
  q3 : float;
  max : float;
  mean : float;
  bottom_whisker : float;
  top_whisker : float;
  outliers_above : int;
  outliers_below : int;
}

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.quantile: empty";
  if Float.is_nan q || q < 0. || q > 1. then invalid_arg "Summary.quantile: q outside [0,1]";
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let of_samples samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Summary.of_samples: empty";
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg "Summary.of_samples: NaN sample")
    samples;
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let q1 = quantile sorted 0.25 in
  let median = quantile sorted 0.5 in
  let q3 = quantile sorted 0.75 in
  let iqr = q3 -. q1 in
  let lo_fence = q1 -. (1.5 *. iqr) in
  let hi_fence = q3 +. (1.5 *. iqr) in
  let bottom_whisker = ref sorted.(n - 1) in
  let top_whisker = ref sorted.(0) in
  let outliers_above = ref 0 in
  let outliers_below = ref 0 in
  Array.iter
    (fun x ->
      if x < lo_fence then incr outliers_below
      else if x < !bottom_whisker then bottom_whisker := x;
      if x > hi_fence then incr outliers_above
      else if x > !top_whisker then top_whisker := x)
    sorted;
  let mean = Array.fold_left ( +. ) 0. sorted /. float_of_int n in
  {
    n;
    min = sorted.(0);
    q1;
    median;
    q3;
    max = sorted.(n - 1);
    mean;
    bottom_whisker = !bottom_whisker;
    top_whisker = !top_whisker;
    outliers_above = !outliers_above;
    outliers_below = !outliers_below;
  }

(* The bounded-memory counterpart of [of_samples]: every field is read
   off the histogram's bucket grid, so quartiles and whiskers carry its
   one-bucket-width relative error while n/min/max/mean stay exact.
   Whiskers and outlier counts are resolved at bucket granularity: a
   bucket is entirely in or out of the 1.5·IQR fences according to its
   representative value. *)
let of_histogram h =
  if Histogram.count h = 0 then invalid_arg "Summary.of_histogram: empty";
  let n = Histogram.count h in
  let min = Histogram.min_value h in
  let max = Histogram.max_value h in
  let q1 = Histogram.quantile h 0.25 in
  let median = Histogram.quantile h 0.5 in
  let q3 = Histogram.quantile h 0.75 in
  let iqr = q3 -. q1 in
  let lo_fence = q1 -. (1.5 *. iqr) in
  let hi_fence = q3 +. (1.5 *. iqr) in
  let bottom_whisker = ref max in
  let top_whisker = ref min in
  let outliers_above = ref 0 in
  let outliers_below = ref 0 in
  Histogram.iter_nonempty h (fun ~upper:_ ~rep ~count ->
      if rep < lo_fence then outliers_below := !outliers_below + count
      else if rep < !bottom_whisker then bottom_whisker := rep;
      if rep > hi_fence then outliers_above := !outliers_above + count
      else if rep > !top_whisker then top_whisker := rep);
  {
    n;
    min;
    q1;
    median;
    q3;
    max;
    mean = Histogram.mean h;
    bottom_whisker = Float.max min !bottom_whisker;
    top_whisker = Float.min max !top_whisker;
    outliers_above = !outliers_above;
    outliers_below = !outliers_below;
  }

let pp ppf t =
  Format.fprintf ppf
    "n=%d min=%.1f q1=%.1f med=%.1f q3=%.1f topw=%.1f max=%.1f mean=%.1f outliers=+%d/-%d" t.n
    t.min t.q1 t.median t.q3 t.top_whisker t.max t.mean t.outliers_above t.outliers_below

let pp_fig10_header ppf () =
  Format.fprintf ppf "%-22s %10s %10s %10s %14s %12s@." "Test Case" "Q1" "Med" "Q3" "Top Whisker"
    "Max"

let pp_fig10_row ppf name t =
  Format.fprintf ppf "%-22s %10.0f %10.0f %10.0f %14.0f %12.0f@." name t.q1 t.median t.q3
    t.top_whisker t.max
