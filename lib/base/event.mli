(** Events of a distributed computation.

    An event is a state transition observed on a trace: the sending or
    receiving of a message, or an internal action. Events carry the three
    attributes the pattern language matches on — the trace (process) name,
    a type, and a free-form text field — plus a Fidge/Mattern vector
    timestamp assigned by the POET substrate. *)

type trace_id = int
(** Dense trace identifiers in [0, n). *)

type kind =
  | Send of { msg : int }  (** [msg] uniquely identifies the message; the matching receive carries the same id. *)
  | Receive of { msg : int }
  | Internal

(** An event before timestamping, as emitted by the target system. *)
type raw = {
  r_trace : trace_id;
  r_etype : string;
  r_text : string;
  r_kind : kind;
}

type t = {
  trace : trace_id;
  trace_name : string;
  index : int;  (** 1-based position on its trace. *)
  etype : string;
  text : string;
  tsym : int;  (** {!Symbol} id of [trace_name] in the owning store's table. *)
  esym : int;  (** Symbol id of [etype]. *)
  xsym : int;  (** Symbol id of [text]. *)
  kind : kind;
  vc : Vclock.t;
}
(** The three attribute strings are interned once at ingest; everything
    downstream of the POET boundary (dispatch, histories, the matcher)
    compares the symbol ids, so the strings exist only for reports and
    pretty-printing. *)

val none : t
(** Sentinel for "no event" slots in dense arrays (trace [-1], empty
    strings, zero-dimension clock). Test with physical equality
    ([e == Event.none]); never ingest or match it. *)

type relation = Before | After | Concurrent | Equal

val hb : t -> t -> bool
(** [hb a b] is Lamport's happened-before: on the same trace it is index
    order; across traces it is [Vclock.get b.vc a.trace >= a.index] — the
    constant-time test of Section III-A. *)

val relation : t -> t -> relation
(** Full classification of a pair of events. *)

val concurrent : t -> t -> bool
val equal : t -> t -> bool
(** Identity: same trace and same index. *)

val msg_of : t -> int option
(** The message id if the event is a send or a receive. *)

val is_comm : t -> bool
(** True for send and receive events. *)

val pp : Format.formatter -> t -> unit
val pp_raw : Format.formatter -> raw -> unit
val pp_relation : Format.formatter -> relation -> unit
