(** Vector clocks over traces (Fidge/Mattern timestamps).

    A trace is any sequential entity of the monitored computation — a
    process, a thread, or a passive entity such as a semaphore. The clock
    dimension is the number of traces. Entry [i] of the timestamp of an
    event [e] is the index (1-based position) of the latest event on trace
    [i] that causally precedes [e] (or equals [e] when [i] is [e]'s own
    trace); [0] means no event of trace [i] precedes [e]. *)

type t

val make : dim:int -> t
(** All-zero clock. *)

val dim : t -> int
val get : t -> int -> int

val tick : t -> trace:int -> t
(** [tick v ~trace] is a fresh clock equal to [v] with entry [trace]
    incremented — the timestamp of the next event on [trace] whose most
    recent causal context is [v]. *)

val merge : t -> t -> t
(** Pointwise maximum (least upper bound). *)

val tick_merge : t -> t -> trace:int -> t
(** [tick_merge v incoming ~trace] merges then ticks; the timestamp of a
    receive event. *)

val leq : t -> t -> bool
(** Pointwise [<=]; the clock partial order. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order for use in containers only (lexicographic); unrelated to
    causality. *)

val to_array : t -> int array
val of_array : int array -> t

val unsafe_of_array : int array -> t
(** Adopt the array without copying; the caller must never mutate it
    afterwards. Used by the materialization path of the arena-backed
    store, which already owns a fresh decode of the pooled clock. *)


val pp : Format.formatter -> t -> unit
