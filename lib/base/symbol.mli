(** Append-only string interning table.

    Every distinct string is assigned a dense non-negative id in
    first-intern order; ids are never reused or invalidated. Interning an
    already-known string is a single hash lookup, and [name] is an array
    read — which is what lets the matcher hot path replace string hashing
    and structural comparison with integer equality: two strings interned
    in the same table are equal iff their ids are equal.

    A table is owned by one {!Ocep_poet.Poet} store; symbols from
    different tables are not comparable. Not thread-safe: interning
    happens only on the ingest path (single domain), while the read-only
    [name]/[size] accessors are safe from the fan-out workers because the
    table is append-only and workers only look up ids interned before
    the batch started. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** The id of the string, allocating the next dense id on first sight.
    Idempotent: [intern t s = intern t s]. O(1) amortized. *)

val lookup : t -> string -> int option
(** The id if the string was already interned, without allocating one.
    A [None] answer means no interned symbol can equal this string. *)

val name : t -> int -> string
(** The string of an id. Raises [Invalid_argument] for ids never
    returned by [intern]. *)

val size : t -> int
(** Number of distinct strings interned so far (ids are [0, size)). *)
