type t = int array

let make ~dim = Array.make dim 0

let dim = Array.length

let get v i = v.(i)

let tick v ~trace =
  let v' = Array.copy v in
  v'.(trace) <- v'.(trace) + 1;
  v'

let merge a b =
  if Array.length a <> Array.length b then invalid_arg "Vclock.merge: dimension mismatch";
  Array.mapi (fun i x -> max x b.(i)) a

let tick_merge v incoming ~trace =
  let v' = merge v incoming in
  v'.(trace) <- v.(trace) + 1;
  v'

let leq a b =
  if Array.length a <> Array.length b then invalid_arg "Vclock.leq: dimension mismatch";
  let rec loop i = i >= Array.length a || (a.(i) <= b.(i) && loop (i + 1)) in
  loop 0

let equal a b = a = b

let compare = Stdlib.compare

let to_array = Array.copy

let of_array = Array.copy

let unsafe_of_array v = v

let pp ppf v =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_array ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int)
    v
