(** The one typed error channel of the engine's runtime API and the
    service control plane.

    Before the service tier, runtime misuse surfaced as an untyped mix
    of [Invalid_argument] and [Failure] raises — fine for a library
    whose only caller is the CLI, useless for a control plane that must
    ship the failure back over a socket and let the client react per
    case. Every recoverable runtime error now is one {!t} variant,
    raised as {!Error}, rendered with {!to_string}, and round-tripped
    over the wire with {!encode}/{!decode} (the service's [err] control
    responses carry exactly this encoding).

    Static misuse — nonsensical configs, out-of-range arguments,
    oversized patterns at compile time — intentionally stays
    [Invalid_argument]: those are programming errors at call sites the
    caller controls, not runtime conditions a remote client could
    provoke or handle. *)

type t =
  | Stale_handle of { pattern : int }
      (** an operation through a {!Ocep.Engine.Handle.t} whose pattern
          has been detached *)
  | Unknown_pattern of string  (** no live pattern under that id or name *)
  | Unknown_tenant of string
  | Quota_exceeded of { tenant : string; what : string; limit : int }
      (** a per-tenant bound was hit: [what] names it
          (["patterns"], ["events"]) *)
  | Trace_mismatch of string
      (** a session's trace table disagrees with the tenant's *)
  | Parse_error of string  (** pattern source rejected by the parser *)
  | Compile_error of string  (** pattern rejected by the compiler *)
  | Decode_error of string  (** malformed wire or control payload *)
  | Bad_request of string  (** a well-formed control frame used wrongly *)
  | Drained of string
      (** the tenant's stream was drained; no further events are accepted *)

exception Error of t

val error : t -> 'a
(** [error e] raises [Error e]. *)

val to_string : t -> string
(** Human-readable, one line, starts with the {!code}. *)

val code : t -> string
(** Stable machine-readable tag, e.g. ["stale-handle"]; what the wire
    encoding leads with. *)

val encode : t -> string
(** [code '\x00' detail] — NUL-free on both sides, safe inside a
    NUL-separated control payload. *)

val decode : string -> t
(** Inverse of {!encode}; unknown codes come back as [Decode_error]
    naming the alien code, so an old client degrades readably against a
    newer server. *)

val pp : Format.formatter -> t -> unit
