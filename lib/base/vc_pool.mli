(** Interval-compressed vector clocks over a flat backing pool.

    The allocation-free twin of {!Vclock}: the live clock of every
    trace is a dense row of one shared array mutated in place (a tick
    is a single store), and immutable {e snapshots} — the timestamp a
    send leaves for its receive, the persistent clock of a
    communication event — live in an off-heap Bigarray pool,
    referenced by integer handles.

    Snapshots are interval-compressed: a clock is stored as a short
    list of [(lo, hi, v)] runs — traces [lo..hi] all carry value [v],
    uncovered traces are 0 — because monitored streams are dominated
    by trace-consecutive same-shape activity (the same regularity the
    paper's Section V pruning rule exploits), so a handful of ranges
    usually covers the whole vector. Past [max_runs] ranges the dense
    row is smaller and the encoder falls back to it. [leq], [equal]
    and [merge] are simultaneous segment sweeps: O(runs), not O(dim),
    on compressed operands.

    Not thread-safe for writers; safe for concurrent readers while no
    tick/snapshot is running (the engine's fan-out workers only read
    between arrivals). *)

type t

val create : ?max_runs:int -> dim:int -> unit -> t
(** [max_runs] defaults to [max 4 ((dim + 2) / 3)] — the break-even
    point past which the dense fallback is no larger than the runs. *)

val dim : t -> int

val words : t -> int
(** Words of pool storage currently in use (snapshot footprint). *)

(** {1 Live rows (in-place, allocation-free)} *)

val get : t -> trace:int -> entry:int -> int

val tick : t -> trace:int -> int
(** Increment the trace's own entry in place; returns the new value
    (the 1-based index of the event being timestamped). *)

val merge_into : t -> trace:int -> int -> unit
(** Pointwise max of a snapshot into the trace's live row. O(runs):
    only entries the snapshot covers are touched. *)

val recv_update : t -> trace:int -> int -> int
(** Fused receive: [merge_into t ~trace h], tick the trace's own entry,
    and freeze the result — observably identical to that three-call
    composition but a single row pass in the dense steady state.
    Returns the new snapshot's handle. *)

val current_to_array : t -> trace:int -> int array
(** Dense copy of the live row (allocates — materialization only). *)

(** {1 Snapshots} *)

val snapshot : t -> trace:int -> int
(** Freeze the trace's live row into the pool; returns its handle. *)

val encode : t -> int array -> int
(** Freeze an arbitrary dense clock (tests, admission replays). *)

val read : t -> int -> entry:int -> int
(** One entry of a snapshot. O(runs). *)

val to_array : t -> int -> int array

val decode_into : t -> int -> int array -> unit
(** Decode a snapshot into a caller-owned scratch row of length [dim]. *)

val leq : t -> int -> int -> bool
(** Pointwise [<=] of two snapshots — a simultaneous segment sweep. *)

val equal : t -> int -> int -> bool

val merge : t -> int -> int -> int
(** Pointwise max of two snapshots as a fresh snapshot. *)

val tick_merge : t -> int -> int -> trace:int -> int
(** [tick_merge t local incoming ~trace]: merge then tick the owner
    entry — the timestamp of a receive event, as a fresh snapshot. *)

val is_dense : t -> int -> bool
(** True if the snapshot fell back to the dense row encoding. *)

val runs : t -> int -> int
(** Number of interval runs of a snapshot; -1 for a dense fallback. *)

val nil : int
(** Sentinel handle (-1): "no snapshot". Never returned by the
    constructors; safe to store in handle columns. *)

val pp : Format.formatter -> t * int -> unit
