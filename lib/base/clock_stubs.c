/* Monotonic clock for latency measurement (see clock.mli). */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value ocep_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
