/* Monotonic clock for latency measurement (see clock.mli). */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value ocep_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}

/* Unboxed variant for the span-tracing hot path: a noalloc call returning
   the time as a double of microseconds costs neither an Int64 box nor a
   GC frame.  53 bits of mantissa hold microseconds exactly for ~285
   years of uptime, far beyond any CLOCK_MONOTONIC origin. */
double ocep_clock_monotonic_us_unboxed(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (double)ts.tv_sec * 1e6 + (double)ts.tv_nsec * 1e-3;
}

CAMLprim value ocep_clock_monotonic_us(value unit)
{
  return caml_copy_double(ocep_clock_monotonic_us_unboxed(unit));
}
