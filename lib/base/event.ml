type trace_id = int

type kind = Send of { msg : int } | Receive of { msg : int } | Internal

type raw = {
  r_trace : trace_id;
  r_etype : string;
  r_text : string;
  r_kind : kind;
}

type t = {
  trace : trace_id;
  trace_name : string;
  index : int;
  etype : string;
  text : string;
  tsym : int;
  esym : int;
  xsym : int;
  kind : kind;
  vc : Vclock.t;
}

type relation = Before | After | Concurrent | Equal

(* A single shared sentinel lets dense event slots ("nothing here yet")
   be tested with one physical-equality compare instead of an option. *)
let none =
  {
    trace = -1;
    trace_name = "";
    index = -1;
    etype = "";
    text = "";
    tsym = -1;
    esym = -1;
    xsym = -1;
    kind = Internal;
    vc = Vclock.make ~dim:0;
  }

let equal a b = a.trace = b.trace && a.index = b.index

let hb a b =
  if a.trace = b.trace then a.index < b.index
  else Vclock.get b.vc a.trace >= a.index

let relation a b =
  if a.trace = b.trace then
    if a.index = b.index then Equal
    else if a.index < b.index then Before
    else After
  else if Vclock.get b.vc a.trace >= a.index then Before
  else if Vclock.get a.vc b.trace >= b.index then After
  else Concurrent

let concurrent a b = relation a b = Concurrent

let msg_of e =
  match e.kind with
  | Send { msg } | Receive { msg } -> Some msg
  | Internal -> None

let is_comm e =
  match e.kind with
  | Send _ | Receive _ -> true
  | Internal -> false

let pp_kind ppf = function
  | Send { msg } -> Format.fprintf ppf "send#%d" msg
  | Receive { msg } -> Format.fprintf ppf "recv#%d" msg
  | Internal -> Format.fprintf ppf "internal"

let pp ppf e =
  Format.fprintf ppf "%s/%d %s(%s) %a" e.trace_name e.index e.etype e.text pp_kind e.kind

let pp_raw ppf r =
  Format.fprintf ppf "t%d %s(%s) %a" r.r_trace r.r_etype r.r_text pp_kind r.r_kind

let pp_relation ppf = function
  | Before -> Format.fprintf ppf "->"
  | After -> Format.fprintf ppf "<-"
  | Concurrent -> Format.fprintf ppf "||"
  | Equal -> Format.fprintf ppf "=="
