(** Monotonic time for latency measurement.

    [Unix.gettimeofday] is wall-clock time: an NTP step (or a manual
    [date] call) in the middle of a run silently corrupts every latency
    sample taken across it. All timing in this repository goes through
    this module instead, which reads the OS monotonic clock
    ([CLOCK_MONOTONIC] on Linux): meaningless as an absolute date, but
    guaranteed never to jump. *)

val now_ns : unit -> int64
(** Nanoseconds since an arbitrary fixed origin (e.g. boot). Only
    differences are meaningful. *)

external now_us : unit -> (float[@unboxed])
  = "ocep_clock_monotonic_us" "ocep_clock_monotonic_us_unboxed"
[@@noalloc]
(** [now_ns] as a double of microseconds, via an allocation-free
    external: no [Int64] box, no GC frame — the cheapest clock read in
    this module, for instrumentation on hot paths (span tracing reads it
    twice per search). Doubles hold microseconds exactly for ~285 years
    of monotonic-clock uptime. *)

val now_s : unit -> float
(** [now_ns] in seconds; keeps microsecond precision for about 104 days
    of uptime, far beyond any measured interval here. *)
