type t =
  | Stale_handle of { pattern : int }
  | Unknown_pattern of string
  | Unknown_tenant of string
  | Quota_exceeded of { tenant : string; what : string; limit : int }
  | Trace_mismatch of string
  | Parse_error of string
  | Compile_error of string
  | Decode_error of string
  | Bad_request of string
  | Drained of string

exception Error of t

let error e = raise (Error e)

let code = function
  | Stale_handle _ -> "stale-handle"
  | Unknown_pattern _ -> "unknown-pattern"
  | Unknown_tenant _ -> "unknown-tenant"
  | Quota_exceeded _ -> "quota-exceeded"
  | Trace_mismatch _ -> "trace-mismatch"
  | Parse_error _ -> "parse-error"
  | Compile_error _ -> "compile-error"
  | Decode_error _ -> "decode-error"
  | Bad_request _ -> "bad-request"
  | Drained _ -> "drained"

let detail = function
  | Stale_handle { pattern } -> Printf.sprintf "pattern %d was detached" pattern
  | Unknown_pattern s -> s
  | Unknown_tenant s -> s
  | Quota_exceeded { tenant; what; limit } ->
    Printf.sprintf "tenant %s: %s limit %d reached" tenant what limit
  | Trace_mismatch s -> s
  | Parse_error s -> s
  | Compile_error s -> s
  | Decode_error s -> s
  | Bad_request s -> s
  | Drained s -> s

let to_string e = Printf.sprintf "%s: %s" (code e) (detail e)
let pp ppf e = Format.pp_print_string ppf (to_string e)

(* The wire form must survive a NUL-separated control payload, so the
   separator between code and detail is itself the one byte neither side
   may contain; strip any stray NULs from the detail on encode. *)
let strip_nul s =
  if String.contains s '\x00' then
    String.concat "." (String.split_on_char '\x00' s)
  else s

(* [Stale_handle] and [Quota_exceeded] carry structure; flatten it into
   the detail in a shape [decode] can recover exactly. *)
let encode e =
  let d =
    match e with
    | Stale_handle { pattern } -> string_of_int pattern
    | Quota_exceeded { tenant; what; limit } ->
      Printf.sprintf "%s\x01%s\x01%d" (strip_nul tenant) (strip_nul what) limit
    | e -> strip_nul (detail e)
  in
  code e ^ "\x00" ^ d

let decode s =
  match String.index_opt s '\x00' with
  | None -> Decode_error (Printf.sprintf "unseparated error payload %S" s)
  | Some i -> (
    let c = String.sub s 0 i and d = String.sub s (i + 1) (String.length s - i - 1) in
    match c with
    | "stale-handle" -> (
      match int_of_string_opt d with
      | Some p -> Stale_handle { pattern = p }
      | None -> Decode_error (Printf.sprintf "bad stale-handle payload %S" d))
    | "unknown-pattern" -> Unknown_pattern d
    | "unknown-tenant" -> Unknown_tenant d
    | "quota-exceeded" -> (
      match String.split_on_char '\x01' d with
      | [ tenant; what; limit ] -> (
        match int_of_string_opt limit with
        | Some limit -> Quota_exceeded { tenant; what; limit }
        | None -> Decode_error (Printf.sprintf "bad quota-exceeded payload %S" d))
      | _ -> Decode_error (Printf.sprintf "bad quota-exceeded payload %S" d))
    | "trace-mismatch" -> Trace_mismatch d
    | "parse-error" -> Parse_error d
    | "compile-error" -> Compile_error d
    | "decode-error" -> Decode_error d
    | "bad-request" -> Bad_request d
    | "drained" -> Drained d
    | c -> Decode_error (Printf.sprintf "unknown error code %S (%s)" c d))
