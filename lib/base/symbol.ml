type t = { ids : (string, int) Hashtbl.t; names : string Vec.t }

let create () = { ids = Hashtbl.create 64; names = Vec.create () }

(* exception-based lookup: the hit path (virtually every call after
   warm-up) does one hash probe and allocates nothing *)
let intern t s =
  match Hashtbl.find t.ids s with
  | id -> id
  | exception Not_found ->
    let id = Vec.length t.names in
    Hashtbl.add t.ids s id;
    Vec.push t.names s;
    id

let lookup t s = Hashtbl.find_opt t.ids s

let name t id =
  if id < 0 || id >= Vec.length t.names then
    invalid_arg (Printf.sprintf "Symbol.name: unknown id %d" id)
  else Vec.get t.names id

let size t = Vec.length t.names
