(** Flat struct-of-arrays event store.

    The columnar twin of {!Event.t}: one row per ingested event,
    identified by its dense [eid] (ingestion sequence number), all
    fields ints in parallel off-heap Bigarray columns — trace, 1-based
    index, the three attribute symbols, a kind tag, the message id,
    and a {!Vc_pool} snapshot handle for the vector timestamp of
    communication events. Pushing a row allocates nothing on the OCaml
    heap (columns double off-heap); everything downstream of the POET
    boundary references events by [eid] and reads single columns. The
    boxed {!Event.t} survives as a lazily materialized view built by
    the owning store ({!Ocep_poet.Poet.materialize}), which holds the
    symbol table and clock pool the arena deliberately does not.

    Single writer (the ingest path); concurrent readers are safe while
    no push is in flight — the engine's fan-out workers only read
    between arrivals. *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int
(** Rows pushed so far; valid eids are [0, length). *)

val push :
  t ->
  trace:int ->
  index:int ->
  tsym:int ->
  esym:int ->
  xsym:int ->
  kind:int ->
  msg:int ->
  vch:int ->
  int
(** Append a row; returns its eid ([= length] before the push). *)

(** {1 Column reads} (bounds-checked; raise [Invalid_argument]) *)

val trace : t -> int -> int
val index : t -> int -> int
val tsym : t -> int -> int
val esym : t -> int -> int
val xsym : t -> int -> int
val kind_tag : t -> int -> int
val msg : t -> int -> int
(** -1 for internal events. *)

val vch : t -> int -> int
(** {!Vc_pool.nil} when no snapshot was persisted (internal events). *)

val kind : t -> int -> Event.kind

(** {1 Unchecked column reads} (dispatch hot path; the eid must come
    from a completed {!push}) *)

val unsafe_trace : t -> int -> int
val unsafe_index : t -> int -> int
val unsafe_tsym : t -> int -> int
val unsafe_esym : t -> int -> int
val unsafe_xsym : t -> int -> int
val unsafe_kind_tag : t -> int -> int
val unsafe_msg : t -> int -> int

(** {1 Kind tags} *)

val k_internal : int
val k_send : int
val k_recv : int
val kind_tag_of : Event.kind -> int
val is_comm_tag : int -> bool

val footprint_bytes : t -> int
(** Off-heap bytes currently reserved by the columns. *)
