(* Flat struct-of-arrays event store.

   One row per ingested event, identified by its dense [eid] (the
   ingestion sequence number). Every attribute the hot path touches is
   an int — symbol ids for the three matched attributes, a kind tag, a
   message id, a {!Vc_pool} snapshot handle — held in parallel off-heap
   Bigarray columns, so recording an event is eight unchecked stores
   and no OCaml-heap allocation, and reading any field downstream is
   one load. The boxed {!Event.t} record survives only as a
   materialized view built by the owning POET store (it needs the
   symbol table for the strings and the clock pool for the vector
   timestamp, which the arena deliberately does not know about). *)

open Bigarray

type col = (int, int_elt, c_layout) Array1.t

(* kind tags *)
let k_internal = 0

let k_send = 1

let k_recv = 2

type t = {
  mutable trace : col;
  mutable index : col;  (* 1-based position on its trace *)
  mutable tsym : col;
  mutable esym : col;
  mutable xsym : col;
  mutable kind : col;  (* k_internal | k_send | k_recv *)
  mutable msg : col;  (* message id; -1 for internal events *)
  mutable vch : col;  (* Vc_pool snapshot handle; Vc_pool.nil when absent *)
  mutable cap : int;
  mutable len : int;
}

let initial_cap = 4096

let mkcol n = Array1.create int c_layout n

let create ?(capacity = initial_cap) () =
  let n = max 1 capacity in
  {
    trace = mkcol n;
    index = mkcol n;
    tsym = mkcol n;
    esym = mkcol n;
    xsym = mkcol n;
    kind = mkcol n;
    msg = mkcol n;
    vch = mkcol n;
    cap = n;
    len = 0;
  }

let length t = t.len

let grow t =
  let cap' = t.cap * 2 in
  let g (c : col) =
    let c' = mkcol cap' in
    Array1.blit c (Array1.sub c' 0 t.cap);
    c'
  in
  t.trace <- g t.trace;
  t.index <- g t.index;
  t.tsym <- g t.tsym;
  t.esym <- g t.esym;
  t.xsym <- g t.xsym;
  t.kind <- g t.kind;
  t.msg <- g t.msg;
  t.vch <- g t.vch;
  t.cap <- cap'

let push t ~trace ~index ~tsym ~esym ~xsym ~kind ~msg ~vch =
  if t.len >= t.cap then grow t;
  let i = t.len in
  Array1.unsafe_set t.trace i trace;
  Array1.unsafe_set t.index i index;
  Array1.unsafe_set t.tsym i tsym;
  Array1.unsafe_set t.esym i esym;
  Array1.unsafe_set t.xsym i xsym;
  Array1.unsafe_set t.kind i kind;
  Array1.unsafe_set t.msg i msg;
  Array1.unsafe_set t.vch i vch;
  t.len <- i + 1;
  i

let check t eid fn =
  if eid < 0 || eid >= t.len then
    invalid_arg (Printf.sprintf "Arena.%s: eid %d out of range [0, %d)" fn eid t.len)

let trace t eid =
  check t eid "trace";
  Array1.unsafe_get t.trace eid

let index t eid =
  check t eid "index";
  Array1.unsafe_get t.index eid

let tsym t eid =
  check t eid "tsym";
  Array1.unsafe_get t.tsym eid

let esym t eid =
  check t eid "esym";
  Array1.unsafe_get t.esym eid

let xsym t eid =
  check t eid "xsym";
  Array1.unsafe_get t.xsym eid

let kind_tag t eid =
  check t eid "kind_tag";
  Array1.unsafe_get t.kind eid

let msg t eid =
  check t eid "msg";
  Array1.unsafe_get t.msg eid

let vch t eid =
  check t eid "vch";
  Array1.unsafe_get t.vch eid

(* Unchecked column reads for the engine's dispatch loop (the eid comes
   straight from the producing push). *)
let unsafe_trace t eid = Array1.unsafe_get t.trace eid

let unsafe_index t eid = Array1.unsafe_get t.index eid

let unsafe_tsym t eid = Array1.unsafe_get t.tsym eid

let unsafe_esym t eid = Array1.unsafe_get t.esym eid

let unsafe_xsym t eid = Array1.unsafe_get t.xsym eid

let unsafe_kind_tag t eid = Array1.unsafe_get t.kind eid

let unsafe_msg t eid = Array1.unsafe_get t.msg eid

let kind t eid =
  check t eid "kind";
  match Array1.unsafe_get t.kind eid with
  | 0 -> Event.Internal
  | 1 -> Event.Send { msg = Array1.unsafe_get t.msg eid }
  | _ -> Event.Receive { msg = Array1.unsafe_get t.msg eid }

let kind_tag_of = function
  | Event.Internal -> k_internal
  | Event.Send _ -> k_send
  | Event.Receive _ -> k_recv

let is_comm_tag tag = tag <> k_internal

let footprint_bytes t = 8 * t.cap * 8
