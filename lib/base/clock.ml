external now_ns : unit -> int64 = "ocep_clock_monotonic_ns"

let now_s () = Int64.to_float (now_ns ()) *. 1e-9
