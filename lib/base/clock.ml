external now_ns : unit -> int64 = "ocep_clock_monotonic_ns"

external now_us : unit -> (float[@unboxed])
  = "ocep_clock_monotonic_us" "ocep_clock_monotonic_us_unboxed"
[@@noalloc]

let now_s () = Int64.to_float (now_ns ()) *. 1e-9
