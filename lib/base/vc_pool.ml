(* Interval-compressed vector clocks over a chunked backing pool.

   Two stores cooperate:

   - [cur] holds the *live* clock of every trace as a dense row of a
     single [dim * dim] array, mutated in place: a tick is one store, a
     merge is O(runs) of the incoming snapshot. Nothing on the tick
     path allocates on the OCaml heap.

   - the chunk list (off-heap Bigarrays) holds *immutable snapshots*:
     the timestamp a send leaves behind for its receive, and the
     persistent clock of every communication event (so partner events
     can be materialized long after their trace has moved on).
     Snapshots are bump-allocated and referenced by integer handles
     (global word offsets).

   Storage is a sequence of fixed-size chunks rather than one doubling
   buffer: growth appends a fresh chunk, so no snapshot is ever copied
   (the doubling scheme re-blits the entire pool O(log n) times — a
   measurable share of the ingest budget on snapshot-heavy streams)
   and handles stay valid without synchronization concerns. A snapshot
   always lies inside one chunk; the encoder pads to the next chunk
   boundary when the worst-case encoding would straddle (bounded waste:
   at most one max-size snapshot per chunk).

   Snapshot encoding at offset [h]:

     chunk.{h'} = r >= 0   r interval runs follow, 3 words each:
                           (lo, hi, v) — traces lo..hi all carry value
                           v. Runs are sorted, disjoint, maximal;
                           traces not covered by any run are 0.
     chunk.{h'} = -1       dense fallback: dim values follow.
     chunk.{h'} = -2       packed dense fallback: ceil(dim/2) words,
                           word w = entry 2w in the low 32 bits, entry
                           2w+1 in the high 31. Written instead of -1
                           while every value in the pool fits 31 bits
                           (they all originate from ticks, so one flag
                           checked at tick time guards the whole pool);
                           halves the pool traffic of dense-heavy
                           streams, which is exactly the memory-bound
                           case.
     chunk.{h'} = -3       quad-packed dense fallback: ceil(dim/4)
                           words, word w = entries 4w..4w+3 in 15-bit
                           lanes, low to high (4 x 15 = 60 bits, the
                           widest uniform lane that fits OCaml's
                           63-bit boxed-free int). Written instead of
                           -2 while every value in the pool fits 15
                           bits (guarded by the same tick-time
                           argument); halves the traffic again, and a
                           clock entry outgrows 15 bits only after
                           32768 events on one trace, so bench- and
                           typical deployment-length streams never
                           leave this tier.

   The run form exists because the paper's pruning rule (Section V)
   already tells us event streams are dominated by trace-consecutive
   same-shape activity: a clock typically knows a handful of distinct
   values (its own trace plus its recent peers) padded by zeros or by
   a shared older value, so a few (lo, hi, v) ranges cover the whole
   vector. Past [max_runs] ranges the dense row is smaller, so the
   encoder falls back.

   Workloads where every trace talks to every trace defeat the run
   form: almost every snapshot overflows into the dense fallback, and
   the failed run-building pass is pure overhead. [snapshot] therefore
   keeps a per-trace hint: after a fallback it encodes that trace's
   next snapshot dense-first (counting would-be runs in the same pass),
   and returns to run-first as soon as a snapshot would have
   compressed. Either way the bytes written are identical to the
   hint-free encoder's. *)

open Bigarray

type buf = (int, int_elt, c_layout) Array1.t

(* 64K words (512 KB) per chunk *)
let chunk_bits = 16

let chunk_size = 1 lsl chunk_bits

let chunk_mask = chunk_size - 1

type t = {
  dim : int;
  max_runs : int;  (* encoder falls back to dense above this *)
  cur : int array;  (* dim*dim, row-major: live clock of each trace *)
  scratch : int array;  (* dim, decode target for handle-level ops *)
  runbuf : int array;  (* 3*dim + 3, run builder for handle-level merge *)
  snap_max : int;  (* worst-case words of one snapshot *)
  hint_dense : Bytes.t;  (* per trace: last snapshot fell back to dense *)
  hint_skip : Bytes.t;
      (* per trace: dense-hinted snapshots left before the encoder
         re-counts the row's runs. Counting exists only to drop the
         hint when a clock re-compresses, so the steady state of a
         busy trace amortizes it over [skip_interval] snapshots and
         writes the dense form with no per-entry comparisons. *)
  mutable chunks : buf array;
  mutable nchunks : int;  (* chunks in use; chunks.(nchunks-1) is active *)
  mutable len : int;  (* bump pointer: global word offset *)
  mutable big_vals : bool;
      (* some live value no longer fits 31 bits, so dense snapshots
         must use the unpacked form. Every value in the pool originates
         from a tick, so the tick is the one place that needs to
         check. *)
  mutable wide_vals : bool;
      (* some live value no longer fits 15 bits, so dense snapshots
         must use at least the 32-bit packed form; same tick-time
         guard. *)
}

let nil = -1

(* dense-hinted snapshots between run re-counts (see [hint_skip]) *)
let skip_interval = '\015'

let mkchunk () = Array1.create int c_layout chunk_size

let create ?max_runs ~dim () =
  if dim < 0 then invalid_arg "Vc_pool.create: negative dimension";
  let max_runs =
    match max_runs with
    | Some r ->
      if r < 1 then invalid_arg "Vc_pool.create: max_runs must be positive";
      r
    | None -> max 4 ((dim + 2) / 3)
  in
  let snap_max = 1 + max (3 * (max_runs + 1)) dim in
  if snap_max > chunk_size then invalid_arg "Vc_pool.create: dimension exceeds chunk capacity";
  {
    dim;
    max_runs;
    cur = Array.make (max 1 (dim * dim)) 0;
    scratch = Array.make (max 1 dim) 0;
    runbuf = Array.make ((3 * (dim + 1)) + 3) 0;
    snap_max;
    hint_dense = Bytes.make (max 1 dim) '\000';
    hint_skip = Bytes.make (max 1 dim) '\000';
    chunks = [| mkchunk () |];
    nchunks = 1;
    len = 0;
    big_vals = false;
    wide_vals = false;
  }

let dim t = t.dim

let words t = t.len

(* chunk holding handle [h] (reads never cross a chunk boundary) *)
let chunk_of t h = Array.unsafe_get t.chunks (h lsr chunk_bits)

(* ------------------------------------------------------------------ *)
(* Live rows                                                           *)
(* ------------------------------------------------------------------ *)

let get t ~trace ~entry = Array.unsafe_get t.cur ((trace * t.dim) + entry)

let packed_lim = 1 lsl 31

let narrow_lim = 1 lsl 15

let tick t ~trace =
  let i = (trace * t.dim) + trace in
  let v = Array.unsafe_get t.cur i + 1 in
  Array.unsafe_set t.cur i v;
  if v >= narrow_lim then begin
    t.wide_vals <- true;
    if v >= packed_lim then t.big_vals <- true
  end;
  v

let current_to_array t ~trace =
  Array.sub t.cur (trace * t.dim) t.dim

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

(* Make room for one worst-case snapshot at the bump pointer: pad to
   the next chunk boundary if it could straddle, appending a fresh
   chunk when needed. Existing chunks are never copied. *)
let reserve t =
  if (t.len land chunk_mask) + t.snap_max > chunk_size then
    t.len <- ((t.len lsr chunk_bits) + 1) lsl chunk_bits;
  let ci = t.len lsr chunk_bits in
  if ci >= t.nchunks then begin
    if ci >= Array.length t.chunks then begin
      let bigger = Array.make (2 * Array.length t.chunks) t.chunks.(0) in
      Array.blit t.chunks 0 bigger 0 t.nchunks;
      t.chunks <- bigger
    end;
    t.chunks.(ci) <- mkchunk ();
    t.nchunks <- ci + 1
  end

(* Encode [read : int -> int] (length dim) at the bump pointer. One
   pass builds runs; if the run count passes [max_runs] the encoder
   restarts in dense form at the same offset. *)
let encode_with t read =
  reserve t;
  let h = t.len in
  let buf = chunk_of t h in
  let o = h land chunk_mask in
  let dim = t.dim in
  let runs = ref 0 in
  let pos = ref (o + 1) in
  let overflow = ref false in
  let i = ref 0 in
  while (not !overflow) && !i < dim do
    let v = read !i in
    if v = 0 then incr i
    else begin
      let lo = !i in
      let j = ref (lo + 1) in
      while !j < dim && read !j = v do
        incr j
      done;
      if !runs >= t.max_runs then overflow := true
      else begin
        Array1.unsafe_set buf !pos lo;
        Array1.unsafe_set buf (!pos + 1) (!j - 1);
        Array1.unsafe_set buf (!pos + 2) v;
        pos := !pos + 3;
        incr runs;
        i := !j
      end
    end
  done;
  if !overflow then begin
    Array1.unsafe_set buf o (-1);
    for k = 0 to dim - 1 do
      Array1.unsafe_set buf (o + 1 + k) (read k)
    done;
    t.len <- h + 1 + dim
  end
  else begin
    Array1.unsafe_set buf o !runs;
    t.len <- h + 1 + (3 * !runs)
  end;
  h

(* Dense writers for a live row at offset [o] (header word written by
   the caller). Top-level and fully applied, so no call allocates; the
   [_count] variants additionally return the number of interval runs
   the row would have needed, which is what lets the encoder drop the
   dense hint once a clock re-compresses. *)

let copy16 cur base buf o dim =
  let quarter = dim lsr 2 in
  for w = 0 to quarter - 1 do
    let i = base + (4 * w) in
    Array1.unsafe_set buf (o + 1 + w)
      (Array.unsafe_get cur i
      lor (Array.unsafe_get cur (i + 1) lsl 15)
      lor (Array.unsafe_get cur (i + 2) lsl 30)
      lor (Array.unsafe_get cur (i + 3) lsl 45))
  done;
  let rem = dim land 3 in
  if rem > 0 then begin
    let i = base + (4 * quarter) in
    let x = ref (Array.unsafe_get cur i) in
    if rem > 1 then x := !x lor (Array.unsafe_get cur (i + 1) lsl 15);
    if rem > 2 then x := !x lor (Array.unsafe_get cur (i + 2) lsl 30);
    Array1.unsafe_set buf (o + 1 + quarter) !x
  end

let copy16_count cur base buf o dim =
  let runs = ref 0 in
  let prev = ref 0 in
  let quarter = dim lsr 2 in
  for w = 0 to quarter - 1 do
    let i = base + (4 * w) in
    let v0 = Array.unsafe_get cur i in
    let v1 = Array.unsafe_get cur (i + 1) in
    let v2 = Array.unsafe_get cur (i + 2) in
    let v3 = Array.unsafe_get cur (i + 3) in
    Array1.unsafe_set buf (o + 1 + w)
      (v0 lor (v1 lsl 15) lor (v2 lsl 30) lor (v3 lsl 45));
    if v0 <> 0 && v0 <> !prev then incr runs;
    if v1 <> 0 && v1 <> v0 then incr runs;
    if v2 <> 0 && v2 <> v1 then incr runs;
    if v3 <> 0 && v3 <> v2 then incr runs;
    prev := v3
  done;
  let rem = dim land 3 in
  if rem > 0 then begin
    let i = base + (4 * quarter) in
    let v0 = Array.unsafe_get cur i in
    let x = ref v0 in
    if v0 <> 0 && v0 <> !prev then incr runs;
    prev := v0;
    if rem > 1 then begin
      let v1 = Array.unsafe_get cur (i + 1) in
      x := !x lor (v1 lsl 15);
      if v1 <> 0 && v1 <> !prev then incr runs;
      prev := v1
    end;
    if rem > 2 then begin
      let v2 = Array.unsafe_get cur (i + 2) in
      x := !x lor (v2 lsl 30);
      if v2 <> 0 && v2 <> !prev then incr runs;
      prev := v2
    end;
    Array1.unsafe_set buf (o + 1 + quarter) !x
  end;
  !runs

let copy32 cur base buf o dim =
  let half = dim lsr 1 in
  for w = 0 to half - 1 do
    Array1.unsafe_set buf (o + 1 + w)
      (Array.unsafe_get cur (base + (2 * w))
      lor (Array.unsafe_get cur (base + (2 * w) + 1) lsl 32))
  done;
  if dim land 1 = 1 then
    Array1.unsafe_set buf (o + 1 + half) (Array.unsafe_get cur (base + dim - 1))

let copy32_count cur base buf o dim =
  let runs = ref 0 in
  let prev = ref 0 in
  let half = dim lsr 1 in
  for w = 0 to half - 1 do
    let v0 = Array.unsafe_get cur (base + (2 * w)) in
    let v1 = Array.unsafe_get cur (base + (2 * w) + 1) in
    Array1.unsafe_set buf (o + 1 + w) (v0 lor (v1 lsl 32));
    if v0 <> 0 && v0 <> !prev then incr runs;
    if v1 <> 0 && v1 <> v0 then incr runs;
    prev := v1
  done;
  if dim land 1 = 1 then begin
    let v = Array.unsafe_get cur (base + dim - 1) in
    Array1.unsafe_set buf (o + 1 + half) v;
    if v <> 0 && v <> !prev then incr runs
  end;
  !runs

let copy64_count cur base buf o dim =
  let runs = ref 0 in
  let prev = ref 0 in
  for i = 0 to dim - 1 do
    let v = Array.unsafe_get cur (base + i) in
    Array1.unsafe_set buf (o + 1 + i) v;
    if v <> 0 && v <> !prev then incr runs;
    prev := v
  done;
  !runs

(* [encode_with] specialized to a live row — the one snapshot per
   communication event of the ingest path. No closure (the generic
   encoder's [read] argument would be that path's only OCaml-heap
   allocation), and dense-hinted: when this trace's previous snapshot
   overflowed, encode dense in a single pass, counting the runs the
   row would have needed so the hint can be dropped again. *)
let snapshot t ~trace =
  let base = trace * t.dim in
  let cur = t.cur in
  reserve t;
  let h = t.len in
  let buf = chunk_of t h in
  let o = h land chunk_mask in
  let dim = t.dim in
  if Bytes.unsafe_get t.hint_dense trace = '\001' then begin
    let skip = Char.code (Bytes.unsafe_get t.hint_skip trace) in
    if skip > 0 && not t.big_vals then begin
      (* steady state: pure packed copy, run re-count amortized away *)
      Bytes.unsafe_set t.hint_skip trace (Char.unsafe_chr (skip - 1));
      if not t.wide_vals then begin
        Array1.unsafe_set buf o (-3);
        copy16 cur base buf o dim;
        t.len <- h + 1 + ((dim + 3) lsr 2)
      end
      else begin
        Array1.unsafe_set buf o (-2);
        copy32 cur base buf o dim;
        t.len <- h + 1 + ((dim + 1) lsr 1)
      end;
      h
    end
    else begin
      let runs =
        if t.big_vals then begin
          Array1.unsafe_set buf o (-1);
          t.len <- h + 1 + dim;
          copy64_count cur base buf o dim
        end
        else if t.wide_vals then begin
          Array1.unsafe_set buf o (-2);
          t.len <- h + 1 + ((dim + 1) lsr 1);
          copy32_count cur base buf o dim
        end
        else begin
          Array1.unsafe_set buf o (-3);
          t.len <- h + 1 + ((dim + 3) lsr 2);
          copy16_count cur base buf o dim
        end
      in
      if runs <= t.max_runs then Bytes.unsafe_set t.hint_dense trace '\000'
      else Bytes.unsafe_set t.hint_skip trace skip_interval;
      h
    end
  end
  else begin
    let runs = ref 0 in
    let pos = ref (o + 1) in
    let overflow = ref false in
    let i = ref 0 in
    while (not !overflow) && !i < dim do
      let v = Array.unsafe_get cur (base + !i) in
      if v = 0 then incr i
      else begin
        let lo = !i in
        let j = ref (lo + 1) in
        while !j < dim && Array.unsafe_get cur (base + !j) = v do
          incr j
        done;
        if !runs >= t.max_runs then overflow := true
        else begin
          Array1.unsafe_set buf !pos lo;
          Array1.unsafe_set buf (!pos + 1) (!j - 1);
          Array1.unsafe_set buf (!pos + 2) v;
          pos := !pos + 3;
          incr runs;
          i := !j
        end
      end
    done;
    if !overflow then begin
      Bytes.unsafe_set t.hint_dense trace '\001';
      Bytes.unsafe_set t.hint_skip trace skip_interval;
      if t.big_vals then begin
        Array1.unsafe_set buf o (-1);
        for k = 0 to dim - 1 do
          Array1.unsafe_set buf (o + 1 + k) (Array.unsafe_get cur (base + k))
        done;
        t.len <- h + 1 + dim
      end
      else if t.wide_vals then begin
        Array1.unsafe_set buf o (-2);
        copy32 cur base buf o dim;
        t.len <- h + 1 + ((dim + 1) lsr 1)
      end
      else begin
        Array1.unsafe_set buf o (-3);
        copy16 cur base buf o dim;
        t.len <- h + 1 + ((dim + 3) lsr 2)
      end
    end
    else begin
      Array1.unsafe_set buf o !runs;
      t.len <- h + 1 + (3 * !runs)
    end;
    h
  end

let encode t v =
  if Array.length v <> t.dim then invalid_arg "Vc_pool.encode: dimension mismatch";
  encode_with t (fun i -> Array.unsafe_get v i)

let is_dense t h = Array1.get (chunk_of t h) (h land chunk_mask) < 0

let read t h ~entry =
  let buf = chunk_of t h in
  let o = h land chunk_mask in
  let r = Array1.get buf o in
  if r = -1 then Array1.get buf (o + 1 + entry)
  else if r = -2 then begin
    let w = Array1.get buf (o + 1 + (entry lsr 1)) in
    if entry land 1 = 0 then w land 0xFFFF_FFFF else w lsr 32
  end
  else if r < 0 then
    Array1.get buf (o + 1 + (entry lsr 2)) lsr (15 * (entry land 3)) land 0x7FFF
  else begin
    let v = ref 0 in
    (try
       for k = 0 to r - 1 do
         let p = o + 1 + (3 * k) in
         let lo = Array1.unsafe_get buf p in
         if entry < lo then raise Exit;
         if entry <= Array1.unsafe_get buf (p + 1) then begin
           v := Array1.unsafe_get buf (p + 2);
           raise Exit
         end
       done
     with Exit -> ());
    !v
  end

let decode_into t h dst =
  let buf = chunk_of t h in
  let o = h land chunk_mask in
  let r = Array1.get buf o in
  if r = -1 then
    for i = 0 to t.dim - 1 do
      Array.unsafe_set dst i (Array1.unsafe_get buf (o + 1 + i))
    done
  else if r = -2 then begin
    let dim = t.dim in
    let half = dim lsr 1 in
    for w = 0 to half - 1 do
      let x = Array1.unsafe_get buf (o + 1 + w) in
      Array.unsafe_set dst (2 * w) (x land 0xFFFF_FFFF);
      Array.unsafe_set dst ((2 * w) + 1) (x lsr 32)
    done;
    if dim land 1 = 1 then
      Array.unsafe_set dst (dim - 1) (Array1.unsafe_get buf (o + 1 + half) land 0xFFFF_FFFF)
  end
  else if r < 0 then begin
    let dim = t.dim in
    for i = 0 to dim - 1 do
      Array.unsafe_set dst i
        (Array1.unsafe_get buf (o + 1 + (i lsr 2)) lsr (15 * (i land 3)) land 0x7FFF)
    done
  end
  else begin
    Array.fill dst 0 t.dim 0;
    for k = 0 to r - 1 do
      let p = o + 1 + (3 * k) in
      let hi = Array1.unsafe_get buf (p + 1) in
      let v = Array1.unsafe_get buf (p + 2) in
      for i = Array1.unsafe_get buf p to hi do
        Array.unsafe_set dst i v
      done
    done
  end

let to_array t h =
  let a = Array.make t.dim 0 in
  decode_into t h a;
  a

(* Pointwise max of a snapshot into a live row: O(runs) loads, and only
   the covered entries are touched (uncovered entries are 0 and never
   raise a max). *)
let merge_into t ~trace h =
  let buf = chunk_of t h in
  let o = h land chunk_mask in
  let cur = t.cur in
  let base = trace * t.dim in
  let r = Array1.get buf o in
  if r = -1 then
    for i = 0 to t.dim - 1 do
      let v = Array1.unsafe_get buf (o + 1 + i) in
      if v > Array.unsafe_get cur (base + i) then Array.unsafe_set cur (base + i) v
    done
  else if r = -2 then begin
    let dim = t.dim in
    let half = dim lsr 1 in
    for w = 0 to half - 1 do
      let x = Array1.unsafe_get buf (o + 1 + w) in
      let v0 = x land 0xFFFF_FFFF in
      let v1 = x lsr 32 in
      let i = base + (2 * w) in
      if v0 > Array.unsafe_get cur i then Array.unsafe_set cur i v0;
      if v1 > Array.unsafe_get cur (i + 1) then Array.unsafe_set cur (i + 1) v1
    done;
    if dim land 1 = 1 then begin
      let v = Array1.unsafe_get buf (o + 1 + half) land 0xFFFF_FFFF in
      let i = base + dim - 1 in
      if v > Array.unsafe_get cur i then Array.unsafe_set cur i v
    end
  end
  else if r < 0 then begin
    let dim = t.dim in
    for i = 0 to dim - 1 do
      let v = Array1.unsafe_get buf (o + 1 + (i lsr 2)) lsr (15 * (i land 3)) land 0x7FFF in
      if v > Array.unsafe_get cur (base + i) then Array.unsafe_set cur (base + i) v
    done
  end
  else
    for k = 0 to r - 1 do
      let p = o + 1 + (3 * k) in
      let hi = Array1.unsafe_get buf (p + 1) in
      let v = Array1.unsafe_get buf (p + 2) in
      for i = Array1.unsafe_get buf p to hi do
        if v > Array.unsafe_get cur (base + i) then Array.unsafe_set cur (base + i) v
      done
    done

(* The receive-side composite — merge the sender's snapshot [h] into
   [trace]'s row, tick the own entry, persist the result — observably
   identical to [merge_into]; [tick]; [snapshot], but fused into ONE
   row pass when both sides are in the packed-dense regime (the
   all-to-all steady state, where a receive would otherwise scan the
   row three times). The own entry can be ticked up front because the
   sender's knowledge of [trace] never exceeds the live row. *)
let recv_update t ~trace h =
  let own = Array.unsafe_get t.cur ((trace * t.dim) + trace) + 1 in
  let sbuf = chunk_of t h in
  let so = h land chunk_mask in
  let s_hdr = Array1.get sbuf so in
  (* the fused forms require the dense steady state (hint set AND runs
     amortized away): the every-[skip_interval]-th re-count and every
     tier transition take the three-call composition instead, whose
     [snapshot] does the hint bookkeeping *)
  let skip =
    if Bytes.unsafe_get t.hint_dense trace = '\001' then
      Char.code (Bytes.unsafe_get t.hint_skip trace)
    else 0
  in
  if skip > 0 && s_hdr = -3 && (not t.wide_vals) && own < narrow_lim then begin
    Bytes.unsafe_set t.hint_skip trace (Char.unsafe_chr (skip - 1));
    let dim = t.dim in
    let base = trace * dim in
    let cur = t.cur in
    Array.unsafe_set cur (base + trace) own;
    reserve t;
    let hh = t.len in
    let buf = chunk_of t hh in
    let o = hh land chunk_mask in
    Array1.unsafe_set buf o (-3);
    let quarter = dim lsr 2 in
    for w = 0 to quarter - 1 do
      let x = Array1.unsafe_get sbuf (so + 1 + w) in
      let i = base + (4 * w) in
      let s0 = x land 0x7FFF in
      let c0 = Array.unsafe_get cur i in
      let v0 =
        if s0 > c0 then begin
          Array.unsafe_set cur i s0;
          s0
        end
        else c0
      in
      let s1 = x lsr 15 land 0x7FFF in
      let c1 = Array.unsafe_get cur (i + 1) in
      let v1 =
        if s1 > c1 then begin
          Array.unsafe_set cur (i + 1) s1;
          s1
        end
        else c1
      in
      let s2 = x lsr 30 land 0x7FFF in
      let c2 = Array.unsafe_get cur (i + 2) in
      let v2 =
        if s2 > c2 then begin
          Array.unsafe_set cur (i + 2) s2;
          s2
        end
        else c2
      in
      let s3 = x lsr 45 land 0x7FFF in
      let c3 = Array.unsafe_get cur (i + 3) in
      let v3 =
        if s3 > c3 then begin
          Array.unsafe_set cur (i + 3) s3;
          s3
        end
        else c3
      in
      Array1.unsafe_set buf (o + 1 + w) (v0 lor (v1 lsl 15) lor (v2 lsl 30) lor (v3 lsl 45))
    done;
    let rem = dim land 3 in
    if rem > 0 then begin
      let x = Array1.unsafe_get sbuf (so + 1 + quarter) in
      let i = base + (4 * quarter) in
      let s0 = x land 0x7FFF in
      let c0 = Array.unsafe_get cur i in
      let v0 =
        if s0 > c0 then begin
          Array.unsafe_set cur i s0;
          s0
        end
        else c0
      in
      let y = ref v0 in
      if rem > 1 then begin
        let s1 = x lsr 15 land 0x7FFF in
        let c1 = Array.unsafe_get cur (i + 1) in
        let v1 =
          if s1 > c1 then begin
            Array.unsafe_set cur (i + 1) s1;
            s1
          end
          else c1
        in
        y := !y lor (v1 lsl 15)
      end;
      if rem > 2 then begin
        let s2 = x lsr 30 land 0x7FFF in
        let c2 = Array.unsafe_get cur (i + 2) in
        let v2 =
          if s2 > c2 then begin
            Array.unsafe_set cur (i + 2) s2;
            s2
          end
          else c2
        in
        y := !y lor (v2 lsl 30)
      end;
      Array1.unsafe_set buf (o + 1 + quarter) !y
    end;
    t.len <- hh + 1 + ((dim + 3) lsr 2);
    hh
  end
  else if skip > 0 && s_hdr = -2 && (not t.big_vals) && own < packed_lim then begin
    Bytes.unsafe_set t.hint_skip trace (Char.unsafe_chr (skip - 1));
    let dim = t.dim in
    let base = trace * dim in
    let cur = t.cur in
    Array.unsafe_set cur (base + trace) own;
    reserve t;
    let hh = t.len in
    let buf = chunk_of t hh in
    let o = hh land chunk_mask in
    Array1.unsafe_set buf o (-2);
    let half = dim lsr 1 in
    for w = 0 to half - 1 do
      let x = Array1.unsafe_get sbuf (so + 1 + w) in
      let i = base + (2 * w) in
      let s0 = x land 0xFFFF_FFFF in
      let c0 = Array.unsafe_get cur i in
      let v0 =
        if s0 > c0 then begin
          Array.unsafe_set cur i s0;
          s0
        end
        else c0
      in
      let s1 = x lsr 32 in
      let c1 = Array.unsafe_get cur (i + 1) in
      let v1 =
        if s1 > c1 then begin
          Array.unsafe_set cur (i + 1) s1;
          s1
        end
        else c1
      in
      Array1.unsafe_set buf (o + 1 + w) (v0 lor (v1 lsl 32))
    done;
    if dim land 1 = 1 then begin
      let i = base + dim - 1 in
      let s = Array1.unsafe_get sbuf (so + 1 + half) land 0xFFFF_FFFF in
      let c = Array.unsafe_get cur i in
      let v =
        if s > c then begin
          Array.unsafe_set cur i s;
          s
        end
        else c
      in
      Array1.unsafe_set buf (o + 1 + half) v
    end;
    t.len <- hh + 1 + ((dim + 1) lsr 1);
    hh
  end
  else begin
    merge_into t ~trace h;
    ignore (tick t ~trace : int);
    snapshot t ~trace
  end

(* ------------------------------------------------------------------ *)
(* Handle-level operations (segment sweeps)                            *)
(* ------------------------------------------------------------------ *)

(* A segment cursor yields maximal constant (lo, hi, v) segments of a
   snapshot in position order, materializing the implicit zero gaps of
   the run form; a dense snapshot yields its equal-value runs. Both
   [leq] and [merge] are a single simultaneous sweep: O(ra + rb)
   segment steps for two run-form snapshots. *)

(* segment containing position [pos]: returns (hi, v) *)
let seg_at t h pos =
  let buf = chunk_of t h in
  let o = h land chunk_mask in
  let r = Array1.get buf o in
  if r = -1 then begin
    (* dense: extend the current equal-value run *)
    let v = Array1.unsafe_get buf (o + 1 + pos) in
    let j = ref (pos + 1) in
    while !j < t.dim && Array1.unsafe_get buf (o + 1 + !j) = v do
      incr j
    done;
    (!j - 1, v)
  end
  else if r = -2 then begin
    (* packed dense: same extension, through the pair decoding *)
    let dval i =
      let w = Array1.unsafe_get buf (o + 1 + (i lsr 1)) in
      if i land 1 = 0 then w land 0xFFFF_FFFF else w lsr 32
    in
    let v = dval pos in
    let j = ref (pos + 1) in
    while !j < t.dim && dval !j = v do
      incr j
    done;
    (!j - 1, v)
  end
  else if r < 0 then begin
    (* quad-packed dense: same extension, through the lane decoding *)
    let dval i = Array1.unsafe_get buf (o + 1 + (i lsr 2)) lsr (15 * (i land 3)) land 0x7FFF in
    let v = dval pos in
    let j = ref (pos + 1) in
    while !j < t.dim && dval !j = v do
      incr j
    done;
    (!j - 1, v)
  end
  else begin
    (* find the first run with hi >= pos *)
    let hi = ref (t.dim - 1) in
    let v = ref 0 in
    (try
       for k = 0 to r - 1 do
         let p = o + 1 + (3 * k) in
         let rlo = Array1.unsafe_get buf p in
         let rhi = Array1.unsafe_get buf (p + 1) in
         if pos < rlo then begin
           (* inside the zero gap before run k *)
           hi := rlo - 1;
           v := 0;
           raise Exit
         end
         else if pos <= rhi then begin
           hi := rhi;
           v := Array1.unsafe_get buf (p + 2);
           raise Exit
         end
       done
       (* past the last run: zero to the end *)
     with Exit -> ());
    (!hi, !v)
  end

let leq t ha hb =
  let pos = ref 0 in
  let ok = ref true in
  while !ok && !pos < t.dim do
    let hi_a, va = seg_at t ha !pos in
    let hi_b, vb = seg_at t hb !pos in
    if va > vb then ok := false
    else pos := min hi_a hi_b + 1
  done;
  !ok

let equal t ha hb =
  let pos = ref 0 in
  let ok = ref true in
  while !ok && !pos < t.dim do
    let hi_a, va = seg_at t ha !pos in
    let hi_b, vb = seg_at t hb !pos in
    if va <> vb then ok := false else pos := min hi_a hi_b + 1
  done;
  !ok

(* Sweep both snapshots, building max-runs into [runbuf]; encode the
   result as a fresh snapshot. O(ra + rb) sweep steps. *)
let merge_runs t ha hb =
  let rb = t.runbuf in
  let n = ref 0 in
  let pos = ref 0 in
  while !pos < t.dim do
    let hi_a, va = seg_at t ha !pos in
    let hi_b, vb = seg_at t hb !pos in
    let hi = min hi_a hi_b in
    let v = max va vb in
    if !n > 0 && rb.((3 * (!n - 1)) + 2) = v && rb.((3 * (!n - 1)) + 1) = !pos - 1 then
      rb.((3 * (!n - 1)) + 1) <- hi  (* coalesce with the previous run *)
    else begin
      rb.(3 * !n) <- !pos;
      rb.((3 * !n) + 1) <- hi;
      rb.((3 * !n) + 2) <- v;
      incr n
    end;
    pos := hi + 1
  done;
  !n

(* value at [i] of the run list prefix built by [merge_runs] *)
let runs_read rb n i =
  let v = ref 0 in
  (try
     for k = 0 to n - 1 do
       let lo = rb.(3 * k) in
       if i < lo then raise Exit;
       if i <= rb.((3 * k) + 1) then begin
         v := rb.((3 * k) + 2);
         raise Exit
       end
     done
   with Exit -> ());
  !v

let merge t ha hb =
  let n = merge_runs t ha hb in
  let rb = t.runbuf in
  encode_with t (fun i -> runs_read rb n i)

let tick_merge t ha hb ~trace =
  (* merge then tick the owner entry: the timestamp of a receive on
     [trace] whose local past is [ha] and whose message carried [hb] *)
  let n = merge_runs t ha hb in
  let rb = t.runbuf in
  let own = read t ha ~entry:trace + 1 in
  encode_with t (fun i -> if i = trace then own else runs_read rb n i)

let runs t h =
  let r = Array1.get (chunk_of t h) (h land chunk_mask) in
  if r < 0 then -1 else r

let pp ppf (t, h) =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (to_array t h)
