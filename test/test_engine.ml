(* The online engine: representative-subset semantics (Fig. 3), coverage
   completeness against the oracle, history pruning, storage caps, and the
   monitor's bookkeeping. *)

open Ocep_base
module Poet = Ocep_poet.Poet
module Parser = Ocep_pattern.Parser
module Compile = Ocep_pattern.Compile
module Engine = Ocep.Engine
module Subset = Ocep.Subset
module Oracle = Ocep_baselines.Oracle
module Window = Ocep_baselines.Window
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let net_of src = Compile.compile (Parser.parse src)

let ab_pattern = "A := [_, A, _]; B := [_, B, _]; pattern := A -> B;"

(* The process-time diagram of Fig. 3: by the time b arrives, matches with
   an A exist on P0 and on P1; a window of n^2 events misses the P1 slot,
   the representative subset covers both. *)
let fig3 ~with_engine ~with_window () =
  let names = [| "P0"; "P1"; "P2" |] in
  let poet = Poet.create ~retain:true ~trace_names:names () in
  let net = net_of ab_pattern in
  let engine = if with_engine then Some (Engine.create ~net ~poet ()) else None in
  let window = if with_window then Some (Window.create ~net ~window:(3 * 3) ()) else None in
  (match window with
  | Some w -> Poet.subscribe poet (fun ev -> ignore (Window.on_event w ev))
  | None -> ());
  let msg = ref 0 in
  let ingest raw = ignore (Poet.ingest poet raw) in
  let internal tr ty = ingest { Event.r_trace = tr; r_etype = ty; r_text = ""; r_kind = Event.Internal } in
  let send tr = incr msg; ingest { Event.r_trace = tr; r_etype = "m"; r_text = ""; r_kind = Event.Send { msg = !msg } }; !msg in
  let recv tr m = ingest { Event.r_trace = tr; r_etype = "m"; r_text = ""; r_kind = Event.Receive { msg = m } } in
  (* old A on P1 whose causal successors reach P2 much later; then lots of
     noise; then recent As on P0; then b on P2 *)
  internal 1 "A";
  let m1 = send 1 in
  (* noise: push the P1 A far outside any n^2 window *)
  for _ = 1 to 20 do
    internal 0 "N"
  done;
  internal 0 "A";
  internal 0 "A";
  let m0 = send 0 in
  recv 2 m0;
  recv 2 m1;
  internal 2 "B";
  (poet, engine, window)

let fig3_subset_covers_all_slots () =
  let _, engine, _ = fig3 ~with_engine:true ~with_window:false () in
  let engine = Option.get engine in
  (* slots: (A,P0), (A,P1), (B,P2) all covered *)
  check_int "covered" 3 (Engine.covered_slots engine);
  check_int "reports at most k*n" 2 (List.length (Engine.reports engine))

let fig3_window_misses_slot () =
  let poet, _, window = fig3 ~with_engine:false ~with_window:true () in
  let window = Option.get window in
  let events = Poet.all_events poet in
  let net = net_of ab_pattern in
  let oracle_slots = Oracle.true_slots (Oracle.all_matches ~net ~events) in
  let window_slots = Window.covered_slots window in
  check "oracle has (A,P1)" true (List.mem (0, 1) oracle_slots);
  check "window lost (A,P1)" false (List.mem (0, 1) window_slots);
  check "window found (A,P0)" true (List.mem (0, 0) window_slots)

(* engine coverage = oracle coverage on random computations (pruning off:
   exact equality of slot sets) *)
let coverage_matches_oracle =
  QCheck.Test.make ~name:"representative subset covers exactly the oracle slots" ~count:80
    QCheck.small_int (fun seed ->
      let prng = Prng.create (seed + 7) in
      let n_traces = 2 + Prng.int prng 2 in
      let names = Array.init n_traces (fun i -> "P" ^ string_of_int i) in
      let raws = Testutil.Gen.computation ~n_traces ~length:(15 + Prng.int prng 15) prng in
      let src = Testutil.Gen.pattern ~n_classes:(2 + Prng.int prng 2) prng in
      match Compile.compile (Parser.parse src) with
      | exception Compile.Compile_error _ -> true
      | net ->
        let poet = Poet.create ~retain:true ~trace_names:names () in
        let config = { Engine.default_config with Engine.pruning = false } in
        let engine = Engine.create ~config ~net ~poet () in
        let _ = List.map (Poet.ingest poet) raws in
        let events = Poet.all_events poet in
        let oracle_slots = Oracle.true_slots (Oracle.all_matches ~net ~events) in
        (* compare the slot sets through the reported matches *)
        let reported_slots =
          List.sort_uniq compare
            (List.concat_map
               (fun (r : Subset.report) ->
                 Array.to_list (Array.mapi (fun leaf (e : Event.t) -> (leaf, e.trace)) r.events))
               (Engine.reports engine))
        in
        if reported_slots <> oracle_slots then
          QCheck.Test.fail_reportf "slots differ on pattern:@.%s@.oracle %s@.reported %s" src
            (String.concat "," (List.map (fun (l, t) -> Printf.sprintf "(%d,%d)" l t) oracle_slots))
            (String.concat ","
               (List.map (fun (l, t) -> Printf.sprintf "(%d,%d)" l t) reported_slots))
        else true)

(* every reported match is sound, even with pruning on *)
let reports_sound_with_pruning =
  QCheck.Test.make ~name:"reports verify independently (pruning on)" ~count:60 QCheck.small_int
    (fun seed ->
      let prng = Prng.create (seed + 77) in
      let n_traces = 2 + Prng.int prng 2 in
      let names = Array.init n_traces (fun i -> "P" ^ string_of_int i) in
      let raws = Testutil.Gen.computation ~n_traces ~length:40 prng in
      let src = Testutil.Gen.pattern ~n_classes:2 prng in
      match Compile.compile (Parser.parse src) with
      | exception Compile.Compile_error _ -> true
      | net ->
        let poet = Poet.create ~retain:true ~trace_names:names () in
        let engine = Engine.create ~net ~poet () in
        let _ = List.map (Poet.ingest poet) raws in
        let events = Poet.all_events poet in
        List.for_all
          (fun (r : Subset.report) -> Oracle.is_match ~net ~events:(if net.Compile.lim_checks = [] then [] else events) r.events)
          (Engine.reports engine))

(* the analysis must not depend on which linearization POET delivers *)
let linearization_independent =
  QCheck.Test.make ~name:"coverage is identical across valid linearizations" ~count:60
    QCheck.small_int (fun seed ->
      let prng = Prng.create (seed + 321) in
      let n_traces = 2 + Prng.int prng 2 in
      let names = Array.init n_traces (fun i -> "P" ^ string_of_int i) in
      let raws = Testutil.Gen.computation ~n_traces ~length:30 prng in
      let src = Testutil.Gen.pattern ~n_classes:2 prng in
      match Compile.compile (Parser.parse src) with
      | exception Compile.Compile_error _ -> true
      | net ->
        let slots raws =
          let poet = Poet.create ~trace_names:names () in
          let engine = Engine.create ~net ~poet () in
          List.iter (fun r -> ignore (Poet.ingest poet r)) raws;
          List.sort_uniq compare
            (List.concat_map
               (fun (r : Subset.report) ->
                 Array.to_list (Array.mapi (fun leaf (e : Event.t) -> (leaf, e.trace)) r.events))
               (Engine.reports engine))
        in
        let shuffled = Ocep_poet.Linearize.shuffle ~seed:(seed + 77) raws in
        slots raws = slots shuffled)

let subset_cardinality_bound () =
  (* at most k*n reports regardless of how many matches exist *)
  let names = [| "P0"; "P1" |] in
  let poet = Poet.create ~trace_names:names () in
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A || B;" in
  let engine = Engine.create ~net ~poet () in
  for _ = 1 to 50 do
    ignore (Poet.ingest poet { Event.r_trace = 0; r_etype = "A"; r_text = ""; r_kind = Event.Internal });
    ignore (Poet.ingest poet { Event.r_trace = 1; r_etype = "B"; r_text = ""; r_kind = Event.Internal })
  done;
  (* 50x50 matches exist; k*n = 4 *)
  check "bounded reports" true (List.length (Engine.reports engine) <= 4);
  check "many matches were found" true (Engine.matches_found engine > 50)

let subset_dropped_surfaced () =
  (* with report_cap = 1 the later coverage-advancing reports are not
     retained; the loss must be visible as ocep_subset_reports_dropped_total *)
  let names = [| "P0"; "P1" |] in
  let poet = Poet.create ~trace_names:names () in
  let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A || B;" in
  let config = { Engine.default_config with Engine.report_cap = 1 } in
  let engine = Engine.create ~config ~net ~poet () in
  let ingest trace etype =
    ignore (Poet.ingest poet { Event.r_trace = trace; r_etype = etype; r_text = ""; r_kind = Event.Internal })
  in
  (* first match covers (A,P0) and (B,P1); the mirrored pair then yields
     coverage-advancing matches for (A,P1) and (B,P0) that the cap refuses *)
  ingest 0 "A";
  ingest 1 "B";
  ingest 1 "A";
  ingest 0 "B";
  check "cap enforced" true (List.length (Engine.reports engine) <= 1);
  Engine.sync_metrics engine;
  let s = Ocep_obs.Snapshot.prometheus (Engine.metrics engine) in
  let metric = "ocep_subset_reports_dropped_total" in
  let dropped =
    String.split_on_char '\n' s
    |> List.find_map (fun l ->
           if String.length l > 0 && l.[0] <> '#' && String.starts_with ~prefix:metric l then
             String.rindex_opt l ' '
             |> Option.map (fun i ->
                    int_of_string (String.sub l (i + 1) (String.length l - i - 1)))
           else None)
  in
  match dropped with
  | None -> Alcotest.fail (metric ^ " not exported")
  | Some n -> check "drops counted" true (n > 0)

let pruning_bounds_history () =
  (* repeated identical internal events with no communication collapse to
     the last [k] entries (k = pattern size: a match may bind that many
     events of one run, so keeping fewer would lose matches — the
     differential fuzzer caught the old keep-last-1 rule doing exactly
     that) *)
  let names = [| "P0"; "P1" |] in
  let poet = Poet.create ~trace_names:names () in
  let net = net_of ab_pattern in
  let engine = Engine.create ~net ~poet () in
  for _ = 1 to 100 do
    ignore (Poet.ingest poet { Event.r_trace = 0; r_etype = "A"; r_text = ""; r_kind = Event.Internal })
  done;
  check_int "run-cap entries" 2 (Engine.history_entries engine);
  (* a communication event separates epochs: the next run accumulates on
     top instead of merging into the old one *)
  ignore (Poet.ingest poet { Event.r_trace = 0; r_etype = "c"; r_text = ""; r_kind = Event.Send { msg = 1 } });
  ignore (Poet.ingest poet { Event.r_trace = 0; r_etype = "A"; r_text = ""; r_kind = Event.Internal });
  check_int "new epoch appends" 3 (Engine.history_entries engine)

let pruning_preserves_detection () =
  (* the pruned history still detects the A->B match *)
  let names = [| "P0"; "P1" |] in
  let poet = Poet.create ~trace_names:names () in
  let net = net_of ab_pattern in
  let engine = Engine.create ~net ~poet () in
  for _ = 1 to 50 do
    ignore (Poet.ingest poet { Event.r_trace = 0; r_etype = "A"; r_text = ""; r_kind = Event.Internal })
  done;
  ignore (Poet.ingest poet { Event.r_trace = 0; r_etype = "s"; r_text = ""; r_kind = Event.Send { msg = 9 } });
  ignore (Poet.ingest poet { Event.r_trace = 1; r_etype = "r"; r_text = ""; r_kind = Event.Receive { msg = 9 } });
  ignore (Poet.ingest poet { Event.r_trace = 1; r_etype = "B"; r_text = ""; r_kind = Event.Internal });
  check_int "match found" 1 (List.length (Engine.reports engine))

let history_cap_drops () =
  let names = [| "P0"; "P1" |] in
  let poet = Poet.create ~trace_names:names () in
  let net = net_of ab_pattern in
  let config = { Engine.default_config with Engine.max_history_per_trace = Some 16 } in
  let engine = Engine.create ~config ~net ~poet () in
  for i = 1 to 200 do
    ignore (Poet.ingest poet { Event.r_trace = 0; r_etype = "A"; r_text = ""; r_kind = Event.Send { msg = i } })
  done;
  check "capped" true (Engine.history_entries engine <= 17);
  check "dropped counted" true (Engine.history_dropped engine > 0)

let gc_bounds_concurrent_history () =
  (* A || B with communication chatter: pruning never merges (epochs keep
     changing), so without GC the histories grow without bound; with GC
     fully-seen events are dead (a future anchor can only be After) and
     storage stays bounded *)
  let names = [| "P0"; "P1" |] in
  let run gc_every =
    let poet = Poet.create ~trace_names:names () in
    let net = net_of "A := [_, A, _]; B := [_, B, _]; pattern := A || B;" in
    let config = { Engine.default_config with Engine.gc_every } in
    let engine = Engine.create ~config ~net ~poet () in
    let msg = ref 0 in
    for _ = 1 to 200 do
      ignore (Poet.ingest poet { Event.r_trace = 0; r_etype = "A"; r_text = ""; r_kind = Event.Internal });
      ignore (Poet.ingest poet { Event.r_trace = 1; r_etype = "B"; r_text = ""; r_kind = Event.Internal });
      (* a message each way makes both frontiers cover everything *)
      incr msg;
      ignore (Poet.ingest poet { Event.r_trace = 0; r_etype = "c"; r_text = ""; r_kind = Event.Send { msg = !msg } });
      ignore (Poet.ingest poet { Event.r_trace = 1; r_etype = "c"; r_text = ""; r_kind = Event.Receive { msg = !msg } });
      incr msg;
      ignore (Poet.ingest poet { Event.r_trace = 1; r_etype = "c"; r_text = ""; r_kind = Event.Send { msg = !msg } });
      ignore (Poet.ingest poet { Event.r_trace = 0; r_etype = "c"; r_text = ""; r_kind = Event.Receive { msg = !msg } })
    done;
    engine
  in
  let without = run None in
  let with_gc = run (Some 10) in
  check "grows without gc" true (Engine.history_entries without >= 400);
  check "bounded with gc" true (Engine.history_entries with_gc < 50);
  check "gc counted as drops" true (Engine.history_dropped with_gc > 300);
  (* and the same matches were reported *)
  check_int "same reports" (List.length (Engine.reports without))
    (List.length (Engine.reports with_gc))

let gc_never_loses_coverage =
  QCheck.Test.make ~name:"gc preserves the subset's coverage guarantee" ~count:60
    QCheck.small_int (fun seed ->
      let prng = Prng.create (seed + 4242) in
      let n_traces = 2 + Prng.int prng 2 in
      let names = Array.init n_traces (fun i -> "P" ^ string_of_int i) in
      let raws = Testutil.Gen.computation ~n_traces ~length:40 prng in
      let src = Testutil.Gen.pattern ~n_classes:2 prng in
      match Compile.compile (Parser.parse src) with
      | exception Compile.Compile_error _ -> true
      | net ->
        let poet = Poet.create ~retain:true ~trace_names:names () in
        let config =
          { Engine.default_config with Engine.pruning = false; gc_every = Some 5 }
        in
        let engine = Engine.create ~config ~net ~poet () in
        let _ = List.map (Poet.ingest poet) raws in
        let events = Poet.all_events poet in
        let oracle_slots = Oracle.true_slots (Oracle.all_matches ~net ~events) in
        let reported_slots =
          List.sort_uniq compare
            (List.concat_map
               (fun (r : Subset.report) ->
                 Array.to_list (Array.mapi (fun leaf (e : Event.t) -> (leaf, e.trace)) r.events))
               (Engine.reports engine))
        in
        reported_slots = oracle_slots)

let find_containing_works () =
  let names = [| "P0"; "P1" |] in
  let poet = Poet.create ~trace_names:names () in
  let net = net_of ab_pattern in
  let engine = Engine.create ~net ~poet () in
  let a = Poet.ingest poet { Event.r_trace = 0; r_etype = "A"; r_text = ""; r_kind = Event.Internal } in
  let _ = Poet.ingest poet { Event.r_trace = 0; r_etype = "s"; r_text = ""; r_kind = Event.Send { msg = 1 } } in
  let _ = Poet.ingest poet { Event.r_trace = 1; r_etype = "r"; r_text = ""; r_kind = Event.Receive { msg = 1 } } in
  let b = Poet.ingest poet { Event.r_trace = 1; r_etype = "B"; r_text = ""; r_kind = Event.Internal } in
  let solo = Poet.ingest poet { Event.r_trace = 0; r_etype = "A"; r_text = ""; r_kind = Event.Internal } in
  check "a in a match" true (Engine.find_containing engine a <> None);
  check "b in a match" true (Engine.find_containing engine b <> None);
  check "later concurrent A is not" true (Engine.find_containing engine solo = None)

let latencies_recorded () =
  let names = [| "P0"; "P1" |] in
  let poet = Poet.create ~trace_names:names () in
  let net = net_of ab_pattern in
  let engine = Engine.create ~net ~poet () in
  for _ = 1 to 5 do
    ignore (Poet.ingest poet { Event.r_trace = 1; r_etype = "B"; r_text = ""; r_kind = Event.Internal })
  done;
  ignore (Poet.ingest poet { Event.r_trace = 0; r_etype = "A"; r_text = ""; r_kind = Event.Internal });
  (* B is terminating: 5 terminating arrivals (the A is not terminating) *)
  check_int "terminating arrivals" 5 (Engine.terminating_arrivals engine);
  check_int "latency samples" 5 (Array.length (Engine.latencies_us engine))

let () =
  Alcotest.run "engine"
    [
      ( "fig3",
        [
          Alcotest.test_case "subset covers all slots" `Quick fig3_subset_covers_all_slots;
          Alcotest.test_case "window misses a slot" `Quick fig3_window_misses_slot;
        ] );
      ( "subset",
        [
          QCheck_alcotest.to_alcotest coverage_matches_oracle;
          QCheck_alcotest.to_alcotest reports_sound_with_pruning;
          QCheck_alcotest.to_alcotest linearization_independent;
          Alcotest.test_case "cardinality bound" `Quick subset_cardinality_bound;
          Alcotest.test_case "dropped reports surfaced" `Quick subset_dropped_surfaced;
        ] );
      ( "history",
        [
          Alcotest.test_case "pruning bounds history" `Quick pruning_bounds_history;
          Alcotest.test_case "pruning preserves detection" `Quick pruning_preserves_detection;
          Alcotest.test_case "cap drops oldest" `Quick history_cap_drops;
          Alcotest.test_case "gc bounds concurrent history" `Quick gc_bounds_concurrent_history;
          QCheck_alcotest.to_alcotest gc_never_loses_coverage;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "find_containing" `Quick find_containing_works;
          Alcotest.test_case "latencies recorded" `Quick latencies_recorded;
        ] );
    ]
